// Micro-benchmark: Pastry primitives — id arithmetic, routing-state
// updates, next-hop selection, and full simulated lookups.
#include <benchmark/benchmark.h>

#include "overlay/builder.hpp"
#include "overlay/node_id.hpp"
#include "overlay/state.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace {

using namespace rasc;
using overlay::NodeId128;

void BM_NodeIdHash(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NodeId128::hash_of("service:svc" + std::to_string(i++ % 64)));
  }
}
BENCHMARK(BM_NodeIdHash);

void BM_NodeIdRingDistance(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  const NodeId128 a{rng.next(), rng.next()};
  const NodeId128 b{rng.next(), rng.next()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ring_distance(b));
  }
}
BENCHMARK(BM_NodeIdRingDistance);

void BM_RoutingTableInsert(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  std::vector<overlay::PeerRef> peers;
  for (int i = 0; i < 256; ++i) {
    peers.push_back(overlay::PeerRef{NodeId128{rng.next(), rng.next()},
                                     sim::NodeIndex(i)});
  }
  const NodeId128 self{rng.next(), rng.next()};
  for (auto _ : state) {
    overlay::RoutingTable table(self);
    for (const auto& p : peers) table.insert(p);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 256);
}
BENCHMARK(BM_RoutingTableInsert);

void BM_NextHop(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  sim::Simulator simulator(1);
  sim::Network network(simulator,
                       sim::make_uniform_topology(n, 100000.0,
                                                  sim::msec(1)));
  auto overlay = overlay::build_overlay(simulator, network, n);
  util::Xoshiro256 rng(9);
  int k = 0;
  for (auto _ : state) {
    const NodeId128 key{rng.next(), rng.next()};
    benchmark::DoNotOptimize(
        overlay.at(std::size_t(k++) % n).next_hop(key));
  }
}
BENCHMARK(BM_NextHop)->Arg(16)->Arg(64)->Arg(256);

void BM_SimulatedLookup(benchmark::State& state) {
  // Full routed DHT lookups including simulated network events; reports
  // wall time per lookup.
  const auto n = std::size_t(state.range(0));
  sim::Simulator simulator(1);
  sim::Network network(simulator,
                       sim::make_uniform_topology(n, 100000.0,
                                                  sim::msec(1)));
  auto overlay = overlay::build_overlay(simulator, network, n);
  overlay.at(0).dht_put(NodeId128::hash_of("bench-key"), "v", true,
                        nullptr);
  simulator.run_until(simulator.now() + sim::sec(1));
  int i = 0;
  for (auto _ : state) {
    bool done = false;
    overlay.at(std::size_t(i++) % n)
        .dht_get(NodeId128::hash_of("bench-key"),
                 [&done](bool, std::vector<std::string>) { done = true; });
    while (!done && simulator.step()) {
    }
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_SimulatedLookup)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
