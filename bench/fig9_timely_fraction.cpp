// Figure 9: fraction of delivered units that arrived flawlessly (in order
// and within the rate requirement's tolerance).
#include "figures_common.hpp"

int main(int argc, char** argv) {
  return rasc::bench::run_figure(
      argc, argv,
      "Figure 9 — fraction of delivered units that were timely",
      "the fraction of delivered units that did NOT arrive in a timely "
      "manner is small for all algorithms; splitting does not introduce "
      "meaningful timing problems",
      [](const rasc::exp::RunMetrics& m) { return m.timely_fraction(); });
}
