#!/usr/bin/env bash
# Runs the google-benchmark micro-benchmarks and writes one merged
# BENCH_<date>.json at the repo root.
#
#   bench/run_bench.sh [build-dir] [--baseline BENCH_old.json]
#
# With --baseline, each benchmark also gets a "speedup_vs_baseline" field
# (baseline real_time / current real_time) so regressions and wins are
# visible in the committed artifact.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
baseline=""
if [[ "${2:-}" == "--baseline" ]]; then
  baseline="${3:?--baseline needs a path}"
fi

benches=(micro_flow_solver micro_mincost micro_overlay micro_scheduler pdes_speedup)
out="$repo_root/BENCH_$(date +%Y-%m-%d).json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for b in "${benches[@]}"; do
  bin="$build_dir/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "skipping $b (not built at $bin)" >&2
    continue
  fi
  echo "running $b ..." >&2
  "$bin" --benchmark_min_time=0.2 \
         --benchmark_format=json >"$tmp_dir/$b.json"
done

# Sharded-admission figure bench (not google-benchmark): emits its own
# JSON rows and exits nonzero if any cell double-promised bandwidth, so
# a broken no-double-booking invariant fails the whole bench run.
shard_json=""
shard_bin="$build_dir/bench/shard_admission"
if [[ -x "$shard_bin" ]]; then
  echo "running shard_admission ..." >&2
  "$shard_bin" --json "$tmp_dir/shard_admission.rows" >/dev/null
  shard_json="$tmp_dir/shard_admission.rows"
else
  echo "skipping shard_admission (not built at $shard_bin)" >&2
fi

# Gossip-quality figure bench: same convention. Exits nonzero when the
# default-knob quality gap vs the centralized optimum exceeds 15% or a
# scaling cell breaks the per-round byte budget.
gossip_json=""
gossip_bin="$build_dir/bench/gossip_quality"
if [[ -x "$gossip_bin" ]]; then
  echo "running gossip_quality ..." >&2
  "$gossip_bin" --json "$tmp_dir/gossip_quality.rows" >/dev/null
  gossip_json="$tmp_dir/gossip_quality.rows"
else
  echo "skipping gossip_quality (not built at $gossip_bin)" >&2
fi

# Predictive-SLO figure bench: same convention. Exits nonzero unless the
# predictive trigger cuts the deadline-violating window fraction to
# <= 0.7x the reactive column under load drift, with no extra teardowns.
predictive_json=""
predictive_bin="$build_dir/bench/predictive_slo"
if [[ -x "$predictive_bin" ]]; then
  echo "running predictive_slo ..." >&2
  "$predictive_bin" --json "$tmp_dir/predictive_slo.rows" >/dev/null
  predictive_json="$tmp_dir/predictive_slo.rows"
else
  echo "skipping predictive_slo (not built at $predictive_bin)" >&2
fi

shopt -s nullglob
results=("$tmp_dir"/*.json)
if [[ ${#results[@]} -eq 0 ]]; then
  echo "error: no benchmarks found under $build_dir/bench — build first" >&2
  exit 1
fi

jq -s --arg date "$(date +%Y-%m-%d)" --arg host "$(uname -sr)" '
  {
    date: $date,
    host: $host,
    benchmarks: (map(.benchmarks[]
        | {name, real_time, cpu_time, time_unit,
           items_per_second: (.items_per_second // null)}))
  }' "$tmp_dir"/*.json >"$out"

if [[ -n "$shard_json" ]]; then
  jq --slurpfile shard "$shard_json" '.shard_admission = $shard[0]' \
    "$out" >"$out.tmp" && mv "$out.tmp" "$out"
fi

if [[ -n "$gossip_json" ]]; then
  jq --slurpfile gossip "$gossip_json" '.gossip_quality = $gossip[0]' \
    "$out" >"$out.tmp" && mv "$out.tmp" "$out"
fi

if [[ -n "$predictive_json" ]]; then
  jq --slurpfile pred "$predictive_json" '.predictive_slo = $pred[0]' \
    "$out" >"$out.tmp" && mv "$out.tmp" "$out"
fi

if [[ -n "$baseline" ]]; then
  jq --slurpfile base "$baseline" '
    ($base[0].benchmarks | map({(.name): .real_time}) | add) as $old
    | .baseline_date = $base[0].date
    | .benchmarks |= map(
        if $old[.name] then
          . + {baseline_real_time: $old[.name],
               speedup_vs_baseline:
                 (($old[.name] / .real_time) * 1000 | round / 1000)}
        else . end)
  ' "$out" >"$out.tmp" && mv "$out.tmp" "$out"
fi

echo "wrote $out" >&2
