// Micro-benchmark: SHA-1 throughput (discovery key generation is on the
// composition path: one hash per service lookup).
#include <benchmark/benchmark.h>

#include <string>

#include "util/sha1.hpp"

namespace {

using namespace rasc;

void BM_Sha1Small(benchmark::State& state) {
  const std::string msg = "service:video-transcode";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::sha1(msg));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(msg.size()));
}
BENCHMARK(BM_Sha1Small);

void BM_Sha1Bulk(benchmark::State& state) {
  const std::string data(std::size_t(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::sha1(data));
  }
  state.SetBytesProcessed(std::int64_t(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Bulk)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
