// PDES speedup: wall-clock of one full experiment (world build, workload,
// streaming, chaos-free) as a function of --sim-threads, on the
// scalability sweep's deployment sizes.
//
// The interesting ratio is real_time(threads=1) / real_time(threads=N)
// for a fixed node count. threads=1 is the historical serial engine (the
// parallel code is not even instantiated); threads>1 is the sharded
// conservative engine, whose results are identical for every N > 1, so
// the sweep isolates synchronization overhead vs parallel gain. On hosts
// with few cores the parallel legs mostly measure barrier overhead;
// speedups need real cores (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "exp/runner.hpp"

namespace {

using namespace rasc;

void bench_experiment(benchmark::State& state) {
  const int threads = int(state.range(0));
  const std::size_t nodes = std::size_t(state.range(1));

  exp::RunConfig cfg;
  cfg.world.nodes = nodes;
  cfg.world.sim_threads = threads;
  // Workload proportional to the deployment, matching bench/scalability.
  cfg.workload.num_requests = int(nodes) * 15 / 8;
  cfg.steady_duration = sim::sec(15);

  for (auto _ : state) {
    const auto metrics = exp::run_experiment(cfg);
    benchmark::DoNotOptimize(metrics.delivered);
  }
  state.counters["sim_threads"] = double(threads);
  state.counters["nodes"] = double(nodes);
}

}  // namespace

BENCHMARK(bench_experiment)
    ->ArgNames({"threads", "nodes"})
    ->Args({1, 32})
    ->Args({2, 32})
    ->Args({4, 32})
    ->Args({8, 32})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({8, 64})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
