// Reactive vs predictive SLO enforcement under sustained load drift:
// does acting on the *predicted* end-to-end latency (M/G/1 model, see
// core/latency_model.hpp) cut deadline-violating windows compared to the
// same adapter reacting to observed drops alone? Both columns run the
// "load-drift" chaos scenario with the same deadline stamped on every
// request and the same adaptation cadence; the only difference is the
// --adapt-predictive trigger. Averaged over seeded repetitions.
//
//   ./build/bench/predictive_slo [--reps 3] [--nodes 12] [--requests 10]
//       [--rate 300] [--deadline-ms 120] [--csv out.csv] [--json out.json]
//
// Exits nonzero when the acceptance gate fails: the predictive column
// must cut the violated-window fraction to <= 0.7x the reactive column
// without shipping a single extra teardown — otherwise the predictive
// trigger is either blind or thrashing.
#include <cstdio>
#include <vector>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  // Same small drift world as adaptation_drift: the paper sweep's
  // 60-request regime keeps every node contended and the model would
  // predict violations everywhere (EXPERIMENTS.md).
  sweep.base.world.nodes = std::size_t(flags.get_int("nodes", 12));
  sweep.base.workload.num_requests = int(flags.get_int("requests", 10));
  const int reps = int(flags.get_int("bench-reps", 3));
  const double rate = flags.get_double("rate", 250);
  const double deadline_ms = flags.get_double("deadline-ms", 130);
  // CPU-heavy services: queueing delay, not wire time, is what the
  // deadline fights, and what the M/G/1 model can see coming.
  const int cpu_min_ms = int(flags.get_int("cpu-min-ms", 8));
  const int cpu_max_ms = int(flags.get_int("cpu-max-ms", 16));
  const double drift_mag = flags.get_double("drift-mag", 0.3);
  // Uniform access bandwidth, unless --bw-min asked otherwise: the drift
  // scenario sags the lowest-*nominal*-bw links, and with a spread the
  // composer simply never routes through the weakest nodes — the faults
  // land on idle links and the bench measures nothing. Uniform capacity
  // makes the sagged links ordinary, loaded ones, and the sag parks their
  // utilization in the heavy-queueing band below the drop threshold:
  // latency the reactive trigger is blind to and the model is not.
  sweep.base.world.net.bw_min_kbps =
      flags.get_double("bw-min", sweep.base.world.net.bw_max_kbps);
  const int adapt_ms = int(flags.get_int("adapt-ms", 2000));
  const std::string csv_path = flags.get_string("csv", "");
  const std::string json_path = flags.get_string("json", "");
  flags.finish();
  sweep.base.world.service_cpu_min = sim::msec(cpu_min_ms);
  sweep.base.world.service_cpu_max = sim::msec(cpu_max_ms);
  // Short, tame links: end-to-end delay must be dominated by CPU queueing
  // (which the model predicts), not by wire latency (which it can only
  // route around). The paper-sweep default of 10-200ms per hop would bury
  // the queueing signal the bench is about.
  sweep.base.world.net.latency_min = sim::msec(2);
  sweep.base.world.net.latency_max = sim::msec(10);
  sweep.base.world.net.latency_jitter = 0.1;
  const std::string scenario =
      "load-drift:mag=" + std::to_string(drift_mag);

  // Column 0: reactive (deadline admission + adapter, observed-drop
  // trigger only). Column 1: predictive (same, plus the model trigger).
  const char* col_names[] = {"reactive", "predictive"};
  exp::SeriesTable table;
  table.title = "Deadline-violating windows under load drift: reactive vs "
                "predictive adaptation";
  table.row_header = "metric";
  table.col_header = "trigger";
  table.col_labels = {col_names[0], col_names[1]};

  util::ThreadPool pool(sweep.threads);
  std::vector<std::vector<exp::RunMetrics>> metrics(
      2, std::vector<exp::RunMetrics>(std::size_t(reps)));
  pool.parallel_for(2 * std::size_t(reps), [&](std::size_t i) {
    const std::size_t col = i / std::size_t(reps);
    const std::size_t rep = i % std::size_t(reps);
    exp::RunConfig run = sweep.base;
    run.algorithm = "mincost";
    run.workload.avg_rate_kbps = rate;
    run.steady_duration = sim::sec(20);
    run.chaos_scenario = scenario;
    run.chaos_seed = sweep.base_seed + std::uint64_t(rep) * 104729;
    run.world.seed = sweep.base_seed + std::uint64_t(rep) * 7919;
    run.deadline_ms = deadline_ms;
    run.adapt_interval = sim::msec(adapt_ms);
    run.adapt_predictive = col == 1;
    metrics[col][rep] = exp::run_experiment(run);
  });

  std::vector<double> violated, windows, triggers, deltas, teardowns,
      delivered;
  for (std::size_t col = 0; col < 2; ++col) {
    double vw = 0, w = 0, tr = 0, dl = 0, td = 0, df = 0;
    for (const auto& m : metrics[col]) {
      w += double(m.slo_windows);
      vw += double(m.slo_windows_violated);
      tr += double(m.predict_triggers);
      dl += double(m.adapt_deltas);
      td += double(m.adapt_teardowns);
      df += m.delivered_fraction();
    }
    const double r = double(metrics[col].size());
    violated.push_back(w > 0 ? vw / w : 0);  // pooled fraction over reps
    windows.push_back(w / r);
    triggers.push_back(tr / r);
    deltas.push_back(dl / r);
    teardowns.push_back(td / r);
    delivered.push_back(df / r);
  }
  table.row_labels = {"violated window fraction", "slo windows (mean)",
                      "predict triggers (mean)",  "adapt deltas (mean)",
                      "adapt teardowns (mean)",   "delivered fraction"};
  table.values = {violated, windows, triggers, deltas, teardowns, delivered};
  table.precision = 3;
  exp::print_table(table);
  std::printf(
      "\nexpectation: the reactive column only replans once drops show up, "
      "so the drift costs it whole violation windows; the predictive "
      "column fires when the modelled latency crosses the deadline and "
      "re-spreads rate before the queues build, cutting the violated "
      "fraction by >= 30%% at zero extra teardowns.\n");
  if (!csv_path.empty()) {
    exp::write_csv(table, csv_path);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    FILE* json = std::fopen(json_path.c_str(), "w");
    if (json != nullptr) {
      std::fprintf(json, "[");
      for (std::size_t col = 0; col < 2; ++col) {
        std::fprintf(json,
                     "%s\n  {\"name\": \"predictive_slo/%s\", "
                     "\"violated_window_fraction\": %.6f, "
                     "\"slo_windows\": %.3f, \"predict_triggers\": %.3f, "
                     "\"adapt_teardowns\": %.3f, \"delivered\": %.6f}",
                     col == 0 ? "" : ",", col_names[col], violated[col],
                     windows[col], triggers[col], teardowns[col],
                     delivered[col]);
      }
      std::fprintf(json, "\n]\n");
      std::fclose(json);
    }
  }

  // Acceptance gate (ISSUE 9): >= 30% fewer violated windows, no extra
  // teardowns.
  bool failed = false;
  if (violated[0] > 0 && violated[1] > 0.7 * violated[0]) {
    std::printf("\nFAIL: predictive violated fraction %.3f > 0.7 x "
                "reactive %.3f\n",
                violated[1], violated[0]);
    failed = true;
  }
  if (violated[0] == 0) {
    std::printf("\nFAIL: reactive column saw no violations — drift too "
                "mild to measure anything\n");
    failed = true;
  }
  if (teardowns[1] > teardowns[0]) {
    std::printf("\nFAIL: predictive trigger added teardowns (%.3f > %.3f)\n",
                teardowns[1], teardowns[0]);
    failed = true;
  }
  return failed ? 1 : 0;
}
