// Recovery latency under injected failures: how fast does supervised
// re-composition restore the delivered rate after crashing K nodes at
// once? Sweeps the failure scale (simultaneous crash count) and reports
// SLO recovery time, delivered fraction, successful recoveries, and
// abandoned apps, averaged over seeded repetitions.
//
//   ./build/bench/recovery_latency [--reps 3] [--crash-counts=1,2,4]
//       [--nodes 32] [--rate 100] [--csv out.csv]
//
// Every trial runs the same "multi-crash" scenario with count=K at 10 s;
// the SloChecker's recovery clock starts at the first crash and stops
// when the deployment-wide delivered rate climbs back to half its
// pre-fault mean (and holds). Determinism: each (K, rep) cell is a pure
// function of its seeds, so the table reproduces bit-exactly.
#include <cstdio>
#include <sstream>
#include <vector>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  const int reps = int(flags.get_int("rec-reps", 3));
  const double rate = flags.get_double("rate", 100);
  const auto counts_d = flags.get_double_list("crash-counts", {1, 2, 4});
  const std::string csv_path = flags.get_string("csv", "");
  flags.finish();

  std::vector<int> counts;
  for (double c : counts_d) counts.push_back(int(c));

  exp::SeriesTable table;
  table.title = "Recovery latency vs failure scale (multi-crash, "
                "supervised min-cost re-composition)";
  table.row_header = "metric";
  table.col_header = "simultaneous node crashes";
  for (int k : counts) table.col_labels.push_back(std::to_string(k));

  // Every (K, rep) trial is an independent Simulator; flatten onto one
  // shared pool.
  util::ThreadPool pool(sweep.threads);
  std::vector<std::vector<exp::RunMetrics>> metrics(
      counts.size(), std::vector<exp::RunMetrics>(std::size_t(reps)));
  pool.parallel_for(counts.size() * std::size_t(reps), [&](std::size_t i) {
    const std::size_t k_idx = i / std::size_t(reps);
    const std::size_t rep = i % std::size_t(reps);
    exp::RunConfig run = sweep.base;
    run.algorithm = "mincost";
    run.workload.avg_rate_kbps = rate;
    // Longer steady phase: the crash lands at 10 s and recovery needs
    // room to play out before the drain.
    run.steady_duration = sim::sec(30);
    std::ostringstream scenario;
    scenario << "multi-crash:count=" << counts[k_idx] << ",at=10s";
    run.chaos_scenario = scenario.str();
    run.chaos_seed = sweep.base_seed + std::uint64_t(rep) * 104729;
    // A generous bound: the check reports the measured recovery time;
    // the bound only decides pass/fail.
    run.slo = chaos::parse_slo("recovery<=30s");
    run.world.seed = sweep.base_seed + std::uint64_t(rep) * 7919;
    metrics[k_idx][rep] = exp::run_experiment(run);
  });

  std::vector<double> recovery_ms, delivered, recoveries, gave_up;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    double rec = 0, df = 0, rc = 0, gu = 0;
    int recovered_cells = 0;
    for (const auto& m : metrics[s]) {
      if (m.recovery_ms >= 0) {
        rec += m.recovery_ms;
        ++recovered_cells;
      }
      df += m.delivered_fraction();
      rc += double(m.recoveries);
      gu += double(m.gave_up);
    }
    const double r = double(metrics[s].size());
    recovery_ms.push_back(recovered_cells > 0 ? rec / recovered_cells : -1);
    delivered.push_back(df / r);
    recoveries.push_back(rc / r);
    gave_up.push_back(gu / r);
  }
  table.row_labels = {"recovery time (ms)", "delivered fraction",
                      "recoveries (mean)", "gave up (mean)"};
  table.values = {recovery_ms, delivered, recoveries, gave_up};
  table.precision = 3;
  exp::print_table(table);
  std::printf(
      "\nexpectation: recovery time grows mildly with the failure scale "
      "(more victims -> more concurrent re-compositions contending for "
      "the survivors' capacity) but stays bounded while spare capacity "
      "exists; delivered fraction dips with K as in-flight units on dead "
      "paths are lost. -1 means the rate never re-stabilized.\n");
  if (!csv_path.empty()) {
    exp::write_csv(table, csv_path);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  return 0;
}
