// Deployment reliability under a lossy control plane: what fraction of
// requests is admitted, and how much bandwidth reservation leaks on the
// nodes, as deploy/teardown packets are independently dropped with
// probability p? Compares the legacy single-shot deploy protocol against
// the reliable one (retransmission + rollback + orphan reaper).
//
//   ./build/bench/deploy_reliability [--rel-reps 3] [--loss-probs=0,.1,.2,.3]
//       [--rel-nodes 16] [--rel-requests 10] [--csv out.csv]
//
// Leak metric: after every stream ended, rollbacks landed and the orphan
// lease lapsed, the bandwidth still reserved for every NON-admitted app
// is summed across all nodes (bytes/s). Single-shot deployments strand
// partial reservations whenever one deploy message (or its ack) is lost;
// the reliable protocol must show zero. Determinism: each
// (config, p, rep) cell is a pure function of its seeds.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "chaos/injector.hpp"
#include "chaos/scenario.hpp"
#include "core/mincost_composer.hpp"
#include "exp/table.hpp"
#include "exp/world.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace {

struct TrialResult {
  int requests = 0;
  int admitted = 0;
  double leaked_bytes_per_sec = 0;  // non-admitted apps, end of run
  std::int64_t retries = 0;
  std::int64_t rollbacks = 0;
  std::int64_t orphans_reaped = 0;
};

TrialResult run_trial(bool reliable, double loss_prob, int requests,
                      std::size_t nodes, std::uint64_t world_seed,
                      std::uint64_t chaos_seed) {
  using namespace rasc;

  exp::WorldConfig wc;
  wc.nodes = nodes;
  wc.num_services = 6;
  wc.services_per_node = 3;
  wc.seed = world_seed;
  // Generous links: admission is protocol-bound, not capacity-bound, so
  // every composition succeeds and only deploy losses reject requests.
  wc.net.bw_min_kbps = 4000;
  wc.net.bw_max_kbps = 8000;
  if (reliable) {
    wc.deploy_policy.retransmit_budget = 3;
    wc.deploy_policy.rollback = true;
    wc.runtime_params.orphan_lease = sim::sec(4);
  }
  exp::World world(wc);
  auto& sim = world.simulator();

  std::unique_ptr<chaos::Injector> injector;
  if (loss_prob > 0) {
    std::ostringstream spec;
    spec << "control-loss:prob=" << loss_prob << ",seed=" << chaos_seed;
    injector = std::make_unique<chaos::Injector>(
        sim, world.network(), chaos::parse_scenario(spec.str()));
    injector->arm(sim.now(), sim.now() + sim::sec(60));
  }

  core::MinCostComposer composer;
  std::vector<int> verdict(std::size_t(requests), -1);  // -1 = pending
  for (int i = 0; i < requests; ++i) {
    core::ServiceRequest req;
    req.app = i + 1;
    req.source = sim::NodeIndex(std::size_t(i) % nodes);
    req.destination = sim::NodeIndex((std::size_t(i) + nodes / 2) % nodes);
    req.unit_bytes = 1250;
    std::ostringstream a, b;
    a << "svc" << (i % 4);
    b << "svc" << ((i + 1) % 4);
    req.substreams = {{{a.str(), b.str()}, 80.0}};
    const auto submit_at = sim.now() + sim::SimDuration(i) * sim::msec(400);
    auto& coord = world.host(std::size_t(req.source)).coordinator();
    sim.call_at(submit_at, [&coord, &composer, &sim, req, &verdict, i] {
      coord.submit(req, composer, sim.now() + sim::sec(1),
                   sim.now() + sim::sec(6),
                   [&verdict, i](const core::SubmitOutcome& o) {
                     verdict[std::size_t(i)] = o.compose.admitted ? 1 : 0;
                   });
    });
  }

  // Streams end by ~+11s, the 5s deploy deadline and rollbacks by ~+10s,
  // and a 4s orphan lease lapses well before +30s.
  sim.run_until(sim.now() + sim::sec(30));

  TrialResult r;
  r.requests = requests;
  for (int i = 0; i < requests; ++i) {
    if (verdict[std::size_t(i)] == 1) {
      ++r.admitted;
      continue;
    }
    // Rejected (or never-resolved) app: anything still reserved for it
    // anywhere is a leak. 1 kbps = 125 bytes/s.
    for (std::size_t n = 0; n < world.size(); ++n) {
      r.leaked_bytes_per_sec +=
          world.host(n).runtime().reserved_kbps_for_app(i + 1) * 125.0;
    }
  }
  r.retries = world.metrics().counter_total("deploy.retries");
  r.rollbacks = world.metrics().counter_total("deploy.rollbacks");
  r.orphans_reaped = world.metrics().counter_total("orphan.reaped");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  const int reps = int(flags.get_int("rel-reps", 3));
  const int requests = int(flags.get_int("rel-requests", 10));
  const std::size_t nodes = std::size_t(flags.get_int("rel-nodes", 16));
  const auto probs = flags.get_double_list("loss-probs", {0, 0.1, 0.2, 0.3});
  const std::uint64_t base_seed = std::uint64_t(flags.get_int("seed", 42));
  const std::size_t threads = std::size_t(flags.get_int("threads", 0));
  const std::string csv_path = flags.get_string("csv", "");
  flags.finish();

  exp::SeriesTable table;
  table.title = "Deployment reliability vs control-plane loss "
                "(single-shot vs retransmit+rollback+reaper)";
  table.row_header = "metric";
  table.col_header = "deploy-plane loss probability";
  for (double p : probs) {
    std::ostringstream os;
    os << p;
    table.col_labels.push_back(os.str());
  }

  // config 0 = single-shot, config 1 = reliable; all trials independent.
  std::vector<std::vector<TrialResult>> results(
      2 * probs.size(), std::vector<TrialResult>(std::size_t(reps)));
  util::ThreadPool pool(threads);
  pool.parallel_for(results.size() * std::size_t(reps), [&](std::size_t i) {
    const std::size_t cell = i / std::size_t(reps);
    const std::size_t rep = i % std::size_t(reps);
    const bool reliable = cell >= probs.size();
    const double p = probs[cell % probs.size()];
    results[cell][rep] =
        run_trial(reliable, p, requests, nodes,
                  base_seed + rep * 7919, base_seed + rep * 104729);
  });

  const auto mean = [&](std::size_t cell, auto&& get) {
    double sum = 0;
    for (const auto& r : results[cell]) sum += double(get(r));
    return sum / double(results[cell].size());
  };
  std::vector<double> adm_ss, adm_rel, leak_ss, leak_rel, retries, rollbacks,
      reaped;
  for (std::size_t p = 0; p < probs.size(); ++p) {
    const std::size_t ss = p, rel = probs.size() + p;
    adm_ss.push_back(mean(ss, [](const TrialResult& r) {
      return double(r.admitted) / double(r.requests);
    }));
    adm_rel.push_back(mean(rel, [](const TrialResult& r) {
      return double(r.admitted) / double(r.requests);
    }));
    leak_ss.push_back(
        mean(ss, [](const TrialResult& r) { return r.leaked_bytes_per_sec; }));
    leak_rel.push_back(mean(
        rel, [](const TrialResult& r) { return r.leaked_bytes_per_sec; }));
    retries.push_back(
        mean(rel, [](const TrialResult& r) { return double(r.retries); }));
    rollbacks.push_back(
        mean(rel, [](const TrialResult& r) { return double(r.rollbacks); }));
    reaped.push_back(mean(
        rel, [](const TrialResult& r) { return double(r.orphans_reaped); }));
  }
  table.row_labels = {
      "admitted fraction (single-shot)", "admitted fraction (reliable)",
      "leaked reservation B/s (single-shot)",
      "leaked reservation B/s (reliable)", "retries (reliable, mean)",
      "rollbacks (reliable, mean)",       "orphans reaped (reliable, mean)"};
  table.values = {adm_ss, adm_rel, leak_ss, leak_rel,
                  retries, rollbacks, reaped};
  table.precision = 3;
  exp::print_table(table);
  std::printf(
      "\nexpectation: single-shot admission decays with p and strands "
      "reserved bandwidth on partially-deployed nodes; the reliable "
      "protocol holds admission near 1 until p is severe and leaks "
      "exactly zero bytes (rollback releases NACK/timeout remnants, the "
      "lease reaper collects anything a lost teardown left behind).\n");
  if (!csv_path.empty()) {
    exp::write_csv(table, csv_path);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  return 0;
}
