// Figure 7: average end-to-end delay of delivered data units (ms).
#include "figures_common.hpp"

int main(int argc, char** argv) {
  return rasc::bench::run_figure(
      argc, argv, "Figure 7 — average end-to-end delay (msec)",
      "min-cost delay is 20-70% lower than greedy and 25-75% lower than "
      "random, despite carrying more admitted load (it spreads "
      "computationally intensive services across many nodes)",
      [](const rasc::exp::RunMetrics& m) { return m.mean_delay_ms(); },
      /*precision=*/1);
}
