// Ablation: the value of rate splitting — RASC's distinguishing feature
// (paper §1: "a distinguishing characteristic of our approach is ...
// employing two or more instances of the same component on different
// nodes ... to achieve the desired rate allocation").
//
// Compares full min-cost composition against the identical cost model
// restricted to a single component instance per stage.
#include <cstdio>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  // Splitting matters when one stage's rate approaches a single node's
  // capacity: sweep rates up to and beyond the strongest node's access
  // bandwidth (narrowed to 300-1200 Kbps here), unless the user asked
  // for specific values.
  sweep.rates_kbps = flags.get_double_list("rates", {100, 200, 400, 700});
  sweep.base.world.net.bw_min_kbps = flags.get_double("bw-min", 300);
  sweep.base.world.net.bw_max_kbps = flags.get_double("bw-max", 1200);
  sweep.base.workload.num_requests =
      int(flags.get_int("requests", 30));
  flags.finish();
  sweep.algorithms = {"mincost", "mincost-nosplit"};

  const auto result = exp::run_sweep(sweep);
  for (const auto& [title, extract] :
       std::vector<std::pair<std::string,
                             std::function<double(const exp::RunMetrics&)>>>{
           {"Ablation(splitting) — requests composed",
            [](const exp::RunMetrics& m) { return double(m.composed); }},
           {"Ablation(splitting) — delivered fraction",
            [](const exp::RunMetrics& m) { return m.delivered_fraction(); }},
           {"Ablation(splitting) — components per stage",
            [](const exp::RunMetrics& m) { return m.splitting_degree(); }},
       }) {
    exp::print_table(exp::make_table(sweep, result, title, extract));
  }
  std::printf(
      "\nexpectation: as the per-request rate approaches single-node "
      "capacity, splitting keeps the delivered fraction high (no single "
      "node is pushed to its limit) while the no-split variant degrades; "
      "admission counts stay comparable because the shared endpoint "
      "uplinks, not provider fragmentation, bound the marginal request "
      "(the per-request admission advantage is exercised directly in "
      "tests/test_composers.cpp: GreedyWouldRejectWhatSplittingAdmits).\n");
  return 0;
}
