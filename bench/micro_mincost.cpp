// Micro-benchmark: min-cost flow solver scaling on composition-shaped
// layered graphs (stages × candidate width), plus the full
// CompositionGraph build + solve as invoked per substream.
#include <benchmark/benchmark.h>

#include "core/composition_graph.hpp"
#include "flow/cycle_cancel.hpp"
#include "flow/ssp.hpp"
#include "util/rng.hpp"

namespace {

using namespace rasc;

flow::Graph make_layered(int layers, int width, util::Xoshiro256& rng,
                         flow::NodeId* source, flow::NodeId* sink) {
  flow::Graph g;
  *source = g.add_node();
  *sink = g.add_node();
  auto nodes = std::vector<std::vector<flow::NodeId>>(std::size_t(layers));
  for (auto& layer : nodes) {
    for (int j = 0; j < width; ++j) layer.push_back(g.add_node());
  }
  for (int j = 0; j < width; ++j) {
    g.add_arc(*source, nodes[0][std::size_t(j)], rng.uniform_int(5, 50),
              rng.uniform_int(0, 100));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        g.add_arc(nodes[std::size_t(l)][std::size_t(a)],
                  nodes[std::size_t(l) + 1][std::size_t(b)],
                  rng.uniform_int(5, 50), rng.uniform_int(0, 100));
      }
    }
  }
  for (int j = 0; j < width; ++j) {
    g.add_arc(nodes[std::size_t(layers) - 1][std::size_t(j)], *sink,
              rng.uniform_int(5, 50), rng.uniform_int(0, 100));
  }
  return g;
}

void BM_SspLayered(benchmark::State& state) {
  const int layers = int(state.range(0));
  const int width = int(state.range(1));
  util::Xoshiro256 rng(7);
  flow::NodeId s, t;
  const auto base = make_layered(layers, width, rng, &s, &t);
  for (auto _ : state) {
    auto g = base;
    const auto r = flow::min_cost_flow_ssp(g, s, t, width * 20);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          base.num_arcs());
}
BENCHMARK(BM_SspLayered)
    ->Args({3, 4})
    ->Args({5, 16})
    ->Args({5, 64})
    ->Args({8, 64});

void BM_CycleCancelLayered(benchmark::State& state) {
  const int layers = int(state.range(0));
  const int width = int(state.range(1));
  util::Xoshiro256 rng(7);
  flow::NodeId s, t;
  const auto base = make_layered(layers, width, rng, &s, &t);
  for (auto _ : state) {
    auto g = base;
    const auto r = flow::min_cost_flow_cycle_cancel(g, s, t, width * 20);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_CycleCancelLayered)->Args({3, 4})->Args({5, 16});

void BM_CompositionGraphSolve(benchmark::State& state) {
  // The per-substream workload RASC's composer issues: paper scale is 16
  // providers per service, 2-5 stages.
  const int stages = int(state.range(0));
  const int providers = int(state.range(1));
  util::Xoshiro256 rng(11);
  auto caps =
      std::vector<std::vector<core::CandidateCap>>(std::size_t(stages));
  for (auto& stage : caps) {
    for (int p = 0; p < providers; ++p) {
      stage.push_back(core::CandidateCap{
          sim::NodeIndex(p), rng.uniform_double(2.0, 30.0),
          rng.uniform_double(0.0, 0.2), rng.uniform_double(0.0, 1.0)});
    }
  }
  for (auto _ : state) {
    core::CompositionGraph cg(caps, 1000.0, 1000.0, 20.0);
    const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(),
                                           cg.sink(), cg.demand());
    benchmark::DoNotOptimize(r.flow);
    auto shares = cg.extract_shares();
    benchmark::DoNotOptimize(shares.size());
  }
}
BENCHMARK(BM_CompositionGraphSolve)
    ->Args({2, 16})
    ->Args({5, 16})
    ->Args({5, 64});

}  // namespace

BENCHMARK_MAIN();
