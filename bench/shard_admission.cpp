// Sharded control plane: admission ratio and admission-latency p99 vs
// offered load, one coordinator against K coordinator shards composing
// batches over leased capacity views.
//
//   ./build/bench/shard_admission [--nodes 200] [--requests 300]
//       [--shards=1,4] [--gaps-ms=400,200,100,50] [--reps 3]
//       [--rate 100] [--policy fifo] [--csv out.csv] [--json out.json]
//       [--threads 0] [--chaos] [--no-chaos]
//
// Offered load rises as the submission gap shrinks. Per cell the table
// reports the admission ratio, the p99 admission latency (enqueue ->
// admitted; compose.latency_ms for the unsharded coordinator,
// shard.latency_ms for K > 1), the delivered fraction of what was
// admitted, and the lease counters. The chaos leg re-runs the highest
// load with control-loss and coordinator-crash faults injected.
//
// Invariant gate: lease.overgrant_kbps must be 0.0 in EVERY cell — a
// single node promising more bandwidth than it has (double reservation
// across shards) fails the whole benchmark with a nonzero exit, so CI
// can run this binary as a correctness check, not just a perf probe.
//
// Scale note: the issue's aspiration was 1k nodes / 10k apps; the
// overlay bootstrap (DHT registration) currently tops out near ~250
// nodes, so the benchmark runs the largest stable configuration (200
// nodes, up to 600 apps via --requests) — see EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rasc;

struct Cell {
  int shards = 0;
  int gap_ms = 0;
  bool chaos = false;
  int rep = 0;
  // Averaged over reps at print time; one row per rep internally.
  double admission_ratio = 0;
  double latency_p99_ms = 0;
  double delivered = 0;
  std::int64_t net_drops = 0;
  std::int64_t repairs = 0;
  std::int64_t nacks = 0;
  double overgrant_kbps = 0;
};

double admission_p99_ms(const std::vector<obs::MetricRow>& snapshot,
                        int shards) {
  const std::string key =
      shards > 1 ? "shard.latency_ms" : "compose.latency_ms";
  // Histogram cells are per-label; take the max p99 over them (the
  // merged-histogram p99 is not recoverable from the rows, and the max
  // is the honest tail bound).
  double p99 = 0;
  for (const auto& row : snapshot) {
    if (row.name != key || row.count == 0) continue;
    if (row.p99 > p99) p99 = row.p99;
  }
  return p99;
}

Cell run_cell(int shards, int gap_ms, bool chaos, int rep,
              const exp::RunConfig& base, std::uint64_t base_seed) {
  exp::RunConfig config = base;
  config.coordinators = shards;
  config.submit_gap = sim::msec(gap_ms);
  config.world.seed = base_seed + std::uint64_t(rep) * 7919;
  if (chaos) {
    // Lossy control plane: 20% of deploy/ack/teardown packets are
    // dropped for the whole run. The scenario is designed to pair with
    // the retransmitting deploy protocol (single-shot deploys would
    // nearly all lose at least one of their messages), so arm it; the
    // invariant under test is that retries + lease NACK-repair never
    // let a node double-promise bandwidth.
    config.chaos_scenario = "control-loss";
    config.chaos_seed = 77 + std::uint64_t(rep);
    config.world.deploy_policy.retransmit_budget = 3;
  }

  std::vector<obs::MetricRow> snapshot;
  const exp::RunMetrics m = exp::run_experiment(config, &snapshot);

  Cell cell;
  cell.shards = shards;
  cell.gap_ms = gap_ms;
  cell.chaos = chaos;
  cell.rep = rep;
  cell.admission_ratio =
      m.requests ? double(m.composed) / m.requests : 0;
  cell.latency_p99_ms = admission_p99_ms(snapshot, shards);
  cell.delivered = m.delivered_fraction();
  cell.net_drops = m.drops_network;
  cell.repairs = m.shard_repairs;
  cell.nacks = m.lease_nacks;
  cell.overgrant_kbps = m.lease_overgrant_kbps;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  exp::RunConfig base;
  base.world.nodes = std::size_t(flags.get_int("nodes", 200));
  base.world.num_services = 10;
  base.world.services_per_node = 5;
  base.world.net.bw_min_kbps = flags.get_double("bw-min", 300);
  base.world.net.bw_max_kbps = flags.get_double("bw-max", 4000);
  base.workload.num_requests = int(flags.get_int("requests", 300));
  base.workload.avg_rate_kbps = flags.get_double("rate", 100);
  base.workload.min_services = 2;
  base.workload.max_services = 5;
  base.workload.unit_bytes = 1250;
  base.steady_duration = sim::sec(flags.get_int("steady-sec", 10));
  base.admission_policy = flags.get_string("policy", "fifo");
  // Rollback keeps lease accounting exact for the unsharded baseline
  // too, so the comparison isolates sharding, not deploy reliability.
  base.world.deploy_policy.rollback = true;

  const auto shard_counts = flags.get_double_list("shards", {1, 4});
  const auto gaps = flags.get_double_list("gaps-ms", {400, 200, 100, 50});
  const int reps = int(flags.get_int("reps", 3));
  const std::uint64_t seed = std::uint64_t(flags.get_int("seed", 42));
  const bool chaos = flags.get_bool("chaos", true);
  const std::string csv_path = flags.get_string("csv", "");
  const std::string json_path = flags.get_string("json", "");
  const std::size_t threads = std::size_t(flags.get_int("threads", 0));
  flags.finish();

  struct Job {
    int shards, gap_ms, rep;
    bool chaos;
  };
  std::vector<Job> jobs;
  for (const double k : shard_counts) {
    for (const double gap : gaps) {
      for (int r = 0; r < reps; ++r) {
        jobs.push_back({int(k), int(gap), r, false});
      }
    }
  }
  if (chaos) {
    // Chaos leg: highest offered load only, sharded configs only.
    for (const double k : shard_counts) {
      if (int(k) <= 1) continue;
      for (int r = 0; r < reps; ++r) {
        jobs.push_back({int(k), int(gaps.back()), r, true});
      }
    }
  }

  util::ThreadPool pool(threads);
  std::vector<Cell> cells(jobs.size());
  pool.parallel_for(jobs.size(), [&jobs, &cells, &base, seed](
                                     std::size_t i) {
    const Job& j = jobs[i];
    cells[i] = run_cell(j.shards, j.gap_ms, j.chaos, j.rep, base, seed);
  });

  std::printf(
      "sharded admission: %zu nodes, %d apps, rate %.0f kbps, "
      "policy %s, %d rep(s)\n",
      base.world.nodes, base.workload.num_requests,
      base.workload.avg_rate_kbps, base.admission_policy.c_str(), reps);
  std::printf(
      "%-6s %-8s %-6s | %-9s %-12s %-9s %-9s %-8s %-8s %s\n", "K",
      "gap_ms", "chaos", "admitted", "p99_lat_ms", "delivered",
      "netdrops", "repairs", "nacks", "overgrant");

  bool overgrant_violated = false;
  FILE* csv = csv_path.empty() ? nullptr : std::fopen(csv_path.c_str(), "w");
  if (csv) {
    std::fprintf(csv,
                 "shards,gap_ms,chaos,admission_ratio,latency_p99_ms,"
                 "delivered,net_drops,repairs,nacks,overgrant_kbps\n");
  }
  FILE* json = json_path.empty() ? nullptr
                                 : std::fopen(json_path.c_str(), "w");
  if (json) std::fprintf(json, "[");

  // Aggregate reps per (K, gap, chaos) in job construction order.
  for (std::size_t i = 0; i < cells.size(); i += std::size_t(reps)) {
    Cell mean = cells[i];
    for (int r = 1; r < reps; ++r) {
      const Cell& c = cells[i + std::size_t(r)];
      mean.admission_ratio += c.admission_ratio;
      mean.latency_p99_ms += c.latency_p99_ms;
      mean.delivered += c.delivered;
      mean.net_drops += c.net_drops;
      mean.repairs += c.repairs;
      mean.nacks += c.nacks;
      if (c.overgrant_kbps > mean.overgrant_kbps) {
        mean.overgrant_kbps = c.overgrant_kbps;
      }
    }
    mean.admission_ratio /= reps;
    mean.latency_p99_ms /= reps;
    mean.delivered /= reps;
    mean.net_drops /= reps;
    mean.repairs /= reps;
    mean.nacks /= reps;
    if (mean.overgrant_kbps > 0) overgrant_violated = true;

    std::printf(
        "%-6d %-8d %-6s | %-9.3f %-12.1f %-9.3f %-9lld %-8lld %-8lld "
        "%.3f\n",
        mean.shards, mean.gap_ms, mean.chaos ? "yes" : "no",
        mean.admission_ratio, mean.latency_p99_ms, mean.delivered,
        static_cast<long long>(mean.net_drops),
        static_cast<long long>(mean.repairs),
        static_cast<long long>(mean.nacks), mean.overgrant_kbps);
    if (csv) {
      std::fprintf(csv, "%d,%d,%d,%.6f,%.3f,%.6f,%lld,%lld,%lld,%.6f\n",
                   mean.shards, mean.gap_ms, mean.chaos ? 1 : 0,
                   mean.admission_ratio, mean.latency_p99_ms,
                   mean.delivered, static_cast<long long>(mean.net_drops),
                   static_cast<long long>(mean.repairs),
                   static_cast<long long>(mean.nacks),
                   mean.overgrant_kbps);
    }
    if (json) {
      std::fprintf(
          json,
          "%s\n  {\"name\": \"shard_admission/K=%d/gap_ms=%d%s\", "
          "\"admission_ratio\": %.6f, \"latency_p99_ms\": %.3f, "
          "\"delivered\": %.6f, \"overgrant_kbps\": %.6f}",
          i == 0 ? "" : ",", mean.shards, mean.gap_ms,
          mean.chaos ? "/chaos" : "", mean.admission_ratio,
          mean.latency_p99_ms, mean.delivered, mean.overgrant_kbps);
    }
  }
  if (csv) std::fclose(csv);
  if (json) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }

  std::printf(
      "expectation: K=4 holds delivered ~1.0 under overload where K=1 "
      "over-admits and drops on the wire; admission p99 stays bounded "
      "by the batch cadence; overgrant is 0.0 everywhere (no node ever "
      "double-promises bandwidth, chaos included)\n");
  if (overgrant_violated) {
    std::fprintf(stderr,
                 "FAIL: lease.overgrant_kbps > 0 — a node over-promised "
                 "bandwidth\n");
    return 1;
  }
  return 0;
}
