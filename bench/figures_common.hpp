// Shared scaffolding for the figure-reproduction benchmarks.
//
// Every fig*_ binary sweeps average requested rate ∈ {50,100,150,200} Kbps
// over the three composition algorithms on the paper's deployment (§4.1:
// 32 nodes, 10 services, 5 per node, requests of 2–5 services, 5 seeded
// repetitions) and prints one table whose rows mirror the paper's figure
// series. Absolute numbers differ from PlanetLab 2007; the *shape*
// (ordering, rough factors, crossovers) is the reproduction target —
// see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "exp/sweep.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace rasc::bench {

/// Paper-calibrated sweep configuration, overridable from the command
/// line: --reps, --requests, --nodes, --rates=50,100,150,200, --threads.
inline exp::SweepConfig paper_sweep(util::Flags& flags) {
  exp::SweepConfig sweep;

  exp::RunConfig& base = sweep.base;
  base.world.nodes = std::size_t(flags.get_int("nodes", 32));
  base.world.num_services = 10;
  base.world.services_per_node = 5;
  // PlanetLab slices are bandwidth-capped; tight access links make
  // admission the binding constraint, as in the paper's testbed.
  base.world.net.bw_min_kbps = flags.get_double("bw-min", 300);
  base.world.net.bw_max_kbps = flags.get_double("bw-max", 4000);

  base.workload.num_requests = int(flags.get_int("requests", 60));
  base.workload.min_services = 2;
  base.workload.max_services = 5;
  base.workload.unit_bytes = 1250;

  base.submit_gap = sim::msec(flags.get_int("submit-gap-ms", 700));
  base.steady_duration = sim::sec(flags.get_int("steady-sec", 15));

  sweep.rates_kbps = flags.get_double_list("rates", {50, 100, 150, 200});
  sweep.repetitions = int(flags.get_int("reps", 5));
  sweep.base_seed = std::uint64_t(flags.get_int("seed", 42));
  sweep.threads = std::size_t(flags.get_int("threads", 0));
  return sweep;
}

/// Runs the sweep, prints the table, optionally mirrors it to CSV
/// (--csv=path), and echoes the paper's qualitative expectation.
inline int run_figure(int argc, char** argv, const std::string& title,
                      const std::string& expectation,
                      const std::function<double(const exp::RunMetrics&)>&
                          extract,
                      int precision = 3) {
  util::Flags flags(argc, argv);
  const auto sweep = paper_sweep(flags);
  const std::string csv_path = flags.get_string("csv", "");
  flags.finish();

  // One pool for the whole figure: every (algorithm × rate × repetition)
  // trial is an independent Simulator, so they all run in parallel.
  util::ThreadPool pool(sweep.threads);
  const auto result = exp::run_sweep(sweep, pool);
  const auto table = exp::make_table(sweep, result, title, extract,
                                     precision);
  exp::print_table(table);
  std::printf("paper expectation: %s\n", expectation.c_str());
  if (!csv_path.empty()) {
    exp::write_csv(table, csv_path);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace rasc::bench
