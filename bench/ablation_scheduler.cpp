// Ablation: the paper's least-laxity scheduler (§3.4) against FIFO and
// EDF, under min-cost composition.
#include <cstdio>
#include <sstream>

#include "figures_common.hpp"
#include "runtime/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  flags.finish();
  sweep.algorithms = {"mincost"};
  // Scheduling only matters when the CPU actually contends: use
  // heavyweight services (8-25 ms per unit) so nodes hosting several
  // components saturate their processor under load.
  sweep.base.world.service_cpu_min = sim::msec(8);
  sweep.base.world.service_cpu_max = sim::msec(25);

  struct Policy {
    const char* name;
    runtime::SchedulingPolicy policy;
  };
  const Policy policies[] = {
      {"llf", runtime::SchedulingPolicy::kLeastLaxity},
      {"edf", runtime::SchedulingPolicy::kEdf},
      {"fifo", runtime::SchedulingPolicy::kFifo},
  };

  // One sweep per policy, merged into a single table keyed by policy.
  exp::SeriesTable delivered, timely, delay;
  for (auto* t : {&delivered, &timely, &delay}) {
    t->row_header = "scheduler";
    t->col_header = "average rate (Kb/sec)";
    for (double r : sweep.rates_kbps) {
      std::ostringstream os;
      os << r;
      t->col_labels.push_back(os.str());
    }
  }
  delivered.title = "Ablation(scheduler) — delivered fraction";
  timely.title = "Ablation(scheduler) — timely fraction";
  delay.title = "Ablation(scheduler) — mean delay (ms)";
  delay.precision = 1;

  for (const auto& p : policies) {
    auto cfg = sweep;
    cfg.base.world.runtime_params.policy = p.policy;
    const auto result = exp::run_sweep(cfg);
    std::vector<double> d_row, t_row, l_row;
    for (double rate : cfg.rates_kbps) {
      d_row.push_back(result.mean("mincost", rate, [](const auto& m) {
        return m.delivered_fraction();
      }));
      t_row.push_back(result.mean("mincost", rate, [](const auto& m) {
        return m.timely_fraction();
      }));
      l_row.push_back(result.mean("mincost", rate, [](const auto& m) {
        return m.mean_delay_ms();
      }));
    }
    delivered.row_labels.push_back(p.name);
    delivered.values.push_back(d_row);
    timely.row_labels.push_back(p.name);
    timely.values.push_back(t_row);
    delay.row_labels.push_back(p.name);
    delay.values.push_back(l_row);
  }
  exp::print_table(delivered);
  exp::print_table(timely);
  exp::print_table(delay);
  std::printf(
      "\nexpectation: LLF (the paper's policy) sheds hopeless units early "
      "and keeps timely delivery at least as high as EDF; FIFO wastes "
      "capacity on units that will miss anyway under load.\n");
  return 0;
}
