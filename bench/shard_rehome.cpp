// Shard re-homing under a coordinator crash: how much of the delivered
// stream a standby takeover recovers, against a no-crash baseline and a
// crash with no standby.
//
//   ./build/bench/shard_rehome [--nodes 24] [--shards 4] [--requests 16]
//       [--rate 100] [--gap-ms 500] [--steady-sec 12] [--seed 2]
//       [--crash-at "6s"] [--csv out.csv]
//
// Three legs, same seed and workload:
//   baseline   no fault injected
//   crash      shard 0's home dies at --crash-at, no standby
//   rehome     same crash, per-shard standbys + the submission journal
//
// Invariant gates (nonzero exit on violation, so CI can run this binary
// as a correctness check):
//   - rehome leg:   delivered fraction >= 0.9x the no-crash baseline
//                   and exactly one standby takeover happened
//   - every leg:    lease.overgrant_kbps == 0 (no node double-promised
//                   bandwidth, fenced zombie or not)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "util/flags.hpp"

namespace {

using namespace rasc;

struct Leg {
  const char* name;
  exp::RunMetrics m;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  exp::RunConfig base;
  base.world.nodes = std::size_t(flags.get_int("nodes", 24));
  base.world.num_services = 6;
  base.world.services_per_node = 3;
  base.world.seed = std::uint64_t(flags.get_int("seed", 2));
  base.world.net.bw_min_kbps = 3000;
  base.world.net.bw_max_kbps = 6000;
  base.workload.num_requests = int(flags.get_int("requests", 16));
  base.workload.avg_rate_kbps = flags.get_double("rate", 100);
  base.submit_gap = sim::msec(flags.get_int("gap-ms", 500));
  base.steady_duration = sim::sec(flags.get_int("steady-sec", 12));
  base.coordinators = int(flags.get_int("shards", 4));
  // Tight leases so the crash is suspected (and the standby fences the
  // dead primary) within a few seconds of the fault.
  base.lease_duration = sim::sec(2);
  base.lease_renew = sim::msec(800);
  const std::string crash_at = flags.get_string("crash-at", "6s");
  const std::string csv_path = flags.get_string("csv", "");
  flags.finish();

  // Crash shard 0's home (node 0 under the plane's s*N/K placement)
  // once streams are established; the scenario's control-delay fault
  // rides along as in the reliability drills.
  const std::string crash_scenario =
      "coordinator-crash:node=0,at=" + crash_at;

  std::vector<Leg> legs;
  {
    exp::RunConfig cfg = base;
    legs.push_back({"baseline", exp::run_experiment(cfg)});
  }
  {
    exp::RunConfig cfg = base;
    cfg.chaos_scenario = crash_scenario;
    legs.push_back({"crash", exp::run_experiment(cfg)});
  }
  {
    exp::RunConfig cfg = base;
    cfg.chaos_scenario = crash_scenario;
    cfg.shard_standby = true;
    cfg.submit_retry = sim::msec(1500);
    legs.push_back({"rehome", exp::run_experiment(cfg)});
  }

  std::printf(
      "shard re-homing: %zu nodes, K=%d, %d apps, crash at %s\n",
      base.world.nodes, base.coordinators, base.workload.num_requests,
      crash_at.c_str());
  std::printf("%-9s | %-9s %-9s %-9s %-8s %-8s %-8s %-8s %-8s %-8s %s\n",
              "leg", "composed", "delivered", "frac", "rehomes", "adopted",
              "reclaim", "fenced", "resubmit", "failover", "overgrant");

  FILE* csv = csv_path.empty() ? nullptr : std::fopen(csv_path.c_str(), "w");
  if (csv) {
    std::fprintf(csv,
                 "leg,composed,delivered,delivered_fraction,rehomes,"
                 "adopted,reclaimed,fenced,resubmits,failovers,"
                 "overgrant_kbps\n");
  }
  for (const Leg& leg : legs) {
    std::printf(
        "%-9s | %-9d %-9lld %-9.3f %-8lld %-8lld %-8lld %-8lld %-8lld "
        "%-8lld %.3f\n",
        leg.name, leg.m.composed, static_cast<long long>(leg.m.delivered),
        leg.m.delivered_fraction(),
        static_cast<long long>(leg.m.shard_rehomes),
        static_cast<long long>(leg.m.shard_adopted),
        static_cast<long long>(leg.m.shard_reclaimed),
        static_cast<long long>(leg.m.shard_fenced),
        static_cast<long long>(leg.m.shard_resubmits),
        static_cast<long long>(leg.m.shard_failovers),
        leg.m.lease_overgrant_kbps);
    if (csv) {
      std::fprintf(
          csv, "%s,%d,%lld,%.6f,%lld,%lld,%lld,%lld,%lld,%lld,%.6f\n",
          leg.name, leg.m.composed,
          static_cast<long long>(leg.m.delivered),
          leg.m.delivered_fraction(),
          static_cast<long long>(leg.m.shard_rehomes),
          static_cast<long long>(leg.m.shard_adopted),
          static_cast<long long>(leg.m.shard_reclaimed),
          static_cast<long long>(leg.m.shard_fenced),
          static_cast<long long>(leg.m.shard_resubmits),
          static_cast<long long>(leg.m.shard_failovers),
          leg.m.lease_overgrant_kbps);
    }
  }
  if (csv) std::fclose(csv);

  int rc = 0;
  const double baseline = legs[0].m.delivered_fraction();
  const double rehomed = legs[2].m.delivered_fraction();
  if (rehomed < 0.9 * baseline) {
    std::fprintf(stderr,
                 "FAIL: rehome delivered fraction %.3f < 0.9 x baseline "
                 "%.3f\n",
                 rehomed, baseline);
    rc = 1;
  }
  if (legs[2].m.shard_rehomes != 1) {
    std::fprintf(stderr, "FAIL: expected exactly 1 takeover, saw %lld\n",
                 static_cast<long long>(legs[2].m.shard_rehomes));
    rc = 1;
  }
  for (const Leg& leg : legs) {
    if (leg.m.lease_overgrant_kbps > 0) {
      std::fprintf(stderr, "FAIL: %s leg overgranted %.3f kbps\n", leg.name,
                   leg.m.lease_overgrant_kbps);
      rc = 1;
    }
  }
  if (rc == 0) std::printf("all re-homing gates passed\n");
  return rc;
}
