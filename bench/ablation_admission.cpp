// Ablation: measurement-driven admission (the paper's model — availability
// inferred from observed utilization, §3.2) vs our reservation-aware
// extension, where nodes advertise the bandwidth already committed to
// admitted streams.
#include <cstdio>
#include <sstream>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  flags.finish();
  sweep.algorithms = {"mincost"};

  exp::SeriesTable composed, delivered, jitter;
  for (auto* t : {&composed, &delivered, &jitter}) {
    t->row_header = "admission";
    t->col_header = "average rate (Kb/sec)";
    for (double r : sweep.rates_kbps) {
      std::ostringstream os;
      os << r;
      t->col_labels.push_back(os.str());
    }
  }
  composed.title = "Ablation(admission) — requests composed";
  composed.precision = 1;
  delivered.title = "Ablation(admission) — delivered fraction";
  jitter.title = "Ablation(admission) — mean jitter (ms)";
  jitter.precision = 2;

  for (bool reservations : {false, true}) {
    auto cfg = sweep;
    cfg.base.world.monitor_params.advertise_reservations = reservations;
    const auto result = exp::run_sweep(cfg);
    const std::string label =
        reservations ? "reservation-aware" : "measured-only";
    std::vector<double> c_row, d_row, j_row;
    for (double rate : cfg.rates_kbps) {
      c_row.push_back(result.mean("mincost", rate, [](const auto& m) {
        return double(m.composed);
      }));
      d_row.push_back(result.mean("mincost", rate, [](const auto& m) {
        return m.delivered_fraction();
      }));
      j_row.push_back(result.mean("mincost", rate, [](const auto& m) {
        return m.mean_jitter_ms();
      }));
    }
    composed.row_labels.push_back(label);
    composed.values.push_back(c_row);
    delivered.row_labels.push_back(label);
    delivered.values.push_back(d_row);
    jitter.row_labels.push_back(label);
    jitter.values.push_back(j_row);
  }
  exp::print_table(composed);
  exp::print_table(delivered);
  exp::print_table(jitter);
  std::printf(
      "\nexpectation: reservation-aware admission composes fewer requests "
      "(commitments visible before traffic materializes) but delivers a "
      "higher fraction of what it admits.\n");
  return 0;
}
