// Figure 11: average jitter (ms) — how far past the deadline implied by
// the previous arrival plus the required period units arrive.
#include "figures_common.hpp"

int main(int argc, char** argv) {
  return rasc::bench::run_figure(
      argc, argv, "Figure 11 — average jitter (msec)",
      "min-cost composition yields several times less jitter than greedy "
      "(paper: 3-10x) and random (paper: 4-8x)",
      [](const rasc::exp::RunMetrics& m) { return m.mean_jitter_ms(); },
      /*precision=*/2);
}
