// Gossip control plane: plan quality and admission rate vs the
// centralized min-cost-flow optimum, as a function of the gossip byte
// budget and staleness window, plus the bandwidth-scaling leg that shows
// per-node gossip control traffic is O(fanout), not O(N).
//
//   ./build/bench/gossip_quality [--nodes 64] [--requests 60]
//       [--budgets=640,1600,3200,6400] [--stale-rounds=10,30]
//       [--scale-nodes=64,128,200] [--reps 3] [--rate 100]
//       [--csv out.csv] [--json out.json] [--threads 0]
//
// Leg A (scaling): fixed fanout/budget, growing fleet. The reported
// per-node digest bytes per round must stay flat (and under the budget)
// from 64 to 200 nodes — each node talks to `fanout` rotating peers under
// a hard byte cap, so fleet size only stretches the view-coverage cycle,
// never the wire bill.
//
// Leg B (quality): fixed fleet, budget x staleness sweep, each cell
// paired against a centralized mincost run of the identical workload.
// Reported gaps: admission ratio and mean end-to-end delay (the plan-cost
// proxy the paper's §4.2 tables use), gossip relative to centralized.
// Smaller budgets mean slower view coverage; larger stale windows mean
// mouldier summaries — both widen the gap, which is the tradeoff curve
// this benchmark draws.
//
// Invariant gate: at the DEFAULT budget (3200 B/round) and staleness (30
// rounds), the admission-ratio gap and the mean-delay gap vs centralized
// must both stay within 15%, and every scaling cell must respect the
// byte budget. Violations exit nonzero so CI can run this binary as a
// correctness check, not just a perf probe.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rasc;

constexpr std::int64_t kDefaultBudget = 3200;
constexpr int kDefaultStaleRounds = 30;
constexpr double kMaxGap = 0.15;

struct QualityCell {
  std::int64_t budget = 0;
  int stale_rounds = 0;
  int rep = 0;
  double gossip_admitted = 0;   // admission ratio
  double central_admitted = 0;
  double gossip_delay_ms = 0;   // mean end-to-end delay (plan-cost proxy)
  double central_delay_ms = 0;
  double gossip_delivered = 0;
  std::int64_t repairs = 0;
  std::int64_t prunes = 0;
};

struct ScaleCell {
  std::size_t nodes = 0;
  int rep = 0;
  double bytes_per_node_round = 0;  // digest payload bytes, budget-capped
  double digests_per_node_round = 0;
  double admitted = 0;
};

exp::RunConfig base_config(std::size_t nodes, int requests, double rate,
                           std::uint64_t seed) {
  exp::RunConfig cfg;
  cfg.world.nodes = nodes;
  cfg.world.num_services = 8;
  cfg.world.services_per_node = 4;
  cfg.world.seed = seed;
  cfg.world.net.bw_min_kbps = 2000;
  cfg.world.net.bw_max_kbps = 6000;
  cfg.workload.num_requests = requests;
  cfg.workload.avg_rate_kbps = rate;
  cfg.workload.min_services = 2;
  cfg.workload.max_services = 4;
  cfg.workload.unit_bytes = 1250;
  cfg.submit_gap = sim::msec(200);
  cfg.steady_duration = sim::sec(10);
  // Rollback on both planes so the comparison isolates the view quality,
  // not deploy reliability.
  cfg.world.deploy_policy.rollback = true;
  return cfg;
}

QualityCell run_quality_cell(std::int64_t budget, int stale_rounds, int rep,
                             std::size_t nodes, int requests, double rate,
                             std::uint64_t base_seed) {
  const std::uint64_t seed = base_seed + std::uint64_t(rep) * 7919;
  exp::RunConfig gossip = base_config(nodes, requests, rate, seed);
  gossip.control_plane = "gossip";
  gossip.gossip_budget_bytes = budget;
  gossip.gossip_stale_rounds = stale_rounds;
  const exp::RunMetrics g = exp::run_experiment(gossip);

  exp::RunConfig central = base_config(nodes, requests, rate, seed);
  central.control_plane = "centralized";
  const exp::RunMetrics c = exp::run_experiment(central);

  QualityCell cell;
  cell.budget = budget;
  cell.stale_rounds = stale_rounds;
  cell.rep = rep;
  cell.gossip_admitted = g.composed_fraction();
  cell.central_admitted = c.composed_fraction();
  cell.gossip_delay_ms = g.mean_delay_ms();
  cell.central_delay_ms = c.mean_delay_ms();
  cell.gossip_delivered = g.delivered_fraction();
  cell.repairs = g.gossip_repairs;
  cell.prunes = g.gossip_prunes;
  return cell;
}

ScaleCell run_scale_cell(std::size_t nodes, int rep, double rate,
                         std::uint64_t base_seed) {
  const std::uint64_t seed = base_seed + std::uint64_t(rep) * 104729;
  // Workload proportional to the fleet so per-node streaming load stays
  // comparable; the measured quantity is control traffic, not data.
  exp::RunConfig cfg =
      base_config(nodes, int(nodes) / 2, rate, seed);
  cfg.control_plane = "gossip";
  const exp::RunMetrics m = exp::run_experiment(cfg);

  ScaleCell cell;
  cell.nodes = nodes;
  cell.rep = rep;
  // sends counts digests pushed; fanout digests make one round, so the
  // per-node per-round wire bill is (mean digest size) x fanout. This is
  // the quantity the hard budget caps — flat in N by construction, and
  // this leg proves the implementation honors it.
  if (m.gossip_sends > 0) {
    cell.bytes_per_node_round = double(m.gossip_sent_bytes) /
                                double(m.gossip_sends) *
                                double(cfg.gossip_fanout);
    cell.digests_per_node_round = double(cfg.gossip_fanout);
  }
  cell.admitted = m.composed_fraction();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  const std::size_t nodes = std::size_t(flags.get_int("nodes", 64));
  const int requests = int(flags.get_int("requests", 60));
  const double rate = flags.get_double("rate", 100);
  const auto budgets =
      flags.get_double_list("budgets", {640, 1600, 3200, 6400});
  const auto stale_list = flags.get_double_list("stale-rounds", {10, 30});
  const auto scale_nodes =
      flags.get_double_list("scale-nodes", {64, 128, 200});
  const int reps = int(flags.get_int("reps", 3));
  const std::uint64_t seed = std::uint64_t(flags.get_int("seed", 42));
  const std::string csv_path = flags.get_string("csv", "");
  const std::string json_path = flags.get_string("json", "");
  const std::size_t threads = std::size_t(flags.get_int("threads", 0));
  flags.finish();

  struct Job {
    bool scale = false;
    std::int64_t budget = 0;
    int stale_rounds = 0;
    std::size_t nodes = 0;
    int rep = 0;
  };
  std::vector<Job> jobs;
  for (const double b : budgets) {
    for (const double s : stale_list) {
      for (int r = 0; r < reps; ++r) {
        jobs.push_back({false, std::int64_t(b), int(s), nodes, r});
      }
    }
  }
  const std::size_t scale_begin = jobs.size();
  for (const double n : scale_nodes) {
    for (int r = 0; r < reps; ++r) {
      jobs.push_back({true, kDefaultBudget, kDefaultStaleRounds,
                      std::size_t(n), r});
    }
  }

  util::ThreadPool pool(threads);
  std::vector<QualityCell> quality(scale_begin);
  std::vector<ScaleCell> scale(jobs.size() - scale_begin);
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const Job& j = jobs[i];
    if (j.scale) {
      scale[i - scale_begin] = run_scale_cell(j.nodes, j.rep, rate, seed);
    } else {
      quality[i] = run_quality_cell(j.budget, j.stale_rounds, j.rep,
                                    j.nodes, requests, rate, seed);
    }
  });

  std::printf(
      "gossip quality: %zu nodes, %d apps, rate %.0f kbps, %d rep(s)\n",
      nodes, requests, rate, reps);
  std::printf("%-8s %-7s | %-10s %-10s %-10s %-10s %-9s %-8s %s\n",
              "budget", "stale", "g_admit", "c_admit", "g_delay", "c_delay",
              "delivered", "repairs", "prunes");

  FILE* csv = csv_path.empty() ? nullptr : std::fopen(csv_path.c_str(), "w");
  if (csv) {
    std::fprintf(csv,
                 "budget,stale_rounds,gossip_admitted,central_admitted,"
                 "gossip_delay_ms,central_delay_ms,delivered,repairs,"
                 "prunes,nodes,bytes_per_node_round\n");
  }
  FILE* json = json_path.empty() ? nullptr
                                 : std::fopen(json_path.c_str(), "w");
  if (json) std::fprintf(json, "[");
  bool first_row = true;
  bool gate_violated = false;

  for (std::size_t i = 0; i < quality.size(); i += std::size_t(reps)) {
    QualityCell mean = quality[i];
    for (int r = 1; r < reps; ++r) {
      const QualityCell& c = quality[i + std::size_t(r)];
      mean.gossip_admitted += c.gossip_admitted;
      mean.central_admitted += c.central_admitted;
      mean.gossip_delay_ms += c.gossip_delay_ms;
      mean.central_delay_ms += c.central_delay_ms;
      mean.gossip_delivered += c.gossip_delivered;
      mean.repairs += c.repairs;
      mean.prunes += c.prunes;
    }
    mean.gossip_admitted /= reps;
    mean.central_admitted /= reps;
    mean.gossip_delay_ms /= reps;
    mean.central_delay_ms /= reps;
    mean.gossip_delivered /= reps;

    const double admit_gap =
        mean.central_admitted > 0
            ? (mean.central_admitted - mean.gossip_admitted) /
                  mean.central_admitted
            : 0;
    const double delay_gap =
        mean.central_delay_ms > 0
            ? (mean.gossip_delay_ms - mean.central_delay_ms) /
                  mean.central_delay_ms
            : 0;
    if (mean.budget == kDefaultBudget &&
        mean.stale_rounds == kDefaultStaleRounds &&
        (admit_gap > kMaxGap || delay_gap > kMaxGap)) {
      gate_violated = true;
    }

    std::printf(
        "%-8lld %-7d | %-10.3f %-10.3f %-10.2f %-10.2f %-9.3f %-8lld "
        "%lld  (admit gap %+.1f%%, delay gap %+.1f%%)\n",
        static_cast<long long>(mean.budget), mean.stale_rounds,
        mean.gossip_admitted, mean.central_admitted, mean.gossip_delay_ms,
        mean.central_delay_ms, mean.gossip_delivered,
        static_cast<long long>(mean.repairs),
        static_cast<long long>(mean.prunes), admit_gap * 100,
        delay_gap * 100);
    if (csv) {
      std::fprintf(csv, "%lld,%d,%.6f,%.6f,%.3f,%.3f,%.6f,%lld,%lld,,\n",
                   static_cast<long long>(mean.budget), mean.stale_rounds,
                   mean.gossip_admitted, mean.central_admitted,
                   mean.gossip_delay_ms, mean.central_delay_ms,
                   mean.gossip_delivered,
                   static_cast<long long>(mean.repairs),
                   static_cast<long long>(mean.prunes));
    }
    if (json) {
      std::fprintf(
          json,
          "%s\n  {\"name\": \"gossip_quality/budget=%lld/stale=%d\", "
          "\"gossip_admitted\": %.6f, \"central_admitted\": %.6f, "
          "\"gossip_delay_ms\": %.3f, \"central_delay_ms\": %.3f, "
          "\"admit_gap\": %.6f, \"delay_gap\": %.6f}",
          first_row ? "" : ",", static_cast<long long>(mean.budget),
          mean.stale_rounds, mean.gossip_admitted, mean.central_admitted,
          mean.gossip_delay_ms, mean.central_delay_ms, admit_gap,
          delay_gap);
      first_row = false;
    }
  }

  std::printf("%-8s | %-18s %s\n", "nodes", "bytes/node/round", "admitted");
  for (std::size_t i = 0; i < scale.size(); i += std::size_t(reps)) {
    ScaleCell mean = scale[i];
    for (int r = 1; r < reps; ++r) {
      mean.bytes_per_node_round +=
          scale[i + std::size_t(r)].bytes_per_node_round;
      mean.admitted += scale[i + std::size_t(r)].admitted;
    }
    mean.bytes_per_node_round /= reps;
    mean.admitted /= reps;
    if (mean.bytes_per_node_round > double(kDefaultBudget) ||
        mean.bytes_per_node_round <= 0) {
      gate_violated = true;
    }
    std::printf("%-8zu | %-18.1f %.3f\n", mean.nodes,
                mean.bytes_per_node_round, mean.admitted);
    if (csv) {
      std::fprintf(csv, ",,,,,,,,,%zu,%.3f\n", mean.nodes,
                   mean.bytes_per_node_round);
    }
    if (json) {
      std::fprintf(json,
                   "%s\n  {\"name\": \"gossip_scale/nodes=%zu\", "
                   "\"bytes_per_node_round\": %.3f, \"admitted\": %.6f}",
                   first_row ? "" : ",", mean.nodes,
                   mean.bytes_per_node_round, mean.admitted);
      first_row = false;
    }
  }
  if (csv) std::fclose(csv);
  if (json) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }

  std::printf(
      "expectation: per-node digest bytes/round flat (and <= %lld B) from "
      "%zu to %zu nodes; at budget=%lld/stale=%d the admission and "
      "mean-delay gaps vs the centralized min-cost optimum stay within "
      "%.0f%%; smaller budgets / longer stale windows widen both\n",
      static_cast<long long>(kDefaultBudget), std::size_t(scale_nodes.front()),
      std::size_t(scale_nodes.back()), static_cast<long long>(kDefaultBudget),
      kDefaultStaleRounds, kMaxGap * 100);
  if (gate_violated) {
    std::fprintf(stderr,
                 "FAIL: gossip quality gate — default-knob gap exceeded "
                 "%.0f%% or a scaling cell broke the byte budget\n",
                 kMaxGap * 100);
    return 1;
  }
  return 0;
}
