// Micro-benchmark: overhead of the obs telemetry hot path.
//
// The refactor's contract is that consolidating per-layer tallies into
// the metric registry and sprinkling RASC_TRACE emit sites through the
// scheduler/network paths costs nothing measurable when tracing is
// disabled: a registry-cell emit is one pointer-indirect increment, and a
// disabled trace emit is a null/flag test. BM_PlainCounter vs
// BM_RegistryCounter vs BM_RegistryCounterTraceDisabled bracket the
// claim (the acceptance bar is <=2% between plain and trace-disabled).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "exp/runner.hpp"
#include "obs/metric_registry.hpp"
#include "obs/unit_trace.hpp"

namespace {

using namespace rasc;

constexpr int kEmitsPerIteration = 1024;

// Baseline: the pre-refactor emit path (a plain member increment).
void BM_PlainCounter(benchmark::State& state) {
  std::int64_t counter = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEmitsPerIteration; ++i) {
      ++counter;
      benchmark::DoNotOptimize(counter);
    }
  }
  state.SetItemsProcessed(state.iterations() * kEmitsPerIteration);
}
BENCHMARK(BM_PlainCounter);

// The refactored emit path: increment through a cached registry cell.
void BM_RegistryCounter(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Labels labels;
  labels.node = 3;
  obs::Counter* cell = &registry.counter("runtime.units_processed", labels);
  for (auto _ : state) {
    for (int i = 0; i < kEmitsPerIteration; ++i) {
      cell->add();
      benchmark::DoNotOptimize(*cell);
    }
  }
  state.SetItemsProcessed(state.iterations() * kEmitsPerIteration);
}
BENCHMARK(BM_RegistryCounter);

// The emit path as it exists in the scheduler after the refactor: a cell
// increment plus a RASC_TRACE site whose tracer is attached but disabled
// (the default in every experiment).
void BM_RegistryCounterTraceDisabled(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Labels labels;
  labels.node = 3;
  obs::Counter* cell = &registry.counter("runtime.units_processed", labels);
  obs::UnitTrace trace(1 << 10);  // enabled() is false
  obs::UnitTrace* tracer = &trace;
  std::int64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEmitsPerIteration; ++i) {
      cell->add();
      RASC_TRACE(tracer, (obs::UnitId{1, 0, seq}), obs::Hop::kScheduled, 3,
                 seq);
      ++seq;
      benchmark::DoNotOptimize(*cell);
    }
  }
  state.SetItemsProcessed(state.iterations() * kEmitsPerIteration);
}
BENCHMARK(BM_RegistryCounterTraceDisabled);

// Same site with a null tracer pointer (layers constructed without one).
void BM_RegistryCounterTraceNull(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Labels labels;
  labels.node = 3;
  obs::Counter* cell = &registry.counter("runtime.units_processed", labels);
  obs::UnitTrace* tracer = nullptr;
  std::int64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEmitsPerIteration; ++i) {
      cell->add();
      RASC_TRACE(tracer, (obs::UnitId{1, 0, seq}), obs::Hop::kScheduled, 3,
                 seq);
      ++seq;
      benchmark::DoNotOptimize(*cell);
    }
  }
  state.SetItemsProcessed(state.iterations() * kEmitsPerIteration);
}
BENCHMARK(BM_RegistryCounterTraceNull);

// Cost of an *enabled* trace record (ring write + exact counters) — the
// price paid only when a run opts into lifecycle tracing.
void BM_TraceEnabledRecord(benchmark::State& state) {
  obs::UnitTrace trace(1 << 16);
  trace.set_enabled(true);
  std::int64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEmitsPerIteration; ++i) {
      trace.record(obs::UnitId{1, 0, seq}, obs::Hop::kScheduled, 3, seq);
      ++seq;
    }
    benchmark::DoNotOptimize(trace.recorded());
  }
  state.SetItemsProcessed(state.iterations() * kEmitsPerIteration);
}
BENCHMARK(BM_TraceEnabledRecord);

// Histogram observe (sink delay/jitter path): Welford + reservoir.
void BM_RegistryHistogramObserve(benchmark::State& state) {
  obs::MetricRegistry registry;
  obs::Labels labels;
  labels.node = 3;
  obs::Histogram* cell = &registry.histogram("sink.delay_ms", labels);
  double x = 0.25;
  for (auto _ : state) {
    for (int i = 0; i < kEmitsPerIteration; ++i) {
      cell->observe(x);
      x += 0.125;
    }
    benchmark::DoNotOptimize(cell->count());
  }
  state.SetItemsProcessed(state.iterations() * kEmitsPerIteration);
}
BENCHMARK(BM_RegistryHistogramObserve);

// End-to-end check of the same claim: a small but complete distributed
// experiment (world build + composition + streaming) with the trace
// attached-but-disabled vs recording every hop. The disabled case is the
// production configuration; its wall time is the number the <=2%
// acceptance bar applies to, with per-emit absolute costs above
// explaining why it holds (a sub-ns test against units whose simulation
// costs are measured in microseconds).
exp::RunConfig bench_run_config(bool tracing) {
  exp::RunConfig config;
  config.world.nodes = 16;
  config.world.num_services = 6;
  config.world.services_per_node = 3;
  config.world.enable_unit_trace = tracing;
  config.workload.num_requests = 8;
  config.steady_duration = sim::sec(10);
  return config;
}

void BM_RunExperimentTraceDisabled(benchmark::State& state) {
  for (auto _ : state) {
    const auto metrics = exp::run_experiment(bench_run_config(false));
    benchmark::DoNotOptimize(metrics.delivered);
  }
}
BENCHMARK(BM_RunExperimentTraceDisabled)->Unit(benchmark::kMillisecond);

void BM_RunExperimentTraceEnabled(benchmark::State& state) {
  for (auto _ : state) {
    const auto metrics = exp::run_experiment(bench_run_config(true));
    benchmark::DoNotOptimize(metrics.delivered);
  }
}
BENCHMARK(BM_RunExperimentTraceEnabled)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
