// Micro-benchmark: cost of the solver *workspace*, isolated from the
// algorithm. Three variants of the same solve separate what the reusable
// SspSolver buys:
//   cold    — fresh solver every call: pays the CSR adjacency build, all
//             vector allocations, and a from-scratch solve;
//   reused  — one persistent solver, same topology: adjacency snapshot and
//             buffers are cached, only the solve itself runs;
//   repair  — persistent solver AND persistent graph: tighten a handful of
//             capacities in place, then warm-start re-solve from the
//             previous potentials — the composer's repair-loop pattern.
// Plus the end-to-end repair pattern on a real CompositionGraph.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/composition_graph.hpp"
#include "flow/ssp.hpp"
#include "util/rng.hpp"

namespace {

using namespace rasc;

flow::Graph make_layered(int layers, int width, util::Xoshiro256& rng,
                         flow::NodeId* source, flow::NodeId* sink) {
  flow::Graph g;
  *source = g.add_node();
  *sink = g.add_node();
  auto nodes = std::vector<std::vector<flow::NodeId>>(std::size_t(layers));
  for (auto& layer : nodes) {
    for (int j = 0; j < width; ++j) layer.push_back(g.add_node());
  }
  for (int j = 0; j < width; ++j) {
    g.add_arc(*source, nodes[0][std::size_t(j)], rng.uniform_int(5, 50),
              rng.uniform_int(0, 100));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        g.add_arc(nodes[std::size_t(l)][std::size_t(a)],
                  nodes[std::size_t(l) + 1][std::size_t(b)],
                  rng.uniform_int(5, 50), rng.uniform_int(0, 100));
      }
    }
  }
  for (int j = 0; j < width; ++j) {
    g.add_arc(nodes[std::size_t(layers) - 1][std::size_t(j)], *sink,
              rng.uniform_int(5, 50), rng.uniform_int(0, 100));
  }
  return g;
}

void BM_SolverCold(benchmark::State& state) {
  const int layers = int(state.range(0));
  const int width = int(state.range(1));
  util::Xoshiro256 rng(7);
  flow::NodeId s, t;
  auto g = make_layered(layers, width, rng, &s, &t);
  const flow::SolveOptions opts{.assume_nonnegative_costs = true};
  for (auto _ : state) {
    g.clear_flow();
    flow::SspSolver solver;  // fresh workspace: CSR build + allocations
    const auto r = solver.solve(g, s, t, width * 20, opts);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * g.num_arcs());
}
BENCHMARK(BM_SolverCold)->Args({5, 16})->Args({5, 64});

void BM_SolverReused(benchmark::State& state) {
  const int layers = int(state.range(0));
  const int width = int(state.range(1));
  util::Xoshiro256 rng(7);
  flow::NodeId s, t;
  auto g = make_layered(layers, width, rng, &s, &t);
  const flow::SolveOptions opts{.assume_nonnegative_costs = true};
  flow::SspSolver solver;
  for (auto _ : state) {
    g.clear_flow();
    const auto r = solver.solve(g, s, t, width * 20, opts);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * g.num_arcs());
}
BENCHMARK(BM_SolverReused)->Args({5, 16})->Args({5, 64});

void BM_SolverWarmRepair(benchmark::State& state) {
  const int layers = int(state.range(0));
  const int width = int(state.range(1));
  util::Xoshiro256 rng(7);
  flow::NodeId s, t;
  auto g = make_layered(layers, width, rng, &s, &t);

  // Pre-generate capacity edit batches: each tightens ~10% of the arcs,
  // cycled so the graph never drifts toward zero capacity.
  const std::size_t arcs = g.num_arcs();
  std::vector<std::vector<std::pair<flow::ArcId, flow::FlowUnit>>> edits(8);
  for (auto& batch : edits) {
    for (std::size_t a = 0; a < arcs; ++a) {
      if (rng.bernoulli(0.1)) {
        batch.emplace_back(flow::ArcId(a * 2),
                           flow::FlowUnit(rng.uniform_int(5, 50)));
      }
    }
  }

  const flow::SolveOptions opts{.assume_nonnegative_costs = true,
                                .warm_start = true};
  flow::SspSolver solver;
  solver.solve(g, s, t, width * 20, opts);  // prime potentials + snapshot
  std::size_t which = 0;
  for (auto _ : state) {
    g.clear_flow();
    for (const auto& [arc, cap] : edits[which]) g.set_capacity(arc, cap);
    which = (which + 1) % edits.size();
    const auto r = solver.solve(g, s, t, width * 20, opts);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * g.num_arcs());
}
BENCHMARK(BM_SolverWarmRepair)->Args({5, 16})->Args({5, 64});

void BM_CompositionRepair(benchmark::State& state) {
  // The composer's actual hot path: one persistent CompositionGraph,
  // capacities tightened in place each round, warm re-solve, shares out.
  const int stages = int(state.range(0));
  const int providers = int(state.range(1));
  util::Xoshiro256 rng(11);
  auto caps =
      std::vector<std::vector<core::CandidateCap>>(std::size_t(stages));
  for (auto& stage : caps) {
    for (int p = 0; p < providers; ++p) {
      stage.push_back(core::CandidateCap{
          sim::NodeIndex(p), rng.uniform_double(2.0, 30.0),
          rng.uniform_double(0.0, 0.2), rng.uniform_double(0.0, 1.0)});
    }
  }
  core::CompositionGraph cg(caps, 1000.0, 1000.0, 20.0);
  const flow::SolveOptions opts{.assume_nonnegative_costs = true,
                                .warm_start = true};
  flow::SspSolver solver;
  solver.solve(cg.graph(), cg.source(), cg.sink(), cg.demand(), opts);
  for (auto _ : state) {
    cg.reset_flow();
    // Tighten one candidate per stage, as a repair round does when a
    // provider's reported bandwidth drops.
    for (int s = 0; s < stages; ++s) {
      const int idx = int(rng.uniform_int(0, providers - 1));
      cg.set_candidate_cap(s, idx, rng.uniform_double(2.0, 30.0));
    }
    const auto r = solver.solve(cg.graph(), cg.source(), cg.sink(),
                                cg.demand(), opts);
    benchmark::DoNotOptimize(r.flow);
    auto shares = cg.extract_shares();
    benchmark::DoNotOptimize(shares.size());
  }
}
BENCHMARK(BM_CompositionRepair)
    ->Args({2, 16})
    ->Args({5, 16})
    ->Args({5, 64});

}  // namespace

BENCHMARK_MAIN();
