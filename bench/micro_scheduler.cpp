// Micro-benchmark: per-node scheduler decision cost vs ready-queue depth,
// for each policy, plus the simulator event loop itself.
#include <benchmark/benchmark.h>

#include <memory>

#include "runtime/scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace rasc;

runtime::ServiceSpec spec() {
  runtime::ServiceSpec s;
  s.name = "svc";
  s.cpu_time_per_unit = sim::msec(2);
  return s;
}

void bench_policy(benchmark::State& state, runtime::SchedulingPolicy policy) {
  const auto depth = std::size_t(state.range(0));
  runtime::Component component({1, 0, 0}, spec(), 10.0, {{1, 10.0}});
  util::Xoshiro256 rng(3);

  for (auto _ : state) {
    state.PauseTiming();
    runtime::Scheduler scheduler(policy, depth);
    for (std::size_t i = 0; i < depth; ++i) {
      runtime::ScheduledUnit u;
      auto du = std::make_shared<runtime::DataUnit>();
      du->seq = std::int64_t(i);
      u.unit = du;
      u.component = &component;
      u.arrival = rng.uniform_int(0, 1000);
      u.deadline = u.arrival + rng.uniform_int(1000, 100000);
      u.exec_time = sim::msec(2);
      scheduler.enqueue(std::move(u));
    }
    state.ResumeTiming();
    std::vector<runtime::ScheduledUnit> expired;
    while (auto next = scheduler.dispatch(500, expired)) {
      benchmark::DoNotOptimize(next->unit->seq);
    }
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(depth));
}

void BM_SchedulerLlf(benchmark::State& state) {
  bench_policy(state, runtime::SchedulingPolicy::kLeastLaxity);
}
void BM_SchedulerEdf(benchmark::State& state) {
  bench_policy(state, runtime::SchedulingPolicy::kEdf);
}
void BM_SchedulerFifo(benchmark::State& state) {
  bench_policy(state, runtime::SchedulingPolicy::kFifo);
}
BENCHMARK(BM_SchedulerLlf)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_SchedulerEdf)->Arg(64);
BENCHMARK(BM_SchedulerFifo)->Arg(64);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator(1);
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      simulator.call_after(i % 97, [&fired] { ++fired; });
    }
    simulator.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
