// Figure 10: fraction of data units delivered out of order.
#include "figures_common.hpp"

int main(int argc, char** argv) {
  return rasc::bench::run_figure(
      argc, argv, "Figure 10 — fraction delivered out of order",
      "out-of-order fractions stay low (paper: <= ~4%) for every "
      "algorithm; see EXPERIMENTS.md for the known deviation in which "
      "baseline ranks worst",
      [](const rasc::exp::RunMetrics& m) {
        return m.out_of_order_fraction();
      },
      /*precision=*/4);
}
