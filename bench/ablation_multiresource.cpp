// Ablation: multi-resource composition (the paper's §6 future work —
// "study the performance of our approach under multiple resource
// constraints"). With CPU-heavy services, a composer that only accounts
// for bandwidth overloads processors; tracking CPU as a second rate-based
// resource (per the §2.1 requirement-vector model) avoids that.
#include <cstdio>
#include <sstream>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  flags.finish();
  sweep.algorithms = {"mincost", "mincost-nocpu"};
  // CPU-heavy services: 10-25 ms per unit, so a node hosting a few
  // instances saturates its processor well before its access link.
  sweep.base.world.service_cpu_min = sim::msec(10);
  sweep.base.world.service_cpu_max = sim::msec(25);
  sweep.base.world.net.bw_min_kbps = 2000;
  sweep.base.world.net.bw_max_kbps = 8000;

  const auto result = exp::run_sweep(sweep);
  for (const auto& [title, extract, precision] :
       std::vector<std::tuple<std::string,
                              std::function<double(const exp::RunMetrics&)>,
                              int>>{
           {"Ablation(multi-resource) — requests composed",
            [](const exp::RunMetrics& m) { return double(m.composed); }, 1},
           {"Ablation(multi-resource) — delivered fraction",
            [](const exp::RunMetrics& m) { return m.delivered_fraction(); },
            3},
           {"Ablation(multi-resource) — timely fraction",
            [](const exp::RunMetrics& m) { return m.timely_fraction(); },
            3},
       }) {
    exp::print_table(
        exp::make_table(sweep, result, title, extract, precision));
  }
  std::printf(
      "\nexpectation: the CPU-blind variant admits more requests than the "
      "processors can run and pays with deadline drops; CPU-aware "
      "composition admits less but delivers what it admits.\n");
  return 0;
}
