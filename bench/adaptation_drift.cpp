// Online rate re-allocation under sustained load drift: does in-place
// delta replanning (core::RateAdapter) hold the delivered rate without
// resorting to teardown-and-recompose? Runs the "load-drift" chaos
// scenario (the two most bandwidth-starved access links sag mid-run and
// stay degraded) with adaptation off and at a sweep of adaptation
// intervals, and reports delivered/timely fractions, supervisor
// recovery/abandon counts, and the adapter's own counters, averaged over
// seeded repetitions.
//
//   ./build/bench/adaptation_drift [--adapt-reps 3] [--adapt-ms=0,1000,2000]
//       [--nodes 12] [--requests 10] [--rate 300] [--csv out.csv]
//
// Column 0 (adapt interval 0 = off) is the teardown-only baseline: the
// supervisor is the sole responder, so drift shows up as recoveries,
// abandoned apps, or a depressed delivered fraction. Determinism: each
// (interval, rep) cell is a pure function of its seeds except for the
// wall-clock adapt.solve_us histogram, which this table does not read.
#include <cstdio>
#include <vector>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  // This table's regime is the small drift world, not the 60-request
  // paper sweep: there, every app replans into the same contended
  // capacity each round and the deltas thrash (EXPERIMENTS.md). The
  // flags still override both.
  sweep.base.world.nodes = std::size_t(flags.get_int("nodes", 12));
  sweep.base.workload.num_requests = int(flags.get_int("requests", 10));
  const int reps = int(flags.get_int("adapt-reps", 3));
  const double rate = flags.get_double("rate", 300);
  const auto adapt_ms = flags.get_double_list("adapt-ms", {0, 1000, 2000});
  const std::string csv_path = flags.get_string("csv", "");
  flags.finish();

  exp::SeriesTable table;
  table.title = "Delivered rate under load drift: in-place delta replanning "
                "vs teardown-only supervision";
  table.row_header = "metric";
  table.col_header = "adapt interval (ms; 0 = off)";
  for (double ms : adapt_ms) {
    table.col_labels.push_back(std::to_string(int(ms)));
  }

  // Every (interval, rep) trial is an independent Simulator; flatten
  // onto one shared pool.
  util::ThreadPool pool(sweep.threads);
  std::vector<std::vector<exp::RunMetrics>> metrics(
      adapt_ms.size(), std::vector<exp::RunMetrics>(std::size_t(reps)));
  pool.parallel_for(adapt_ms.size() * std::size_t(reps), [&](std::size_t i) {
    const std::size_t a_idx = i / std::size_t(reps);
    const std::size_t rep = i % std::size_t(reps);
    exp::RunConfig run = sweep.base;
    run.algorithm = "mincost";
    run.workload.avg_rate_kbps = rate;
    // The drift lands at 10 s and persists for ~25 s; leave the steady
    // phase long enough to live through it.
    run.steady_duration = sim::sec(20);
    run.chaos_scenario = "load-drift:mag=0.2";
    run.chaos_seed = sweep.base_seed + std::uint64_t(rep) * 104729;
    run.adapt_interval = sim::msec(std::int64_t(adapt_ms[a_idx]));
    run.world.seed = sweep.base_seed + std::uint64_t(rep) * 7919;
    metrics[a_idx][rep] = exp::run_experiment(run);
  });

  std::vector<double> delivered, timely, recoveries, gave_up, attempts,
      deltas, teardowns;
  for (std::size_t a = 0; a < adapt_ms.size(); ++a) {
    double df = 0, tf = 0, rc = 0, gu = 0, at = 0, dl = 0, td = 0;
    for (const auto& m : metrics[a]) {
      df += m.delivered_fraction();
      tf += m.timely_fraction();
      rc += double(m.recoveries);
      gu += double(m.gave_up);
      at += double(m.adapt_attempts);
      dl += double(m.adapt_deltas);
      td += double(m.adapt_teardowns);
    }
    const double r = double(metrics[a].size());
    delivered.push_back(df / r);
    timely.push_back(tf / r);
    recoveries.push_back(rc / r);
    gave_up.push_back(gu / r);
    attempts.push_back(at / r);
    deltas.push_back(dl / r);
    teardowns.push_back(td / r);
  }
  table.row_labels = {"delivered fraction", "timely fraction",
                      "recoveries (mean)",  "gave up (mean)",
                      "adapt attempts",     "adapt deltas shipped",
                      "adapt teardowns"};
  table.values = {delivered, timely, recoveries, gave_up,
                  attempts,  deltas, teardowns};
  table.precision = 3;
  exp::print_table(table);
  std::printf(
      "\nexpectation: the baseline column sheds rate for the whole drift "
      "(or burns teardown-and-recompose episodes: recoveries/gave-up "
      "nonzero); adaptation columns ship rate deltas instead, lifting "
      "the delivered fraction toward 1 with no abandoned apps and far "
      "fewer teardown episodes (zero on most seeds). Shorter intervals "
      "react faster at the cost of more solver rounds.\n");
  if (!csv_path.empty()) {
    exp::write_csv(table, csv_path);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  return 0;
}
