// Figure 6: the number of requests each algorithm successfully composed,
// vs the average requested rate.
#include "figures_common.hpp"

int main(int argc, char** argv) {
  return rasc::bench::run_figure(
      argc, argv,
      "Figure 6 — requests successfully composed (of 60 submitted)",
      "min-cost composes many more requests and stays nearly flat in "
      "rate; greedy and random degrade as the rate grows (they depend on "
      "the most powerful single node, min-cost on cumulative capacity)",
      [](const rasc::exp::RunMetrics& m) { return double(m.composed); },
      /*precision=*/1);
}
