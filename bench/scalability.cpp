// Scalability: the paper claims "our experimental results demonstrate the
// efficiency, scalability and performance of our approach" (§6). This
// bench grows the deployment (nodes and proportional workload) and tracks
// composition quality, composition latency (discovery + stats + solve +
// deploy as simulated message exchanges), and Pastry's O(log N) routing.
#include <cstdio>
#include <sstream>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  const int reps = int(flags.get_int("scal-reps", 3));
  flags.finish();

  const std::size_t sizes[] = {16, 32, 64, 128};

  exp::SeriesTable table;
  table.title = "Scalability — min-cost composition vs deployment size";
  table.row_header = "metric";
  table.col_header = "overlay nodes (requests scale with N)";
  for (std::size_t n : sizes) {
    table.col_labels.push_back(std::to_string(n));
  }
  std::vector<double> composed_frac, delivered, delay;

  for (std::size_t n : sizes) {
    auto cfg = sweep;
    cfg.algorithms = {"mincost"};
    cfg.rates_kbps = {100};
    cfg.repetitions = reps;
    cfg.base.world.nodes = n;
    // Workload proportional to the deployment: ~1.9 requests per node.
    cfg.base.workload.num_requests = int(n) * 15 / 8;
    const auto result = exp::run_sweep(cfg);
    composed_frac.push_back(result.mean(
        "mincost", 100, [](const auto& m) { return m.composed_fraction(); }));
    delivered.push_back(result.mean(
        "mincost", 100,
        [](const auto& m) { return m.delivered_fraction(); }));
    delay.push_back(result.mean(
        "mincost", 100, [](const auto& m) { return m.mean_delay_ms(); }));
  }
  table.row_labels = {"composed fraction", "delivered fraction",
                      "mean delay (ms)"};
  table.values = {composed_frac, delivered, delay};
  table.precision = 3;
  exp::print_table(table);
  std::printf(
      "\nexpectation: quality holds as the system grows — per-request "
      "work is O(providers x stages) and discovery is O(log N) Pastry "
      "routing, so nothing degrades with N at fixed per-node load.\n");
  return 0;
}
