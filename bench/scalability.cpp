// Scalability: the paper claims "our experimental results demonstrate the
// efficiency, scalability and performance of our approach" (§6). This
// bench grows the deployment (nodes and proportional workload) and tracks
// composition quality, composition latency (discovery + stats + solve +
// deploy as simulated message exchanges), and Pastry's O(log N) routing.
#include <cstdio>
#include <iterator>
#include <sstream>
#include <vector>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  const int reps = int(flags.get_int("scal-reps", 3));
  flags.finish();

  const std::size_t sizes[] = {16, 32, 64, 128};
  constexpr std::size_t kNumSizes = std::size(sizes);

  exp::SeriesTable table;
  table.title = "Scalability — min-cost composition vs deployment size";
  table.row_header = "metric";
  table.col_header = "overlay nodes (requests scale with N)";
  for (std::size_t n : sizes) {
    table.col_labels.push_back(std::to_string(n));
  }

  // Every (size, repetition) trial is an independent Simulator; flatten
  // them onto one shared pool instead of a barrier per deployment size,
  // so small-deployment runs don't leave workers idle while 128-node
  // trials finish.
  util::ThreadPool pool(sweep.threads);
  std::vector<std::vector<exp::RunMetrics>> metrics(
      kNumSizes, std::vector<exp::RunMetrics>(std::size_t(reps)));
  pool.parallel_for(kNumSizes * std::size_t(reps), [&](std::size_t i) {
    const std::size_t size_idx = i / std::size_t(reps);
    const std::size_t rep = i % std::size_t(reps);
    const std::size_t n = sizes[size_idx];
    exp::RunConfig run = sweep.base;
    run.algorithm = "mincost";
    run.workload.avg_rate_kbps = 100;
    run.world.nodes = n;
    // Workload proportional to the deployment: ~1.9 requests per node.
    run.workload.num_requests = int(n) * 15 / 8;
    // Same world seeds per repetition as run_sweep uses.
    run.world.seed = sweep.base_seed + std::uint64_t(rep) * 7919;
    metrics[size_idx][rep] = exp::run_experiment(run);
  });

  std::vector<double> composed_frac, delivered, delay;
  for (std::size_t s = 0; s < kNumSizes; ++s) {
    double cf = 0, df = 0, dl = 0;
    for (const auto& m : metrics[s]) {
      cf += m.composed_fraction();
      df += m.delivered_fraction();
      dl += m.mean_delay_ms();
    }
    const double r = double(metrics[s].size());
    composed_frac.push_back(cf / r);
    delivered.push_back(df / r);
    delay.push_back(dl / r);
  }
  table.row_labels = {"composed fraction", "delivered fraction",
                      "mean delay (ms)"};
  table.values = {composed_frac, delivered, delay};
  table.precision = 3;
  exp::print_table(table);
  std::printf(
      "\nexpectation: quality holds as the system grows — per-request "
      "work is O(providers x stages) and discovery is O(log N) Pastry "
      "routing, so nothing degrades with N at fixed per-node load.\n");
  return 0;
}
