// Ablation: the monitoring window h (paper §3.2 — statistics averaged
// "over a window of size h"). Small windows are noisy (bursts look like
// congestion), huge windows are stale (the composer reacts late).
#include <cstdio>
#include <sstream>

#include "figures_common.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  auto sweep = bench::paper_sweep(flags);
  flags.finish();
  // Greedy's placement signal is the windowed drop ratio and nothing
  // else, so it exposes the staleness/noise trade-off most directly.
  sweep.algorithms = {"greedy"};
  sweep.rates_kbps = {150, 200, 250, 300};

  const std::size_t windows[] = {20, 200, 1000};

  exp::SeriesTable delivered, composed;
  for (auto* t : {&delivered, &composed}) {
    t->row_header = "window h";
    t->col_header = "average rate (Kb/sec)";
    for (double r : sweep.rates_kbps) {
      std::ostringstream os;
      os << r;
      t->col_labels.push_back(os.str());
    }
  }
  delivered.title = "Ablation(window) — delivered fraction";
  composed.title = "Ablation(window) — requests composed";
  composed.precision = 1;

  for (std::size_t h : windows) {
    auto cfg = sweep;
    cfg.base.world.monitor_params.outcome_window = h;
    const auto result = exp::run_sweep(cfg);
    std::vector<double> d_row, c_row;
    for (double rate : cfg.rates_kbps) {
      d_row.push_back(result.mean("greedy", rate, [](const auto& m) {
        return m.delivered_fraction();
      }));
      c_row.push_back(result.mean("greedy", rate, [](const auto& m) {
        return double(m.composed);
      }));
    }
    delivered.row_labels.push_back("h=" + std::to_string(h));
    delivered.values.push_back(d_row);
    composed.row_labels.push_back("h=" + std::to_string(h));
    composed.values.push_back(c_row);
  }
  exp::print_table(composed);
  exp::print_table(delivered);
  std::printf(
      "\nfinding: composition quality is robust to h across two orders of "
      "magnitude in this regime (a useful negative result: the h-sample "
      "averaging of paper §3.2 is not a sensitive knob); only very large "
      "windows show mild staleness at the highest load.\n");
  return 0;
}
