// Figure 8: total fraction of data units delivered (not dropped).
#include "figures_common.hpp"

int main(int argc, char** argv) {
  return rasc::bench::run_figure(
      argc, argv, "Figure 8 — fraction of data units delivered",
      "min-cost delivers the greatest fraction while handling the most "
      "load: services too big for one node are split, and heavily loaded "
      "nodes are bypassed via the drop-ratio cost",
      [](const rasc::exp::RunMetrics& m) { return m.delivered_fraction(); });
}
