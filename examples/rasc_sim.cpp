// rasc_sim: run a fully parameterized RASC experiment from the command
// line and print (or CSV-dump) every metric the harness collects. This is
// the "kitchen sink" driver for exploring configurations beyond the
// paper's §4.1 defaults.
//
//   ./build/examples/rasc_cli --algorithm mincost --nodes 32 --rate 150
//       --requests 60 --reps 3 --bw-min 300 --bw-max 4000
//       [--policy llf|fifo|edf] [--no-cpu] [--reservations] [--csv out.csv]
//       [--metrics-csv snap.csv] [--metrics-json snap.json]
//       [--chaos-scenario churn:period=4s] [--chaos-seed 7] [--supervise]
//       [--slo "delivered>=0.8,recovery<=10s"] [--slo-report slo.csv]
//       [--adapt-interval 2000] [--adapt-hysteresis 0.05]
//       [--deploy-retries 3] [--deploy-rollback] [--orphan-lease-ms 8000]
//       [--coordinators 4] [--admission-policy smallest-demand]
//       [--batch-window-ms 100] [--lease-ms 12000] [--lease-renew-ms 5000]
//       [--shard-standby] [--standby-check-ms 500] [--submit-retry-ms 0]
//       [--control-plane centralized|sharded|gossip] [--gossip-fanout 3]
//       [--gossip-interval-ms 500] [--gossip-budget-bytes 3200]
//       [--gossip-stale-rounds 30] [--sim-threads 8]
//       [--deadline-ms 400] [--adapt-predictive] [--slo-window-ms 1000]
//
// --sim-threads > 1 runs the discrete-event core sharded across worker
// threads (one logical process per node, conservative lookahead sync).
// Results are deterministic per (threads, seed) and identical for every
// thread count > 1, but differ from --sim-threads=1 (per-node RNG
// striping); the serial engine stays byte-identical to prior releases.
//
// --metrics-csv / --metrics-json dump the deployment-wide metric registry
// snapshot (every net.*/runtime.*/sink.*/monitor.*/compose.* cell, stable
// key order) after each repetition; with --reps > 1 the rep index is
// appended to the file stem.
//
// --chaos-scenario injects a named fault scenario (see chaos/scenario.hpp
// for the library and override syntax); --slo asserts delivery/recovery
// bounds and makes the process exit nonzero when any repetition violates
// them, so chaos runs can gate CI.
//
// --adapt-interval (ms; 0 = off) turns on online rate re-allocation: each
// admitted app is periodically re-solved against fresh statistics and
// changed rates ship as in-place deltas (see core/rate_adapter.hpp);
// --adapt-hysteresis sets the minimum relative cost improvement.
//
// --deploy-retries arms per-message retransmission of deploy traffic
// (capped-backoff ladder, receiver-side dedup); --deploy-rollback tears
// down partial deployments on NACK/timeout; --orphan-lease-ms starts the
// runtimes' orphan reaper (see core/coordinator.hpp DeployPolicy).
//
// --coordinators > 1 shards the control plane: requests hash to one of K
// coordinator shards, each composing batches against revocable capacity
// leases granted by the nodes (see core/coordinator_shard.hpp).
// --admission-policy orders each batch (fifo | smallest-demand |
// highest-value); --batch-window-ms sets the drain cadence and
// --lease-ms / --lease-renew-ms the node-side grant lifetime and the
// shard-side renewal period. With the default --coordinators 1 none of
// this machinery is constructed and output is byte-identical to
// pre-shard builds.
//
// --shard-standby gives every shard a dormant standby coordinator on a
// second node: it detects the primary's death through its local lease
// granter, fences the zombie with a takeover epoch, reconstructs the
// shard state from the fleet and adopts the orphaned apps (DESIGN.md
// §17). --standby-check-ms sets the watchdog period. --submit-retry-ms
// > 0 journals submissions at the source and re-submits those whose
// outcome never arrived (lost in a dead primary's batch window). Both
// default off and leave output byte-identical.
//
// --deadline-ms stamps an end-to-end latency SLO on every request:
// composers predict each plan's latency with the M/G/1 queueing model
// (core/latency_model.hpp) and reject deadline violations at admission;
// per-(app, second) violation windows are scored from the sink delay
// histograms. --adapt-predictive additionally lets the rate adapter act
// when the *predicted* latency of a deployed plan crosses the deadline,
// before drops appear (needs --adapt-interval). With the default
// --deadline-ms 0 none of this exists and output is byte-identical.
//
// --control-plane gossip switches to the fully decentralized plane: every
// node runs a budgeted epidemic disseminator of load summaries (see
// gossip/agent.hpp) and admits requests itself by composing hop-by-hop
// from its partial view, with node-side pool debits as the authoritative
// capacity check. --gossip-fanout / --gossip-interval-ms set the push
// cadence, --gossip-budget-bytes the hard per-round digest byte budget
// and --gossip-stale-rounds the view aging window. With the default
// (empty) --control-plane, coordinators > 1 still selects the sharded
// plane as before.
#include <cstdio>
#include <string>

#include "exp/runner.hpp"
#include "runtime/scheduler.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/summary_stats.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);

  exp::RunConfig cfg;
  cfg.algorithm = flags.get_string("algorithm", "mincost");
  cfg.world.nodes = std::size_t(flags.get_int("nodes", 32));
  cfg.world.num_services = int(flags.get_int("services", 10));
  cfg.world.services_per_node =
      int(flags.get_int("services-per-node", 5));
  cfg.world.net.bw_min_kbps = flags.get_double("bw-min", 300);
  cfg.world.net.bw_max_kbps = flags.get_double("bw-max", 4000);
  cfg.world.net.latency_min =
      sim::msec(flags.get_int("latency-min-ms", 10));
  cfg.world.net.latency_max =
      sim::msec(flags.get_int("latency-max-ms", 200));
  cfg.world.net.latency_jitter = flags.get_double("latency-jitter", 0.25);
  cfg.world.service_cpu_min =
      sim::msec(flags.get_int("cpu-min-ms", 1));
  cfg.world.service_cpu_max =
      sim::msec(flags.get_int("cpu-max-ms", 4));
  cfg.world.monitor_params.outcome_window =
      std::size_t(flags.get_int("window", 200));
  cfg.world.monitor_params.advertise_reservations =
      flags.get_bool("reservations", false);
  cfg.world.sim_threads = int(flags.get_int("sim-threads", 1));

  const std::string policy = flags.get_string("policy", "llf");
  if (policy == "fifo") {
    cfg.world.runtime_params.policy = runtime::SchedulingPolicy::kFifo;
  } else if (policy == "edf") {
    cfg.world.runtime_params.policy = runtime::SchedulingPolicy::kEdf;
  } else if (policy != "llf") {
    std::fprintf(stderr, "unknown --policy %s\n", policy.c_str());
    return 2;
  }

  cfg.workload.num_requests = int(flags.get_int("requests", 60));
  cfg.workload.avg_rate_kbps = flags.get_double("rate", 100);
  cfg.workload.rate_jitter = flags.get_double("rate-jitter", 0.2);
  cfg.workload.min_services = int(flags.get_int("min-services", 2));
  cfg.workload.max_services = int(flags.get_int("max-services", 5));
  cfg.workload.unit_bytes = flags.get_int("unit-bytes", 1250);
  cfg.submit_gap = sim::msec(flags.get_int("submit-gap-ms", 700));
  cfg.steady_duration = sim::sec(flags.get_int("steady-sec", 15));

  if (flags.get_bool("no-cpu", false)) cfg.algorithm = "mincost-nocpu";

  cfg.adapt_interval = sim::msec(flags.get_int("adapt-interval", 0));
  cfg.adapt_hysteresis = flags.get_double("adapt-hysteresis", 0.05);

  // Predictive latency SLO (default 0 = off, byte-identical output).
  cfg.deadline_ms = flags.get_double("deadline-ms", 0);
  cfg.adapt_predictive = flags.get_bool("adapt-predictive", false);
  cfg.slo_window = sim::msec(flags.get_int("slo-window-ms", 1000));

  // Deploy-phase reliability (defaults keep the legacy single-shot
  // protocol and identical output bytes).
  cfg.world.deploy_policy.retransmit_budget =
      int(flags.get_int("deploy-retries", 0));
  cfg.world.deploy_policy.rollback = flags.get_bool("deploy-rollback", false);
  cfg.world.runtime_params.orphan_lease =
      sim::msec(flags.get_int("orphan-lease-ms", 0));

  // Sharded control plane (default 1 coordinator = legacy path).
  cfg.coordinators = int(flags.get_int("coordinators", 1));
  cfg.admission_policy = flags.get_string("admission-policy", "fifo");
  cfg.batch_window = sim::msec(flags.get_int("batch-window-ms", 100));
  cfg.lease_duration = sim::msec(flags.get_int("lease-ms", 12000));
  cfg.lease_renew = sim::msec(flags.get_int("lease-renew-ms", 5000));

  // Shard re-homing (default off = no standby objects, byte-identical
  // output).
  cfg.shard_standby = flags.get_bool("shard-standby", false);
  cfg.standby_check = sim::msec(flags.get_int("standby-check-ms", 500));
  cfg.submit_retry = sim::msec(flags.get_int("submit-retry-ms", 0));

  // Control-plane selection and gossip knobs (empty = legacy behavior).
  cfg.control_plane = flags.get_string("control-plane", "");
  cfg.gossip_fanout = int(flags.get_int("gossip-fanout", 3));
  cfg.gossip_interval = sim::msec(flags.get_int("gossip-interval-ms", 500));
  cfg.gossip_budget_bytes = flags.get_int("gossip-budget-bytes", 3200);
  cfg.gossip_stale_rounds = int(flags.get_int("gossip-stale-rounds", 30));

  cfg.chaos_scenario = flags.get_string("chaos-scenario", "");
  cfg.chaos_seed = std::uint64_t(flags.get_int("chaos-seed", 0));
  cfg.supervise = flags.get_bool("supervise", false);
  const std::string slo_spec = flags.get_string("slo", "");
  if (!slo_spec.empty()) cfg.slo = chaos::parse_slo(slo_spec);
  const std::string slo_report = flags.get_string("slo-report", "");
  const std::string timeline_csv = flags.get_string("chaos-timeline", "");

  const int reps = int(flags.get_int("reps", 1));
  const std::uint64_t seed = std::uint64_t(flags.get_int("seed", 42));
  const std::string csv_path = flags.get_string("csv", "");
  const std::string metrics_csv = flags.get_string("metrics-csv", "");
  const std::string metrics_json = flags.get_string("metrics-json", "");
  flags.finish();

  // "snap.csv" -> "snap_rep2.csv" when running several repetitions.
  const auto rep_path = [reps](const std::string& path, int rep) {
    if (path.empty() || reps <= 1) return path;
    const auto dot = path.find_last_of('.');
    const std::string suffix = "_rep" + std::to_string(rep);
    if (dot == std::string::npos) return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
  };

  util::CsvWriter* csv = nullptr;
  util::CsvWriter csv_storage = csv_path.empty()
                                    ? util::CsvWriter("/dev/null")
                                    : util::CsvWriter(csv_path);
  if (!csv_path.empty()) {
    csv = &csv_storage;
    csv->row({"rep", "composed", "emitted", "delivered_fraction",
              "timely_fraction", "ooo_fraction", "mean_delay_ms",
              "mean_jitter_ms", "splitting_degree", "drops_network"});
  }

  util::SummaryStats composed, delivered, timely, delay, jitter;
  bool slo_violated = false;
  for (int rep = 0; rep < reps; ++rep) {
    cfg.world.seed = seed + std::uint64_t(rep) * 7919;
    cfg.metrics_csv = rep_path(metrics_csv, rep);
    cfg.metrics_json = rep_path(metrics_json, rep);
    cfg.slo_report = rep_path(slo_report, rep);
    cfg.chaos_timeline_csv = rep_path(timeline_csv, rep);
    const auto m = exp::run_experiment(cfg);
    std::printf(
        "rep %d: composed %d/%d | emitted %lld | delivered %.3f | timely "
        "%.3f | ooo %.4f | delay %.1f ms | jitter %.2f ms | split %.2f | "
        "net drops %lld\n",
        rep, m.composed, m.requests, (long long)m.emitted,
        m.delivered_fraction(), m.timely_fraction(),
        m.out_of_order_fraction(), m.mean_delay_ms(), m.mean_jitter_ms(),
        m.splitting_degree(), (long long)m.drops_network);
    if (m.faults_injected > 0 || m.slo_pass >= 0) {
      std::printf(
          "rep %d: chaos faults %lld | recoveries %lld | gave up %lld | "
          "recovery %s | slo %s\n",
          rep, (long long)m.faults_injected, (long long)m.recoveries,
          (long long)m.gave_up,
          m.recovery_ms >= 0
              ? (std::to_string(std::int64_t(m.recovery_ms)) + " ms").c_str()
              : "n/a",
          m.slo_pass < 0 ? "n/a" : (m.slo_pass == 1 ? "PASS" : "FAIL"));
    }
    if (m.adapt_attempts > 0) {
      std::printf("rep %d: adapt attempts %lld | deltas %lld | teardowns "
                  "%lld\n",
                  rep, (long long)m.adapt_attempts, (long long)m.adapt_deltas,
                  (long long)m.adapt_teardowns);
    }
    if (m.slo_windows > 0 || m.predict_triggers > 0) {
      std::printf(
          "rep %d: slo windows %lld | violated %lld (%.3f) | predict "
          "triggers %lld\n",
          rep, (long long)m.slo_windows, (long long)m.slo_windows_violated,
          m.slo_windows > 0
              ? double(m.slo_windows_violated) / double(m.slo_windows)
              : 0.0,
          (long long)m.predict_triggers);
    }
    if (m.deploy_retries > 0 || m.deploy_rollbacks > 0 ||
        m.orphans_reaped > 0) {
      std::printf("rep %d: deploy retries %lld | rollbacks %lld | orphans "
                  "reaped %lld\n",
                  rep, (long long)m.deploy_retries,
                  (long long)m.deploy_rollbacks, (long long)m.orphans_reaped);
    }
    if (m.shard_submitted > 0) {
      std::printf(
          "rep %d: shards admitted %lld/%lld | batches %lld | repairs "
          "%lld | lease grants %lld | nacks %lld | expired %lld | "
          "overgrant %.3f kbps\n",
          rep, (long long)m.shard_admitted, (long long)m.shard_submitted,
          (long long)m.shard_batches, (long long)m.shard_repairs,
          (long long)m.lease_grants, (long long)m.lease_nacks,
          (long long)m.lease_expired, m.lease_overgrant_kbps);
      if (m.shard_failovers > 0) {
        std::printf("rep %d: shard failovers %lld\n", rep,
                    (long long)m.shard_failovers);
      }
      if (m.shard_rehomes > 0 || m.shard_fenced > 0 ||
          m.shard_resubmits > 0) {
        std::printf(
            "rep %d: shard rehomes %lld | adopted %lld | reclaimed %lld | "
            "fenced %lld | resubmits %lld\n",
            rep, (long long)m.shard_rehomes, (long long)m.shard_adopted,
            (long long)m.shard_reclaimed, (long long)m.shard_fenced,
            (long long)m.shard_resubmits);
      }
    }
    if (m.gossip_submitted > 0) {
      std::printf(
          "rep %d: gossip admitted %lld/%lld | repairs %lld | digests "
          "%lld | digest bytes %lld | merges %lld | prunes %lld\n",
          rep, (long long)m.gossip_admitted, (long long)m.gossip_submitted,
          (long long)m.gossip_repairs, (long long)m.gossip_sends,
          (long long)m.gossip_sent_bytes, (long long)m.gossip_merges,
          (long long)m.gossip_prunes);
    }
    if (m.slo_pass == 0) slo_violated = true;
    composed.add(m.composed);
    delivered.add(m.delivered_fraction());
    timely.add(m.timely_fraction());
    delay.add(m.mean_delay_ms());
    jitter.add(m.mean_jitter_ms());
    if (csv != nullptr) {
      csv->numeric_row(std::to_string(rep),
                       {double(m.composed), double(m.emitted),
                        m.delivered_fraction(), m.timely_fraction(),
                        m.out_of_order_fraction(), m.mean_delay_ms(),
                        m.mean_jitter_ms(), m.splitting_degree(),
                        double(m.drops_network)});
    }
  }
  if (reps > 1) {
    std::printf(
        "\nmean over %d reps: composed %.1f | delivered %.3f | timely "
        "%.3f | delay %.1f ms | jitter %.2f ms\n",
        reps, composed.mean(), delivered.mean(), timely.mean(),
        delay.mean(), jitter.mean());
  }
  return slo_violated ? 1 : 0;
}
