// Video streaming: the paper's motivating scenario (§1 — "in a video
// streaming application, data needs to arrive to the destination at a
// rate high enough for the video to be properly presented and with small
// jitter").
//
// A media provider composes a two-substream application like Figure 2:
//   video: decrypt -> transcode -> watermark   (transcode halves bytes)
//   audio: downmix                             (downmix drops every other
//                                               unit: rate ratio 0.5)
// exercising rate ratios != 1 and output size factors — the general case
// §2.2 sketches via linear programming, which this library reduces to
// plain min-cost flow by normalizing to delivered units (DESIGN.md).
//
//   ./build/examples/video_streaming [--viewers 4] [--rate 400]
#include <cstdio>

#include "core/mincost_composer.hpp"
#include "exp/world.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  const int viewers = int(flags.get_int("viewers", 4));
  const double rate = flags.get_double("rate", 400);
  flags.finish();

  exp::WorldConfig wc;
  wc.nodes = 24;
  wc.services_per_node = 3;
  wc.seed = 11;
  wc.net.bw_min_kbps = 1500;
  wc.net.bw_max_kbps = 6000;
  wc.custom_services = {
      // name, cpu per unit, rate ratio, output size factor
      {"decrypt", sim::msec(2), 1.0, 1.0},
      {"transcode", sim::msec(8), 1.0, 0.5},  // re-encode at half bitrate
      {"watermark", sim::msec(3), 1.0, 1.0},
      {"downmix", sim::msec(1), 0.5, 1.0},    // 2 channels -> 1 unit
      {"subtitle", sim::msec(1), 1.0, 1.0},
  };
  exp::World world(wc);
  auto& simulator = world.simulator();
  core::MinCostComposer composer;

  const sim::SimTime stop = simulator.now() + sim::sec(30);
  int admitted = 0;
  for (int v = 0; v < viewers; ++v) {
    core::ServiceRequest req;
    req.app = v + 1;
    req.source = sim::NodeIndex(v % 4);  // a few content servers
    req.destination = sim::NodeIndex(world.size() - 1 - std::size_t(v));
    req.unit_bytes = 4000;  // ~one GOP slice per unit
    req.substreams = {
        {{"decrypt", "transcode", "watermark"}, rate},
        {{"downmix"}, rate / 8},
    };
    world.host(std::size_t(req.source))
        .coordinator()
        .submit(req, composer, 0, stop,
                [v](const core::SubmitOutcome& o) {
                  if (o.compose.admitted) {
                    std::printf("viewer %d admitted (%zu components, "
                                "composed in %.0f ms)\n",
                                v, o.compose.plan.component_count(),
                                sim::to_ms(o.composition_latency));
                  } else {
                    std::printf("viewer %d rejected: %s\n", v,
                                o.compose.error.c_str());
                  }
                });
    simulator.run_until(simulator.now() + sim::msec(800));
  }

  simulator.run_until(stop + sim::sec(2));

  std::printf("\nper-viewer delivery quality at the set-top box:\n");
  for (int v = 0; v < viewers; ++v) {
    const auto dest = std::size_t(world.size() - 1 - std::size_t(v));
    const auto& rt = world.host(dest).runtime();
    const auto* video = rt.find_sink(v + 1, 0);
    const auto* audio = rt.find_sink(v + 1, 1);
    if (video == nullptr) continue;
    ++admitted;
    std::printf(
        "  viewer %d: video %lld units, delay %.0f ms, jitter %.1f ms | "
        "audio %lld units, jitter %.1f ms\n",
        v, (long long)video->stats().delivered,
        video->stats().delay_ms.mean(), video->stats().jitter_ms.mean(),
        audio ? (long long)audio->stats().delivered : 0,
        audio ? audio->stats().jitter_ms.mean() : 0.0);
  }
  std::printf("%d/%d viewers served\n", admitted, viewers);
  return admitted > 0 ? 0 : 1;
}
