// Sensor network monitoring: the paper's other motivating domain (§1 —
// "sensor streaming in which sensor data are processed and analyzed in
// real-time"). Many low-rate streams compete for the same overlay:
//
//   calibrate -> aggregate (10:1 reduction) -> threshold-filter
//
// demonstrating how the system accommodates a fleet of small requests and
// how rate-reducing services cut downstream bandwidth demand.
//
//   ./build/examples/sensor_aggregation [--sensors 20] [--rate 40]
#include <cstdio>

#include "core/mincost_composer.hpp"
#include "exp/world.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  const int sensors = int(flags.get_int("sensors", 20));
  const double rate = flags.get_double("rate", 40);
  flags.finish();

  exp::WorldConfig wc;
  wc.nodes = 16;
  wc.services_per_node = 2;
  wc.seed = 5;
  wc.net.bw_min_kbps = 500;
  wc.net.bw_max_kbps = 2000;
  wc.custom_services = {
      {"calibrate", sim::msec(1), 1.0, 1.0},
      // 10 readings merge into one summary unit of the same size.
      {"aggregate", sim::msec(2), 0.1, 1.0},
      {"threshold", sim::msec(1), 1.0, 0.25},
  };
  exp::World world(wc);
  auto& simulator = world.simulator();
  core::MinCostComposer composer;

  const sim::NodeIndex control_room = sim::NodeIndex(world.size() - 1);
  const sim::SimTime stop = simulator.now() + sim::sec(40);
  int admitted = 0, rejected = 0;

  for (int s = 0; s < sensors; ++s) {
    core::ServiceRequest req;
    req.app = s + 1;
    req.source = sim::NodeIndex(s % (world.size() - 1));  // field gateways
    req.destination = control_room;
    req.unit_bytes = 250;  // a batch of readings
    // Delivery requirement: rate/10 after aggregation (in Kbps of the
    // quarter-size summary units).
    req.substreams = {
        {{"calibrate", "aggregate", "threshold"}, rate / 40},
    };
    world.host(std::size_t(req.source))
        .coordinator()
        .submit(req, composer, 0, stop,
                [&admitted, &rejected](const core::SubmitOutcome& o) {
                  o.compose.admitted ? ++admitted : ++rejected;
                });
    simulator.run_until(simulator.now() + sim::msec(300));
  }
  simulator.run_until(stop + sim::sec(2));

  std::printf("sensors admitted: %d, rejected: %d\n", admitted, rejected);

  // Control-room view: everything lands on one destination node.
  const auto sink = world.host(std::size_t(control_room))
                        .runtime()
                        .aggregate_sink_stats();
  std::int64_t emitted = 0;
  for (std::size_t n = 0; n < world.size(); ++n) {
    emitted += world.host(n).runtime().total_emitted();
  }
  std::printf(
      "field units emitted: %lld; summaries delivered: %lld "
      "(aggregation ratio ~%.1f:1), mean delay %.0f ms, timely %.1f%%\n",
      (long long)emitted, (long long)sink.delivered,
      sink.delivered ? double(emitted) / double(sink.delivered) : 0.0,
      sink.delay_ms.mean(),
      sink.delivered ? 100.0 * double(sink.timely) / double(sink.delivered)
                     : 0.0);

  // The aggregate service's bandwidth economics: input vs output rate.
  std::printf(
      "note: each admitted stream enters 'aggregate' at 10x the rate it "
      "leaves — the composer sized upstream instances accordingly "
      "(normalized min-cost flow, DESIGN.md).\n");
  return admitted > 0 ? 0 : 1;
}
