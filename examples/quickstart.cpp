// Quickstart: build a small RASC deployment, submit one stream-processing
// request, and inspect the composed execution graph and delivery quality.
//
//   ./build/examples/quickstart [--nodes 16] [--rate 120] [--algorithm mincost]
#include <cstdio>

#include "core/greedy_composer.hpp"
#include "core/mincost_composer.hpp"
#include "core/random_composer.hpp"
#include "exp/runner.hpp"
#include "exp/world.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace rasc;
  util::Flags flags(argc, argv);
  const auto nodes = std::size_t(flags.get_int("nodes", 16));
  const double rate = flags.get_double("rate", 120);
  const std::string algorithm = flags.get_string("algorithm", "mincost");
  flags.finish();

  // 1. Build the world: topology, Pastry overlay, per-node monitors,
  //    runtimes and coordinators; services registered in the DHT.
  exp::WorldConfig wc;
  wc.nodes = nodes;
  wc.seed = 7;
  exp::World world(wc);
  std::printf("world ready: %zu nodes, %d services, sim time %.1f ms\n",
              world.size(), wc.num_services,
              sim::to_ms(world.simulator().now()));

  // 2. Describe the application: two substreams like the paper's example
  //    request graph (Figure 2): s1 -> s2 on one, s3 on the other.
  core::ServiceRequest request;
  request.app = 1;
  request.source = 0;
  request.destination = sim::NodeIndex(world.size() - 1);
  request.unit_bytes = 1250;
  request.substreams = {
      core::Substream{{"svc1", "svc2"}, rate},
      core::Substream{{"svc3"}, rate},
  };

  // 3. Submit through the source node's coordinator. Discovery, stats
  //    gathering, composition and deployment all happen as simulated
  //    message exchanges.
  auto& simulator = world.simulator();
  core::MinCostComposer mincost;
  core::GreedyComposer greedy;
  core::RandomComposer random_composer(simulator.rng().split(1));
  core::Composer* composer = &mincost;
  if (algorithm == "greedy") composer = &greedy;
  if (algorithm == "random") composer = &random_composer;

  const sim::SimTime stop = simulator.now() + sim::sec(30);
  bool finished = false;
  world.host(0).coordinator().submit(
      request, *composer, /*stream_start=*/0, stop,
      [&](const core::SubmitOutcome& outcome) {
        finished = true;
        if (!outcome.compose.admitted) {
          std::printf("request rejected: %s\n",
                      outcome.compose.error.c_str());
          return;
        }
        std::printf("composed in %.1f ms using %s:\n",
                    sim::to_ms(outcome.composition_latency),
                    composer->name());
        const auto& plan = outcome.compose.plan;
        for (std::size_t ss = 0; ss < plan.substreams.size(); ++ss) {
          const auto& sub = plan.substreams[ss];
          std::printf("  substream %zu (%.1f units/s delivered):\n", ss,
                      sub.rate_units_per_sec);
          for (const auto& stage : sub.stages) {
            std::printf("    %s ->", stage.service.c_str());
            for (const auto& p : stage.placements) {
              std::printf(" [node %d @ %.1f u/s]", p.node,
                          p.rate_units_per_sec);
            }
            std::printf("\n");
          }
        }
      });

  // 4. Run the stream and report delivery quality at the destination.
  simulator.run_until(stop + sim::sec(2));
  if (!finished) {
    std::printf("composition never completed\n");
    return 1;
  }
  const auto& dest_runtime = world.host(world.size() - 1).runtime();
  const auto sink = dest_runtime.aggregate_sink_stats();
  const auto emitted = world.host(0).runtime().total_emitted();
  std::printf(
      "\nemitted %lld units, delivered %lld (%.1f%%), timely %.1f%%, "
      "mean delay %.1f ms, mean jitter %.2f ms, out-of-order %lld\n",
      (long long)emitted, (long long)sink.delivered,
      emitted ? 100.0 * double(sink.delivered) / double(emitted) : 0.0,
      sink.delivered ? 100.0 * double(sink.timely) / double(sink.delivered)
                     : 0.0,
      sink.delay_ms.mean(), sink.jitter_ms.mean(),
      (long long)sink.out_of_order);
  return 0;
}
