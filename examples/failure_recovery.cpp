// Failure recovery: a node hosting a component crashes mid-stream. Part 1
// performs the recovery manually (teardown messages + re-submission) to
// show the mechanics; part 2 lets the AppSupervisor detect the starving
// stream and re-compose automatically.
//
//   ./build/examples/failure_recovery [--rate 150]
#include <cstdio>

#include "core/mincost_composer.hpp"
#include "core/supervisor.hpp"
#include "exp/world.hpp"
#include "runtime/deploy_messages.hpp"
#include "util/flags.hpp"

using namespace rasc;

namespace {

/// Submits `req` and reports the admitted plan through `done`.
void submit(exp::World& world, core::Composer& composer,
            const core::ServiceRequest& req, sim::SimTime stop,
            std::function<void(const core::SubmitOutcome&)> done) {
  world.host(std::size_t(req.source))
      .coordinator()
      .submit(req, composer, 0, stop, std::move(done));
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double rate = flags.get_double("rate", 150);
  flags.finish();

  exp::WorldConfig wc;
  wc.nodes = 16;
  wc.services_per_node = 4;
  wc.seed = 17;
  wc.net.bw_min_kbps = 1500;
  wc.net.bw_max_kbps = 4000;
  exp::World world(wc);
  auto& simulator = world.simulator();
  auto& network = world.network();
  core::MinCostComposer composer;

  core::ServiceRequest req;
  req.app = 1;
  req.source = 0;
  req.destination = sim::NodeIndex(world.size() - 1);
  req.unit_bytes = 1250;
  req.substreams = {{{"svc0", "svc1", "svc2"}, rate}};

  const sim::SimTime stop = simulator.now() + sim::sec(60);
  runtime::AppPlan plan;
  bool admitted = false;
  submit(world, composer, req, stop, [&](const core::SubmitOutcome& o) {
    admitted = o.compose.admitted;
    if (admitted) plan = o.compose.plan;
  });
  simulator.run_until(simulator.now() + sim::sec(10));
  if (!admitted) {
    std::printf("initial composition failed\n");
    return 1;
  }

  // Pick a victim: the node hosting the first component of the chain.
  const sim::NodeIndex victim = plan.substreams[0].stages[0].placements[0].node;
  const auto* sink_before =
      world.host(std::size_t(req.destination)).runtime().find_sink(1, 0);
  const auto delivered_before = sink_before->stats().delivered;
  std::printf("stream up: %lld units delivered in 10 s; killing node %d "
              "(hosts stage 0)\n",
              (long long)delivered_before, victim);
  network.fail_node(victim);

  // Let the outage bite: deliveries stall.
  simulator.run_until(simulator.now() + sim::sec(5));
  const auto delivered_stalled = sink_before->stats().delivered;
  std::printf("after 5 s of outage: %lld more units arrived (stream is "
              "starving)\n",
              (long long)(delivered_stalled - delivered_before));

  // Recovery: purge the dead peer from every node's overlay state (the
  // failure detector's role), tear the app down everywhere, re-compose
  // under a new app id from fresh statistics.
  for (std::size_t n = 0; n < world.size(); ++n) {
    if (sim::NodeIndex(n) == victim) continue;
    world.overlay().at(n).purge_peer(victim);
    auto td = std::make_shared<runtime::TeardownAppMsg>();
    td->app = 1;
    network.send(req.source, sim::NodeIndex(n),
                 runtime::TeardownAppMsg::kBytes, td);
  }
  simulator.run_until(simulator.now() + sim::sec(1));

  core::ServiceRequest retry = req;
  retry.app = 2;
  bool recovered = false;
  runtime::AppPlan new_plan;
  submit(world, composer, retry, stop, [&](const core::SubmitOutcome& o) {
    recovered = o.compose.admitted;
    if (recovered) new_plan = o.compose.plan;
    if (!recovered) {
      std::printf("re-composition failed: %s\n", o.compose.error.c_str());
    }
  });
  simulator.run_until(simulator.now() + sim::sec(10));
  if (!recovered) return 1;

  bool avoids_victim = true;
  for (const auto& sub : new_plan.substreams) {
    for (const auto& stage : sub.stages) {
      for (const auto& p : stage.placements) {
        if (p.node == victim) avoids_victim = false;
      }
    }
  }
  const auto* sink_after =
      world.host(std::size_t(req.destination)).runtime().find_sink(2, 0);
  std::printf(
      "re-composed as app 2 (%s the failed node); %lld units delivered "
      "in the 10 s after recovery, mean delay %.0f ms\n",
      avoids_victim ? "avoiding" : "STILL USING",
      sink_after ? (long long)sink_after->stats().delivered : 0,
      sink_after ? sink_after->stats().delay_ms.mean() : 0.0);

  // ---- Part 2: automatic recovery via the AppSupervisor ----
  // Bring the first victim back first: restore_node resurrects the node
  // with empty port queues (a rebooted box, not a paused one).
  network.restore_node(victim);
  std::printf("\nnode %d restored (failures so far: %lld, restores: %lld)\n",
              victim, (long long)network.node_failures(victim),
              (long long)network.node_restores(victim));
  std::printf("part 2: supervised stream, automatic recovery\n");
  core::ServiceRequest req3 = req;
  req3.app = 3;
  bool admitted3 = false;
  runtime::AppPlan plan3;
  submit(world, composer, req3, stop, [&](const core::SubmitOutcome& o) {
    admitted3 = o.compose.admitted;
    if (admitted3) plan3 = o.compose.plan;
  });
  simulator.run_until(simulator.now() + sim::sec(8));
  if (!admitted3) {
    std::printf("supervised submission failed\n");
    return 1;
  }
  auto& supervisor = world.host(0).supervisor();
  supervisor.watch(req3, plan3, stop,
                   [](const core::AppSupervisor::Event& e) {
                     using K = core::AppSupervisor::Event::Kind;
                     switch (e.kind) {
                       case K::kRecovering:
                         std::printf("  supervisor: app %lld starving, "
                                     "recomposing...\n",
                                     (long long)e.old_app);
                         break;
                       case K::kRecovered:
                         std::printf("  supervisor: recovered as app "
                                     "%lld\n",
                                     (long long)e.new_app);
                         break;
                       default:
                         std::printf("  supervisor: recovery problem\n");
                     }
                   });
  const auto victim3 = plan3.substreams[0].stages[0].placements[0].node;
  std::printf("  killing node %d (hosts app 3 stage 0)\n", victim3);
  network.fail_node(victim3);
  for (std::size_t n = 0; n < world.size(); ++n) {
    if (sim::NodeIndex(n) != victim3) {
      world.overlay().at(n).purge_peer(victim3);
    }
  }
  simulator.run_until(simulator.now() + sim::sec(25));
  const auto dest_total = world.host(std::size_t(req.destination))
                              .runtime()
                              .aggregate_sink_stats();
  std::printf("  destination has now seen %lld units across all apps\n",
              (long long)dest_total.delivered);
  return (recovered && avoids_victim) ? 0 : 1;
}
