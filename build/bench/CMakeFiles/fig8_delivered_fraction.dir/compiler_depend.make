# Empty compiler generated dependencies file for fig8_delivered_fraction.
# This may be replaced when dependencies are built.
