# Empty compiler generated dependencies file for micro_mincost.
# This may be replaced when dependencies are built.
