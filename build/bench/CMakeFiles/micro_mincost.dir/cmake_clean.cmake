file(REMOVE_RECURSE
  "CMakeFiles/micro_mincost.dir/micro_mincost.cpp.o"
  "CMakeFiles/micro_mincost.dir/micro_mincost.cpp.o.d"
  "micro_mincost"
  "micro_mincost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mincost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
