file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiresource.dir/ablation_multiresource.cpp.o"
  "CMakeFiles/ablation_multiresource.dir/ablation_multiresource.cpp.o.d"
  "ablation_multiresource"
  "ablation_multiresource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
