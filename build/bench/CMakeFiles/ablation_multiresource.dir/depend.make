# Empty dependencies file for ablation_multiresource.
# This may be replaced when dependencies are built.
