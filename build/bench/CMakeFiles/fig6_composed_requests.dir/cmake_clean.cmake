file(REMOVE_RECURSE
  "CMakeFiles/fig6_composed_requests.dir/fig6_composed_requests.cpp.o"
  "CMakeFiles/fig6_composed_requests.dir/fig6_composed_requests.cpp.o.d"
  "fig6_composed_requests"
  "fig6_composed_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_composed_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
