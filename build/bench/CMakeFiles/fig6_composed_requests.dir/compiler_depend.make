# Empty compiler generated dependencies file for fig6_composed_requests.
# This may be replaced when dependencies are built.
