# Empty dependencies file for ablation_splitting.
# This may be replaced when dependencies are built.
