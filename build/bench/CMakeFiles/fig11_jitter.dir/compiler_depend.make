# Empty compiler generated dependencies file for fig11_jitter.
# This may be replaced when dependencies are built.
