file(REMOVE_RECURSE
  "CMakeFiles/fig11_jitter.dir/fig11_jitter.cpp.o"
  "CMakeFiles/fig11_jitter.dir/fig11_jitter.cpp.o.d"
  "fig11_jitter"
  "fig11_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
