# Empty compiler generated dependencies file for fig7_end_to_end_delay.
# This may be replaced when dependencies are built.
