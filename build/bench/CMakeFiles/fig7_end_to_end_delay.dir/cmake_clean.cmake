file(REMOVE_RECURSE
  "CMakeFiles/fig7_end_to_end_delay.dir/fig7_end_to_end_delay.cpp.o"
  "CMakeFiles/fig7_end_to_end_delay.dir/fig7_end_to_end_delay.cpp.o.d"
  "fig7_end_to_end_delay"
  "fig7_end_to_end_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_end_to_end_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
