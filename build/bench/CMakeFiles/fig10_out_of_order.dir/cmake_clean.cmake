file(REMOVE_RECURSE
  "CMakeFiles/fig10_out_of_order.dir/fig10_out_of_order.cpp.o"
  "CMakeFiles/fig10_out_of_order.dir/fig10_out_of_order.cpp.o.d"
  "fig10_out_of_order"
  "fig10_out_of_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_out_of_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
