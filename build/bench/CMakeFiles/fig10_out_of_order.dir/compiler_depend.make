# Empty compiler generated dependencies file for fig10_out_of_order.
# This may be replaced when dependencies are built.
