# Empty dependencies file for fig9_timely_fraction.
# This may be replaced when dependencies are built.
