file(REMOVE_RECURSE
  "CMakeFiles/fig9_timely_fraction.dir/fig9_timely_fraction.cpp.o"
  "CMakeFiles/fig9_timely_fraction.dir/fig9_timely_fraction.cpp.o.d"
  "fig9_timely_fraction"
  "fig9_timely_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_timely_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
