# Empty dependencies file for test_component.
# This may be replaced when dependencies are built.
