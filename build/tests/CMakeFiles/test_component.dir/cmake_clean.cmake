file(REMOVE_RECURSE
  "CMakeFiles/test_component.dir/test_component.cpp.o"
  "CMakeFiles/test_component.dir/test_component.cpp.o.d"
  "test_component"
  "test_component.pdb"
  "test_component[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
