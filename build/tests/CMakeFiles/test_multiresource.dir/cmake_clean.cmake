file(REMOVE_RECURSE
  "CMakeFiles/test_multiresource.dir/test_multiresource.cpp.o"
  "CMakeFiles/test_multiresource.dir/test_multiresource.cpp.o.d"
  "test_multiresource"
  "test_multiresource.pdb"
  "test_multiresource[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
