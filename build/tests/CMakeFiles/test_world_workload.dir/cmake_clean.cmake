file(REMOVE_RECURSE
  "CMakeFiles/test_world_workload.dir/test_world_workload.cpp.o"
  "CMakeFiles/test_world_workload.dir/test_world_workload.cpp.o.d"
  "test_world_workload"
  "test_world_workload.pdb"
  "test_world_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
