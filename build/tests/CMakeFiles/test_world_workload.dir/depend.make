# Empty dependencies file for test_world_workload.
# This may be replaced when dependencies are built.
