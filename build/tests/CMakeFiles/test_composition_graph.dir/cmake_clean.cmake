file(REMOVE_RECURSE
  "CMakeFiles/test_composition_graph.dir/test_composition_graph.cpp.o"
  "CMakeFiles/test_composition_graph.dir/test_composition_graph.cpp.o.d"
  "test_composition_graph"
  "test_composition_graph.pdb"
  "test_composition_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composition_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
