# Empty compiler generated dependencies file for test_plan_math.
# This may be replaced when dependencies are built.
