file(REMOVE_RECURSE
  "CMakeFiles/test_plan_math.dir/test_plan_math.cpp.o"
  "CMakeFiles/test_plan_math.dir/test_plan_math.cpp.o.d"
  "test_plan_math"
  "test_plan_math.pdb"
  "test_plan_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
