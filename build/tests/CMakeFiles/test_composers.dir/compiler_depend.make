# Empty compiler generated dependencies file for test_composers.
# This may be replaced when dependencies are built.
