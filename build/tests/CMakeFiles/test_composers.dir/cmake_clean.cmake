file(REMOVE_RECURSE
  "CMakeFiles/test_composers.dir/test_composers.cpp.o"
  "CMakeFiles/test_composers.dir/test_composers.cpp.o.d"
  "test_composers"
  "test_composers.pdb"
  "test_composers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
