file(REMOVE_RECURSE
  "CMakeFiles/test_sink_source.dir/test_sink_source.cpp.o"
  "CMakeFiles/test_sink_source.dir/test_sink_source.cpp.o.d"
  "test_sink_source"
  "test_sink_source.pdb"
  "test_sink_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sink_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
