# Empty compiler generated dependencies file for test_sink_source.
# This may be replaced when dependencies are built.
