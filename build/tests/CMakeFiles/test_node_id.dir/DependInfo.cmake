
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_node_id.cpp" "tests/CMakeFiles/test_node_id.dir/test_node_id.cpp.o" "gcc" "tests/CMakeFiles/test_node_id.dir/test_node_id.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rasc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rasc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/rasc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/rasc_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rasc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rasc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
