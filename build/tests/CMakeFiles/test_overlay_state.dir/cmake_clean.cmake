file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_state.dir/test_overlay_state.cpp.o"
  "CMakeFiles/test_overlay_state.dir/test_overlay_state.cpp.o.d"
  "test_overlay_state"
  "test_overlay_state.pdb"
  "test_overlay_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
