# Empty compiler generated dependencies file for test_overlay_state.
# This may be replaced when dependencies are built.
