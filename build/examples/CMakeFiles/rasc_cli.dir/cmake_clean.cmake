file(REMOVE_RECURSE
  "CMakeFiles/rasc_cli.dir/rasc_sim.cpp.o"
  "CMakeFiles/rasc_cli.dir/rasc_sim.cpp.o.d"
  "rasc_cli"
  "rasc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
