# Empty dependencies file for rasc_cli.
# This may be replaced when dependencies are built.
