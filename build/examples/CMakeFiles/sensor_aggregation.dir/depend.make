# Empty dependencies file for sensor_aggregation.
# This may be replaced when dependencies are built.
