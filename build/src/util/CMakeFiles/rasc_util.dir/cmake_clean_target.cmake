file(REMOVE_RECURSE
  "librasc_util.a"
)
