file(REMOVE_RECURSE
  "CMakeFiles/rasc_util.dir/csv.cpp.o"
  "CMakeFiles/rasc_util.dir/csv.cpp.o.d"
  "CMakeFiles/rasc_util.dir/flags.cpp.o"
  "CMakeFiles/rasc_util.dir/flags.cpp.o.d"
  "CMakeFiles/rasc_util.dir/logging.cpp.o"
  "CMakeFiles/rasc_util.dir/logging.cpp.o.d"
  "CMakeFiles/rasc_util.dir/rng.cpp.o"
  "CMakeFiles/rasc_util.dir/rng.cpp.o.d"
  "CMakeFiles/rasc_util.dir/sha1.cpp.o"
  "CMakeFiles/rasc_util.dir/sha1.cpp.o.d"
  "CMakeFiles/rasc_util.dir/summary_stats.cpp.o"
  "CMakeFiles/rasc_util.dir/summary_stats.cpp.o.d"
  "CMakeFiles/rasc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/rasc_util.dir/thread_pool.cpp.o.d"
  "librasc_util.a"
  "librasc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
