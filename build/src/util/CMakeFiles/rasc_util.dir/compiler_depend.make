# Empty compiler generated dependencies file for rasc_util.
# This may be replaced when dependencies are built.
