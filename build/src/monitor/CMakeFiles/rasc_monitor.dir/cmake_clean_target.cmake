file(REMOVE_RECURSE
  "librasc_monitor.a"
)
