file(REMOVE_RECURSE
  "CMakeFiles/rasc_monitor.dir/node_monitor.cpp.o"
  "CMakeFiles/rasc_monitor.dir/node_monitor.cpp.o.d"
  "CMakeFiles/rasc_monitor.dir/rate_meter.cpp.o"
  "CMakeFiles/rasc_monitor.dir/rate_meter.cpp.o.d"
  "CMakeFiles/rasc_monitor.dir/stats_protocol.cpp.o"
  "CMakeFiles/rasc_monitor.dir/stats_protocol.cpp.o.d"
  "librasc_monitor.a"
  "librasc_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
