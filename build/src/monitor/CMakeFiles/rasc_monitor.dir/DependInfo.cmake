
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/node_monitor.cpp" "src/monitor/CMakeFiles/rasc_monitor.dir/node_monitor.cpp.o" "gcc" "src/monitor/CMakeFiles/rasc_monitor.dir/node_monitor.cpp.o.d"
  "/root/repo/src/monitor/rate_meter.cpp" "src/monitor/CMakeFiles/rasc_monitor.dir/rate_meter.cpp.o" "gcc" "src/monitor/CMakeFiles/rasc_monitor.dir/rate_meter.cpp.o.d"
  "/root/repo/src/monitor/stats_protocol.cpp" "src/monitor/CMakeFiles/rasc_monitor.dir/stats_protocol.cpp.o" "gcc" "src/monitor/CMakeFiles/rasc_monitor.dir/stats_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rasc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
