# Empty dependencies file for rasc_monitor.
# This may be replaced when dependencies are built.
