# Empty dependencies file for rasc_exp.
# This may be replaced when dependencies are built.
