file(REMOVE_RECURSE
  "CMakeFiles/rasc_exp.dir/host.cpp.o"
  "CMakeFiles/rasc_exp.dir/host.cpp.o.d"
  "CMakeFiles/rasc_exp.dir/runner.cpp.o"
  "CMakeFiles/rasc_exp.dir/runner.cpp.o.d"
  "CMakeFiles/rasc_exp.dir/sweep.cpp.o"
  "CMakeFiles/rasc_exp.dir/sweep.cpp.o.d"
  "CMakeFiles/rasc_exp.dir/table.cpp.o"
  "CMakeFiles/rasc_exp.dir/table.cpp.o.d"
  "CMakeFiles/rasc_exp.dir/workload.cpp.o"
  "CMakeFiles/rasc_exp.dir/workload.cpp.o.d"
  "CMakeFiles/rasc_exp.dir/world.cpp.o"
  "CMakeFiles/rasc_exp.dir/world.cpp.o.d"
  "librasc_exp.a"
  "librasc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
