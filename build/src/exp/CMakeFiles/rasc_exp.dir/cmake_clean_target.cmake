file(REMOVE_RECURSE
  "librasc_exp.a"
)
