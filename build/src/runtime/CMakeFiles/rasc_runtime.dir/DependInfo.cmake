
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/component.cpp" "src/runtime/CMakeFiles/rasc_runtime.dir/component.cpp.o" "gcc" "src/runtime/CMakeFiles/rasc_runtime.dir/component.cpp.o.d"
  "/root/repo/src/runtime/node_runtime.cpp" "src/runtime/CMakeFiles/rasc_runtime.dir/node_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/rasc_runtime.dir/node_runtime.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/rasc_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/rasc_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/sink.cpp" "src/runtime/CMakeFiles/rasc_runtime.dir/sink.cpp.o" "gcc" "src/runtime/CMakeFiles/rasc_runtime.dir/sink.cpp.o.d"
  "/root/repo/src/runtime/source.cpp" "src/runtime/CMakeFiles/rasc_runtime.dir/source.cpp.o" "gcc" "src/runtime/CMakeFiles/rasc_runtime.dir/source.cpp.o.d"
  "/root/repo/src/runtime/wrr.cpp" "src/runtime/CMakeFiles/rasc_runtime.dir/wrr.cpp.o" "gcc" "src/runtime/CMakeFiles/rasc_runtime.dir/wrr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rasc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rasc_monitor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
