# Empty compiler generated dependencies file for rasc_runtime.
# This may be replaced when dependencies are built.
