file(REMOVE_RECURSE
  "librasc_runtime.a"
)
