file(REMOVE_RECURSE
  "CMakeFiles/rasc_runtime.dir/component.cpp.o"
  "CMakeFiles/rasc_runtime.dir/component.cpp.o.d"
  "CMakeFiles/rasc_runtime.dir/node_runtime.cpp.o"
  "CMakeFiles/rasc_runtime.dir/node_runtime.cpp.o.d"
  "CMakeFiles/rasc_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/rasc_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/rasc_runtime.dir/sink.cpp.o"
  "CMakeFiles/rasc_runtime.dir/sink.cpp.o.d"
  "CMakeFiles/rasc_runtime.dir/source.cpp.o"
  "CMakeFiles/rasc_runtime.dir/source.cpp.o.d"
  "CMakeFiles/rasc_runtime.dir/wrr.cpp.o"
  "CMakeFiles/rasc_runtime.dir/wrr.cpp.o.d"
  "librasc_runtime.a"
  "librasc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
