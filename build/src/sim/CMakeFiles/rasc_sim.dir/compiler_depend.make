# Empty compiler generated dependencies file for rasc_sim.
# This may be replaced when dependencies are built.
