file(REMOVE_RECURSE
  "CMakeFiles/rasc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/rasc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/rasc_sim.dir/network.cpp.o"
  "CMakeFiles/rasc_sim.dir/network.cpp.o.d"
  "CMakeFiles/rasc_sim.dir/simulator.cpp.o"
  "CMakeFiles/rasc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/rasc_sim.dir/topology.cpp.o"
  "CMakeFiles/rasc_sim.dir/topology.cpp.o.d"
  "librasc_sim.a"
  "librasc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
