file(REMOVE_RECURSE
  "librasc_sim.a"
)
