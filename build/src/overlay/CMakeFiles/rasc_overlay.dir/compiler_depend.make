# Empty compiler generated dependencies file for rasc_overlay.
# This may be replaced when dependencies are built.
