
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/builder.cpp" "src/overlay/CMakeFiles/rasc_overlay.dir/builder.cpp.o" "gcc" "src/overlay/CMakeFiles/rasc_overlay.dir/builder.cpp.o.d"
  "/root/repo/src/overlay/node_id.cpp" "src/overlay/CMakeFiles/rasc_overlay.dir/node_id.cpp.o" "gcc" "src/overlay/CMakeFiles/rasc_overlay.dir/node_id.cpp.o.d"
  "/root/repo/src/overlay/pastry_node.cpp" "src/overlay/CMakeFiles/rasc_overlay.dir/pastry_node.cpp.o" "gcc" "src/overlay/CMakeFiles/rasc_overlay.dir/pastry_node.cpp.o.d"
  "/root/repo/src/overlay/registry.cpp" "src/overlay/CMakeFiles/rasc_overlay.dir/registry.cpp.o" "gcc" "src/overlay/CMakeFiles/rasc_overlay.dir/registry.cpp.o.d"
  "/root/repo/src/overlay/state.cpp" "src/overlay/CMakeFiles/rasc_overlay.dir/state.cpp.o" "gcc" "src/overlay/CMakeFiles/rasc_overlay.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rasc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
