file(REMOVE_RECURSE
  "CMakeFiles/rasc_overlay.dir/builder.cpp.o"
  "CMakeFiles/rasc_overlay.dir/builder.cpp.o.d"
  "CMakeFiles/rasc_overlay.dir/node_id.cpp.o"
  "CMakeFiles/rasc_overlay.dir/node_id.cpp.o.d"
  "CMakeFiles/rasc_overlay.dir/pastry_node.cpp.o"
  "CMakeFiles/rasc_overlay.dir/pastry_node.cpp.o.d"
  "CMakeFiles/rasc_overlay.dir/registry.cpp.o"
  "CMakeFiles/rasc_overlay.dir/registry.cpp.o.d"
  "CMakeFiles/rasc_overlay.dir/state.cpp.o"
  "CMakeFiles/rasc_overlay.dir/state.cpp.o.d"
  "librasc_overlay.a"
  "librasc_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
