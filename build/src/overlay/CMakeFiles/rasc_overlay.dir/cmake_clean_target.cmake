file(REMOVE_RECURSE
  "librasc_overlay.a"
)
