# Empty compiler generated dependencies file for rasc_core.
# This may be replaced when dependencies are built.
