file(REMOVE_RECURSE
  "librasc_core.a"
)
