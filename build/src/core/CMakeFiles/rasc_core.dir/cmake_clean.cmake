file(REMOVE_RECURSE
  "CMakeFiles/rasc_core.dir/composition_graph.cpp.o"
  "CMakeFiles/rasc_core.dir/composition_graph.cpp.o.d"
  "CMakeFiles/rasc_core.dir/coordinator.cpp.o"
  "CMakeFiles/rasc_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/rasc_core.dir/greedy_composer.cpp.o"
  "CMakeFiles/rasc_core.dir/greedy_composer.cpp.o.d"
  "CMakeFiles/rasc_core.dir/mincost_composer.cpp.o"
  "CMakeFiles/rasc_core.dir/mincost_composer.cpp.o.d"
  "CMakeFiles/rasc_core.dir/plan_math.cpp.o"
  "CMakeFiles/rasc_core.dir/plan_math.cpp.o.d"
  "CMakeFiles/rasc_core.dir/random_composer.cpp.o"
  "CMakeFiles/rasc_core.dir/random_composer.cpp.o.d"
  "CMakeFiles/rasc_core.dir/request.cpp.o"
  "CMakeFiles/rasc_core.dir/request.cpp.o.d"
  "CMakeFiles/rasc_core.dir/supervisor.cpp.o"
  "CMakeFiles/rasc_core.dir/supervisor.cpp.o.d"
  "librasc_core.a"
  "librasc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
