
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/composition_graph.cpp" "src/core/CMakeFiles/rasc_core.dir/composition_graph.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/composition_graph.cpp.o.d"
  "/root/repo/src/core/coordinator.cpp" "src/core/CMakeFiles/rasc_core.dir/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/core/greedy_composer.cpp" "src/core/CMakeFiles/rasc_core.dir/greedy_composer.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/greedy_composer.cpp.o.d"
  "/root/repo/src/core/mincost_composer.cpp" "src/core/CMakeFiles/rasc_core.dir/mincost_composer.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/mincost_composer.cpp.o.d"
  "/root/repo/src/core/plan_math.cpp" "src/core/CMakeFiles/rasc_core.dir/plan_math.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/plan_math.cpp.o.d"
  "/root/repo/src/core/random_composer.cpp" "src/core/CMakeFiles/rasc_core.dir/random_composer.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/random_composer.cpp.o.d"
  "/root/repo/src/core/request.cpp" "src/core/CMakeFiles/rasc_core.dir/request.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/request.cpp.o.d"
  "/root/repo/src/core/supervisor.cpp" "src/core/CMakeFiles/rasc_core.dir/supervisor.cpp.o" "gcc" "src/core/CMakeFiles/rasc_core.dir/supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rasc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rasc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/rasc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/rasc_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rasc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rasc_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
