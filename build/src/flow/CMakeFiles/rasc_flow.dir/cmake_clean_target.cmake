file(REMOVE_RECURSE
  "librasc_flow.a"
)
