# Empty compiler generated dependencies file for rasc_flow.
# This may be replaced when dependencies are built.
