file(REMOVE_RECURSE
  "CMakeFiles/rasc_flow.dir/cycle_cancel.cpp.o"
  "CMakeFiles/rasc_flow.dir/cycle_cancel.cpp.o.d"
  "CMakeFiles/rasc_flow.dir/graph.cpp.o"
  "CMakeFiles/rasc_flow.dir/graph.cpp.o.d"
  "CMakeFiles/rasc_flow.dir/ssp.cpp.o"
  "CMakeFiles/rasc_flow.dir/ssp.cpp.o.d"
  "CMakeFiles/rasc_flow.dir/validate.cpp.o"
  "CMakeFiles/rasc_flow.dir/validate.cpp.o.d"
  "librasc_flow.a"
  "librasc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
