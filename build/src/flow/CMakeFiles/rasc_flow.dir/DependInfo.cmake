
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/cycle_cancel.cpp" "src/flow/CMakeFiles/rasc_flow.dir/cycle_cancel.cpp.o" "gcc" "src/flow/CMakeFiles/rasc_flow.dir/cycle_cancel.cpp.o.d"
  "/root/repo/src/flow/graph.cpp" "src/flow/CMakeFiles/rasc_flow.dir/graph.cpp.o" "gcc" "src/flow/CMakeFiles/rasc_flow.dir/graph.cpp.o.d"
  "/root/repo/src/flow/ssp.cpp" "src/flow/CMakeFiles/rasc_flow.dir/ssp.cpp.o" "gcc" "src/flow/CMakeFiles/rasc_flow.dir/ssp.cpp.o.d"
  "/root/repo/src/flow/validate.cpp" "src/flow/CMakeFiles/rasc_flow.dir/validate.cpp.o" "gcc" "src/flow/CMakeFiles/rasc_flow.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
