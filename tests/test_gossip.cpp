// Gossip subsystem: agent merge/staleness/budget semantics against a raw
// simulated fleet, hop-by-hop composer behavior (greedy walk, bounded
// backtracking) on hand-built inputs, and end-to-end
// --control-plane=gossip runs — admission and streaming, byte-identical
// same-seed replays at any thread count, knob neutrality for the default
// planes, and convergence under churn and monitor-blackout chaos.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/gossip_composer.hpp"
#include "exp/runner.hpp"
#include "gossip/agent.hpp"
#include "obs/metric_registry.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc {
namespace {

// --- Agent against a raw simulated fleet ------------------------------

struct Fleet {
  explicit Fleet(std::size_t n, gossip::Agent::Params params,
                 double bw_kbps = 10000.0)
      : simulator(11),
        network(simulator,
                sim::make_uniform_topology(n, bw_kbps, sim::msec(5)),
                &registry) {
    agents.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      gossip::Agent::Params p = params;
      p.seed = 1000 + i;
      const sim::NodeIndex node = sim::NodeIndex(i);
      agents.push_back(std::make_unique<gossip::Agent>(
          simulator, network, node, n, p,
          [node] {
            gossip::LoadSummary s;
            s.capacity_in_kbps = 1000.0 + double(node);
            s.capacity_out_kbps = 1000.0 + double(node);
            s.free_in_kbps = 500.0;
            s.free_out_kbps = 500.0;
            return s;
          },
          registry));
      network.set_handler(node, [this, i](const sim::Packet& packet) {
        agents[i]->handle_packet(packet);
      });
    }
  }

  void start_all() {
    for (auto& a : agents) a->start(simulator.now());
  }

  obs::MetricRegistry registry;
  sim::Simulator simulator;
  sim::Network network;
  std::vector<std::unique_ptr<gossip::Agent>> agents;
};

gossip::Agent::Params fast_params() {
  gossip::Agent::Params p;
  p.fanout = 2;
  p.interval = sim::msec(100);
  p.budget_bytes = 2048;
  p.stale_rounds = 8;
  return p;
}

TEST(GossipAgent, MergeAcceptsStrictlyNewerVersionsOnly) {
  Fleet fleet(2, fast_params());
  auto& agent = *fleet.agents[0];

  auto digest = std::make_shared<gossip::GossipDigestMsg>();
  digest->sender = 1;
  gossip::LoadSummary s;
  s.origin = 1;
  s.version = 5;
  s.free_out_kbps = 111.0;
  digest->entries = {s};
  sim::Packet packet;
  packet.src = 1;
  packet.dst = 0;
  packet.payload = digest;
  ASSERT_TRUE(agent.handle_packet(packet));
  ASSERT_EQ(agent.view().count(1), 1u);
  EXPECT_EQ(agent.view().at(1).summary.version, 5u);

  // Older and equal versions are stale news.
  auto stale = std::make_shared<gossip::GossipDigestMsg>();
  s.version = 5;
  s.free_out_kbps = 222.0;
  stale->entries = {s};
  packet.payload = stale;
  agent.handle_packet(packet);
  EXPECT_DOUBLE_EQ(agent.view().at(1).summary.free_out_kbps, 111.0);

  auto fresh = std::make_shared<gossip::GossipDigestMsg>();
  s.version = 6;
  s.free_out_kbps = 333.0;
  fresh->entries = {s};
  packet.payload = fresh;
  agent.handle_packet(packet);
  EXPECT_EQ(agent.view().at(1).summary.version, 6u);
  EXPECT_DOUBLE_EQ(agent.view().at(1).summary.free_out_kbps, 333.0);

  // Nobody can overwrite the agent's own summary.
  auto spoof = std::make_shared<gossip::GossipDigestMsg>();
  s.origin = 0;
  s.version = 999;
  spoof->entries = {s};
  packet.payload = spoof;
  agent.handle_packet(packet);
  EXPECT_EQ(agent.view().count(0), 0u) << "self entry only via refresh";
}

TEST(GossipAgent, ConvergesAndRespectsByteBudget) {
  auto params = fast_params();
  params.budget_bytes = 1200;  // 2 peers x <= 600 bytes = 9 entries each
  // No prune inside this run: with an aggressive window an entry can be
  // legitimately mid-age-out at snapshot time, which is the staleness
  // test's subject, not this one's.
  params.stale_rounds = 1000;
  Fleet fleet(24, params);
  fleet.start_all();
  fleet.simulator.run_until(sim::sec(6));

  // Full convergence: every agent holds a summary for every node.
  for (const auto& agent : fleet.agents) {
    EXPECT_EQ(agent->view().size(), fleet.agents.size());
  }
  // Hard budget, per agent per round: the digest build itself stays
  // within the per-peer budget...
  for (const auto& agent : fleet.agents) {
    const auto entries = agent->build_digest();
    const std::int64_t digest_bytes =
        gossip::GossipDigestMsg::kHeaderBytes +
        std::int64_t(entries.size()) * gossip::LoadSummary::kWireBytes;
    EXPECT_LE(digest_bytes * params.fanout, params.budget_bytes);
    // ...and cumulative wire accounting agrees: what each node actually
    // sent never exceeds budget x rounds.
    obs::Labels labels;
    labels.node = agent->node();
    const auto* sent =
        fleet.registry.find_counter("gossip.sent_bytes", labels);
    ASSERT_NE(sent, nullptr);
    EXPECT_LE(sent->value(),
              std::int64_t(agent->round()) * params.budget_bytes);
    EXPECT_GT(sent->value(), 0);
  }
}

TEST(GossipAgent, StaleEntriesAgeOutAndSuspectsDrop) {
  auto params = fast_params();
  Fleet fleet(6, params);
  fleet.start_all();
  fleet.simulator.run_until(sim::sec(3));
  ASSERT_EQ(fleet.agents[0]->view().size(), 6u);

  // mark_suspect drops the entry immediately...
  fleet.agents[0]->mark_suspect(3);
  EXPECT_EQ(fleet.agents[0]->view().count(3), 0u);
  // ...but fresh dissemination re-admits it (node 3 still gossips).
  fleet.simulator.run_until(sim::sec(6));
  EXPECT_EQ(fleet.agents[0]->view().count(3), 1u);

  // A silenced node ages out of every view within stale_rounds (plus
  // dissemination slack for copies still circulating).
  fleet.network.set_node_up(5, false);
  fleet.simulator.run_until(
      sim::sec(6) + params.interval * (6 * params.stale_rounds));
  for (std::size_t i = 0; i + 1 < fleet.agents.size(); ++i) {
    EXPECT_EQ(fleet.agents[i]->view().count(5), 0u) << "agent " << i;
  }
  EXPECT_GT(fleet.registry.counter_total("gossip.prunes"), 0);
}

// --- Hop-by-hop composer ----------------------------------------------

runtime::ServiceCatalog two_service_catalog() {
  runtime::ServiceCatalog c;
  c.add({"a", sim::msec(1), 1.0, 1.0});
  c.add({"b", sim::msec(1), 1.0, 1.0});
  return c;
}

monitor::NodeStats stats_node(sim::NodeIndex idx, double cap_kbps,
                              double drop = 0.0) {
  monitor::NodeStats s;
  s.node = idx;
  s.capacity_in_kbps = cap_kbps;
  s.capacity_out_kbps = cap_kbps;
  s.drop_ratio = drop;
  s.drop_samples = 1;
  return s;
}

core::ComposeInput chain_input(const runtime::ServiceCatalog& cat) {
  core::ComposeInput input;
  input.catalog = &cat;
  input.request.app = 1;
  input.request.source = 100;
  input.request.destination = 101;
  input.request.unit_bytes = 1250;
  input.request.substreams = {{{"a", "b"}, 100.0}};
  input.source_stats = stats_node(100, 100000.0);
  input.destination_stats = stats_node(101, 100000.0);
  return input;
}

TEST(GossipComposer, PicksCheapestNextHopByLatencyAndDrops) {
  const auto cat = two_service_catalog();
  auto input = chain_input(cat);
  input.providers["a"] = {stats_node(1, 5000.0), stats_node(2, 5000.0)};
  input.providers["b"] = {stats_node(3, 5000.0), stats_node(4, 5000.0)};

  core::GossipComposer::Options options;
  // Node 2 is far from the source; node 4 drops.
  options.latency_ms = [](sim::NodeIndex a, sim::NodeIndex b) {
    if ((a == 100 && b == 2) || (a == 2 && b == 100)) return 80.0;
    return 10.0;
  };
  core::GossipComposer composer(options);
  const auto r = composer.compose([&] {
    auto in = input;
    in.providers["b"] = {stats_node(3, 5000.0, 0.0),
                         stats_node(4, 5000.0, 0.3)};
    return in;
  }());
  ASSERT_TRUE(r.admitted) << r.error;
  ASSERT_EQ(r.plan.substreams.size(), 1u);
  const auto& stages = r.plan.substreams[0].stages;
  ASSERT_EQ(stages.size(), 2u);
  ASSERT_EQ(stages[0].placements.size(), 1u);
  ASSERT_EQ(stages[1].placements.size(), 1u);
  EXPECT_EQ(stages[0].placements[0].node, 1) << "latency-cheapest";
  EXPECT_EQ(stages[1].placements[0].node, 3) << "drop-cheapest";
  EXPECT_EQ(composer.last_backtracks(), 0);
}

TEST(GossipComposer, BacktracksWhenGreedyPrefixStrandsALaterStage) {
  const auto cat = two_service_catalog();
  auto input = chain_input(cat);
  // 100 kbps payload => ~104 wire kbps per stage. Node 1 is the cheap
  // stage-a choice but also the ONLY b provider, with capacity for one
  // stage: greedily placing a on 1 strands b; the composer must back up
  // and route a through node 2.
  input.providers["a"] = {stats_node(1, 150.0), stats_node(2, 5000.0)};
  input.providers["b"] = {stats_node(1, 150.0)};

  core::GossipComposer::Options options;
  options.latency_ms = [](sim::NodeIndex, sim::NodeIndex b) {
    return b == 1 ? 1.0 : 50.0;  // node 1 always looks cheapest
  };
  core::GossipComposer composer(options);
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  const auto& stages = r.plan.substreams[0].stages;
  EXPECT_EQ(stages[0].placements[0].node, 2);
  EXPECT_EQ(stages[1].placements[0].node, 1);
  EXPECT_GT(composer.last_backtracks(), 0);

  // With a zero budget the same input must fail instead.
  options.backtrack_budget = 0;
  core::GossipComposer strict(options);
  EXPECT_FALSE(strict.compose(input).admitted);
}

// --- End-to-end gossip runs -------------------------------------------

exp::RunConfig gossip_run() {
  exp::RunConfig cfg;
  cfg.world.nodes = 16;
  cfg.world.num_services = 6;
  cfg.world.services_per_node = 3;
  cfg.world.seed = 9;
  cfg.world.net.bw_min_kbps = 3000;
  cfg.world.net.bw_max_kbps = 6000;
  cfg.workload.num_requests = 10;
  cfg.workload.avg_rate_kbps = 100;
  cfg.submit_gap = sim::msec(500);
  cfg.steady_duration = sim::sec(8);
  cfg.control_plane = "gossip";
  return cfg;
}

std::string snapshot_csv(const std::vector<obs::MetricRow>& rows) {
  std::ostringstream out;
  obs::MetricRegistry::write_csv(rows, out);
  return out.str();
}

TEST(GossipRunner, AdmitsAndStreams) {
  const auto m = exp::run_experiment(gossip_run());
  EXPECT_EQ(m.gossip_submitted, 10);
  EXPECT_GT(m.gossip_admitted, 0);
  EXPECT_EQ(m.composed, m.gossip_admitted);
  EXPECT_GT(m.emitted, 0);
  EXPECT_GT(m.delivered, 0);
  EXPECT_GT(m.gossip_sends, 0);
  EXPECT_GT(m.gossip_merges, 0);
  EXPECT_EQ(m.shard_submitted, 0) << "no sharded machinery in gossip mode";
  EXPECT_EQ(m.lease_grants, 0) << "pool debits need no negotiated grants";
}

TEST(GossipRunner, RepeatedRunsAreByteIdentical) {
  std::vector<obs::MetricRow> a, b;
  exp::run_experiment(gossip_run(), &a);
  exp::run_experiment(gossip_run(), &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b));
}

TEST(GossipRunner, ThreadCountInvariant) {
  auto cfg = gossip_run();
  cfg.world.sim_threads = 2;
  std::vector<obs::MetricRow> two, four;
  const auto m2 = exp::run_experiment(cfg, &two);
  cfg.world.sim_threads = 4;
  const auto m4 = exp::run_experiment(cfg, &four);
  EXPECT_EQ(snapshot_csv(two), snapshot_csv(four));
  EXPECT_EQ(m2.gossip_admitted, m4.gossip_admitted);
  EXPECT_EQ(m2.emitted, m4.emitted);
}

TEST(GossipRunner, DefaultPlanesIgnoreGossipKnobs) {
  // Neither the centralized nor the sharded plane may be perturbed by
  // gossip flag values: no agent is constructed, no gossip.* cell
  // exists, and the runs replay byte-for-byte.
  for (int coordinators : {1, 2}) {
    auto cfg = gossip_run();
    cfg.control_plane = "";
    cfg.coordinators = coordinators;
    std::vector<obs::MetricRow> base, tweaked;
    const auto m = exp::run_experiment(cfg, &base);
    EXPECT_EQ(m.gossip_submitted, 0);
    EXPECT_EQ(m.gossip_sends, 0);
    const auto csv = snapshot_csv(base);
    EXPECT_EQ(csv.find("gossip."), std::string::npos)
        << "inactive plane must not create registry cells";
    cfg.gossip_fanout = 7;
    cfg.gossip_interval = sim::msec(50);
    cfg.gossip_budget_bytes = 640;
    cfg.gossip_stale_rounds = 3;
    exp::run_experiment(cfg, &tweaked);
    EXPECT_EQ(csv, snapshot_csv(tweaked)) << coordinators << " coordinators";
  }
}

TEST(GossipRunner, ConvergesUnderChurnDeterministically) {
  auto cfg = gossip_run();
  cfg.workload.num_requests = 8;
  cfg.chaos_scenario = "churn:period=3s,repeats=4";
  cfg.chaos_seed = 5;
  // Age out faster than the 3s crash windows so dead nodes actually
  // leave the views (and the prune counter proves it).
  cfg.gossip_interval = sim::msec(200);
  cfg.gossip_stale_rounds = 5;
  std::vector<obs::MetricRow> a, b;
  const auto m = exp::run_experiment(cfg, &a);
  EXPECT_GT(m.faults_injected, 0);
  EXPECT_GT(m.gossip_admitted, 0);
  EXPECT_GT(m.delivered_fraction(), 0.5)
      << "churned gossip run lost most of its traffic";
  // Crashed nodes stop refreshing: their summaries age out of the views
  // instead of attracting placements forever.
  EXPECT_GT(m.gossip_prunes, 0);
  const auto replay = exp::run_experiment(cfg, &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b))
      << "same (seed, scenario) gossip chaos run must replay byte-for-byte";
  EXPECT_EQ(m.delivered, replay.delivered);
}

TEST(GossipRunner, GossipFedAdapterAdaptsWithoutCentralStats) {
  // In gossip mode the RateAdapter reads its stats from the node-local
  // partial view instead of round-tripping StatsQueryMsg to a central
  // StatsAgent: the adaptation loop must still run, and the run must
  // replay byte-for-byte.
  auto cfg = gossip_run();
  cfg.world.net.bw_min_kbps = 300;
  cfg.world.net.bw_max_kbps = 4000;
  cfg.workload.avg_rate_kbps = 300;
  cfg.steady_duration = sim::sec(20);
  cfg.chaos_scenario = "load-drift:mag=0.2";
  cfg.chaos_seed = 7;
  cfg.adapt_interval = sim::msec(2000);
  std::vector<obs::MetricRow> a, b;
  const auto m = exp::run_experiment(cfg, &a);
  EXPECT_GT(m.gossip_admitted, 0);
  EXPECT_GT(m.adapt_attempts, 0)
      << "the view-fed adapter never completed a round";
  const auto replay = exp::run_experiment(cfg, &b);
  // adapt.solve_us is wall-clock; strip it before comparing bytes.
  auto strip = [](const std::string& csv) {
    std::istringstream in(csv);
    std::string line, out;
    while (std::getline(in, line)) {
      if (line.find("adapt.solve_us") != std::string::npos) continue;
      out += line + '\n';
    }
    return out;
  };
  EXPECT_EQ(strip(snapshot_csv(a)), strip(snapshot_csv(b)));
  EXPECT_EQ(m.adapt_attempts, replay.adapt_attempts);
  EXPECT_EQ(m.adapt_deltas, replay.adapt_deltas);
}

TEST(GossipRunner, SurvivesMonitorBlackout) {
  auto cfg = gossip_run();
  cfg.chaos_scenario = "monitor-blackout";
  cfg.chaos_seed = 3;
  const auto m = exp::run_experiment(cfg);
  EXPECT_GT(m.faults_injected, 0);
  EXPECT_GT(m.gossip_admitted, 0);
  EXPECT_GT(m.delivered_fraction(), 0.5);
}

}  // namespace
}  // namespace rasc
