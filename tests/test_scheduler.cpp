// Per-node scheduler (paper §3.4): least-laxity selection, negative-laxity
// drops, queue bounds, and the FIFO/EDF ablation policies.
#include "runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "runtime/service.hpp"
#include "util/rng.hpp"

namespace rasc::runtime {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  Component& component() {
    if (!component_) {
      ServiceSpec spec;
      spec.name = "svc";
      spec.cpu_time_per_unit = sim::msec(2);
      component_ = std::make_unique<Component>(
          ComponentKey{1, 0, 0}, spec, 10.0,
          std::vector<Placement>{{0, 10.0}});
    }
    return *component_;
  }

  ScheduledUnit unit(sim::SimTime arrival, sim::SimTime deadline,
                     sim::SimDuration exec = sim::msec(2)) {
    ScheduledUnit u;
    auto du = std::make_shared<DataUnit>();
    du->seq = next_seq_++;
    u.unit = du;
    u.component = &component();
    u.arrival = arrival;
    u.deadline = deadline;
    u.exec_time = exec;
    return u;
  }

  std::unique_ptr<Component> component_;
  std::int64_t next_seq_ = 0;
};

TEST_F(SchedulerTest, LaxityFormula) {
  const auto u = unit(0, sim::msec(10), sim::msec(2));
  EXPECT_EQ(u.laxity(0), sim::msec(8));
  EXPECT_EQ(u.laxity(sim::msec(8)), 0);
  EXPECT_EQ(u.laxity(sim::msec(9)), -sim::msec(1));
}

TEST_F(SchedulerTest, LlfPicksSmallestLaxity) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  auto slack = unit(0, sim::msec(100));
  auto urgent = unit(0, sim::msec(5));
  const auto slack_seq = slack.unit->seq;
  (void)slack_seq;
  const auto urgent_seq = urgent.unit->seq;
  s.enqueue(std::move(slack));
  s.enqueue(std::move(urgent));
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(0, expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->unit->seq, urgent_seq);
  EXPECT_TRUE(expired.empty());
}

TEST_F(SchedulerTest, LlfDropsNegativeLaxityUnits) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  s.enqueue(unit(0, sim::msec(1)));    // hopeless at t=5ms
  s.enqueue(unit(0, sim::msec(100)));  // fine
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(sim::msec(5), expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].deadline, sim::msec(1));
}

TEST_F(SchedulerTest, LlfAllExpiredReturnsNothing) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  s.enqueue(unit(0, sim::msec(1)));
  s.enqueue(unit(0, sim::msec(2)));
  std::vector<ScheduledUnit> expired;
  EXPECT_FALSE(s.dispatch(sim::msec(50), expired).has_value());
  EXPECT_EQ(expired.size(), 2u);
  EXPECT_TRUE(s.empty());
}

TEST_F(SchedulerTest, FifoIgnoresDeadlines) {
  Scheduler s(SchedulingPolicy::kFifo);
  s.enqueue(unit(sim::msec(1), sim::msec(2)));   // late but first
  s.enqueue(unit(0, sim::msec(1000)));           // earlier arrival
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(sim::msec(50), expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->arrival, 0);
  EXPECT_TRUE(expired.empty());  // FIFO never drops for lateness
}

TEST_F(SchedulerTest, EdfPicksEarliestDeadline) {
  Scheduler s(SchedulingPolicy::kEdf);
  s.enqueue(unit(0, sim::msec(300), sim::msec(1)));
  s.enqueue(unit(0, sim::msec(200), sim::msec(1)));
  s.enqueue(unit(0, sim::msec(400), sim::msec(1)));
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(0, expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->deadline, sim::msec(200));
}

TEST_F(SchedulerTest, QueueBoundRejects) {
  Scheduler s(SchedulingPolicy::kLeastLaxity, 2);
  EXPECT_TRUE(s.enqueue(unit(0, sim::msec(10))));
  EXPECT_TRUE(s.enqueue(unit(0, sim::msec(10))));
  EXPECT_FALSE(s.enqueue(unit(0, sim::msec(10))));
  EXPECT_EQ(s.size(), 2u);
}

TEST_F(SchedulerTest, EmptyDispatchReturnsNothing) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  std::vector<ScheduledUnit> expired;
  EXPECT_FALSE(s.dispatch(0, expired).has_value());
}

TEST_F(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(to_string(SchedulingPolicy::kLeastLaxity), "llf");
  EXPECT_STREQ(to_string(SchedulingPolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(SchedulingPolicy::kEdf), "edf");
}

TEST_F(SchedulerTest, ZeroLaxityStillRunnable) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  s.enqueue(unit(0, sim::msec(2), sim::msec(2)));  // laxity exactly 0 at t=0
  std::vector<ScheduledUnit> expired;
  EXPECT_TRUE(s.dispatch(0, expired).has_value());
  EXPECT_TRUE(expired.empty());
}

// --- Equivalence sweep: heap dispatch vs the pre-heap linear scan ---

/// The original O(n) implementation, kept verbatim as the test oracle.
class LinearScanScheduler {
 public:
  LinearScanScheduler(SchedulingPolicy policy, std::size_t max_queue)
      : policy_(policy), max_queue_(max_queue) {}

  bool enqueue(ScheduledUnit unit) {
    if (queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(unit));
    return true;
  }

  std::optional<ScheduledUnit> dispatch(sim::SimTime now,
                                        std::vector<ScheduledUnit>& expired) {
    if (policy_ != SchedulingPolicy::kFifo) {
      auto dead = std::partition(
          queue_.begin(), queue_.end(),
          [now](const ScheduledUnit& u) { return u.laxity(now) >= 0; });
      for (auto it = dead; it != queue_.end(); ++it) {
        expired.push_back(std::move(*it));
      }
      queue_.erase(dead, queue_.end());
    }
    if (queue_.empty()) return std::nullopt;

    std::size_t best = 0;
    switch (policy_) {
      case SchedulingPolicy::kLeastLaxity:
        for (std::size_t i = 1; i < queue_.size(); ++i) {
          if (queue_[i].laxity(now) < queue_[best].laxity(now)) best = i;
        }
        break;
      case SchedulingPolicy::kEdf:
        for (std::size_t i = 1; i < queue_.size(); ++i) {
          if (queue_[i].deadline < queue_[best].deadline) best = i;
        }
        break;
      case SchedulingPolicy::kFifo:
        for (std::size_t i = 1; i < queue_.size(); ++i) {
          if (queue_[i].arrival < queue_[best].arrival) best = i;
        }
        break;
    }
    ScheduledUnit out = std::move(queue_[best]);
    queue_.erase(queue_.begin() + std::ptrdiff_t(best));
    return out;
  }

  bool empty() const { return queue_.empty(); }

 private:
  SchedulingPolicy policy_;
  std::size_t max_queue_;
  std::vector<ScheduledUnit> queue_;
};

class SchedulerEquivalence
    : public SchedulerTest,
      public ::testing::WithParamInterface<SchedulingPolicy> {};

TEST_P(SchedulerEquivalence, HeapMatchesLinearScan) {
  const SchedulingPolicy policy = GetParam();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Xoshiro256 rng(seed);
    Scheduler heap_sched(policy, 128);
    LinearScanScheduler ref_sched(policy, 128);

    // Distinct arrivals, deadlines, and laxity keys so ordering is unique
    // and the comparison is exact (tie order between implementations is
    // unspecified).
    std::set<sim::SimTime> used_arrival, used_deadline, used_laxity_key;
    sim::SimTime now = 0;
    for (int step = 0; step < 400; ++step) {
      if (rng.bernoulli(0.6)) {
        const sim::SimDuration exec = sim::msec(2) + rng.uniform_int(0, 4);
        sim::SimTime deadline = now + rng.uniform_int(0, sim::msec(8));
        while (used_deadline.count(deadline) ||
               used_laxity_key.count(deadline - exec)) {
          ++deadline;
        }
        used_deadline.insert(deadline);
        used_laxity_key.insert(deadline - exec);
        sim::SimTime arrival = rng.uniform_int(0, sim::msec(8));
        while (used_arrival.count(arrival)) ++arrival;
        used_arrival.insert(arrival);

        ScheduledUnit u = unit(arrival, deadline, exec);
        ScheduledUnit copy = u;
        EXPECT_EQ(heap_sched.enqueue(std::move(u)),
                  ref_sched.enqueue(std::move(copy)))
            << "seed " << seed << " step " << step;
      } else {
        now += rng.uniform_int(0, sim::msec(4));
        std::vector<ScheduledUnit> heap_expired, ref_expired;
        const auto from_heap = heap_sched.dispatch(now, heap_expired);
        const auto from_ref = ref_sched.dispatch(now, ref_expired);
        ASSERT_EQ(from_heap.has_value(), from_ref.has_value())
            << "seed " << seed << " step " << step;
        if (from_heap.has_value()) {
          EXPECT_EQ(from_heap->unit->seq, from_ref->unit->seq)
              << "seed " << seed << " step " << step;
        }
        // Expired sets must match (order is unspecified in both).
        auto key = [](const ScheduledUnit& u) { return u.unit->seq; };
        std::vector<std::int64_t> h, r;
        for (const auto& u : heap_expired) h.push_back(key(u));
        for (const auto& u : ref_expired) r.push_back(key(u));
        std::sort(h.begin(), h.end());
        std::sort(r.begin(), r.end());
        EXPECT_EQ(h, r) << "seed " << seed << " step " << step;
      }
      ASSERT_EQ(heap_sched.empty(), ref_sched.empty())
          << "seed " << seed << " step " << step;
    }

    // Drain both completely and compare the full dispatch order.
    std::vector<ScheduledUnit> heap_expired, ref_expired;
    for (;;) {
      const auto a = heap_sched.dispatch(now, heap_expired);
      const auto b = ref_sched.dispatch(now, ref_expired);
      ASSERT_EQ(a.has_value(), b.has_value()) << "seed " << seed;
      if (!a.has_value()) break;
      EXPECT_EQ(a->unit->seq, b->unit->seq) << "seed " << seed;
    }
    EXPECT_EQ(heap_expired.size(), ref_expired.size()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedulerEquivalence,
                         ::testing::Values(SchedulingPolicy::kLeastLaxity,
                                           SchedulingPolicy::kEdf,
                                           SchedulingPolicy::kFifo),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace rasc::runtime
