// Per-node scheduler (paper §3.4): least-laxity selection, negative-laxity
// drops, queue bounds, and the FIFO/EDF ablation policies.
#include "runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "runtime/service.hpp"

namespace rasc::runtime {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  Component& component() {
    if (!component_) {
      ServiceSpec spec;
      spec.name = "svc";
      spec.cpu_time_per_unit = sim::msec(2);
      component_ = std::make_unique<Component>(
          ComponentKey{1, 0, 0}, spec, 10.0,
          std::vector<Placement>{{0, 10.0}});
    }
    return *component_;
  }

  ScheduledUnit unit(sim::SimTime arrival, sim::SimTime deadline,
                     sim::SimDuration exec = sim::msec(2)) {
    ScheduledUnit u;
    auto du = std::make_shared<DataUnit>();
    du->seq = next_seq_++;
    u.unit = du;
    u.component = &component();
    u.arrival = arrival;
    u.deadline = deadline;
    u.exec_time = exec;
    return u;
  }

  std::unique_ptr<Component> component_;
  std::int64_t next_seq_ = 0;
};

TEST_F(SchedulerTest, LaxityFormula) {
  const auto u = unit(0, sim::msec(10), sim::msec(2));
  EXPECT_EQ(u.laxity(0), sim::msec(8));
  EXPECT_EQ(u.laxity(sim::msec(8)), 0);
  EXPECT_EQ(u.laxity(sim::msec(9)), -sim::msec(1));
}

TEST_F(SchedulerTest, LlfPicksSmallestLaxity) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  auto slack = unit(0, sim::msec(100));
  auto urgent = unit(0, sim::msec(5));
  const auto slack_seq = slack.unit->seq;
  (void)slack_seq;
  const auto urgent_seq = urgent.unit->seq;
  s.enqueue(std::move(slack));
  s.enqueue(std::move(urgent));
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(0, expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->unit->seq, urgent_seq);
  EXPECT_TRUE(expired.empty());
}

TEST_F(SchedulerTest, LlfDropsNegativeLaxityUnits) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  s.enqueue(unit(0, sim::msec(1)));    // hopeless at t=5ms
  s.enqueue(unit(0, sim::msec(100)));  // fine
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(sim::msec(5), expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].deadline, sim::msec(1));
}

TEST_F(SchedulerTest, LlfAllExpiredReturnsNothing) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  s.enqueue(unit(0, sim::msec(1)));
  s.enqueue(unit(0, sim::msec(2)));
  std::vector<ScheduledUnit> expired;
  EXPECT_FALSE(s.dispatch(sim::msec(50), expired).has_value());
  EXPECT_EQ(expired.size(), 2u);
  EXPECT_TRUE(s.empty());
}

TEST_F(SchedulerTest, FifoIgnoresDeadlines) {
  Scheduler s(SchedulingPolicy::kFifo);
  s.enqueue(unit(sim::msec(1), sim::msec(2)));   // late but first
  s.enqueue(unit(0, sim::msec(1000)));           // earlier arrival
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(sim::msec(50), expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->arrival, 0);
  EXPECT_TRUE(expired.empty());  // FIFO never drops for lateness
}

TEST_F(SchedulerTest, EdfPicksEarliestDeadline) {
  Scheduler s(SchedulingPolicy::kEdf);
  s.enqueue(unit(0, sim::msec(300), sim::msec(1)));
  s.enqueue(unit(0, sim::msec(200), sim::msec(1)));
  s.enqueue(unit(0, sim::msec(400), sim::msec(1)));
  std::vector<ScheduledUnit> expired;
  const auto picked = s.dispatch(0, expired);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->deadline, sim::msec(200));
}

TEST_F(SchedulerTest, QueueBoundRejects) {
  Scheduler s(SchedulingPolicy::kLeastLaxity, 2);
  EXPECT_TRUE(s.enqueue(unit(0, sim::msec(10))));
  EXPECT_TRUE(s.enqueue(unit(0, sim::msec(10))));
  EXPECT_FALSE(s.enqueue(unit(0, sim::msec(10))));
  EXPECT_EQ(s.size(), 2u);
}

TEST_F(SchedulerTest, EmptyDispatchReturnsNothing) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  std::vector<ScheduledUnit> expired;
  EXPECT_FALSE(s.dispatch(0, expired).has_value());
}

TEST_F(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(to_string(SchedulingPolicy::kLeastLaxity), "llf");
  EXPECT_STREQ(to_string(SchedulingPolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(SchedulingPolicy::kEdf), "edf");
}

TEST_F(SchedulerTest, ZeroLaxityStillRunnable) {
  Scheduler s(SchedulingPolicy::kLeastLaxity);
  s.enqueue(unit(0, sim::msec(2), sim::msec(2)));  // laxity exactly 0 at t=0
  std::vector<ScheduledUnit> expired;
  EXPECT_TRUE(s.dispatch(0, expired).has_value());
  EXPECT_TRUE(expired.empty());
}

}  // namespace
}  // namespace rasc::runtime
