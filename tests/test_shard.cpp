// Sharded control plane: lease granter state machine (grant / renew /
// expire / epoch-mismatch NACK / credit-back), admission ordering
// policies, app->shard hashing, end-to-end K-shard runs (admission,
// determinism at any thread count, zero double-reservation under
// contention), and K=1 neutrality (shard knobs must not perturb the
// unsharded execution).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/coordinator_shard.hpp"
#include "exp/control_plane.hpp"
#include "exp/runner.hpp"
#include "exp/world.hpp"
#include "runtime/lease_granter.hpp"
#include "runtime/lease_messages.hpp"

namespace rasc {
namespace {

// --- Pure helpers -----------------------------------------------------

TEST(ShardHash, StableUniformAndDegenerate) {
  EXPECT_EQ(core::CoordinatorShard::shard_of(7, 1), 0);
  EXPECT_EQ(core::CoordinatorShard::shard_of(7, 0), 0);
  std::set<std::int32_t> hit;
  for (runtime::AppId app = 0; app < 256; ++app) {
    const auto s = core::CoordinatorShard::shard_of(app, 4);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    EXPECT_EQ(s, core::CoordinatorShard::shard_of(app, 4));  // stable
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 4u) << "256 apps missed some of 4 shards";
}

TEST(AdmissionOrder, PoliciesAndTieBreaks) {
  // (seq, demand): seqs out of order on purpose.
  const std::vector<std::pair<std::uint64_t, double>> jobs = {
      {2, 300.0}, {0, 100.0}, {1, 300.0}, {3, 50.0}};
  using core::AdmissionPolicy;
  const auto fifo =
      core::CoordinatorShard::admission_order(AdmissionPolicy::kFifo, jobs);
  EXPECT_EQ(fifo, (std::vector<std::size_t>{1, 2, 0, 3}));
  const auto small = core::CoordinatorShard::admission_order(
      AdmissionPolicy::kSmallestDemand, jobs);
  // 50 first, then 100, then the two 300s in seq order (1 before 2).
  EXPECT_EQ(small, (std::vector<std::size_t>{3, 1, 2, 0}));
  const auto value = core::CoordinatorShard::admission_order(
      AdmissionPolicy::kHighestValue, jobs);
  EXPECT_EQ(value, (std::vector<std::size_t>{2, 0, 1, 3}));
}

TEST(AdmissionOrder, ParseNames) {
  EXPECT_EQ(core::parse_admission_policy("fifo"),
            core::AdmissionPolicy::kFifo);
  EXPECT_EQ(core::parse_admission_policy("smallest-demand"),
            core::AdmissionPolicy::kSmallestDemand);
  EXPECT_EQ(core::parse_admission_policy("highest-value"),
            core::AdmissionPolicy::kHighestValue);
  EXPECT_THROW(core::parse_admission_policy("lifo"), std::invalid_argument);
}

// --- Granter state machine --------------------------------------------

exp::WorldConfig tiny_world() {
  exp::WorldConfig cfg;
  cfg.nodes = 4;
  cfg.num_services = 4;
  cfg.services_per_node = 2;
  cfg.seed = 11;
  return cfg;
}

/// Delivers one LeaseRequestMsg from `requester` to `node` through the
/// network, `after` from now (the World constructor already advanced the
/// clock through overlay join and monitor warmup, so times are relative).
void request_lease(exp::World& world, sim::SimDuration after,
                   sim::NodeIndex node, sim::NodeIndex requester,
                   std::int32_t shard, std::uint64_t request_id,
                   double demand_kbps = -1.0) {
  world.simulator().call_after(after, [&world, node, requester, shard,
                                       request_id, demand_kbps] {
    auto msg = std::make_shared<runtime::LeaseRequestMsg>();
    msg->shard = shard;
    msg->requester = requester;
    msg->request_id = request_id;
    msg->demand_kbps = demand_kbps;
    world.network().send(requester, node,
                         runtime::LeaseRequestMsg::kBytes, std::move(msg));
  });
}

TEST(LeaseGranter, GrantRenewExpireDeterministically) {
  exp::World world(tiny_world());
  const sim::SimTime t0 = world.simulator().now();
  runtime::LeaseGranter::Params params;
  params.lease_duration = sim::sec(2);
  params.shards = 2;
  auto& granter = world.host(0).enable_lease_granter(params);

  request_lease(world, sim::msec(10), 0, 1, /*shard=*/0, 1);
  world.simulator().run_until(t0 + sim::msec(500));
  EXPECT_EQ(granter.epoch(0), 1u);
  const double first = granter.remaining_in_kbps(0);
  EXPECT_GT(first, 0.0);
  EXPECT_GT(granter.remaining_out_kbps(0), 0.0);

  // Renewal before expiry: epoch bumps, the share is replaced.
  request_lease(world, sim::msec(500), 0, 1, 0, 2);
  world.simulator().run_until(t0 + sim::msec(1500));
  EXPECT_EQ(granter.epoch(0), 2u);
  EXPECT_GT(granter.remaining_in_kbps(0), 0.0);

  // No further renewal: the grant lapses exactly lease_duration after the
  // last grant and its allowance drops to zero.
  world.simulator().run_until(t0 + sim::sec(5));
  EXPECT_EQ(granter.remaining_in_kbps(0), 0.0);
  EXPECT_EQ(granter.remaining_out_kbps(0), 0.0);
  EXPECT_EQ(world.metrics().counter_total("lease.expired"), 1);
  EXPECT_EQ(world.metrics().counter_total("lease.granted"), 2);
}

TEST(LeaseGranter, EqualSharesAndNoOvergrant) {
  exp::World world(tiny_world());
  runtime::LeaseGranter::Params params;
  params.shards = 2;
  auto& granter = world.host(0).enable_lease_granter(params);
  const sim::SimTime t0 = world.simulator().now();
  request_lease(world, sim::msec(10), 0, 1, 0, 1);
  request_lease(world, sim::msec(11), 0, 2, 1, 2);
  world.simulator().run_until(t0 + sim::sec(1));
  const double a = granter.remaining_in_kbps(0);
  const double b = granter.remaining_in_kbps(1);
  EXPECT_GT(a, 0.0);
  // min(pool/K, free): both shards end up with the equal fair share
  // (modulo the trickle of monitor traffic between the two grants).
  EXPECT_NEAR(a, b, 0.02 * a);
  EXPECT_EQ(granter.overgrant_high_water_kbps(), 0.0);
}

TEST(LeaseGranter, DemandHintsRebalanceShares) {
  exp::World world(tiny_world());
  runtime::LeaseGranter::Params params;
  params.shards = 4;
  auto& granter = world.host(0).enable_lease_granter(params);
  const sim::SimTime t0 = world.simulator().now();
  // No hint: legacy equal split pool/K. Anchors the pool size for the
  // assertions below (pool ~= 4a, modulo monitor-traffic drift).
  request_lease(world, sim::msec(10), 0, 1, /*shard=*/0, 1, -1.0);
  // Zero demand: the idle floor pool/2K — half the fair share.
  request_lease(world, sim::msec(20), 0, 2, 1, 2, 0.0);
  // Large demand with one active peer (the unknown-hint shard counts,
  // the idle one does not): fair split over two actives = pool/2.
  request_lease(world, sim::msec(30), 0, 3, 2, 3, 1e9);
  world.simulator().run_until(t0 + sim::sec(1));

  const double a = granter.remaining_in_kbps(0);
  const double idle = granter.remaining_in_kbps(1);
  const double busy = granter.remaining_in_kbps(2);
  ASSERT_GT(a, 0.0);
  EXPECT_NEAR(idle, 0.5 * a, 0.02 * a);
  EXPECT_NEAR(busy, 2.0 * a, 0.04 * a);
  // Rebalancing never breaks the no-double-booking invariant.
  EXPECT_EQ(granter.overgrant_high_water_kbps(), 0.0);

  // The idle shard turning busy reclaims capacity bounded by what is
  // still free, never by raiding live grants.
  request_lease(world, sim::msec(100), 0, 2, 1, 4, 1e9);
  world.simulator().run_until(t0 + sim::sec(2));
  const double reclaimed = granter.remaining_in_kbps(1);
  EXPECT_GT(reclaimed, idle);
  EXPECT_EQ(granter.overgrant_high_water_kbps(), 0.0);
}

TEST(LeaseGranter, DebitEpochMismatchAndOverdrawNack) {
  exp::World world(tiny_world());
  runtime::LeaseGranter::Params params;
  params.shards = 2;
  auto& granter = world.host(0).enable_lease_granter(params);
  const sim::SimTime t0 = world.simulator().now();
  request_lease(world, sim::msec(10), 0, 1, 0, 1);
  world.simulator().run_until(t0 + sim::sec(1));
  const std::uint64_t epoch = granter.epoch(0);
  const double have = granter.remaining_in_kbps(0);
  ASSERT_GT(have, 100.0);

  // Stale epoch: refused, allowance untouched.
  EXPECT_FALSE(granter.debit(0, epoch + 1, /*app=*/7, 10.0, 10.0));
  EXPECT_DOUBLE_EQ(granter.remaining_in_kbps(0), have);
  // Overdraw: refused.
  EXPECT_FALSE(granter.debit(0, epoch, 7, have + 1.0, 0.0));
  // Unknown shard: refused.
  EXPECT_FALSE(granter.debit(1, epoch, 7, 1.0, 1.0));
  EXPECT_EQ(world.metrics().counter_total("lease.nacks"), 3);

  // Valid debit spends the allowance; release credits it back in full
  // while the same lease term is still current.
  EXPECT_TRUE(granter.debit(0, epoch, 7, 100.0, 50.0));
  EXPECT_DOUBLE_EQ(granter.remaining_in_kbps(0), have - 100.0);
  granter.release_app(7);
  EXPECT_DOUBLE_EQ(granter.remaining_in_kbps(0), have);

  // A debit from a lapsed term must NOT come back at release time (the
  // pool already re-absorbed it): spend, let the lease expire, release.
  EXPECT_TRUE(granter.debit(0, epoch, 8, 50.0, 25.0));
  world.simulator().run_until(t0 + sim::sec(20));
  granter.release_app(8);
  EXPECT_EQ(granter.remaining_in_kbps(0), 0.0);  // expired, not credited
}

// --- End-to-end sharded runs ------------------------------------------

exp::RunConfig sharded_run(int coordinators) {
  exp::RunConfig cfg;
  cfg.world.nodes = 16;
  cfg.world.num_services = 6;
  cfg.world.services_per_node = 3;
  cfg.world.seed = 9;
  cfg.world.net.bw_min_kbps = 3000;
  cfg.world.net.bw_max_kbps = 6000;
  cfg.workload.num_requests = 10;
  cfg.workload.avg_rate_kbps = 100;
  cfg.submit_gap = sim::msec(500);
  cfg.steady_duration = sim::sec(8);
  cfg.coordinators = coordinators;
  return cfg;
}

std::string snapshot_csv(const std::vector<obs::MetricRow>& rows) {
  std::ostringstream out;
  obs::MetricRegistry::write_csv(rows, out);
  return out.str();
}

TEST(ShardRunner, TwoShardsAdmitAndStream) {
  const auto m = exp::run_experiment(sharded_run(2));
  EXPECT_EQ(m.shard_submitted, 10);
  EXPECT_GT(m.shard_admitted, 0);
  EXPECT_EQ(m.composed, m.shard_admitted);
  EXPECT_GT(m.emitted, 0);
  EXPECT_GT(m.delivered, 0);
  EXPECT_GT(m.lease_grants, 0);
  EXPECT_GT(m.shard_batches, 0);
  EXPECT_EQ(m.lease_overgrant_kbps, 0.0) << "double-reserved bandwidth";
  EXPECT_EQ(m.shard_failovers, 0) << "healthy shards must never fail over";
}

TEST(LeaseGranter, HolderSuspectOnlyAfterExpiry) {
  exp::World world(tiny_world());
  const sim::SimTime t0 = world.simulator().now();
  runtime::LeaseGranter::Params params;
  params.lease_duration = sim::sec(2);
  params.shards = 2;
  auto& granter = world.host(0).enable_lease_granter(params);
  // No grant yet: absence of evidence is not suspicion.
  EXPECT_FALSE(granter.holder_suspect(0));
  request_lease(world, sim::msec(10), 0, 1, /*shard=*/0, 1);
  world.simulator().run_until(t0 + sim::msec(500));
  EXPECT_FALSE(granter.holder_suspect(0)) << "a live grant is not suspect";
  // The holder never renews: once the grant lapses it becomes suspect.
  world.simulator().run_until(t0 + sim::sec(5));
  EXPECT_TRUE(granter.holder_suspect(0));
  EXPECT_FALSE(granter.holder_suspect(1)) << "other shards unaffected";
}

TEST(ShardRunner, DeadShardSubmissionsFailOverToLiveShard) {
  // Crash shard 0's home (node 0 with 16 nodes / 2 shards) early. Once
  // its grants lapse on the source nodes, later submissions hashed to the
  // dead shard must reroute to shard 1 instead of timing out against a
  // silent coordinator.
  auto cfg = sharded_run(2);
  cfg.workload.num_requests = 14;
  cfg.submit_gap = sim::msec(800);
  cfg.lease_duration = sim::sec(2);
  cfg.lease_renew = sim::msec(800);
  cfg.chaos_scenario = "single-crash:at=2s,node=0,duration=0s";
  cfg.steady_duration = sim::sec(10);
  std::vector<obs::MetricRow> a, b;
  const auto m = exp::run_experiment(cfg, &a);
  EXPECT_GT(m.faults_injected, 0);
  EXPECT_GT(m.shard_failovers, 0)
      << "submissions kept going to the dead shard";
  EXPECT_GT(m.shard_admitted, 0) << "the live shard should still admit";
  EXPECT_GT(m.delivered, 0);
  exp::run_experiment(cfg, &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b))
      << "failover rerouting must replay byte-for-byte";
}

TEST(ShardRunner, RepeatedShardedRunsAreByteIdentical) {
  std::vector<obs::MetricRow> a, b;
  exp::run_experiment(sharded_run(3), &a);
  exp::run_experiment(sharded_run(3), &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b));
}

TEST(ShardRunner, ShardedRunIsThreadCountInvariant) {
  auto cfg = sharded_run(3);
  cfg.world.sim_threads = 2;
  std::vector<obs::MetricRow> two, four;
  const auto m2 = exp::run_experiment(cfg, &two);
  cfg.world.sim_threads = 4;
  const auto m4 = exp::run_experiment(cfg, &four);
  EXPECT_EQ(snapshot_csv(two), snapshot_csv(four));
  EXPECT_EQ(m2.shard_admitted, m4.shard_admitted);
  EXPECT_EQ(m2.emitted, m4.emitted);
}

TEST(ShardRunner, AdmissionPoliciesAllAdmitWithoutOvergrant) {
  for (const char* policy : {"fifo", "smallest-demand", "highest-value"}) {
    auto cfg = sharded_run(2);
    cfg.admission_policy = policy;
    const auto m = exp::run_experiment(cfg);
    EXPECT_GT(m.shard_admitted, 0) << policy;
    EXPECT_EQ(m.lease_overgrant_kbps, 0.0) << policy;
  }
}

TEST(ShardRunner, ContentionNeverDoubleReserves) {
  // Overload: demand far beyond capacity, two shards racing for the same
  // nodes. Admission must degrade (NACK + repair or reject), never
  // over-promise node bandwidth.
  auto cfg = sharded_run(2);
  cfg.world.net.bw_min_kbps = 300;
  cfg.world.net.bw_max_kbps = 900;
  cfg.workload.num_requests = 16;
  cfg.workload.avg_rate_kbps = 300;
  cfg.submit_gap = sim::msec(100);  // whole burst lands in few batches
  const auto m = exp::run_experiment(cfg);
  EXPECT_EQ(m.shard_submitted, 16);
  EXPECT_LT(m.shard_admitted, 16) << "overload should reject some";
  EXPECT_EQ(m.lease_overgrant_kbps, 0.0) << "double-reserved bandwidth";
}

TEST(ShardRunner, SingleCoordinatorIgnoresShardKnobs) {
  // K=1 must not construct any of the sharded machinery: every shard
  // knob perturbation yields the byte-identical execution.
  auto cfg = sharded_run(1);
  std::vector<obs::MetricRow> base, tweaked;
  const auto m = exp::run_experiment(cfg, &base);
  EXPECT_EQ(m.shard_submitted, 0);
  EXPECT_EQ(m.lease_grants, 0);
  cfg.admission_policy = "highest-value";
  cfg.batch_window = sim::msec(7);
  cfg.lease_duration = sim::sec(1);
  cfg.lease_renew = sim::msec(333);
  exp::run_experiment(cfg, &tweaked);
  EXPECT_EQ(snapshot_csv(base), snapshot_csv(tweaked));
}

}  // namespace
}  // namespace rasc
