// The layered min-cost flow network of §3.5: structure, capacity
// translation, cost scaling, share extraction and sliver folding.
#include "core/composition_graph.hpp"

#include <gtest/gtest.h>

#include "flow/ssp.hpp"
#include "flow/validate.hpp"

namespace rasc::core {
namespace {

TEST(CompositionGraph, SingleStageSingleCandidate) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 20.0, 0.0}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(cg.candidate_flow_ups(0, 0), 10.0);
  const auto shares = cg.extract_shares();
  ASSERT_EQ(shares.size(), 1u);
  ASSERT_EQ(shares[0].size(), 1u);
  EXPECT_EQ(shares[0][0].node, 1);
  EXPECT_DOUBLE_EQ(shares[0][0].rate_units_per_sec, 10.0);
}

TEST(CompositionGraph, SplitsWhenOneCandidateLacksCapacity) {
  // Demand 10; candidate A caps at 6, B at 6: must split.
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 6.0, 0.0}, {2, 6.0, 0.0}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  EXPECT_TRUE(r.feasible);
  const auto shares = cg.extract_shares();
  ASSERT_EQ(shares[0].size(), 2u);
  double total = 0;
  for (const auto& p : shares[0]) total += p.rate_units_per_sec;
  EXPECT_NEAR(total, 10.0, 0.01);
}

TEST(CompositionGraph, PrefersLowDropCandidates) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 20.0, 0.4}, {2, 20.0, 0.01}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(), cg.demand());
  EXPECT_DOUBLE_EQ(cg.candidate_flow_ups(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cg.candidate_flow_ups(0, 1), 10.0);
}

TEST(CompositionGraph, SpillsToWorseNodeOnlyWhenNeeded) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 7.0, 0.01}, {2, 20.0, 0.5}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(), cg.demand());
  EXPECT_NEAR(cg.candidate_flow_ups(0, 0), 7.0, 0.01);
  EXPECT_NEAR(cg.candidate_flow_ups(0, 1), 3.0, 0.01);
}

TEST(CompositionGraph, SourceGateLimitsTotal) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 100.0, 0.0}},
  };
  CompositionGraph cg(stages, /*source cap*/ 4.0, 100.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  EXPECT_FALSE(r.feasible);
  EXPECT_LE(r.flow, CompositionGraph::kScale * 4.0 + 1);
}

TEST(CompositionGraph, DestGateLimitsTotal) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 100.0, 0.0}},
  };
  CompositionGraph cg(stages, 100.0, /*dest cap*/ 3.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  EXPECT_FALSE(r.feasible);
}

TEST(CompositionGraph, MultiStageChains) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 15.0, 0.0}, {2, 15.0, 0.0}},
      {{3, 6.0, 0.0}, {4, 6.0, 0.0}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  EXPECT_TRUE(r.feasible);
  const auto shares = cg.extract_shares();
  // Stage 1 must split (each candidate caps at 6); stage 0 may not.
  EXPECT_EQ(shares[1].size(), 2u);
  double stage1_total = 0;
  for (const auto& p : shares[1]) stage1_total += p.rate_units_per_sec;
  EXPECT_NEAR(stage1_total, 10.0, 0.01);
}

TEST(CompositionGraph, InfeasibleWhenAggregateCapacityShort) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 4.0, 0.0}, {2, 4.0, 0.0}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  EXPECT_FALSE(r.feasible);
}

TEST(CompositionGraph, SliverFoldingMergesTinyShares) {
  // Cheap candidate covers 9.95, expensive one the 0.05 sliver.
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 9.95, 0.0}, {2, 20.0, 0.3}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(), cg.demand());
  const auto folded = cg.extract_shares(/*min_share_fraction=*/0.02);
  ASSERT_EQ(folded[0].size(), 1u);
  EXPECT_EQ(folded[0][0].node, 1);
  EXPECT_NEAR(folded[0][0].rate_units_per_sec, 10.0, 0.01);

  // With folding disabled both shares survive.
  const auto raw = cg.extract_shares(0.0);
  EXPECT_EQ(raw[0].size(), 2u);
}

TEST(CompositionGraph, CostScalingIsProportional) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 20.0, 0.25}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  // 10 ups * kScale flow units * 0.25 * kCostScale per unit.
  EXPECT_EQ(r.cost, flow::Cost(10 * CompositionGraph::kScale * 0.25 *
                               CompositionGraph::kCostScale));
}

TEST(CompositionGraph, ZeroCapacityCandidateUnusable) {
  std::vector<std::vector<CandidateCap>> stages = {
      {{1, 0.0, 0.0}, {2, 20.0, 0.9}},
  };
  CompositionGraph cg(stages, 100.0, 100.0, 10.0);
  const auto r = flow::min_cost_flow_ssp(cg.graph(), cg.source(), cg.sink(),
                                         cg.demand());
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(cg.candidate_flow_ups(0, 0), 0.0);
}

}  // namespace
}  // namespace rasc::core
