// The M/G/1 latency model: closed-form anchors (M/D/1 at zero jitter),
// saturation semantics, plan walking, a discrete-event cross-check of the
// Pollaczek-Khinchine formula, and deadline admission through the
// composer (§2.1 latency bounds, DESIGN.md §16).
#include "core/latency_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/mincost_composer.hpp"

namespace rasc::core {
namespace {

constexpr std::int64_t kUnitBytes = 1250;

runtime::ServiceCatalog catalog(double jitter = 0.0) {
  runtime::ServiceCatalog c;
  c.add({"a", sim::msec(2), 1.0, 1.0, jitter});
  c.add({"b", sim::msec(1), 1.0, 1.0, jitter});
  return c;
}

LatencyModel::Options flat_links(double ms) {
  LatencyModel::Options options;
  options.link_latency_ms = [ms](sim::NodeIndex a, sim::NodeIndex b) {
    return a == b ? 0.0 : ms;
  };
  return options;
}

monitor::NodeStats idle_node(sim::NodeIndex idx, double cap_kbps = 100000.0) {
  monitor::NodeStats s;
  s.node = idx;
  s.capacity_in_kbps = cap_kbps;
  s.capacity_out_kbps = cap_kbps;
  s.drop_samples = 1;
  return s;
}

/// One substream, one placement per stage, all at `ups` units/sec.
runtime::AppPlan chain_plan(const std::vector<std::string>& services,
                            const std::vector<sim::NodeIndex>& nodes,
                            double ups) {
  runtime::AppPlan plan;
  plan.app = 1;
  plan.source = 100;
  plan.destination = 101;
  runtime::SubstreamPlan sub;
  sub.rate_units_per_sec = ups;
  sub.unit_bytes = kUnitBytes;
  for (std::size_t i = 0; i < services.size(); ++i) {
    runtime::StagePlan stage;
    stage.service = services[i];
    stage.placements.push_back(runtime::Placement{nodes[i], ups});
    sub.stages.push_back(std::move(stage));
  }
  plan.substreams.push_back(std::move(sub));
  return plan;
}

TEST(LatencyModel, MD1ClosedFormAtZeroJitter) {
  // With j = 0 the P-K wait must reduce *exactly* to the M/D/1 form
  // W = rho m / (2 (1 - rho)) across the whole stable range.
  for (const double m : {0.5, 2.0, 10.0}) {
    for (double rho = 0.05; rho < 0.96; rho += 0.05) {
      const double expected = rho * m / (2.0 * (1.0 - rho));
      EXPECT_DOUBLE_EQ(LatencyModel::mg1_wait_ms(m, 0.0, rho, 0.98),
                       expected)
          << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(LatencyModel, JitterInflatesWaitByUniformSecondMoment) {
  // Uniform jitter j has E[S^2] = m^2 (1 + j^2/3): the wait scales by
  // exactly (1 + j^2/3) relative to deterministic service.
  const double m = 2.0, rho = 0.6;
  const double base = LatencyModel::mg1_wait_ms(m, 0.0, rho, 0.98);
  for (const double j : {0.1, 0.3, 0.5}) {
    EXPECT_DOUBLE_EQ(LatencyModel::mg1_wait_ms(m, j, rho, 0.98),
                     base * (1.0 + j * j / 3.0));
  }
  // More jitter, more wait — strictly monotone.
  EXPECT_LT(LatencyModel::mg1_wait_ms(m, 0.1, rho, 0.98),
            LatencyModel::mg1_wait_ms(m, 0.5, rho, 0.98));
}

TEST(LatencyModel, SaturationAndIdleEdges) {
  EXPECT_EQ(LatencyModel::mg1_wait_ms(2.0, 0.0, 0.0, 0.98), 0.0);
  EXPECT_EQ(LatencyModel::mg1_wait_ms(2.0, 0.0, -0.5, 0.98), 0.0);
  EXPECT_TRUE(std::isinf(LatencyModel::mg1_wait_ms(2.0, 0.0, 0.98, 0.98)));
  EXPECT_TRUE(std::isinf(LatencyModel::mg1_wait_ms(2.0, 0.0, 1.5, 0.98)));
}

TEST(LatencyModel, SaturatedUsesAggregateCpuAndTreatsUnknownAsIdle) {
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(1.0));
  // Unknown node: idle base, only the added load counts.
  EXPECT_FALSE(model.saturated(nullptr, 0.5));
  EXPECT_TRUE(model.saturated(nullptr, 0.99));
  // Base is max(measured, reserved) — reservation lag must not hide load.
  monitor::NodeStats s = idle_node(1);
  s.cpu_used_fraction = 0.3;
  s.cpu_reserved_fraction = 0.7;
  EXPECT_FALSE(model.saturated(&s, 0.2));
  EXPECT_TRUE(model.saturated(&s, 0.3));
}

TEST(LatencyModel, RequiresLinkLatencyFunction) {
  const auto cat = catalog();
  EXPECT_THROW(LatencyModel(cat, LatencyModel::Options{}),
               std::invalid_argument);
}

TEST(LatencyModel, PredictsChainOfLinksWaitsAndServiceTimes) {
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(5.0));
  // 100 ups through "a" (2 ms/unit): rho = 0.2 on an idle node.
  const auto plan = chain_plan({"a"}, {1}, 100.0);
  const auto idle = idle_node(1);
  const double got = model.predict_ms(
      plan, [&idle](sim::NodeIndex n) -> const monitor::NodeStats* {
        return n == 1 ? &idle : nullptr;
      });
  const double rho = 100.0 * 0.002;
  // Each traversed port of a node with known capacity pays serialization
  // plus the M/D/1 port wait at the plan's own wire rate (100 ups * 1250 B
  // = 1000 kbps on a 100 Mbps access link). The source and destination
  // have no stats here, so only node 1's ingress and egress count.
  const double tx = double(kUnitBytes) * 8.0 / 100000.0;
  const double port =
      tx + LatencyModel::mg1_wait_ms(tx, 0.0, 1000.0 / 100000.0, 0.98);
  const double expected = 5.0 + port +
                          LatencyModel::mg1_wait_ms(2.0, 0.0, rho, 0.98) +
                          2.0 + 5.0 + port;
  EXPECT_NEAR(got, expected, 1e-9);
}

TEST(LatencyModel, SaggedAccessLinkShowsInPrediction) {
  // A chaos bandwidth fault scales the monitored (effective) capacity;
  // the plan's own 250 kbps on a 300 kbps link runs the port at rho 0.83
  // and the predicted latency must spike long before drops appear. At or
  // past capacity the queue has no steady state: prediction is infinite.
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(1.0));
  const auto plan = chain_plan({"a"}, {1}, 25.0);  // 250 kbps of wire
  const auto stats_for = [](const monitor::NodeStats* s) {
    return [s](sim::NodeIndex n) -> const monitor::NodeStats* {
      return n == 1 ? s : nullptr;
    };
  };
  const auto healthy = idle_node(1, 4000.0);
  const auto sagged = idle_node(1, 300.0);
  const double fast = model.predict_ms(plan, stats_for(&healthy));
  const double slow = model.predict_ms(plan, stats_for(&sagged));
  EXPECT_GT(slow, fast + 50.0);  // tens of ms of port queueing
  const auto saturated = idle_node(1, 250.0);  // rho 1.0 >= cap
  EXPECT_TRUE(
      std::isinf(model.predict_ms(plan, stats_for(&saturated))));
}

TEST(LatencyModel, BaseUtilizationFromStatsRaisesPrediction) {
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(5.0));
  const auto plan = chain_plan({"a"}, {1}, 100.0);
  auto busy = idle_node(1);
  busy.cpu_used_fraction = 0.6;
  const auto idle = idle_node(1);
  const auto stats_for = [](const monitor::NodeStats* s) {
    return [s](sim::NodeIndex n) -> const monitor::NodeStats* {
      return n == 1 ? s : nullptr;
    };
  };
  EXPECT_GT(model.predict_ms(plan, stats_for(&busy)),
            model.predict_ms(plan, stats_for(&idle)));
  // Past the cap the prediction is unbounded.
  busy.cpu_used_fraction = 0.97;  // + 0.2 own load >= 0.98 cap
  EXPECT_TRUE(std::isinf(model.predict_ms(plan, stats_for(&busy))));
}

TEST(LatencyModel, AppLatencyIsMaxOverSubstreams) {
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(5.0));
  auto plan = chain_plan({"a"}, {1}, 100.0);
  auto slow = chain_plan({"a", "b"}, {2, 3}, 200.0);
  plan.substreams.push_back(slow.substreams[0]);
  std::vector<double> per;
  const double got = model.predict_ms(
      plan, [](sim::NodeIndex) -> const monitor::NodeStats* { return nullptr; },
      &per);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_DOUBLE_EQ(got, std::max(per[0], per[1]));
  EXPECT_GT(per[1], per[0]);  // extra hop + higher rho
}

TEST(LatencyModel, CoLocationSharesTheCpu) {
  // Two stages of the same substream on one node: each queue sees the
  // node's aggregate rho (0.2 + 0.1), not its own component's share.
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(0.0));
  const auto colocated = chain_plan({"a", "b"}, {1, 1}, 100.0);
  const auto spread = chain_plan({"a", "b"}, {1, 2}, 100.0);
  const auto no_stats = [](sim::NodeIndex) -> const monitor::NodeStats* {
    return nullptr;
  };
  EXPECT_GT(model.predict_ms(colocated, no_stats),
            model.predict_ms(spread, no_stats));
}

// Discrete-event cross-check: a Poisson-arrival, deterministic-service
// queue simulated directly must land on the P-K prediction. Fixed-seed
// RNG, no wall clock — fully deterministic.
TEST(LatencyModel, MD1SimulationMatchesPrediction) {
  const double service_ms = 2.0;
  const double rho = 0.7;
  const double lambda_per_ms = rho / service_ms;
  std::mt19937_64 rng(0x4d443149);  // "MD1I"
  std::exponential_distribution<double> interarrival(lambda_per_ms);

  double clock_ms = 0, server_free_ms = 0, wait_sum = 0;
  const int kArrivals = 200000;
  for (int i = 0; i < kArrivals; ++i) {
    clock_ms += interarrival(rng);
    const double start = std::max(clock_ms, server_free_ms);
    wait_sum += start - clock_ms;
    server_free_ms = start + service_ms;
  }
  const double simulated = wait_sum / kArrivals;
  const double predicted =
      LatencyModel::mg1_wait_ms(service_ms, 0.0, rho, 0.98);
  EXPECT_NEAR(simulated, predicted, 0.10 * predicted);
}

// Tandem check: two deterministic-service queues in series, fed by
// Poisson arrivals, against predict_ms over a two-stage plan. Departures
// of an M/D/1 queue are not Poisson, so the model is an approximation at
// the second stage — 15% is the accepted envelope.
TEST(LatencyModel, TandemSimulationWithinModelEnvelope) {
  const double ups = 350.0;  // rho = 0.7 at stage "a", 0.35 at "b"
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(0.0));
  const auto plan = chain_plan({"a", "b"}, {1, 2}, ups);
  const double predicted = model.predict_ms(
      plan, [](sim::NodeIndex) -> const monitor::NodeStats* {
        return nullptr;
      });

  const double m1 = 2.0, m2 = 1.0;  // ms, from the catalog
  std::mt19937_64 rng(0x54414e44);  // "TAND"
  std::exponential_distribution<double> interarrival(ups / 1000.0);
  double clock_ms = 0, free1 = 0, free2 = 0, total = 0;
  const int kArrivals = 200000;
  for (int i = 0; i < kArrivals; ++i) {
    clock_ms += interarrival(rng);
    const double start1 = std::max(clock_ms, free1);
    free1 = start1 + m1;
    const double start2 = std::max(free1, free2);
    free2 = start2 + m2;
    total += free2 - clock_ms;
  }
  const double simulated = total / kArrivals;
  EXPECT_NEAR(simulated, predicted, 0.15 * predicted);
}

// --- Deadline admission through the composer ---

ComposeInput admission_input(const runtime::ServiceCatalog& cat) {
  ComposeInput input;
  input.catalog = &cat;
  input.request.app = 1;
  input.request.source = 100;
  input.request.destination = 101;
  input.request.unit_bytes = kUnitBytes;
  input.request.substreams = {{{"a"}, 100.0}};  // 10 delivered ups
  input.source_stats = idle_node(100);
  input.destination_stats = idle_node(101);
  input.providers["a"] = {idle_node(1)};
  return input;
}

TEST(LatencyModel, ComposerAdmitsWithinDeadline) {
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(5.0));
  MinCostComposer::Options options;
  options.latency_model = &model;
  MinCostComposer composer(options);
  auto input = admission_input(cat);
  input.request.deadline_ms = 100.0;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  EXPECT_GE(r.predicted_latency_ms, 10.0);  // at least the two hops
  EXPECT_LE(r.predicted_latency_ms, input.request.deadline_ms);
}

TEST(LatencyModel, ComposerRejectsPastDeadline) {
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(5.0));
  MinCostComposer::Options options;
  options.latency_model = &model;
  MinCostComposer composer(options);
  auto input = admission_input(cat);
  input.request.deadline_ms = 1.0;  // below even the link latency
  const auto r = composer.compose(input);
  EXPECT_FALSE(r.admitted);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  EXPECT_TRUE(r.plan.substreams.empty());
}

TEST(LatencyModel, ComposerRoutesAroundSaturatedNode) {
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(5.0));
  MinCostComposer::Options options;
  options.latency_model = &model;
  MinCostComposer composer(options);
  auto input = admission_input(cat);
  input.request.deadline_ms = 100.0;
  auto hot = idle_node(1);
  hot.cpu_used_fraction = 0.99;  // past the utilization cap
  input.providers["a"] = {hot, idle_node(2)};
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  for (const auto& p : r.plan.substreams[0].stages[0].placements) {
    EXPECT_EQ(p.node, 2);
  }
}

TEST(LatencyModel, NoDeadlineIgnoresModel) {
  // deadline_ms == 0: the model must not reject anything, even an
  // obviously saturated placement — legacy behavior is untouched.
  const auto cat = catalog();
  const LatencyModel model(cat, flat_links(5.0));
  MinCostComposer::Options options;
  options.latency_model = &model;
  MinCostComposer composer(options);
  auto input = admission_input(cat);
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  EXPECT_EQ(r.predicted_latency_ms, -1);
}

}  // namespace
}  // namespace rasc::core
