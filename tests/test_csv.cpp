// CSV writer escaping and round-trip file content.
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rasc::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  // ctest runs each case as its own process in parallel: the path must be
  // unique per test AND per process.
  std::string path_ =
      ::testing::TempDir() + "rasc_csv_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      "_" + std::to_string(::getpid()) + ".csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, PlainRow) {
  {
    CsvWriter w(path_);
    w.row({"a", "b", "c"});
  }
  EXPECT_EQ(slurp(path_), "a,b,c\n");
}

TEST_F(CsvTest, EscapesCommasQuotesNewlines) {
  {
    CsvWriter w(path_);
    w.row({"x,y", "he said \"hi\"", "line\nbreak"});
  }
  EXPECT_EQ(slurp(path_), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST_F(CsvTest, NumericRow) {
  {
    CsvWriter w(path_);
    w.numeric_row("mincost", {1.5, 2.0, 3.25});
  }
  EXPECT_EQ(slurp(path_), "mincost,1.5,2,3.25\n");
}

TEST_F(CsvTest, MultipleRows) {
  {
    CsvWriter w(path_);
    w.row({"h1", "h2"});
    w.row({"1", "2"});
    w.row({"3", "4"});
  }
  EXPECT_EQ(slurp(path_), "h1,h2\n1,2\n3,4\n");
}

TEST(CsvEscape, NoQuotesWhenClean) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(CsvWriterErrors, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace rasc::util
