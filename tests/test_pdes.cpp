// Parallel discrete-event core: engine primitives, determinism contracts
// and the serial-vs-parallel statistical tolerance.
//
// The contracts under test (see DESIGN.md §13):
//  - a Simulator that never calls enable_parallel is the serial engine,
//    byte-identical to prior releases (covered indirectly by every other
//    test binary; here we pin the API defaults);
//  - a parallel run is deterministic per (threads, seed) AND identical
//    across every thread count > 1 for a fixed seed, because all ordering
//    rules are (time, source LP, per-source sequence)-based and the thread
//    partition only chooses which worker executes an LP;
//  - parallel results differ from serial ones (per-node RNG striping) but
//    only statistically: the same world, workload and fault timeline
//    targets, with delivery metrics within a narrow band.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.hpp"
#include "obs/metric_registry.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc {
namespace {

sim::Simulator::ParallelConfig parallel_config(int threads,
                                               std::size_t num_lps,
                                               sim::SimDuration lookahead) {
  sim::Simulator::ParallelConfig pc;
  pc.threads = threads;
  pc.num_lps = num_lps;
  pc.lookahead = lookahead;
  return pc;
}

TEST(PdesEngine, SerialIsTheDefault) {
  sim::Simulator sim(1);
  EXPECT_FALSE(sim.parallel());
  // The pinned variants degrade to plain scheduling in serial mode.
  sim::SimTime ran_at = -1;
  sim.call_after_on(3, 10, [&] { ran_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(ran_at, 10);
}

TEST(PdesEngine, EnableParallelValidates) {
  sim::Simulator sim(1);
  EXPECT_THROW(sim.enable_parallel(parallel_config(2, 0, 1)),
               std::invalid_argument);
  sim.enable_parallel(parallel_config(2, 4, 1));
  EXPECT_TRUE(sim.parallel());
  // Enabling twice is a usage error.
  EXPECT_THROW(sim.enable_parallel(parallel_config(2, 4, 1)),
               std::logic_error);
}

TEST(PdesEngine, CrossLpEventsRunAtTheRightTimeAndPlace) {
  sim::Simulator sim(1);
  sim.enable_parallel(parallel_config(2, 4, 50));
  std::vector<std::pair<sim::SimTime, int>> hits(3, {-1, -1});
  sim.call_at_on(0, 10, [&] {
    hits[0] = {sim.now(), sim::ParallelEngine::context_lp()};
    // Cross-LP send: delay >= lookahead, lands on LP 1.
    sim.call_at_on(1, sim.now() + 60, [&] {
      hits[1] = {sim.now(), sim::ParallelEngine::context_lp()};
      // Same-LP follow-up schedules directly.
      sim.call_after_on(1, 5, [&] {
        hits[2] = {sim.now(), sim::ParallelEngine::context_lp()};
      });
    });
  });
  sim.run_until(1000);
  EXPECT_EQ(hits[0], (std::pair<sim::SimTime, int>{10, 0}));
  EXPECT_EQ(hits[1], (std::pair<sim::SimTime, int>{70, 1}));
  EXPECT_EQ(hits[2], (std::pair<sim::SimTime, int>{75, 1}));
  EXPECT_EQ(sim.processed_events(), 3u);
}

TEST(PdesEngine, ExclusiveDefersToBarrierWithCallerClock) {
  sim::Simulator sim(1);
  sim.enable_parallel(parallel_config(2, 4, 50));
  sim::SimTime exclusive_now = -1;
  int exclusive_ctx = 0;
  bool ran_inline = true;
  sim.call_at_on(2, 100, [&] {
    sim.exclusive([&] {
      exclusive_now = sim.now();
      exclusive_ctx = sim::ParallelEngine::context_lp();
    });
    // From LP context the work is deferred, not run inline.
    ran_inline = exclusive_now >= 0;
  });
  sim.run_until(1000);
  EXPECT_FALSE(ran_inline);
  EXPECT_EQ(exclusive_now, 100);   // caller's timestamp
  EXPECT_EQ(exclusive_ctx, -1);    // coordinating thread
  // From the coordinating thread, exclusive runs inline.
  bool inline_ran = false;
  sim.exclusive([&] { inline_ran = true; });
  EXPECT_TRUE(inline_ran);
}

TEST(PdesEngine, CancelOwnLpAndGlobalEvents) {
  sim::Simulator sim(1);
  sim.enable_parallel(parallel_config(2, 4, 50));
  bool global_fired = false;
  const auto global_id = sim.call_at(500, [&] { global_fired = true; });
  ASSERT_NE(global_id, 0u);
  bool lp_victim_fired = false;
  sim.call_at_on(1, 100, [&] {
    // An LP may schedule and cancel within its own queue...
    const auto own = sim.call_after(10, [&] { lp_victim_fired = true; });
    EXPECT_NE(own, 0u);
    EXPECT_TRUE(sim.cancel(own));
    // ...and cancel global events under the engine's global lock.
    EXPECT_TRUE(sim.cancel(global_id));
  });
  sim.run_until(1000);
  EXPECT_FALSE(global_fired);
  EXPECT_FALSE(lp_victim_fired);
}

/// A little message mesh: every event draws from its LP's RNG stream,
/// records (time, draw) in a per-LP log, and forwards to a derived LP
/// after a delay >= the lookahead. The concatenated logs are a complete
/// execution trace; two runs agree iff they executed identically.
struct Mesh {
  explicit Mesh(int threads, std::size_t lps) : logs(lps) {
    sim.enable_parallel(parallel_config(threads, lps, 50));
  }
  void fire(std::size_t lp, int depth) {
    const std::uint64_t draw = sim.rng().next() % 97;
    logs[lp].push_back({sim.now(), draw});
    if (depth <= 0) return;
    const std::size_t next = (lp + 1 + draw % 5) % logs.size();
    sim.call_at_on(next, sim.now() + 50 + sim::SimDuration(draw),
                   [this, next, depth] { fire(next, depth - 1); });
  }
  std::vector<std::vector<std::pair<sim::SimTime, std::uint64_t>>> run() {
    for (std::size_t lp = 0; lp < logs.size(); ++lp) {
      sim.call_at_on(lp, sim::SimTime(lp + 1),
                     [this, lp] { fire(lp, 40); });
    }
    sim.run_until(100000);
    return logs;
  }
  sim::Simulator sim{42};
  std::vector<std::vector<std::pair<sim::SimTime, std::uint64_t>>> logs;
};

TEST(PdesEngine, TraceIsIdenticalAcrossThreadCounts) {
  const auto two = Mesh(2, 6).run();
  const auto six = Mesh(6, 6).run();
  EXPECT_EQ(two, six);
  // And per (threads, seed) the run is reproducible.
  const auto two_again = Mesh(2, 6).run();
  EXPECT_EQ(two, two_again);
}

TEST(PdesEngine, ConservativeLookaheadBounds) {
  auto t = sim::make_uniform_topology(4, 1000, sim::msec(10));
  EXPECT_EQ(sim::conservative_lookahead(t), sim::msec(10));
  t.latency_jitter = 0.25;
  EXPECT_EQ(sim::conservative_lookahead(t),
            sim::SimDuration(double(sim::msec(10)) * 0.75));
  // Degenerate topologies floor at 1us.
  auto single = sim::make_uniform_topology(1, 1000, 0);
  EXPECT_EQ(sim::conservative_lookahead(single), 1);
}

/// Small but complete experiment config (discovery, composition, deploy,
/// streaming) used by the determinism and tolerance tests below.
exp::RunConfig small_run(int sim_threads) {
  exp::RunConfig cfg;
  cfg.world.nodes = 12;
  cfg.world.sim_threads = sim_threads;
  cfg.workload.num_requests = 6;
  cfg.submit_gap = sim::msec(700);
  cfg.steady_duration = sim::sec(4);
  return cfg;
}

std::string snapshot_csv(const std::vector<obs::MetricRow>& rows) {
  std::ostringstream out;
  obs::MetricRegistry::write_csv(rows, out);
  return out.str();
}

TEST(PdesDeterminism, RepeatedParallelRunsAreByteIdentical) {
  std::vector<obs::MetricRow> a, b;
  exp::run_experiment(small_run(2), &a);
  exp::run_experiment(small_run(2), &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b));
}

TEST(PdesDeterminism, ThreadCountDoesNotChangeResults) {
  std::vector<obs::MetricRow> two, eight;
  const auto m2 = exp::run_experiment(small_run(2), &two);
  const auto m8 = exp::run_experiment(small_run(8), &eight);
  EXPECT_EQ(snapshot_csv(two), snapshot_csv(eight));
  EXPECT_EQ(m2.emitted, m8.emitted);
  EXPECT_EQ(m2.delivered, m8.delivered);
  EXPECT_EQ(m2.composed, m8.composed);
}

TEST(PdesDeterminism, ChaosReplayIsThreadCountInvariant) {
  auto cfg = small_run(2);
  cfg.world.nodes = 12;
  cfg.chaos_scenario = "churn";
  cfg.chaos_seed = 42;
  std::vector<obs::MetricRow> two, four;
  const auto m2 = exp::run_experiment(cfg, &two);
  cfg.world.sim_threads = 4;
  const auto m4 = exp::run_experiment(cfg, &four);
  EXPECT_EQ(snapshot_csv(two), snapshot_csv(four));
  EXPECT_EQ(m2.faults_injected, m4.faults_injected);
  EXPECT_EQ(m2.recoveries, m4.recoveries);
}

TEST(PdesTolerance, ParallelMatchesSerialStatistically) {
  // Serial and parallel runs of the same config are *different executions*
  // (per-node RNG striping changes packet jitter draws), but they simulate
  // the same world and workload, so the aggregate outcomes must agree to
  // within a narrow band. Calibrated against observed runs, with ~4x
  // headroom.
  const auto serial = exp::run_experiment(small_run(1));
  const auto parallel = exp::run_experiment(small_run(2));
  EXPECT_EQ(serial.requests, parallel.requests);
  EXPECT_EQ(serial.composed, parallel.composed);
  ASSERT_GT(serial.emitted, 0);
  ASSERT_GT(parallel.emitted, 0);
  const double emitted_ratio =
      double(parallel.emitted) / double(serial.emitted);
  EXPECT_GT(emitted_ratio, 0.85);
  EXPECT_LT(emitted_ratio, 1.15);
  EXPECT_NEAR(serial.delivered_fraction(), parallel.delivered_fraction(),
              0.05);
  EXPECT_NEAR(serial.timely_fraction(), parallel.timely_fraction(), 0.05);
  EXPECT_NEAR(serial.mean_delay_ms(), parallel.mean_delay_ms(),
              0.25 * serial.mean_delay_ms());
}

}  // namespace
}  // namespace rasc
