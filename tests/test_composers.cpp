// The three composition algorithms against hand-built provider/stats
// scenarios: splitting, admission, capacity updates across substreams,
// drop-ratio preferences, and baseline behaviours (§3.5, §4.1).
#include "core/greedy_composer.hpp"
#include "core/mincost_composer.hpp"
#include "core/random_composer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rasc::core {
namespace {

// 1250-byte payload units: requirement rates are payload Kbps, so 100
// kbps = exactly 10 delivered units/sec. On the wire each unit is 1250+48
// framed bytes = 10.384 kbps per ups.
constexpr std::int64_t kUnitBytes = 1250;
constexpr double kWireKbpsPerUps = (1250 + 48) * 8.0 / 1000.0;

runtime::ServiceCatalog catalog() {
  runtime::ServiceCatalog c;
  c.add({"a", sim::msec(1), 1.0, 1.0});
  c.add({"b", sim::msec(1), 1.0, 1.0});
  return c;
}

monitor::NodeStats node(sim::NodeIndex idx, double cap_kbps,
                        double drop = 0.0) {
  monitor::NodeStats s;
  s.node = idx;
  s.capacity_in_kbps = cap_kbps;
  s.capacity_out_kbps = cap_kbps;
  s.drop_ratio = drop;
  // Hand-built stats model a *measured* node: without samples the
  // composers would rightly ignore drop_ratio as uninformative.
  s.drop_samples = 1;
  return s;
}

ComposeInput base_input(const runtime::ServiceCatalog& cat) {
  ComposeInput input;
  input.catalog = &cat;
  input.request.app = 1;
  input.request.source = 100;
  input.request.destination = 101;
  input.request.unit_bytes = kUnitBytes;
  input.source_stats = node(100, 100000.0);
  input.destination_stats = node(101, 100000.0);
  return input;
}

double stage_total_ups(const runtime::StagePlan& stage) {
  double total = 0;
  for (const auto& p : stage.placements) total += p.rate_units_per_sec;
  return total;
}

TEST(MinCostComposer, SingleProviderFullRate) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};  // 10 delivered ups
  input.providers["a"] = {node(1, 1000.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  const auto& stage = r.plan.substreams[0].stages[0];
  ASSERT_EQ(stage.placements.size(), 1u);
  EXPECT_EQ(stage.placements[0].node, 1);
  EXPECT_NEAR(stage_total_ups(stage), 10.0, 0.05);
}

TEST(MinCostComposer, SplitsAcrossProvidersWhenNoneSuffices) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};  // 10 ups = ~104 wire kbps
  input.providers["a"] = {node(1, 60.0), node(2, 60.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  const auto& stage = r.plan.substreams[0].stages[0];
  ASSERT_EQ(stage.placements.size(), 2u) << "rate splitting expected";
  EXPECT_NEAR(stage_total_ups(stage), 10.0, 0.05);
  // Neither instance exceeds its node's 60 kbps (~5.78 ups).
  for (const auto& p : stage.placements) {
    EXPECT_LE(p.rate_units_per_sec, 60.0 / kWireKbpsPerUps + 0.01);
  }
}

TEST(MinCostComposer, GreedyWouldRejectWhatSplittingAdmits) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};
  input.providers["a"] = {node(1, 60.0), node(2, 60.0)};
  GreedyComposer greedy;
  EXPECT_FALSE(greedy.compose(input).admitted);
  MinCostComposer mincost;
  EXPECT_TRUE(mincost.compose(input).admitted);
}

TEST(MinCostComposer, PrefersLowDropProviders) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 50.0}};
  input.providers["a"] = {node(1, 1000.0, 0.3), node(2, 1000.0, 0.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted);
  const auto& stage = r.plan.substreams[0].stages[0];
  ASSERT_EQ(stage.placements.size(), 1u);
  EXPECT_EQ(stage.placements[0].node, 2);
}

TEST(MinCostComposer, UnknownDropPriorPricesUnmeasuredNodes) {
  // Empty-window bias fix: a node with no recorded outcomes must not be
  // priced by its (meaningless) drop_ratio. By default the prior is 0.0
  // — legacy behaviour, unproven nodes look drop-free — but a pessimistic
  // prior steers traffic onto measured nodes instead.
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};
  auto unmeasured = node(1, 1000.0, 0.9);  // stale/garbage ratio...
  unmeasured.drop_samples = 0;             // ...and zero observations
  input.providers["a"] = {unmeasured, node(2, 1000.0, 0.05)};

  MinCostComposer legacy;
  const auto r0 = legacy.compose(input);
  ASSERT_TRUE(r0.admitted) << r0.error;
  const auto& p0 = r0.plan.substreams[0].stages[0].placements;
  ASSERT_EQ(p0.size(), 1u);
  EXPECT_EQ(p0[0].node, 1) << "default prior 0: no data reads as "
                              "drop-free, and the garbage ratio is "
                              "ignored either way";

  MinCostComposer::Options opt;
  opt.unknown_drop_prior = 0.2;
  MinCostComposer wary(opt);
  const auto r1 = wary.compose(input);
  ASSERT_TRUE(r1.admitted) << r1.error;
  const auto& p1 = r1.plan.substreams[0].stages[0].placements;
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].node, 2) << "a 0.2 prior must lose to a measured 5% "
                              "drop ratio";
}

TEST(MinCostComposer, RejectsWhenAggregateCapacityShort) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 200.0}};
  input.providers["a"] = {node(1, 60.0), node(2, 60.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  EXPECT_FALSE(r.admitted);
  EXPECT_FALSE(r.error.empty());
}

TEST(MinCostComposer, RejectsWhenSourceIsBottleneck) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};
  input.providers["a"] = {node(1, 1000.0)};
  input.source_stats = node(100, 40.0);  // cannot emit 100 kbps
  MinCostComposer composer;
  EXPECT_FALSE(composer.compose(input).admitted);
}

TEST(MinCostComposer, SecondSubstreamSeesReducedCapacity) {
  const auto cat = catalog();
  auto input = base_input(cat);
  // Two substreams through the same single provider of 150 kbps: first
  // takes 100, second needs 100 -> must fail (Algorithm 1 capacity
  // update between substreams).
  input.request.substreams = {{{"a"}, 100.0}, {{"a"}, 100.0}};
  input.providers["a"] = {node(1, 150.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  EXPECT_FALSE(r.admitted);
  EXPECT_NE(r.error.find("substream 1"), std::string::npos) << r.error;
}

TEST(MinCostComposer, MultiSubstreamAcrossDistinctProviders) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}, {{"b"}, 100.0}};
  input.providers["a"] = {node(1, 150.0)};
  input.providers["b"] = {node(2, 150.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  EXPECT_EQ(r.plan.substreams.size(), 2u);
}

TEST(MinCostComposer, MissingProviderRejects) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a", "b"}, 50.0}};
  input.providers["a"] = {node(1, 1000.0)};
  // no providers for b
  MinCostComposer composer;
  const auto r = composer.compose(input);
  EXPECT_FALSE(r.admitted);
  EXPECT_NE(r.error.find("b"), std::string::npos);
}

TEST(MinCostComposer, RepairLoopHandlesSharedNodeAcrossStages) {
  const auto cat = catalog();
  auto input = base_input(cat);
  // Node 1 offers both services with 100 kbps each way; the request
  // chains a -> b at 50 kbps (5 ups -> ~52 kbps in + ~52 out per stage).
  // Hosting both stages would need ~104 in + ~104 out on node 1, so the
  // repair pass must move rate to node 2.
  input.request.substreams = {{{"a", "b"}, 50.0}};
  input.providers["a"] = {node(1, 100.0), node(2, 100.0)};
  input.providers["b"] = {node(1, 100.0), node(2, 100.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  // Verify per-node wire usage stays within capacity.
  std::map<sim::NodeIndex, double> in_kbps, out_kbps;
  const auto& sub = r.plan.substreams[0];
  for (const auto& stage : sub.stages) {
    for (const auto& p : stage.placements) {
      in_kbps[p.node] += p.rate_units_per_sec * kWireKbpsPerUps;
      out_kbps[p.node] += p.rate_units_per_sec * kWireKbpsPerUps;
    }
  }
  for (const auto& [n, kbps] : in_kbps) {
    EXPECT_LE(kbps, 100.0 * 1.05) << "node " << n << " overcommitted";
  }
}

TEST(GreedyComposer, PicksLowestDropWithCapacity) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};
  input.providers["a"] = {node(1, 1000.0, 0.2), node(2, 50.0, 0.0),
                          node(3, 1000.0, 0.05)};
  GreedyComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted);
  // Node 2 has the best drop ratio but lacks capacity; node 3 is next.
  EXPECT_EQ(r.plan.substreams[0].stages[0].placements[0].node, 3);
}

TEST(GreedyComposer, SingleInstancePerService) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a", "b"}, 80.0}};
  input.providers["a"] = {node(1, 1000.0)};
  input.providers["b"] = {node(2, 1000.0)};
  GreedyComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted);
  EXPECT_EQ(r.plan.component_count(), 2u);
  for (const auto& stage : r.plan.substreams[0].stages) {
    EXPECT_EQ(stage.placements.size(), 1u);
  }
}

TEST(GreedyComposer, ConsumesCapacityAcrossStages) {
  const auto cat = catalog();
  auto input = base_input(cat);
  // One node with 150 kbps offers both services; the chain at 100 kbps
  // needs ~104 in + ~104 out per stage — placing both stages there would
  // need ~208 each way. Greedy must reject (no alternative).
  input.request.substreams = {{{"a", "b"}, 100.0}};
  input.providers["a"] = {node(1, 150.0)};
  input.providers["b"] = {node(1, 150.0)};
  GreedyComposer composer;
  EXPECT_FALSE(composer.compose(input).admitted);
}

TEST(RandomComposer, DeterministicGivenSeed) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 50.0}};
  input.providers["a"] = {node(1, 1000.0), node(2, 1000.0),
                          node(3, 1000.0)};
  RandomComposer c1{util::Xoshiro256(5)};
  RandomComposer c2{util::Xoshiro256(5)};
  const auto r1 = c1.compose(input);
  const auto r2 = c2.compose(input);
  ASSERT_TRUE(r1.admitted);
  EXPECT_EQ(r1.plan.substreams[0].stages[0].placements[0].node,
            r2.plan.substreams[0].stages[0].placements[0].node);
}

TEST(RandomComposer, UsesDifferentProvidersAcrossSeeds) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 50.0}};
  input.providers["a"] = {node(1, 1000.0), node(2, 1000.0),
                          node(3, 1000.0), node(4, 1000.0)};
  std::set<sim::NodeIndex> picked;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    RandomComposer composer{util::Xoshiro256(seed)};
    const auto r = composer.compose(input);
    ASSERT_TRUE(r.admitted);
    picked.insert(r.plan.substreams[0].stages[0].placements[0].node);
  }
  EXPECT_GE(picked.size(), 3u) << "random placement barely varies";
}

TEST(RandomComposer, RejectsOnlyWhenPicksHaveEssentiallyNoCapacity) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};
  // Below 10% of the ~104 kbps requirement: every pick fails the sanity
  // check.
  input.providers["a"] = {node(1, 5.0), node(2, 5.0)};
  RandomComposer composer{util::Xoshiro256(1)};
  EXPECT_FALSE(composer.compose(input).admitted);
}

TEST(RandomComposer, PlacementIsBlindToLoad) {
  // The paper's random baseline places without considering capacity: a
  // provider with half the required bandwidth is still picked (and will
  // drop units at runtime).
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a"}, 100.0}};
  input.providers["a"] = {node(1, 50.0)};
  RandomComposer composer{util::Xoshiro256(1)};
  EXPECT_TRUE(composer.compose(input).admitted);
}

TEST(AllComposers, RejectInvalidRequest) {
  const auto cat = catalog();
  ComposeInput input;
  input.catalog = &cat;  // request left invalid
  MinCostComposer m;
  GreedyComposer g;
  RandomComposer r{util::Xoshiro256(1)};
  EXPECT_FALSE(m.compose(input).admitted);
  EXPECT_FALSE(g.compose(input).admitted);
  EXPECT_FALSE(r.compose(input).admitted);
}

TEST(AllComposers, PlanRatesMatchRequirement) {
  const auto cat = catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"a", "b"}, 120.0}};
  input.providers["a"] = {node(1, 1000.0), node(2, 1000.0)};
  input.providers["b"] = {node(3, 1000.0), node(4, 1000.0)};
  MinCostComposer m;
  GreedyComposer g;
  RandomComposer r{util::Xoshiro256(2)};
  for (Composer* composer : std::initializer_list<Composer*>{&m, &g, &r}) {
    const auto result = composer->compose(input);
    ASSERT_TRUE(result.admitted) << composer->name();
    const auto& sub = result.plan.substreams[0];
    EXPECT_NEAR(sub.rate_units_per_sec, 12.0, 0.01) << composer->name();
    for (const auto& stage : sub.stages) {
      EXPECT_NEAR(stage_total_ups(stage), 12.0, 0.1) << composer->name();
    }
  }
}

}  // namespace
}  // namespace rasc::core
