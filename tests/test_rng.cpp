// Deterministic RNG: reproducibility, ranges, split independence and
// rough distribution sanity.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace rasc::util {
namespace {

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, UniformIntStaysInRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Xoshiro, UniformIntSingleton) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Xoshiro, UniformIntCoversAllValues) {
  Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro, Uniform01Bounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanNearHalf) {
  Xoshiro256 rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, ExponentialMean) {
  Xoshiro256 rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro, NormalMoments) {
  Xoshiro256 rng(19);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Xoshiro, ParetoRespectsScale) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(5.0, 1.5), 5.0);
  }
}

TEST(Xoshiro, SplitStreamsAreIndependent) {
  Xoshiro256 parent(31);
  auto a = parent.split(1);
  auto b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, SplitIsDeterministic) {
  Xoshiro256 p1(77), p2(77);
  auto a = p1.split(5);
  auto b = p2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, ShuffleIsPermutation) {
  Xoshiro256 rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Xoshiro, WeightedIndexProportions) {
  Xoshiro256 rng(43);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(double(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(double(counts[1]) / n, 0.3, 0.015);
  EXPECT_NEAR(double(counts[2]) / n, 0.6, 0.015);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256 rng(47);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace rasc::util
