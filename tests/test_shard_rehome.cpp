// Shard re-homing: granter-side fencing of a replaced (zombie) primary,
// standby takeover with view reconstruction and app adoption, source-side
// submission journaling across a dead primary's batch window, fast
// rejection when every shard is suspect, and the determinism/inertness
// contracts (same-seed replay, thread-count invariance, byte-identical
// runs with the standby knobs off).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/coordinator_shard.hpp"
#include "exp/control_plane.hpp"
#include "exp/runner.hpp"
#include "exp/world.hpp"
#include "runtime/lease_granter.hpp"
#include "runtime/lease_messages.hpp"

namespace rasc {
namespace {

exp::WorldConfig tiny_world() {
  exp::WorldConfig cfg;
  cfg.nodes = 4;
  cfg.num_services = 4;
  cfg.services_per_node = 2;
  cfg.seed = 11;
  return cfg;
}

/// One LeaseRequestMsg from `requester` to `node`, `after` from now.
void request_lease(exp::World& world, sim::SimDuration after,
                   sim::NodeIndex node, sim::NodeIndex requester,
                   std::int32_t shard, std::uint64_t request_id,
                   std::uint64_t takeover_epoch = 0) {
  world.simulator().call_after(after, [&world, node, requester, shard,
                                       request_id, takeover_epoch] {
    auto msg = std::make_shared<runtime::LeaseRequestMsg>();
    msg->shard = shard;
    msg->requester = requester;
    msg->request_id = request_id;
    msg->takeover_epoch = takeover_epoch;
    world.network().send(requester, node,
                         runtime::LeaseRequestMsg::kBytes, std::move(msg));
  });
}

std::string snapshot_csv(const std::vector<obs::MetricRow>& rows) {
  std::ostringstream out;
  obs::MetricRegistry::write_csv(rows, out);
  return out.str();
}

// --- Granter-side fencing ---------------------------------------------

TEST(ShardRehomeGranter, StaleTakeoverEpochRefusedAndRevoked) {
  exp::World world(tiny_world());
  const sim::SimTime t0 = world.simulator().now();
  runtime::LeaseGranter::Params params;
  params.lease_duration = sim::sec(30);
  params.shards = 2;
  auto& granter = world.host(0).enable_lease_granter(params);

  // Primary (node 1) holds the grant; the standby (node 2) takes over
  // with takeover epoch 1.
  request_lease(world, sim::msec(10), 0, 1, /*shard=*/0, 1);
  world.simulator().run_until(t0 + sim::msec(500));
  EXPECT_EQ(granter.holder_of(0), 1);
  const std::uint64_t primary_epoch = granter.epoch(0);
  request_lease(world, sim::msec(10), 0, 2, 0, 1, /*takeover_epoch=*/1);
  world.simulator().run_until(t0 + sim::sec(1));
  EXPECT_EQ(granter.holder_of(0), 2) << "takeover must replace the holder";
  const std::uint64_t standby_epoch = granter.epoch(0);
  EXPECT_GT(standby_epoch, primary_epoch);

  // The zombie primary renews with takeover epoch 0: refused, the holder
  // and epoch untouched, and the refusal counted.
  request_lease(world, sim::msec(10), 0, 1, 0, 2, /*takeover_epoch=*/0);
  world.simulator().run_until(t0 + sim::msec(1500));
  EXPECT_EQ(granter.holder_of(0), 2);
  EXPECT_EQ(granter.epoch(0), standby_epoch);
  EXPECT_EQ(world.metrics().counter_total("shard.fenced_msgs"), 1);
  EXPECT_EQ(world.metrics().counter_total("lease.granted"), 2);

  // In-flight debits stamped from the fenced-out primary's term NACK:
  // the takeover dropped the previous-epoch honor window.
  EXPECT_FALSE(granter.debit(0, primary_epoch, /*app=*/7, 10.0, 10.0));
  EXPECT_TRUE(granter.debit(0, standby_epoch, 7, 10.0, 10.0));
  EXPECT_EQ(granter.overgrant_high_water_kbps(), 0.0);
}

// --- End-to-end takeover runs -----------------------------------------

exp::RunConfig rehome_run() {
  exp::RunConfig cfg;
  cfg.world.nodes = 16;
  cfg.world.num_services = 6;
  cfg.world.services_per_node = 3;
  // Seed chosen so an orphaned app survives the crash intact (no
  // component or endpoint on the dead home): adoption has work to do.
  cfg.world.seed = 13;
  cfg.world.net.bw_min_kbps = 3000;
  cfg.world.net.bw_max_kbps = 6000;
  cfg.workload.num_requests = 12;
  cfg.workload.avg_rate_kbps = 100;
  cfg.submit_gap = sim::msec(800);
  cfg.steady_duration = sim::sec(12);
  cfg.coordinators = 2;
  cfg.lease_duration = sim::sec(2);
  cfg.lease_renew = sim::msec(800);
  cfg.shard_standby = true;
  // Kill shard 0's home (node 0) after the early submissions deployed.
  cfg.chaos_scenario = "shard-takeover:at=6s";
  return cfg;
}

TEST(ShardRehomeRunner, StandbyTakesOverAndAdoptsOrphans) {
  auto cfg = rehome_run();
  std::vector<obs::MetricRow> a, b;
  const auto m = exp::run_experiment(cfg, &a);
  EXPECT_GT(m.faults_injected, 0);
  EXPECT_EQ(m.shard_rehomes, 1) << "exactly one standby must take over";
  EXPECT_GE(m.shard_adopted, 1) << "orphaned apps were not adopted";
  EXPECT_GT(m.shard_admitted, 0);
  EXPECT_GT(m.delivered, 0);
  EXPECT_EQ(m.lease_overgrant_kbps, 0.0) << "double-reserved bandwidth";
  exp::run_experiment(cfg, &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b))
      << "takeover must replay byte-for-byte";
}

TEST(ShardRehomeRunner, AdoptedAppsResumeAdaptation) {
  // With the rate adapter on, adoption re-attaches each orphan at the
  // standby's host; the adapter must keep re-solving after the takeover.
  auto cfg = rehome_run();
  cfg.adapt_interval = sim::sec(2);
  const auto m = exp::run_experiment(cfg);
  EXPECT_EQ(m.shard_rehomes, 1);
  EXPECT_GE(m.shard_adopted, 1);
  EXPECT_GT(m.adapt_attempts, 0);
  EXPECT_GT(m.delivered, 0);
}

TEST(ShardRehomeRunner, ZombiePrimaryIsFencedWithoutDoubleReservation) {
  // The primary comes back after the standby took over: a zombie
  // coordinator with stale shard state. Every lease renewal it attempts
  // is refused at the granters (stale takeover epoch), its in-flight
  // deploys lose the prev-epoch honor window, and no node ever
  // double-promises bandwidth.
  auto cfg = rehome_run();
  cfg.chaos_scenario = "shard-takeover:at=4s,duration=10s";
  cfg.steady_duration = sim::sec(20);
  std::vector<obs::MetricRow> a, b;
  const auto m = exp::run_experiment(cfg, &a);
  EXPECT_EQ(m.shard_rehomes, 1);
  EXPECT_GT(m.shard_fenced, 0) << "zombie renewals were not fenced";
  EXPECT_EQ(m.lease_overgrant_kbps, 0.0)
      << "fencing failed to prevent double reservation";
  EXPECT_GT(m.delivered, 0);
  exp::run_experiment(cfg, &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b))
      << "zombie fencing must replay byte-for-byte";
}

TEST(ShardRehomeRunner, TakeoverIsThreadCountInvariant) {
  auto cfg = rehome_run();
  cfg.world.sim_threads = 2;
  std::vector<obs::MetricRow> two, four;
  const auto m2 = exp::run_experiment(cfg, &two);
  cfg.world.sim_threads = 4;
  const auto m4 = exp::run_experiment(cfg, &four);
  EXPECT_EQ(snapshot_csv(two), snapshot_csv(four));
  EXPECT_EQ(m2.shard_rehomes, m4.shard_rehomes);
  EXPECT_EQ(m2.shard_adopted, m4.shard_adopted);
  EXPECT_EQ(m2.emitted, m4.emitted);
}

TEST(ShardRehomeRunner, StandbyOffIgnoresRehomeKnobs) {
  // With the standby off, no re-homing machinery may exist: perturbing
  // its knobs yields the byte-identical execution, and no rehome cell is
  // ever created — even under the crash that would have triggered it.
  auto cfg = rehome_run();
  cfg.shard_standby = false;
  std::vector<obs::MetricRow> base, tweaked;
  const auto m = exp::run_experiment(cfg, &base);
  EXPECT_EQ(m.shard_rehomes, 0);
  EXPECT_EQ(m.shard_adopted, 0);
  EXPECT_EQ(m.shard_fenced, 0);
  EXPECT_EQ(m.shard_resubmits, 0);
  cfg.standby_check = sim::msec(123);
  exp::run_experiment(cfg, &tweaked);
  EXPECT_EQ(snapshot_csv(base), snapshot_csv(tweaked));
}

// --- Source-side submission journal (lost batch window) ---------------

TEST(ShardRehomeRunner, SubmissionsLostInDeadPrimaryAreResubmitted) {
  // Crash shard 0's home while submissions are still being routed to it:
  // requests in flight to (or queued inside) the dead primary vanish
  // without a trace. The source-side journal must notice the missing
  // outcome and re-submit; the re-routed copies reach the standby and
  // admit apps a journal-less run loses outright.
  // rehome_run's crash at 6 s lands mid-window for a shard-0 submission:
  // the request reaches the dead home before any granter suspects it.
  auto cfg = rehome_run();
  const auto without = exp::run_experiment(cfg);
  cfg.submit_retry = sim::msec(1500);
  std::vector<obs::MetricRow> a, b;
  const auto with = exp::run_experiment(cfg, &a);
  EXPECT_GT(with.shard_resubmits, 0) << "journal never re-submitted";
  EXPECT_GT(with.composed, without.composed)
      << "re-submission recovered no lost request";
  exp::run_experiment(cfg, &b);
  EXPECT_EQ(snapshot_csv(a), snapshot_csv(b))
      << "journaled runs must replay byte-for-byte";
}

// --- All shards suspect: fast bounded rejection ------------------------

TEST(ShardRehomePlane, AllShardsSuspectRejectsWithoutDeployTimeout) {
  // K=2 with both homes dead and no standby: a submission must come back
  // with a rejection verdict after the bounded backoff (~3 s), not fall
  // through to a dead shard and eat the 5 s deploy timeout.
  exp::WorldConfig wcfg;
  wcfg.nodes = 8;
  wcfg.num_services = 4;
  wcfg.services_per_node = 2;
  wcfg.seed = 11;
  exp::World world(wcfg);
  auto& simulator = world.simulator();
  const sim::SimTime t0 = simulator.now();

  exp::ShardControlPlane::Config pcfg;
  pcfg.coordinators = 2;
  pcfg.lease_duration = sim::sec(2);
  pcfg.lease_renew = sim::msec(800);
  exp::ShardControlPlane plane(world, pcfg,
                               simulator.rng().split(0x74657374));
  plane.start(t0);

  // Both homes (nodes 0 and 4) die at +3 s; every granter's grants from
  // both shards lapse by +5 s, making both shards suspect fleet-wide.
  simulator.call_after(sim::sec(3), [&world, &plane] {
    world.network().fail_node(plane.home_of(0));
    world.network().fail_node(plane.home_of(1));
  });

  core::ServiceRequest request;
  request.app = 42;
  request.source = 1;
  request.destination = 2;
  request.substreams.push_back({{world.service_names().front()}, 50.0});

  sim::SimTime rejected_at = 0;
  std::string error;
  simulator.call_after(sim::sec(6), [&] {
    plane.submit(request, 0, t0 + sim::sec(30),
                 [&](const core::SubmitOutcome& outcome) {
                   EXPECT_FALSE(outcome.compose.admitted);
                   rejected_at = simulator.now();
                   error = outcome.compose.error;
                 });
  });
  simulator.run_until(t0 + sim::sec(20));

  ASSERT_GT(rejected_at, 0) << "submission never resolved";
  EXPECT_NE(error.find("suspect"), std::string::npos) << error;
  // Bounded linear backoff (1 s + 2 s), well under one deploy timeout.
  const auto elapsed = rejected_at - (t0 + sim::sec(6));
  EXPECT_LE(elapsed, sim::msec(3500))
      << "rejection took " << elapsed << " us";
  EXPECT_GT(world.metrics().counter_total("shard.submit_retries"), 0);
}

}  // namespace
}  // namespace rasc
