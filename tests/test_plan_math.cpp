// Rate normalization math: wire rates, per-stage gains with rate ratios
// and size factors, capacity translation, and plan construction.
#include "core/plan_math.hpp"

#include <gtest/gtest.h>

#include "core/composer.hpp"

namespace rasc::core {
namespace {

runtime::ServiceCatalog catalog_with_ratios() {
  runtime::ServiceCatalog c;
  c.add({"identity", sim::msec(1), 1.0, 1.0});
  c.add({"downsample", sim::msec(1), 0.5, 1.0});
  c.add({"shrink", sim::msec(1), 1.0, 0.5});
  c.add({"both", sim::msec(1), 2.0, 0.25});
  return c;
}

TEST(WireMath, KbpsFormulas) {
  // 10 ups of 1202-byte units = 1250 wire bytes = 10 kbit each.
  EXPECT_DOUBLE_EQ(wire_kbps(10.0, 1202.0), 100.0);
  EXPECT_DOUBLE_EQ(payload_kbps(10.0, 1250.0), 100.0);
}

TEST(SubstreamMath, IdentityChain) {
  const auto cat = catalog_with_ratios();
  Substream sub{{"identity", "identity"}, 100.0};
  SubstreamMath math(sub, cat, 1250);
  EXPECT_EQ(math.num_stages(), 2);
  EXPECT_DOUBLE_EQ(math.in_unit_bytes(0), 1250.0);
  EXPECT_DOUBLE_EQ(math.in_unit_bytes(2), 1250.0);
  EXPECT_DOUBLE_EQ(math.in_units_per_delivered(0), 1.0);
  // 100 kbps of 1250-byte units = 10 ups delivered.
  EXPECT_DOUBLE_EQ(math.delivered_ups(100.0), 10.0);
  EXPECT_DOUBLE_EQ(math.in_ups(0, 10.0), 10.0);
}

TEST(SubstreamMath, DownsamplerDoublesUpstreamRate) {
  const auto cat = catalog_with_ratios();
  Substream sub{{"downsample"}, 100.0};
  SubstreamMath math(sub, cat, 1250);
  // One delivered unit needs 2 units entering the downsampler.
  EXPECT_DOUBLE_EQ(math.in_units_per_delivered(0), 2.0);
  EXPECT_DOUBLE_EQ(math.in_units_per_delivered(1), 1.0);
  EXPECT_DOUBLE_EQ(math.in_ups(0, 10.0), 20.0);
}

TEST(SubstreamMath, SizeFactorChangesBytesNotUnits) {
  const auto cat = catalog_with_ratios();
  Substream sub{{"shrink"}, 100.0};
  SubstreamMath math(sub, cat, 1000);
  EXPECT_DOUBLE_EQ(math.in_unit_bytes(0), 1000.0);
  EXPECT_DOUBLE_EQ(math.in_unit_bytes(1), 500.0);
  EXPECT_DOUBLE_EQ(math.in_units_per_delivered(0), 1.0);
  // Delivered units are 500 B: 100 kbps -> 25 ups delivered.
  EXPECT_DOUBLE_EQ(math.delivered_ups(100.0), 25.0);
}

TEST(SubstreamMath, ChainedGains) {
  const auto cat = catalog_with_ratios();
  Substream sub{{"downsample", "both"}, 100.0};
  SubstreamMath math(sub, cat, 1000);
  // Sizes: 1000 -> 1000 (downsample keeps size) -> 250 ("both" quarters).
  EXPECT_DOUBLE_EQ(math.in_unit_bytes(2), 250.0);
  // Units per delivered: stage1 ("both", R=2): 0.5; stage0: 0.5/0.5 = 1.
  EXPECT_DOUBLE_EQ(math.in_units_per_delivered(1), 0.5);
  EXPECT_DOUBLE_EQ(math.in_units_per_delivered(0), 1.0);
}

TEST(SubstreamMath, WireRatesScaleLinearly) {
  const auto cat = catalog_with_ratios();
  Substream sub{{"identity"}, 100.0};
  SubstreamMath math(sub, cat, 1202);
  EXPECT_DOUBLE_EQ(math.wire_in_kbps(0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(math.wire_out_kbps(0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(math.wire_in_kbps(0, 5.0), 50.0);
}

TEST(SubstreamMath, MaxDeliveredUpsRespectsBothDirections) {
  const auto cat = catalog_with_ratios();
  Substream sub{{"identity"}, 100.0};
  SubstreamMath math(sub, cat, 1202);  // 10 wire kbps per ups
  // in limits: 100 kbps -> 10 ups; out limits: 50 kbps -> 5 ups.
  EXPECT_DOUBLE_EQ(math.max_delivered_ups(0, 100.0, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(math.max_delivered_ups(0, 40.0, 500.0), 4.0);
  EXPECT_DOUBLE_EQ(math.max_delivered_ups(0, 0.0, 500.0), 0.0);
}

TEST(BuildAppPlan, ConvertsDeliveredSharesToInputRates) {
  const auto cat = catalog_with_ratios();
  ServiceRequest req;
  req.app = 9;
  req.source = 0;
  req.destination = 3;
  req.unit_bytes = 1000;
  req.substreams = {{{"downsample"}, 100.0}};

  // One stage, split across nodes 1 and 2 in delivered ups.
  std::vector<std::vector<std::vector<runtime::Placement>>> shares = {
      {{{1, 8.0}, {2, 4.5}}}};
  const auto plan = build_app_plan(req, cat, shares);
  EXPECT_EQ(plan.app, 9);
  ASSERT_EQ(plan.substreams.size(), 1u);
  const auto& sub = plan.substreams[0];
  // 100 kbps of 1000-byte delivered units = 12.5 delivered ups.
  EXPECT_DOUBLE_EQ(sub.rate_units_per_sec, 12.5);
  ASSERT_EQ(sub.stages.size(), 1u);
  // Input rates double the delivered shares (R = 0.5).
  EXPECT_DOUBLE_EQ(sub.stages[0].placements[0].rate_units_per_sec, 16.0);
  EXPECT_DOUBLE_EQ(sub.stages[0].placements[1].rate_units_per_sec, 9.0);
  EXPECT_EQ(plan.component_count(), 2u);
}

TEST(ResidualTrackerTest, ConsumeAndClamp) {
  ComposeInput input;
  monitor::NodeStats s;
  s.node = 1;
  s.capacity_in_kbps = 1000;
  s.capacity_out_kbps = 800;
  input.providers["svc"] = {s};
  ResidualTracker tracker(input, /*headroom=*/1.0);
  EXPECT_DOUBLE_EQ(tracker.avail_in_kbps(1), 1000.0);
  tracker.consume(1, 400, 900);
  EXPECT_DOUBLE_EQ(tracker.avail_in_kbps(1), 600.0);
  EXPECT_DOUBLE_EQ(tracker.avail_out_kbps(1), 0.0);  // clamped
  // Unknown nodes have no capacity and full drop cost.
  EXPECT_DOUBLE_EQ(tracker.avail_in_kbps(42), 0.0);
  EXPECT_DOUBLE_EQ(tracker.drop_ratio(42), 1.0);
}

TEST(ResidualTrackerTest, DefaultHeadroomLeavesMargin) {
  ComposeInput input;
  monitor::NodeStats s;
  s.node = 1;
  s.capacity_in_kbps = 1000;
  s.capacity_out_kbps = 1000;
  input.providers["svc"] = {s};
  ResidualTracker tracker(input);
  EXPECT_DOUBLE_EQ(tracker.avail_in_kbps(1),
                   1000.0 * ResidualTracker::kDefaultHeadroom);
}

TEST(RequestModel, ValidationAndHelpers) {
  ServiceRequest req;
  EXPECT_FALSE(req.validate().empty());
  req.source = 0;
  req.destination = 1;
  req.unit_bytes = 100;
  req.substreams = {{{"a", "b"}, 50.0}, {{"b", "c"}, 70.0}};
  EXPECT_TRUE(req.validate().empty());
  EXPECT_EQ(req.distinct_services(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_DOUBLE_EQ(req.total_rate_kbps(), 120.0);

  req.substreams[0].rate_kbps = 0;
  EXPECT_FALSE(req.validate().empty());
  req.substreams[0].rate_kbps = 10;
  req.substreams[1].services.clear();
  EXPECT_FALSE(req.validate().empty());
}

}  // namespace
}  // namespace rasc::core
