// Welford accumulator and reservoir percentile correctness, including the
// parallel merge identity used by the sweep runner.
#include "util/summary_stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace rasc::util {
namespace {

TEST(SummaryStats, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(SummaryStats, KnownValues) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum((x-5)^2) = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, SingleSampleVarianceZero) {
  SummaryStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(SummaryStats, MergeMatchesSequential) {
  Xoshiro256 rng(1);
  SummaryStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3, 2);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(SummaryStats, MergeWithEmpty) {
  SummaryStats a, empty;
  a.add(1);
  a.add(2);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(Reservoir, SmallStreamExactPercentiles) {
  Reservoir r;
  for (int i = 1; i <= 100; ++i) r.add(i);
  EXPECT_NEAR(r.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(r.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(r.percentile(0.5), 50.5, 1.0);
}

TEST(Reservoir, LargeStreamApproximation) {
  Reservoir r(2048);
  for (int i = 0; i < 100000; ++i) r.add(double(i % 1000));
  EXPECT_NEAR(r.percentile(0.5), 500.0, 50.0);
  EXPECT_EQ(r.seen(), 100000u);
}

TEST(Reservoir, EmptyReturnsZero) {
  Reservoir r;
  EXPECT_EQ(r.percentile(0.5), 0.0);
}

}  // namespace
}  // namespace rasc::util
