// Pastry overlay end-to-end inside the simulator: join convergence,
// routing correctness (delivery at the numerically closest node), hop
// bounds, DHT put/get, replication, and the service registry.
#include "overlay/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "overlay/registry.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc::overlay {
namespace {

struct AppMsg final : sim::Message {
  const char* kind() const override { return "test.app"; }
  int tag = 0;
};

struct Fixture {
  explicit Fixture(std::size_t n, std::uint64_t seed = 1)
      : simulator(seed),
        network(simulator, sim::make_uniform_topology(n, 10000.0,
                                                      sim::msec(5))),
        overlay(build_overlay(simulator, network, n)) {}

  sim::Simulator simulator;
  sim::Network network;
  Overlay overlay;

  /// Index of the node whose id is numerically closest to `key`.
  std::size_t closest_to(const NodeId128& key) const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < overlay.size(); ++i) {
      if (overlay.at(i).id().closer_to(key, overlay.at(best).id())) {
        best = i;
      }
    }
    return best;
  }
};

class OverlaySize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OverlaySize, AllNodesReady) {
  Fixture f(GetParam());
  for (std::size_t i = 0; i < f.overlay.size(); ++i) {
    EXPECT_TRUE(f.overlay.at(i).ready()) << "node " << i;
  }
}

TEST_P(OverlaySize, RoutingDeliversAtNumericallyClosestNode) {
  Fixture f(GetParam());
  const std::size_t n = f.overlay.size();
  int delivered_at = -1;
  for (std::size_t i = 0; i < n; ++i) {
    f.overlay.at(i).set_deliver_handler(
        [&delivered_at, i](const NodeId128&, const sim::MessagePtr&,
                           const PeerRef&, int) {
          delivered_at = int(i);
        });
  }
  // Route 20 random keys from random origins.
  auto rng = f.simulator.rng().split(99);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId128 key =
        NodeId128::hash_of("key-" + std::to_string(trial));
    const auto origin = std::size_t(
        rng.uniform_int(0, std::int64_t(n) - 1));
    delivered_at = -1;
    f.overlay.at(origin).route(key, std::make_shared<AppMsg>(), 16);
    f.simulator.run_until(f.simulator.now() + sim::sec(2));
    ASSERT_NE(delivered_at, -1) << "key never delivered";
    EXPECT_EQ(std::size_t(delivered_at), f.closest_to(key))
        << "key " << key.to_hex() << " landed on the wrong root";
  }
}

TEST_P(OverlaySize, HopCountIsLogarithmic) {
  Fixture f(GetParam());
  const std::size_t n = f.overlay.size();
  int max_hops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    f.overlay.at(i).set_deliver_handler(
        [&max_hops](const NodeId128&, const sim::MessagePtr&,
                    const PeerRef&, int hops) {
          max_hops = std::max(max_hops, hops);
        });
  }
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId128 key = NodeId128::hash_of("hop-" + std::to_string(trial));
    f.overlay.at(trial % n).route(key, std::make_shared<AppMsg>(), 16);
  }
  f.simulator.run_until(f.simulator.now() + sim::sec(5));
  // Pastry bound: ~log_16(n) + leaf-set hop; generous ceiling.
  EXPECT_LE(max_hops, 2 + int(std::log2(double(n)) / 4 + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, OverlaySize,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(OverlayDht, PutThenGetRoundTrips) {
  Fixture f(16);
  const auto key = NodeId128::hash_of("some-object");
  bool put_ok = false;
  f.overlay.at(3).dht_put(key, "value-1", true,
                          [&put_ok](bool ok) { put_ok = ok; });
  f.simulator.run_until(f.simulator.now() + sim::sec(2));
  ASSERT_TRUE(put_ok);

  bool found = false;
  std::vector<std::string> values;
  f.overlay.at(9).dht_get(key, [&](bool ok, std::vector<std::string> v) {
    found = ok;
    values = std::move(v);
  });
  f.simulator.run_until(f.simulator.now() + sim::sec(2));
  ASSERT_TRUE(found);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "value-1");
}

TEST(OverlayDht, AppendAccumulatesAndDeduplicates) {
  Fixture f(8);
  const auto key = NodeId128::hash_of("list");
  int acks = 0;
  for (const char* v : {"a", "b", "a", "c"}) {
    f.overlay.at(0).dht_put(key, v, true, [&acks](bool) { ++acks; });
    f.simulator.run_until(f.simulator.now() + sim::msec(500));
  }
  EXPECT_EQ(acks, 4);
  std::vector<std::string> values;
  f.overlay.at(5).dht_get(key, [&](bool, std::vector<std::string> v) {
    values = std::move(v);
  });
  f.simulator.run_until(f.simulator.now() + sim::sec(1));
  EXPECT_EQ(values.size(), 3u);  // "a" deduplicated
}

TEST(OverlayDht, ReplaceSemantics) {
  Fixture f(8);
  const auto key = NodeId128::hash_of("replace-me");
  f.overlay.at(0).dht_put(key, "old", false, nullptr);
  f.simulator.run_until(f.simulator.now() + sim::msec(500));
  f.overlay.at(0).dht_put(key, "new", false, nullptr);
  f.simulator.run_until(f.simulator.now() + sim::msec(500));
  std::vector<std::string> values;
  f.overlay.at(1).dht_get(key, [&](bool, std::vector<std::string> v) {
    values = std::move(v);
  });
  f.simulator.run_until(f.simulator.now() + sim::sec(1));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "new");
}

TEST(OverlayDht, MissingKeyReportsNotFound) {
  Fixture f(8);
  bool called = false, found = true;
  f.overlay.at(2).dht_get(NodeId128::hash_of("nothing-here"),
                          [&](bool ok, std::vector<std::string>) {
                            called = true;
                            found = ok;
                          });
  f.simulator.run_until(f.simulator.now() + sim::sec(1));
  EXPECT_TRUE(called);
  EXPECT_FALSE(found);
}

TEST(OverlayDht, ValuesSurviveRootFailureViaReplication) {
  Fixture f(16);
  const auto key = NodeId128::hash_of("replicated-object");
  f.overlay.at(0).dht_put(key, "precious", true, nullptr);
  f.simulator.run_until(f.simulator.now() + sim::sec(1));

  // Kill the root and purge it from every node's state (the failure
  // detector's job, done manually here).
  const auto root = f.closest_to(key);
  f.network.set_node_up(sim::NodeIndex(root), false);
  for (std::size_t i = 0; i < f.overlay.size(); ++i) {
    if (i != root) f.overlay.at(i).purge_peer(sim::NodeIndex(root));
  }

  const std::size_t asker = (root + 1) % f.overlay.size();
  bool found = false;
  std::vector<std::string> values;
  f.overlay.at(asker).dht_get(key, [&](bool ok, std::vector<std::string> v) {
    found = ok;
    values = std::move(v);
  });
  f.simulator.run_until(f.simulator.now() + sim::sec(3));
  ASSERT_TRUE(found) << "replica did not answer after root failure";
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "precious");
}

TEST(ServiceRegistry, RegisterAndLookupProviders) {
  Fixture f(16);
  ServiceRegistry reg0(f.overlay.at(0));
  ServiceRegistry reg5(f.overlay.at(5));
  reg0.register_provider("transcode", 3, nullptr);
  reg0.register_provider("transcode", 7, nullptr);
  f.simulator.run_until(f.simulator.now() + sim::sec(1));

  bool found = false;
  std::vector<sim::NodeIndex> providers;
  reg5.lookup("transcode", [&](bool ok, std::vector<sim::NodeIndex> p) {
    found = ok;
    providers = std::move(p);
  });
  f.simulator.run_until(f.simulator.now() + sim::sec(1));
  ASSERT_TRUE(found);
  std::sort(providers.begin(), providers.end());
  EXPECT_EQ(providers, (std::vector<sim::NodeIndex>{3, 7}));
}

TEST(ServiceRegistry, UnknownServiceNotFound) {
  Fixture f(8);
  ServiceRegistry reg(f.overlay.at(1));
  bool called = false, found = true;
  reg.lookup("never-registered", [&](bool ok, std::vector<sim::NodeIndex>) {
    called = true;
    found = ok;
  });
  f.simulator.run_until(f.simulator.now() + sim::sec(1));
  EXPECT_TRUE(called);
  EXPECT_FALSE(found);
}

TEST(OverlayIntrospection, NextHopMakesProgress) {
  Fixture f(32);
  const auto key = NodeId128::hash_of("progress-check");
  for (std::size_t i = 0; i < f.overlay.size(); ++i) {
    const auto& node = f.overlay.at(i);
    const auto hop = node.next_hop(key);
    if (hop.addr == node.addr()) continue;  // claims to be root
    // The hop must be strictly closer to the key (numerically) or share a
    // longer prefix — Pastry's progress guarantee.
    const bool closer = hop.id.closer_to(key, node.id());
    const bool longer_prefix =
        hop.id.shared_prefix_len(key) > node.id().shared_prefix_len(key);
    EXPECT_TRUE(closer || longer_prefix) << "node " << i;
  }
}

}  // namespace
}  // namespace rasc::overlay

namespace rasc::overlay {
namespace {

class LeafConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeafConvergence, EveryNodeKnowsItsTrueRingNeighbors) {
  // After build (joins + maintenance rounds), each node's leaf set must
  // contain its kHalf numerically nearest peers on each side — the
  // invariant Pastry's root-selection correctness rests on.
  Fixture f(GetParam());
  const std::size_t n = f.overlay.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& node = f.overlay.at(i);
    // Compute the true clockwise/counterclockwise neighbors.
    std::vector<std::pair<NodeId128, std::size_t>> cw, ccw;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const auto off_cw = f.overlay.at(j).id().ring_sub(node.id());
      const auto off_ccw = node.id().ring_sub(f.overlay.at(j).id());
      if (off_cw <= off_ccw) {
        cw.emplace_back(off_cw, j);
      } else {
        ccw.emplace_back(off_ccw, j);
      }
    }
    std::sort(cw.begin(), cw.end());
    std::sort(ccw.begin(), ccw.end());
    const std::size_t want_cw = std::min(LeafSet::kHalf, cw.size());
    for (std::size_t k = 0; k < want_cw; ++k) {
      EXPECT_TRUE(node.leaf_set().contains(sim::NodeIndex(cw[k].second)))
          << "node " << i << " missing cw neighbor " << cw[k].second;
    }
    const std::size_t want_ccw = std::min(LeafSet::kHalf, ccw.size());
    for (std::size_t k = 0; k < want_ccw; ++k) {
      EXPECT_TRUE(node.leaf_set().contains(sim::NodeIndex(ccw[k].second)))
          << "node " << i << " missing ccw neighbor " << ccw[k].second;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LeafConvergence,
                         ::testing::Values(4, 8, 16, 32, 48));

TEST(OverlayChurn, LateJoinIntegratesWhileTrafficFlows) {
  // Build 8 nodes on a 10-host network, start background routed traffic,
  // then join a 9th node: it must become ready and routable.
  sim::Simulator simulator(3);
  sim::Network network(simulator,
                       sim::make_uniform_topology(10, 10000.0,
                                                  sim::msec(5)));
  auto overlay = build_overlay(simulator, network, 8);

  // Background chatter: periodic DHT puts.
  const auto key = NodeId128::hash_of("churn-key");
  for (int i = 0; i < 20; ++i) {
    simulator.call_after(sim::msec(100 * i), [&overlay, key, i] {
      overlay.at(std::size_t(i) % 8).dht_put(
          key, "v" + std::to_string(i), true, nullptr);
    });
  }

  PastryNode late(simulator, network, 8,
                  NodeId128::hash_of("late-joiner"));
  network.set_handler(8, [&late](const sim::Packet& p) {
    late.handle_packet(p);
  });
  bool joined = false;
  late.join_via(3, [&joined](bool ok) { joined = ok; });
  simulator.run_until(simulator.now() + sim::sec(5));
  ASSERT_TRUE(joined);
  EXPECT_TRUE(late.ready());

  // The newcomer can resolve DHT state.
  bool found = false;
  late.dht_get(key, [&found](bool ok, std::vector<std::string>) {
    found = ok;
  });
  simulator.run_until(simulator.now() + sim::sec(2));
  EXPECT_TRUE(found);
}

// Regression for the ~250-node bootstrap ceiling: joins seeded from a
// stale root left dozens of nodes with leaf sets pointing at the wrong
// ring neighborhood, and the push-only leaf exchange could never repair
// them (their true neighbors did not know they existed). The neighbor
// probe + exchange-on-new-leaf repair must converge every leaf set to
// ground truth on a heterogeneous low-bandwidth topology, and a
// World-style staggered registration wave must complete without a
// single put failure.
TEST(OverlayScale, FourHundredNodeBootstrapConverges) {
  const std::size_t n = 400;
  sim::Simulator simulator(1);
  auto topo_rng = simulator.rng().split(0x746f706f);
  sim::PlanetLabParams params;
  sim::Network network(
      simulator, sim::make_planetlab_like(n, topo_rng, params));
  auto overlay = build_overlay(simulator, network, n);

  // Every leaf set must hold the true 4 closest peers per side.
  std::vector<NodeId128> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = overlay.at(i).id();
  for (std::size_t i = 0; i < n; ++i) {
    const auto self = ids[i];
    std::vector<NodeId128> cw, ccw;
    for (const auto& id : ids) {
      if (!(id == self)) cw.push_back(id);
    }
    ccw = cw;
    std::sort(cw.begin(), cw.end(), [&](const auto& a, const auto& b) {
      return a.ring_sub(self) < b.ring_sub(self);
    });
    std::sort(ccw.begin(), ccw.end(), [&](const auto& a, const auto& b) {
      return self.ring_sub(a) < self.ring_sub(b);
    });
    const auto leaves = overlay.at(i).leaf_set().all();
    auto have = [&leaves](const NodeId128& id) {
      return std::any_of(leaves.begin(), leaves.end(),
                         [&id](const PeerRef& p) { return p.id == id; });
    };
    for (std::size_t k = 0; k < LeafSet::kHalf && k < cw.size(); ++k) {
      ASSERT_TRUE(have(cw[k])) << "node " << i << " missing cw leaf " << k;
    }
    for (std::size_t k = 0; k < LeafSet::kHalf && k < ccw.size(); ++k) {
      ASSERT_TRUE(have(ccw[k])) << "node " << i << " missing ccw leaf " << k;
    }
  }

  // World-style registration pressure: 5 staggered puts per node spread
  // over 10 hot keys; the ceiling showed up as routed puts looping past
  // kMaxHops and timing out.
  std::vector<NodeId128> keys;
  for (int s = 0; s < 10; ++s) {
    keys.push_back(NodeId128::hash_of("svc" + std::to_string(s)));
  }
  std::size_t outstanding = 0, failures = 0;
  sim::SimDuration offset = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (int s = 0; s < 5; ++s) {
      ++outstanding;
      offset += sim::msec(15);
      auto* node = &overlay.at(i);
      const auto key = keys[(i + std::size_t(s)) % keys.size()];
      simulator.call_after(offset, [node, key, i, &outstanding, &failures] {
        node->dht_put(key, "v" + std::to_string(i), true,
                      [&outstanding, &failures](bool ok) {
                        if (!ok) ++failures;
                        --outstanding;
                      });
      });
    }
  }
  while (outstanding > 0 && simulator.step()) {
  }
  EXPECT_EQ(outstanding, 0u);
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(network.packets_dropped(), 0);
}

TEST(OverlayChurn, PurgedPeerIsForgottenEverywhere) {
  Fixture f(16);
  const sim::NodeIndex victim = 5;
  for (std::size_t i = 0; i < f.overlay.size(); ++i) {
    if (i == 5) continue;
    f.overlay.at(i).purge_peer(victim);
    EXPECT_FALSE(f.overlay.at(i).leaf_set().contains(victim));
    for (const auto& p : f.overlay.at(i).routing_table().all()) {
      EXPECT_NE(p.addr, victim);
    }
  }
}

}  // namespace
}  // namespace rasc::overlay
