// run_experiment: smoke runs for every algorithm on a small scenario,
// determinism, and metric accounting sanity.
#include "exp/runner.hpp"

#include <gtest/gtest.h>

namespace rasc::exp {
namespace {

RunConfig small_config(const std::string& algorithm) {
  RunConfig cfg;
  cfg.world.nodes = 12;
  cfg.world.num_services = 6;
  cfg.world.services_per_node = 3;
  cfg.world.seed = 9;
  cfg.world.net.bw_min_kbps = 3000;
  cfg.world.net.bw_max_kbps = 6000;
  cfg.workload.num_requests = 8;
  cfg.workload.avg_rate_kbps = 100;
  cfg.algorithm = algorithm;
  cfg.submit_gap = sim::msec(500);
  cfg.steady_duration = sim::sec(8);
  return cfg;
}

class RunnerAlgorithms : public ::testing::TestWithParam<const char*> {};

TEST_P(RunnerAlgorithms, SmokeRunProducesSaneMetrics) {
  const auto metrics = run_experiment(small_config(GetParam()));
  EXPECT_EQ(metrics.requests, 8);
  EXPECT_GT(metrics.composed, 0) << "nothing was admitted";
  EXPECT_GT(metrics.emitted, 0);
  EXPECT_GT(metrics.delivered, 0);
  EXPECT_LE(metrics.delivered, metrics.emitted);
  EXPECT_LE(metrics.timely, metrics.delivered);
  EXPECT_LE(metrics.out_of_order, metrics.delivered);
  EXPECT_GE(metrics.delivered_fraction(), 0.3);
  EXPECT_GT(metrics.mean_delay_ms(), 0.0);
  EXPECT_GE(metrics.components, metrics.composed);  // >= 1 per request
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RunnerAlgorithms,
                         ::testing::Values("mincost", "greedy", "random"));

TEST(Runner, DeterministicGivenConfig) {
  const auto a = run_experiment(small_config("mincost"));
  const auto b = run_experiment(small_config("mincost"));
  EXPECT_EQ(a.composed, b.composed);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.timely, b.timely);
  EXPECT_EQ(a.out_of_order, b.out_of_order);
  EXPECT_DOUBLE_EQ(a.mean_delay_ms(), b.mean_delay_ms());
}

TEST(Runner, DifferentSeedsDifferentOutcomes) {
  auto cfg = small_config("mincost");
  const auto a = run_experiment(cfg);
  cfg.world.seed = 10;
  const auto b = run_experiment(cfg);
  // Different topology & workload: byte-identical results would indicate
  // the seed is ignored.
  EXPECT_NE(a.emitted, b.emitted);
}

TEST(Runner, UnknownAlgorithmThrows) {
  auto cfg = small_config("mincost");
  cfg.algorithm = "quantum";
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(Runner, AccountingBalances) {
  const auto m = run_experiment(small_config("mincost"));
  // Every emitted unit is delivered, dropped somewhere, or in flight at
  // the end (bounded by a small residue thanks to the drain window).
  const auto accounted = m.delivered + m.drops_queue_full +
                         m.drops_deadline + m.unroutable;
  EXPECT_LE(accounted, m.emitted * 2);  // ratio>1 services can add units
  EXPECT_GE(double(accounted), double(m.emitted) * 0.9);
}

}  // namespace
}  // namespace rasc::exp
