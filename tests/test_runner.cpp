// run_experiment: smoke runs for every algorithm on a small scenario,
// determinism, and metric accounting sanity.
#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rasc::exp {
namespace {

RunConfig small_config(const std::string& algorithm) {
  RunConfig cfg;
  cfg.world.nodes = 12;
  cfg.world.num_services = 6;
  cfg.world.services_per_node = 3;
  cfg.world.seed = 9;
  cfg.world.net.bw_min_kbps = 3000;
  cfg.world.net.bw_max_kbps = 6000;
  cfg.workload.num_requests = 8;
  cfg.workload.avg_rate_kbps = 100;
  cfg.algorithm = algorithm;
  cfg.submit_gap = sim::msec(500);
  cfg.steady_duration = sim::sec(8);
  return cfg;
}

class RunnerAlgorithms : public ::testing::TestWithParam<const char*> {};

TEST_P(RunnerAlgorithms, SmokeRunProducesSaneMetrics) {
  const auto metrics = run_experiment(small_config(GetParam()));
  EXPECT_EQ(metrics.requests, 8);
  EXPECT_GT(metrics.composed, 0) << "nothing was admitted";
  EXPECT_GT(metrics.emitted, 0);
  EXPECT_GT(metrics.delivered, 0);
  EXPECT_LE(metrics.delivered, metrics.emitted);
  EXPECT_LE(metrics.timely, metrics.delivered);
  EXPECT_LE(metrics.out_of_order, metrics.delivered);
  EXPECT_GE(metrics.delivered_fraction(), 0.3);
  EXPECT_GT(metrics.mean_delay_ms(), 0.0);
  EXPECT_GE(metrics.components, metrics.composed);  // >= 1 per request
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RunnerAlgorithms,
                         ::testing::Values("mincost", "greedy", "random"));

TEST(Runner, DeterministicGivenConfig) {
  const auto a = run_experiment(small_config("mincost"));
  const auto b = run_experiment(small_config("mincost"));
  EXPECT_EQ(a.composed, b.composed);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.timely, b.timely);
  EXPECT_EQ(a.out_of_order, b.out_of_order);
  EXPECT_DOUBLE_EQ(a.mean_delay_ms(), b.mean_delay_ms());
}

TEST(Runner, DifferentSeedsDifferentOutcomes) {
  auto cfg = small_config("mincost");
  const auto a = run_experiment(cfg);
  cfg.world.seed = 10;
  const auto b = run_experiment(cfg);
  // Different topology & workload: byte-identical results would indicate
  // the seed is ignored.
  EXPECT_NE(a.emitted, b.emitted);
}

TEST(Runner, UnknownAlgorithmThrows) {
  auto cfg = small_config("mincost");
  cfg.algorithm = "quantum";
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

std::string snapshot_csv(const RunConfig& cfg, RunMetrics* metrics_out) {
  std::vector<obs::MetricRow> rows;
  const auto m = run_experiment(cfg, &rows);
  if (metrics_out != nullptr) *metrics_out = m;
  std::ostringstream out;
  obs::MetricRegistry::write_csv(rows, out);
  return out.str();
}

TEST(Runner, NoDeadlineIsByteInert) {
  // deadline_ms == 0: no LatencyModel, no predict.*/slo.* cell, and the
  // other predictive knobs must not perturb a single byte.
  auto cfg = small_config("mincost");
  RunMetrics m;
  const auto baseline = snapshot_csv(cfg, &m);
  EXPECT_EQ(baseline.find("predict."), std::string::npos);
  EXPECT_EQ(baseline.find("slo."), std::string::npos);
  EXPECT_EQ(m.slo_windows, 0);
  EXPECT_EQ(m.slo_windows_violated, 0);
  EXPECT_EQ(m.predict_triggers, 0);

  cfg.adapt_predictive = true;  // inert without a deadline
  cfg.slo_window = sim::msec(137);
  RunMetrics tweaked;
  EXPECT_EQ(snapshot_csv(cfg, &tweaked), baseline);
  EXPECT_EQ(tweaked.predict_triggers, 0);
}

TEST(Runner, DeadlineRunPredictsAndScoresWindows) {
  auto cfg = small_config("mincost");
  cfg.deadline_ms = 500;  // generous: the load fits comfortably
  RunMetrics m;
  const auto snap = snapshot_csv(cfg, &m);
  EXPECT_GT(m.composed, 0) << "a generous deadline must not reject";
  EXPECT_NE(snap.find("predict.latency_ms"), std::string::npos)
      << "admitted apps must export their predicted latency";
  EXPECT_NE(snap.find("slo.windows"), std::string::npos);
  EXPECT_GT(m.slo_windows, 0);
  EXPECT_LE(m.slo_windows_violated, m.slo_windows);
  // The deadline sits far above the small scenario's actual delays.
  EXPECT_LT(double(m.slo_windows_violated), 0.5 * double(m.slo_windows));

  // Same config replays byte-for-byte (the SLO probe and model are
  // deterministic).
  RunMetrics replay;
  EXPECT_EQ(snapshot_csv(cfg, &replay), snap);
  EXPECT_EQ(replay.slo_windows_violated, m.slo_windows_violated);
}

TEST(Runner, ImpossibleDeadlineRejectsEverything) {
  auto cfg = small_config("mincost");
  cfg.deadline_ms = 0.001;  // below any link's one-way latency
  const auto m = run_experiment(cfg);
  EXPECT_EQ(m.composed, 0);
  EXPECT_EQ(m.emitted, 0);
}

TEST(Runner, AccountingBalances) {
  const auto m = run_experiment(small_config("mincost"));
  // Every emitted unit is delivered, dropped somewhere, or in flight at
  // the end (bounded by a small residue thanks to the drain window).
  const auto accounted = m.delivered + m.drops_queue_full +
                         m.drops_deadline + m.unroutable;
  EXPECT_LE(accounted, m.emitted * 2);  // ratio>1 services can add units
  EXPECT_GE(double(accounted), double(m.emitted) * 0.9);
}

}  // namespace
}  // namespace rasc::exp
