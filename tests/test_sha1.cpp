// SHA-1 against FIPS 180-1 / RFC 3174 known-answer vectors, plus
// incremental-update equivalence.
#include "util/sha1.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rasc::util {
namespace {

std::string hex_of(std::string_view s) { return to_hex(sha1(s)); }

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_of(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex_of("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Rfc3174TestCase2) {
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(hex_of("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64-byte input exercises the padding-overflow path (padding needs a
  // second block).
  const std::string block(64, 'x');
  Sha1 h;
  h.update(block);
  const auto one_shot = sha1(block);
  EXPECT_EQ(to_hex(h.finish()), to_hex(one_shot));
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg =
      "RASC composes stream processing applications dynamically";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(to_hex(h.finish()), hex_of(msg)) << "split at " << split;
  }
}

TEST(Sha1, ResetReusesCleanState) {
  Sha1 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  EXPECT_NE(hex_of("service:svc0"), hex_of("service:svc1"));
  EXPECT_NE(hex_of("a"), hex_of("b"));
}

}  // namespace
}  // namespace rasc::util
