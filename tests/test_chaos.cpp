// Chaos subsystem: scenario parsing, deterministic fault-timeline
// expansion, injection through the network hooks, drop-reason taxonomy
// under injected faults, SLO checking (including the negative control:
// a run with recovery disabled must FAIL the recovery SLO), and the
// tier-1 replay guarantee — same (scenario, seed) twice, byte-identical
// metrics snapshots and timelines.
#include "chaos/injector.hpp"
#include "chaos/scenario.hpp"
#include "chaos/slo.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/mincost_composer.hpp"
#include "exp/runner.hpp"
#include "exp/world.hpp"

namespace rasc::chaos {
namespace {

// ---------------------------------------------------------------------
// Scenario spec + parser

TEST(Scenario, LibraryNamesAllResolve) {
  const auto names = scenario_names();
  ASSERT_GE(names.size(), 7u);
  for (const auto& name : names) {
    const auto sc = make_scenario(name);
    EXPECT_EQ(sc.name, name);
  }
  EXPECT_TRUE(make_scenario("none").empty());
  EXPECT_EQ(make_scenario("single-crash").faults.size(), 1u);
  EXPECT_EQ(make_scenario("multi-crash").faults.at(0).count, 3);
}

TEST(Scenario, ParseAppliesOverrides) {
  const auto sc = parse_scenario("churn:period=4s,repeats=3,seed=9");
  EXPECT_EQ(sc.seed, 9u);
  ASSERT_FALSE(sc.faults.empty());
  EXPECT_EQ(sc.faults[0].period, sim::sec(4));
  EXPECT_EQ(sc.faults[0].repeats, 3);

  const auto explicit_crash = parse_scenario("single-crash:node=3,at=500ms");
  EXPECT_EQ(explicit_crash.faults.at(0).target.kind, TargetKind::kExplicit);
  EXPECT_EQ(explicit_crash.faults.at(0).target.node, 3);
  EXPECT_EQ(explicit_crash.faults.at(0).at, sim::msec(500));
}

TEST(Scenario, ParseRejectsBadSpecs) {
  EXPECT_THROW(parse_scenario("meteor-strike"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("single-crash:wat=1"), std::invalid_argument);
  EXPECT_THROW(parse_scenario("single-crash:at=3parsecs"),
               std::invalid_argument);
  // "none" has no faults to override (seed alone is allowed).
  EXPECT_THROW(parse_scenario("none:at=3s"), std::invalid_argument);
  EXPECT_EQ(parse_scenario("none:seed=5").seed, 5u);
}

TEST(Scenario, JsonExportMentionsEveryFault) {
  const auto sc = make_scenario("cascade");
  const auto json = to_json(sc);
  EXPECT_NE(json.find("\"cascade\""), std::string::npos);
  EXPECT_NE(json.find("bandwidth"), std::string::npos);
  EXPECT_NE(json.find("crash"), std::string::npos);
}

// ---------------------------------------------------------------------
// Injector: deterministic expansion and application

TEST(Injector, TimelineIsDeterministicAcrossInstances) {
  const auto sc = parse_scenario("multi-crash:seed=11");
  std::string jsons[2];
  for (int i = 0; i < 2; ++i) {
    sim::Simulator sim;
    sim::Network net(sim, sim::make_uniform_topology(8, 1000.0,
                                                     sim::msec(10)));
    Injector injector(sim, net, sc);
    injector.arm(0, sim::sec(60));
    jsons[i] = injector.timeline_json();
  }
  EXPECT_EQ(jsons[0], jsons[1]);
}

TEST(Injector, SeedSelectsDifferentVictims) {
  std::string jsons[2];
  const std::uint64_t seeds[2] = {11, 12};
  for (int i = 0; i < 2; ++i) {
    std::ostringstream spec;
    spec << "multi-crash:seed=" << seeds[i];
    sim::Simulator sim;
    sim::Network net(sim, sim::make_uniform_topology(8, 1000.0,
                                                     sim::msec(10)));
    Injector injector(sim, net, parse_scenario(spec.str()));
    injector.arm(0, sim::sec(60));
    jsons[i] = injector.timeline_json();
  }
  EXPECT_NE(jsons[0], jsons[1]);
}

TEST(Injector, ChurnCrashesAndRestoresNodes) {
  sim::Simulator sim;
  obs::MetricRegistry registry;
  sim::Network net(sim, sim::make_uniform_topology(6, 1000.0, sim::msec(10)),
                   &registry);
  int crashes_seen = 0, restores_seen = 0;
  Hooks hooks;
  hooks.on_crash = [&crashes_seen](sim::NodeIndex) { ++crashes_seen; };
  hooks.on_restore = [&restores_seen](sim::NodeIndex) { ++restores_seen; };
  Injector injector(sim, net, make_scenario("churn"), std::move(hooks),
                    &registry);
  injector.arm(0, sim::sec(60));
  // churn: 6 crash onsets with 3 s outages — 12 timeline entries.
  ASSERT_EQ(injector.timeline().size(), 12u);
  sim.run_all();
  EXPECT_EQ(injector.applied(), 12u);
  EXPECT_EQ(crashes_seen, 6);
  EXPECT_EQ(restores_seen, 6);
  EXPECT_EQ(registry.counter_total("chaos.crashes"), 6);
  EXPECT_EQ(registry.counter_total("chaos.restores"), 6);
  EXPECT_EQ(registry.counter_total("net.node_failures"), 6);
  EXPECT_EQ(registry.counter_total("net.node_restores"), 6);
  // Everyone is back up at the end.
  for (std::size_t n = 0; n < 6; ++n) {
    EXPECT_TRUE(net.node_up(sim::NodeIndex(n)));
  }
}

TEST(Injector, EntriesPastRunEndAreDropped) {
  sim::Simulator sim;
  sim::Network net(sim, sim::make_uniform_topology(4, 1000.0, sim::msec(10)));
  Injector injector(sim, net, make_scenario("single-crash"));
  injector.arm(0, sim::sec(5));  // crash is scheduled at 10 s
  EXPECT_TRUE(injector.timeline().empty());
}

TEST(Injector, ExplicitTargetOutsideTopologyThrows) {
  sim::Simulator sim;
  sim::Network net(sim, sim::make_uniform_topology(4, 1000.0, sim::msec(10)));
  Injector injector(sim, net, parse_scenario("single-crash:node=17"));
  EXPECT_THROW(injector.arm(0, sim::sec(60)), std::invalid_argument);
}

TEST(Injector, LowestBwTargetPicksStarvedLink) {
  sim::Simulator sim;
  auto topo = sim::make_uniform_topology(5, 1000.0, sim::msec(10));
  topo.nodes[3].bw_in_kbps = 50.0;  // clear bottleneck
  sim::Network net(sim, std::move(topo));
  Injector injector(sim, net, make_scenario("flapping-link"));
  injector.arm(0, sim::sec(60));
  ASSERT_FALSE(injector.timeline().empty());
  for (const auto& entry : injector.timeline()) {
    EXPECT_EQ(entry.node, 3);
  }
}

// ---------------------------------------------------------------------
// SLO parsing and checking

TEST(Slo, ParseSpecs) {
  const auto spec =
      parse_slo("delivered>=0.8,timely>=0.6,drops<=0.1,recovery<=10s");
  EXPECT_DOUBLE_EQ(spec.delivered_floor, 0.8);
  EXPECT_DOUBLE_EQ(spec.timely_floor, 0.6);
  EXPECT_DOUBLE_EQ(spec.drop_ceiling, 0.1);
  EXPECT_EQ(spec.max_recovery, sim::sec(10));
  EXPECT_TRUE(spec.any());
  EXPECT_FALSE(parse_slo("").any());
  EXPECT_THROW(parse_slo("delivered<=0.8"), std::invalid_argument);
  EXPECT_THROW(parse_slo("uptime>=1"), std::invalid_argument);
}

/// Drives a synthetic sink.delivered series: steady 100 units/sec, a
/// total outage at 10 s, and (optionally) a comeback at `resume`.
void drive_delivery(sim::Simulator& sim, obs::MetricRegistry& registry,
                    sim::SimTime end, sim::SimTime outage,
                    sim::SimTime resume) {
  auto& emitted = registry.counter("source.units_emitted");
  auto& delivered = registry.counter("sink.delivered");
  for (sim::SimTime t = 0; t < end; t += sim::msec(100)) {
    sim.call_at(t, [t, outage, resume, &emitted, &delivered] {
      emitted.add(10);
      if (t < outage || (resume > 0 && t >= resume)) delivered.add(10);
    });
  }
}

TEST(Slo, RecoveryBoundFailsWhenRateNeverReturns) {
  sim::Simulator sim;
  obs::MetricRegistry registry;
  SloSpec spec;
  spec.max_recovery = sim::sec(5);
  SloChecker checker(sim, registry, spec);
  drive_delivery(sim, registry, sim::sec(30), sim::sec(10), /*resume=*/0);
  checker.start(sim::sec(30));
  checker.note_fault(sim::sec(10));
  sim.run_until(sim::sec(30));
  const auto report = checker.finalize("synthetic");
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.recovery_us, -1);
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
}

TEST(Slo, RecoveryBoundPassesWhenRateReturns) {
  sim::Simulator sim;
  obs::MetricRegistry registry;
  SloSpec spec;
  spec.max_recovery = sim::sec(5);
  SloChecker checker(sim, registry, spec);
  drive_delivery(sim, registry, sim::sec(30), sim::sec(10),
                 /*resume=*/sim::sec(12));
  checker.start(sim::sec(30));
  checker.note_fault(sim::sec(10));
  sim.run_until(sim::sec(30));
  const auto report = checker.finalize("synthetic");
  EXPECT_TRUE(report.pass);
  EXPECT_GT(report.recovery_us, 0);
  EXPECT_LE(report.recovery_us, sim::sec(3));
  EXPECT_GT(report.prefault_rate, 50.0);
}

TEST(Slo, DeliveredFloorChecksFraction) {
  sim::Simulator sim;
  obs::MetricRegistry registry;
  registry.counter("source.units_emitted").add(1000);
  registry.counter("sink.delivered").add(600);
  SloSpec spec;
  spec.delivered_floor = 0.8;
  SloChecker checker(sim, registry, spec);
  checker.start(sim::sec(1));
  const auto report = checker.finalize("synthetic");
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_FALSE(report.pass);
  EXPECT_DOUBLE_EQ(report.checks[0].value, 0.6);
}

}  // namespace
}  // namespace rasc::chaos

// ---------------------------------------------------------------------
// Full-world chaos: injection against a live deployment

namespace rasc::chaos {
namespace {

exp::WorldConfig world_config() {
  exp::WorldConfig wc;
  wc.nodes = 16;
  wc.num_services = 6;
  wc.services_per_node = 4;
  wc.seed = 23;
  wc.net.bw_min_kbps = 1500;
  wc.net.bw_max_kbps = 4000;
  return wc;
}

core::ServiceRequest request_for(exp::World& world, runtime::AppId app) {
  core::ServiceRequest req;
  req.app = app;
  req.source = 0;
  req.destination = sim::NodeIndex(world.size() - 1);
  req.unit_bytes = 1250;
  req.substreams = {{{"svc0", "svc1"}, 150.0}};
  return req;
}

runtime::AppPlan submit_and_wait(exp::World& world, core::Composer& composer,
                                 const core::ServiceRequest& req,
                                 sim::SimTime stop) {
  runtime::AppPlan plan;
  bool admitted = false;
  world.host(std::size_t(req.source))
      .coordinator()
      .submit(req, composer, 0, stop,
              [&](const core::SubmitOutcome& o) {
                admitted = o.compose.admitted;
                plan = o.compose.plan;
              });
  auto& sim = world.simulator();
  sim.run_until(sim.now() + sim::sec(6));
  EXPECT_TRUE(admitted);
  return plan;
}

Hooks world_hooks(exp::World& world) {
  Hooks hooks;
  hooks.on_crash = [&world](sim::NodeIndex victim) {
    for (std::size_t n = 0; n < world.size(); ++n) {
      if (sim::NodeIndex(n) != victim) {
        world.overlay().at(n).purge_peer(victim);
      }
    }
  };
  return hooks;
}

/// One supervised-or-not single-crash run against the app's actual
/// stage-0 host; returns the SLO report.
SloChecker::Report crash_run(bool supervised) {
  exp::World world(world_config());
  auto& sim = world.simulator();
  core::MinCostComposer composer;
  const auto req = request_for(world, 1);
  const sim::SimTime stop = sim.now() + sim::sec(80);
  const auto plan = submit_and_wait(world, composer, req, stop);

  if (supervised) {
    world.host(0).supervisor().watch(req, plan, stop, {});
  }

  SloSpec spec;
  spec.max_recovery = sim::sec(30);
  SloChecker checker(sim, world.metrics(), spec);
  checker.start(stop);

  // Crash the node hosting the first component, 4 s from now.
  Scenario scenario;
  scenario.name = "stage0-crash";
  Fault fault;
  fault.kind = FaultKind::kCrash;
  fault.target.kind = TargetKind::kExplicit;
  fault.target.node = plan.substreams[0].stages[0].placements[0].node;
  fault.at = sim::sec(4);
  scenario.faults.push_back(fault);

  auto hooks = world_hooks(world);
  auto* checker_ptr = &checker;
  hooks.on_first_fault = [checker_ptr](sim::SimTime at) {
    checker_ptr->note_fault(at);
  };
  Injector injector(sim, world.network(), scenario, std::move(hooks),
                    &world.metrics());
  injector.arm(sim.now(), stop);
  sim.run_until(stop);
  return checker.finalize(scenario.name);
}

TEST(ChaosWorld, SloNegativeControlFailsWithoutRecovery) {
  // Negative control: nobody re-composes the starved stream, so the
  // delivered rate never comes back and the recovery SLO must FAIL. If
  // this passes, the checker is vacuous.
  const auto report = crash_run(/*supervised=*/false);
  EXPECT_FALSE(report.pass);
  EXPECT_EQ(report.recovery_us, -1);
  EXPECT_GE(report.fault_at, 0);
}

TEST(ChaosWorld, SloPassesWithSupervisedRecovery) {
  const auto report = crash_run(/*supervised=*/true);
  EXPECT_TRUE(report.pass) << report.summary();
  EXPECT_GT(report.recovery_us, 0);
}

TEST(ChaosWorld, InjectedFaultsEmitTraceDropReasons) {
  exp::WorldConfig wc = world_config();
  wc.enable_unit_trace = true;
  exp::World world(wc);
  auto& sim = world.simulator();
  core::MinCostComposer composer;
  const auto req = request_for(world, 1);
  const sim::SimTime stop = sim.now() + sim::sec(60);
  const auto plan = submit_and_wait(world, composer, req, stop);

  // Phase 1: wire loss on the destination's access link — data units die
  // with reason kLinkLoss.
  world.network().set_injected_loss(req.destination, 0.5);
  sim.run_until(sim.now() + sim::sec(6));
  world.network().set_injected_loss(req.destination, 0.0);
  EXPECT_GT(world.unit_trace().dropped_by(obs::DropReason::kLinkLoss), 0);

  // Phase 2: crash a component host without telling anyone (no overlay
  // purge, no supervision) — in-flight units aimed at it die with reason
  // kNodeFailed.
  world.network().fail_node(plan.substreams[0].stages[0].placements[0].node);
  sim.run_until(sim.now() + sim::sec(6));
  EXPECT_GT(world.unit_trace().dropped_by(obs::DropReason::kNodeFailed), 0);
}

// ---------------------------------------------------------------------
// Runner integration: the tier-1 replay + no-op guarantees

exp::RunConfig runner_config() {
  exp::RunConfig cfg;
  cfg.world.nodes = 12;
  cfg.world.num_services = 6;
  cfg.world.services_per_node = 3;
  cfg.world.seed = 9;
  cfg.world.net.bw_min_kbps = 3000;
  cfg.world.net.bw_max_kbps = 6000;
  cfg.workload.num_requests = 8;
  cfg.workload.avg_rate_kbps = 100;
  cfg.submit_gap = sim::msec(500);
  cfg.steady_duration = sim::sec(8);
  return cfg;
}

std::string snapshot_csv(const exp::RunConfig& cfg) {
  std::vector<obs::MetricRow> rows;
  (void)exp::run_experiment(cfg, &rows);
  std::ostringstream out;
  obs::MetricRegistry::write_csv(rows, out);
  return out.str();
}

TEST(ChaosRunner, AbsentAndNoneScenariosAreByteIdentical) {
  auto cfg = runner_config();
  const auto baseline = snapshot_csv(cfg);
  cfg.chaos_scenario = "none";
  EXPECT_EQ(snapshot_csv(cfg), baseline)
      << "--chaos-scenario none must not perturb the run at all";
}

TEST(ChaosRunner, SameScenarioAndSeedReplayIsByteIdentical) {
  auto cfg = runner_config();
  cfg.steady_duration = sim::sec(15);
  cfg.chaos_scenario = "churn:at=3s,period=4s,repeats=3";
  cfg.chaos_seed = 77;
  cfg.slo = parse_slo("recovery<=30s");
  const std::string timeline_a =
      testing::TempDir() + "chaos_replay_a.csv";
  const std::string timeline_b =
      testing::TempDir() + "chaos_replay_b.csv";
  cfg.chaos_timeline_csv = timeline_a;
  const auto snap_a = snapshot_csv(cfg);
  cfg.chaos_timeline_csv = timeline_b;
  const auto snap_b = snapshot_csv(cfg);
  EXPECT_EQ(snap_a, snap_b)
      << "same (scenario, seed) must reproduce the same run byte-for-byte";

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const auto faults_a = slurp(timeline_a);
  EXPECT_FALSE(faults_a.empty());
  EXPECT_EQ(faults_a, slurp(timeline_b));
}

TEST(ChaosRunner, ScenarioActuallyInjectsAndReports) {
  auto cfg = runner_config();
  cfg.steady_duration = sim::sec(20);
  cfg.chaos_scenario = "single-crash:at=6s";
  cfg.slo = parse_slo("recovery<=25s");
  const auto metrics = exp::run_experiment(cfg);
  EXPECT_GT(metrics.faults_injected, 0);
  EXPECT_NE(metrics.slo_pass, -1);
}

}  // namespace
}  // namespace rasc::chaos
