// Cross-cutting property sweeps (parameterized over seeds): conservation
// laws and invariants that must hold for ANY configuration, not just the
// hand-picked ones in the per-module tests.
#include <gtest/gtest.h>

#include "core/composition_graph.hpp"
#include "exp/runner.hpp"
#include "flow/ssp.hpp"
#include "flow/validate.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace rasc {
namespace {

// ---------- Network: packet conservation under random traffic ----------

struct Noise final : sim::Message {
  const char* kind() const override { return "test.noise"; }
};

class NetworkConservation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(NetworkConservation, SentEqualsDeliveredPlusDropped) {
  util::Xoshiro256 rng(GetParam());
  sim::Simulator simulator(GetParam());
  auto topo = sim::make_planetlab_like(8, rng);
  topo.max_port_backlog = sim::msec(30);  // tight: force tail drops
  sim::Network net(simulator, topo);

  std::int64_t delivered = 0;
  for (sim::NodeIndex i = 0; i < 8; ++i) {
    net.set_handler(i, [&delivered](const sim::Packet&) { ++delivered; });
  }

  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto when = sim::msec(rng.uniform_int(0, 2000));
    const auto src = sim::NodeIndex(rng.uniform_int(0, 7));
    const auto dst = sim::NodeIndex(rng.uniform_int(0, 7));
    const auto bytes = rng.uniform_int(100, 4000);
    simulator.call_at(when, [&net, src, dst, bytes] {
      net.send(src, dst, bytes, std::make_shared<Noise>());
    });
  }
  simulator.run_all();
  EXPECT_EQ(net.packets_sent(), n);
  EXPECT_EQ(delivered + net.packets_dropped(), n)
      << "every packet must be delivered or accounted as dropped";
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkConservation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- Composition graph: feasible solves satisfy all caps ----------

class CompositionProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CompositionProperties, SharesRespectCapsAndSumToDemand) {
  util::Xoshiro256 rng(GetParam());
  const int stages = int(rng.uniform_int(1, 5));
  const int providers = int(rng.uniform_int(2, 12));

  auto caps =
      std::vector<std::vector<core::CandidateCap>>(std::size_t(stages));
  for (auto& stage : caps) {
    for (int p = 0; p < providers; ++p) {
      stage.push_back(core::CandidateCap{
          sim::NodeIndex(p), rng.uniform_double(0.0, 15.0),
          rng.uniform_double(0.0, 0.5), rng.uniform_double(0.0, 1.0)});
    }
  }
  const double demand = rng.uniform_double(1.0, 30.0);
  const double src_cap = rng.uniform_double(0.0, 40.0);
  const double dest_cap = rng.uniform_double(0.0, 40.0);

  core::CompositionGraph cg(caps, src_cap, dest_cap, demand);
  const auto solved = flow::min_cost_flow_ssp(cg.graph(), cg.source(),
                                              cg.sink(), cg.demand());

  // Structural validity regardless of feasibility.
  EXPECT_EQ(flow::validate_flow(cg.graph(), cg.source(), cg.sink(),
                                solved.flow),
            std::nullopt);
  EXPECT_FALSE(flow::has_negative_residual_cycle(cg.graph()))
      << "solution must be min-cost for its value";

  const auto shares = cg.extract_shares(0.0);
  for (int st = 0; st < stages; ++st) {
    double stage_total = 0;
    for (std::size_t j = 0; j < shares[std::size_t(st)].size(); ++j) {
      stage_total += shares[std::size_t(st)][j].rate_units_per_sec;
    }
    // Every stage carries exactly the routed amount.
    EXPECT_NEAR(stage_total,
                double(solved.flow) / core::CompositionGraph::kScale,
                0.01);
    // No candidate exceeds its capacity.
    for (std::size_t j = 0; j < caps[std::size_t(st)].size(); ++j) {
      EXPECT_LE(cg.candidate_flow_ups(st, int(j)),
                caps[std::size_t(st)][j].max_delivered_ups + 0.002);
    }
  }
  if (solved.feasible) {
    EXPECT_NEAR(double(solved.flow) / core::CompositionGraph::kScale,
                demand, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositionProperties,
                         ::testing::Range<std::uint64_t>(1, 31));

// ---------- End-to-end runner invariants across random scenarios ----------

class RunnerInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunnerInvariants, MetricsAreInternallyConsistent) {
  exp::RunConfig cfg;
  util::Xoshiro256 rng(GetParam());
  cfg.world.nodes = std::size_t(rng.uniform_int(8, 16));
  cfg.world.num_services = 6;
  cfg.world.services_per_node = 3;
  cfg.world.seed = GetParam();
  cfg.world.net.bw_min_kbps = 400;
  cfg.world.net.bw_max_kbps = 3000;
  cfg.workload.num_requests = int(rng.uniform_int(4, 10));
  cfg.workload.avg_rate_kbps = rng.uniform_double(40, 250);
  cfg.algorithm = (GetParam() % 3 == 0)   ? "mincost"
                  : (GetParam() % 3 == 1) ? "greedy"
                                          : "random";
  cfg.submit_gap = sim::msec(400);
  cfg.steady_duration = sim::sec(6);

  const auto m = exp::run_experiment(cfg);
  EXPECT_LE(m.composed, m.requests);
  EXPECT_GE(m.composed, 0);
  EXPECT_LE(m.delivered, m.emitted);
  EXPECT_LE(m.timely, m.delivered);
  EXPECT_LE(m.out_of_order, m.delivered);
  EXPECT_GE(m.splitting_degree(),
            m.composed > 0 ? 1.0 : 0.0);  // >= one instance per stage
  if (m.delivered > 0) {
    EXPECT_GT(m.mean_delay_ms(), 0.0);
    EXPECT_GE(m.jitter_ms.min(), 0.0);
  }
  // Unit accounting: everything emitted is delivered, dropped, or in
  // flight at the drain deadline (in-flight residue is bounded).
  const auto accounted = m.delivered + m.drops_queue_full +
                         m.drops_deadline + m.unroutable;
  EXPECT_GE(double(accounted) + double(m.drops_network),
            double(m.emitted) * 0.85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunnerInvariants,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace rasc
