// Simulator clock semantics: call_after/call_at, clamping, run_until,
// nested scheduling, cancellation, determinism.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rasc::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
}

TEST(Simulator, CallAfterAdvancesClock) {
  Simulator s;
  SimTime seen = -1;
  s.call_after(msec(5), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, msec(5));
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  s.call_after(msec(10), [&s] {
    s.call_after(-100, [] {});
  });
  s.run_all();
  EXPECT_EQ(s.now(), msec(10));
}

TEST(Simulator, CallAtPastClampsToNow) {
  Simulator s;
  SimTime seen = -1;
  s.call_after(msec(10), [&] {
    s.call_at(msec(1), [&] { seen = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(seen, msec(10));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  std::vector<SimTime> fired;
  for (int i = 1; i <= 10; ++i) {
    s.call_at(msec(i), [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run_until(msec(5));
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(s.now(), msec(5));
  s.run_until(msec(20));
  EXPECT_EQ(fired.size(), 10u);
  EXPECT_EQ(s.now(), msec(20));  // advances even past last event
}

TEST(Simulator, NestedSchedulingRunsInOrder) {
  Simulator s;
  std::vector<int> order;
  s.call_after(10, [&] {
    order.push_back(1);
    s.call_after(5, [&] { order.push_back(3); });
    s.call_after(1, [&] { order.push_back(2); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelWorks) {
  Simulator s;
  bool fired = false;
  const auto id = s.call_after(100, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunAllHonorsEventLimit) {
  Simulator s;
  // A self-perpetuating event chain: the guard must stop it.
  std::function<void()> tick = [&] { s.call_after(1, tick); };
  s.call_after(1, tick);
  const auto n = s.run_all(1000);
  EXPECT_EQ(n, 1000u);
  EXPECT_EQ(s.processed_events(), 1000u);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator s;
  int count = 0;
  s.call_after(1, [&] { ++count; });
  s.call_after(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, SeededRngIsDeterministic) {
  Simulator a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rng().next(), b.rng().next());
  }
}

}  // namespace
}  // namespace rasc::sim
