// Smooth weighted round-robin: exact long-run proportions and smooth
// interleaving (no bursts toward one target).
#include "runtime/wrr.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace rasc::runtime {
namespace {

TEST(Wrr, SingleTargetAlwaysZero) {
  WeightedRoundRobin wrr({5.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(wrr.next(), 0u);
}

TEST(Wrr, EqualWeightsAlternate) {
  WeightedRoundRobin wrr({1.0, 1.0});
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100; ++i) ++counts[wrr.next()];
  EXPECT_EQ(counts[0], 50);
  EXPECT_EQ(counts[1], 50);
}

TEST(Wrr, ExactProportionsOverFullCycle) {
  WeightedRoundRobin wrr({1.0, 2.0, 3.0});
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 600; ++i) ++counts[wrr.next()];
  EXPECT_EQ(counts[0], 100);
  EXPECT_EQ(counts[1], 200);
  EXPECT_EQ(counts[2], 300);
}

TEST(Wrr, SmoothInterleaving) {
  // The nginx smooth WRR cycle for {5,1,1} is A A B A C A A: the longest
  // run of the heavy target is 4 (the trailing A A joining the next
  // cycle's leading A A) — far smoother than naive WRR's 5-burst.
  WeightedRoundRobin wrr({5.0, 1.0, 1.0});
  int run = 0, max_run = 0;
  std::size_t prev = 99;
  for (int i = 0; i < 70; ++i) {
    const auto pick = wrr.next();
    run = (pick == prev) ? run + 1 : 1;
    max_run = std::max(max_run, run);
    prev = pick;
  }
  EXPECT_LE(max_run, 4);
}

TEST(Wrr, ZeroWeightEntryNeverPicked) {
  WeightedRoundRobin wrr({0.0, 1.0, 2.0});
  for (int i = 0; i < 50; ++i) EXPECT_NE(wrr.next(), 0u);
}

TEST(Wrr, FractionalWeightsProportional) {
  WeightedRoundRobin wrr({12.5, 37.5});  // 1:3
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 400; ++i) ++counts[wrr.next()];
  EXPECT_NEAR(counts[0], 100, 2);
  EXPECT_NEAR(counts[1], 300, 2);
}

TEST(Wrr, DeterministicSequence) {
  WeightedRoundRobin a({1.0, 2.0}), b({1.0, 2.0});
  for (int i = 0; i < 30; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace rasc::runtime
