// Destination sink metrics (§4.2 definitions) on crafted arrival
// sequences, and source emission timing.
#include "runtime/sink.hpp"
#include "runtime/source.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc::runtime {
namespace {

DataUnit unit(std::int64_t seq, sim::SimTime created = 0) {
  DataUnit u;
  u.seq = seq;
  u.created_at = created;
  return u;
}

TEST(Sink, CountsDeliveredAndDelay) {
  StreamSink sink(10.0);  // period 100 ms
  sink.on_unit(unit(0, 0), sim::msec(40));
  sink.on_unit(unit(1, sim::msec(100)), sim::msec(150));
  EXPECT_EQ(sink.stats().delivered, 2);
  EXPECT_DOUBLE_EQ(sink.stats().delay_ms.mean(), (40.0 + 50.0) / 2);
}

TEST(Sink, PerfectCadenceHasZeroJitterAndAllTimely) {
  StreamSink sink(10.0);
  for (int i = 0; i < 20; ++i) {
    sink.on_unit(unit(i), sim::msec(100 * i));
  }
  EXPECT_EQ(sink.stats().delivered, 20);
  EXPECT_EQ(sink.stats().timely, 20);
  EXPECT_EQ(sink.stats().out_of_order, 0);
  EXPECT_DOUBLE_EQ(sink.stats().jitter_ms.mean(), 0.0);
}

TEST(Sink, LateUnitAccruesJitter) {
  StreamSink sink(10.0);
  sink.on_unit(unit(0), 0);
  // Deadline for next: 100 ms. Arrives at 130 ms -> 30 ms jitter.
  sink.on_unit(unit(1), sim::msec(130));
  EXPECT_EQ(sink.stats().delivered, 2);
  // First unit contributes 0, second 30.
  EXPECT_DOUBLE_EQ(sink.stats().jitter_ms.sum(), 30.0);
}

TEST(Sink, EarlyUnitHasNoNegativeJitter) {
  StreamSink sink(10.0);
  sink.on_unit(unit(0), 0);
  sink.on_unit(unit(1), sim::msec(50));  // early
  EXPECT_DOUBLE_EQ(sink.stats().jitter_ms.sum(), 0.0);
}

TEST(Sink, OutOfOrderDetection) {
  // Reorder tolerance 1 period = 100 ms: unit 1 arrives 150 ms after
  // being overtaken by unit 2 -> counted out of order.
  StreamSink sink(10.0);
  sink.on_unit(unit(0), 0);
  sink.on_unit(unit(2), sim::msec(100));
  sink.on_unit(unit(1), sim::msec(250));  // stale beyond the buffer
  EXPECT_EQ(sink.stats().out_of_order, 1);
  EXPECT_EQ(sink.stats().delivered, 3);
  // Unit 1 is not timely either, because it is out of order.
  EXPECT_EQ(sink.stats().timely, 2);
}

TEST(Sink, SlightReorderAbsorbedByPlayoutBuffer) {
  // Unit 1 arrives only 30 ms after unit 2 overtook it: still usable.
  StreamSink sink(10.0);
  sink.on_unit(unit(0), 0);
  sink.on_unit(unit(2), sim::msec(100));
  sink.on_unit(unit(1), sim::msec(130));
  EXPECT_EQ(sink.stats().out_of_order, 0);
  EXPECT_EQ(sink.stats().timely, 3);
}

TEST(Sink, ReorderToleranceZeroIsStrict) {
  StreamSink sink(10.0, 1.0, /*reorder_tolerance_periods=*/0.0);
  sink.on_unit(unit(0), 0);
  sink.on_unit(unit(2), sim::msec(100));
  sink.on_unit(unit(1), sim::msec(101));
  EXPECT_EQ(sink.stats().out_of_order, 1);
}

TEST(Sink, ToleranceGovernsTimeliness) {
  StreamSink tight(10.0, 0.1);  // 10 ms tolerance
  tight.on_unit(unit(0), 0);
  tight.on_unit(unit(1), sim::msec(130));  // 30 ms late > tolerance
  EXPECT_EQ(tight.stats().timely, 1);

  StreamSink loose(10.0, 1.0);  // 100 ms tolerance
  loose.on_unit(unit(0), 0);
  loose.on_unit(unit(1), sim::msec(130));
  EXPECT_EQ(loose.stats().timely, 2);
}

TEST(Sink, StatsMerge) {
  StreamSink a(10.0), b(10.0);
  a.on_unit(unit(0), 0);
  b.on_unit(unit(0), 0);
  b.on_unit(unit(1), sim::msec(500));
  SinkStats total = a.stats();
  total.merge(b.stats());
  EXPECT_EQ(total.delivered, 3);
}

class SourceTest : public ::testing::Test {
 protected:
  SourceTest()
      : net_(sim_, sim::make_uniform_topology(3, 100000.0, sim::usec(10))) {
    net_.set_handler(1, [this](const sim::Packet& p) {
      arrivals_.push_back(
          std::static_pointer_cast<const DataUnit>(p.payload));
    });
    net_.set_handler(2, [this](const sim::Packet& p) {
      arrivals2_.push_back(
          std::static_pointer_cast<const DataUnit>(p.payload));
    });
  }

  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::shared_ptr<const DataUnit>> arrivals_;
  std::vector<std::shared_ptr<const DataUnit>> arrivals2_;
};

TEST_F(SourceTest, EmitsExpectedCountOnGrid) {
  StreamSource src(sim_, net_, 0, 1, 0, 20.0, 500, {{1, 20.0}});
  src.run(0, sim::sec(1));  // 20 ups for 1 s -> exactly 20 units
  sim_.run_until(sim::sec(2));
  EXPECT_EQ(src.emitted(), 20);
  EXPECT_EQ(arrivals_.size(), 20u);
  // Sequences are consecutive from 0, stage 0, correct size.
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    EXPECT_EQ(arrivals_[i]->seq, std::int64_t(i));
    EXPECT_EQ(arrivals_[i]->stage, 0);
    EXPECT_EQ(arrivals_[i]->size_bytes, 500);
  }
}

TEST_F(SourceTest, StopHaltsEmission) {
  StreamSource src(sim_, net_, 0, 1, 0, 100.0, 100, {{1, 100.0}});
  src.run(0, sim::sec(10));
  sim_.run_until(sim::msec(95));
  src.stop();
  sim_.run_until(sim::sec(1));
  EXPECT_LE(src.emitted(), 11);
}

TEST_F(SourceTest, SplitsAcrossFirstStageByWeight) {
  StreamSource src(sim_, net_, 0, 1, 0, 30.0, 100,
                   {{1, 10.0}, {2, 20.0}});
  src.run(0, sim::sec(10));  // ~300 units (period rounding may add 1)
  sim_.run_until(sim::sec(11));
  EXPECT_NEAR(double(arrivals_.size() + arrivals2_.size()), 300.0, 2.0);
  EXPECT_NEAR(double(arrivals_.size()), 100.0, 3.0);
  EXPECT_NEAR(double(arrivals2_.size()), 200.0, 3.0);
}

TEST_F(SourceTest, ReconfigureReratesAndResplitsInPlace) {
  // The rate adapter's source-split delta: the stream keeps running, the
  // sequence numbers continue, only the rate and the stage-0 split change.
  StreamSource src(sim_, net_, 0, 1, 0, 10.0, 100, {{1, 10.0}});
  src.run(0, sim::sec(2));
  sim_.run_until(sim::sec(1));
  src.reconfigure(40.0, {{2, 40.0}});
  const auto emitted_before = src.emitted();
  EXPECT_NEAR(double(emitted_before), 10.0, 2.0);
  // Let units already in flight toward the old split land.
  sim_.run_until(sim::sec(1) + sim::msec(5));
  const auto to_node1 = arrivals_.size();
  EXPECT_EQ(std::int64_t(to_node1), emitted_before);

  sim_.run_until(sim::sec(3));
  // Nothing new lands on the old target; the remaining second runs at
  // the new rate onto the new split.
  EXPECT_EQ(arrivals_.size(), to_node1);
  EXPECT_NEAR(double(arrivals2_.size()), 40.0, 3.0);
  // Sequences continue from where the old rate left off — no reset, no
  // duplicates (downstream order accounting must stay exact).
  ASSERT_FALSE(arrivals2_.empty());
  EXPECT_EQ(arrivals2_.front()->seq, emitted_before);
  for (std::size_t i = 1; i < arrivals2_.size(); ++i) {
    EXPECT_EQ(arrivals2_[i]->seq, arrivals2_[i - 1]->seq + 1);
  }
}

TEST_F(SourceTest, LateStartIsHonored) {
  StreamSource src(sim_, net_, 0, 1, 0, 10.0, 100, {{1, 10.0}});
  src.run(sim::sec(5), sim::sec(6));
  sim_.run_until(sim::sec(4));
  EXPECT_EQ(src.emitted(), 0);
  sim_.run_until(sim::sec(7));
  EXPECT_EQ(src.emitted(), 10);
}

}  // namespace
}  // namespace rasc::runtime
