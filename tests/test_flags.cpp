// CLI flag parser: all accepted syntaxes and the error paths.
#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rasc::util {
namespace {

Flags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(int(args.size()), args.data());
}

TEST(Flags, EqualsSyntax) {
  auto f = make({"--nodes=32", "--rate=150.5"});
  EXPECT_EQ(f.get_int("nodes", 0), 32);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 150.5);
  f.finish();
}

TEST(Flags, SpaceSyntax) {
  auto f = make({"--algorithm", "greedy"});
  EXPECT_EQ(f.get_string("algorithm", ""), "greedy");
  f.finish();
}

TEST(Flags, BooleanForms) {
  auto f = make({"--verbose", "--no-color", "--fast=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("color", true));
  EXPECT_FALSE(f.get_bool("fast", true));
  f.finish();
}

TEST(Flags, DefaultsWhenAbsent) {
  auto f = make({});
  EXPECT_EQ(f.get_int("nodes", 42), 42);
  EXPECT_EQ(f.get_string("name", "x"), "x");
  EXPECT_TRUE(f.get_bool("flag", true));
  f.finish();
}

TEST(Flags, DoubleList) {
  auto f = make({"--rates=50,100,150,200"});
  const auto v = f.get_double_list("rates", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 50);
  EXPECT_EQ(v[3], 200);
  f.finish();
}

TEST(Flags, Positional) {
  auto f = make({"input.txt", "--n=1", "more"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
  f.get_int("n", 0);
  f.finish();
}

TEST(Flags, UnknownFlagThrowsOnFinish) {
  auto f = make({"--typo=1"});
  EXPECT_THROW(f.finish(), std::invalid_argument);
}

TEST(Flags, BadIntegerThrows) {
  auto f = make({"--n=abc"});
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
}

TEST(Flags, BadBooleanThrows) {
  auto f = make({"--b=maybe"});
  EXPECT_THROW(f.get_bool("b", false), std::invalid_argument);
}

TEST(Flags, DuplicateFlagThrowsOnFinish) {
  auto f = make({"--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2) << "last occurrence wins before finish()";
  EXPECT_THROW(f.finish(), std::invalid_argument);

  // Mixed --name=value / --name value spellings are still duplicates.
  auto g = make({"--rate=5", "--rate", "7"});
  g.get_double("rate", 0);
  EXPECT_THROW(g.finish(), std::invalid_argument);

  // The error message names the duplicated flag.
  auto h = make({"--seed=1", "--seed=1"});
  h.get_int("seed", 0);
  try {
    h.finish();
    FAIL() << "duplicate --seed must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
  }
}

TEST(Flags, EmptyListThrows) {
  auto f = make({"--rates=,"});
  EXPECT_THROW(f.get_double_list("rates", {}), std::invalid_argument);
}

}  // namespace
}  // namespace rasc::util
