// Sliding windows, outcome ratios, EWMA and rate meters (paper §3.2's
// h-sample averaging).
#include "monitor/rate_meter.hpp"
#include "monitor/window.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace rasc::monitor {
namespace {

TEST(SlidingWindow, MeanOverPartialFill) {
  SlidingWindow w(4);
  w.add(2);
  w.add(4);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_FALSE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(SlidingWindow, EvictsOldestWhenFull) {
  SlidingWindow w(3);
  for (double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);  // 1 evicted
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.sum(), 9.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  w.add(5.0);  // 2 evicted
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
}

TEST(SlidingWindow, ZeroCapacityClampsToOne) {
  SlidingWindow w(0);
  w.add(7);
  w.add(9);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 9.0);
}

TEST(SlidingWindow, ClearResets) {
  SlidingWindow w(3);
  w.add(1);
  w.clear();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  w.add(8);
  EXPECT_DOUBLE_EQ(w.mean(), 8.0);
}

TEST(SlidingWindow, MillionSamplesSumStaysExact) {
  // Regression for running-sum drift: the O(1) add/subtract accumulates
  // rounding error without bound over long streams; the periodic exact
  // rebuild pins it to one window's worth of updates. Mixed magnitudes
  // and signs maximize cancellation error.
  constexpr std::size_t kCapacity = 128;
  SlidingWindow w(kCapacity);
  auto ring = std::vector<double>(kCapacity, 0.0);
  std::uint64_t state = 12345;
  double scale[13];
  scale[0] = 1e-6;
  for (int i = 1; i < 13; ++i) scale[i] = scale[i - 1] * 10.0;
  for (std::size_t i = 0; i < 1'000'000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = double(state >> 11) / double(1ULL << 53);  // [0,1)
    const double sample = (u - 0.5) * scale[i % 13];
    w.add(sample);
    ring[i % kCapacity] = sample;
  }
  double fresh = 0;
  for (const double s : ring) fresh += s;
  EXPECT_EQ(w.count(), kCapacity);
  EXPECT_NEAR(w.sum(), fresh, 1e-9 * std::max(1.0, std::abs(fresh)))
      << "running sum drifted away from a fresh summation";
}

TEST(OutcomeWindow, RatioTracksWindowOnly) {
  OutcomeWindow w(4);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.0);
  w.record(true);
  w.record(true);
  w.record(false);
  w.record(false);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.5);
  // One more good outcome evicts the oldest bad one (window = last 4).
  w.record(false);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.25);
  w.record(false);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.0);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  e.add(10);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.add(20);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(RateMeter, SteadyRate) {
  RateMeter m(16);
  // One event every 100 ms -> 10 per second.
  for (int i = 0; i < 10; ++i) m.record(sim::msec(100 * i));
  EXPECT_NEAR(m.rate_per_sec(sim::msec(900)), 10.0, 0.01);
  EXPECT_NEAR(double(m.mean_period(sim::msec(900))), 100000.0, 1000.0);
}

TEST(RateMeter, TooFewEventsIsZero) {
  RateMeter m;
  EXPECT_EQ(m.rate_per_sec(sim::sec(1)), 0.0);
  m.record(0);
  EXPECT_EQ(m.rate_per_sec(sim::sec(1)), 0.0);
  EXPECT_EQ(m.mean_period(sim::sec(1)), 0);
}

TEST(RateMeter, DecaysWhenStreamStops) {
  RateMeter m(8);
  for (int i = 0; i < 8; ++i) m.record(sim::msec(10 * i));
  const double active = m.rate_per_sec(sim::msec(70));
  const double stale = m.rate_per_sec(sim::sec(10));
  EXPECT_GT(active, 50.0);
  EXPECT_LT(stale, active / 10);
}

TEST(RateMeter, WindowSlidesOverOldEvents) {
  RateMeter m(4);
  // 4 slow events, then 4 fast ones: only the fast ones remain.
  for (int i = 0; i < 4; ++i) m.record(sim::sec(i));
  for (int i = 0; i < 4; ++i) m.record(sim::sec(4) + sim::msec(10 * i));
  EXPECT_NEAR(m.rate_per_sec(sim::sec(4) + sim::msec(30)), 100.0, 5.0);
}

}  // namespace
}  // namespace rasc::monitor
