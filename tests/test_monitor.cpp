// Resource monitoring: bandwidth sampling from network counters, drop
// ratio windows, reservations, and the stats query protocol (§3.2-3.3).
#include "monitor/node_monitor.hpp"
#include "monitor/stats_protocol.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rasc::monitor {
namespace {

struct Blob final : sim::Message {
  const char* kind() const override { return "test.blob"; }
};

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : net_(sim_, sim::make_uniform_topology(3, 8000.0, sim::msec(1))) {
    net_.set_handler(1, [](const sim::Packet&) {});
    net_.set_handler(2, [](const sim::Packet&) {});
  }

  sim::Simulator sim_;
  sim::Network net_;
};

TEST_F(MonitorTest, IdleNodeReportsFullAvailability) {
  NodeMonitor mon(sim_, net_, 0);
  sim_.run_until(sim::sec(3));
  const auto s = mon.snapshot();
  EXPECT_EQ(s.node, 0);
  EXPECT_DOUBLE_EQ(s.capacity_in_kbps, 8000.0);
  EXPECT_DOUBLE_EQ(s.capacity_out_kbps, 8000.0);
  EXPECT_NEAR(s.used_out_kbps, 0.0, 1.0);
  EXPECT_NEAR(s.available_out_kbps(), 8000.0, 1.0);
  EXPECT_EQ(s.drop_ratio, 0.0);
  EXPECT_EQ(s.taken_at, sim_.now());
}

TEST_F(MonitorTest, MeasuresOutgoingTrafficRate) {
  NodeMonitor mon(sim_, net_, 0);
  // Send ~2000 kbps: a 1202-byte payload (1250 wire bytes = 10 kbit)
  // every 5 ms.
  for (int i = 0; i < 600; ++i) {
    sim_.call_at(sim::msec(5 * i), [this] {
      net_.send(0, 1, 1250 - sim::Network::kFrameOverheadBytes,
                std::make_shared<Blob>());
    });
  }
  sim_.run_until(sim::sec(3));
  const auto s = mon.snapshot();
  EXPECT_NEAR(s.used_out_kbps, 2000.0, 150.0);
  EXPECT_NEAR(s.available_out_kbps(), 6000.0, 150.0);
}

TEST_F(MonitorTest, MeasuresIncomingTrafficRate) {
  NodeMonitor mon(sim_, net_, 1);
  for (int i = 0; i < 300; ++i) {
    sim_.call_at(sim::msec(10 * i), [this] {
      net_.send(0, 1, 1250 - sim::Network::kFrameOverheadBytes,
                std::make_shared<Blob>());
    });
  }
  sim_.run_until(sim::sec(3));
  const auto s = mon.snapshot();
  EXPECT_NEAR(s.used_in_kbps, 1000.0, 100.0);
}

TEST_F(MonitorTest, DropRatioWindowed) {
  NodeMonitor::Params params;
  params.outcome_window = 10;
  NodeMonitor mon(sim_, net_, 0, params);
  for (int i = 0; i < 5; ++i) mon.on_unit_processed();
  for (int i = 0; i < 5; ++i) mon.on_unit_dropped();
  EXPECT_DOUBLE_EQ(mon.drop_ratio(), 0.5);
  // A burst of successes pushes the drops out of the window.
  for (int i = 0; i < 10; ++i) mon.on_unit_processed();
  EXPECT_DOUBLE_EQ(mon.drop_ratio(), 0.0);
}

TEST_F(MonitorTest, ReservationsAffectAvailability) {
  NodeMonitor::Params params;
  params.advertise_reservations = true;
  NodeMonitor mon(sim_, net_, 0, params);
  mon.add_reservation(3000.0, 1000.0);
  auto s = mon.snapshot();
  EXPECT_DOUBLE_EQ(s.reserved_in_kbps, 3000.0);
  EXPECT_DOUBLE_EQ(s.available_in_kbps(), 5000.0);
  EXPECT_DOUBLE_EQ(s.available_out_kbps(), 7000.0);
  mon.add_reservation(-3000.0, -1000.0);
  s = mon.snapshot();
  EXPECT_DOUBLE_EQ(s.available_in_kbps(), 8000.0);
  // Over-release clamps at zero rather than going negative.
  mon.add_reservation(-500.0, 0.0);
  EXPECT_DOUBLE_EQ(mon.snapshot().reserved_in_kbps, 0.0);
}

TEST_F(MonitorTest, AvailabilityUsesMaxOfMeasuredAndReserved) {
  NodeStats s;
  s.capacity_in_kbps = 1000;
  s.used_in_kbps = 300;
  s.reserved_in_kbps = 500;
  EXPECT_DOUBLE_EQ(s.available_in_kbps(), 500.0);
  s.used_in_kbps = 700;
  EXPECT_DOUBLE_EQ(s.available_in_kbps(), 300.0);
}

TEST(StatsProtocol, RemoteQueryRoundTrip) {
  sim::Simulator sim;
  sim::Network net(sim, sim::make_uniform_topology(2, 8000.0, sim::msec(5)));
  NodeMonitor::Params params;
  params.advertise_reservations = true;
  NodeMonitor mon0(sim, net, 0, params), mon1(sim, net, 1, params);
  StatsAgent agent0(sim, net, 0, mon0), agent1(sim, net, 1, mon1);
  net.set_handler(0, [&](const sim::Packet& p) { agent0.handle_packet(p); });
  net.set_handler(1, [&](const sim::Packet& p) { agent1.handle_packet(p); });

  mon1.add_reservation(1234.0, 0.0);
  bool ok = false;
  NodeStats got;
  agent0.query(1, [&](bool success, const NodeStats& s) {
    ok = success;
    got = s;
  });
  sim.run_until(sim::sec(1));
  ASSERT_TRUE(ok);
  EXPECT_EQ(got.node, 1);
  EXPECT_DOUBLE_EQ(got.reserved_in_kbps, 1234.0);
}

TEST(StatsProtocol, QueryTimesOutOnDeadNode) {
  sim::Simulator sim;
  sim::Network net(sim, sim::make_uniform_topology(2, 8000.0, sim::msec(5)));
  NodeMonitor mon0(sim, net, 0);
  StatsAgent agent0(sim, net, 0, mon0);
  net.set_handler(0, [&](const sim::Packet& p) { agent0.handle_packet(p); });
  net.set_node_up(1, false);

  bool called = false, ok = true;
  agent0.query(1, [&](bool success, const NodeStats&) {
    called = true;
    ok = success;
  });
  sim.run_until(sim::sec(5));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST(StatsProtocol, QueryManyGathersAllReachable) {
  sim::Simulator sim;
  sim::Network net(sim, sim::make_uniform_topology(4, 8000.0, sim::msec(5)));
  std::vector<std::unique_ptr<NodeMonitor>> mons;
  std::vector<std::unique_ptr<StatsAgent>> agents;
  for (sim::NodeIndex i = 0; i < 4; ++i) {
    mons.push_back(std::make_unique<NodeMonitor>(sim, net, i));
    agents.push_back(std::make_unique<StatsAgent>(sim, net, i, *mons.back()));
    StatsAgent* agent = agents.back().get();
    net.set_handler(i,
                    [agent](const sim::Packet& p) { agent->handle_packet(p); });
  }
  net.set_node_up(3, false);  // one target dead

  std::vector<NodeStats> got;
  bool done = false;
  agents[0]->query_many({1, 2, 3}, [&](std::vector<NodeStats> stats) {
    got = std::move(stats);
    done = true;
  });
  sim.run_until(sim::sec(5));
  ASSERT_TRUE(done);
  EXPECT_EQ(got.size(), 2u);  // node 3 timed out, omitted
}

}  // namespace
}  // namespace rasc::monitor
