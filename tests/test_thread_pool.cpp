// Thread pool: results, exception propagation, parallel_for coverage.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rasc::util {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](std::size_t i) {
                     if (i == 5) throw std::logic_error("bad cell");
                   }),
               std::logic_error);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 1000; ++i) {
    futures.push_back(pool.submit([&total, i] { total += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), 500500);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done++; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace rasc::util
