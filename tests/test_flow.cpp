// Min-cost flow: hand-built instances with known optima, structural
// validation, and a property sweep asserting the two independent solvers
// (SSP with potentials vs cycle cancelling) reach the same objective on
// random graphs.
#include "flow/cycle_cancel.hpp"
#include "flow/graph.hpp"
#include "flow/ssp.hpp"
#include "flow/validate.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rasc::flow {
namespace {

TEST(Graph, ArcBookkeeping) {
  Graph g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto arc = g.add_arc(a, b, 10, 3);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.capacity(arc), 10);
  EXPECT_EQ(g.flow(arc), 0);
  EXPECT_EQ(g.cost(arc), 3);
  EXPECT_EQ(g.tail(arc), a);
  EXPECT_EQ(g.head(arc), b);
  g.push(arc, 4);
  EXPECT_EQ(g.flow(arc), 4);
  EXPECT_EQ(g.capacity(arc), 10);
  g.clear_flow();
  EXPECT_EQ(g.flow(arc), 0);
}

TEST(Ssp, SingleArcSimple) {
  Graph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, t, 5, 2);
  const auto r = min_cost_flow_ssp(g, s, t, 5);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.flow, 5);
  EXPECT_EQ(r.cost, 10);
  EXPECT_EQ(validate_flow(g, s, t, 5), std::nullopt);
}

TEST(Ssp, PrefersCheaperPath) {
  Graph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  const auto cheap = g.add_arc(s, t, 3, 1);
  const auto pricey = g.add_arc(s, t, 10, 5);
  const auto r = min_cost_flow_ssp(g, s, t, 5);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(g.flow(cheap), 3);
  EXPECT_EQ(g.flow(pricey), 2);
  EXPECT_EQ(r.cost, 3 * 1 + 2 * 5);
}

TEST(Ssp, ClassicDiamond) {
  // s -> a -> t and s -> b -> t with a cross arc a -> b.
  Graph g;
  const auto s = g.add_node();
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, a, 4, 1);
  g.add_arc(s, b, 2, 4);
  g.add_arc(a, b, 2, 1);
  g.add_arc(a, t, 2, 6);
  g.add_arc(b, t, 4, 1);
  const auto r = min_cost_flow_ssp(g, s, t, 4);
  EXPECT_TRUE(r.feasible);
  // Optimal: 2 via s-a-b-t (cost 3 each), 2 via s-a-t? cost 7 each vs
  // s-b-t cost 5 each. Take s-a-b-t ×2 = 6, then s-b-t ×2 = 10 → 16.
  EXPECT_EQ(r.cost, 16);
  EXPECT_EQ(validate_flow(g, s, t, 4), std::nullopt);
  EXPECT_FALSE(has_negative_residual_cycle(g));
}

TEST(Ssp, InfeasibleReturnsMaxFlow) {
  Graph g;
  const auto s = g.add_node();
  const auto m = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, m, 3, 1);
  g.add_arc(m, t, 2, 1);
  const auto r = min_cost_flow_ssp(g, s, t, 10);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(validate_flow(g, s, t, 2), std::nullopt);
}

TEST(Ssp, ZeroDemandIsTrivial) {
  Graph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, t, 5, 1);
  const auto r = min_cost_flow_ssp(g, s, t, 0);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.flow, 0);
  EXPECT_EQ(r.cost, 0);
}

TEST(Ssp, DisconnectedSinkInfeasible) {
  Graph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  g.add_node();  // isolated
  const auto r = min_cost_flow_ssp(g, s, t, 1);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.flow, 0);
}

TEST(Ssp, HandlesNegativeArcCosts) {
  Graph g;
  const auto s = g.add_node();
  const auto a = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, a, 5, -2);
  g.add_arc(a, t, 5, 3);
  g.add_arc(s, t, 5, 2);
  const auto r = min_cost_flow_ssp(g, s, t, 5);
  EXPECT_TRUE(r.feasible);
  // Path s-a-t costs 1 < 2, so all 5 go through a.
  EXPECT_EQ(r.cost, 5);
}

TEST(CycleCancel, MatchesKnownOptimum) {
  Graph g;
  const auto s = g.add_node();
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto t = g.add_node();
  g.add_arc(s, a, 4, 1);
  g.add_arc(s, b, 2, 4);
  g.add_arc(a, b, 2, 1);
  g.add_arc(a, t, 2, 6);
  g.add_arc(b, t, 4, 1);
  const auto r = min_cost_flow_cycle_cancel(g, s, t, 4);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, 16);
  EXPECT_EQ(validate_flow(g, s, t, 4), std::nullopt);
  EXPECT_FALSE(has_negative_residual_cycle(g));
}

TEST(Validate, DetectsBrokenConservation) {
  Graph g;
  const auto s = g.add_node();
  const auto m = g.add_node();
  const auto t = g.add_node();
  const auto a1 = g.add_arc(s, m, 5, 0);
  g.add_arc(m, t, 5, 0);
  g.push(a1, 3);  // flow enters m but never leaves
  const auto err = validate_flow(g, s, t, 3);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("conservation"), std::string::npos);
}

TEST(Validate, DetectsWrongValue) {
  Graph g;
  const auto s = g.add_node();
  const auto t = g.add_node();
  const auto a = g.add_arc(s, t, 5, 0);
  g.push(a, 2);
  EXPECT_TRUE(validate_flow(g, s, t, 3).has_value());
  EXPECT_EQ(validate_flow(g, s, t, 2), std::nullopt);
}

// --- Property sweep: both solvers agree on random layered graphs ---

struct RandomInstance {
  Graph graph;
  NodeId source, sink;
  FlowUnit demand;
};

RandomInstance make_random_instance(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  RandomInstance inst;
  Graph& g = inst.graph;
  inst.source = g.add_node();
  inst.sink = g.add_node();
  const int layers = int(rng.uniform_int(1, 4));
  const int width = int(rng.uniform_int(1, 5));
  auto layer_nodes =
      std::vector<std::vector<NodeId>>(std::size_t(layers));
  for (auto& layer : layer_nodes) {
    for (int j = 0; j < width; ++j) layer.push_back(g.add_node());
  }
  for (int j = 0; j < width; ++j) {
    g.add_arc(inst.source, layer_nodes[0][std::size_t(j)],
              rng.uniform_int(0, 30), rng.uniform_int(0, 20));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int a = 0; a < width; ++a) {
      for (int b = 0; b < width; ++b) {
        if (rng.bernoulli(0.7)) {
          g.add_arc(layer_nodes[std::size_t(l)][std::size_t(a)],
                    layer_nodes[std::size_t(l) + 1][std::size_t(b)],
                    rng.uniform_int(0, 30), rng.uniform_int(0, 20));
        }
      }
    }
  }
  for (int j = 0; j < width; ++j) {
    g.add_arc(layer_nodes[std::size_t(layers) - 1][std::size_t(j)],
              inst.sink, rng.uniform_int(0, 30), rng.uniform_int(0, 20));
  }
  inst.demand = rng.uniform_int(1, 40);
  return inst;
}

class SolverAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverAgreement, SspAndCycleCancelReachSameObjective) {
  auto a = make_random_instance(GetParam());
  auto b = make_random_instance(GetParam());  // identical copy

  const auto ra = min_cost_flow_ssp(a.graph, a.source, a.sink, a.demand);
  const auto rb =
      min_cost_flow_cycle_cancel(b.graph, b.source, b.sink, b.demand);

  EXPECT_EQ(ra.flow, rb.flow) << "max routable amount differs";
  EXPECT_EQ(ra.feasible, rb.feasible);
  EXPECT_EQ(ra.cost, rb.cost) << "objectives differ";

  EXPECT_EQ(validate_flow(a.graph, a.source, a.sink, ra.flow),
            std::nullopt);
  EXPECT_EQ(validate_flow(b.graph, b.source, b.sink, rb.flow),
            std::nullopt);
  EXPECT_FALSE(has_negative_residual_cycle(a.graph));
  EXPECT_FALSE(has_negative_residual_cycle(b.graph));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SolverAgreement,
                         ::testing::Range<std::uint64_t>(1, 41));

// One SspSolver instance reused across instances with different
// topologies: the workspace carry-over (CSR snapshot, potentials, caps)
// must never leak state from one solve into the next.
TEST(SspSolver, ReusedInstanceMatchesCycleCancel) {
  SspSolver solver;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    auto a = make_random_instance(seed);
    auto b = make_random_instance(seed);  // identical copy

    const auto ra = solver.solve(a.graph, a.source, a.sink, a.demand);
    const auto rb =
        min_cost_flow_cycle_cancel(b.graph, b.source, b.sink, b.demand);

    EXPECT_EQ(ra.flow, rb.flow) << "seed " << seed;
    EXPECT_EQ(ra.cost, rb.cost) << "seed " << seed;
    EXPECT_EQ(validate_flow(a.graph, a.source, a.sink, ra.flow),
              std::nullopt)
        << "seed " << seed;
  }
}

// The composer's repair pattern: solve, tighten a few capacities in
// place, clear the flow, and re-solve warm on the same graph. The warm
// re-solve must still match a cold reference solve of the tightened
// instance.
TEST(SspSolver, WarmStartResolveAfterCapacityTightening) {
  SspSolver solver;
  SolveOptions options;
  options.assume_nonnegative_costs = true;  // instances use costs >= 0
  options.warm_start = true;
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    auto inst = make_random_instance(seed);
    Graph& g = inst.graph;
    const auto first =
        solver.solve(g, inst.source, inst.sink, inst.demand, options);
    EXPECT_EQ(validate_flow(g, inst.source, inst.sink, first.flow),
              std::nullopt)
        << "seed " << seed;

    // Tighten ~1/3 of the arcs to half capacity, as a repair pass would.
    util::Xoshiro256 rng(seed ^ 0xfeedu);
    std::vector<FlowUnit> new_caps(std::size_t(g.num_arcs()));
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      new_caps[std::size_t(a)] = g.capacity(ArcId(a * 2));
      if (rng.bernoulli(0.33)) new_caps[std::size_t(a)] /= 2;
    }
    g.clear_flow();
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      g.set_capacity(ArcId(a * 2), new_caps[std::size_t(a)]);
    }
    const auto warm =
        solver.solve(g, inst.source, inst.sink, inst.demand, options);

    // Cold reference on an identically tightened copy.
    auto ref = make_random_instance(seed);
    for (ArcId a = 0; a < ref.graph.num_arcs(); ++a) {
      ref.graph.set_capacity(ArcId(a * 2), new_caps[std::size_t(a)]);
    }
    const auto cold = min_cost_flow_cycle_cancel(ref.graph, ref.source,
                                                 ref.sink, ref.demand);

    EXPECT_EQ(warm.flow, cold.flow) << "seed " << seed;
    EXPECT_EQ(warm.cost, cold.cost) << "seed " << seed;
    EXPECT_EQ(validate_flow(g, inst.source, inst.sink, warm.flow),
              std::nullopt)
        << "seed " << seed;
    EXPECT_FALSE(has_negative_residual_cycle(g)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rasc::flow
