// Network model: serialization timing, port contention, loopback, loss,
// node failure, traffic accounting.
#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rasc::sim {
namespace {

struct Ping final : Message {
  const char* kind() const override { return "test.ping"; }
  int tag = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  // 4 nodes, 1000 kbps each way, 10 ms latency everywhere.
  NetworkTest()
      : net_(sim_, make_uniform_topology(4, 1000.0, msec(10))) {}

  void expect_delivery(NodeIndex node, std::vector<SimTime>* times,
                       std::vector<int>* tags = nullptr) {
    net_.set_handler(node, [this, times, tags](const Packet& p) {
      times->push_back(sim_.now());
      if (tags != nullptr) {
        tags->push_back(static_cast<const Ping&>(*p.payload).tag);
      }
    });
  }

  static MessagePtr ping(int tag = 0) {
    auto m = std::make_shared<Ping>();
    m->tag = tag;
    return m;
  }

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, SerializationTimeMath) {
  // 1048 wire bytes at 1000 kbps = 1048*8000/1000 us.
  EXPECT_EQ(Network::serialization_time(1048, 1000.0), 8384);
  EXPECT_EQ(Network::serialization_time(0, 1000.0), 0);
  // Rounds up.
  EXPECT_EQ(Network::serialization_time(1, 8000.0), 1);
}

TEST_F(NetworkTest, SinglePacketEndToEndTiming) {
  std::vector<SimTime> times;
  expect_delivery(1, &times);
  net_.send(0, 1, 1000, ping());
  sim_.run_all();
  // tx 8384 + latency 10000 + rx 8384.
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 8384 + 10000 + 8384);
}

TEST_F(NetworkTest, OutputPortSerializesBackToBackSends) {
  std::vector<SimTime> times;
  expect_delivery(1, &times);
  net_.send(0, 1, 1000, ping(1));
  net_.send(0, 1, 1000, ping(2));
  sim_.run_all();
  ASSERT_EQ(times.size(), 2u);
  // Second packet departs 8384 later and then also waits for the first
  // to clear the receiver's input port.
  EXPECT_EQ(times[1] - times[0], 8384);
}

TEST_F(NetworkTest, InputPortContendedByTwoSenders) {
  std::vector<SimTime> times;
  expect_delivery(2, &times);
  net_.send(0, 2, 1000, ping(1));
  net_.send(1, 2, 1000, ping(2));
  sim_.run_all();
  ASSERT_EQ(times.size(), 2u);
  // Both arrive at the receiver simultaneously; the input port serializes
  // them 8384 us apart.
  EXPECT_EQ(times[1] - times[0], 8384);
}

TEST_F(NetworkTest, LoopbackIsFastAndFree) {
  std::vector<SimTime> times;
  expect_delivery(0, &times);
  net_.send(0, 0, 100000, ping());
  sim_.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], Network::kLoopbackDelay);
  EXPECT_EQ(net_.bytes_sent(0), 0);  // loopback consumes no bandwidth
}

TEST_F(NetworkTest, TrafficCountersTrackWireBytes) {
  net_.set_handler(1, [](const Packet&) {});
  net_.send(0, 1, 1000, ping());
  sim_.run_all();
  EXPECT_EQ(net_.bytes_sent(0), 1000 + Network::kFrameOverheadBytes);
  EXPECT_EQ(net_.bytes_received(1), 1000 + Network::kFrameOverheadBytes);
  EXPECT_EQ(net_.bytes_sent(1), 0);
}

TEST_F(NetworkTest, DownNodeDropsTraffic) {
  std::vector<SimTime> times;
  expect_delivery(1, &times);
  net_.set_node_up(1, false);
  net_.send(0, 1, 1000, ping());
  sim_.run_all();
  EXPECT_TRUE(times.empty());
  EXPECT_EQ(net_.packets_dropped(), 1);
  net_.set_node_up(1, true);
  net_.send(0, 1, 1000, ping());
  sim_.run_all();
  EXPECT_EQ(times.size(), 1u);
}

TEST_F(NetworkTest, NoHandlerCountsAsDrop) {
  net_.send(0, 3, 10, ping());
  sim_.run_all();
  EXPECT_EQ(net_.packets_dropped(), 1);
}

TEST_F(NetworkTest, PacketMetadataPreserved) {
  Packet seen;
  net_.set_handler(2, [&seen](const Packet& p) { seen = p; });
  net_.send(1, 2, 512, ping(7));
  sim_.run_all();
  EXPECT_EQ(seen.src, 1);
  EXPECT_EQ(seen.dst, 2);
  EXPECT_EQ(seen.size_bytes, 512);
  EXPECT_EQ(seen.sent_at, 0);
  EXPECT_EQ(static_cast<const Ping&>(*seen.payload).tag, 7);
}

TEST(NetworkLoss, LossRateDropsApproximateFraction) {
  Simulator sim(123);
  auto topo = make_uniform_topology(2, 100000.0, usec(10));
  topo.loss_rate = 0.3;
  Network net(sim, topo);
  int delivered = 0;
  net.set_handler(1, [&delivered](const Packet&) { ++delivered; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    net.send(0, 1, 10, std::make_shared<Ping>());
  }
  sim.run_all();
  EXPECT_NEAR(double(delivered) / n, 0.7, 0.05);
}

}  // namespace
}  // namespace rasc::sim

namespace rasc::sim {
namespace {

struct Blob2 final : Message {
  const char* kind() const override { return "test.blob2"; }
};

TEST(NetworkTailDrop, OutQueueDropsBeyondBacklog) {
  Simulator sim;
  auto topo = make_uniform_topology(2, 1000.0, msec(5));
  topo.max_port_backlog = msec(50);
  Network net(sim, topo);
  int delivered = 0;
  net.set_handler(1, [&delivered](const Packet&) { ++delivered; });
  // Each 1000-byte packet serializes in ~8.4 ms; backlog of 50 ms holds
  // ~6 of them. Sending 30 at once must tail-drop most.
  for (int i = 0; i < 30; ++i) {
    net.send(0, 1, 1000, std::make_shared<Blob2>());
  }
  sim.run_all();
  EXPECT_GT(net.out_queue_drops(0), 15);
  EXPECT_LT(delivered, 12);
  EXPECT_EQ(delivered + net.out_queue_drops(0), 30);
}

TEST(NetworkTailDrop, DropHandlerObservesLoss) {
  Simulator sim;
  auto topo = make_uniform_topology(2, 1000.0, msec(5));
  topo.max_port_backlog = msec(20);
  Network net(sim, topo);
  net.set_handler(1, [](const Packet&) {});
  int out_drops_seen = 0;
  net.set_drop_handler(0, [&out_drops_seen](const Packet&, bool outgoing) {
    if (outgoing) ++out_drops_seen;
  });
  for (int i = 0; i < 20; ++i) {
    net.send(0, 1, 1000, std::make_shared<Blob2>());
  }
  sim.run_all();
  EXPECT_EQ(out_drops_seen, net.out_queue_drops(0));
  EXPECT_GT(out_drops_seen, 0);
}

TEST(NetworkTailDrop, InQueueDropsWhenManySendersConverge) {
  Simulator sim;
  // Fast senders, slow receiver input: 10 senders at 10 Mbps out each
  // converge on a 500-kbps input port with a 30 ms backlog budget.
  Topology topo = make_uniform_topology(11, 10000.0, msec(2));
  topo.nodes[10].bw_in_kbps = 500.0;
  topo.max_port_backlog = msec(30);
  Network net(sim, topo);
  int delivered = 0;
  net.set_handler(10, [&delivered](const Packet&) { ++delivered; });
  for (int s = 0; s < 10; ++s) {
    for (int i = 0; i < 5; ++i) {
      net.send(NodeIndex(s), 10, 1000, std::make_shared<Blob2>());
    }
  }
  sim.run_all();
  EXPECT_GT(net.in_queue_drops(10), 0);
  EXPECT_EQ(delivered + net.in_queue_drops(10), 50);
}

TEST(NetworkJitter, LatencyJitterStaysWithinBounds) {
  Simulator sim(5);
  auto topo = make_uniform_topology(2, 100000.0, msec(100));
  topo.latency_jitter = 0.2;
  Network net(sim, topo);
  std::vector<SimTime> arrivals;
  net.set_handler(1, [&arrivals, &sim](const Packet&) {
    arrivals.push_back(sim.now());
  });
  // Well-spaced sends: delivery time = tx + jittered latency + rx.
  for (int i = 0; i < 200; ++i) {
    sim.call_at(msec(10 * i), [&net] {
      net.send(0, 1, 100, std::make_shared<Blob2>());
    });
  }
  sim.run_all();
  ASSERT_EQ(arrivals.size(), 200u);
  const SimDuration fixed = Network::serialization_time(148, 100000.0) * 2;
  SimTime min_lat = INT64_MAX, max_lat = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const SimTime lat = arrivals[i] - msec(10 * std::int64_t(i)) - fixed;
    min_lat = std::min(min_lat, lat);
    max_lat = std::max(max_lat, lat);
  }
  EXPECT_GE(min_lat, msec(80) - 10);
  EXPECT_LE(max_lat, msec(120) + 10);
  EXPECT_GT(max_lat - min_lat, msec(10));  // jitter is actually happening
}

TEST(NetworkChaos, FailAndRestoreNodeCountAndReset) {
  Simulator sim;
  Network net(sim, make_uniform_topology(3, 1000.0, msec(10)));
  std::vector<SimTime> times;
  net.set_handler(1, [&times, &sim](const Packet&) {
    times.push_back(sim.now());
  });

  net.fail_node(1);
  net.fail_node(1);  // idempotent: second call is a no-op
  EXPECT_FALSE(net.node_up(1));
  EXPECT_EQ(net.node_failures(1), 1);

  net.send(0, 1, 1000, std::make_shared<Ping>());
  sim.run_all();
  EXPECT_TRUE(times.empty());

  net.restore_node(1);
  net.restore_node(1);
  EXPECT_TRUE(net.node_up(1));
  EXPECT_EQ(net.node_restores(1), 1);
  EXPECT_EQ(net.node_failures(2), 0);

  // A restored node serves fresh traffic with clean port queues: base
  // timing, no residual backlog from before the failure.
  const SimTime t = sim.now();
  net.send(0, 1, 1000, std::make_shared<Ping>());
  sim.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0] - t, 8384 + 10000 + 8384);
}

TEST(NetworkChaos, BandwidthScaleStretchesSerialization) {
  Simulator sim;
  Network net(sim, make_uniform_topology(2, 1000.0, msec(10)));
  std::vector<SimTime> times;
  net.set_handler(1, [&times, &sim](const Packet&) {
    times.push_back(sim.now());
  });
  // Sender at quarter speed: tx takes 4x, rx unchanged.
  net.set_bandwidth_scale(0, 0.25);
  EXPECT_DOUBLE_EQ(net.bandwidth_scale(0), 0.25);
  net.send(0, 1, 1000, std::make_shared<Ping>());
  sim.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 4 * 8384 + 10000 + 8384);
  // Clearing back to 1.0 restores the exact base timing.
  net.set_bandwidth_scale(0, 1.0);
  times.clear();
  const SimTime t = sim.now();
  net.send(0, 1, 1000, std::make_shared<Ping>());
  sim.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0] - t, 8384 + 10000 + 8384);
}

TEST(NetworkChaos, ExtraLatencyAddsToBothEndpoints) {
  Simulator sim;
  Network net(sim, make_uniform_topology(2, 1000.0, msec(10)));
  std::vector<SimTime> times;
  net.set_handler(1, [&times, &sim](const Packet&) {
    times.push_back(sim.now());
  });
  net.set_extra_latency(0, msec(30));
  net.set_extra_latency(1, msec(5));
  net.send(0, 1, 1000, std::make_shared<Ping>());
  sim.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 8384 + 10000 + 35000 + 8384);
}

TEST(NetworkChaos, InjectedLossDropsApproximateFraction) {
  Simulator sim(77);
  Network net(sim, make_uniform_topology(2, 100000.0, usec(10)));
  int delivered = 0;
  net.set_handler(1, [&delivered](const Packet&) { ++delivered; });
  net.set_injected_loss(1, 0.4);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    net.send(0, 1, 10, std::make_shared<Ping>());
  }
  sim.run_all();
  EXPECT_NEAR(double(delivered) / n, 0.6, 0.05);
  // Clearing the injection restores lossless delivery.
  net.set_injected_loss(1, 0.0);
  delivered = 0;
  for (int i = 0; i < 100; ++i) {
    net.send(0, 1, 10, std::make_shared<Ping>());
  }
  sim.run_all();
  EXPECT_EQ(delivered, 100);
}

TEST(NetworkChaos, InterceptorDelaysAndDuplicates) {
  Simulator sim;
  Network net(sim, make_uniform_topology(2, 1000.0, msec(10)));
  std::vector<SimTime> times;
  net.set_handler(1, [&times, &sim](const Packet&) {
    times.push_back(sim.now());
  });
  int intercepted = 0;
  net.set_send_interceptor(
      [&intercepted](NodeIndex, NodeIndex,
                     const Message*) -> Network::SendPerturbation {
        Network::SendPerturbation p;
        ++intercepted;
        p.duplicates = 1;
        p.extra_delay = msec(50);
        return p;
      });
  net.send(0, 1, 1000, std::make_shared<Ping>());
  sim.run_all();
  // Original delayed 50 ms; one copy sent immediately. The copy must not
  // be re-intercepted (else duplication would cascade forever).
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(intercepted, 1);
  EXPECT_EQ(times[1] - times[0], msec(50));
  // Uninstalling restores plain delivery.
  net.set_send_interceptor(nullptr);
  times.clear();
  const SimTime t = sim.now();
  net.send(0, 1, 1000, std::make_shared<Ping>());
  sim.run_all();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0] - t, 8384 + 10000 + 8384);
}

TEST(NetworkJitter, ZeroJitterIsExactlyDeterministic) {
  Simulator sim(5);
  const auto topo = make_uniform_topology(2, 100000.0, msec(100));
  Network net(sim, topo);
  std::vector<SimTime> arrivals;
  net.set_handler(1, [&arrivals, &sim](const Packet&) {
    arrivals.push_back(sim.now());
  });
  for (int i = 0; i < 10; ++i) {
    sim.call_at(msec(10 * i), [&net] {
      net.send(0, 1, 100, std::make_shared<Blob2>());
    });
  }
  sim.run_all();
  const SimDuration fixed = Network::serialization_time(148, 100000.0) * 2;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i],
              msec(10 * std::int64_t(i)) + fixed + msec(100));
  }
}

}  // namespace
}  // namespace rasc::sim
