// 128-bit ring identifier arithmetic.
#include "overlay/node_id.hpp"

#include <gtest/gtest.h>

namespace rasc::overlay {
namespace {

NodeId128 id(std::uint64_t hi, std::uint64_t lo) { return NodeId128{hi, lo}; }

TEST(NodeId, DigitsComeFromTheTop) {
  const auto x = id(0x0123456789abcdefull, 0xfedcba9876543210ull);
  EXPECT_EQ(x.digit(0), 0x0);
  EXPECT_EQ(x.digit(1), 0x1);
  EXPECT_EQ(x.digit(15), 0xf);
  EXPECT_EQ(x.digit(16), 0xf);
  EXPECT_EQ(x.digit(17), 0xe);
  EXPECT_EQ(x.digit(31), 0x0);
}

TEST(NodeId, HexRendering) {
  EXPECT_EQ(id(0x0123456789abcdefull, 0xfedcba9876543210ull).to_hex(),
            "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(id(0, 0).to_hex(), "00000000000000000000000000000000");
}

TEST(NodeId, SharedPrefixLength) {
  const auto a = id(0xabcd000000000000ull, 0);
  const auto b = id(0xabce000000000000ull, 0);
  EXPECT_EQ(a.shared_prefix_len(b), 3);
  EXPECT_EQ(a.shared_prefix_len(a), kNumDigits);
  const auto c = id(0x1bcd000000000000ull, 0);
  EXPECT_EQ(a.shared_prefix_len(c), 0);
  // Prefix extending into the low word.
  const auto d = id(0xabcd000000000000ull, 0xf000000000000000ull);
  EXPECT_EQ(a.shared_prefix_len(d), 16);
}

TEST(NodeId, RingSubWraps) {
  const auto small = id(0, 5);
  const auto big = id(0, 10);
  EXPECT_EQ(big.ring_sub(small), id(0, 5));
  // 5 - 10 wraps to 2^128 - 5.
  const auto wrapped = small.ring_sub(big);
  EXPECT_EQ(wrapped.hi, ~0ull);
  EXPECT_EQ(wrapped.lo, ~0ull - 4);
}

TEST(NodeId, RingSubBorrowsAcrossWords) {
  const auto a = id(1, 0);
  const auto b = id(0, 1);
  const auto d = a.ring_sub(b);
  EXPECT_EQ(d.hi, 0ull);
  EXPECT_EQ(d.lo, ~0ull);
}

TEST(NodeId, RingDistanceIsSymmetricAndMin) {
  const auto a = id(0, 10);
  const auto b = id(0, 4);
  EXPECT_EQ(a.ring_distance(b), id(0, 6));
  EXPECT_EQ(b.ring_distance(a), id(0, 6));
  // Nearly-antipodal pair: distance goes the short way.
  const auto top = id(0xffffffffffffffffull, 0xffffffffffffffffull);
  const auto zero = id(0, 0);
  EXPECT_EQ(zero.ring_distance(top), id(0, 1));
}

TEST(NodeId, CloserToPrefersSmallerDistance) {
  const auto target = id(0, 100);
  EXPECT_TRUE(id(0, 90).closer_to(target, id(0, 80)));
  EXPECT_FALSE(id(0, 80).closer_to(target, id(0, 90)));
}

TEST(NodeId, CloserToBreaksTiesDeterministically) {
  const auto target = id(0, 100);
  const auto lo = id(0, 90);   // distance 10
  const auto hi = id(0, 110);  // distance 10
  EXPECT_TRUE(lo.closer_to(target, hi));
  EXPECT_FALSE(hi.closer_to(target, lo));
}

TEST(NodeId, FromDigestUsesFirst16Bytes) {
  util::Sha1Digest d{};
  for (int i = 0; i < 20; ++i) d[std::size_t(i)] = std::uint8_t(i + 1);
  const auto x = NodeId128::from_digest(d);
  EXPECT_EQ(x.hi, 0x0102030405060708ull);
  EXPECT_EQ(x.lo, 0x090a0b0c0d0e0f10ull);
}

TEST(NodeId, HashOfIsStableAndSpread) {
  const auto a = NodeId128::hash_of("overlay-node-0");
  const auto b = NodeId128::hash_of("overlay-node-0");
  const auto c = NodeId128::hash_of("overlay-node-1");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a.shared_prefix_len(c), 8);  // hashes should not share much
}

TEST(NodeId, OrderingIsLexOnWords) {
  EXPECT_LT(id(0, 5), id(0, 6));
  EXPECT_LT(id(0, ~0ull), id(1, 0));
}

}  // namespace
}  // namespace rasc::overlay
