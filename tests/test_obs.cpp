// Unit tests for the obs subsystem: metric registry (labels, totals,
// merge, snapshots, export), histogram percentiles, the data-unit
// lifecycle trace with its drop-reason taxonomy, and the end-to-end
// guarantee that tracing does not perturb a full experiment.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "obs/metric_registry.hpp"
#include "obs/unit_trace.hpp"

namespace {

using namespace rasc;

TEST(MetricRegistryTest, CellsAreDistinctPerNameAndLabels) {
  obs::MetricRegistry registry;
  obs::Labels a;
  a.node = 1;
  obs::Labels b;
  b.node = 2;
  auto& ca = registry.counter("x", a);
  auto& cb = registry.counter("x", b);
  auto& cy = registry.counter("y", a);
  EXPECT_NE(&ca, &cb);
  EXPECT_NE(&ca, &cy);
  // Same identity returns the same cell.
  EXPECT_EQ(&ca, &registry.counter("x", a));
  ca.add(3);
  cb.add();
  EXPECT_EQ(registry.find_counter("x", a)->value(), 3);
  EXPECT_EQ(registry.find_counter("x", b)->value(), 1);
  EXPECT_EQ(registry.find_counter("x", obs::Labels{}), nullptr);
}

TEST(MetricRegistryTest, ComponentLabelDistinguishesCells) {
  obs::MetricRegistry registry;
  obs::Labels ss0;
  ss0.node = 0;
  ss0.app = 7;
  ss0.component = "ss0";
  obs::Labels ss0b = ss0;
  ss0b.component = "ss0#1";  // re-deploy incarnation must not alias
  registry.counter("sink.delivered", ss0).add(5);
  registry.counter("sink.delivered", ss0b).add(11);
  EXPECT_EQ(registry.find_counter("sink.delivered", ss0)->value(), 5);
  EXPECT_EQ(registry.find_counter("sink.delivered", ss0b)->value(), 11);
  EXPECT_EQ(registry.counter_total("sink.delivered"), 16);
}

TEST(MetricRegistryTest, CounterTotalSumsOnlyTheNamedMetric) {
  obs::MetricRegistry registry;
  for (int n = 0; n < 4; ++n) {
    obs::Labels labels;
    labels.node = n;
    registry.counter("drops", labels).add(n);
    registry.counter("dropsuffix", labels).add(100);
  }
  registry.counter("drops").add(10);  // default (unlabeled) cell counts too
  EXPECT_EQ(registry.counter_total("drops"), 0 + 1 + 2 + 3 + 10);
  EXPECT_EQ(registry.counter_total("absent"), 0);
}

TEST(MetricRegistryTest, HistogramPercentilesAndTotals) {
  obs::MetricRegistry registry;
  obs::Labels a;
  a.node = 0;
  obs::Labels b;
  b.node = 1;
  for (int i = 1; i <= 50; ++i) registry.histogram("h", a).observe(i);
  for (int i = 51; i <= 100; ++i) registry.histogram("h", b).observe(i);

  const obs::Histogram total = registry.histogram_total("h");
  EXPECT_EQ(total.count(), 100u);
  EXPECT_DOUBLE_EQ(total.summary().mean(), 50.5);
  EXPECT_NEAR(total.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(total.percentile(0.95), 95.0, 1.0);
  EXPECT_GE(total.percentile(0.99), total.percentile(0.95));
}

TEST(MetricRegistryTest, MergeFromAddsCountersMergesHistograms) {
  obs::MetricRegistry a;
  obs::MetricRegistry b;
  obs::Labels l;
  l.node = 3;
  a.counter("c", l).add(2);
  b.counter("c", l).add(5);
  b.counter("only_b", l).add(1);
  a.gauge("g", l).set(1.0);
  b.gauge("g", l).set(4.0);
  a.histogram("h", l).observe(1.0);
  b.histogram("h", l).observe(3.0);

  a.merge_from(b);
  EXPECT_EQ(a.find_counter("c", l)->value(), 7);
  EXPECT_EQ(a.find_counter("only_b", l)->value(), 1);
  EXPECT_DOUBLE_EQ(a.find_gauge("g", l)->value(), 4.0);
  EXPECT_EQ(a.find_histogram("h", l)->count(), 2u);
  EXPECT_DOUBLE_EQ(a.find_histogram("h", l)->summary().mean(), 2.0);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndStable) {
  // Create cells in one order, read them back sorted by (name, labels).
  obs::MetricRegistry registry;
  obs::Labels n2;
  n2.node = 2;
  obs::Labels n1;
  n1.node = 1;
  registry.counter("z", n2).add(1);
  registry.counter("a", n2).add(2);
  registry.gauge("m", n1).set(0.5);
  registry.counter("a", n1).add(3);

  const auto rows = registry.snapshot();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "a");
  EXPECT_EQ(rows[0].labels.node, 1);
  EXPECT_EQ(rows[1].name, "a");
  EXPECT_EQ(rows[1].labels.node, 2);
  EXPECT_EQ(rows[2].name, "m");
  EXPECT_EQ(rows[3].name, "z");

  // A registry populated in a different order exports identical bytes.
  obs::MetricRegistry other;
  other.counter("a", n1).add(3);
  other.gauge("m", n1).set(0.5);
  other.counter("a", n2).add(2);
  other.counter("z", n2).add(1);
  std::ostringstream csv1, csv2, json1, json2;
  obs::MetricRegistry::write_csv(rows, csv1);
  obs::MetricRegistry::write_csv(other.snapshot(), csv2);
  obs::MetricRegistry::write_json(rows, json1);
  obs::MetricRegistry::write_json(other.snapshot(), json2);
  EXPECT_EQ(csv1.str(), csv2.str());
  EXPECT_EQ(json1.str(), json2.str());
  // Fixed header, one line per row.
  EXPECT_EQ(csv1.str().substr(0, 11), "metric,kind");
}

TEST(UnitTraceTest, DisabledRecordsNothing) {
  obs::UnitTrace trace(16);
  EXPECT_FALSE(trace.enabled());
  RASC_TRACE(&trace, obs::UnitId{1, 0, 0}, obs::Hop::kEmitted, 0, 100);
  EXPECT_EQ(trace.recorded(), 0);
  obs::UnitTrace* null_trace = nullptr;
  RASC_TRACE(null_trace, obs::UnitId{1, 0, 0}, obs::Hop::kEmitted, 0, 100);
}

TEST(UnitTraceTest, LifecycleAndDropTaxonomy) {
  obs::UnitTrace trace(64);
  trace.set_enabled(true);
  const obs::UnitId u1{7, 0, 0};
  const obs::UnitId u2{7, 0, 1};
  trace.record(u1, obs::Hop::kEmitted, 0, 10);
  trace.record(u1, obs::Hop::kPortQueued, 0, 11);
  trace.record(u1, obs::Hop::kScheduled, 3, 20);
  trace.record(u1, obs::Hop::kExecuted, 3, 25);
  trace.record(u1, obs::Hop::kDelivered, 5, 30);
  trace.record(u2, obs::Hop::kEmitted, 0, 12);
  trace.record(u2, obs::Hop::kDropped, 3, 22, obs::DropReason::kQueueFull);

  EXPECT_EQ(trace.recorded(), 7);
  EXPECT_EQ(trace.hop_count(obs::Hop::kEmitted), 2);
  EXPECT_EQ(trace.hop_count(obs::Hop::kDelivered), 1);
  EXPECT_EQ(trace.hop_count(obs::Hop::kDropped), 1);
  EXPECT_EQ(trace.dropped_by(obs::DropReason::kQueueFull), 1);
  EXPECT_EQ(trace.dropped_by(obs::DropReason::kLaxityExpired), 0);

  const auto history = trace.unit_history(u1);
  ASSERT_EQ(history.size(), 5u);
  EXPECT_EQ(history.front().hop, obs::Hop::kEmitted);
  EXPECT_EQ(history.back().hop, obs::Hop::kDelivered);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_LE(history[i - 1].at_us, history[i].at_us);
  }
}

TEST(UnitTraceTest, DropReasonNamesAreStable) {
  EXPECT_STREQ(obs::to_string(obs::DropReason::kLaxityExpired),
               "laxity-expired");
  EXPECT_STREQ(obs::to_string(obs::DropReason::kQueueFull), "queue-full");
  EXPECT_STREQ(obs::to_string(obs::DropReason::kPortTailDrop),
               "port-tail-drop");
  EXPECT_STREQ(obs::to_string(obs::DropReason::kNodeFailed), "node-failed");
  EXPECT_STREQ(obs::to_string(obs::Hop::kDelivered), "delivered");
}

TEST(UnitTraceTest, RingWrapKeepsExactCounts) {
  obs::UnitTrace trace(8);
  trace.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    trace.record(obs::UnitId{1, 0, i}, obs::Hop::kScheduled, 0, i);
  }
  EXPECT_EQ(trace.recorded(), 100);
  EXPECT_EQ(trace.hop_count(obs::Hop::kScheduled), 100);
  EXPECT_EQ(trace.overwritten(), 100 - 8);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first order of the last 8 records.
  EXPECT_EQ(events.front().unit.seq, 92);
  EXPECT_EQ(events.back().unit.seq, 99);
}

exp::RunConfig small_run_config(bool tracing) {
  exp::RunConfig config;
  config.world.nodes = 12;
  config.world.num_services = 4;
  config.world.services_per_node = 3;
  config.world.enable_unit_trace = tracing;
  config.workload.num_requests = 4;
  config.workload.min_services = 1;
  config.workload.max_services = 2;
  config.steady_duration = sim::sec(5);
  return config;
}

// The zero-perturbation guarantee: a full distributed experiment produces
// bit-identical metrics whether or not per-unit tracing records hops.
TEST(ObsTest, RunnerIdenticalWithTracingOnAndOff) {
  const auto off = exp::run_experiment(small_run_config(false));
  const auto on = exp::run_experiment(small_run_config(true));

  // Guard against a vacuous pass: the small world must actually admit
  // requests and stream units.
  EXPECT_GT(off.composed, 0);
  EXPECT_GT(off.emitted, 0);
  EXPECT_GT(off.delivered, 0);

  EXPECT_EQ(off.requests, on.requests);
  EXPECT_EQ(off.composed, on.composed);
  EXPECT_EQ(off.emitted, on.emitted);
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_EQ(off.timely, on.timely);
  EXPECT_EQ(off.out_of_order, on.out_of_order);
  EXPECT_EQ(off.drops_queue_full, on.drops_queue_full);
  EXPECT_EQ(off.drops_deadline, on.drops_deadline);
  EXPECT_EQ(off.unroutable, on.unroutable);
  EXPECT_EQ(off.drops_network, on.drops_network);
  // Float summaries must match to the bit, not approximately.
  EXPECT_EQ(off.delay_ms.mean(), on.delay_ms.mean());
  EXPECT_EQ(off.delay_ms.stddev(), on.delay_ms.stddev());
  EXPECT_EQ(off.jitter_ms.mean(), on.jitter_ms.mean());
}

// Same guarantee at figure-table granularity: a (small) version of the
// benches' sweep renders bit-identical tables with tracing on vs off.
TEST(ObsTest, SweepFigureTablesIdenticalWithTracing) {
  exp::SweepConfig sweep;
  sweep.base = small_run_config(false);
  sweep.algorithms = {"mincost", "greedy"};
  sweep.rates_kbps = {50, 150};
  sweep.repetitions = 2;
  sweep.threads = 2;

  const auto table_of = [&](bool tracing) {
    exp::SweepConfig cfg = sweep;
    cfg.base.world.enable_unit_trace = tracing;
    const auto result = exp::run_sweep(cfg);
    return exp::make_table(
        cfg, result, "delivered fraction",
        [](const exp::RunMetrics& m) { return m.delivered_fraction(); });
  };

  const auto off = table_of(false);
  const auto on = table_of(true);
  ASSERT_EQ(off.values.size(), on.values.size());
  for (std::size_t r = 0; r < off.values.size(); ++r) {
    ASSERT_EQ(off.values[r].size(), on.values[r].size());
    for (std::size_t c = 0; c < off.values[r].size(); ++c) {
      EXPECT_EQ(off.values[r][c], on.values[r][c])
          << off.row_labels[r] << " @ " << off.col_labels[c];
    }
  }
}

// The registry snapshot agrees with the RunMetrics the runner reports,
// and the trace's delivered/drop tallies agree with the counters.
TEST(ObsTest, RegistryAndTraceAgreeWithRunMetrics) {
  std::vector<obs::MetricRow> rows;
  const auto metrics = exp::run_experiment(small_run_config(false), &rows);
  ASSERT_FALSE(rows.empty());

  std::int64_t emitted = 0, delivered = 0;
  for (const auto& row : rows) {
    if (row.name == "source.units_emitted") {
      emitted += std::int64_t(row.value);
    }
    if (row.name == "sink.delivered") delivered += std::int64_t(row.value);
  }
  EXPECT_EQ(emitted, metrics.emitted);
  EXPECT_EQ(delivered, metrics.delivered);
}

#if RASC_OBS_TRACING
TEST(ObsTest, WorldTraceRecordsLifecycle) {
  auto config = small_run_config(true);
  // Run through the runner-free path: build the world inline so the trace
  // is inspectable afterwards.
  exp::World world(config.world);
  EXPECT_TRUE(world.unit_trace().enabled());
}
#endif

}  // namespace
