// Multi-resource composition (CPU + bandwidth — the paper's §2.1 general
// model with k resources, and its §6 future work): capacity translation,
// residual tracking, CPU-bound splitting, and runtime CPU accounting.
#include <gtest/gtest.h>

#include "core/greedy_composer.hpp"
#include "core/mincost_composer.hpp"
#include "core/plan_math.hpp"
#include "monitor/node_monitor.hpp"
#include "runtime/node_runtime.hpp"
#include "sim/topology.hpp"

namespace rasc::core {
namespace {

// 1250-byte payload units: 100 kbps = 10 delivered ups.
constexpr std::int64_t kUnitBytes = 1250;

runtime::ServiceCatalog heavy_catalog() {
  runtime::ServiceCatalog c;
  // 100 ms per unit: one CPU carries at most 10 units/sec.
  c.add({"heavy", sim::msec(100), 1.0, 1.0});
  c.add({"light", sim::msec(1), 1.0, 1.0});
  return c;
}

monitor::NodeStats node(sim::NodeIndex idx, double cap_kbps,
                        double cpu_used = 0.0) {
  monitor::NodeStats s;
  s.node = idx;
  s.capacity_in_kbps = cap_kbps;
  s.capacity_out_kbps = cap_kbps;
  s.cpu_used_fraction = cpu_used;
  return s;
}

ComposeInput base_input(const runtime::ServiceCatalog& cat) {
  ComposeInput input;
  input.catalog = &cat;
  input.request.app = 1;
  input.request.source = 100;
  input.request.destination = 101;
  input.request.unit_bytes = kUnitBytes;
  input.source_stats = node(100, 100000.0);
  input.destination_stats = node(101, 100000.0);
  return input;
}

TEST(SubstreamMathCpu, PerUnitCpuSeconds) {
  const auto cat = heavy_catalog();
  Substream sub{{"heavy", "light"}, 100.0};
  SubstreamMath math(sub, cat, kUnitBytes);
  EXPECT_DOUBLE_EQ(math.cpu_secs_per_in_unit(0), 0.1);
  EXPECT_DOUBLE_EQ(math.cpu_secs_per_in_unit(1), 0.001);
}

TEST(SubstreamMathCpu, CpuBoundsMaxRate) {
  const auto cat = heavy_catalog();
  Substream sub{{"heavy"}, 100.0};
  SubstreamMath math(sub, cat, kUnitBytes);
  // Bandwidth would allow ~96 ups, but a full CPU caps at 10 ups.
  EXPECT_DOUBLE_EQ(math.max_delivered_ups(0, 1e6, 1e6, 1.0), 10.0);
  // Half a CPU: 5 ups.
  EXPECT_DOUBLE_EQ(math.max_delivered_ups(0, 1e6, 1e6, 0.5), 5.0);
  // Negative = ignore CPU.
  EXPECT_GT(math.max_delivered_ups(0, 1e6, 1e6, -1.0), 1000.0);
}

TEST(ResidualTrackerCpu, TracksAndConsumes) {
  const auto cat = heavy_catalog();
  auto input = base_input(cat);
  input.providers["heavy"] = {node(1, 1000.0, /*cpu_used=*/0.4)};
  ResidualTracker tracker(input, /*headroom=*/1.0);
  EXPECT_DOUBLE_EQ(tracker.avail_cpu_fraction(1), 0.6);
  tracker.consume(1, 0, 0, 0.5);
  EXPECT_NEAR(tracker.avail_cpu_fraction(1), 0.1, 1e-12);
  tracker.consume(1, 0, 0, 0.5);
  EXPECT_DOUBLE_EQ(tracker.avail_cpu_fraction(1), 0.0);
}

TEST(MinCostComposerCpu, SplitsWhenCpuBinds) {
  // Demand 20 ups of a 100ms/unit service: no single CPU can run it, but
  // two nodes at 10 ups each can — bandwidth is plentiful everywhere.
  const auto cat = heavy_catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"heavy"}, 200.0}};  // 20 ups
  input.providers["heavy"] = {node(1, 100000.0), node(2, 100000.0),
                              node(3, 100000.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  const auto& stage = r.plan.substreams[0].stages[0];
  EXPECT_GE(stage.placements.size(), 2u) << "CPU-bound splitting expected";
  double total = 0;
  for (const auto& p : stage.placements) {
    EXPECT_LE(p.rate_units_per_sec, 10.0 * 0.91);  // headroom-scaled CPU cap
    total += p.rate_units_per_sec;
  }
  EXPECT_NEAR(total, 20.0, 0.1);
}

TEST(MinCostComposerCpu, RejectsWhenAggregateCpuShort) {
  const auto cat = heavy_catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"heavy"}, 300.0}};  // 30 ups > 2 CPUs
  input.providers["heavy"] = {node(1, 100000.0), node(2, 100000.0)};
  MinCostComposer composer;
  EXPECT_FALSE(composer.compose(input).admitted);
}

TEST(MinCostComposerCpu, NoCpuOptionIgnoresProcessorLimits) {
  const auto cat = heavy_catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"heavy"}, 300.0}};
  input.providers["heavy"] = {node(1, 100000.0), node(2, 100000.0)};
  MinCostComposer::Options options;
  options.consider_cpu = false;
  MinCostComposer composer(options);
  // Admits (and would overload the CPUs at runtime) — the ablation knob.
  EXPECT_TRUE(composer.compose(input).admitted);
}

TEST(MinCostComposerCpu, BusyCpuSteersPlacement) {
  const auto cat = heavy_catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"heavy"}, 80.0}};  // 8 ups -> 0.8 CPU
  input.providers["heavy"] = {node(1, 100000.0, /*cpu_used=*/0.5),
                              node(2, 100000.0, /*cpu_used=*/0.0)};
  MinCostComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  // Node 1 can carry at most ~4.5 ups; node 2 must take the bulk.
  double node2_share = 0;
  for (const auto& p : r.plan.substreams[0].stages[0].placements) {
    if (p.node == 2) node2_share = p.rate_units_per_sec;
  }
  EXPECT_GT(node2_share, 3.0);
}

TEST(GreedyComposerCpu, SkipsCpuSaturatedProviders) {
  const auto cat = heavy_catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"heavy"}, 80.0}};  // 0.8 CPU needed
  input.providers["heavy"] = {node(1, 100000.0, /*cpu_used=*/0.9),
                              node(2, 100000.0, /*cpu_used=*/0.0)};
  GreedyComposer composer;
  const auto r = composer.compose(input);
  ASSERT_TRUE(r.admitted) << r.error;
  EXPECT_EQ(r.plan.substreams[0].stages[0].placements[0].node, 2);
}

TEST(GreedyComposerCpu, RejectsWhenNoProviderHasCpu) {
  const auto cat = heavy_catalog();
  auto input = base_input(cat);
  input.request.substreams = {{{"heavy"}, 150.0}};  // 1.5 CPUs on one node
  input.providers["heavy"] = {node(1, 100000.0), node(2, 100000.0)};
  GreedyComposer composer;
  EXPECT_FALSE(composer.compose(input).admitted);
}

}  // namespace
}  // namespace rasc::core

namespace rasc::runtime {
namespace {

TEST(RuntimeCpu, MonitorMeasuresCpuUtilization) {
  sim::Simulator sim(3);
  sim::Network net(sim, sim::make_uniform_topology(3, 100000.0,
                                                   sim::msec(1)));
  monitor::NodeMonitor mon(sim, net, 1);
  ServiceCatalog catalog;
  catalog.add({"burn", sim::msec(25), 1.0, 1.0});  // 25 ms per unit
  NodeRuntime rt(sim, net, 1, mon, catalog);
  net.set_handler(1, [&rt](const sim::Packet& p) { rt.handle_packet(p); });
  net.set_handler(2, [](const sim::Packet&) {});

  // 20 ups x 25 ms = 50% CPU.
  rt.deploy_component({1, 0, 0}, "burn", 20.0, 500, {{2, 20.0}});
  monitor::NodeMonitor src_mon(sim, net, 0);
  NodeRuntime src(sim, net, 0, src_mon, catalog);
  src.deploy_source(1, 0, 20.0, 500, {{1, 20.0}}, 0, sim::sec(10));
  sim.run_until(sim::sec(10));
  EXPECT_NEAR(mon.snapshot().cpu_used_fraction, 0.5, 0.06);
}

TEST(RuntimeCpu, CpuReservationFollowsDeployAndTeardown) {
  sim::Simulator sim(3);
  sim::Network net(sim, sim::make_uniform_topology(2, 100000.0,
                                                   sim::msec(1)));
  monitor::NodeMonitor::Params params;
  params.advertise_reservations = true;
  monitor::NodeMonitor mon(sim, net, 0, params);
  ServiceCatalog catalog;
  catalog.add({"burn", sim::msec(50), 1.0, 1.0});
  NodeRuntime rt(sim, net, 0, mon, catalog);

  rt.deploy_component({1, 0, 0}, "burn", 10.0, 500, {{1, 10.0}});
  // 10 ups x 50 ms = 0.5 CPU reserved.
  EXPECT_NEAR(mon.snapshot().cpu_reserved_fraction, 0.5, 1e-9);
  EXPECT_NEAR(mon.snapshot().available_cpu_fraction(), 0.5, 1e-9);
  rt.teardown_app(1);
  EXPECT_NEAR(mon.snapshot().cpu_reserved_fraction, 0.0, 1e-9);
}

TEST(RuntimeCpu, ObservedExecTimeConvergesUnderJitter) {
  ServiceSpec spec{"jittery", sim::msec(10), 1.0, 1.0, 0.4};
  Component c({1, 0, 0}, spec, 10.0, {{1, 10.0}});
  // Before any execution: nominal.
  EXPECT_EQ(c.expected_exec_time(), sim::msec(10));
  // Feed a drifted series: EWMA tracks it.
  for (int i = 0; i < 100; ++i) c.on_executed(sim::msec(14));
  EXPECT_NEAR(double(c.expected_exec_time()), double(sim::msec(14)),
              double(sim::msec(1)));
}

TEST(RuntimeCpu, JitteredExecutionStillDeliversEverything) {
  sim::Simulator sim(9);
  sim::Network net(sim, sim::make_uniform_topology(3, 100000.0,
                                                   sim::msec(1)));
  monitor::NodeMonitor mon0(sim, net, 0), mon1(sim, net, 1),
      mon2(sim, net, 2);
  ServiceCatalog catalog;
  catalog.add({"wobble", sim::msec(5), 1.0, 1.0, 0.5});
  NodeRuntime rt0(sim, net, 0, mon0, catalog);
  NodeRuntime rt1(sim, net, 1, mon1, catalog);
  NodeRuntime rt2(sim, net, 2, mon2, catalog);
  net.set_handler(1, [&rt1](const sim::Packet& p) { rt1.handle_packet(p); });
  net.set_handler(2, [&rt2](const sim::Packet& p) { rt2.handle_packet(p); });

  rt1.deploy_component({1, 0, 0}, "wobble", 20.0, 500, {{2, 20.0}});
  rt2.deploy_sink(1, 0, 20.0, 500);
  rt0.deploy_source(1, 0, 20.0, 500, {{1, 20.0}}, 0, sim::sec(5));
  sim.run_until(sim::sec(7));
  EXPECT_EQ(rt2.aggregate_sink_stats().delivered, 100);
}

}  // namespace
}  // namespace rasc::runtime
