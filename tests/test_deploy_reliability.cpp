// Reliable deployment control plane: receiver-side dedup and epoch
// ordering, coordinator retransmission/rollback, the orphan reaper, and
// the chaos control-loss scenario end to end.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "chaos/injector.hpp"
#include "chaos/scenario.hpp"
#include "core/coordinator.hpp"
#include "core/mincost_composer.hpp"
#include "exp/world.hpp"
#include "runtime/deploy_messages.hpp"

namespace rasc {
namespace {

exp::WorldConfig small_world() {
  exp::WorldConfig wc;
  wc.nodes = 12;
  wc.num_services = 6;
  wc.services_per_node = 3;
  wc.seed = 21;
  wc.net.bw_min_kbps = 4000;
  wc.net.bw_max_kbps = 8000;
  // Snapshots expose reservations (several tests read them back).
  wc.monitor_params.advertise_reservations = true;
  return wc;
}

core::ServiceRequest request_for(exp::World& world) {
  core::ServiceRequest req;
  req.app = 1;
  req.source = 0;
  req.destination = sim::NodeIndex(world.size() - 1);
  req.unit_bytes = 1250;
  req.substreams = {{{"svc0", "svc1"}, 100.0}};
  return req;
}

sim::Packet deliver(exp::World& world, sim::NodeIndex dst,
                    sim::MessagePtr payload) {
  sim::Packet packet;
  packet.src = 0;
  packet.dst = dst;
  packet.size_bytes = 64;
  packet.payload = std::move(payload);
  packet.sent_at = world.simulator().now();
  return packet;
}

std::shared_ptr<runtime::DeployComponentMsg> component_msg(
    runtime::AppId app, std::uint64_t epoch, std::uint64_t request_id,
    sim::NodeIndex next_node) {
  auto msg = std::make_shared<runtime::DeployComponentMsg>();
  msg->key = runtime::ComponentKey{app, 0, 0};
  msg->service = "svc0";
  msg->rate_units_per_sec = 50;
  msg->in_unit_bytes = 1250;
  msg->next = {runtime::Placement{next_node, 50}};
  msg->request_id = request_id;
  msg->requester = 0;
  msg->epoch = epoch;
  return msg;
}

double monitor_reserved(exp::World& world, std::size_t node) {
  const auto stats = world.host(node).monitor().snapshot();
  return stats.reserved_in_kbps + stats.reserved_out_kbps;
}

double total_reserved_for_app(exp::World& world, runtime::AppId app) {
  double total = 0;
  for (std::size_t n = 0; n < world.size(); ++n) {
    total += world.host(n).runtime().reserved_kbps_for_app(app);
  }
  return total;
}

TEST(DeployReliability, DuplicateDeployReAcksWithoutReapplying) {
  exp::World world(small_world());
  auto& rt = world.host(1).runtime();

  const auto msg = component_msg(7, 1, 77, sim::NodeIndex(2));
  ASSERT_TRUE(rt.handle_packet(deliver(world, 1, msg)));
  EXPECT_EQ(rt.component_count(), 1u);
  const double reserved_once = monitor_reserved(world, 1);
  EXPECT_GT(reserved_once, 0);

  // Retransmission / wire duplicate: verdict re-acked, nothing re-applied.
  ASSERT_TRUE(rt.handle_packet(deliver(world, 1, msg)));
  EXPECT_EQ(rt.component_count(), 1u);
  EXPECT_EQ(monitor_reserved(world, 1), reserved_once);
  EXPECT_EQ(world.metrics().counter_total("deploy.dup_acks"), 1);
}

TEST(DeployReliability, RolledBackEpochTombstonesLateDeploys) {
  exp::World world(small_world());
  auto& rt = world.host(1).runtime();

  // The rollback teardown of attempt 5 overtook its deploy messages.
  auto td = std::make_shared<runtime::TeardownAppMsg>();
  td->app = 7;
  td->epoch = 5;
  ASSERT_TRUE(rt.handle_packet(deliver(world, 1, td)));

  // Late deploy of the rolled-back attempt: dropped, not re-instantiated.
  ASSERT_TRUE(
      rt.handle_packet(deliver(world, 1, component_msg(7, 5, 91, 2))));
  EXPECT_EQ(rt.component_count(), 0u);
  // And anything from an older attempt too.
  ASSERT_TRUE(
      rt.handle_packet(deliver(world, 1, component_msg(7, 4, 92, 2))));
  EXPECT_EQ(rt.component_count(), 0u);
  EXPECT_EQ(world.metrics().counter_total("deploy.stale_epoch"), 2);

  // A genuinely newer attempt still deploys.
  ASSERT_TRUE(
      rt.handle_packet(deliver(world, 1, component_msg(7, 6, 93, 2))));
  EXPECT_EQ(rt.component_count(), 1u);
}

TEST(DeployReliability, StaleTeardownCannotKillNewerEpoch) {
  exp::World world(small_world());
  auto& rt = world.host(1).runtime();

  ASSERT_TRUE(
      rt.handle_packet(deliver(world, 1, component_msg(7, 5, 91, 2))));
  ASSERT_EQ(rt.component_count(), 1u);

  // A reordered rollback of attempt 3 arrives after attempt 5 deployed.
  auto stale = std::make_shared<runtime::TeardownAppMsg>();
  stale->app = 7;
  stale->epoch = 3;
  ASSERT_TRUE(rt.handle_packet(deliver(world, 1, stale)));
  EXPECT_EQ(rt.component_count(), 1u);
  EXPECT_EQ(world.metrics().counter_total("deploy.stale_epoch"), 1);

  // Epoch 0 = unconditional (supervisor recovery): always applies.
  auto legacy = std::make_shared<runtime::TeardownAppMsg>();
  legacy->app = 7;
  ASSERT_TRUE(rt.handle_packet(deliver(world, 1, legacy)));
  EXPECT_EQ(rt.component_count(), 0u);
}

// Satellite (a): under chaos control-duplicate, every deploy message
// arrives twice; receiver-side dedup must keep reservations single.
TEST(DeployReliability, ControlDuplicateChaosDoesNotDoubleReserve) {
  exp::World world(small_world());
  auto& sim = world.simulator();

  chaos::Scenario s;
  s.name = "dup-everything";
  s.seed = 7;
  chaos::Fault f;
  f.kind = chaos::FaultKind::kControlDuplicate;
  f.at = 0;
  f.duration = 0;  // whole run
  f.probability = 1.0;
  s.faults.push_back(f);
  chaos::Injector injector(sim, world.network(), s);
  injector.arm(sim.now(), sim.now() + sim::sec(60));

  core::MinCostComposer composer;
  const auto req = request_for(world);
  bool done = false;
  core::SubmitOutcome outcome;
  world.host(0).coordinator().submit(req, composer, 0,
                                     sim.now() + sim::sec(10),
                                     [&](const core::SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  sim.run_until(sim.now() + sim::sec(12));
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.compose.admitted) << outcome.compose.error;
  EXPECT_GT(world.metrics().counter_total("deploy.dup_acks"), 0);

  // The monitor-side reservation on every node must equal what the
  // runtime's books say: a double-applied deploy would inflate only the
  // former (the runtime's maps are keyed and silently overwrite).
  for (std::size_t n = 0; n < world.size(); ++n) {
    EXPECT_NEAR(monitor_reserved(world, n),
                world.host(n).runtime().reserved_kbps_for_app(req.app), 1e-6)
        << "node " << n;
  }
}

// Satellite (b) + tentpole rollback: a deploy that can never complete
// (every sink deploy lost) must release all partial reservations on
// timeout when rollback is on — and demonstrably leak without it.
TEST(DeployReliability, TimeoutRollbackReleasesPartialReservations) {
  for (const bool rollback : {false, true}) {
    exp::WorldConfig wc = small_world();
    wc.deploy_policy.rollback = rollback;
    exp::World world(wc);
    auto& sim = world.simulator();
    world.network().set_send_interceptor(
        [](sim::NodeIndex, sim::NodeIndex, const sim::Message* payload)
            -> sim::Network::SendPerturbation {
          sim::Network::SendPerturbation p;
          if (payload != nullptr &&
              std::string_view(payload->kind()) == "runtime.deploy_sink") {
            p.drop = true;
          }
          return p;
        });

    core::MinCostComposer composer;
    const auto req = request_for(world);
    bool done = false;
    core::SubmitOutcome outcome;
    world.host(0).coordinator().submit(req, composer, 0,
                                       sim.now() + sim::sec(10),
                                       [&](const core::SubmitOutcome& o) {
                                         done = true;
                                         outcome = o;
                                       });
    sim.run_until(sim.now() + sim::sec(12));
    ASSERT_TRUE(done);
    EXPECT_FALSE(outcome.compose.admitted);

    const double leaked = total_reserved_for_app(world, req.app);
    if (rollback) {
      EXPECT_EQ(leaked, 0) << "rollback left reservations behind";
      EXPECT_EQ(world.metrics().counter_total("deploy.rollbacks"), 1);
    } else {
      // Negative control: the single-shot protocol strands the
      // components it managed to place.
      EXPECT_GT(leaked, 0);
      EXPECT_EQ(world.metrics().counter_total("deploy.rollbacks"), 0);
    }
  }
}

TEST(DeployReliability, NackTriggersRollback) {
  exp::WorldConfig wc = small_world();
  wc.deploy_policy.rollback = true;
  exp::World world(wc);
  auto& sim = world.simulator();

  // Snoop the first component deploy, drop it, and answer it with a
  // forged NACK instead (a deterministic stand-in for an overloaded
  // runtime rejecting the instantiation).
  struct Snoop {
    bool dropped = false;
    std::uint64_t rid = 0;
    sim::NodeIndex target = sim::kInvalidNode;
    sim::NodeIndex requester = sim::kInvalidNode;
  };
  auto snoop = std::make_shared<Snoop>();
  world.network().set_send_interceptor(
      [snoop](sim::NodeIndex src, sim::NodeIndex dst,
              const sim::Message* payload)
          -> sim::Network::SendPerturbation {
        sim::Network::SendPerturbation p;
        const auto* dc =
            dynamic_cast<const runtime::DeployComponentMsg*>(payload);
        if (dc != nullptr && !snoop->dropped) {
          snoop->dropped = true;
          snoop->rid = dc->request_id;
          snoop->target = dst;
          snoop->requester = src;
          p.drop = true;
        }
        return p;
      });

  core::MinCostComposer composer;
  const auto req = request_for(world);
  bool done = false;
  core::SubmitOutcome outcome;
  world.host(0).coordinator().submit(req, composer, 0,
                                     sim.now() + sim::sec(10),
                                     [&](const core::SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  // By 3 s the deploy phase ran and the snooped message was dropped.
  sim.run_until(sim.now() + sim::sec(3));
  ASSERT_TRUE(snoop->dropped);
  auto nack = std::make_shared<runtime::DeployAck>();
  nack->request_id = snoop->rid;
  nack->ok = false;
  world.network().send(snoop->target, snoop->requester,
                       runtime::DeployAck::kBytes, std::move(nack));
  sim.run_until(sim.now() + sim::sec(8));

  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.compose.admitted);
  EXPECT_EQ(world.metrics().counter_total("deploy.rollbacks"), 1);
  EXPECT_EQ(total_reserved_for_app(world, req.app), 0);
}

// Satellite (d): an ack that arrives after its deploy already timed out
// must be counted, not silently swallowed.
TEST(DeployReliability, StaleAckAfterTimeoutIsCounted) {
  exp::WorldConfig wc = small_world();
  wc.deploy_policy.rollback = true;  // policy on => stale acks counted
  exp::World world(wc);
  auto& sim = world.simulator();

  struct Snoop {
    std::uint64_t rid = 0;
    sim::NodeIndex target = sim::kInvalidNode;
    sim::NodeIndex requester = sim::kInvalidNode;
  };
  auto snoop = std::make_shared<Snoop>();
  world.network().set_send_interceptor(
      [snoop](sim::NodeIndex src, sim::NodeIndex dst,
              const sim::Message* payload)
          -> sim::Network::SendPerturbation {
        sim::Network::SendPerturbation p;
        const auto* ds = dynamic_cast<const runtime::DeploySinkMsg*>(payload);
        if (ds != nullptr) {
          snoop->rid = ds->request_id;
          snoop->target = dst;
          snoop->requester = src;
          p.drop = true;  // the sink never deploys -> deadline fires
        }
        return p;
      });

  core::MinCostComposer composer;
  const auto req = request_for(world);
  bool done = false;
  core::SubmitOutcome outcome;
  world.host(0).coordinator().submit(req, composer, 0,
                                     sim.now() + sim::sec(20),
                                     [&](const core::SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  // Past composition (~0.5 s) + the 5 s deploy deadline.
  sim.run_until(sim.now() + sim::sec(8));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.compose.admitted);
  ASSERT_NE(snoop->rid, 0u);
  EXPECT_EQ(world.metrics().counter_total("deploy.stale_ack"), 0);

  // The "lost" ack finally limps in, long after the deadline.
  auto ack = std::make_shared<runtime::DeployAck>();
  ack->request_id = snoop->rid;
  ack->ok = true;
  world.network().send(snoop->target, snoop->requester,
                       runtime::DeployAck::kBytes, std::move(ack));
  sim.run_until(sim.now() + sim::sec(2));
  EXPECT_EQ(world.metrics().counter_total("deploy.stale_ack"), 1);
}

// Tentpole acceptance: with deploy-plane packets dropped at p=0.25 the
// retransmitting coordinator still admits; the same seeds without
// retransmission fail (negative control).
TEST(DeployReliability, RetransmissionSurvivesControlLoss) {
  bool reliable_admitted = false;
  bool single_shot_admitted = true;
  std::int64_t retries = 0;
  for (const bool reliable : {false, true}) {
    exp::WorldConfig wc = small_world();
    if (reliable) {
      wc.deploy_policy.retransmit_budget = 5;
      wc.deploy_policy.retransmit_base = sim::msec(300);
      wc.deploy_policy.rollback = true;
    }
    exp::World world(wc);
    auto& sim = world.simulator();
    chaos::Injector injector(
        sim, world.network(),
        chaos::parse_scenario("control-loss:prob=0.25,at=0s,seed=9"));
    injector.arm(sim.now(), sim.now() + sim::sec(60));

    core::MinCostComposer composer;
    const auto req = request_for(world);
    bool done = false;
    core::SubmitOutcome outcome;
    world.host(0).coordinator().submit(req, composer, 0,
                                       sim.now() + sim::sec(15),
                                       [&](const core::SubmitOutcome& o) {
                                         done = true;
                                         outcome = o;
                                       });
    sim.run_until(sim.now() + sim::sec(20));
    ASSERT_TRUE(done);
    if (reliable) {
      reliable_admitted = outcome.compose.admitted;
      retries = world.metrics().counter_total("deploy.retries");
    } else {
      single_shot_admitted = outcome.compose.admitted;
    }
  }
  EXPECT_TRUE(reliable_admitted);
  EXPECT_FALSE(single_shot_admitted);
  EXPECT_GT(retries, 0);
}

TEST(DeployReliability, OrphanReaperCollectsAbandonedPartialDeploy) {
  exp::WorldConfig wc = small_world();
  wc.runtime_params.orphan_lease = sim::sec(2);
  exp::World world(wc);
  auto& sim = world.simulator();
  auto& rt = world.host(2).runtime();

  // A partial deploy whose coordinator died: nothing ever streams, no
  // teardown will ever arrive.
  ASSERT_TRUE(
      rt.handle_packet(deliver(world, 2, component_msg(7, 1, 50, 3))));
  ASSERT_EQ(rt.component_count(), 1u);
  ASSERT_GT(monitor_reserved(world, 2), 0);

  sim.run_until(sim.now() + sim::sec(6));
  EXPECT_EQ(rt.component_count(), 0u);
  EXPECT_EQ(monitor_reserved(world, 2), 0);
  EXPECT_EQ(world.metrics().counter_total("orphan.reaped"), 1);
}

TEST(DeployReliability, SupervisorProbesRenewOrphanLease) {
  exp::WorldConfig wc = small_world();
  wc.runtime_params.orphan_lease = sim::sec(2);
  exp::World world(wc);
  auto& sim = world.simulator();
  auto& rt = world.host(2).runtime();

  ASSERT_TRUE(
      rt.handle_packet(deliver(world, 2, component_msg(7, 1, 50, 3))));

  // A supervisor is probing the app: each probe renews the lease.
  const sim::SimTime t0 = sim.now();
  for (int i = 1; i <= 5; ++i) {
    sim.call_at(t0 + sim::SimDuration(i) * sim::sec(1), [&rt, &world] {
      auto probe = std::make_shared<runtime::SinkHealthRequest>();
      probe->app = 7;
      probe->request_id = 1;
      probe->requester = 0;
      rt.handle_packet(deliver(world, 2, probe));
    });
  }
  sim.run_until(t0 + sim::sec(5) + sim::msec(500));
  EXPECT_EQ(rt.component_count(), 1u) << "reaped despite live probes";

  // Probes stop (the supervisor died too): the lease lapses and the
  // orphan is collected.
  sim.run_until(t0 + sim::sec(10));
  EXPECT_EQ(rt.component_count(), 0u);
  EXPECT_EQ(world.metrics().counter_total("orphan.reaped"), 1);
}

TEST(DeployReliability, StreamedAppsAreNeverReaped) {
  exp::WorldConfig wc = small_world();
  wc.runtime_params.orphan_lease = sim::sec(2);
  exp::World world(wc);
  auto& sim = world.simulator();

  core::MinCostComposer composer;
  const auto req = request_for(world);
  bool done = false;
  core::SubmitOutcome outcome;
  world.host(0).coordinator().submit(req, composer, sim.now() + sim::sec(1),
                                     sim.now() + sim::sec(6),
                                     [&](const core::SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  // Far past the stream's end plus many leases: a deployed app that
  // actually streamed must keep its state (end-of-run stats read it).
  sim.run_until(sim.now() + sim::sec(15));
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.compose.admitted) << outcome.compose.error;
  EXPECT_EQ(world.metrics().counter_total("orphan.reaped"), 0);
  const auto sink =
      world.host(world.size() - 1).runtime().aggregate_sink_stats();
  EXPECT_GT(sink.delivered, 0);
  EXPECT_GT(total_reserved_for_app(world, req.app), 0);
}

// Byte-identity guard: a default-policy run must create none of the new
// registry cells (snapshots stay identical to pre-reliability builds).
TEST(DeployReliability, CleanRunCreatesNoReliabilityCells) {
  exp::World world(small_world());
  auto& sim = world.simulator();
  core::MinCostComposer composer;
  const auto req = request_for(world);
  bool done = false;
  world.host(0).coordinator().submit(
      req, composer, 0, sim.now() + sim::sec(10),
      [&](const core::SubmitOutcome&) { done = true; });
  sim.run_until(sim.now() + sim::sec(12));
  ASSERT_TRUE(done);

  for (const auto& row : world.metrics().snapshot()) {
    EXPECT_NE(row.name.rfind("deploy.", 0), 0u) << row.name;
    EXPECT_NE(row.name.rfind("orphan.", 0), 0u) << row.name;
  }
}

}  // namespace
}  // namespace rasc
