// Coordinator pipeline over a real (simulated) world: discovery through
// the DHT, stats over the network, composition, deployment with acks.
#include "core/coordinator.hpp"

#include <gtest/gtest.h>

#include "core/backoff.hpp"
#include "core/greedy_composer.hpp"
#include "core/mincost_composer.hpp"
#include "exp/world.hpp"

namespace rasc::core {
namespace {

exp::WorldConfig small_world() {
  exp::WorldConfig wc;
  wc.nodes = 12;
  wc.num_services = 6;
  wc.services_per_node = 3;
  wc.seed = 21;
  wc.net.bw_min_kbps = 4000;
  wc.net.bw_max_kbps = 8000;
  return wc;
}

ServiceRequest request_for(exp::World& world) {
  ServiceRequest req;
  req.app = 1;
  req.source = 0;
  req.destination = sim::NodeIndex(world.size() - 1);
  req.unit_bytes = 1250;
  req.substreams = {{{"svc0", "svc1"}, 100.0}};
  return req;
}

TEST(Coordinator, ComposesAndDeploysEndToEnd) {
  exp::World world(small_world());
  auto& sim = world.simulator();
  MinCostComposer composer;
  const auto req = request_for(world);

  bool done = false;
  SubmitOutcome outcome;
  world.host(0).coordinator().submit(
      req, composer, 0, sim.now() + sim::sec(10),
      [&](const SubmitOutcome& o) {
        done = true;
        outcome = o;
      });
  sim.run_until(sim.now() + sim::sec(12));

  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.compose.admitted) << outcome.compose.error;
  EXPECT_GT(outcome.composition_latency, 0);
  EXPECT_LT(outcome.composition_latency, sim::sec(5));

  // Components exist on the planned nodes and the stream flowed.
  const auto& plan = outcome.compose.plan;
  for (std::size_t ss = 0; ss < plan.substreams.size(); ++ss) {
    const auto& sub = plan.substreams[ss];
    for (std::size_t st = 0; st < sub.stages.size(); ++st) {
      for (const auto& p : sub.stages[st].placements) {
        EXPECT_NE(world.host(std::size_t(p.node))
                      .runtime()
                      .find_component({plan.app, std::int32_t(ss),
                                       std::int32_t(st)}),
                  nullptr);
      }
    }
  }
  const auto sink = world.host(world.size() - 1)
                        .runtime()
                        .aggregate_sink_stats();
  EXPECT_GT(sink.delivered, 0);
}

TEST(Coordinator, UnknownServiceIsRejectedViaDiscovery) {
  exp::World world(small_world());
  auto& sim = world.simulator();
  MinCostComposer composer;
  auto req = request_for(world);
  req.substreams[0].services = {"svc0", "no-such-service"};

  bool done = false;
  SubmitOutcome outcome;
  world.host(0).coordinator().submit(req, composer, 0,
                                     sim.now() + sim::sec(5),
                                     [&](const SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  sim.run_until(sim.now() + sim::sec(8));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.compose.admitted);
  EXPECT_NE(outcome.compose.error.find("discovery"), std::string::npos)
      << outcome.compose.error;
}

TEST(Coordinator, InvalidRequestFailsFast) {
  exp::World world(small_world());
  MinCostComposer composer;
  ServiceRequest bad;  // empty
  bool done = false;
  SubmitOutcome outcome;
  world.host(0).coordinator().submit(bad, composer, 0, sim::sec(5),
                                     [&](const SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  EXPECT_TRUE(done);  // synchronous rejection
  EXPECT_FALSE(outcome.compose.admitted);
}

TEST(Coordinator, ConcurrentRequestsBothHandled) {
  exp::World world(small_world());
  auto& sim = world.simulator();
  MinCostComposer composer;
  auto r1 = request_for(world);
  auto r2 = request_for(world);
  r2.app = 2;
  r2.source = 1;
  r2.substreams = {{{"svc2"}, 80.0}};

  int done = 0, admitted = 0;
  auto cb = [&](const SubmitOutcome& o) {
    ++done;
    admitted += o.compose.admitted ? 1 : 0;
  };
  world.host(0).coordinator().submit(r1, composer, 0,
                                     sim.now() + sim::sec(10), cb);
  world.host(1).coordinator().submit(r2, composer, 0,
                                     sim.now() + sim::sec(10), cb);
  sim.run_until(sim.now() + sim::sec(12));
  EXPECT_EQ(done, 2);
  EXPECT_EQ(admitted, 2);
}

TEST(Coordinator, GreedyDeploysOneInstancePerService) {
  exp::World world(small_world());
  auto& sim = world.simulator();
  GreedyComposer composer;
  const auto req = request_for(world);
  bool done = false;
  SubmitOutcome outcome;
  world.host(0).coordinator().submit(req, composer, 0,
                                     sim.now() + sim::sec(10),
                                     [&](const SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  sim.run_until(sim.now() + sim::sec(12));
  ASSERT_TRUE(done);
  ASSERT_TRUE(outcome.compose.admitted) << outcome.compose.error;
  EXPECT_EQ(outcome.compose.plan.component_count(), 2u);
}

TEST(CappedBackoff, ExponentialLadderSaturates) {
  using sim::msec;
  EXPECT_EQ(capped_backoff(msec(300), msec(5000), 0), msec(300));
  EXPECT_EQ(capped_backoff(msec(300), msec(5000), 1), msec(600));
  EXPECT_EQ(capped_backoff(msec(300), msec(5000), 2), msec(1200));
  EXPECT_EQ(capped_backoff(msec(300), msec(5000), 3), msec(2400));
  EXPECT_EQ(capped_backoff(msec(300), msec(5000), 10), msec(5000));
  EXPECT_EQ(capped_backoff(msec(300), msec(5000), 1000), msec(5000));
}

TEST(Coordinator, DiscoveryRetriesSpreadOut) {
  // An unknown service fails every lookup. With kDiscoveryAttempts = 3
  // the two retry gaps follow the 300/600 ms backoff ladder, so the
  // rejection cannot arrive before ~900 ms of retry spacing — the old
  // fixed 300 ms beat re-hammered the overlay and finished by ~600 ms.
  exp::World world(small_world());
  auto& sim = world.simulator();
  MinCostComposer composer;
  auto req = request_for(world);
  req.substreams[0].services = {"svc0", "no-such-service"};

  bool done = false;
  SubmitOutcome outcome;
  world.host(0).coordinator().submit(req, composer, 0,
                                     sim.now() + sim::sec(10),
                                     [&](const SubmitOutcome& o) {
                                       done = true;
                                       outcome = o;
                                     });
  sim.run_until(sim.now() + sim::sec(12));
  ASSERT_TRUE(done);
  EXPECT_FALSE(outcome.compose.admitted);
  EXPECT_GE(outcome.composition_latency,
            Coordinator::kDiscoveryBackoff * 3)
      << "retries arrived in lockstep instead of backing off";
}

}  // namespace
}  // namespace rasc::core
