// NodeRuntime integration on a hand-wired 4-node chain: deployment
// (direct and via messages), streaming, overload drops, splitting,
// teardown, unroutable units.
#include "runtime/node_runtime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/topology.hpp"

namespace rasc::runtime {
namespace {

class RuntimeFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 4;

  explicit RuntimeFixture(double bw_kbps = 100000.0)
      : net_(sim_, sim::make_uniform_topology(kNodes, bw_kbps,
                                              sim::msec(2))) {
    ServiceSpec fast{"fast", sim::msec(1), 1.0, 1.0};
    ServiceSpec slow{"slow", sim::msec(40), 1.0, 1.0};
    ServiceSpec half{"half", sim::msec(1), 0.5, 1.0};
    catalog_.add(fast);
    catalog_.add(slow);
    catalog_.add(half);
    monitor::NodeMonitor::Params monitor_params;
    monitor_params.advertise_reservations = true;  // asserted by tests
    for (sim::NodeIndex i = 0; i < sim::NodeIndex(kNodes); ++i) {
      monitors_.push_back(std::make_unique<monitor::NodeMonitor>(
          sim_, net_, i, monitor_params));
      runtimes_.push_back(std::make_unique<NodeRuntime>(
          sim_, net_, i, *monitors_.back(), catalog_));
      NodeRuntime* rt = runtimes_.back().get();
      net_.set_handler(i,
                       [rt](const sim::Packet& p) { rt->handle_packet(p); });
    }
  }

  NodeRuntime& rt(std::size_t i) { return *runtimes_[i]; }

  sim::Simulator sim_;
  sim::Network net_;
  ServiceCatalog catalog_;
  std::vector<std::unique_ptr<monitor::NodeMonitor>> monitors_;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;
};

TEST_F(RuntimeFixture, TwoStageChainDeliversEverything) {
  // source(0) -> fast@1 -> fast@2 -> sink(3), 20 ups for 5 s.
  rt(1).deploy_component({1, 0, 0}, "fast", 20.0, 1000, {{2, 20.0}});
  rt(2).deploy_component({1, 0, 1}, "fast", 20.0, 1000, {{3, 20.0}});
  rt(3).deploy_sink(1, 0, 20.0, 1000);
  rt(0).deploy_source(1, 0, 20.0, 1000, {{1, 20.0}}, 0, sim::sec(5));
  sim_.run_until(sim::sec(7));

  EXPECT_EQ(rt(0).total_emitted(), 100);
  const auto sink = rt(3).aggregate_sink_stats();
  EXPECT_EQ(sink.delivered, 100);
  EXPECT_EQ(sink.out_of_order, 0);
  EXPECT_EQ(rt(1).units_processed(), 100);
  EXPECT_EQ(rt(2).units_processed(), 100);
  EXPECT_EQ(rt(1).units_dropped_deadline() + rt(1).units_dropped_queue_full(),
            0);
  // Delay = 3 network hops (~2 ms each + serialization) + 2 ms CPU.
  EXPECT_GT(sink.delay_ms.mean(), 6.0);
  EXPECT_LT(sink.delay_ms.mean(), 30.0);
}

TEST_F(RuntimeFixture, OverloadedComponentDropsUnits) {
  // "slow" takes 40 ms/unit but units arrive every 20 ms: half must drop.
  rt(1).deploy_component({1, 0, 0}, "slow", 50.0, 1000, {{3, 50.0}});
  rt(3).deploy_sink(1, 0, 50.0, 1000);
  rt(0).deploy_source(1, 0, 50.0, 1000, {{1, 50.0}}, 0, sim::sec(5));
  sim_.run_until(sim::sec(7));

  const auto sink = rt(3).aggregate_sink_stats();
  EXPECT_EQ(rt(0).total_emitted(), 250);
  const auto drops =
      rt(1).units_dropped_deadline() + rt(1).units_dropped_queue_full();
  EXPECT_GT(drops, 80);
  EXPECT_LT(sink.delivered, 200);
  EXPECT_NEAR(double(sink.delivered + drops), 250.0, 5.0);
}

TEST_F(RuntimeFixture, SplitStageSharesLoad) {
  // Stage 0 split across nodes 1 and 2 (1:1); both forward to the sink.
  rt(1).deploy_component({1, 0, 0}, "fast", 10.0, 1000, {{3, 20.0}});
  rt(2).deploy_component({1, 0, 0}, "fast", 10.0, 1000, {{3, 20.0}});
  rt(3).deploy_sink(1, 0, 20.0, 1000);
  rt(0).deploy_source(1, 0, 20.0, 1000, {{1, 10.0}, {2, 10.0}}, 0,
                      sim::sec(5));
  sim_.run_until(sim::sec(7));

  EXPECT_EQ(rt(1).units_processed(), 50);
  EXPECT_EQ(rt(2).units_processed(), 50);
  const auto sink = rt(3).aggregate_sink_stats();
  EXPECT_EQ(sink.delivered, 100);
  // Symmetric paths: splitting does not reorder here.
  EXPECT_EQ(sink.out_of_order, 0);
}

TEST_F(RuntimeFixture, RateRatioHalvesDeliveredStream) {
  rt(1).deploy_component({1, 0, 0}, "half", 40.0, 1000, {{3, 20.0}});
  rt(3).deploy_sink(1, 0, 20.0, 1000);
  rt(0).deploy_source(1, 0, 40.0, 1000, {{1, 40.0}}, 0, sim::sec(5));
  sim_.run_until(sim::sec(7));
  EXPECT_EQ(rt(0).total_emitted(), 200);
  EXPECT_EQ(rt(3).aggregate_sink_stats().delivered, 100);
}

TEST_F(RuntimeFixture, MessageBasedDeploymentWorks) {
  auto dc = std::make_shared<DeployComponentMsg>();
  dc->key = {7, 0, 0};
  dc->service = "fast";
  dc->rate_units_per_sec = 10.0;
  dc->in_unit_bytes = 500;
  dc->next = {{3, 10.0}};
  dc->request_id = 1;
  dc->requester = 0;
  bool acked = false;
  net_.set_handler(0, [&acked](const sim::Packet& p) {
    if (const auto* ack = dynamic_cast<const DeployAck*>(p.payload.get())) {
      acked = ack->ok;
    }
  });
  net_.send(0, 1, dc->wire_size(), dc);
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(acked);
  EXPECT_NE(rt(1).find_component({7, 0, 0}), nullptr);
}

TEST_F(RuntimeFixture, UnknownServiceDeployNacks) {
  auto dc = std::make_shared<DeployComponentMsg>();
  dc->key = {7, 0, 0};
  dc->service = "no-such-service";
  dc->rate_units_per_sec = 10.0;
  dc->in_unit_bytes = 500;
  dc->next = {{3, 10.0}};
  dc->request_id = 2;
  dc->requester = 0;
  bool got_ack = false, ok = true;
  net_.set_handler(0, [&](const sim::Packet& p) {
    if (const auto* ack = dynamic_cast<const DeployAck*>(p.payload.get())) {
      got_ack = true;
      ok = ack->ok;
    }
  });
  net_.send(0, 1, dc->wire_size(), dc);
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(got_ack);
  EXPECT_FALSE(ok);
  EXPECT_EQ(rt(1).find_component({7, 0, 0}), nullptr);
}

TEST_F(RuntimeFixture, UnroutableUnitsCounted) {
  auto du = std::make_shared<DataUnit>();
  du->app = 99;
  du->substream = 0;
  du->stage = 0;
  du->size_bytes = 100;
  net_.send(0, 1, 100, du);
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(rt(1).units_unroutable(), 1);
}

TEST_F(RuntimeFixture, TeardownRemovesEverythingAndReleasesReservations) {
  rt(1).deploy_component({1, 0, 0}, "fast", 20.0, 1000, {{3, 20.0}});
  rt(1).deploy_sink(2, 0, 10.0, 1000);
  rt(1).deploy_source(3, 0, 10.0, 1000, {{3, 10.0}}, 0, sim::sec(60));
  const auto before = monitors_[1]->snapshot();
  EXPECT_GT(before.reserved_in_kbps, 0);
  EXPECT_GT(before.reserved_out_kbps, 0);

  rt(1).teardown_app(1);
  rt(1).teardown_app(2);
  rt(1).teardown_app(3);
  EXPECT_EQ(rt(1).component_count(), 0u);
  EXPECT_EQ(rt(1).find_sink(2, 0), nullptr);
  EXPECT_EQ(rt(1).find_source(3, 0), nullptr);
  const auto after = monitors_[1]->snapshot();
  EXPECT_NEAR(after.reserved_in_kbps, 0.0, 1e-9);
  EXPECT_NEAR(after.reserved_out_kbps, 0.0, 1e-9);
}

TEST_F(RuntimeFixture, TeardownViaMessage) {
  rt(1).deploy_component({5, 0, 0}, "fast", 20.0, 1000, {{3, 20.0}});
  auto td = std::make_shared<TeardownAppMsg>();
  td->app = 5;
  net_.send(0, 1, TeardownAppMsg::kBytes, td);
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(rt(1).find_component({5, 0, 0}), nullptr);
}

TEST_F(RuntimeFixture, DeadlineDropsFeedTheMonitor) {
  rt(1).deploy_component({1, 0, 0}, "slow", 50.0, 1000, {{3, 50.0}});
  rt(3).deploy_sink(1, 0, 50.0, 1000);
  rt(0).deploy_source(1, 0, 50.0, 1000, {{1, 50.0}}, 0, sim::sec(5));
  sim_.run_until(sim::sec(7));
  EXPECT_GT(monitors_[1]->drop_ratio(), 0.1);
}

}  // namespace
}  // namespace rasc::runtime
