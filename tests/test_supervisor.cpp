// AppSupervisor: liveness probing, starvation detection, automatic
// teardown + re-composition, and restraint on healthy streams.
#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include "core/mincost_composer.hpp"
#include "exp/world.hpp"

namespace rasc::core {
namespace {

struct SupervisedApp {
  bool admitted = false;
  runtime::AppPlan plan;
};

exp::WorldConfig world_config() {
  exp::WorldConfig wc;
  wc.nodes = 16;
  wc.num_services = 6;
  wc.services_per_node = 4;
  wc.seed = 23;
  wc.net.bw_min_kbps = 1500;
  wc.net.bw_max_kbps = 4000;
  return wc;
}

ServiceRequest request_for(exp::World& world, runtime::AppId app) {
  ServiceRequest req;
  req.app = app;
  req.source = 0;
  req.destination = sim::NodeIndex(world.size() - 1);
  req.unit_bytes = 1250;
  req.substreams = {{{"svc0", "svc1"}, 150.0}};
  return req;
}

/// Submits, runs until admitted, returns the plan.
SupervisedApp submit_and_wait(exp::World& world, Composer& composer,
                              const ServiceRequest& req,
                              sim::SimTime stop) {
  SupervisedApp out;
  world.host(std::size_t(req.source))
      .coordinator()
      .submit(req, composer, 0, stop, [&out](const SubmitOutcome& o) {
        out.admitted = o.compose.admitted;
        out.plan = o.compose.plan;
      });
  auto& sim = world.simulator();
  sim.run_until(sim.now() + sim::sec(6));
  return out;
}

TEST(Supervisor, HealthyStreamIsLeftAlone) {
  exp::World world(world_config());
  auto& sim = world.simulator();
  MinCostComposer composer;
  const auto req = request_for(world, 1);
  const sim::SimTime stop = sim.now() + sim::sec(40);
  const auto app = submit_and_wait(world, composer, req, stop);
  ASSERT_TRUE(app.admitted);

  int events = 0;
  auto& supervisor = world.host(0).supervisor();
  supervisor.watch(req, app.plan, stop,
                   [&events](const AppSupervisor::Event&) { ++events; });
  sim.run_until(sim.now() + sim::sec(25));
  EXPECT_EQ(events, 0) << "healthy stream must not trigger recovery";
  // Supervision ends when the stream does.
  sim.run_until(stop + sim::sec(5));
  EXPECT_EQ(supervisor.watched_count(), 0u);
}

TEST(Supervisor, RecoversFromComponentHostFailure) {
  exp::World world(world_config());
  auto& sim = world.simulator();
  MinCostComposer composer;
  const auto req = request_for(world, 1);
  const sim::SimTime stop = sim.now() + sim::sec(90);
  const auto app = submit_and_wait(world, composer, req, stop);
  ASSERT_TRUE(app.admitted);

  std::vector<AppSupervisor::Event> events;
  auto& supervisor = world.host(0).supervisor();
  supervisor.watch(req, app.plan, stop,
                   [&events](const AppSupervisor::Event& e) {
                     events.push_back(e);
                   });

  // Kill the node hosting the first component; the stream starves.
  const auto victim = app.plan.substreams[0].stages[0].placements[0].node;
  sim.run_until(sim.now() + sim::sec(5));
  world.network().set_node_up(victim, false);
  for (std::size_t n = 0; n < world.size(); ++n) {
    if (sim::NodeIndex(n) != victim) {
      world.overlay().at(n).purge_peer(victim);
    }
  }

  sim.run_until(sim.now() + sim::sec(30));
  ASSERT_GE(events.size(), 2u) << "expected recovering + recovered";
  EXPECT_EQ(events[0].kind, AppSupervisor::Event::Kind::kRecovering);
  const auto recovered_it = std::find_if(
      events.begin(), events.end(), [](const AppSupervisor::Event& e) {
        return e.kind == AppSupervisor::Event::Kind::kRecovered;
      });
  ASSERT_NE(recovered_it, events.end()) << "recovery did not complete";
  const auto new_app = recovered_it->new_app;
  EXPECT_NE(new_app, req.app);

  // The replacement stream is actually flowing at the destination.
  const auto* sink = world.host(world.size() - 1)
                         .runtime()
                         .find_sink(new_app, 0);
  ASSERT_NE(sink, nullptr);
  const auto delivered_mid = sink->stats().delivered;
  sim.run_until(sim.now() + sim::sec(10));
  EXPECT_GT(sink->stats().delivered, delivered_mid)
      << "recovered stream is not making progress";
}

TEST(Supervisor, GivesUpAfterMaxRecoveries) {
  exp::World world(world_config());
  auto& sim = world.simulator();
  MinCostComposer composer;
  const auto req = request_for(world, 1);
  const sim::SimTime stop = sim.now() + sim::sec(200);
  const auto app = submit_and_wait(world, composer, req, stop);
  ASSERT_TRUE(app.admitted);

  AppSupervisor::Params params;
  params.check_interval = sim::sec(1);
  params.strikes_to_recover = 2;
  params.max_recoveries = 1;
  AppSupervisor supervisor(sim, world.network(),
                           world.host(0).coordinator(), composer, params);
  // NOTE: this standalone supervisor shares node 0's fallback with the
  // Host's own supervisor; route health replies manually by watching
  // through the host-owned one is not possible here, so install the
  // standalone one in front.
  world.overlay().set_fallback(0, [&world, &supervisor](
                                      const sim::Packet& p) {
    if (supervisor.handle_packet(p)) return;
    world.host(0).handle_packet(p);
  });

  std::vector<AppSupervisor::Event> events;
  supervisor.watch(req, app.plan, stop,
                   [&events](const AppSupervisor::Event& e) {
                     events.push_back(e);
                   });

  // Kill the destination: every recomposition targets the same (dead)
  // destination, so recovery can never succeed.
  world.network().set_node_up(req.destination, false);
  sim.run_until(sim.now() + sim::sec(120));

  const auto gave_up = std::count_if(
      events.begin(), events.end(), [](const AppSupervisor::Event& e) {
        return e.kind == AppSupervisor::Event::Kind::kGaveUp ||
               e.kind == AppSupervisor::Event::Kind::kRecoveryFailed;
      });
  EXPECT_GE(gave_up, 1) << "supervisor must stop retrying eventually";
  EXPECT_EQ(supervisor.watched_count(), 0u);
}

TEST(Supervisor, ForgetStopsSupervision) {
  exp::World world(world_config());
  auto& sim = world.simulator();
  MinCostComposer composer;
  const auto req = request_for(world, 1);
  const sim::SimTime stop = sim.now() + sim::sec(60);
  const auto app = submit_and_wait(world, composer, req, stop);
  ASSERT_TRUE(app.admitted);

  auto& supervisor = world.host(0).supervisor();
  int events = 0;
  supervisor.watch(req, app.plan, stop,
                   [&events](const AppSupervisor::Event&) { ++events; });
  EXPECT_EQ(supervisor.watched_count(), 1u);
  supervisor.forget(req.app);
  EXPECT_EQ(supervisor.watched_count(), 0u);

  // Even after killing a host, no recovery fires.
  world.network().set_node_up(
      app.plan.substreams[0].stages[0].placements[0].node, false);
  sim.run_until(sim.now() + sim::sec(20));
  EXPECT_EQ(events, 0);
}

/// Rejects everything: recovery re-compositions through this composer
/// always fail, exercising the retry/backoff/give-up path in isolation.
struct RejectingComposer : Composer {
  const char* name() const override { return "rejecting"; }
  ComposeResult compose(const ComposeInput&) override {
    ComposeResult r;
    r.admitted = false;
    r.error = "synthetic rejection";
    return r;
  }
};

/// Runs a stream into a RejectingComposer-backed supervisor, kills its
/// stage-0 host, and records (kind, time) for every supervisor event.
std::vector<std::pair<AppSupervisor::Event::Kind, sim::SimTime>>
failing_recovery_events(exp::World& world, const AppSupervisor::Params& params) {
  auto& sim = world.simulator();
  MinCostComposer admit_composer;
  const auto req = request_for(world, 1);
  const sim::SimTime stop = sim.now() + sim::sec(200);
  const auto app = submit_and_wait(world, admit_composer, req, stop);
  EXPECT_TRUE(app.admitted);

  RejectingComposer rejecting;
  AppSupervisor supervisor(sim, world.network(), world.host(0).coordinator(),
                           rejecting, params, &world.metrics());
  world.overlay().set_fallback(0, [&world, &supervisor](
                                      const sim::Packet& p) {
    if (supervisor.handle_packet(p)) return;
    world.host(0).handle_packet(p);
  });

  std::vector<std::pair<AppSupervisor::Event::Kind, sim::SimTime>> events;
  supervisor.watch(req, app.plan, stop,
                   [&events, &sim](const AppSupervisor::Event& e) {
                     events.emplace_back(e.kind, sim.now());
                   });

  const auto victim = app.plan.substreams[0].stages[0].placements[0].node;
  world.network().fail_node(victim);
  for (std::size_t n = 0; n < world.size(); ++n) {
    if (sim::NodeIndex(n) != victim) {
      world.overlay().at(n).purge_peer(victim);
    }
  }
  sim.run_until(sim.now() + sim::sec(120));
  return events;
}

TEST(Supervisor, RetryBackoffGrowsUntilGiveUp) {
  AppSupervisor::Params params;
  params.check_interval = sim::sec(1);
  params.strikes_to_recover = 1;
  params.max_recoveries = 5;
  params.recovery_backoff = sim::msec(100);
  params.recovery_backoff_max = sim::sec(1);
  params.recovery_jitter = 0;  // exact exponential ladder

  exp::World world(world_config());
  const auto events = failing_recovery_events(world, params);

  using K = AppSupervisor::Event::Kind;
  const auto count = [&events](K kind) {
    return std::count_if(events.begin(), events.end(),
                         [kind](const auto& e) { return e.first == kind; });
  };
  EXPECT_EQ(count(K::kRecovering), 1);
  EXPECT_EQ(count(K::kRecoveryFailed), 5);
  EXPECT_EQ(count(K::kGaveUp), 1);
  EXPECT_EQ(count(K::kRecovered), 0);

  // Gaps between consecutive failed attempts follow the doubling ladder
  // (200, 400, 800, 1000 ms of backoff plus a near-constant composition
  // round-trip), so each gap must strictly exceed the previous one.
  std::vector<sim::SimTime> failures;
  for (const auto& [kind, at] : events) {
    if (kind == K::kRecoveryFailed) failures.push_back(at);
  }
  ASSERT_EQ(failures.size(), 5u);
  sim::SimDuration prev_gap = 0;
  for (std::size_t i = 1; i < failures.size(); ++i) {
    const sim::SimDuration gap = failures[i] - failures[i - 1];
    EXPECT_GT(gap, prev_gap)
        << "retry " << i << " did not back off further than retry "
        << (i - 1);
    prev_gap = gap;
  }
  // The last gap is bounded by the cap plus one probe/compose cycle.
  EXPECT_LE(prev_gap, params.recovery_backoff_max + sim::sec(3));

  // The give-up is visible in the deployment-wide registry too.
  EXPECT_EQ(world.metrics().counter_total("supervisor.gave_up"), 1);
  EXPECT_EQ(world.metrics().counter_total("supervisor.recoveries_failed"), 5);
  EXPECT_EQ(world.metrics().counter_total("supervisor.recoveries_succeeded"),
            0);
}

TEST(Supervisor, JitteredBackoffIsDeterministicPerSeed) {
  AppSupervisor::Params params;
  params.check_interval = sim::sec(1);
  params.strikes_to_recover = 1;
  params.max_recoveries = 4;
  params.recovery_backoff = sim::msec(100);
  params.recovery_backoff_max = sim::sec(1);
  params.recovery_jitter = 0.3;

  // Same seed twice: identical event timelines (jitter draws come from a
  // private RNG keyed by (jitter_seed, node), not from anything the run
  // perturbs).
  std::vector<std::vector<sim::SimTime>> runs;
  for (int i = 0; i < 2; ++i) {
    exp::World world(world_config());
    const auto events = failing_recovery_events(world, params);
    std::vector<sim::SimTime> times;
    for (const auto& [kind, at] : events) times.push_back(at);
    ASSERT_FALSE(times.empty());
    runs.push_back(std::move(times));
  }
  EXPECT_EQ(runs[0], runs[1]);

  // A different jitter seed shifts the retry times (but only those: the
  // first kRecovering fires before any jittered delay).
  params.jitter_seed = 0xBADC0FFEEull;
  exp::World world(world_config());
  const auto events = failing_recovery_events(world, params);
  std::vector<sim::SimTime> times;
  for (const auto& [kind, at] : events) times.push_back(at);
  ASSERT_EQ(times.size(), runs[0].size());
  EXPECT_NE(times, runs[0]);
  EXPECT_EQ(times[0], runs[0][0]);
}

}  // namespace
}  // namespace rasc::core
