// Event queue: time ordering, FIFO tie-break (determinism), cancellation.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rasc::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule(5, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const auto id = q.schedule(5, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const auto id = q.schedule(5, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> order;
  const auto first = q.schedule(1, [&] { order.push_back(1); });
  q.schedule(2, [&] { order.push_back(2); });
  q.cancel(first);
  EXPECT_EQ(q.next_time(), 2);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  const auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, FiredCarriesTimeAndId) {
  EventQueue q;
  const auto id = q.schedule(77, [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.time, 77);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(i % 10, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  std::size_t fired = 0;
  SimTime last = -1;
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.time, last);
    last = f.time;
    ++fired;
  }
  EXPECT_EQ(fired, 50u);
}

}  // namespace
}  // namespace rasc::sim
