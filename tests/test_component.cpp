// Component semantics: deadline/period inference, rate-ratio credit,
// sequence preservation, output sizing and WRR output partitioning.
#include "runtime/component.hpp"

#include <gtest/gtest.h>

#include <map>

namespace rasc::runtime {
namespace {

ServiceSpec spec(double ratio = 1.0, double size_factor = 1.0) {
  ServiceSpec s;
  s.name = "svc";
  s.cpu_time_per_unit = sim::msec(3);
  s.rate_ratio = ratio;
  s.output_size_factor = size_factor;
  return s;
}

DataUnit in_unit(std::int64_t seq, std::int64_t bytes = 1000) {
  DataUnit u;
  u.app = 1;
  u.substream = 0;
  u.seq = seq;
  u.stage = 2;
  u.size_bytes = bytes;
  u.created_at = 123;
  return u;
}

TEST(Component, DeadlineUsesPlannedRateWhenCold) {
  Component c({1, 0, 0}, spec(), 10.0, {{5, 10.0}});
  // Planned 10 ups -> period 100 ms.
  EXPECT_EQ(c.on_arrival(0), sim::msec(100));
}

TEST(Component, DeadlineTracksObservedRate) {
  Component c({1, 0, 0}, spec(), 10.0, {{5, 10.0}});
  // Feed arrivals every 50 ms: the measured period takes over.
  sim::SimTime t = 0;
  sim::SimTime deadline = 0;
  for (int i = 0; i < 20; ++i) {
    deadline = c.on_arrival(t);
    t += sim::msec(50);
  }
  EXPECT_NEAR(double(deadline - (t - sim::msec(50))), 50000.0, 5000.0);
}

TEST(Component, RatioOnePreservesSeqAndForwardsStage) {
  Component c({1, 0, 2}, spec(), 10.0, {{5, 10.0}});
  const auto outs = c.process(in_unit(42));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].unit.seq, 42);
  EXPECT_EQ(outs[0].unit.stage, 3);
  EXPECT_EQ(outs[0].unit.app, 1);
  EXPECT_EQ(outs[0].unit.created_at, 123);
  EXPECT_EQ(outs[0].target, 5);
}

TEST(Component, DownsamplerEmitsEveryOther) {
  Component c({1, 0, 0}, spec(0.5), 10.0, {{5, 10.0}});
  int emitted = 0;
  for (int i = 0; i < 100; ++i) {
    emitted += int(c.process(in_unit(i)).size());
  }
  EXPECT_EQ(emitted, 50);
}

TEST(Component, ExpanderEmitsTwoPerUnit) {
  Component c({1, 0, 0}, spec(2.0), 10.0, {{5, 10.0}});
  const auto outs = c.process(in_unit(0));
  EXPECT_EQ(outs.size(), 2u);
}

TEST(Component, FractionalRatioLongRunAverage) {
  Component c({1, 0, 0}, spec(0.75), 10.0, {{5, 10.0}});
  int emitted = 0;
  for (int i = 0; i < 400; ++i) emitted += int(c.process(in_unit(i)).size());
  EXPECT_EQ(emitted, 300);
}

TEST(Component, OutputSizeFactorApplies) {
  Component c({1, 0, 0}, spec(1.0, 0.5), 10.0, {{5, 10.0}});
  const auto outs = c.process(in_unit(0, 1000));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].unit.size_bytes, 500);
}

TEST(Component, TinyOutputClampsToOneByte) {
  Component c({1, 0, 0}, spec(1.0, 0.0001), 10.0, {{5, 10.0}});
  const auto outs = c.process(in_unit(0, 100));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_GE(outs[0].unit.size_bytes, 1);
}

TEST(Component, SplitsOutputsAcrossTargetsByWeight) {
  Component c({1, 0, 0}, spec(), 30.0,
              {{5, 10.0}, {6, 20.0}});  // 1:2 split
  std::map<sim::NodeIndex, int> counts;
  for (int i = 0; i < 300; ++i) {
    for (const auto& out : c.process(in_unit(i))) ++counts[out.target];
  }
  EXPECT_EQ(counts[5], 100);
  EXPECT_EQ(counts[6], 200);
}

TEST(Component, CountersTrack) {
  Component c({1, 0, 0}, spec(), 10.0, {{5, 10.0}});
  c.on_arrival(0);
  c.on_arrival(sim::msec(100));
  c.process(in_unit(0));
  c.count_drop();
  EXPECT_EQ(c.arrived(), 2);
  EXPECT_EQ(c.processed(), 1);
  EXPECT_EQ(c.dropped(), 1);
}

TEST(Component, ReconfigureReratesAndRewritesSplit) {
  // The rate adapter's in-place rate update: planned rate and downstream
  // split change, measured statistics survive.
  Component c({1, 0, 2}, spec(), 10.0, {{5, 10.0}});
  sim::SimTime t = 0;
  for (int i = 0; i < 20; ++i) {
    c.on_arrival(t);
    t += sim::msec(50);
  }
  c.reconfigure(20.0, {{7, 20.0}});
  EXPECT_DOUBLE_EQ(c.planned_rate(), 20.0);
  const auto outs = c.process(in_unit(1));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].target, 7);
  // The measured ~50 ms arrival period survives the reconfigure (it is
  // fresher than either planned rate).
  EXPECT_NEAR(double(c.current_period(t)), 50000.0, 10000.0);
  EXPECT_EQ(c.arrived(), 20);
}

TEST(Component, NonUnityRatioAssignsFreshSequence) {
  Component c({1, 0, 0}, spec(2.0), 10.0, {{5, 10.0}});
  const auto first = c.process(in_unit(100));
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].unit.seq, 0);
  EXPECT_EQ(first[1].unit.seq, 1);
  const auto second = c.process(in_unit(101));
  EXPECT_EQ(second[0].unit.seq, 2);
}

}  // namespace
}  // namespace rasc::runtime
