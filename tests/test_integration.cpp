// Cross-module integration: paper-shaped relationships on a scaled-down
// scenario (directional claims from §4.2 that should already show at
// small scale), plus a full miniature sweep through the parallel runner.
#include <gtest/gtest.h>

#include "exp/sweep.hpp"

namespace rasc::exp {
namespace {

RunConfig scenario() {
  RunConfig cfg;
  cfg.world.nodes = 16;
  cfg.world.num_services = 8;
  cfg.world.services_per_node = 4;
  cfg.world.seed = 33;
  // Tight bandwidth so admission actually binds.
  cfg.world.net.bw_min_kbps = 800;
  cfg.world.net.bw_max_kbps = 2200;
  cfg.workload.num_requests = 24;
  cfg.workload.avg_rate_kbps = 150;
  cfg.submit_gap = sim::msec(400);
  cfg.steady_duration = sim::sec(10);
  return cfg;
}

RunMetrics run_with(const std::string& algorithm) {
  auto cfg = scenario();
  cfg.algorithm = algorithm;
  return run_experiment(cfg);
}

TEST(Integration, MinCostAdmitsAtLeastAsManyAsBaselines) {
  const auto mincost = run_with("mincost");
  const auto greedy = run_with("greedy");
  const auto random = run_with("random");
  EXPECT_GE(mincost.composed, greedy.composed);
  EXPECT_GE(mincost.composed, random.composed);
  // And it should admit a solid majority under this pressure.
  EXPECT_GE(mincost.composed_fraction(), 0.5);
}

TEST(Integration, MinCostSplitsServices) {
  // Force the splitting regime: per-stage wire demand (~620 kbps each
  // way) exceeds every node's access capacity, so any admitted request
  // MUST split stages across nodes. Greedy stays one-per-stage by
  // construction (and admits nothing here).
  auto cfg = scenario();
  cfg.world.net.bw_min_kbps = 500;
  cfg.world.net.bw_max_kbps = 1100;
  cfg.workload.num_requests = 10;
  cfg.workload.avg_rate_kbps = 600;
  cfg.workload.min_services = 2;
  cfg.workload.max_services = 3;
  cfg.algorithm = "mincost";
  const auto mincost = run_experiment(cfg);
  ASSERT_GT(mincost.composed, 0) << "nothing admitted in split regime";
  EXPECT_GT(mincost.splitting_degree(), 1.3);

  cfg.algorithm = "greedy";
  const auto greedy = run_experiment(cfg);
  if (greedy.composed > 0) {
    EXPECT_DOUBLE_EQ(greedy.splitting_degree(), 1.0);
  }
  // The shared endpoint uplink caps both algorithms alike, so splitting
  // buys admission only on provider-fragmented requests; never fewer.
  // (The per-request admission win is pinned down in
  // MinCostComposer.GreedyWouldRejectWhatSplittingAdmits.)
  EXPECT_GE(mincost.composed, greedy.composed);
}

TEST(Integration, DeliveredFractionReasonableUnderLoad) {
  const auto mincost = run_with("mincost");
  EXPECT_GE(mincost.delivered_fraction(), 0.6);
  EXPECT_GE(mincost.timely_fraction(), 0.5);
}

TEST(Integration, LowRateIsEasyForEveryone) {
  for (const char* algorithm : {"mincost", "greedy", "random"}) {
    auto cfg = scenario();
    cfg.algorithm = algorithm;
    cfg.workload.avg_rate_kbps = 30;  // far below capacity
    const auto m = run_experiment(cfg);
    EXPECT_GE(m.composed_fraction(), 0.7) << algorithm;
    EXPECT_GE(m.delivered_fraction(), 0.7) << algorithm;
  }
}

TEST(Integration, ParallelSweepMatchesSequentialRuns) {
  SweepConfig sweep;
  sweep.base = scenario();
  sweep.base.workload.num_requests = 10;
  sweep.base.steady_duration = sim::sec(5);
  sweep.algorithms = {"mincost", "greedy"};
  sweep.rates_kbps = {80};
  sweep.repetitions = 2;
  sweep.base_seed = 5;
  sweep.threads = 4;
  const auto result = run_sweep(sweep);

  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& [key, reps] : result.cells) {
    ASSERT_EQ(reps.size(), 2u) << key.first;
    for (const auto& m : reps) EXPECT_EQ(m.requests, 10);
  }

  // Re-run one cell sequentially and compare exactly (thread-count must
  // not affect results).
  auto cfg = sweep.base;
  cfg.algorithm = "mincost";
  cfg.workload.avg_rate_kbps = 80;
  cfg.world.seed = sweep.base_seed;  // rep 0
  const auto sequential = run_experiment(cfg);
  const auto& parallel0 = result.cells.at({"mincost", 80.0})[0];
  EXPECT_EQ(sequential.emitted, parallel0.emitted);
  EXPECT_EQ(sequential.delivered, parallel0.delivered);
  EXPECT_EQ(sequential.composed, parallel0.composed);
}

TEST(Integration, SweepMeanHelper) {
  SweepResult r;
  RunMetrics a, b;
  a.composed = 10;
  b.composed = 20;
  r.cells[{"x", 1.0}] = {a, b};
  EXPECT_DOUBLE_EQ(
      r.mean("x", 1.0, [](const RunMetrics& m) { return double(m.composed); }),
      15.0);
  EXPECT_EQ(r.mean("y", 1.0, [](const RunMetrics&) { return 1.0; }), 0.0);
}

TEST(Integration, MakeTableShapesRowsAndCols) {
  SweepConfig sweep;
  sweep.algorithms = {"a1", "a2"};
  sweep.rates_kbps = {50, 100};
  SweepResult result;
  RunMetrics m;
  m.composed = 4;
  for (const auto& algo : sweep.algorithms) {
    for (double rate : sweep.rates_kbps) {
      result.cells[{algo, rate}] = {m};
    }
  }
  const auto table = make_table(
      sweep, result, "test",
      [](const RunMetrics& x) { return double(x.composed); });
  ASSERT_EQ(table.row_labels.size(), 2u);
  ASSERT_EQ(table.col_labels.size(), 2u);
  EXPECT_DOUBLE_EQ(table.values[0][0], 4.0);
  EXPECT_DOUBLE_EQ(table.values[1][1], 4.0);
}

}  // namespace
}  // namespace rasc::exp
