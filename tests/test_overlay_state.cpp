// Leaf set and routing table invariants.
#include "overlay/state.hpp"

#include <gtest/gtest.h>

namespace rasc::overlay {
namespace {

NodeId128 id(std::uint64_t hi, std::uint64_t lo = 0) {
  return NodeId128{hi, lo};
}

PeerRef peer(std::uint64_t hi, sim::NodeIndex addr) {
  return PeerRef{id(hi), addr};
}

TEST(LeafSet, InsertAndContains) {
  LeafSet ls(id(0x8000000000000000ull));
  EXPECT_TRUE(ls.insert(peer(0x8100000000000000ull, 1)));
  EXPECT_TRUE(ls.contains(1));
  EXPECT_FALSE(ls.insert(peer(0x8100000000000000ull, 1)));  // dup
  EXPECT_EQ(ls.size(), 1u);
}

TEST(LeafSet, IgnoresSelf) {
  LeafSet ls(id(5));
  EXPECT_FALSE(ls.insert(PeerRef{id(5), 9}));
}

TEST(LeafSet, KeepsOnlyClosestPerSide) {
  LeafSet ls(id(0x8000000000000000ull));
  // Six clockwise peers; only the 4 closest should survive.
  for (std::uint64_t k = 1; k <= 6; ++k) {
    ls.insert(peer(0x8000000000000000ull + (k << 40), sim::NodeIndex(k)));
  }
  EXPECT_EQ(ls.clockwise().size(), LeafSet::kHalf);
  EXPECT_TRUE(ls.contains(1));
  EXPECT_TRUE(ls.contains(4));
  EXPECT_FALSE(ls.contains(5));
  EXPECT_FALSE(ls.contains(6));
}

TEST(LeafSet, RemoveByAddr) {
  LeafSet ls(id(0x8000000000000000ull));
  ls.insert(peer(0x8100000000000000ull, 1));
  EXPECT_TRUE(ls.remove(1));
  EXPECT_FALSE(ls.contains(1));
  EXPECT_FALSE(ls.remove(1));
}

TEST(LeafSet, ClosestReturnsNumericallyNearest) {
  LeafSet ls(id(0x8000000000000000ull));
  ls.insert(peer(0x9000000000000000ull, 1));
  ls.insert(peer(0x7000000000000000ull, 2));
  const auto got = ls.closest(id(0x8f00000000000000ull), 99);
  EXPECT_EQ(got.addr, 1);
  // A key right at self stays at self.
  const auto self_win = ls.closest(id(0x8000000000000001ull), 99);
  EXPECT_EQ(self_win.addr, 99);
}

TEST(LeafSet, EmptyCoversEverything) {
  LeafSet ls(id(1));
  EXPECT_TRUE(ls.covers(id(0xffffffffffffffffull)));
}

TEST(LeafSet, CoversRangeSemantics) {
  LeafSet ls(id(0x8000000000000000ull));
  ls.insert(peer(0x8200000000000000ull, 1));  // cw edge
  ls.insert(peer(0x7e00000000000000ull, 2));  // ccw edge
  EXPECT_TRUE(ls.covers(id(0x8100000000000000ull)));
  EXPECT_TRUE(ls.covers(id(0x7f00000000000000ull)));
  EXPECT_FALSE(ls.covers(id(0x9000000000000000ull)));
  EXPECT_FALSE(ls.covers(id(0x1000000000000000ull)));
}

TEST(RoutingTable, InsertPlacesByPrefixAndDigit) {
  const auto self = id(0x0000000000000000ull);
  RoutingTable rt(self);
  const auto p = peer(0xa000000000000000ull, 3);  // differs at digit 0
  EXPECT_TRUE(rt.insert(p));
  const auto e = rt.entry(0, 0xa);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->addr, 3);
}

TEST(RoutingTable, DeeperPrefixDeeperRow) {
  const auto self = id(0xab00000000000000ull);
  RoutingTable rt(self);
  // Shares "ab", differs at digit 2 (value c).
  const auto p = PeerRef{id(0xabc0000000000000ull), 4};
  EXPECT_TRUE(rt.insert(p));
  EXPECT_TRUE(rt.entry(2, 0xc).has_value());
  EXPECT_FALSE(rt.entry(0, 0xa).has_value());
}

TEST(RoutingTable, KeepSmallerIdOnCollision) {
  RoutingTable rt(id(0));
  const auto big = PeerRef{id(0xa900000000000000ull), 1};
  const auto small = PeerRef{id(0xa100000000000000ull), 2};
  EXPECT_TRUE(rt.insert(big));
  EXPECT_TRUE(rt.insert(small));  // replaces: smaller id wins
  EXPECT_EQ(rt.entry(0, 0xa)->addr, 2);
  EXPECT_FALSE(rt.insert(big));  // bigger does not displace
  EXPECT_EQ(rt.size(), 1u);
}

TEST(RoutingTable, RemoveClearsAllSlots) {
  RoutingTable rt(id(0));
  rt.insert(PeerRef{id(0xa000000000000000ull), 7});
  rt.insert(PeerRef{id(0xb000000000000000ull), 7});
  EXPECT_EQ(rt.size(), 2u);
  EXPECT_TRUE(rt.remove(7));
  EXPECT_EQ(rt.size(), 0u);
}

TEST(RoutingTable, IgnoresSelfAndIdenticalId) {
  RoutingTable rt(id(42));
  EXPECT_FALSE(rt.insert(PeerRef{id(42), 3}));
}

TEST(RoutingTable, AllReturnsEveryEntry) {
  RoutingTable rt(id(0));
  rt.insert(PeerRef{id(0x1000000000000000ull), 1});
  rt.insert(PeerRef{id(0x2000000000000000ull), 2});
  rt.insert(PeerRef{id(0x0100000000000000ull), 3});
  EXPECT_EQ(rt.all().size(), 3u);
}

}  // namespace
}  // namespace rasc::overlay
