// Online rate re-allocation (core::RateAdapter): tracking lifecycle and
// immediate attempts against a live world, delta shipping under load
// drift, run determinism with adaptation on, byte-identity neutrality
// with adaptation off, and the load-drift acceptance scenario — the
// adapted run holds the delivered-rate SLO with zero teardowns while the
// teardown-only baseline burns recompose episodes or sheds rate.
#include "core/rate_adapter.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/mincost_composer.hpp"
#include "exp/runner.hpp"
#include "exp/world.hpp"
#include "obs/metric_registry.hpp"

namespace rasc::core {
namespace {

// ---------------------------------------------------------------------
// Adapter against a live world

exp::WorldConfig world_config() {
  exp::WorldConfig wc;
  wc.nodes = 16;
  wc.num_services = 6;
  wc.services_per_node = 4;
  wc.seed = 23;
  wc.net.bw_min_kbps = 1500;
  wc.net.bw_max_kbps = 4000;
  return wc;
}

ServiceRequest request_for(exp::World& world) {
  ServiceRequest req;
  req.app = 1;
  req.source = 0;
  req.destination = sim::NodeIndex(world.size() - 1);
  req.unit_bytes = 1250;
  req.substreams = {{{"svc0", "svc1"}, 150.0}};
  return req;
}

SubmitOutcome submit_and_wait(exp::World& world, Composer& composer,
                              const ServiceRequest& req, sim::SimTime stop) {
  SubmitOutcome outcome;
  bool done = false;
  world.host(std::size_t(req.source))
      .coordinator()
      .submit(req, composer, 0, stop, [&](const SubmitOutcome& o) {
        done = true;
        outcome = o;
      });
  auto& sim = world.simulator();
  sim.run_until(sim.now() + sim::sec(6));
  EXPECT_TRUE(done);
  EXPECT_TRUE(outcome.compose.admitted) << outcome.compose.error;
  return outcome;
}

TEST(RateAdapterWorld, TrackAttemptForgetLifecycle) {
  exp::World world(world_config());
  auto& sim = world.simulator();
  MinCostComposer composer;
  const auto req = request_for(world);
  const sim::SimTime stop = sim.now() + sim::sec(60);
  const auto outcome = submit_and_wait(world, composer, req, stop);
  ASSERT_FALSE(outcome.providers.empty())
      << "admitted outcomes must surface the discovery result";

  auto& host = world.host(0);
  RateAdapter::Params params;
  auto& adapter = host.enable_adapter(params);
  EXPECT_EQ(&host.enable_adapter(params), &adapter)
      << "enable_adapter must be idempotent";
  adapter.track(req, outcome.compose.plan, outcome.providers, stop);
  EXPECT_EQ(adapter.tracked_count(), 1u);
  ASSERT_NE(adapter.current_plan(req.app), nullptr);
  EXPECT_EQ(adapter.current_plan(req.app)->app, req.app);

  // An immediate attempt completes a stats round-trip and reports back.
  bool called = false;
  adapter.attempt_now(req.app, [&](bool) { called = true; });
  sim.run_until(sim.now() + sim::sec(3));
  EXPECT_TRUE(called);
  EXPECT_GE(world.metrics().counter_total("adapt.attempts"), 1);

  adapter.forget(req.app);
  EXPECT_EQ(adapter.tracked_count(), 0u);
  EXPECT_EQ(adapter.current_plan(req.app), nullptr);
}

TEST(RateAdapterWorld, PeriodicLoopStopsAtStreamStop) {
  exp::World world(world_config());
  auto& sim = world.simulator();
  MinCostComposer composer;
  const auto req = request_for(world);
  const sim::SimTime stop = sim.now() + sim::sec(20);
  const auto outcome = submit_and_wait(world, composer, req, stop);

  RateAdapter::Params params;
  params.interval = sim::sec(2);
  auto& adapter = world.host(0).enable_adapter(params);
  adapter.track(req, outcome.compose.plan, outcome.providers, stop);
  sim.run_until(stop + sim::sec(5));
  // The loop untracked the app once another interval would overshoot the
  // stream's end; attempts happened while it ran.
  EXPECT_EQ(adapter.tracked_count(), 0u);
  EXPECT_GE(world.metrics().counter_total("adapt.attempts"), 1);
}

// ---------------------------------------------------------------------
// Runner integration

std::string snapshot_csv(const exp::RunConfig& cfg,
                         exp::RunMetrics* metrics_out = nullptr) {
  std::vector<obs::MetricRow> rows;
  const auto m = exp::run_experiment(cfg, &rows);
  if (metrics_out != nullptr) *metrics_out = m;
  std::ostringstream out;
  obs::MetricRegistry::write_csv(rows, out);
  return out.str();
}

/// adapt.solve_us is the repo's one wall-clock (non-simulated) metric;
/// byte-identity claims must exclude it.
std::string drop_wall_clock_rows(const std::string& csv) {
  std::istringstream in(csv);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("adapt.solve_us") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

/// The tuned load-drift acceptance configuration: tight enough that the
/// sagging links actually starve placements (see chaos/scenario.cpp).
exp::RunConfig drift_config() {
  exp::RunConfig cfg;
  cfg.world.nodes = 12;
  // Seed picks the placement the drift plays against; re-tuned after the
  // overlay neighborhood-repair change shifted registration ordering.
  cfg.world.seed = 41;
  // Tight PlanetLab-like access links: admission is bandwidth-bound, so
  // the sagging links bite (paper §4.1 calibration).
  cfg.world.net.bw_min_kbps = 300;
  cfg.world.net.bw_max_kbps = 4000;
  cfg.workload.num_requests = 10;
  cfg.workload.avg_rate_kbps = 300;
  cfg.submit_gap = sim::msec(700);
  cfg.steady_duration = sim::sec(20);
  cfg.chaos_scenario = "load-drift:mag=0.2";
  cfg.chaos_seed = 7;
  return cfg;
}

TEST(RateAdapterRunner, ShipsDeltasUnderLoadDrift) {
  auto cfg = drift_config();
  cfg.adapt_interval = sim::msec(2000);
  exp::RunMetrics m;
  const auto snap = snapshot_csv(cfg, &m);
  EXPECT_GT(m.adapt_attempts, 0);
  EXPECT_GT(m.adapt_deltas, 0);
  EXPECT_NE(snap.find("adapt.attempts"), std::string::npos);
  EXPECT_NE(snap.find("adapt.solve_us"), std::string::npos)
      << "the solver-latency histogram must be exported";
}

TEST(RateAdapterRunner, AdaptedRunsAreDeterministic) {
  auto cfg = drift_config();
  cfg.adapt_interval = sim::msec(2000);
  exp::RunMetrics a, b;
  const auto snap_a = drop_wall_clock_rows(snapshot_csv(cfg, &a));
  const auto snap_b = drop_wall_clock_rows(snapshot_csv(cfg, &b));
  EXPECT_EQ(snap_a, snap_b) << "same (seed, scenario, adapt flags) must "
                               "replay byte-for-byte";
  EXPECT_EQ(a.adapt_attempts, b.adapt_attempts);
  EXPECT_EQ(a.adapt_deltas, b.adapt_deltas);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.emitted, b.emitted);
}

TEST(RateAdapterRunner, DisabledAdapterIsByteNeutral) {
  // interval = 0: no adapter is constructed, no adapt.* cell exists, and
  // the run replays byte-for-byte — flag parsing alone must not perturb
  // anything.
  auto cfg = drift_config();
  exp::RunMetrics m;
  const auto baseline = snapshot_csv(cfg, &m);
  EXPECT_EQ(baseline.find("adapt."), std::string::npos)
      << "a disabled adapter must not create registry cells";
  EXPECT_EQ(m.adapt_attempts, 0);
  EXPECT_EQ(m.adapt_deltas, 0);
  EXPECT_EQ(m.adapt_teardowns, 0);

  cfg.adapt_hysteresis = 0.5;  // ignored while the interval is 0
  EXPECT_EQ(snapshot_csv(cfg), baseline);
}

TEST(RateAdapterRunner, PredictiveTriggersUnderDriftDeterministically) {
  // A deadline close to the undisturbed end-to-end delay plus a capacity
  // drift: predicted latency crosses the deadline on some rounds and the
  // adapter must fire through the hysteresis gate, without escalating to
  // teardowns.
  auto cfg = drift_config();
  cfg.adapt_interval = sim::msec(2000);
  cfg.deadline_ms = 200;
  cfg.adapt_predictive = true;
  exp::RunMetrics a, b;
  const auto snap_a = drop_wall_clock_rows(snapshot_csv(cfg, &a));
  EXPECT_GT(a.composed, 0);
  EXPECT_GT(a.adapt_attempts, 0);
  EXPECT_GT(a.predict_triggers, 0)
      << "drift never pushed a predicted latency past the deadline";
  EXPECT_GT(a.slo_windows, 0);
  const auto snap_b = drop_wall_clock_rows(snapshot_csv(cfg, &b));
  EXPECT_EQ(snap_a, snap_b);
  EXPECT_EQ(a.predict_triggers, b.predict_triggers);
}

TEST(RateAdapterRunner, PredictiveOffIsByteNeutralGivenSameDeadline) {
  // Same deadline, adapt_predictive toggled off: the reactive run must
  // not see a single predictive artifact (no adapt.predict_triggers
  // cell), and the flag alone must not perturb the predictive-off bytes.
  auto cfg = drift_config();
  cfg.adapt_interval = sim::msec(2000);
  cfg.deadline_ms = 200;
  exp::RunMetrics m;
  const auto reactive = drop_wall_clock_rows(snapshot_csv(cfg, &m));
  EXPECT_EQ(m.predict_triggers, 0);
  EXPECT_EQ(reactive.find("adapt.predict_triggers"), std::string::npos);
  // predictive without an adapter interval is inert too.
  auto inert = drift_config();
  inert.deadline_ms = 120;
  inert.adapt_predictive = true;
  auto plain = drift_config();
  plain.deadline_ms = 120;
  EXPECT_EQ(snapshot_csv(inert), snapshot_csv(plain));
}

TEST(RateAdapterRunner, LoadDriftAcceptance) {
  // The PR's acceptance criterion. Baseline (teardown-only supervision):
  // the drift costs at least one recompose episode or the delivered-rate
  // SLO. Adapted: the SLO holds, deltas shipped, zero teardowns.
  auto cfg = drift_config();
  const auto baseline = exp::run_experiment(cfg);
  const bool baseline_hurt =
      baseline.recoveries + baseline.gave_up >= 1 ||
      baseline.delivered_fraction() < 0.95;
  EXPECT_TRUE(baseline_hurt)
      << "drift too mild: baseline delivered "
      << baseline.delivered_fraction() << " with no recoveries";

  cfg.adapt_interval = sim::msec(2000);
  const auto adapted = exp::run_experiment(cfg);
  EXPECT_GT(adapted.adapt_attempts, 0);
  EXPECT_GT(adapted.adapt_deltas, 0);
  EXPECT_EQ(adapted.adapt_teardowns, 0)
      << "adaptation escalated to teardown";
  EXPECT_GE(adapted.delivered_fraction(), 0.95);
  EXPECT_GE(adapted.timely_fraction(), 0.90);
}

}  // namespace
}  // namespace rasc::core
