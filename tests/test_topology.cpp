// Topology generators: uniform exactness and PlanetLab-like invariants
// (parameterized over seeds — property-style sweep).
#include "sim/topology.hpp"

#include <gtest/gtest.h>

namespace rasc::sim {
namespace {

TEST(UniformTopology, AllEqual) {
  const auto t = make_uniform_topology(5, 2000.0, msec(25));
  ASSERT_EQ(t.size(), 5u);
  for (const auto& n : t.nodes) {
    EXPECT_EQ(n.bw_in_kbps, 2000.0);
    EXPECT_EQ(n.bw_out_kbps, 2000.0);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(t.latency_us[i][j], i == j ? 0 : msec(25));
    }
  }
}

class PlanetLabTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanetLabTopology, InvariantsHold) {
  util::Xoshiro256 rng(GetParam());
  PlanetLabParams params;
  const auto t = make_planetlab_like(32, rng, params);
  ASSERT_EQ(t.size(), 32u);
  for (const auto& n : t.nodes) {
    EXPECT_GE(n.bw_in_kbps, params.bw_min_kbps);
    EXPECT_LE(n.bw_in_kbps, params.bw_max_kbps);
    EXPECT_GE(n.bw_out_kbps, params.bw_min_kbps);
    EXPECT_LE(n.bw_out_kbps, params.bw_max_kbps);
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.latency_us[i][i], 0);
    for (std::size_t j = 0; j < t.size(); ++j) {
      if (i == j) continue;
      EXPECT_GE(t.latency_us[i][j], params.latency_min);
      EXPECT_LE(t.latency_us[i][j], params.latency_max);
      EXPECT_EQ(t.latency_us[i][j], t.latency_us[j][i]) << "symmetry";
    }
  }
}

TEST_P(PlanetLabTopology, LatenciesAreSkewedNotUniform) {
  util::Xoshiro256 rng(GetParam());
  const auto t = make_planetlab_like(32, rng, {});
  // Pareto skew: the median should sit well below the midpoint of the
  // clip range.
  std::vector<SimDuration> lats;
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      lats.push_back(t.latency_us[i][j]);
    }
  }
  std::sort(lats.begin(), lats.end());
  const auto median = lats[lats.size() / 2];
  EXPECT_LT(median, msec(105));
}

TEST_P(PlanetLabTopology, DeterministicGivenSeed) {
  util::Xoshiro256 r1(GetParam()), r2(GetParam());
  const auto a = make_planetlab_like(16, r1, {});
  const auto b = make_planetlab_like(16, r2, {});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.nodes[i].bw_in_kbps, b.nodes[i].bw_in_kbps);
    EXPECT_EQ(a.latency_us[i], b.latency_us[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanetLabTopology,
                         ::testing::Values(1, 2, 3, 17, 42, 1234, 99999));

}  // namespace
}  // namespace rasc::sim
