// World construction invariants and workload generator properties
// (parameterized over seeds).
#include "exp/workload.hpp"
#include "exp/world.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rasc::exp {
namespace {

TEST(World, PaperDefaultsBuild) {
  WorldConfig wc;
  wc.nodes = 32;
  wc.seed = 3;
  World world(wc);
  EXPECT_EQ(world.size(), 32u);
  EXPECT_EQ(world.service_names().size(), 10u);
  for (std::size_t i = 0; i < world.size(); ++i) {
    EXPECT_TRUE(world.overlay().at(i).ready());
    EXPECT_EQ(world.services_on(i).size(), 5u);
    // No duplicate services on a node.
    std::set<std::string> uniq(world.services_on(i).begin(),
                               world.services_on(i).end());
    EXPECT_EQ(uniq.size(), world.services_on(i).size());
  }
}

TEST(World, EveryServiceHasAProviderRegisteredInDht) {
  WorldConfig wc;
  wc.nodes = 16;
  wc.num_services = 8;
  wc.services_per_node = 3;
  wc.seed = 11;
  World world(wc);
  auto& sim = world.simulator();
  for (const auto& service : world.service_names()) {
    overlay::ServiceRegistry reg(world.overlay().at(0));
    bool found = false;
    std::vector<sim::NodeIndex> providers;
    reg.lookup(service, [&](bool ok, std::vector<sim::NodeIndex> p) {
      found = ok;
      providers = std::move(p);
    });
    sim.run_until(sim.now() + sim::sec(2));
    EXPECT_TRUE(found) << service;
    EXPECT_FALSE(providers.empty()) << service;
    // Providers must actually host the service.
    for (auto p : providers) {
      const auto& on_node = world.services_on(std::size_t(p));
      EXPECT_NE(std::find(on_node.begin(), on_node.end(), service),
                on_node.end());
    }
  }
}

TEST(World, CatalogServicesHaveConfiguredCpuRange) {
  WorldConfig wc;
  wc.nodes = 8;
  wc.seed = 5;
  wc.service_cpu_min = sim::msec(2);
  wc.service_cpu_max = sim::msec(6);
  World world(wc);
  for (const auto& [name, spec] : world.catalog().all()) {
    (void)name;
    EXPECT_GE(spec.cpu_time_per_unit, sim::msec(2));
    EXPECT_LE(spec.cpu_time_per_unit, sim::msec(6));
  }
}

class WorkloadSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadSeeds, GeneratorInvariants) {
  WorkloadConfig cfg;
  cfg.num_requests = 50;
  cfg.avg_rate_kbps = 120;
  std::vector<std::string> services;
  for (int i = 0; i < 10; ++i) services.push_back("svc" + std::to_string(i));
  util::Xoshiro256 rng(GetParam());
  const auto reqs = generate_workload(cfg, services, 32, rng);
  ASSERT_EQ(reqs.size(), 50u);
  for (const auto& r : reqs) {
    EXPECT_TRUE(r.validate().empty());
    EXPECT_NE(r.source, r.destination);
    EXPECT_GE(r.source, 0);
    EXPECT_LT(r.source, 32);
    const auto distinct = r.distinct_services();
    std::size_t total = 0;
    for (const auto& ss : r.substreams) {
      total += ss.services.size();
      EXPECT_GE(ss.rate_kbps, 120 * 0.8 - 1e-9);
      EXPECT_LE(ss.rate_kbps, 120 * 1.2 + 1e-9);
    }
    EXPECT_GE(total, 2u);
    EXPECT_LE(total, 5u);
    EXPECT_EQ(distinct.size(), total) << "services repeat within request";
  }
}

TEST_P(WorkloadSeeds, DeterministicGivenSeed) {
  WorkloadConfig cfg;
  cfg.num_requests = 10;
  std::vector<std::string> services{"a", "b", "c", "d"};
  util::Xoshiro256 r1(GetParam()), r2(GetParam());
  const auto w1 = generate_workload(cfg, services, 8, r1);
  const auto w2 = generate_workload(cfg, services, 8, r2);
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].source, w2[i].source);
    EXPECT_EQ(w1[i].substreams.size(), w2[i].substreams.size());
    EXPECT_EQ(w1[i].substreams[0].services, w2[i].substreams[0].services);
    EXPECT_EQ(w1[i].substreams[0].rate_kbps, w2[i].substreams[0].rate_kbps);
  }
}

TEST_P(WorkloadSeeds, SomeRequestsHaveTwoSubstreams) {
  WorkloadConfig cfg;
  cfg.num_requests = 100;
  cfg.two_substream_prob = 0.5;
  std::vector<std::string> services{"a", "b", "c", "d", "e"};
  util::Xoshiro256 rng(GetParam());
  const auto reqs = generate_workload(cfg, services, 8, rng);
  int two = 0;
  for (const auto& r : reqs) two += (r.substreams.size() == 2);
  EXPECT_GT(two, 15);
  EXPECT_LT(two, 85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadSeeds,
                         ::testing::Values(1, 7, 42, 1001));

}  // namespace
}  // namespace rasc::exp

namespace rasc::exp {
namespace {

TEST(WorldCustomServices, CatalogAndRegistryUseCallerSpecs) {
  WorldConfig wc;
  wc.nodes = 8;
  wc.services_per_node = 2;
  wc.seed = 4;
  wc.custom_services = {
      {"transcode", sim::msec(8), 1.0, 0.5},
      {"downmix", sim::msec(1), 0.5, 1.0},
      {"filter", sim::msec(2), 1.0, 1.0},
  };
  World world(wc);
  EXPECT_EQ(world.service_names().size(), 3u);
  EXPECT_TRUE(world.catalog().contains("transcode"));
  EXPECT_DOUBLE_EQ(world.catalog().get("downmix").rate_ratio, 0.5);
  EXPECT_DOUBLE_EQ(world.catalog().get("transcode").output_size_factor,
                   0.5);
  // Each custom service is discoverable.
  auto& sim = world.simulator();
  for (const auto& service : world.service_names()) {
    overlay::ServiceRegistry reg(world.overlay().at(0));
    bool found = false;
    reg.lookup(service, [&found](bool ok, std::vector<sim::NodeIndex> p) {
      found = ok && !p.empty();
    });
    sim.run_until(sim.now() + sim::sec(2));
    EXPECT_TRUE(found) << service;
  }
}

TEST(HostWiring, PortDropsOfDataUnitsFeedTheMonitor) {
  // A world node whose access link is overwhelmed must see its drop
  // ratio rise through the Host's network drop handler.
  WorldConfig wc;
  wc.nodes = 6;
  wc.services_per_node = 2;
  wc.num_services = 4;
  wc.seed = 8;
  wc.net.bw_min_kbps = 400;
  wc.net.bw_max_kbps = 600;
  World world(wc);
  auto& sim = world.simulator();

  // Blast data units far beyond node 1's input capacity, bypassing
  // admission entirely.
  auto& rt1 = world.host(1).runtime();
  (void)rt1;
  for (int i = 0; i < 400; ++i) {
    sim.call_after(sim::msec(2 * i), [&world, i] {
      auto du = std::make_shared<runtime::DataUnit>();
      du->app = 999;
      du->seq = i;
      du->size_bytes = 1250;
      world.network().send(0, 1, 1250, du);
    });
  }
  sim.run_until(sim.now() + sim::sec(3));
  EXPECT_GT(world.network().in_queue_drops(1) +
                world.network().out_queue_drops(0),
            0);
  // Either endpoint observed data-unit loss in its monitoring.
  const double drop0 = world.host(0).monitor().drop_ratio();
  const double drop1 = world.host(1).monitor().drop_ratio();
  EXPECT_GT(drop0 + drop1, 0.0);
}

}  // namespace
}  // namespace rasc::exp
