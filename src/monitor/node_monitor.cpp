#include "monitor/node_monitor.hpp"

namespace rasc::monitor {

NodeMonitor::NodeMonitor(sim::Simulator& simulator, sim::Network& network,
                         sim::NodeIndex node)
    : NodeMonitor(simulator, network, node, Params()) {}

NodeMonitor::NodeMonitor(sim::Simulator& simulator, sim::Network& network,
                         sim::NodeIndex node, Params params,
                         obs::MetricRegistry* registry)
    : simulator_(simulator),
      network_(network),
      node_(node),
      params_(params),
      in_kbps_window_(params.bandwidth_window),
      out_kbps_window_(params.bandwidth_window),
      cpu_window_(params.bandwidth_window),
      outcomes_(params.outcome_window),
      owned_registry_(registry ? nullptr
                               : std::make_unique<obs::MetricRegistry>()),
      registry_(registry ? registry : owned_registry_.get()) {
  obs::Labels labels;
  labels.node = node_;
  in_kbps_gauge_ = &registry_->gauge("monitor.in_kbps", labels);
  out_kbps_gauge_ = &registry_->gauge("monitor.out_kbps", labels);
  cpu_fraction_gauge_ = &registry_->gauge("monitor.cpu_fraction", labels);
  drop_ratio_gauge_ = &registry_->gauge("monitor.drop_ratio", labels);
  queue_length_gauge_ = &registry_->gauge("monitor.queue_length", labels);
  last_bytes_in_ = network_.bytes_received(node_);
  last_bytes_out_ = network_.bytes_sent(node_);
  // The sampling timer lives on this node's LP: samples read network
  // counters and runtime-fed windows for this node only, and pinning them
  // keeps the periodic work off the global queue in parallel runs.
  sample_event_ = simulator_.call_after_on(std::size_t(node_),
                                           params_.sample_period,
                                           [this] { sample_bandwidth(); });
}

NodeMonitor::~NodeMonitor() {
  stopped_ = true;
  simulator_.cancel(sample_event_);
}

void NodeMonitor::set_blackout(bool on) {
  if (on == blackout_) return;
  blackout_ = on;
  if (!on) {
    // Re-base the byte counters: the traffic that flowed during the
    // blackout must not be misread as one giant burst on the first
    // post-blackout sample.
    last_bytes_in_ = network_.bytes_received(node_);
    last_bytes_out_ = network_.bytes_sent(node_);
    cpu_busy_accum_ = 0;
  }
}

void NodeMonitor::sample_bandwidth() {
  if (stopped_) return;
  if (blackout_) {
    sample_event_ = simulator_.call_after_on(std::size_t(node_),
                                             params_.sample_period,
                                             [this] { sample_bandwidth(); });
    return;
  }
  const std::int64_t in_now = network_.bytes_received(node_);
  const std::int64_t out_now = network_.bytes_sent(node_);
  const double secs = sim::to_seconds(params_.sample_period);
  // bytes -> kilobits: *8/1000.
  in_kbps_window_.add(double(in_now - last_bytes_in_) * 8.0 / 1000.0 / secs);
  out_kbps_window_.add(double(out_now - last_bytes_out_) * 8.0 / 1000.0 /
                       secs);
  cpu_window_.add(sim::to_seconds(cpu_busy_accum_) / secs);
  cpu_busy_accum_ = 0;
  last_bytes_in_ = in_now;
  last_bytes_out_ = out_now;
  in_kbps_gauge_->set(in_kbps_window_.mean());
  out_kbps_gauge_->set(out_kbps_window_.mean());
  cpu_fraction_gauge_->set(cpu_window_.mean());
  drop_ratio_gauge_->set(outcomes_.ratio());
  queue_length_gauge_->set(double(queue_length_));
  sample_event_ = simulator_.call_after_on(std::size_t(node_),
                                           params_.sample_period,
                                           [this] { sample_bandwidth(); });
}

void NodeMonitor::on_unit_processed() { outcomes_.record(false); }

void NodeMonitor::on_unit_dropped() { outcomes_.record(true); }

NodeStats NodeMonitor::snapshot() const {
  NodeStats s;
  s.node = node_;
  // Effective capacity, not nominal: a degraded access link (chaos
  // bandwidth fault) must show in the snapshot, or every stats-driven
  // consumer — composition costs, adapter re-solves, latency prediction —
  // plans against bandwidth that does not exist and only finds out
  // through drops.
  const auto& cap = network_.topology().nodes[std::size_t(node_)];
  const double scale = network_.bandwidth_scale(node_);
  s.capacity_in_kbps = cap.bw_in_kbps * scale;
  s.capacity_out_kbps = cap.bw_out_kbps * scale;
  s.used_in_kbps = in_kbps_window_.mean();
  s.used_out_kbps = out_kbps_window_.mean();
  s.cpu_used_fraction = cpu_window_.mean();
  s.drop_ratio = outcomes_.ratio();
  s.drop_samples = std::int64_t(outcomes_.count());
  if (params_.advertise_reservations) {
    s.reserved_in_kbps = reserved_in_kbps_;
    s.reserved_out_kbps = reserved_out_kbps_;
    s.cpu_reserved_fraction = reserved_cpu_fraction_;
  }
  s.ready_queue_length = queue_length_;
  s.taken_at = simulator_.now();
  return s;
}

}  // namespace rasc::monitor
