#include "monitor/rate_meter.hpp"

#include <algorithm>

namespace rasc::monitor {

void RateMeter::record(sim::SimTime when) {
  times_.push_back(when);
  if (times_.size() > window_) times_.pop_front();
}

double RateMeter::rate_per_sec(sim::SimTime now) const {
  if (times_.size() < 2) return 0.0;
  // Stretch the observation span to `now` so a silenced stream decays
  // instead of reporting its last-known rate forever.
  const sim::SimDuration span =
      std::max(times_.back(), now) - times_.front();
  if (span <= 0) return 0.0;
  return double(times_.size() - 1) * 1e6 / double(span);
}

sim::SimDuration RateMeter::mean_period(sim::SimTime now) const {
  const double rate = rate_per_sec(now);
  if (rate <= 0) return 0;
  return sim::SimDuration(1e6 / rate);
}

}  // namespace rasc::monitor
