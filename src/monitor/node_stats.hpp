// The per-node statistics snapshot exchanged during composition.
//
// This is the paper's availability vector A_n = [b_in, b_out] (§3.2/§3.5)
// plus the congestion feedback (drop ratio) that becomes the edge cost in
// the min-cost composition graph.
#pragma once

#include <cstdint>

#include "sim/message.hpp"
#include "sim/time.hpp"

namespace rasc::monitor {

struct NodeStats {
  sim::NodeIndex node = sim::kInvalidNode;

  // Capacity of the access link (static).
  double capacity_in_kbps = 0;
  double capacity_out_kbps = 0;

  // Windowed utilization measured from delivered traffic.
  double used_in_kbps = 0;
  double used_out_kbps = 0;

  // Bandwidth committed to already-admitted streams (the runtime registers
  // a reservation when a component or sink is deployed). Measurement lags
  // admission, so availability accounting takes max(measured, reserved).
  double reserved_in_kbps = 0;
  double reserved_out_kbps = 0;

  // CPU: one processor per node; used/reserved are fractions of it.
  // The paper's general model allows any number of rate-based resources
  // (§2.1); CPU is the second one this implementation tracks.
  double cpu_used_fraction = 0;
  double cpu_reserved_fraction = 0;

  // Fraction of data units dropped at this node over the monitoring
  // window (deadline misses + queue overflow). The min-cost edge cost.
  double drop_ratio = 0;

  // How many outcomes the drop window held when the snapshot was taken.
  // Zero means drop_ratio carries no information: the node has processed
  // nothing yet, not that it is drop-free. Cost-assignment sites must
  // check this before trusting drop_ratio (see
  // MinCostComposer::Options::unknown_drop_prior).
  std::int64_t drop_samples = 0;

  // Scheduler snapshot (informational; used by tests and examples).
  std::int64_t ready_queue_length = 0;

  // When the snapshot was taken (staleness accounting).
  sim::SimTime taken_at = 0;

  double available_in_kbps() const {
    const double used =
        used_in_kbps > reserved_in_kbps ? used_in_kbps : reserved_in_kbps;
    const double a = capacity_in_kbps - used;
    return a > 0 ? a : 0;
  }
  double available_out_kbps() const {
    const double used =
        used_out_kbps > reserved_out_kbps ? used_out_kbps : reserved_out_kbps;
    const double a = capacity_out_kbps - used;
    return a > 0 ? a : 0;
  }
  double available_cpu_fraction() const {
    const double used = cpu_used_fraction > cpu_reserved_fraction
                            ? cpu_used_fraction
                            : cpu_reserved_fraction;
    const double a = 1.0 - used;
    return a > 0 ? a : 0;
  }
};

}  // namespace rasc::monitor
