// Arrival-rate estimation from recent event timestamps.
//
// Used for two things from the paper: the scheduler infers each
// component's period p_ci from its observed arrival rate (§3.2 item 2),
// and nodes infer their available bandwidth from observed unit rates.
#pragma once

#include <cstddef>
#include <deque>

#include "sim/time.hpp"

namespace rasc::monitor {

class RateMeter {
 public:
  /// Keeps the `window` most recent event timestamps.
  explicit RateMeter(std::size_t window = 32) : window_(window ? window : 2) {}

  void record(sim::SimTime when);

  /// Events per second estimated over the retained window; decays toward 0
  /// when no events have arrived recently (the denominator stretches to
  /// `now`). Returns 0 with fewer than 2 events.
  double rate_per_sec(sim::SimTime now) const;

  /// Mean inter-arrival gap in microseconds (the period p_ci); 0 with
  /// fewer than 2 events.
  sim::SimDuration mean_period(sim::SimTime now) const;

  std::size_t count() const { return times_.size(); }
  void clear() { times_.clear(); }

 private:
  std::size_t window_;
  std::deque<sim::SimTime> times_;
};

}  // namespace rasc::monitor
