#include "monitor/stats_protocol.hpp"

#include <memory>

namespace rasc::monitor {

StatsAgent::StatsAgent(sim::Simulator& simulator, sim::Network& network,
                       sim::NodeIndex node, const NodeMonitor& local_monitor)
    : simulator_(simulator),
      network_(network),
      node_(node),
      monitor_(local_monitor) {}

bool StatsAgent::handle_packet(const sim::Packet& packet) {
  const auto* payload = packet.payload.get();
  if (const auto* req = dynamic_cast<const StatsRequest*>(payload)) {
    auto reply = std::make_shared<StatsReply>();
    reply->request_id = req->request_id;
    reply->stats = monitor_.snapshot();
    network_.send(node_, req->requester, StatsReply::kBytes,
                  std::move(reply));
    return true;
  }
  if (const auto* reply = dynamic_cast<const StatsReply*>(payload)) {
    const auto it = pending_.find(reply->request_id);
    if (it != pending_.end()) {
      simulator_.cancel(it->second.timeout_event);
      auto cb = std::move(it->second.done);
      pending_.erase(it);
      if (cb) cb(true, reply->stats);
    }
    return true;
  }
  return false;
}

void StatsAgent::query(sim::NodeIndex target, QueryCallback done) {
  query(target, kTimeout, std::move(done));
}

void StatsAgent::query(sim::NodeIndex target, sim::SimDuration timeout,
                       QueryCallback done) {
  const std::uint64_t rid = ++counter_;
  auto req = std::make_shared<StatsRequest>();
  req->request_id = rid;
  req->requester = node_;

  Pending pending;
  pending.done = std::move(done);
  pending.timeout_event = simulator_.call_after(timeout, [this, rid] {
    const auto it = pending_.find(rid);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second.done);
    pending_.erase(it);
    if (cb) cb(false, NodeStats{});
  });
  pending_.emplace(rid, std::move(pending));

  network_.send(node_, target, StatsRequest::kBytes, std::move(req));
}

void StatsAgent::query_many(const std::vector<sim::NodeIndex>& targets,
                            MultiQueryCallback done) {
  query_many(targets, kTimeout, std::move(done));
}

void StatsAgent::query_many(const std::vector<sim::NodeIndex>& targets,
                            sim::SimDuration timeout,
                            MultiQueryCallback done) {
  if (targets.empty()) {
    done({});
    return;
  }
  struct Gather {
    std::vector<NodeStats> results;
    std::size_t outstanding;
    MultiQueryCallback done;
  };
  auto gather = std::make_shared<Gather>();
  gather->outstanding = targets.size();
  gather->done = std::move(done);
  for (sim::NodeIndex t : targets) {
    query(t, timeout, [gather](bool ok, const NodeStats& stats) {
      if (ok) gather->results.push_back(stats);
      if (--gather->outstanding == 0) gather->done(std::move(gather->results));
    });
  }
}

}  // namespace rasc::monitor
