// Stats query protocol: "Performance metadata is retrieved by requesting
// it directly from each host" (paper §3.3).
//
// A StatsAgent lives on every node: it answers StatsRequest packets with
// the local monitor's snapshot, and lets a coordinator query a set of
// remote nodes with timeouts. These exchanges ride the simulated network,
// so gathering statistics costs real time and bandwidth during
// composition, exactly as on PlanetLab.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "monitor/node_monitor.hpp"
#include "monitor/node_stats.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::monitor {

struct StatsRequest final : sim::Message {
  const char* kind() const override { return "monitor.stats_request"; }
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;
  static constexpr std::int64_t kBytes = 24;
};

struct StatsReply final : sim::Message {
  const char* kind() const override { return "monitor.stats_reply"; }
  std::uint64_t request_id = 0;
  NodeStats stats;
  static constexpr std::int64_t kBytes = 96;
};

class StatsAgent {
 public:
  using QueryCallback =
      std::function<void(bool ok, const NodeStats& stats)>;
  using MultiQueryCallback =
      std::function<void(std::vector<NodeStats> stats)>;

  static constexpr sim::SimDuration kTimeout = sim::msec(1500);

  StatsAgent(sim::Simulator& simulator, sim::Network& network,
             sim::NodeIndex node, const NodeMonitor& local_monitor);

  /// Handles stats packets; returns false for anything else.
  bool handle_packet(const sim::Packet& packet);

  /// Queries one remote node's stats.
  void query(sim::NodeIndex target, QueryCallback done);
  /// Same, with an explicit reply deadline (scoped refreshes on a repair
  /// path that cannot afford the full default timeout).
  void query(sim::NodeIndex target, sim::SimDuration timeout,
             QueryCallback done);

  /// Queries many nodes in parallel; `done` fires once every query has
  /// replied or timed out, with the successful snapshots (order follows
  /// `targets`, failures omitted).
  void query_many(const std::vector<sim::NodeIndex>& targets,
                  MultiQueryCallback done);
  void query_many(const std::vector<sim::NodeIndex>& targets,
                  sim::SimDuration timeout, MultiQueryCallback done);

 private:
  struct Pending {
    QueryCallback done;
    sim::EventId timeout_event;
  };

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex node_;
  const NodeMonitor& monitor_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t counter_ = 0;
};

}  // namespace rasc::monitor
