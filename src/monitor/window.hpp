// Fixed-size sliding windows over the most recent h samples.
//
// Paper §3.2: "To avoid miscalculations caused by transient behavior, we
// average the statistics over a window of size h, including the latest data
// units received." These windows are the h-sample averages used everywhere
// monitoring feeds the composer.
#pragma once

#include <cstddef>
#include <vector>

namespace rasc::monitor {

/// Ring buffer keeping the last `capacity` numeric samples with O(1)
/// insertion and O(1) running sum.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity)
      : capacity_(capacity ? capacity : 1) {
    samples_.reserve(capacity_);
  }

  void add(double x) {
    if (samples_.size() < capacity_) {
      samples_.push_back(x);
      sum_ += x;
      return;
    }
    sum_ += x - samples_[next_];
    samples_[next_] = x;
    next_ = (next_ + 1) % capacity_;
    // The running add/subtract accumulates rounding error without bound
    // over long streams. Rebuild the exact sum once per full wrap of the
    // ring — O(capacity) every capacity insertions keeps add() amortized
    // O(1) while pinning the drift to one window's worth of updates.
    if (next_ == 0 && ++wraps_ >= capacity_) {
      wraps_ = 0;
      sum_ = 0;
      for (const double s : samples_) sum_ += s;
    }
  }

  std::size_t count() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return samples_.size() == capacity_; }
  double sum() const { return sum_; }
  double mean() const {
    return samples_.empty() ? 0.0 : sum_ / double(samples_.size());
  }

  void clear() {
    samples_.clear();
    sum_ = 0;
    next_ = 0;
    wraps_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  std::size_t next_ = 0;  // replacement cursor once full
  std::size_t wraps_ = 0;  // full ring wraps since the last exact rebuild
  double sum_ = 0;
};

/// Windowed ratio of "bad" outcomes (e.g., dropped / total) over the last
/// `capacity` outcomes.
class OutcomeWindow {
 public:
  explicit OutcomeWindow(std::size_t capacity) : window_(capacity) {}

  void record(bool bad) { window_.add(bad ? 1.0 : 0.0); }

  /// Fraction of bad outcomes in the window; 0 when empty.
  double ratio() const { return window_.mean(); }
  std::size_t count() const { return window_.count(); }
  void clear() { window_.clear(); }

 private:
  SlidingWindow window_;
};

/// Exponentially-weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    value_ = seeded_ ? alpha_ * x + (1 - alpha_) * value_ : x;
    seeded_ = true;
  }

  double value() const { return value_; }
  bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_ = 0;
  bool seeded_ = false;
};

}  // namespace rasc::monitor
