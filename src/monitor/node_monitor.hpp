// Per-node resource monitor (paper §3.2).
//
// Tracks, over sliding windows: input/output bandwidth actually used
// (sampled from the network's byte counters on a fixed period), the
// fraction of data units dropped, and per-component service-time and
// arrival-rate statistics fed in by the stream runtime.
//
// Each sample tick also publishes the window means to monitor.* gauges
// in the attached obs::MetricRegistry (a private one when none is
// attached), so registry snapshots show what the stats protocol would
// currently advertise.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "monitor/node_stats.hpp"
#include "monitor/rate_meter.hpp"
#include "monitor/window.hpp"
#include "obs/metric_registry.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::monitor {

class NodeMonitor {
 public:
  struct Params {
    /// Bandwidth sampling period.
    sim::SimDuration sample_period = sim::msec(100);
    /// Number of bandwidth samples averaged. Queue drains upstream make
    /// arrivals clumpy; a ~3 s window keeps one burst from spuriously
    /// zeroing a node's reported availability.
    std::size_t bandwidth_window = 30;
    /// Number of unit outcomes in the drop-ratio window (the paper's h).
    std::size_t outcome_window = 200;
    /// When true, snapshots advertise bandwidth reservations so admission
    /// becomes reservation-aware. The paper's system is purely
    /// measurement-driven (availability = capacity - observed usage), so
    /// this defaults to off; the admission ablation flips it.
    bool advertise_reservations = false;
  };

  /// Starts periodic bandwidth sampling immediately. `registry` is the
  /// deployment-wide metric registry (null: a private one is owned).
  NodeMonitor(sim::Simulator& simulator, sim::Network& network,
              sim::NodeIndex node, Params params,
              obs::MetricRegistry* registry = nullptr);
  NodeMonitor(sim::Simulator& simulator, sim::Network& network,
              sim::NodeIndex node);
  ~NodeMonitor();

  NodeMonitor(const NodeMonitor&) = delete;
  NodeMonitor& operator=(const NodeMonitor&) = delete;

  // --- Runtime feedback hooks ---

  /// A data unit finished processing successfully at this node.
  void on_unit_processed();
  /// A data unit was dropped (deadline miss or queue overflow).
  void on_unit_dropped();
  /// Scheduler reports its current ready-queue length (piggybacked on
  /// processing events).
  void on_queue_length(std::int64_t length) { queue_length_ = length; }

  /// Bandwidth committed to an admitted stream at deployment time; may be
  /// negative to release a reservation at teardown.
  void add_reservation(double in_kbps, double out_kbps) {
    reserved_in_kbps_ += in_kbps;
    reserved_out_kbps_ += out_kbps;
    if (reserved_in_kbps_ < 0) reserved_in_kbps_ = 0;
    if (reserved_out_kbps_ < 0) reserved_out_kbps_ = 0;
  }

  /// CPU busy time contributed by a completed unit (multi-resource
  /// monitoring; the paper's general model has k rate-based resources).
  void on_cpu_busy(sim::SimDuration busy) { cpu_busy_accum_ += busy; }

  /// CPU fraction committed to admitted streams (rate x t_ci), possibly
  /// negative to release.
  void add_cpu_reservation(double fraction) {
    reserved_cpu_fraction_ += fraction;
    if (reserved_cpu_fraction_ < 0) reserved_cpu_fraction_ = 0;
  }

  /// Live reservation totals (independent of advertise_reservations —
  /// the node-local lease granter is always reservation-aware even when
  /// remote snapshots are purely measurement-driven).
  double reserved_in_kbps() const { return reserved_in_kbps_; }
  double reserved_out_kbps() const { return reserved_out_kbps_; }

  /// Chaos hook: while blacked out, sample ticks keep their cadence but
  /// neither update windows nor publish gauges, so the stats protocol
  /// keeps advertising the last pre-blackout snapshot (stale reports).
  void set_blackout(bool on);
  bool blackout() const { return blackout_; }

  /// Current snapshot for the stats protocol / oracle composition.
  NodeStats snapshot() const;

  double drop_ratio() const { return outcomes_.ratio(); }

 private:
  void sample_bandwidth();

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex node_;
  Params params_;

  SlidingWindow in_kbps_window_;
  SlidingWindow out_kbps_window_;
  SlidingWindow cpu_window_;
  std::int64_t last_bytes_in_ = 0;
  std::int64_t last_bytes_out_ = 0;
  sim::SimDuration cpu_busy_accum_ = 0;

  OutcomeWindow outcomes_;
  std::int64_t queue_length_ = 0;
  double reserved_in_kbps_ = 0;
  double reserved_out_kbps_ = 0;
  double reserved_cpu_fraction_ = 0;

  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_;
  obs::Gauge* in_kbps_gauge_;
  obs::Gauge* out_kbps_gauge_;
  obs::Gauge* cpu_fraction_gauge_;
  obs::Gauge* drop_ratio_gauge_;
  obs::Gauge* queue_length_gauge_;

  sim::EventId sample_event_ = 0;
  bool stopped_ = false;
  bool blackout_ = false;
};

}  // namespace rasc::monitor
