// Per-node data-unit scheduler (paper §3.4).
//
// The node keeps a single ready queue of data units across all its
// components. The paper's policy: each unit carries a deadline equal to
// the expected arrival of its successor; at each decision point, units
// with negative laxity L = deadline - now - t_ci are dropped (they would
// miss anyway and only add load), and among the rest the unit with the
// smallest laxity runs first. FIFO and EDF are provided for the ablation
// study.
//
// Dispatch is heap-backed. The LLF ordering at any instant is fixed by
// the time-invariant key (deadline - exec_time): laxity differences never
// change as `now` advances, and the expired units (laxity < 0, i.e.
// key < now) are exactly a prefix of that order — so a single min-heap
// both drains expirations and yields the least-laxity unit. EDF dispatches
// by deadline but still expires by laxity, so it keeps a second laxity
// heap; a unit removed through one heap leaves a stale entry in the other,
// detected by a per-slot sequence tag and skipped lazily. FIFO heaps on
// (arrival, insertion order) and never expires anything. purge_app
// (application teardown) strands stale entries the same way under every
// policy, so all dispatch paths run the staleness check.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/component.hpp"
#include "runtime/data_unit.hpp"
#include "sim/time.hpp"

namespace rasc::runtime {

enum class SchedulingPolicy {
  kLeastLaxity,  // the paper's policy
  kFifo,
  kEdf,
};

const char* to_string(SchedulingPolicy policy);

struct ScheduledUnit {
  std::shared_ptr<const DataUnit> unit;
  Component* component = nullptr;
  sim::SimTime arrival = 0;
  sim::SimTime deadline = 0;
  sim::SimDuration exec_time = 0;  // the component's t_ci

  sim::SimDuration laxity(sim::SimTime now) const {
    return deadline - now - exec_time;
  }
};

class Scheduler {
 public:
  explicit Scheduler(SchedulingPolicy policy, std::size_t max_queue = 64)
      : policy_(policy), max_queue_(max_queue) {}

  /// Enqueues a unit; returns false (and does not take it) when the ready
  /// queue is at capacity — the caller counts a drop.
  bool enqueue(ScheduledUnit unit);

  /// Chooses the next unit to run at `now` per the policy. Units that can
  /// no longer meet their deadline are moved into `expired` (LLF/EDF
  /// only; FIFO never inspects deadlines). Returns nullopt when nothing
  /// runnable remains.
  std::optional<ScheduledUnit> dispatch(sim::SimTime now,
                                        std::vector<ScheduledUnit>& expired);

  /// Removes every queued unit of `app` (application teardown: their
  /// components are about to be destroyed and ScheduledUnit::component
  /// would dangle). Returns the removed units in slot order. Heap entries
  /// are stranded stale and skipped lazily by dispatch.
  std::vector<ScheduledUnit> purge_app(AppId app);

  /// Same, but for a single component instance (delta removal: the rest
  /// of the application keeps running).
  std::vector<ScheduledUnit> purge_component(const ComponentKey& key);

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  SchedulingPolicy policy() const { return policy_; }
  std::size_t max_queue() const { return max_queue_; }

 private:
  /// Heap entry: `key` is the policy ordering key, `seq` the insertion
  /// sequence (tie-break + staleness tag), `slot` the unit's storage index.
  struct Entry {
    sim::SimTime key;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// True when the unit this entry referred to has already been removed
  /// through the other heap (EDF only).
  bool stale(const Entry& e) const { return slot_seq_[e.slot] != e.seq; }

  /// Takes the unit out of its slot and recycles the slot.
  ScheduledUnit release(std::uint32_t slot);

  static void heap_push(std::vector<Entry>& heap, Entry entry);
  static void heap_pop(std::vector<Entry>& heap);
  static void sift_down(std::vector<Entry>& heap, std::size_t i);
  /// Removes stale entries and re-heapifies (EDF housekeeping).
  void compact(std::vector<Entry>& heap);

  SchedulingPolicy policy_;
  std::size_t max_queue_;

  // Slot storage: units stay put while heap entries move. Freed slots are
  // recycled; slot_seq_ holds the seq of the current occupant (or a
  // sentinel when free) so stale heap entries are recognizable.
  std::vector<ScheduledUnit> slots_;
  std::vector<std::uint64_t> slot_seq_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;

  std::vector<Entry> heap_;         // LLF: deadline-exec; EDF: deadline;
                                    // FIFO: arrival
  std::vector<Entry> laxity_heap_;  // EDF only: deadline-exec for expiry
};

}  // namespace rasc::runtime
