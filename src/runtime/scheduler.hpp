// Per-node data-unit scheduler (paper §3.4).
//
// The node keeps a single ready queue of data units across all its
// components. The paper's policy: each unit carries a deadline equal to
// the expected arrival of its successor; at each decision point, units
// with negative laxity L = deadline - now - t_ci are dropped (they would
// miss anyway and only add load), and among the rest the unit with the
// smallest laxity runs first. FIFO and EDF are provided for the ablation
// study.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/component.hpp"
#include "runtime/data_unit.hpp"
#include "sim/time.hpp"

namespace rasc::runtime {

enum class SchedulingPolicy {
  kLeastLaxity,  // the paper's policy
  kFifo,
  kEdf,
};

const char* to_string(SchedulingPolicy policy);

struct ScheduledUnit {
  std::shared_ptr<const DataUnit> unit;
  Component* component = nullptr;
  sim::SimTime arrival = 0;
  sim::SimTime deadline = 0;
  sim::SimDuration exec_time = 0;  // the component's t_ci

  sim::SimDuration laxity(sim::SimTime now) const {
    return deadline - now - exec_time;
  }
};

class Scheduler {
 public:
  explicit Scheduler(SchedulingPolicy policy, std::size_t max_queue = 64)
      : policy_(policy), max_queue_(max_queue) {}

  /// Enqueues a unit; returns false (and does not take it) when the ready
  /// queue is at capacity — the caller counts a drop.
  bool enqueue(ScheduledUnit unit);

  /// Chooses the next unit to run at `now` per the policy. Units that can
  /// no longer meet their deadline are moved into `expired` (LLF/EDF
  /// only; FIFO never inspects deadlines). Returns nullopt when nothing
  /// runnable remains.
  std::optional<ScheduledUnit> dispatch(sim::SimTime now,
                                        std::vector<ScheduledUnit>& expired);

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  SchedulingPolicy policy() const { return policy_; }
  std::size_t max_queue() const { return max_queue_; }

 private:
  SchedulingPolicy policy_;
  std::size_t max_queue_;
  std::vector<ScheduledUnit> queue_;  // small (<= max_queue), linear scans
};

}  // namespace rasc::runtime
