// A component: the running instance of a service on a node, bound to one
// application substream stage (paper §2.1).
//
// The component tracks its observed arrival rate (to infer the period p_ci
// the scheduler uses for deadlines, §3.4), applies the service's rate
// ratio via a credit accumulator, and partitions its output over the next
// stage's instances with smooth WRR.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "monitor/rate_meter.hpp"
#include "monitor/window.hpp"
#include "runtime/data_unit.hpp"
#include "runtime/plan.hpp"
#include "runtime/service.hpp"
#include "runtime/wrr.hpp"
#include "sim/time.hpp"

namespace rasc::runtime {

struct ComponentKey {
  AppId app = 0;
  std::int32_t substream = 0;
  std::int32_t stage = 0;

  friend auto operator<=>(const ComponentKey&, const ComponentKey&) = default;
};

struct ComponentKeyHash {
  std::size_t operator()(const ComponentKey& k) const {
    std::size_t h = std::hash<std::int64_t>()(k.app);
    h = h * 1000003u + std::size_t(k.substream);
    h = h * 1000003u + std::size_t(k.stage);
    return h;
  }
};

/// An output produced by processing one input unit.
struct ComponentOutput {
  sim::NodeIndex target = sim::kInvalidNode;
  DataUnit unit;
};

class Component {
 public:
  /// `next_placements`: where stage+1 instances live (or the single
  /// destination sink placement when this is the last stage).
  Component(ComponentKey key, ServiceSpec spec, double planned_rate_ups,
            std::vector<Placement> next_placements);

  const ComponentKey& key() const { return key_; }
  const ServiceSpec& spec() const { return spec_; }

  /// Records a unit arrival and returns the deadline the scheduler should
  /// use: expected arrival of the next unit, arr + p_ci (paper §3.4).
  sim::SimTime on_arrival(sim::SimTime now);

  /// Re-rates the component in place and rewrites its downstream split
  /// (rate adapter delta). Arrival/execution statistics survive — the
  /// component keeps its measured period and exec-time history.
  void reconfigure(double planned_rate_ups,
                   std::vector<Placement> next_placements);

  /// Processes one input unit and emits 0..k outputs according to the
  /// rate ratio credit. Outputs preserve the input's seq when the ratio is
  /// exactly 1 (so downstream order accounting stays exact); otherwise a
  /// per-component output counter assigns fresh sequence numbers.
  std::vector<ComponentOutput> process(const DataUnit& in);

  void count_drop() { ++dropped_; }

  // --- Statistics (feed the per-node monitor & tests) ---
  std::int64_t arrived() const { return arrived_; }
  std::int64_t processed() const { return processed_; }
  std::int64_t dropped() const { return dropped_; }
  double planned_rate() const { return planned_rate_ups_; }

  /// Observed arrival period; falls back to the planned rate until enough
  /// samples exist.
  sim::SimDuration current_period(sim::SimTime now) const;

  /// Records an actual execution duration (paper §3.2: "the average
  /// running time t_ci of a data unit processed by c_i, averaged over
  /// data units processed recently").
  void on_executed(sim::SimDuration actual);

  /// Expected execution time for the next unit: the observed average,
  /// seeded with the service's nominal cost.
  sim::SimDuration expected_exec_time() const;

 private:
  std::size_t pick_target();

  ComponentKey key_;
  ServiceSpec spec_;
  double planned_rate_ups_;
  std::vector<Placement> next_placements_;
  std::optional<WeightedRoundRobin> wrr_;  // absent when single target
  monitor::RateMeter arrivals_;
  monitor::Ewma exec_time_us_{0.2};
  double ratio_credit_ = 0;
  std::int64_t out_seq_ = 0;
  std::int64_t arrived_ = 0;
  std::int64_t processed_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace rasc::runtime
