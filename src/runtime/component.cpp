#include "runtime/component.hpp"

#include <cassert>
#include <cmath>

namespace rasc::runtime {

Component::Component(ComponentKey key, ServiceSpec spec,
                     double planned_rate_ups,
                     std::vector<Placement> next_placements)
    : key_(key),
      spec_(std::move(spec)),
      planned_rate_ups_(planned_rate_ups),
      next_placements_(std::move(next_placements)) {
  assert(!next_placements_.empty() && "component needs a downstream");
  if (next_placements_.size() > 1) {
    std::vector<double> weights;
    weights.reserve(next_placements_.size());
    for (const auto& p : next_placements_) {
      weights.push_back(p.rate_units_per_sec);
    }
    wrr_.emplace(std::move(weights));
  }
}

void Component::reconfigure(double planned_rate_ups,
                            std::vector<Placement> next_placements) {
  assert(!next_placements.empty() && "component needs a downstream");
  planned_rate_ups_ = planned_rate_ups;
  next_placements_ = std::move(next_placements);
  wrr_.reset();
  if (next_placements_.size() > 1) {
    std::vector<double> weights;
    weights.reserve(next_placements_.size());
    for (const auto& p : next_placements_) {
      weights.push_back(p.rate_units_per_sec);
    }
    wrr_.emplace(std::move(weights));
  }
}

sim::SimTime Component::on_arrival(sim::SimTime now) {
  ++arrived_;
  arrivals_.record(now);
  return now + current_period(now);
}

sim::SimDuration Component::current_period(sim::SimTime now) const {
  // Paper §3.4: the scheduler infers the period from the observed arrival
  // rate. Until the meter warms up, fall back to the allocation.
  const sim::SimDuration measured = arrivals_.mean_period(now);
  if (measured > 0) return measured;
  if (planned_rate_ups_ > 0) return sim::SimDuration(1e6 / planned_rate_ups_);
  return sim::msec(100);  // conservative default
}

void Component::on_executed(sim::SimDuration actual) {
  exec_time_us_.add(double(actual));
}

sim::SimDuration Component::expected_exec_time() const {
  if (exec_time_us_.seeded()) {
    return sim::SimDuration(exec_time_us_.value());
  }
  return spec_.cpu_time_per_unit;
}

std::size_t Component::pick_target() {
  return wrr_ ? wrr_->next() : 0;
}

std::vector<ComponentOutput> Component::process(const DataUnit& in) {
  ++processed_;
  std::vector<ComponentOutput> outputs;

  ratio_credit_ += spec_.rate_ratio;
  const int emit = int(std::floor(ratio_credit_));
  ratio_credit_ -= emit;
  if (emit <= 0) return outputs;

  const auto out_bytes = std::int64_t(
      std::llround(double(in.size_bytes) * spec_.output_size_factor));
  const bool preserve_seq = (spec_.rate_ratio == 1.0) && (emit == 1);

  outputs.reserve(std::size_t(emit));
  for (int i = 0; i < emit; ++i) {
    const auto& target = next_placements_[pick_target()];
    ComponentOutput out;
    out.target = target.node;
    out.unit = in;  // copies app/substream/created_at
    out.unit.stage = in.stage + 1;
    out.unit.size_bytes = out_bytes > 0 ? out_bytes : 1;
    out.unit.seq = preserve_seq ? in.seq : out_seq_++;
    outputs.push_back(out);
  }
  return outputs;
}

}  // namespace rasc::runtime
