// Data units: the chunks of stream data components operate on
// (paper §2.1 — picture/audio frame sequences, sets of sensor readings).
#pragma once

#include <cstdint>

#include "sim/message.hpp"

namespace rasc::runtime {

/// Identifies one composed stream-processing application.
using AppId = std::int64_t;

struct DataUnit final : sim::Message {
  const char* kind() const override { return "runtime.data_unit"; }
  std::optional<obs::UnitId> unit_id() const override {
    return obs::UnitId{app, substream, seq};
  }

  AppId app = 0;
  std::int32_t substream = 0;
  /// Sequence number within the substream, assigned at the source;
  /// preserved through rate-ratio-1 components so the sink can detect
  /// reordering.
  std::int64_t seq = 0;
  /// Index of the stage (service layer) this unit is heading to;
  /// == number of stages means it is heading to the destination sink.
  std::int32_t stage = 0;
  std::int64_t size_bytes = 0;
  /// Source emission time (end-to-end delay reference).
  sim::SimTime created_at = 0;
};

}  // namespace rasc::runtime
