// Node-side capacity-lease authority (sharded control plane).
//
// Each node partitions its headroomed bandwidth availability among the K
// coordinator shards: a LeaseRequestMsg is answered with a grant of a
// demand-rebalanced share of whatever the monitor says is still free
// (equal split without hints; idle shards shrink toward a floor and busy
// shards absorb the freed surplus otherwise), stamped with a
// fresh lease epoch and a deterministic expiry deadline. Deploy messages
// that spend a grant are *debited* here before the runtime instantiates
// anything; a debit that does not match the current epoch, arrives after
// expiry, or overdraws the remaining grant is refused and the deploy
// NACKs — the node is authoritative, so two shards racing for the same
// bandwidth can never double-reserve it (the loser repairs its plan
// against its remaining lease instead of tearing the app down).
//
// Determinism: everything here is driven by packet arrivals and
// simulator timers on this node's own LP, so sharded runs replay
// byte-identically for a fixed seed at any worker-thread count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "monitor/node_monitor.hpp"
#include "obs/metric_registry.hpp"
#include "runtime/data_unit.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::runtime {

class LeaseGranter {
 public:
  struct Params {
    /// Lifetime of one grant; a shard that stops renewing loses its
    /// share this long after the last grant.
    sim::SimDuration lease_duration = sim::sec(12);
    /// Fraction of the monitored availability the node is willing to
    /// promise across all shards (control-traffic headroom).
    double headroom = 0.95;
    /// Fleet size: each (re)grant hands out free/`shards` so the shares
    /// converge to an equal split as renewals sweep.
    int shards = 1;
  };

  /// Sentinel shard id for leaseless debits (gossip control plane): the
  /// debit is checked against the node's *live* grantable pool — current
  /// availability minus what is still promised to real shards — instead
  /// of a pre-negotiated grant, and the lease epoch is ignored. The node
  /// stays the authoritative admission point: two gossip composers racing
  /// for the same bandwidth serialize through their debits here, and the
  /// loser NACKs exactly as a sharded overdraw would.
  static constexpr std::int32_t kPoolShard = 1 << 20;

  /// `registry` is the deployment-wide metric registry; the granter owns
  /// a private one when null. Emits under lease.* with this node's label.
  LeaseGranter(sim::Simulator& simulator, sim::Network& network,
               sim::NodeIndex node, const monitor::NodeMonitor& monitor,
               Params params, obs::MetricRegistry* registry = nullptr);
  ~LeaseGranter();

  LeaseGranter(const LeaseGranter&) = delete;
  LeaseGranter& operator=(const LeaseGranter&) = delete;

  /// Consumes LeaseRequestMsg packets; false for anything else.
  bool handle_packet(const sim::Packet& packet);

  /// Spends `in/out` kbps of shard `shard`'s grant for one deploy message
  /// of `app`. False (NACK the deploy) when the epoch is not current, the
  /// grant expired, or the remaining grant cannot cover the reservation.
  bool debit(std::int32_t shard, std::uint64_t lease_epoch, AppId app,
             double in_kbps, double out_kbps);

  /// Returns everything `app` debited back to the granting shard's
  /// remaining allowance, provided its lease term is still current (funds
  /// from expired or re-granted terms return via the next renewal's pool
  /// instead — crediting them now would double-count).
  void release_app(AppId app);

  /// Live grantable pool per direction: headroomed availability minus the
  /// unspent remainders still promised to real shards. What a kPoolShard
  /// debit is checked against, and what the gossip agent advertises as
  /// this node's lease headroom.
  void pool_remaining_kbps(double& in_kbps, double& out_kbps) const;

  // --- Introspection (tests / bench invariants) ---
  double remaining_in_kbps(std::int32_t shard) const;
  double remaining_out_kbps(std::int32_t shard) const;
  std::uint64_t epoch(std::int32_t shard) const;
  /// True when shard's coordinator looks dead from this node: it held a
  /// grant here but let it lapse unrenewed (healthy shards renew every
  /// lease_renew << lease_duration, so an expired grant means several
  /// consecutive renewals were missed). Nodes that never granted to the
  /// shard report false — absence of evidence is not suspicion.
  bool holder_suspect(std::int32_t shard) const;
  /// Current holder (coordinator home node) of `shard`'s live grant
  /// here, or kInvalidNode when the grant lapsed or never existed.
  /// Tracks takeovers: once a standby renews, it is the holder — source
  /// nodes route submissions to it instead of the dead hash home.
  sim::NodeIndex holder_of(std::int32_t shard) const;
  /// Live debits of `shard`'s lease on this node, sorted by app: the
  /// authoritative record of which apps the shard deployed here, dumped
  /// into ShardRecoverReplyMsg during standby reconstruction.
  std::vector<std::tuple<AppId, double, double>> ledger_for_shard(
      std::int32_t shard) const;
  /// High-water mark of (sum of outstanding grants) - (grantable pool),
  /// in kbps; stays 0 when no grant ever over-promised capacity.
  double overgrant_high_water_kbps() const { return overgrant_high_water_; }

 private:
  struct Grant {
    double in_kbps = 0;   // remaining (undebited) allowance
    double out_kbps = 0;
    std::uint64_t epoch = 0;
    /// Epoch this grant replaced (0 = none): deploys composed against the
    /// replaced term and still in flight debit the current remainder.
    std::uint64_t prev_epoch = 0;
    sim::SimTime expires_at = 0;
    sim::NodeIndex holder = sim::kInvalidNode;  // shard home node
    bool expired = false;
    sim::EventId expiry = 0;
    /// Highest takeover epoch a request for this shard has carried (0 =
    /// the original primary term). Requests below it are fenced off.
    std::uint64_t fence = 0;
    /// First lease epoch issued under the current fence term: debits
    /// stamped with an older lease epoch were composed by the fenced-out
    /// holder, so the epoch NACK counts as a fenced message.
    std::uint64_t fence_floor_epoch = 0;
  };
  struct AppDebit {
    std::int32_t shard = -1;
    std::uint64_t epoch = 0;
    double in_kbps = 0;
    double out_kbps = 0;
  };

  void grant(std::int32_t shard, sim::NodeIndex requester,
             std::uint64_t request_id, double demand_kbps,
             std::uint64_t takeover_epoch);
  void expire(std::int32_t shard, std::uint64_t epoch);
  /// Rebalanced share of `pool` for `shard` given its reported demand:
  /// pool/K when the hint is unknown (<0), the idle floor pool/2K at
  /// zero demand, otherwise demand (with margin) clamped between the
  /// floor and the fair split among recently-active shards.
  double target_share(std::int32_t shard, double pool, double demand) const;
  /// Headroomed availability per direction from the live monitor view
  /// (reservation-aware even when snapshots do not advertise them).
  void pool_kbps(double& in_kbps, double& out_kbps) const;
  /// Bumps shard.fenced_msgs, creating the cell on first use.
  void count_fenced();

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex node_;
  const monitor::NodeMonitor& monitor_;
  Params params_;

  std::unique_ptr<obs::MetricRegistry> owned_registry_;

  /// Ordered by shard id: deterministic iteration for the free-pool sum.
  std::map<std::int32_t, Grant> grants_;
  /// Last demand hint per shard (erased when the grant expires); feeds
  /// the active-shard count of the rebalanced share.
  std::map<std::int32_t, double> hints_;
  std::unordered_map<AppId, AppDebit> ledger_;
  std::uint64_t epoch_counter_ = 0;
  /// Sum of live ledger debits: bandwidth the leases already converted
  /// into node reservations (drops back out at app teardown).
  double lease_reserved_in_ = 0;
  double lease_reserved_out_ = 0;
  double overgrant_high_water_ = 0;

  obs::MetricRegistry* registry_;
  obs::Counter* granted_;
  obs::Counter* expired_count_;
  obs::Counter* debits_;
  obs::Counter* nacks_;
  obs::Counter* nacks_epoch_;    // stale/expired lease term
  obs::Counter* nacks_overdraw_; // live term, remainder too small
  /// Messages refused because they carried a stale takeover epoch
  /// (zombie primary after a standby takeover). Lazily created so runs
  /// without standbys export byte-identical snapshots.
  obs::Counter* fenced_ = nullptr;
  obs::Gauge* overgrant_gauge_;
};

}  // namespace rasc::runtime
