// Stream sources: emit data units at the requested rate from the
// application's source node, partitioning over the first stage's
// component instances.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/metric_registry.hpp"
#include "obs/unit_trace.hpp"
#include "runtime/data_unit.hpp"
#include "runtime/plan.hpp"
#include "runtime/wrr.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::runtime {

class StreamSource {
 public:
  /// Emits `rate_ups` units/sec of `unit_bytes` each from `node`,
  /// spreading them over `first_stage` proportionally to allocated rates.
  /// When attached to a registry, emissions are mirrored to the
  /// source.units_emitted counter under `labels`; `trace` (optional)
  /// receives an emitted hop per unit.
  StreamSource(sim::Simulator& simulator, sim::Network& network,
               sim::NodeIndex node, AppId app, std::int32_t substream,
               double rate_ups, std::int64_t unit_bytes,
               std::vector<Placement> first_stage,
               obs::MetricRegistry* registry = nullptr,
               obs::Labels labels = {}, obs::UnitTrace* trace = nullptr);
  ~StreamSource();

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  /// Starts emitting at absolute time `at` and stops at `until`
  /// (exclusive). Emission times sit on an exact period grid (no drift).
  void run(sim::SimTime at, sim::SimTime until);

  void stop();

  /// Rewrites the stage-0 split and emission rate in place (rate adapter
  /// delta). Sequence numbers continue; the emission grid is re-anchored
  /// at the next tick under the new period.
  void reconfigure(double rate_ups, std::vector<Placement> first_stage);

  std::int64_t emitted() const { return emitted_; }
  AppId app() const { return app_; }
  std::int32_t substream() const { return substream_; }
  std::int64_t unit_bytes() const { return unit_bytes_; }

 private:
  void emit();

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex node_;
  AppId app_;
  std::int32_t substream_;
  sim::SimDuration period_;
  std::int64_t unit_bytes_;
  std::vector<Placement> first_stage_;
  std::optional<WeightedRoundRobin> wrr_;
  sim::SimTime start_ = 0;
  sim::SimTime until_ = 0;
  /// Doubles as the next sequence number and the emission-grid index, so
  /// it stays a plain member; the registry cell mirrors it for export.
  std::int64_t emitted_ = 0;
  /// Emission-grid origin: the grid is start_ + (emitted_ - grid_base_)
  /// * period_. reconfigure() re-anchors both so a rate change never
  /// back-dates the next emission.
  std::int64_t grid_base_ = 0;
  obs::Counter* emitted_cell_ = nullptr;
  obs::UnitTrace* trace_ = nullptr;
  sim::EventId next_event_ = 0;
  bool running_ = false;
};

}  // namespace rasc::runtime
