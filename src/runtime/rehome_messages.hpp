// Shard re-homing reconstruction protocol (standby takeover).
//
// When a standby coordinator takes over a dead shard it has no batch
// queue, no view and no record of which apps the dead primary deployed.
// It rebuilds that state from the only durable copies in the system —
// the fleet's node runtimes and lease granters:
//
//  - ShardRecoverRequestMsg: standby home -> every node. "Dump what you
//    know about shard S": the granter's per-app debit ledger for S (the
//    authoritative record of which apps S deployed through its lease)
//    plus the runtime's full component/sink/source state.
//  - ShardRecoverReplyMsg: node -> standby home. The dump. Runtime state
//    is reported for *all* apps, not just S's: adapter-shipped placements
//    and source deploys never debit the granter, so no single node can
//    filter by shard — the standby intersects the union of the ledgers
//    with the union of the runtime state instead.
//
// The standby collects replies until a fixed deadline (reconstruct
// timeout), then adopts: for every ledger app with a complete
// source->stages->sink picture it rebuilds the ServiceRequest and
// AppPlan and re-attaches supervision/adaptation. Everything here rides
// simulated packets and per-LP timers, so takeover replays
// byte-identically at any worker-thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/component.hpp"
#include "runtime/plan.hpp"
#include "sim/message.hpp"

namespace rasc::runtime {

struct ShardRecoverRequestMsg final : sim::Message {
  const char* kind() const override { return "runtime.shard_recover_request"; }
  std::int32_t shard = -1;
  /// Standby home node the reply must be sent to.
  sim::NodeIndex requester = sim::kInvalidNode;
  std::uint64_t request_id = 0;
  static constexpr std::int64_t kBytes = 32;
};

struct ShardRecoverReplyMsg final : sim::Message {
  const char* kind() const override { return "runtime.shard_recover_reply"; }

  /// One live ledger debit of the queried shard: `app` spent this much of
  /// the shard's lease on this node. Membership proof — the app was
  /// deployed *by* the dead shard, not merely failed over through it.
  struct DebitEntry {
    AppId app = 0;
    double in_kbps = 0;
    double out_kbps = 0;
  };
  /// One deployed component instance on this node (any app).
  struct ComponentState {
    ComponentKey key;
    std::string service;
    /// Planned input rate of this instance, units/second.
    double rate_ups = 0;
    /// Highest deploy epoch this node has recorded for key.app (0 when
    /// unknown): the standby's coordinator fast-forwards past the max so
    /// its own deploys are never mistaken for the dead primary's stale
    /// retransmissions.
    std::uint64_t app_epoch = 0;
  };
  /// One delivery endpoint on this node, with the exact planned rates
  /// (the runtime's StreamSink/StreamSource keep only derived state, so
  /// the node records these at deploy time for reconstruction).
  struct SinkState {
    AppId app = 0;
    std::int32_t substream = 0;
    double rate_ups = 0;
    std::int64_t unit_bytes = 0;  // delivered unit size
  };
  struct SourceState {
    AppId app = 0;
    std::int32_t substream = 0;
    double rate_ups = 0;
    std::int64_t unit_bytes = 0;  // emitted unit size
    sim::SimTime stop_at = 0;
  };

  std::int32_t shard = -1;
  sim::NodeIndex node = sim::kInvalidNode;
  std::uint64_t request_id = 0;
  std::vector<DebitEntry> debits;
  std::vector<ComponentState> components;
  std::vector<SinkState> sinks;
  std::vector<SourceState> sources;

  /// Serialized size: header + fixed-size records (component service
  /// names modeled at 16 bytes, the catalog's longest).
  std::int64_t wire_size() const {
    return 48 + std::int64_t(debits.size()) * 24 +
           std::int64_t(components.size()) * 48 +
           std::int64_t(sinks.size()) * 28 +
           std::int64_t(sources.size()) * 36;
  }
};

}  // namespace rasc::runtime
