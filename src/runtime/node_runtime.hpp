// Per-node stream-processing runtime.
//
// Hosts the components deployed on a simulated node, runs the single-CPU
// scheduler loop (paper §3.4), forwards processed units downstream, hosts
// destination sinks and stream sources, and feeds the resource monitor
// (drops, queue length, reservations).
//
// Telemetry: every tally (received/processed/dropped counts, sink
// delivery stats, source emissions) is an obs::MetricRegistry cell under
// runtime.* / sink.* / source.* names labeled with this node; scheduler
// outcomes additionally feed the per-unit lifecycle trace when one is
// attached. Without an external registry the runtime owns a private one,
// so the emit path is identical either way.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "monitor/node_monitor.hpp"
#include "obs/metric_registry.hpp"
#include "obs/unit_trace.hpp"
#include "runtime/component.hpp"
#include "runtime/deploy_messages.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/service.hpp"
#include "runtime/sink.hpp"
#include "runtime/source.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rasc::runtime {

class LeaseGranter;
struct ShardRecoverRequestMsg;

class NodeRuntime {
 public:
  struct Params {
    SchedulingPolicy policy = SchedulingPolicy::kLeastLaxity;
    std::size_t max_ready_queue = 64;
    /// Tolerance used by sinks for the "flawless delivery" metric.
    double timely_tolerance_periods = 1.0;
    /// Orphan reaper lease (0 = reaper off, the default). Components and
    /// sinks of an app that never streamed a unit through this node
    /// self-garbage-collect once this long passes without any control
    /// message, data unit, or supervisor probe for the app — covering a
    /// coordinator that died mid-deploy and can never roll back.
    sim::SimDuration orphan_lease = 0;
  };

  /// `registry` is the deployment-wide metric registry (null: the runtime
  /// owns a private one); `trace` the optional data-unit lifecycle trace.
  NodeRuntime(sim::Simulator& simulator, sim::Network& network,
              sim::NodeIndex node, monitor::NodeMonitor& node_monitor,
              const ServiceCatalog& catalog, Params params,
              obs::MetricRegistry* registry = nullptr,
              obs::UnitTrace* trace = nullptr);
  NodeRuntime(sim::Simulator& simulator, sim::Network& network,
              sim::NodeIndex node, monitor::NodeMonitor& node_monitor,
              const ServiceCatalog& catalog);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Wires in this node's capacity-lease granter (sharded control plane).
  /// With a granter set, component/sink deploys stamped with a shard are
  /// debited against that shard's lease before instantiation and NACK
  /// when the grant cannot cover them; teardown returns the debits. Null
  /// (the default) keeps the legacy lease-free behavior byte-identical.
  void set_lease_granter(LeaseGranter* granter) { granter_ = granter; }

  /// Handles data units and deployment messages; false for anything else.
  /// Deploy messages are exactly-once-effective: duplicates (same
  /// requester and request id) re-ack the recorded verdict without
  /// re-applying, and messages from a stale or rolled-back epoch are
  /// dropped (see deploy_messages.hpp).
  bool handle_packet(const sim::Packet& packet);

  // --- Local deployment API (the message handlers call these; tests and
  // oracle-mode experiments may call them directly) ---

  /// Instantiates a component. Reserves input and output bandwidth with
  /// the monitor. Throws std::out_of_range for an unknown service.
  void deploy_component(const ComponentKey& key, const std::string& service,
                        double rate_units_per_sec,
                        std::int64_t in_unit_bytes,
                        std::vector<Placement> next);

  void deploy_sink(AppId app, std::int32_t substream,
                   double rate_units_per_sec, std::int64_t unit_bytes);

  void deploy_source(AppId app, std::int32_t substream,
                     double rate_units_per_sec, std::int64_t unit_bytes,
                     std::vector<Placement> first_stage,
                     sim::SimTime start_at, sim::SimTime stop_at);

  // --- Delta re-allocation (rate adapter) ---

  /// Re-rates a deployed component and rewrites its downstream split,
  /// adjusting bandwidth/CPU reservations by the delta. No-op when the
  /// component is not deployed here (a stale delta).
  void update_component(const ComponentKey& key, double rate_units_per_sec,
                        std::int64_t in_unit_bytes,
                        std::vector<Placement> next);

  /// Retires one component instance: releases its reservations and purges
  /// its queued units (counted unroutable). The app keeps running.
  void remove_component(const ComponentKey& key);

  /// Rewrites a running source's stage-0 split and emission rate,
  /// adjusting the output reservation. No-op when no source is here.
  void update_source_split(AppId app, std::int32_t substream,
                           double rate_units_per_sec,
                           std::vector<Placement> first_stage);

  /// Removes all state of `app` on this node and releases reservations.
  void teardown_app(AppId app);

  // --- Introspection ---
  const Component* find_component(const ComponentKey& key) const;
  const StreamSink* find_sink(AppId app, std::int32_t substream) const;
  const StreamSource* find_source(AppId app, std::int32_t substream) const;
  std::size_t component_count() const { return components_.size(); }

  /// Bandwidth (in+out kbps) currently reserved on this node for `app`
  /// across its components, sinks and sources. Deterministic summation
  /// order; 0 once the app is fully torn down (leak detection in tests
  /// and the deploy-reliability bench).
  double reserved_kbps_for_app(AppId app) const;

  /// Sum of units emitted by every source hosted on this node.
  std::int64_t total_emitted() const;
  /// Merged stats of every sink hosted on this node (deterministic
  /// (app, substream) merge order).
  SinkStats aggregate_sink_stats() const;

  std::int64_t units_received() const { return units_received_->value(); }
  std::int64_t units_dropped_queue_full() const {
    return dropped_queue_full_->value();
  }
  std::int64_t units_dropped_deadline() const {
    return dropped_deadline_->value();
  }
  std::int64_t units_processed() const { return units_processed_->value(); }
  /// Units addressed to a component/sink this node does not host (stale
  /// plans, failures). They are dropped and counted.
  std::int64_t units_unroutable() const { return units_unroutable_->value(); }

  sim::NodeIndex node() const { return node_; }
  /// The registry this runtime emits through (shared or private).
  obs::MetricRegistry& metrics() { return *registry_; }

  /// Packs a stream endpoint identity into the endpoint-table key. App
  /// ids and substream indices are non-negative and fit 32 bits each.
  static std::uint64_t endpoint_key(AppId app, std::int32_t substream) {
    return (std::uint64_t(std::uint32_t(app)) << 32) |
           std::uint64_t(std::uint32_t(substream));
  }

 private:
  /// Sink and/or source endpoint of one (app, substream) on this node,
  /// plus the bandwidth reserved for each at deploy time.
  struct Endpoint {
    std::optional<StreamSink> sink;
    std::unique_ptr<StreamSource> source;
    double sink_reserved_kbps = 0;
    double source_reserved_kbps = 0;
    /// Planned rates/sizes as deployed (the sink/source objects keep only
    /// derived state — e.g. the source's truncated emission period — so
    /// the exact figures are recorded here for shard-takeover
    /// reconstruction).
    double sink_rate_ups = 0;
    std::int64_t sink_unit_bytes = 0;
    double source_rate_ups = 0;
    sim::SimTime source_stop_at = 0;

    bool empty() const { return !sink.has_value() && source == nullptr; }
  };

  /// Per-app control-plane state: the deployment epoch ordering rule, the
  /// rollback tombstone, and the orphan-reaper lease.
  struct AppControl {
    std::uint64_t epoch = 0;
    /// Tombstoned by an epoch-stamped teardown: deploys of `epoch` (or
    /// older) arriving late are dropped instead of re-instantiated.
    bool retired = false;
    /// A data unit of this app passed through here — the app reached
    /// streaming, so it is never an orphan.
    bool streamed = false;
    sim::SimTime lease_renewed = 0;
  };

  void on_data_unit(const std::shared_ptr<const DataUnit>& unit);
  void maybe_dispatch();
  void finish_unit(ScheduledUnit scheduled, sim::SimDuration actual);
  void send_ack(sim::NodeIndex to, std::uint64_t request_id, bool ok);
  double reservation_kbps(double rate_ups, std::int64_t unit_bytes) const;

  /// Dedup + epoch gate shared by the three deploy-message handlers.
  /// True when the message must be applied; duplicates are re-acked and
  /// stale epochs dropped (counted) here.
  bool admit_deploy(AppId app, std::uint64_t epoch, sim::NodeIndex requester,
                    std::uint64_t request_id);
  void schedule_reap();
  void reap_orphans();
  /// Answers a standby's shard-state reconstruction query with this
  /// node's ledger slice and full runtime state (sorted, deterministic).
  void handle_recover_request(const ShardRecoverRequestMsg& req);
  /// Lazily-created deploy.*/orphan.* cells: a run that never needs them
  /// leaves the registry snapshot byte-identical to older builds.
  obs::Counter& lazy_counter(const char* name, obs::Counter*& slot);

  /// Ascending (app, substream) key order — the deterministic iteration
  /// order every aggregate over the endpoint table uses.
  std::vector<std::uint64_t> sorted_endpoint_keys() const;

  /// Labels a per-endpoint metric; re-deployments of the same
  /// (app, substream) get a fresh incarnation suffix so their registry
  /// cells never alias.
  obs::Labels endpoint_labels(AppId app, std::int32_t substream,
                              std::uint32_t incarnation) const;

  /// True when any component or stream endpoint of `app` lives here.
  bool app_has_state(AppId app) const;

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex node_;
  monitor::NodeMonitor& monitor_;
  const ServiceCatalog& catalog_;
  Params params_;
  LeaseGranter* granter_ = nullptr;
  Scheduler scheduler_;
  bool cpu_busy_ = false;
  util::Xoshiro256 exec_rng_;

  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_;
  obs::UnitTrace* trace_;

  std::unordered_map<ComponentKey, std::unique_ptr<Component>,
                     ComponentKeyHash>
      components_;
  // Reservation (in,out) per component for teardown bookkeeping.
  std::unordered_map<ComponentKey, std::pair<double, double>,
                     ComponentKeyHash>
      component_reservations_;
  std::unordered_map<ComponentKey, double, ComponentKeyHash>
      component_cpu_reservations_;

  /// Stream endpoints keyed by endpoint_key(app, substream).
  std::unordered_map<std::uint64_t, Endpoint> endpoints_;
  /// Control-plane state of every app that was ever deployed here through
  /// messages (local-API deployments bypass it and are never reaped).
  std::unordered_map<AppId, AppControl> app_control_;
  /// Verdict of every applied deploy request, keyed by (requester,
  /// request_id) — request ids are only unique per coordinator.
  std::map<std::pair<sim::NodeIndex, std::uint64_t>, bool> seen_requests_;
  sim::EventId reap_event_ = 0;
  /// Deploy counts per endpoint key (never erased): metric incarnations.
  std::unordered_map<std::uint64_t, std::uint32_t> sink_incarnations_;
  std::unordered_map<std::uint64_t, std::uint32_t> source_incarnations_;

  obs::Counter* units_received_;
  obs::Counter* dropped_queue_full_;
  obs::Counter* dropped_deadline_;
  obs::Counter* units_processed_;
  obs::Counter* units_unroutable_;
  // Lazy cells (see lazy_counter).
  obs::Counter* dup_acks_ = nullptr;
  obs::Counter* stale_epoch_ = nullptr;
  obs::Counter* orphans_reaped_ = nullptr;
};

}  // namespace rasc::runtime
