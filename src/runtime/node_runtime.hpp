// Per-node stream-processing runtime.
//
// Hosts the components deployed on a simulated node, runs the single-CPU
// scheduler loop (paper §3.4), forwards processed units downstream, hosts
// destination sinks and stream sources, and feeds the resource monitor
// (drops, queue length, reservations).
#pragma once

#include <map>
#include <memory>
#include <unordered_map>

#include "monitor/node_monitor.hpp"
#include "runtime/component.hpp"
#include "runtime/deploy_messages.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/service.hpp"
#include "runtime/sink.hpp"
#include "runtime/source.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rasc::runtime {

class NodeRuntime {
 public:
  struct Params {
    SchedulingPolicy policy = SchedulingPolicy::kLeastLaxity;
    std::size_t max_ready_queue = 64;
    /// Tolerance used by sinks for the "flawless delivery" metric.
    double timely_tolerance_periods = 1.0;
  };

  NodeRuntime(sim::Simulator& simulator, sim::Network& network,
              sim::NodeIndex node, monitor::NodeMonitor& node_monitor,
              const ServiceCatalog& catalog, Params params);
  NodeRuntime(sim::Simulator& simulator, sim::Network& network,
              sim::NodeIndex node, monitor::NodeMonitor& node_monitor,
              const ServiceCatalog& catalog);

  /// Handles data units and deployment messages; false for anything else.
  bool handle_packet(const sim::Packet& packet);

  // --- Local deployment API (the message handlers call these; tests and
  // oracle-mode experiments may call them directly) ---

  /// Instantiates a component. Reserves input and output bandwidth with
  /// the monitor. Throws std::out_of_range for an unknown service.
  void deploy_component(const ComponentKey& key, const std::string& service,
                        double rate_units_per_sec,
                        std::int64_t in_unit_bytes,
                        std::vector<Placement> next);

  void deploy_sink(AppId app, std::int32_t substream,
                   double rate_units_per_sec, std::int64_t unit_bytes);

  void deploy_source(AppId app, std::int32_t substream,
                     double rate_units_per_sec, std::int64_t unit_bytes,
                     std::vector<Placement> first_stage,
                     sim::SimTime start_at, sim::SimTime stop_at);

  /// Removes all state of `app` on this node and releases reservations.
  void teardown_app(AppId app);

  // --- Introspection ---
  const Component* find_component(const ComponentKey& key) const;
  const StreamSink* find_sink(AppId app, std::int32_t substream) const;
  const StreamSource* find_source(AppId app, std::int32_t substream) const;
  std::size_t component_count() const { return components_.size(); }

  /// Sum of units emitted by every source hosted on this node.
  std::int64_t total_emitted() const;
  /// Merged stats of every sink hosted on this node.
  SinkStats aggregate_sink_stats() const;

  std::int64_t units_received() const { return units_received_; }
  std::int64_t units_dropped_queue_full() const {
    return dropped_queue_full_;
  }
  std::int64_t units_dropped_deadline() const { return dropped_deadline_; }
  std::int64_t units_processed() const { return units_processed_; }
  /// Units addressed to a component/sink this node does not host (stale
  /// plans, failures). They are dropped and counted.
  std::int64_t units_unroutable() const { return units_unroutable_; }

  sim::NodeIndex node() const { return node_; }

 private:
  void on_data_unit(const std::shared_ptr<const DataUnit>& unit);
  void maybe_dispatch();
  void finish_unit(ScheduledUnit scheduled, sim::SimDuration actual);
  void send_ack(sim::NodeIndex to, std::uint64_t request_id, bool ok);
  double reservation_kbps(double rate_ups, std::int64_t unit_bytes) const;

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex node_;
  monitor::NodeMonitor& monitor_;
  const ServiceCatalog& catalog_;
  Params params_;
  Scheduler scheduler_;
  bool cpu_busy_ = false;
  util::Xoshiro256 exec_rng_;

  std::unordered_map<ComponentKey, std::unique_ptr<Component>,
                     ComponentKeyHash>
      components_;
  // Reservation (in,out) per component for teardown bookkeeping.
  std::unordered_map<ComponentKey, std::pair<double, double>,
                     ComponentKeyHash>
      component_reservations_;
  std::unordered_map<ComponentKey, double, ComponentKeyHash>
      component_cpu_reservations_;
  std::map<std::pair<AppId, std::int32_t>, StreamSink> sinks_;
  std::map<std::pair<AppId, std::int32_t>, double> sink_reservations_;
  std::map<std::pair<AppId, std::int32_t>, std::unique_ptr<StreamSource>>
      sources_;
  std::map<std::pair<AppId, std::int32_t>, double> source_reservations_;

  std::int64_t units_received_ = 0;
  std::int64_t dropped_queue_full_ = 0;
  std::int64_t dropped_deadline_ = 0;
  std::int64_t units_processed_ = 0;
  std::int64_t units_unroutable_ = 0;
};

}  // namespace rasc::runtime
