// Destination-side accounting: delivery, timeliness, ordering, jitter.
//
// Implements the paper's §4.2 metrics verbatim:
//  - delivered: units that reached the destination at all (Figure 8);
//  - end-to-end delay: arrival - source emission (Figure 7);
//  - out of order: a unit overtaken by a later-seq unit by more than the
//    playout reorder tolerance — a slightly-late unit still inside the
//    playout buffer remains usable (Figure 10);
//  - jitter: how far past the deadline set by the previous unit's arrival
//    plus the required period a unit arrives (Figure 11);
//  - timely / "flawless": in order AND within a tolerance of that deadline
//    (Figure 9).
#pragma once

#include <cstdint>

#include "runtime/data_unit.hpp"
#include "sim/time.hpp"
#include "util/summary_stats.hpp"

namespace rasc::runtime {

struct SinkStats {
  std::int64_t delivered = 0;
  std::int64_t timely = 0;
  std::int64_t out_of_order = 0;
  util::SummaryStats delay_ms;
  util::SummaryStats jitter_ms;

  void merge(const SinkStats& other) {
    delivered += other.delivered;
    timely += other.timely;
    out_of_order += other.out_of_order;
    delay_ms.merge(other.delay_ms);
    jitter_ms.merge(other.jitter_ms);
  }
};

class StreamSink {
 public:
  /// `expected_rate_ups` is the substream's r_req (defines the period);
  /// `timely_tolerance_periods` is how many periods past the deadline a
  /// unit may arrive and still count as flawless;
  /// `reorder_tolerance_periods` is the playout-buffer depth: a unit
  /// overtaken by no more than this is still rendered in order.
  StreamSink(double expected_rate_ups, double timely_tolerance_periods = 1.0,
             double reorder_tolerance_periods = 1.0);

  void on_unit(const DataUnit& unit, sim::SimTime now);

  const SinkStats& stats() const { return stats_; }
  sim::SimDuration period() const { return period_; }

 private:
  sim::SimDuration period_;
  sim::SimDuration tolerance_;
  sim::SimDuration reorder_tolerance_;
  SinkStats stats_;
  sim::SimTime last_arrival_ = -1;
  std::int64_t max_seq_seen_ = -1;
  sim::SimTime max_seq_time_ = -1;
};

}  // namespace rasc::runtime
