// Destination-side accounting: delivery, timeliness, ordering, jitter.
//
// Implements the paper's §4.2 metrics verbatim:
//  - delivered: units that reached the destination at all (Figure 8);
//  - end-to-end delay: arrival - source emission (Figure 7);
//  - out of order: a unit overtaken by a later-seq unit by more than the
//    playout reorder tolerance — a slightly-late unit still inside the
//    playout buffer remains usable (Figure 10);
//  - jitter: how far past the deadline set by the previous unit's arrival
//    plus the required period a unit arrives (Figure 11);
//  - timely / "flawless": in order AND within a tolerance of that deadline
//    (Figure 9).
//
// The tallies live in obs metric cells. When the sink is attached to a
// MetricRegistry (the deployed case) the cells are registry-owned and
// appear in snapshots under sink.* with {node, app, substream} labels;
// a sink constructed without a registry (unit tests) owns private cells.
// Either way there is exactly one accumulation path, and stats()
// materializes the paper-facing SinkStats view from the cells.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/metric_registry.hpp"
#include "runtime/data_unit.hpp"
#include "sim/time.hpp"
#include "util/summary_stats.hpp"

namespace rasc::runtime {

struct SinkStats {
  std::int64_t delivered = 0;
  std::int64_t timely = 0;
  std::int64_t out_of_order = 0;
  util::SummaryStats delay_ms;
  util::SummaryStats jitter_ms;

  void merge(const SinkStats& other) {
    delivered += other.delivered;
    timely += other.timely;
    out_of_order += other.out_of_order;
    delay_ms.merge(other.delay_ms);
    jitter_ms.merge(other.jitter_ms);
  }
};

class StreamSink {
 public:
  /// `expected_rate_ups` is the substream's r_req (defines the period);
  /// `timely_tolerance_periods` is how many periods past the deadline a
  /// unit may arrive and still count as flawless;
  /// `reorder_tolerance_periods` is the playout-buffer depth: a unit
  /// overtaken by no more than this is still rendered in order.
  /// When `registry` is non-null the sink's cells are created there under
  /// `labels`; otherwise the sink owns private cells.
  StreamSink(double expected_rate_ups, double timely_tolerance_periods = 1.0,
             double reorder_tolerance_periods = 1.0,
             obs::MetricRegistry* registry = nullptr,
             obs::Labels labels = {});

  void on_unit(const DataUnit& unit, sim::SimTime now);

  /// Paper-facing view assembled from the metric cells.
  SinkStats stats() const;
  std::int64_t delivered() const { return delivered_->value(); }
  sim::SimDuration period() const { return period_; }

 private:
  /// Private cell storage for registry-less sinks (heap-allocated so the
  /// cell pointers survive moves).
  struct OwnedCells {
    obs::Counter delivered, timely, out_of_order;
    obs::Histogram delay_ms, jitter_ms;
  };

  sim::SimDuration period_;
  sim::SimDuration tolerance_;
  sim::SimDuration reorder_tolerance_;

  std::unique_ptr<OwnedCells> owned_;
  obs::Counter* delivered_;
  obs::Counter* timely_;
  obs::Counter* out_of_order_;
  obs::Histogram* delay_ms_;
  obs::Histogram* jitter_ms_;

  sim::SimTime last_arrival_ = -1;
  std::int64_t max_seq_seen_ = -1;
  sim::SimTime max_seq_time_ = -1;
};

}  // namespace rasc::runtime
