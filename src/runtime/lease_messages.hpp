// Capacity-lease protocol messages (sharded control plane).
//
// A coordinator shard does not compose against fresh per-request stats
// queries; it holds a *lease* on a slice of every node's bandwidth and
// composes against that bounded-staleness view (cf. DRS's explicit
// resource view, PAPERS.md). The node is authoritative: it grants each
// shard a revocable share of its headroomed availability, re-balances the
// shares as monitoring stats move, and lets every grant expire
// deterministically if the shard stops renewing.
//
//  - LeaseRequestMsg: shard home -> node. Asks for a (re)grant; a renewal
//    is the same message — the node replaces the shard's grant and bumps
//    the lease epoch.
//  - LeaseGrantMsg: node -> shard home. Carries the granted in/out kbps,
//    the lease epoch deploy messages must be stamped with, the expiry
//    deadline, and a piggybacked NodeStats snapshot (so the shard's
//    CPU/drop view refreshes with every renewal and no separate stats
//    round-trip is needed on the admission path).
//  - LeaseRevokeMsg: node -> shard home. The node expired (or revoked) a
//    grant; the shard must zero its view until the next renewal.
//
// Wire sizes model the serialized forms; the grant's embedded stats
// snapshot is the same payload a monitor.stats_reply carries.
#pragma once

#include <cstdint>

#include "monitor/node_stats.hpp"
#include "sim/message.hpp"

namespace rasc::runtime {

struct LeaseRequestMsg final : sim::Message {
  const char* kind() const override { return "runtime.lease_request"; }
  std::int32_t shard = -1;
  /// Shard home node the grant (and any revoke) must be sent to.
  sim::NodeIndex requester = sim::kInvalidNode;
  std::uint64_t request_id = 0;
  /// Admission demand the shard has seen over its last renewal window,
  /// in source kbps. The granter rebalances shares around it: 0 shrinks
  /// the shard toward the idle floor (pool/2K), a positive hint lets it
  /// claim freed surplus up to its active-fair share. Negative = no hint;
  /// the node falls back to the static equal split (pool/K).
  double demand_kbps = -1;
  /// Fencing term for shard re-homing: a standby that takes over a dead
  /// primary requests with a higher takeover epoch, after which the
  /// granter refuses (and revokes) any request carrying a lower one —
  /// the zombie primary can "recover" but can never renew its way back
  /// into the shard's capacity. 0 = the original primary term, so the
  /// wire format is unchanged for runs without standbys.
  std::uint64_t takeover_epoch = 0;
  static constexpr std::int64_t kBytes = 40;
};

struct LeaseGrantMsg final : sim::Message {
  const char* kind() const override { return "runtime.lease_grant"; }
  std::int32_t shard = -1;
  sim::NodeIndex node = sim::kInvalidNode;
  std::uint64_t request_id = 0;
  /// Monotone per node; deploy messages spending this grant carry it and
  /// the node NACKs any stamp that is not the *current* epoch.
  std::uint64_t lease_epoch = 0;
  double in_kbps = 0;
  double out_kbps = 0;
  sim::SimTime expires_at = 0;
  /// Snapshot taken when the grant was issued (CPU, drop ratio, ...).
  monitor::NodeStats stats;
  static constexpr std::int64_t kBytes = 128;
};

struct LeaseRevokeMsg final : sim::Message {
  const char* kind() const override { return "runtime.lease_revoke"; }
  std::int32_t shard = -1;
  sim::NodeIndex node = sim::kInvalidNode;
  std::uint64_t lease_epoch = 0;
  static constexpr std::int64_t kBytes = 24;
};

}  // namespace rasc::runtime
