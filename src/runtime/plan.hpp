// Execution plans: the output of composition, the input of deployment.
//
// An AppPlan is the paper's "execution graph": the mapping of a service
// request graph onto overlay nodes, possibly with *several* components per
// service (rate splitting), each with the rate share the composer assigned.
#pragma once

#include <string>
#include <vector>

#include "runtime/data_unit.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace rasc::runtime {

/// One component instance: which node hosts it and what fraction of the
/// substream's rate flows through it (units per second).
struct Placement {
  sim::NodeIndex node = sim::kInvalidNode;
  double rate_units_per_sec = 0;
};

/// All instances of one service layer of a substream.
struct StagePlan {
  std::string service;
  std::vector<Placement> placements;

  double total_rate() const {
    double r = 0;
    for (const auto& p : placements) r += p.rate_units_per_sec;
    return r;
  }
};

/// One substream: a linear chain of stages from source to destination.
struct SubstreamPlan {
  /// Delivery rate requirement at the destination, in units/second.
  double rate_units_per_sec = 0;
  /// Size of one data unit at the source.
  std::int64_t unit_bytes = 0;
  std::vector<StagePlan> stages;
};

/// The full execution graph of one application.
struct AppPlan {
  AppId app = 0;
  sim::NodeIndex source = sim::kInvalidNode;
  sim::NodeIndex destination = sim::kInvalidNode;
  std::vector<SubstreamPlan> substreams;

  /// Number of distinct components across all substreams and stages.
  std::size_t component_count() const {
    std::size_t n = 0;
    for (const auto& ss : substreams) {
      for (const auto& st : ss.stages) n += st.placements.size();
    }
    return n;
  }
};

}  // namespace rasc::runtime
