#include "runtime/sink.hpp"

#include <algorithm>
#include <cassert>

namespace rasc::runtime {

StreamSink::StreamSink(double expected_rate_ups,
                       double timely_tolerance_periods,
                       double reorder_tolerance_periods,
                       obs::MetricRegistry* registry, obs::Labels labels) {
  assert(expected_rate_ups > 0);
  period_ = sim::SimDuration(1e6 / expected_rate_ups);
  tolerance_ = sim::SimDuration(double(period_) * timely_tolerance_periods);
  reorder_tolerance_ =
      sim::SimDuration(double(period_) * reorder_tolerance_periods);
  if (registry) {
    delivered_ = &registry->counter("sink.delivered", labels);
    timely_ = &registry->counter("sink.timely", labels);
    out_of_order_ = &registry->counter("sink.out_of_order", labels);
    delay_ms_ = &registry->histogram("sink.delay_ms", labels);
    jitter_ms_ = &registry->histogram("sink.jitter_ms", labels);
  } else {
    owned_ = std::make_unique<OwnedCells>();
    delivered_ = &owned_->delivered;
    timely_ = &owned_->timely;
    out_of_order_ = &owned_->out_of_order;
    delay_ms_ = &owned_->delay_ms;
    jitter_ms_ = &owned_->jitter_ms;
  }
}

void StreamSink::on_unit(const DataUnit& unit, sim::SimTime now) {
  delivered_->add();
  delay_ms_->observe(sim::to_ms(now - unit.created_at));

  // A unit counts as out of order only when it arrives more than the
  // playout tolerance after being overtaken (approximated by the time the
  // current max seq arrived).
  bool in_order = unit.seq > max_seq_seen_;
  if (!in_order && now - max_seq_time_ > reorder_tolerance_) {
    out_of_order_->add();
  } else if (!in_order) {
    in_order = true;  // inside the playout buffer: still usable
  }
  if (unit.seq > max_seq_seen_) {
    max_seq_seen_ = unit.seq;
    max_seq_time_ = now;
  }

  // Jitter relative to the deadline implied by the previous delivery and
  // the required period (paper §4.2, "Average Jitter"). The first unit
  // has no predecessor and defines the baseline.
  sim::SimDuration lateness = 0;
  if (last_arrival_ >= 0) {
    lateness = std::max<sim::SimDuration>(0, now - (last_arrival_ + period_));
  }
  jitter_ms_->observe(sim::to_ms(lateness));
  if (in_order && lateness <= tolerance_) timely_->add();
  last_arrival_ = now;
}

SinkStats StreamSink::stats() const {
  SinkStats s;
  s.delivered = delivered_->value();
  s.timely = timely_->value();
  s.out_of_order = out_of_order_->value();
  s.delay_ms = delay_ms_->summary();
  s.jitter_ms = jitter_ms_->summary();
  return s;
}

}  // namespace rasc::runtime
