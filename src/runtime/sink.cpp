#include "runtime/sink.hpp"

#include <algorithm>
#include <cassert>

namespace rasc::runtime {

StreamSink::StreamSink(double expected_rate_ups,
                       double timely_tolerance_periods,
                       double reorder_tolerance_periods) {
  assert(expected_rate_ups > 0);
  period_ = sim::SimDuration(1e6 / expected_rate_ups);
  tolerance_ = sim::SimDuration(double(period_) * timely_tolerance_periods);
  reorder_tolerance_ =
      sim::SimDuration(double(period_) * reorder_tolerance_periods);
}

void StreamSink::on_unit(const DataUnit& unit, sim::SimTime now) {
  ++stats_.delivered;
  stats_.delay_ms.add(sim::to_ms(now - unit.created_at));

  // A unit counts as out of order only when it arrives more than the
  // playout tolerance after being overtaken (approximated by the time the
  // current max seq arrived).
  bool in_order = unit.seq > max_seq_seen_;
  if (!in_order && now - max_seq_time_ > reorder_tolerance_) {
    ++stats_.out_of_order;
  } else if (!in_order) {
    in_order = true;  // inside the playout buffer: still usable
  }
  if (unit.seq > max_seq_seen_) {
    max_seq_seen_ = unit.seq;
    max_seq_time_ = now;
  }

  // Jitter relative to the deadline implied by the previous delivery and
  // the required period (paper §4.2, "Average Jitter"). The first unit
  // has no predecessor and defines the baseline.
  sim::SimDuration lateness = 0;
  if (last_arrival_ >= 0) {
    lateness = std::max<sim::SimDuration>(0, now - (last_arrival_ + period_));
  }
  stats_.jitter_ms.add(sim::to_ms(lateness));
  if (in_order && lateness <= tolerance_) ++stats_.timely;
  last_arrival_ = now;
}

}  // namespace rasc::runtime
