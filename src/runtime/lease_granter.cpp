#include "runtime/lease_granter.hpp"

#include <algorithm>

#include "runtime/lease_messages.hpp"
#include "util/logging.hpp"

namespace rasc::runtime {

namespace {
/// Slack for float-order differences between the coordinator's view-side
/// accounting and the node's per-message debit sequence: sums over the
/// same plan may differ in the last bits depending on arrival order.
constexpr double kDebitSlackKbps = 1e-6;
/// Grant this multiple of the reported demand so wire overhead and
/// placement granularity fit inside the share.
constexpr double kDemandMargin = 2.0;
}  // namespace

LeaseGranter::LeaseGranter(sim::Simulator& simulator, sim::Network& network,
                           sim::NodeIndex node,
                           const monitor::NodeMonitor& monitor,
                           Params params, obs::MetricRegistry* registry)
    : simulator_(simulator),
      network_(network),
      node_(node),
      monitor_(monitor),
      params_(params),
      owned_registry_(registry ? nullptr
                               : std::make_unique<obs::MetricRegistry>()) {
  obs::MetricRegistry* r = registry ? registry : owned_registry_.get();
  registry_ = r;
  obs::Labels labels;
  labels.node = node_;
  granted_ = &r->counter("lease.granted", labels);
  expired_count_ = &r->counter("lease.expired", labels);
  debits_ = &r->counter("lease.debits", labels);
  nacks_ = &r->counter("lease.nacks", labels);
  nacks_epoch_ = &r->counter("lease.nacks_epoch", labels);
  nacks_overdraw_ = &r->counter("lease.nacks_overdraw", labels);
  overgrant_gauge_ = &r->gauge("lease.overgrant_kbps", labels);
}

LeaseGranter::~LeaseGranter() {
  for (auto& [shard, g] : grants_) {
    (void)shard;
    if (g.expiry != 0) simulator_.cancel(g.expiry);
  }
}

void LeaseGranter::pool_kbps(double& in_kbps, double& out_kbps) const {
  // Headroom applies to the (static) capacity; usage and reservations are
  // subtracted at full weight. This makes the no-double-booking invariant
  // exact: share + promised_others + reserved <= headroom * capacity at
  // every grant, and debits/releases only move quantity between the
  // "promised" and "reserved" sides of that sum.
  const monitor::NodeStats s = monitor_.snapshot();
  const double used_in =
      std::max(s.used_in_kbps, monitor_.reserved_in_kbps());
  const double used_out =
      std::max(s.used_out_kbps, monitor_.reserved_out_kbps());
  in_kbps =
      std::max(0.0, params_.headroom * s.capacity_in_kbps - used_in);
  out_kbps =
      std::max(0.0, params_.headroom * s.capacity_out_kbps - used_out);
}

bool LeaseGranter::handle_packet(const sim::Packet& packet) {
  const auto* req =
      dynamic_cast<const LeaseRequestMsg*>(packet.payload.get());
  if (req == nullptr) return false;
  grant(req->shard, req->requester, req->request_id, req->demand_kbps,
        req->takeover_epoch);
  return true;
}

double LeaseGranter::target_share(std::int32_t shard, double pool,
                                  double demand) const {
  const int shards = std::max(1, params_.shards);
  // Legacy path (no hint): static equal split.
  if (demand < 0) return pool / double(shards);
  // Idle shards shrink to a floor instead of zero so a burst after a
  // quiet window still finds capacity without waiting a renewal period.
  const double floor = pool / double(2 * shards);
  if (demand == 0) return floor;
  // Active-fair share: the pool divided among the shards that reported
  // demand recently (unknown hints count as active). A lone busy shard
  // can claim almost the whole pool; under full contention this reduces
  // to the static pool/K split.
  int active = 0;
  for (const auto& [s, h] : hints_) {
    if (s == shard) continue;
    if (h != 0) ++active;
  }
  const double fair = pool / double(std::clamp(active + 1, 1, shards));
  // A busy shard never drops below the static equal split (the reported
  // aggregate rate under-states per-node placement concentration, so the
  // hint must only ever *add* capacity); the margin leaves room for wire
  // overhead on top of the reported source rate when claiming surplus.
  return std::clamp(kDemandMargin * demand, pool / double(shards), fair);
}

void LeaseGranter::grant(std::int32_t shard, sim::NodeIndex requester,
                         std::uint64_t request_id, double demand_kbps,
                         std::uint64_t takeover_epoch) {
  // Fencing (shard re-homing): once a standby has requested under a
  // higher takeover epoch, requests from the replaced holder are refused
  // outright and answered with a revoke of the *current* term, so a
  // zombie primary zeroes its view instead of composing against capacity
  // it no longer owns.
  const auto fit = grants_.find(shard);
  if (fit != grants_.end() && takeover_epoch < fit->second.fence) {
    count_fenced();
    RASC_LOG(kDebug) << "node " << node_ << ": fenced lease request for "
                     << "shard " << shard << " from " << requester
                     << " (takeover epoch " << takeover_epoch << " < "
                     << fit->second.fence << ")";
    auto revoke = std::make_shared<LeaseRevokeMsg>();
    revoke->shard = shard;
    revoke->node = node_;
    revoke->lease_epoch = fit->second.epoch;
    network_.send(node_, requester, LeaseRevokeMsg::kBytes,
                  std::move(revoke));
    return;
  }

  double pool_in = 0, pool_out = 0;
  pool_kbps(pool_in, pool_out);

  // Free pool: whatever is not already promised to *other* shards. The
  // requesting shard's old grant is replaced, so it does not count.
  double promised_in = 0, promised_out = 0;
  for (const auto& [s, g] : grants_) {
    if (s == shard || g.expired) continue;
    promised_in += g.in_kbps;
    promised_out += g.out_kbps;
  }
  // Demand-aware rebalanced share, capped by what is actually free — the
  // cap is what keeps the sum of live grants inside the pool whatever the
  // hints claim (stale holders shrink at their own next renewal).
  hints_[shard] = demand_kbps;
  const double share_in =
      std::min(target_share(shard, pool_in, demand_kbps),
               std::max(0.0, pool_in - promised_in));
  const double share_out =
      std::min(target_share(shard, pool_out, demand_kbps),
               std::max(0.0, pool_out - promised_out));

  Grant& g = grants_[shard];
  if (g.expiry != 0) simulator_.cancel(g.expiry);
  // Deploys composed against the term being replaced may still be in
  // flight; they spend the *new* remainder (see debit), so honoring the
  // previous epoch of a live grant cannot over-book anything.
  g.prev_epoch = g.expired ? 0 : g.epoch;
  const bool fence_bumped = takeover_epoch > g.fence;
  if (fence_bumped) {
    // A takeover replaces the holder wholesale: the fenced-out
    // coordinator's in-flight deploys must NACK, so the previous term
    // loses its usual honor window.
    g.fence = takeover_epoch;
    g.prev_epoch = 0;
  }
  g.in_kbps = share_in;
  g.out_kbps = share_out;
  g.epoch = ++epoch_counter_;
  if (fence_bumped) g.fence_floor_epoch = g.epoch;
  g.expires_at = simulator_.now() + params_.lease_duration;
  g.holder = requester;
  g.expired = false;
  const std::uint64_t epoch = g.epoch;
  g.expiry = simulator_.call_after(params_.lease_duration,
                                   [this, shard, epoch] {
                                     expire(shard, epoch);
                                   });
  granted_->add();

  // No-double-booking invariant: what the leases already turned into
  // reservations plus every live grant's unspent remainder never exceeds
  // the headroomed capacity — i.e. even if every shard spent its whole
  // grant, the node would not be over-reserved. Tracked as a high-water
  // gauge so the bench and the contention tests can assert zero
  // double-reserved bandwidth. (Static capacity baseline: unlike the free
  // pool, it does not fluctuate with traffic, so a violation here is
  // always a genuine over-promise.)
  double total_in = lease_reserved_in_, total_out = lease_reserved_out_;
  for (const auto& [s, live] : grants_) {
    (void)s;
    if (live.expired) continue;
    total_in += live.in_kbps;
    total_out += live.out_kbps;
  }
  const monitor::NodeStats caps = monitor_.snapshot();
  const double over =
      std::max(total_in - params_.headroom * caps.capacity_in_kbps,
               total_out - params_.headroom * caps.capacity_out_kbps);
  if (over > overgrant_high_water_ + kDebitSlackKbps) {
    overgrant_high_water_ = over;
    overgrant_gauge_->set(overgrant_high_water_);
  }

  auto reply = std::make_shared<LeaseGrantMsg>();
  reply->shard = shard;
  reply->node = node_;
  reply->request_id = request_id;
  reply->lease_epoch = g.epoch;
  reply->in_kbps = g.in_kbps;
  reply->out_kbps = g.out_kbps;
  reply->expires_at = g.expires_at;
  reply->stats = monitor_.snapshot();
  network_.send(node_, requester, LeaseGrantMsg::kBytes, std::move(reply));
}

void LeaseGranter::expire(std::int32_t shard, std::uint64_t epoch) {
  const auto it = grants_.find(shard);
  if (it == grants_.end() || it->second.epoch != epoch) return;
  Grant& g = it->second;
  g.expired = true;
  g.in_kbps = 0;
  g.out_kbps = 0;
  g.expiry = 0;
  // A shard that stopped renewing is gone (crashed or re-homed): its
  // demand no longer counts against the active-fair split.
  hints_.erase(shard);
  expired_count_->add();
  RASC_LOG(kDebug) << "node " << node_ << ": lease of shard " << shard
                   << " (epoch " << epoch << ") expired";
  auto revoke = std::make_shared<LeaseRevokeMsg>();
  revoke->shard = shard;
  revoke->node = node_;
  revoke->lease_epoch = epoch;
  network_.send(node_, g.holder, LeaseRevokeMsg::kBytes, std::move(revoke));
}

void LeaseGranter::pool_remaining_kbps(double& in_kbps,
                                       double& out_kbps) const {
  pool_kbps(in_kbps, out_kbps);
  for (const auto& [s, g] : grants_) {
    (void)s;
    if (g.expired) continue;
    in_kbps -= g.in_kbps;
    out_kbps -= g.out_kbps;
  }
  in_kbps = std::max(0.0, in_kbps);
  out_kbps = std::max(0.0, out_kbps);
}

bool LeaseGranter::debit(std::int32_t shard, std::uint64_t lease_epoch,
                         AppId app, double in_kbps, double out_kbps) {
  if (shard == kPoolShard) {
    // Leaseless pool debit: checked against the live pool at arrival
    // order. No ledger entry — the reservation the runtime registers
    // right after this debit *is* the durable accounting, so release
    // flows back through the monitor at teardown.
    (void)lease_epoch;
    double pool_in = 0, pool_out = 0;
    pool_remaining_kbps(pool_in, pool_out);
    if (in_kbps > pool_in + kDebitSlackKbps ||
        out_kbps > pool_out + kDebitSlackKbps) {
      nacks_->add();
      nacks_overdraw_->add();
      return false;
    }
    debits_->add();
    return true;
  }
  const auto it = grants_.find(shard);
  const bool current_term =
      it != grants_.end() && !it->second.expired &&
      (it->second.epoch == lease_epoch ||
       (it->second.prev_epoch != 0 && it->second.prev_epoch == lease_epoch));
  if (!current_term) {
    nacks_->add();
    nacks_epoch_->add();
    // Debits stamped with a lease epoch older than the current fence
    // term were composed by a fenced-out coordinator — count them so
    // takeover tests can assert the zombie's deploy plane went dark.
    if (it != grants_.end() && it->second.fence > 0 &&
        lease_epoch < it->second.fence_floor_epoch) {
      count_fenced();
    }
    return false;
  }
  if (in_kbps > it->second.in_kbps + kDebitSlackKbps ||
      out_kbps > it->second.out_kbps + kDebitSlackKbps) {
    nacks_->add();
    nacks_overdraw_->add();
    return false;
  }
  Grant& g = it->second;
  g.in_kbps = std::max(0.0, g.in_kbps - in_kbps);
  g.out_kbps = std::max(0.0, g.out_kbps - out_kbps);
  lease_reserved_in_ += in_kbps;
  lease_reserved_out_ += out_kbps;
  AppDebit& d = ledger_[app];
  d.shard = shard;
  d.epoch = lease_epoch;
  d.in_kbps += in_kbps;
  d.out_kbps += out_kbps;
  debits_->add();
  return true;
}

void LeaseGranter::release_app(AppId app) {
  const auto it = ledger_.find(app);
  if (it == ledger_.end()) return;
  const AppDebit d = it->second;
  ledger_.erase(it);
  // The runtime is releasing the app's reservations right now, whatever
  // lease term they were debited under.
  lease_reserved_in_ = std::max(0.0, lease_reserved_in_ - d.in_kbps);
  lease_reserved_out_ = std::max(0.0, lease_reserved_out_ - d.out_kbps);
  const auto g = grants_.find(d.shard);
  // Live terms only (current or the one it replaced): funds from an
  // expired or older term come back through the monitor instead (the
  // teardown just released the reservations, so the next renewal's pool
  // grows by exactly this amount).
  if (g == grants_.end() || g->second.expired ||
      (g->second.epoch != d.epoch && g->second.prev_epoch != d.epoch)) {
    return;
  }
  g->second.in_kbps += d.in_kbps;
  g->second.out_kbps += d.out_kbps;
}

double LeaseGranter::remaining_in_kbps(std::int32_t shard) const {
  const auto it = grants_.find(shard);
  return it == grants_.end() ? 0 : it->second.in_kbps;
}

double LeaseGranter::remaining_out_kbps(std::int32_t shard) const {
  const auto it = grants_.find(shard);
  return it == grants_.end() ? 0 : it->second.out_kbps;
}

std::uint64_t LeaseGranter::epoch(std::int32_t shard) const {
  const auto it = grants_.find(shard);
  return it == grants_.end() ? 0 : it->second.epoch;
}

bool LeaseGranter::holder_suspect(std::int32_t shard) const {
  const auto it = grants_.find(shard);
  return it != grants_.end() && it->second.expired;
}

sim::NodeIndex LeaseGranter::holder_of(std::int32_t shard) const {
  const auto it = grants_.find(shard);
  if (it == grants_.end() || it->second.expired) return sim::kInvalidNode;
  return it->second.holder;
}

void LeaseGranter::count_fenced() {
  if (fenced_ == nullptr) {
    obs::Labels labels;
    labels.node = node_;
    fenced_ = &registry_->counter("shard.fenced_msgs", labels);
  }
  fenced_->add();
}

std::vector<std::tuple<AppId, double, double>> LeaseGranter::ledger_for_shard(
    std::int32_t shard) const {
  std::vector<std::tuple<AppId, double, double>> out;
  for (const auto& [app, d] : ledger_) {
    if (d.shard == shard) out.emplace_back(app, d.in_kbps, d.out_kbps);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace rasc::runtime
