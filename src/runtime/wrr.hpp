// Smooth weighted round-robin selection.
//
// When a service is split across components (the paper's distinguishing
// feature), each upstream emitter partitions its output stream over the
// downstream instances proportionally to their allocated rates. Smooth WRR
// (the nginx algorithm) achieves exact long-run proportions with maximally
// interleaved picks — important because bursty partitioning would inflate
// jitter at the merge point.
#pragma once

#include <cstddef>
#include <vector>

namespace rasc::runtime {

class WeightedRoundRobin {
 public:
  /// Weights must be positive; zero-weight entries are never picked.
  explicit WeightedRoundRobin(std::vector<double> weights);

  /// Index of the next pick. Requires at least one positive weight.
  std::size_t next();

  std::size_t size() const { return weights_.size(); }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  std::vector<double> current_;
  double total_ = 0;
};

}  // namespace rasc::runtime
