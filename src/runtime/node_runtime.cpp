#include "runtime/node_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "runtime/lease_granter.hpp"
#include "runtime/rehome_messages.hpp"
#include "util/logging.hpp"

namespace rasc::runtime {

NodeRuntime::NodeRuntime(sim::Simulator& simulator, sim::Network& network,
                         sim::NodeIndex node,
                         monitor::NodeMonitor& node_monitor,
                         const ServiceCatalog& catalog)
    : NodeRuntime(simulator, network, node, node_monitor, catalog,
                  Params()) {}

NodeRuntime::NodeRuntime(sim::Simulator& simulator, sim::Network& network,
                         sim::NodeIndex node,
                         monitor::NodeMonitor& node_monitor,
                         const ServiceCatalog& catalog, Params params,
                         obs::MetricRegistry* registry,
                         obs::UnitTrace* trace)
    : simulator_(simulator),
      network_(network),
      node_(node),
      monitor_(node_monitor),
      catalog_(catalog),
      params_(params),
      scheduler_(params.policy, params.max_ready_queue),
      exec_rng_(simulator.rng().split(0x65786563u ^ std::uint64_t(node))),
      owned_registry_(registry ? nullptr
                               : std::make_unique<obs::MetricRegistry>()),
      registry_(registry ? registry : owned_registry_.get()),
      trace_(trace) {
  obs::Labels labels;
  labels.node = node_;
  units_received_ = &registry_->counter("runtime.units_received", labels);
  dropped_queue_full_ =
      &registry_->counter("runtime.drops_queue_full", labels);
  dropped_deadline_ = &registry_->counter("runtime.drops_deadline", labels);
  units_processed_ = &registry_->counter("runtime.units_processed", labels);
  units_unroutable_ =
      &registry_->counter("runtime.units_unroutable", labels);
  if (params_.orphan_lease > 0) schedule_reap();
}

NodeRuntime::~NodeRuntime() {
  if (reap_event_ != 0) simulator_.cancel(reap_event_);
}

obs::Counter& NodeRuntime::lazy_counter(const char* name,
                                        obs::Counter*& slot) {
  if (slot == nullptr) {
    obs::Labels labels;
    labels.node = node_;
    slot = &registry_->counter(name, labels);
  }
  return *slot;
}

double NodeRuntime::reservation_kbps(double rate_ups,
                                     std::int64_t unit_bytes) const {
  const double wire_bytes =
      double(unit_bytes + sim::Network::kFrameOverheadBytes);
  return rate_ups * wire_bytes * 8.0 / 1000.0;
}

obs::Labels NodeRuntime::endpoint_labels(AppId app, std::int32_t substream,
                                         std::uint32_t incarnation) const {
  obs::Labels labels;
  labels.node = node_;
  labels.app = app;
  labels.component = "ss";
  labels.component += std::to_string(substream);
  if (incarnation > 0) {
    labels.component += '#';
    labels.component += std::to_string(incarnation);
  }
  return labels;
}

std::vector<std::uint64_t> NodeRuntime::sorted_endpoint_keys() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(endpoints_.size());
  for (const auto& [key, endpoint] : endpoints_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool NodeRuntime::handle_packet(const sim::Packet& packet) {
  const auto& payload = packet.payload;
  if (auto unit = std::dynamic_pointer_cast<const DataUnit>(payload)) {
    on_data_unit(unit);
    return true;
  }
  if (const auto* dc =
          dynamic_cast<const DeployComponentMsg*>(payload.get())) {
    if (!admit_deploy(dc->key.app, dc->epoch, dc->requester,
                      dc->request_id)) {
      return true;
    }
    bool ok = true;
    try {
      // Lease-stamped deploys spend the sending shard's grant first; the
      // debit amounts mirror exactly what deploy_component will reserve.
      if (dc->shard >= 0 && granter_ != nullptr) {
        const ServiceSpec& spec = catalog_.get(dc->service);
        const std::int64_t out_unit_bytes = std::int64_t(
            double(dc->in_unit_bytes) * spec.output_size_factor + 0.5);
        const double in_kbps =
            reservation_kbps(dc->rate_units_per_sec, dc->in_unit_bytes);
        const double out_kbps = reservation_kbps(
            dc->rate_units_per_sec * spec.rate_ratio, out_unit_bytes);
        ok = granter_->debit(dc->shard, dc->lease_epoch, dc->key.app,
                             in_kbps, out_kbps);
      }
      if (ok) {
        deploy_component(dc->key, dc->service, dc->rate_units_per_sec,
                         dc->in_unit_bytes, dc->next);
      }
    } catch (const std::exception& e) {
      RASC_LOG(kWarn) << "node " << node_
                      << ": component deploy failed: " << e.what();
      ok = false;
    }
    seen_requests_[{dc->requester, dc->request_id}] = ok;
    send_ack(dc->requester, dc->request_id, ok);
    return true;
  }
  if (const auto* ds = dynamic_cast<const DeploySinkMsg*>(payload.get())) {
    if (!admit_deploy(ds->app, ds->epoch, ds->requester, ds->request_id)) {
      return true;
    }
    bool ok = true;
    if (ds->shard >= 0 && granter_ != nullptr) {
      const double in_kbps =
          reservation_kbps(ds->rate_units_per_sec, ds->unit_bytes);
      ok = granter_->debit(ds->shard, ds->lease_epoch, ds->app, in_kbps,
                           0.0);
    }
    if (ok) {
      deploy_sink(ds->app, ds->substream, ds->rate_units_per_sec,
                  ds->unit_bytes);
    }
    seen_requests_[{ds->requester, ds->request_id}] = ok;
    send_ack(ds->requester, ds->request_id, ok);
    return true;
  }
  if (const auto* src =
          dynamic_cast<const DeploySourceMsg*>(payload.get())) {
    if (!admit_deploy(src->app, src->epoch, src->requester,
                      src->request_id)) {
      return true;
    }
    deploy_source(src->app, src->substream, src->rate_units_per_sec,
                  src->unit_bytes, src->first_stage, src->start_at,
                  src->stop_at);
    seen_requests_[{src->requester, src->request_id}] = true;
    send_ack(src->requester, src->request_id, true);
    return true;
  }
  if (const auto* uc =
          dynamic_cast<const UpdateComponentMsg*>(payload.get())) {
    update_component(uc->key, uc->rate_units_per_sec, uc->in_unit_bytes,
                     uc->next);
    return true;
  }
  if (const auto* ap = dynamic_cast<const AddPlacementMsg*>(payload.get())) {
    // Fire-and-forget variant of DeployComponentMsg: a failed add leaves
    // the app on its previous split, which the next round repairs.
    try {
      deploy_component(ap->key, ap->service, ap->rate_units_per_sec,
                       ap->in_unit_bytes, ap->next);
    } catch (const std::exception& e) {
      RASC_LOG(kWarn) << "node " << node_
                      << ": add-placement failed: " << e.what();
    }
    return true;
  }
  if (const auto* rp =
          dynamic_cast<const RemovePlacementMsg*>(payload.get())) {
    remove_component(rp->key);
    return true;
  }
  if (const auto* us =
          dynamic_cast<const UpdateSourceSplitMsg*>(payload.get())) {
    update_source_split(us->app, us->substream, us->rate_units_per_sec,
                        us->first_stage);
    return true;
  }
  if (const auto* td = dynamic_cast<const TeardownAppMsg*>(payload.get())) {
    if (td->epoch > 0) {
      AppControl& ctl = app_control_[td->app];
      if (td->epoch < ctl.epoch) {
        // A reordered rollback of an older attempt must not kill the
        // newer one.
        lazy_counter("deploy.stale_epoch", stale_epoch_).add();
        return true;
      }
      ctl.epoch = td->epoch;
      ctl.retired = true;
    }
    teardown_app(td->app);
    return true;
  }
  if (const auto* rr =
          dynamic_cast<const ShardRecoverRequestMsg*>(payload.get())) {
    handle_recover_request(*rr);
    return true;
  }
  if (const auto* hq =
          dynamic_cast<const SinkHealthRequest*>(payload.get())) {
    if (params_.orphan_lease > 0) {
      // A live supervisor is watching this app: its probes renew the
      // lease, so only truly unsupervised partial deploys get reaped.
      if (const auto ctl = app_control_.find(hq->app);
          ctl != app_control_.end()) {
        ctl->second.lease_renewed = simulator_.now();
      }
    }
    auto reply = std::make_shared<SinkHealthReply>();
    reply->app = hq->app;
    reply->request_id = hq->request_id;
    std::int64_t delivered = -1;
    for (const std::uint64_t key : sorted_endpoint_keys()) {
      if (AppId(key >> 32) != hq->app) continue;
      const auto& endpoint = endpoints_.at(key);
      if (!endpoint.sink.has_value()) continue;
      if (delivered < 0) delivered = 0;
      delivered += endpoint.sink->delivered();
    }
    reply->delivered = delivered;
    network_.send(node_, hq->requester, SinkHealthReply::kBytes,
                  std::move(reply));
    return true;
  }
  return false;
}

void NodeRuntime::send_ack(sim::NodeIndex to, std::uint64_t request_id,
                           bool ok) {
  auto ack = std::make_shared<DeployAck>();
  ack->request_id = request_id;
  ack->ok = ok;
  network_.send(node_, to, DeployAck::kBytes, std::move(ack));
}

bool NodeRuntime::admit_deploy(AppId app, std::uint64_t epoch,
                               sim::NodeIndex requester,
                               std::uint64_t request_id) {
  const auto seen = seen_requests_.find({requester, request_id});
  if (seen != seen_requests_.end()) {
    // Retransmission or wire duplicate of a request already applied:
    // re-ack the recorded verdict, never re-instantiate.
    lazy_counter("deploy.dup_acks", dup_acks_).add();
    send_ack(requester, request_id, seen->second);
    return false;
  }
  AppControl& ctl = app_control_[app];
  if (epoch > 0 &&
      (epoch < ctl.epoch || (epoch == ctl.epoch && ctl.retired))) {
    // Late arrival from an attempt that was already rolled back (or
    // superseded): applying it would recreate exactly the orphan the
    // rollback just released. No ack — the sender has moved on.
    lazy_counter("deploy.stale_epoch", stale_epoch_).add();
    return false;
  }
  if (epoch > ctl.epoch) {
    // A newer attempt supersedes whatever this node still holds of an
    // older one. Normally nothing is here (rollback teardown landed
    // first), but a repair-redeploy racing its own rollback must not
    // leak the old attempt's components and reservations.
    if (app_has_state(app)) teardown_app(app);
    ctl.epoch = epoch;
    ctl.retired = false;
  }
  ctl.lease_renewed = simulator_.now();
  return true;
}

bool NodeRuntime::app_has_state(AppId app) const {
  for (const auto& [key, component] : components_) {
    (void)component;
    if (key.app == app) return true;
  }
  for (const auto& [key, endpoint] : endpoints_) {
    (void)endpoint;
    if (AppId(key >> 32) == app) return true;
  }
  return false;
}

void NodeRuntime::schedule_reap() {
  // Half-lease cadence bounds how long past its lease an orphan can
  // survive to 1.5 leases. Pinned to this node's LP: reaping reads and
  // mutates only this runtime's component tables.
  reap_event_ = simulator_.call_after_on(std::size_t(node_),
                                         params_.orphan_lease / 2,
                                         [this] { reap_orphans(); });
}

void NodeRuntime::reap_orphans() {
  // Apps with local state, ascending — deterministic reap order.
  std::set<AppId> apps;
  for (const auto& [key, component] : components_) {
    (void)component;
    apps.insert(key.app);
  }
  for (const auto& [key, endpoint] : endpoints_) {
    (void)endpoint;
    apps.insert(AppId(key >> 32));
  }
  const sim::SimTime now = simulator_.now();
  for (const AppId app : apps) {
    const auto it = app_control_.find(app);
    // Deployed through the local API (tests, oracle experiments): not
    // this protocol's to reap.
    if (it == app_control_.end()) continue;
    AppControl& ctl = it->second;
    // Streaming (or having streamed) means deployment completed; a live
    // local source means this node *is* the stream's origin.
    if (ctl.streamed) continue;
    bool has_source = false;
    for (const auto& [key, endpoint] : endpoints_) {
      if (AppId(key >> 32) == app && endpoint.source != nullptr) {
        has_source = true;
        break;
      }
    }
    if (has_source) continue;
    if (now - ctl.lease_renewed < params_.orphan_lease) continue;
    RASC_LOG(kInfo) << "node " << node_ << ": reaping orphaned app " << app
                    << " (lease lapsed, never streamed)";
    lazy_counter("orphan.reaped", orphans_reaped_).add();
    ctl.retired = true;
    teardown_app(app);
  }
  schedule_reap();
}

double NodeRuntime::reserved_kbps_for_app(AppId app) const {
  // Deterministic summation order (floating point): components by
  // (substream, stage), then endpoints by ascending key.
  std::vector<std::pair<std::pair<std::int32_t, std::int32_t>, double>>
      parts;
  for (const auto& [key, res] : component_reservations_) {
    if (key.app != app) continue;
    parts.push_back({{key.substream, key.stage}, res.first + res.second});
  }
  std::sort(parts.begin(), parts.end());
  double total = 0;
  for (const auto& [pos, kbps] : parts) {
    (void)pos;
    total += kbps;
  }
  for (const std::uint64_t key : sorted_endpoint_keys()) {
    if (AppId(key >> 32) != app) continue;
    const Endpoint& endpoint = endpoints_.at(key);
    total += endpoint.sink_reserved_kbps + endpoint.source_reserved_kbps;
  }
  return total;
}

void NodeRuntime::deploy_component(const ComponentKey& key,
                                   const std::string& service,
                                   double rate_units_per_sec,
                                   std::int64_t in_unit_bytes,
                                   std::vector<Placement> next) {
  const ServiceSpec& spec = catalog_.get(service);
  const std::int64_t out_unit_bytes = std::int64_t(
      double(in_unit_bytes) * spec.output_size_factor + 0.5);
  const double in_kbps = reservation_kbps(rate_units_per_sec, in_unit_bytes);
  const double out_kbps = reservation_kbps(
      rate_units_per_sec * spec.rate_ratio, out_unit_bytes);

  // CPU fraction: rate x mean service time (the requirement vector's
  // second coordinate in the paper's model).
  const double cpu_fraction =
      rate_units_per_sec * sim::to_seconds(spec.cpu_time_per_unit);

  auto component = std::make_unique<Component>(key, spec, rate_units_per_sec,
                                               std::move(next));
  components_[key] = std::move(component);
  component_reservations_[key] = {in_kbps, out_kbps};
  component_cpu_reservations_[key] = cpu_fraction;
  monitor_.add_reservation(in_kbps, out_kbps);
  monitor_.add_cpu_reservation(cpu_fraction);
}

void NodeRuntime::deploy_sink(AppId app, std::int32_t substream,
                              double rate_units_per_sec,
                              std::int64_t unit_bytes) {
  const std::uint64_t key = endpoint_key(app, substream);
  const std::uint32_t incarnation = sink_incarnations_[key]++;
  Endpoint& endpoint = endpoints_[key];
  endpoint.sink.emplace(rate_units_per_sec,
                        params_.timely_tolerance_periods,
                        /*reorder_tolerance_periods=*/1.0, registry_,
                        endpoint_labels(app, substream, incarnation));
  const double in_kbps = reservation_kbps(rate_units_per_sec, unit_bytes);
  endpoint.sink_reserved_kbps = in_kbps;
  endpoint.sink_rate_ups = rate_units_per_sec;
  endpoint.sink_unit_bytes = unit_bytes;
  monitor_.add_reservation(in_kbps, 0);
}

void NodeRuntime::deploy_source(AppId app, std::int32_t substream,
                                double rate_units_per_sec,
                                std::int64_t unit_bytes,
                                std::vector<Placement> first_stage,
                                sim::SimTime start_at, sim::SimTime stop_at) {
  const std::uint64_t key = endpoint_key(app, substream);
  const std::uint32_t incarnation = source_incarnations_[key]++;
  auto source = std::make_unique<StreamSource>(
      simulator_, network_, node_, app, substream, rate_units_per_sec,
      unit_bytes, std::move(first_stage), registry_,
      endpoint_labels(app, substream, incarnation), trace_);
  source->run(start_at, stop_at);
  const double out_kbps = reservation_kbps(rate_units_per_sec, unit_bytes);
  Endpoint& endpoint = endpoints_[key];
  endpoint.source = std::move(source);
  endpoint.source_reserved_kbps = out_kbps;
  endpoint.source_rate_ups = rate_units_per_sec;
  endpoint.source_stop_at = stop_at;
  monitor_.add_reservation(0, out_kbps);
}

void NodeRuntime::update_component(const ComponentKey& key,
                                   double rate_units_per_sec,
                                   std::int64_t in_unit_bytes,
                                   std::vector<Placement> next) {
  const auto it = components_.find(key);
  if (it == components_.end()) return;  // stale delta; next round repairs
  const ServiceSpec& spec = it->second->spec();
  const std::int64_t out_unit_bytes = std::int64_t(
      double(in_unit_bytes) * spec.output_size_factor + 0.5);
  const double in_kbps = reservation_kbps(rate_units_per_sec, in_unit_bytes);
  const double out_kbps = reservation_kbps(
      rate_units_per_sec * spec.rate_ratio, out_unit_bytes);
  const double cpu_fraction =
      rate_units_per_sec * sim::to_seconds(spec.cpu_time_per_unit);

  auto& reservation = component_reservations_[key];
  monitor_.add_reservation(in_kbps - reservation.first,
                           out_kbps - reservation.second);
  reservation = {in_kbps, out_kbps};
  double& cpu_reservation = component_cpu_reservations_[key];
  monitor_.add_cpu_reservation(cpu_fraction - cpu_reservation);
  cpu_reservation = cpu_fraction;

  it->second->reconfigure(rate_units_per_sec, std::move(next));
}

void NodeRuntime::remove_component(const ComponentKey& key) {
  const auto it = components_.find(key);
  if (it == components_.end()) return;
  const auto res = component_reservations_.find(key);
  if (res != component_reservations_.end()) {
    monitor_.add_reservation(-res->second.first, -res->second.second);
    component_reservations_.erase(res);
  }
  const auto cpu = component_cpu_reservations_.find(key);
  if (cpu != component_cpu_reservations_.end()) {
    monitor_.add_cpu_reservation(-cpu->second);
    component_cpu_reservations_.erase(cpu);
  }
  components_.erase(it);
  // Queued units of this instance point at the component just destroyed;
  // purge them before the scheduler can touch them (cf. teardown_app).
  const auto purged = scheduler_.purge_component(key);
  if (!purged.empty()) {
    for (const auto& p : purged) {
      units_unroutable_->add();
      monitor_.on_unit_dropped();
      RASC_TRACE(trace_, (obs::UnitId{p.unit->app, p.unit->substream,
                                      p.unit->seq}),
                 obs::Hop::kDropped, node_, simulator_.now(),
                 obs::DropReason::kUnroutable);
    }
    monitor_.on_queue_length(std::int64_t(scheduler_.size()));
  }
}

void NodeRuntime::update_source_split(AppId app, std::int32_t substream,
                                      double rate_units_per_sec,
                                      std::vector<Placement> first_stage) {
  const auto it = endpoints_.find(endpoint_key(app, substream));
  if (it == endpoints_.end() || !it->second.source) return;
  Endpoint& endpoint = it->second;
  const double out_kbps = reservation_kbps(rate_units_per_sec,
                                           endpoint.source->unit_bytes());
  monitor_.add_reservation(0, out_kbps - endpoint.source_reserved_kbps);
  endpoint.source_reserved_kbps = out_kbps;
  endpoint.source_rate_ups = rate_units_per_sec;
  endpoint.source->reconfigure(rate_units_per_sec, std::move(first_stage));
}

void NodeRuntime::teardown_app(AppId app) {
  // Return the app's lease debits to the granting shard's balance (no-op
  // when the grant's term already rolled over; see LeaseGranter).
  if (granter_ != nullptr) granter_->release_app(app);
  for (auto it = components_.begin(); it != components_.end();) {
    if (it->first.app == app) {
      const auto res = component_reservations_.find(it->first);
      if (res != component_reservations_.end()) {
        monitor_.add_reservation(-res->second.first, -res->second.second);
        component_reservations_.erase(res);
      }
      const auto cpu = component_cpu_reservations_.find(it->first);
      if (cpu != component_cpu_reservations_.end()) {
        monitor_.add_cpu_reservation(-cpu->second);
        component_cpu_reservations_.erase(cpu);
      }
      it = components_.erase(it);
    } else {
      ++it;
    }
  }
  // Queued units of the app point at the components just destroyed; take
  // them out before the scheduler can dispatch (or expire) them. They
  // count as unroutable: their processing chain no longer exists.
  const auto purged = scheduler_.purge_app(app);
  if (!purged.empty()) {
    for (const auto& p : purged) {
      units_unroutable_->add();
      monitor_.on_unit_dropped();
      RASC_TRACE(trace_, (obs::UnitId{p.unit->app, p.unit->substream,
                                      p.unit->seq}),
                 obs::Hop::kDropped, node_, simulator_.now(),
                 obs::DropReason::kUnroutable);
    }
    monitor_.on_queue_length(std::int64_t(scheduler_.size()));
  }
  // The app's endpoints occupy one contiguous key range; release in
  // ascending substream order for deterministic teardown.
  for (const std::uint64_t key : sorted_endpoint_keys()) {
    if (AppId(key >> 32) != app) continue;
    auto it = endpoints_.find(key);
    Endpoint& endpoint = it->second;
    if (endpoint.sink.has_value()) {
      monitor_.add_reservation(-endpoint.sink_reserved_kbps, 0);
    }
    if (endpoint.source) {
      endpoint.source->stop();
      monitor_.add_reservation(0, -endpoint.source_reserved_kbps);
    }
    endpoints_.erase(it);
  }
}

std::int64_t NodeRuntime::total_emitted() const {
  std::int64_t total = 0;
  for (const auto& [key, endpoint] : endpoints_) {
    if (endpoint.source) total += endpoint.source->emitted();
  }
  return total;
}

SinkStats NodeRuntime::aggregate_sink_stats() const {
  SinkStats total;
  for (const std::uint64_t key : sorted_endpoint_keys()) {
    const auto& endpoint = endpoints_.at(key);
    if (endpoint.sink.has_value()) total.merge(endpoint.sink->stats());
  }
  return total;
}

const Component* NodeRuntime::find_component(const ComponentKey& key) const {
  const auto it = components_.find(key);
  return it == components_.end() ? nullptr : it->second.get();
}

const StreamSink* NodeRuntime::find_sink(AppId app,
                                         std::int32_t substream) const {
  const auto it = endpoints_.find(endpoint_key(app, substream));
  if (it == endpoints_.end() || !it->second.sink.has_value()) return nullptr;
  return &*it->second.sink;
}

const StreamSource* NodeRuntime::find_source(AppId app,
                                             std::int32_t substream) const {
  const auto it = endpoints_.find(endpoint_key(app, substream));
  return it == endpoints_.end() ? nullptr : it->second.source.get();
}

void NodeRuntime::on_data_unit(
    const std::shared_ptr<const DataUnit>& unit) {
  units_received_->add();
  if (params_.orphan_lease > 0) {
    // Data flowing marks the app as streaming (never an orphan) and
    // renews its lease; gated so the default hot path pays one branch.
    AppControl& ctl = app_control_[unit->app];
    ctl.streamed = true;
    ctl.lease_renewed = simulator_.now();
  }
  const obs::UnitId unit_id{unit->app, unit->substream, unit->seq};

  // Destined for a sink hosted here?
  const auto endpoint_it =
      endpoints_.find(endpoint_key(unit->app, unit->substream));
  const StreamSink* sink =
      endpoint_it != endpoints_.end() && endpoint_it->second.sink.has_value()
          ? &*endpoint_it->second.sink
          : nullptr;
  const ComponentKey key{unit->app, unit->substream, unit->stage};
  const auto comp_it = components_.find(key);

  if (comp_it == components_.end()) {
    if (sink != nullptr) {
      endpoint_it->second.sink->on_unit(*unit, simulator_.now());
      RASC_TRACE(trace_, unit_id, obs::Hop::kDelivered, node_,
                 simulator_.now());
    } else {
      units_unroutable_->add();
      monitor_.on_unit_dropped();
      RASC_TRACE(trace_, unit_id, obs::Hop::kDropped, node_,
                 simulator_.now(), obs::DropReason::kUnroutable);
    }
    return;
  }

  Component& component = *comp_it->second;
  ScheduledUnit scheduled;
  scheduled.unit = unit;
  scheduled.component = &component;
  scheduled.arrival = simulator_.now();
  scheduled.deadline = component.on_arrival(simulator_.now());
  // Laxity uses the *observed* average running time (paper §3.2), not
  // the nominal service cost.
  scheduled.exec_time = component.expected_exec_time();

  if (!scheduler_.enqueue(std::move(scheduled))) {
    dropped_queue_full_->add();
    component.count_drop();
    monitor_.on_unit_dropped();
    RASC_TRACE(trace_, unit_id, obs::Hop::kDropped, node_, simulator_.now(),
               obs::DropReason::kQueueFull);
    return;
  }
  RASC_TRACE(trace_, unit_id, obs::Hop::kScheduled, node_,
             simulator_.now());
  monitor_.on_queue_length(std::int64_t(scheduler_.size()));
  maybe_dispatch();
}

void NodeRuntime::maybe_dispatch() {
  if (cpu_busy_) return;
  std::vector<ScheduledUnit> expired;
  auto next = scheduler_.dispatch(simulator_.now(), expired);
  for (auto& e : expired) {
    dropped_deadline_->add();
    e.component->count_drop();
    monitor_.on_unit_dropped();
    RASC_TRACE(trace_,
               (obs::UnitId{e.unit->app, e.unit->substream, e.unit->seq}),
               obs::Hop::kDropped, node_, simulator_.now(),
               obs::DropReason::kLaxityExpired);
  }
  monitor_.on_queue_length(std::int64_t(scheduler_.size()));
  if (!next) return;
  cpu_busy_ = true;
  // The actual execution time varies around the nominal service cost.
  const auto& spec = next->component->spec();
  sim::SimDuration actual = spec.cpu_time_per_unit;
  if (spec.cpu_time_jitter > 0) {
    actual = sim::SimDuration(
        double(actual) *
        exec_rng_.uniform_double(1.0 - spec.cpu_time_jitter,
                                 1.0 + spec.cpu_time_jitter));
  }
  if (actual < 1) actual = 1;
  simulator_.call_after(
      actual, [this, actual, job = std::move(*next)]() mutable {
        finish_unit(std::move(job), actual);
      });
}

void NodeRuntime::finish_unit(ScheduledUnit scheduled,
                              sim::SimDuration actual) {
  cpu_busy_ = false;
  // The app may have been torn down while this unit held the CPU; the
  // raw component pointer would dangle. The CPU time was still spent.
  const ComponentKey key{scheduled.unit->app, scheduled.unit->substream,
                         scheduled.unit->stage};
  const auto it = components_.find(key);
  if (it == components_.end() || it->second.get() != scheduled.component) {
    monitor_.on_cpu_busy(actual);
    units_unroutable_->add();
    monitor_.on_unit_dropped();
    RASC_TRACE(trace_,
               (obs::UnitId{scheduled.unit->app, scheduled.unit->substream,
                            scheduled.unit->seq}),
               obs::Hop::kDropped, node_, simulator_.now(),
               obs::DropReason::kUnroutable);
    maybe_dispatch();
    return;
  }
  units_processed_->add();
  monitor_.on_unit_processed();
  monitor_.on_cpu_busy(actual);
  scheduled.component->on_executed(actual);
  RASC_TRACE(trace_,
             (obs::UnitId{scheduled.unit->app, scheduled.unit->substream,
                          scheduled.unit->seq}),
             obs::Hop::kExecuted, node_, simulator_.now());

  auto outputs = scheduled.component->process(*scheduled.unit);
  for (auto& out : outputs) {
    auto msg = std::make_shared<DataUnit>(out.unit);
    const auto size = msg->size_bytes;
    network_.send(node_, out.target, size, std::move(msg));
  }
  maybe_dispatch();
}

void NodeRuntime::handle_recover_request(const ShardRecoverRequestMsg& req) {
  auto reply = std::make_shared<ShardRecoverReplyMsg>();
  reply->shard = req.shard;
  reply->node = node_;
  reply->request_id = req.request_id;

  // Ledger slice: the apps this node's granter debited against the
  // queried shard's lease — the membership proof the standby intersects
  // the runtime dumps with.
  if (granter_ != nullptr) {
    for (const auto& [app, in_kbps, out_kbps] :
         granter_->ledger_for_shard(req.shard)) {
      reply->debits.push_back({app, in_kbps, out_kbps});
    }
  }

  // Runtime dumps cover *every* app: adapter-shipped placements and
  // source deploys never touch the ledger, so shard membership cannot be
  // decided node-locally. Sorted iteration keeps replies deterministic.
  std::vector<ComponentKey> keys;
  keys.reserve(components_.size());
  for (const auto& [key, component] : components_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const ComponentKey& key : keys) {
    const Component& c = *components_.at(key);
    ShardRecoverReplyMsg::ComponentState state;
    state.key = key;
    state.service = c.spec().name;
    state.rate_ups = c.planned_rate();
    if (const auto ctl = app_control_.find(key.app);
        ctl != app_control_.end()) {
      state.app_epoch = ctl->second.epoch;
    }
    reply->components.push_back(std::move(state));
  }
  for (const std::uint64_t key : sorted_endpoint_keys()) {
    const Endpoint& endpoint = endpoints_.at(key);
    const auto app = AppId(key >> 32);
    const auto substream = std::int32_t(std::uint32_t(key));
    if (endpoint.sink.has_value()) {
      reply->sinks.push_back({app, substream, endpoint.sink_rate_ups,
                              endpoint.sink_unit_bytes});
    }
    if (endpoint.source != nullptr) {
      reply->sources.push_back({app, substream, endpoint.source_rate_ups,
                                endpoint.source->unit_bytes(),
                                endpoint.source_stop_at});
    }
  }

  const std::int64_t size = reply->wire_size();
  network_.send(node_, req.requester, size, std::move(reply));
}

}  // namespace rasc::runtime
