#include "runtime/source.hpp"

#include <cassert>
#include <memory>

namespace rasc::runtime {

StreamSource::StreamSource(sim::Simulator& simulator, sim::Network& network,
                           sim::NodeIndex node, AppId app,
                           std::int32_t substream, double rate_ups,
                           std::int64_t unit_bytes,
                           std::vector<Placement> first_stage,
                           obs::MetricRegistry* registry, obs::Labels labels,
                           obs::UnitTrace* trace)
    : simulator_(simulator),
      network_(network),
      node_(node),
      app_(app),
      substream_(substream),
      unit_bytes_(unit_bytes),
      first_stage_(std::move(first_stage)),
      trace_(trace) {
  if (registry) {
    emitted_cell_ = &registry->counter("source.units_emitted", labels);
  }
  assert(rate_ups > 0);
  assert(!first_stage_.empty());
  period_ = sim::SimDuration(1e6 / rate_ups);
  if (first_stage_.size() > 1) {
    std::vector<double> weights;
    weights.reserve(first_stage_.size());
    for (const auto& p : first_stage_) weights.push_back(p.rate_units_per_sec);
    wrr_.emplace(std::move(weights));
  }
}

StreamSource::~StreamSource() { stop(); }

void StreamSource::run(sim::SimTime at, sim::SimTime until) {
  assert(!running_);
  running_ = true;
  // Anchor the emission grid no earlier than now: a start time in the
  // past must not make the source "catch up" with an instantaneous burst
  // of every unit it would have emitted by now.
  start_ = std::max(at, simulator_.now());
  until_ = until;
  next_event_ = simulator_.call_at(start_, [this] { emit(); });
}

void StreamSource::stop() {
  if (!running_) return;
  running_ = false;
  simulator_.cancel(next_event_);
}

void StreamSource::reconfigure(double rate_ups,
                               std::vector<Placement> first_stage) {
  assert(rate_ups > 0);
  assert(!first_stage.empty());
  first_stage_ = std::move(first_stage);
  wrr_.reset();
  if (first_stage_.size() > 1) {
    std::vector<double> weights;
    weights.reserve(first_stage_.size());
    for (const auto& p : first_stage_) weights.push_back(p.rate_units_per_sec);
    wrr_.emplace(std::move(weights));
  }
  const auto new_period = sim::SimDuration(1e6 / rate_ups);
  if (new_period == period_) return;  // split-only change: keep the grid
  period_ = new_period;
  if (!running_) return;
  // Re-anchor the grid one new period from now; sequence numbers carry on.
  simulator_.cancel(next_event_);
  start_ = simulator_.now() + period_;
  grid_base_ = emitted_;
  if (start_ >= until_) {
    running_ = false;
    return;
  }
  next_event_ = simulator_.call_at(start_, [this] { emit(); });
}

void StreamSource::emit() {
  if (!running_) return;
  auto unit = std::make_shared<DataUnit>();
  unit->app = app_;
  unit->substream = substream_;
  unit->seq = emitted_;
  unit->stage = 0;
  unit->size_bytes = unit_bytes_;
  unit->created_at = simulator_.now();
  RASC_TRACE(trace_, obs::UnitId{app_, substream_, emitted_},
             obs::Hop::kEmitted, node_, simulator_.now());
  const std::size_t pick = wrr_ ? wrr_->next() : 0;
  network_.send(node_, first_stage_[pick].node, unit_bytes_, std::move(unit));
  ++emitted_;
  if (emitted_cell_) emitted_cell_->add();

  // Exact grid: next emission at start + (emitted - grid_base) * period.
  const sim::SimTime next = start_ + (emitted_ - grid_base_) * period_;
  if (next >= until_) {
    running_ = false;
    return;
  }
  next_event_ = simulator_.call_at(next, [this] { emit(); });
}

}  // namespace rasc::runtime
