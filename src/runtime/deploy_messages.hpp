// Deployment protocol messages.
//
// After composing an execution graph, the coordinator instantiates it by
// messaging every involved node (paper §3.1 step 4: "Instantiate the
// respective components and run the stream processing application").
// Deployment costs real simulated time and bandwidth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/component.hpp"
#include "runtime/plan.hpp"
#include "sim/message.hpp"

namespace rasc::runtime {

struct DeployComponentMsg final : sim::Message {
  const char* kind() const override { return "runtime.deploy_component"; }
  ComponentKey key;
  std::string service;
  double rate_units_per_sec = 0;   // allocation for this instance
  std::int64_t in_unit_bytes = 0;  // input unit size at this stage
  std::vector<Placement> next;     // stage+1 instances or the sink
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;

  std::int64_t wire_size() const {
    return 96 + std::int64_t(next.size()) * 16;
  }
};

struct DeploySinkMsg final : sim::Message {
  const char* kind() const override { return "runtime.deploy_sink"; }
  AppId app = 0;
  std::int32_t substream = 0;
  double rate_units_per_sec = 0;
  std::int64_t unit_bytes = 0;
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;
  static constexpr std::int64_t kBytes = 64;
};

struct DeploySourceMsg final : sim::Message {
  const char* kind() const override { return "runtime.deploy_source"; }
  AppId app = 0;
  std::int32_t substream = 0;
  double rate_units_per_sec = 0;
  std::int64_t unit_bytes = 0;
  std::vector<Placement> first_stage;
  sim::SimTime start_at = 0;
  sim::SimTime stop_at = 0;
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;

  std::int64_t wire_size() const {
    return 96 + std::int64_t(first_stage.size()) * 16;
  }
};

struct DeployAck final : sim::Message {
  const char* kind() const override { return "runtime.deploy_ack"; }
  std::uint64_t request_id = 0;
  bool ok = false;
  static constexpr std::int64_t kBytes = 16;
};

/// Tears down every component/sink/source of an application on the
/// receiving node (failure recovery and re-composition).
struct TeardownAppMsg final : sim::Message {
  const char* kind() const override { return "runtime.teardown_app"; }
  AppId app = 0;
  static constexpr std::int64_t kBytes = 16;
};

/// Queries the destination node for an application's delivery progress
/// (used by the supervisor's liveness checks).
struct SinkHealthRequest final : sim::Message {
  const char* kind() const override { return "runtime.sink_health_req"; }
  AppId app = 0;
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;
  static constexpr std::int64_t kBytes = 24;
};

struct SinkHealthReply final : sim::Message {
  const char* kind() const override { return "runtime.sink_health_reply"; }
  AppId app = 0;
  std::uint64_t request_id = 0;
  /// Units delivered so far across the app's substreams at this node;
  /// -1 when no sink for the app exists here.
  std::int64_t delivered = -1;
  static constexpr std::int64_t kBytes = 32;
};

}  // namespace rasc::runtime
