// Deployment protocol messages.
//
// After composing an execution graph, the coordinator instantiates it by
// messaging every involved node (paper §3.1 step 4: "Instantiate the
// respective components and run the stream processing application").
// Deployment costs real simulated time and bandwidth.
//
// Exactly-once-effective semantics over a lossy control plane rest on two
// fields carried by every deploy/teardown message:
//
//  - (requester, request_id) identifies one logical instantiation. The
//    receiving runtime dedups on it, so a retransmitted or duplicated
//    deploy re-acks the recorded verdict instead of re-applying.
//  - (app, epoch) orders whole deployment attempts. The coordinator stamps
//    each attempt with a fresh epoch; a rollback teardown carries the same
//    epoch and tombstones it at the receiver, so deploy messages of a
//    rolled-back attempt that arrive late (reordered behind their own
//    teardown) are dropped as stale instead of re-instantiating orphans.
//    Epoch 0 is the legacy wildcard: an epoch-0 teardown applies
//    unconditionally (supervisor recovery), and epoch-0 deploys skip the
//    staleness check.
//
// Sharded control planes additionally stamp component/sink deploys with
// the (shard, lease_epoch) of the capacity lease they spend; the receiving
// runtime debits its lease granter before instantiating and NACKs when
// the grant is stale or overdrawn (see runtime/lease_granter.hpp).
//
// The new fields ride inside the existing wire-size constants (they model
// header room already budgeted), so stamped runs serialize identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/component.hpp"
#include "runtime/plan.hpp"
#include "sim/message.hpp"

namespace rasc::runtime {

struct DeployComponentMsg final : sim::Message {
  const char* kind() const override { return "runtime.deploy_component"; }
  ComponentKey key;
  std::string service;
  double rate_units_per_sec = 0;   // allocation for this instance
  std::int64_t in_unit_bytes = 0;  // input unit size at this stage
  std::vector<Placement> next;     // stage+1 instances or the sink
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;
  /// Deployment attempt this message belongs to (see file header).
  std::uint64_t epoch = 0;
  /// Coordinator shard spending a capacity lease for this reservation
  /// (-1: unsharded legacy deploy, no lease debit). With a shard set the
  /// receiving runtime debits (shard, lease_epoch) at its granter before
  /// instantiating, and NACKs when the lease cannot cover it.
  std::int32_t shard = -1;
  std::uint64_t lease_epoch = 0;

  std::int64_t wire_size() const {
    return 96 + std::int64_t(next.size()) * 16;
  }
};

struct DeploySinkMsg final : sim::Message {
  const char* kind() const override { return "runtime.deploy_sink"; }
  AppId app = 0;
  std::int32_t substream = 0;
  double rate_units_per_sec = 0;
  std::int64_t unit_bytes = 0;
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;
  /// Deployment attempt this message belongs to (see file header).
  std::uint64_t epoch = 0;
  /// Lease-spending stamp; see DeployComponentMsg.
  std::int32_t shard = -1;
  std::uint64_t lease_epoch = 0;
  static constexpr std::int64_t kBytes = 64;
};

struct DeploySourceMsg final : sim::Message {
  const char* kind() const override { return "runtime.deploy_source"; }
  AppId app = 0;
  std::int32_t substream = 0;
  double rate_units_per_sec = 0;
  std::int64_t unit_bytes = 0;
  std::vector<Placement> first_stage;
  sim::SimTime start_at = 0;
  sim::SimTime stop_at = 0;
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;
  /// Deployment attempt this message belongs to (see file header).
  std::uint64_t epoch = 0;

  std::int64_t wire_size() const {
    return 96 + std::int64_t(first_stage.size()) * 16;
  }
};

struct DeployAck final : sim::Message {
  const char* kind() const override { return "runtime.deploy_ack"; }
  std::uint64_t request_id = 0;
  bool ok = false;
  static constexpr std::int64_t kBytes = 16;
};

// --- Delta re-allocation protocol (rate adapter) ---
//
// The adapter adjusts a running application in place instead of tearing
// it down: components get new rates and downstream splits, placements are
// added or retired individually, and the source's stage-0 split is
// rewritten. Updates are fire-and-forget (no acks): a lost delta leaves
// the app on its previous — still functional — allocation, and the next
// adaptation round repairs it.

/// Re-rates an existing component in place and rewrites its downstream
/// split. No-op if the component is not deployed on the receiving node.
struct UpdateComponentMsg final : sim::Message {
  const char* kind() const override { return "runtime.update_component"; }
  ComponentKey key;
  double rate_units_per_sec = 0;   // new allocation for this instance
  std::int64_t in_unit_bytes = 0;  // input unit size (re-reservation)
  std::vector<Placement> next;     // new stage+1 split (or the sink)

  std::int64_t wire_size() const {
    return 56 + std::int64_t(next.size()) * 16;
  }
};

/// Deploys one additional instance of an already-running stage (same
/// payload as DeployComponentMsg minus the ack round-trip).
struct AddPlacementMsg final : sim::Message {
  const char* kind() const override { return "runtime.add_placement"; }
  ComponentKey key;
  std::string service;
  double rate_units_per_sec = 0;
  std::int64_t in_unit_bytes = 0;
  std::vector<Placement> next;

  std::int64_t wire_size() const {
    return 96 + std::int64_t(next.size()) * 16;
  }
};

/// Retires a single component instance (one stage of one substream on the
/// receiving node), releasing its reservations. Unlike TeardownAppMsg the
/// rest of the application keeps running.
struct RemovePlacementMsg final : sim::Message {
  const char* kind() const override { return "runtime.remove_placement"; }
  ComponentKey key;
  static constexpr std::int64_t kBytes = 24;
};

/// Rewrites a running source's stage-0 split (and emission rate) after
/// the adapter re-balanced the first stage.
struct UpdateSourceSplitMsg final : sim::Message {
  const char* kind() const override { return "runtime.update_source_split"; }
  AppId app = 0;
  std::int32_t substream = 0;
  double rate_units_per_sec = 0;  // new stage-0 *input* ups
  std::vector<Placement> first_stage;

  std::int64_t wire_size() const {
    return 48 + std::int64_t(first_stage.size()) * 16;
  }
};

/// Tears down every component/sink/source of an application on the
/// receiving node (failure recovery and re-composition).
struct TeardownAppMsg final : sim::Message {
  const char* kind() const override { return "runtime.teardown_app"; }
  AppId app = 0;
  /// 0 = unconditional teardown (supervisor recovery, legacy senders).
  /// Nonzero = rollback of exactly this deployment attempt: the receiver
  /// tombstones the epoch so late-arriving deploys of it are dropped, and
  /// older epochs are ignored (a reordered stale teardown must not kill a
  /// newer attempt).
  std::uint64_t epoch = 0;
  static constexpr std::int64_t kBytes = 16;
};

/// Queries the destination node for an application's delivery progress
/// (used by the supervisor's liveness checks).
struct SinkHealthRequest final : sim::Message {
  const char* kind() const override { return "runtime.sink_health_req"; }
  AppId app = 0;
  std::uint64_t request_id = 0;
  sim::NodeIndex requester = sim::kInvalidNode;
  static constexpr std::int64_t kBytes = 24;
};

struct SinkHealthReply final : sim::Message {
  const char* kind() const override { return "runtime.sink_health_reply"; }
  AppId app = 0;
  std::uint64_t request_id = 0;
  /// Units delivered so far across the app's substreams at this node;
  /// -1 when no sink for the app exists here.
  std::int64_t delivered = -1;
  static constexpr std::int64_t kBytes = 32;
};

}  // namespace rasc::runtime
