#include "runtime/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace rasc::runtime {

namespace {

constexpr std::uint64_t kFreeSlot = std::numeric_limits<std::uint64_t>::max();

/// Min-heap order on (key, seq): among equal keys the earliest-enqueued
/// unit wins, matching a stable linear scan.
bool entry_after(sim::SimTime a_key, std::uint64_t a_seq, sim::SimTime b_key,
                 std::uint64_t b_seq) {
  return a_key > b_key || (a_key == b_key && a_seq > b_seq);
}

}  // namespace

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kLeastLaxity:
      return "llf";
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kEdf:
      return "edf";
  }
  return "?";
}

void Scheduler::heap_push(std::vector<Entry>& heap, Entry entry) {
  heap.push_back(entry);
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry_after(heap[parent].key, heap[parent].seq, heap[i].key,
                     heap[i].seq)) {
      break;
    }
    std::swap(heap[parent], heap[i]);
    i = parent;
  }
}

void Scheduler::sift_down(std::vector<Entry>& heap, std::size_t i) {
  // Hole-sift: pull the displaced element out, slide smaller children up
  // into the hole, and write the element once at its final position.
  const std::size_t n = heap.size();
  const Entry x = heap[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    const std::size_t r = child + 1;
    if (r < n && entry_after(heap[child].key, heap[child].seq, heap[r].key,
                             heap[r].seq)) {
      child = r;
    }
    if (!entry_after(x.key, x.seq, heap[child].key, heap[child].seq)) break;
    heap[i] = heap[child];
    i = child;
  }
  heap[i] = x;
}

void Scheduler::heap_pop(std::vector<Entry>& heap) {
  heap.front() = heap.back();
  heap.pop_back();
  if (!heap.empty()) sift_down(heap, 0);
}

void Scheduler::compact(std::vector<Entry>& heap) {
  std::erase_if(heap, [this](const Entry& e) { return stale(e); });
  for (std::size_t i = heap.size() / 2; i-- > 0;) sift_down(heap, i);
}

ScheduledUnit Scheduler::release(std::uint32_t slot) {
  ScheduledUnit out = std::move(slots_[slot]);
  slot_seq_[slot] = kFreeSlot;
  free_slots_.push_back(slot);
  --live_;
  return out;
}

bool Scheduler::enqueue(ScheduledUnit unit) {
  if (live_ >= max_queue_) return false;

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = std::uint32_t(slots_.size());
    slots_.emplace_back();
    slot_seq_.push_back(kFreeSlot);
    // Keep release() allocation-free on the dispatch path.
    free_slots_.reserve(slots_.capacity());
  }
  const std::uint64_t seq = next_seq_++;
  slot_seq_[slot] = seq;
  ++live_;

  const sim::SimTime laxity_key = unit.deadline - unit.exec_time;
  sim::SimTime key = 0;
  switch (policy_) {
    case SchedulingPolicy::kLeastLaxity:
      key = laxity_key;
      break;
    case SchedulingPolicy::kEdf:
      key = unit.deadline;
      heap_push(laxity_heap_, Entry{laxity_key, seq, slot});
      break;
    case SchedulingPolicy::kFifo:
      key = unit.arrival;
      break;
  }
  slots_[slot] = std::move(unit);
  heap_push(heap_, Entry{key, seq, slot});
  return true;
}

std::optional<ScheduledUnit> Scheduler::dispatch(
    sim::SimTime now, std::vector<ScheduledUnit>& expired) {
  if (live_ == 0) {
    // Nothing runnable; discard any stale EDF leftovers wholesale.
    heap_.clear();
    laxity_heap_.clear();
    return std::nullopt;
  }

  const bool dual_heap = policy_ == SchedulingPolicy::kEdf;
  if (policy_ != SchedulingPolicy::kFifo) {
    // Drop units that will certainly miss (negative laxity, §3.4). They
    // are exactly the entries with laxity key < now — a prefix of the
    // laxity heap. Only EDF can hold stale entries (units removed through
    // the other heap).
    auto& lax = dual_heap ? laxity_heap_ : heap_;
    while (!lax.empty()) {
      const Entry top = lax.front();
      // Check the key before staleness: stale entries at or above `now`
      // can stay put (cleaned up when the queue drains or by compaction),
      // which keeps this loop a single peek in the common case.
      if (top.key >= now) break;
      heap_pop(lax);
      if (stale(top)) continue;
      expired.push_back(release(top.slot));
    }
  }

  while (!heap_.empty()) {
    const Entry top = heap_.front();
    heap_pop(heap_);
    if (stale(top)) continue;
    // Removals through the other heap (EDF) or purge_app strand stale
    // entries; reclaim them once they clearly dominate the heap.
    if (heap_.size() > 2 * live_ + 64) compact(heap_);
    if (dual_heap && laxity_heap_.size() > 2 * live_ + 64) {
      compact(laxity_heap_);
    }
    return release(top.slot);
  }
  return std::nullopt;
}

std::vector<ScheduledUnit> Scheduler::purge_app(AppId app) {
  std::vector<ScheduledUnit> purged;
  for (std::uint32_t slot = 0; slot < std::uint32_t(slots_.size()); ++slot) {
    if (slot_seq_[slot] == kFreeSlot) continue;
    if (slots_[slot].unit->app != app) continue;
    purged.push_back(release(slot));
  }
  return purged;
}

std::vector<ScheduledUnit> Scheduler::purge_component(
    const ComponentKey& key) {
  std::vector<ScheduledUnit> purged;
  for (std::uint32_t slot = 0; slot < std::uint32_t(slots_.size()); ++slot) {
    if (slot_seq_[slot] == kFreeSlot) continue;
    const auto& unit = *slots_[slot].unit;
    if (unit.app != key.app || unit.substream != key.substream ||
        unit.stage != key.stage) {
      continue;
    }
    purged.push_back(release(slot));
  }
  return purged;
}

}  // namespace rasc::runtime
