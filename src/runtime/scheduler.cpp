#include "runtime/scheduler.hpp"

#include <algorithm>

namespace rasc::runtime {

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kLeastLaxity:
      return "llf";
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kEdf:
      return "edf";
  }
  return "?";
}

bool Scheduler::enqueue(ScheduledUnit unit) {
  if (queue_.size() >= max_queue_) return false;
  queue_.push_back(std::move(unit));
  return true;
}

std::optional<ScheduledUnit> Scheduler::dispatch(
    sim::SimTime now, std::vector<ScheduledUnit>& expired) {
  if (policy_ != SchedulingPolicy::kFifo) {
    // Drop units that will certainly miss (negative laxity, §3.4).
    auto dead = std::partition(
        queue_.begin(), queue_.end(),
        [now](const ScheduledUnit& u) { return u.laxity(now) >= 0; });
    for (auto it = dead; it != queue_.end(); ++it) {
      expired.push_back(std::move(*it));
    }
    queue_.erase(dead, queue_.end());
  }
  if (queue_.empty()) return std::nullopt;

  std::size_t best = 0;
  switch (policy_) {
    case SchedulingPolicy::kLeastLaxity:
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].laxity(now) < queue_[best].laxity(now)) best = i;
      }
      break;
    case SchedulingPolicy::kEdf:
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].deadline < queue_[best].deadline) best = i;
      }
      break;
    case SchedulingPolicy::kFifo:
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].arrival < queue_[best].arrival) best = i;
      }
      break;
  }
  ScheduledUnit out = std::move(queue_[best]);
  queue_.erase(queue_.begin() + std::ptrdiff_t(best));
  return out;
}

}  // namespace rasc::runtime
