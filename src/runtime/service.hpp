// Service specifications and the service catalog.
//
// A service is "a function that defines the processing of a finite amount
// of input data" (paper §2.1): aggregation, filtering, transcoding, ...
// A component is a running instance of a service on a node, operating on
// individual data units.
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "sim/time.hpp"

namespace rasc::runtime {

struct ServiceSpec {
  std::string name;

  /// Mean CPU time to process one data unit (the scheduler's t_ci).
  sim::SimDuration cpu_time_per_unit = sim::msec(2);

  /// Rate ratio R_ci = out-rate / in-rate (paper §2.2). 1 for filters and
  /// transforms that keep cadence; <1 for down-samplers; >1 for expanders.
  double rate_ratio = 1.0;

  /// Output unit size as a fraction of the input unit size (e.g. a
  /// transcoder that halves the bitrate has 0.5).
  double output_size_factor = 1.0;

  /// Per-unit execution-time variability: actual times are drawn
  /// uniformly from cpu_time_per_unit * [1-j, 1+j]. Real services are not
  /// constant-time, which is why the paper's monitor reports the
  /// *average observed* running time (§3.2) rather than a nominal one.
  double cpu_time_jitter = 0.0;
};

/// Immutable registry of the service types that exist in a deployment
/// (the paper's experiments use 10 unique services).
class ServiceCatalog {
 public:
  void add(ServiceSpec spec) {
    const std::string name = spec.name;
    if (!specs_.emplace(name, std::move(spec)).second) {
      throw std::invalid_argument("duplicate service: " + name);
    }
  }

  const ServiceSpec& get(const std::string& name) const {
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw std::out_of_range("unknown service: " + name);
    }
    return it->second;
  }

  bool contains(const std::string& name) const {
    return specs_.count(name) > 0;
  }
  std::size_t size() const { return specs_.size(); }

  const std::map<std::string, ServiceSpec>& all() const { return specs_; }

 private:
  std::map<std::string, ServiceSpec> specs_;
};

}  // namespace rasc::runtime
