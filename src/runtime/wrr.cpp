#include "runtime/wrr.hpp"

#include <cassert>

namespace rasc::runtime {

WeightedRoundRobin::WeightedRoundRobin(std::vector<double> weights)
    : weights_(std::move(weights)), current_(weights_.size(), 0.0) {
  for (double w : weights_) {
    assert(w >= 0);
    total_ += w;
  }
  assert(total_ > 0 && "WRR needs at least one positive weight");
}

std::size_t WeightedRoundRobin::next() {
  std::size_t best = 0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    current_[i] += weights_[i];
    if (current_[i] > current_[best]) best = i;
  }
  current_[best] -= total_;
  return best;
}

}  // namespace rasc::runtime
