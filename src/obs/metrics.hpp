// Telemetry primitives: the typed metric cells a MetricRegistry owns.
//
// Cells are plain value types so a layer can also hold them standalone
// (e.g. a StreamSink constructed without a registry in unit tests). When a
// registry owns a cell, the layer keeps a pointer to it: emitting through
// the registry costs exactly one pointer-indirect increment, which is what
// keeps the consolidated telemetry off the simulator's hot-path profile.
#pragma once

#include <atomic>
#include <compare>
#include <cstdint>
#include <string>

#include "util/summary_stats.hpp"

namespace rasc::obs {

/// Metric identity beyond the name. `node` is the simulated node index
/// (-1 = deployment-global), `app` the application id (-1 = n/a), and
/// `component` a free-form sub-label (message kind, service name,
/// substream, ... — empty = n/a).
struct Labels {
  std::int32_t node = -1;
  std::int64_t app = -1;
  std::string component;

  friend auto operator<=>(const Labels&, const Labels&) = default;
};

/// Monotonic event count. Increments are relaxed atomics: several logical
/// processes of a parallel simulation may bump the same cell (e.g. the
/// network's global packet counters) inside one safe window, and integer
/// sums are order-independent, so relaxed is all determinism needs. The
/// serial path pays one uncontended atomic add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written instantaneous value (queue length, window mean, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Windowed distribution: Welford summary for mean/stddev plus a bounded
/// reservoir for percentile tails. Deterministic given insertion order.
class Histogram {
 public:
  explicit Histogram(std::size_t reservoir_capacity = 4096)
      : reservoir_(reservoir_capacity) {}

  void observe(double x) {
    summary_.add(x);
    reservoir_.add(x);
  }

  void merge(const Histogram& other);

  const util::SummaryStats& summary() const { return summary_; }
  double percentile(double q) const { return reservoir_.percentile(q); }
  std::size_t count() const { return summary_.count(); }

 private:
  util::SummaryStats summary_;
  util::Reservoir reservoir_;
};

}  // namespace rasc::obs
