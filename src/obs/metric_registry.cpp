#include "obs/metric_registry.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <stdexcept>

namespace rasc::obs {

void Histogram::merge(const Histogram& other) {
  summary_.merge(other.summary_);
  // Reservoir samples re-inserted in ascending order: deterministic no
  // matter what insertion/query history either side had.
  for (double x : other.reservoir_.sorted_samples()) reservoir_.add(x);
}

const char* to_string(MetricRow::Kind kind) {
  switch (kind) {
    case MetricRow::Kind::kCounter: return "counter";
    case MetricRow::Kind::kGauge: return "gauge";
    case MetricRow::Kind::kHistogram: return "histogram";
  }
  return "?";
}

template <typename T>
T& MetricRegistry::get_cell(CellMap<T>& cells, std::string_view name,
                            Labels labels) {
  Key key{std::string(name), std::move(labels)};
  auto it = cells.find(key);
  if (it == cells.end()) {
    it = cells.emplace(std::move(key), std::make_unique<T>()).first;
  }
  return *it->second;
}

template <typename T>
const T* MetricRegistry::find_cell(const CellMap<T>& cells,
                                   std::string_view name,
                                   const Labels& labels) {
  const auto it = cells.find(Key{std::string(name), labels});
  return it == cells.end() ? nullptr : it->second.get();
}

Counter& MetricRegistry::counter(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return get_cell(counters_, name, std::move(labels));
}

Gauge& MetricRegistry::gauge(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return get_cell(gauges_, name, std::move(labels));
}

Histogram& MetricRegistry::histogram(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return get_cell(histograms_, name, std::move(labels));
}

const Counter* MetricRegistry::find_counter(std::string_view name,
                                            const Labels& labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  return find_cell(counters_, name, labels);
}

const Gauge* MetricRegistry::find_gauge(std::string_view name,
                                        const Labels& labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  return find_cell(gauges_, name, labels);
}

const Histogram* MetricRegistry::find_histogram(std::string_view name,
                                                const Labels& labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  return find_cell(histograms_, name, labels);
}

namespace {

/// Smallest possible label set: lower_bound anchor for a name scan.
obs::Labels min_labels() {
  obs::Labels l;
  l.node = std::numeric_limits<std::int32_t>::min();
  l.app = std::numeric_limits<std::int64_t>::min();
  return l;
}

}  // namespace

std::int64_t MetricRegistry::counter_total(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::int64_t total = 0;
  for (auto it = counters_.lower_bound(Key{std::string(name), min_labels()});
       it != counters_.end() && it->first.first == name; ++it) {
    total += it->second->value();
  }
  return total;
}

Histogram MetricRegistry::histogram_total(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  Histogram total;
  for (auto it =
           histograms_.lower_bound(Key{std::string(name), min_labels()});
       it != histograms_.end() && it->first.first == name; ++it) {
    total.merge(*it->second);
  }
  return total;
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  std::scoped_lock lk(mu_, other.mu_);
  for (const auto& [key, cell] : other.counters_) {
    get_cell(counters_, key.first, key.second).add(cell->value());
  }
  for (const auto& [key, cell] : other.gauges_) {
    get_cell(gauges_, key.first, key.second).set(cell->value());
  }
  for (const auto& [key, cell] : other.histograms_) {
    get_cell(histograms_, key.first, key.second).merge(*cell);
  }
}

std::vector<MetricRow> MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricRow> rows;
  rows.reserve(size());
  // The three maps are each (name, labels)-sorted; a final stable sort by
  // the same key interleaves them into one total order.
  for (const auto& [key, cell] : counters_) {
    MetricRow row;
    row.name = key.first;
    row.labels = key.second;
    row.kind = MetricRow::Kind::kCounter;
    row.value = double(cell->value());
    rows.push_back(std::move(row));
  }
  for (const auto& [key, cell] : gauges_) {
    MetricRow row;
    row.name = key.first;
    row.labels = key.second;
    row.kind = MetricRow::Kind::kGauge;
    row.value = cell->value();
    rows.push_back(std::move(row));
  }
  for (const auto& [key, cell] : histograms_) {
    MetricRow row;
    row.name = key.first;
    row.labels = key.second;
    row.kind = MetricRow::Kind::kHistogram;
    const auto& s = cell->summary();
    row.count = std::int64_t(s.count());
    row.mean = s.mean();
    row.stddev = s.stddev();
    row.min = s.min();
    row.max = s.max();
    row.p50 = cell->percentile(0.50);
    row.p95 = cell->percentile(0.95);
    row.p99 = cell->percentile(0.99);
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const MetricRow& a, const MetricRow& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  return rows;
}

namespace {

/// Fixed-precision numeric field: enough digits to round-trip the values
/// we export while keeping files stable across compilers.
void put_number(std::ostream& out, double v) {
  out << std::setprecision(12) << v;
}

void put_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

void MetricRegistry::write_csv(const std::vector<MetricRow>& rows,
                               std::ostream& out) {
  out << "metric,kind,node,app,component,value,count,mean,stddev,min,max,"
         "p50,p95,p99\n";
  for (const auto& row : rows) {
    out << row.name << ',' << to_string(row.kind) << ',' << row.labels.node
        << ',' << row.labels.app << ',' << row.labels.component << ',';
    put_number(out, row.value);
    out << ',' << row.count << ',';
    put_number(out, row.mean);
    out << ',';
    put_number(out, row.stddev);
    out << ',';
    put_number(out, row.min);
    out << ',';
    put_number(out, row.max);
    out << ',';
    put_number(out, row.p50);
    out << ',';
    put_number(out, row.p95);
    out << ',';
    put_number(out, row.p99);
    out << '\n';
  }
}

void MetricRegistry::write_json(const std::vector<MetricRow>& rows,
                                std::ostream& out) {
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << "  {\"metric\": ";
    put_json_string(out, row.name);
    out << ", \"kind\": \"" << to_string(row.kind) << '"';
    out << ", \"node\": " << row.labels.node;
    out << ", \"app\": " << row.labels.app;
    out << ", \"component\": ";
    put_json_string(out, row.labels.component);
    if (row.kind == MetricRow::Kind::kHistogram) {
      out << ", \"count\": " << row.count;
      out << ", \"mean\": ";
      put_number(out, row.mean);
      out << ", \"stddev\": ";
      put_number(out, row.stddev);
      out << ", \"min\": ";
      put_number(out, row.min);
      out << ", \"max\": ";
      put_number(out, row.max);
      out << ", \"p50\": ";
      put_number(out, row.p50);
      out << ", \"p95\": ";
      put_number(out, row.p95);
      out << ", \"p99\": ";
      put_number(out, row.p99);
    } else {
      out << ", \"value\": ";
      put_number(out, row.value);
    }
    out << '}' << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

void MetricRegistry::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_csv(snapshot(), out);
}

void MetricRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_json(snapshot(), out);
}

}  // namespace rasc::obs
