// Unified metric registry: the single store every layer (sim network,
// stream runtime, resource monitor, coordinator, supervisor, experiment
// runner) emits its telemetry through.
//
// Layers obtain a cell once (map lookup at deploy/construction time) and
// keep the returned reference — cells have stable addresses for the
// registry's lifetime, so the steady-state emit path is one pointer
// increment. Snapshots iterate the backing std::map, which keys cells by
// (name, labels); the ordering is total and value-based, so two runs that
// created the same metrics in any order export byte-identical CSV/JSON.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace rasc::obs {

/// One exported metric in a deterministic snapshot.
struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;

  /// Counter value or gauge reading (0 for histograms).
  double value = 0;
  /// Histogram-only fields (0 otherwise).
  std::int64_t count = 0;
  double mean = 0, stddev = 0, min = 0, max = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

const char* to_string(MetricRow::Kind kind);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Finds or creates a cell. The reference stays valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});

  /// Read-only lookup; nullptr when the cell does not exist.
  const Counter* find_counter(std::string_view name,
                              const Labels& labels = {}) const;
  const Gauge* find_gauge(std::string_view name,
                          const Labels& labels = {}) const;
  const Histogram* find_histogram(std::string_view name,
                                  const Labels& labels = {}) const;

  /// Sum of one counter over every label combination (deterministic:
  /// integer addition in sorted label order).
  std::int64_t counter_total(std::string_view name) const;

  /// Merge of one histogram over every label combination, in sorted label
  /// order (deterministic given identical per-cell contents).
  Histogram histogram_total(std::string_view name) const;

  /// Folds another registry into this one (sweep aggregation): counters
  /// add, gauges take the other's reading, histograms merge.
  void merge_from(const MetricRegistry& other);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// All cells as rows sorted by (name, labels) — a stable, total order.
  std::vector<MetricRow> snapshot() const;

  /// Exports a snapshot with a fixed header/field layout. Keys appear in
  /// snapshot order, so identical runs produce byte-identical files.
  static void write_csv(const std::vector<MetricRow>& rows,
                        std::ostream& out);
  static void write_json(const std::vector<MetricRow>& rows,
                         std::ostream& out);
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;

 private:
  using Key = std::pair<std::string, Labels>;

  template <typename T>
  using CellMap = std::map<Key, std::unique_ptr<T>>;

  template <typename T>
  static T& get_cell(CellMap<T>& cells, std::string_view name,
                     Labels labels);
  template <typename T>
  static const T* find_cell(const CellMap<T>& cells, std::string_view name,
                            const Labels& labels);

  /// Guards the cell maps themselves, not the cells: parallel-simulation
  /// LPs may lazily create cells (deploy.* counters, per-kind network
  /// columns) concurrently. Cells keep stable addresses, so the
  /// steady-state emit path — through a cached pointer — takes no lock.
  mutable std::mutex mu_;
  CellMap<Counter> counters_;
  CellMap<Gauge> gauges_;
  CellMap<Histogram> histograms_;
};

}  // namespace rasc::obs
