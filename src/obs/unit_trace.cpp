#include "obs/unit_trace.hpp"

#include <algorithm>

namespace rasc::obs {

const char* to_string(Hop hop) {
  switch (hop) {
    case Hop::kEmitted: return "emitted";
    case Hop::kPortQueued: return "port-queued";
    case Hop::kScheduled: return "scheduled";
    case Hop::kExecuted: return "executed";
    case Hop::kDropped: return "dropped";
    case Hop::kDelivered: return "delivered";
  }
  return "?";
}

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kLaxityExpired: return "laxity-expired";
    case DropReason::kQueueFull: return "queue-full";
    case DropReason::kPortTailDrop: return "port-tail-drop";
    case DropReason::kNodeFailed: return "node-failed";
    case DropReason::kLinkLoss: return "link-loss";
    case DropReason::kUnroutable: return "unroutable";
  }
  return "?";
}

UnitTrace::UnitTrace(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void UnitTrace::record(const UnitId& unit, Hop hop, std::int32_t node,
                       std::int64_t at_us, DropReason reason) {
  ++recorded_;
  ++hop_counts_[std::size_t(hop)];
  if (hop == Hop::kDropped) ++drop_counts_[std::size_t(reason)];
  TraceEvent event{unit, hop, reason, node, at_us};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> UnitTrace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Ring order: [next_, end) is the older half once wrapped.
  for (std::size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  return out;
}

std::vector<TraceEvent> UnitTrace::unit_history(const UnitId& unit) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events()) {
    if (event.unit == unit) out.push_back(event);
  }
  return out;
}

void UnitTrace::clear() {
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  std::fill(std::begin(hop_counts_), std::end(hop_counts_), 0);
  std::fill(std::begin(drop_counts_), std::end(drop_counts_), 0);
}

}  // namespace rasc::obs
