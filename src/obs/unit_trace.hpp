// Data-unit lifecycle tracer.
//
// Records the hops one data unit takes through the deployment —
// emitted -> port-queued -> scheduled -> executed | dropped(reason) ->
// delivered — with a taxonomy of drop reasons, so a starving stream can be
// diagnosed from one place instead of cross-referencing per-layer
// counters.
//
// Overhead discipline (the tracer sits on the scheduler/network hot path):
//  - compile-time guard: building with -DRASC_OBS_TRACING=0 compiles every
//    RASC_TRACE emit site down to nothing;
//  - runtime guard: when compiled in but not enabled, an emit is one
//    pointer test plus one predictable branch (see bench/micro_obs);
//  - bounded memory: events land in a fixed-capacity ring; per-hop and
//    per-reason counts are always exact even after the ring wraps.
//
// Tracing never schedules simulator events, draws randomness, or touches
// packet contents, so enabling it cannot perturb simulation order: a run
// with tracing on is event-for-event identical to the same run with
// tracing off (asserted by ObsTest.RunnerSweepIdenticalWithTracing).
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#ifndef RASC_OBS_TRACING
#define RASC_OBS_TRACING 1
#endif

namespace rasc::obs {

/// Identity of one data unit: (application, substream, sequence number).
struct UnitId {
  std::int64_t app = 0;
  std::int32_t substream = 0;
  std::int64_t seq = 0;

  friend auto operator<=>(const UnitId&, const UnitId&) = default;
};

/// Lifecycle stations a unit passes through.
enum class Hop : std::uint8_t {
  kEmitted,     // left the stream source
  kPortQueued,  // accepted into an access-link port queue
  kScheduled,   // entered a node's ready queue
  kExecuted,    // a component finished processing it
  kDropped,     // left the system without reaching the sink (see reason)
  kDelivered,   // arrived at the destination sink
};
inline constexpr std::size_t kHopCount = 6;

/// Why a unit was dropped. kNone for every non-drop hop.
enum class DropReason : std::uint8_t {
  kNone,
  kLaxityExpired,  // scheduler: could no longer meet its deadline
  kQueueFull,      // scheduler: ready queue at capacity
  kPortTailDrop,   // network: access-link port queue over budget
  kNodeFailed,     // network: endpoint marked down
  kLinkLoss,       // network: random wire loss
  kUnroutable,     // runtime: no component or sink for it at the node
};
inline constexpr std::size_t kDropReasonCount = 7;

const char* to_string(Hop hop);
const char* to_string(DropReason reason);

struct TraceEvent {
  UnitId unit;
  Hop hop = Hop::kEmitted;
  DropReason reason = DropReason::kNone;
  std::int32_t node = -1;
  std::int64_t at_us = 0;
};

class UnitTrace {
 public:
  explicit UnitTrace(std::size_t capacity = 1 << 16);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void record(const UnitId& unit, Hop hop, std::int32_t node,
              std::int64_t at_us, DropReason reason = DropReason::kNone);

  /// Exact totals (survive ring wrap-around).
  std::int64_t hop_count(Hop hop) const {
    return hop_counts_[std::size_t(hop)];
  }
  std::int64_t dropped_by(DropReason reason) const {
    return drop_counts_[std::size_t(reason)];
  }
  std::int64_t recorded() const { return recorded_; }
  std::int64_t overwritten() const {
    return recorded_ - std::int64_t(ring_.size());
  }

  /// Retained events in record order (oldest first).
  std::vector<TraceEvent> events() const;
  /// Retained events of one unit, in record order.
  std::vector<TraceEvent> unit_history(const UnitId& unit) const;

  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  bool enabled_ = false;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // ring write position once full
  std::int64_t recorded_ = 0;
  std::int64_t hop_counts_[kHopCount] = {};
  std::int64_t drop_counts_[kDropReasonCount] = {};
};

}  // namespace rasc::obs

/// Emit-site macro: compiles to nothing when RASC_OBS_TRACING=0; otherwise
/// a null/enabled test in front of the record call. `tracer` is a
/// UnitTrace* (may be null).
#if RASC_OBS_TRACING
#define RASC_TRACE(tracer, ...)                                \
  do {                                                         \
    ::rasc::obs::UnitTrace* rasc_trace_tr_ = (tracer);         \
    if (rasc_trace_tr_ != nullptr && rasc_trace_tr_->enabled()) \
      rasc_trace_tr_->record(__VA_ARGS__);                     \
  } while (0)
#else
#define RASC_TRACE(tracer, ...) ((void)(tracer))
#endif
