#include "overlay/builder.hpp"

#include <stdexcept>
#include <string>

#include "util/logging.hpp"

namespace rasc::overlay {

void Overlay::set_fallback(std::size_t i, Fallback fallback) {
  *fallbacks_.at(i) = std::move(fallback);
}

Overlay build_overlay(sim::Simulator& simulator, sim::Network& network,
                      std::size_t count) {
  if (count == 0 || count > network.size()) {
    throw std::runtime_error("build_overlay: bad node count");
  }
  Overlay overlay;
  overlay.nodes_.reserve(count);
  overlay.fallbacks_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto id = NodeId128::hash_of("overlay-node-" + std::to_string(i));
    overlay.nodes_.push_back(std::make_unique<PastryNode>(
        simulator, network, sim::NodeIndex(i), id));
    overlay.fallbacks_.push_back(std::make_shared<Overlay::Fallback>());
    PastryNode* node = overlay.nodes_.back().get();
    auto fallback = overlay.fallbacks_.back();
    network.set_handler(sim::NodeIndex(i),
                        [node, fallback](const sim::Packet& packet) {
                          if (node->handle_packet(packet)) return;
                          if (*fallback) (*fallback)(packet);
                        });
  }

  overlay.nodes_[0]->bootstrap_as_first();
  for (std::size_t i = 1; i < count; ++i) {
    bool done = false;
    bool ok = false;
    overlay.nodes_[i]->join_via(sim::NodeIndex(i - 1),
                                [&done, &ok](bool success) {
                                  done = true;
                                  ok = success;
                                });
    // Drive the simulation until this join settles.
    while (!done && simulator.step()) {
    }
    if (!done || !ok) {
      throw std::runtime_error("build_overlay: join failed for node " +
                               std::to_string(i));
    }
  }
  // Let trailing announcements drain and give leaf-set maintenance a few
  // rounds to converge ring neighborhoods before the caller starts
  // issuing traffic.
  simulator.run_until(simulator.now() + sim::msec(4000));
  return overlay;
}

}  // namespace rasc::overlay
