// Service registry on top of the DHT (paper §3.3).
//
// Providers of a service register under SHA-1(service name); a querying
// node retrieves the provider list with one routed lookup. This is exactly
// the component-discovery mechanism RASC layers on Pastry.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "overlay/pastry_node.hpp"

namespace rasc::overlay {

class ServiceRegistry {
 public:
  using LookupCallback =
      std::function<void(bool found, std::vector<sim::NodeIndex> providers)>;

  explicit ServiceRegistry(PastryNode& node) : node_(node) {}

  /// Registers `provider` as offering `service_name`.
  void register_provider(const std::string& service_name,
                         sim::NodeIndex provider,
                         PastryNode::PutCallback done);

  /// Looks up all registered providers of `service_name`.
  void lookup(const std::string& service_name, LookupCallback done);

  /// DHT key for a service name (exposed for tests).
  static NodeId128 key_for(const std::string& service_name);

 private:
  PastryNode& node_;
};

}  // namespace rasc::overlay
