#include "overlay/pastry_node.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "util/logging.hpp"

namespace rasc::overlay {

PastryNode::PastryNode(sim::Simulator& simulator, sim::Network& network,
                       sim::NodeIndex addr, NodeId128 id)
    : simulator_(simulator),
      network_(network),
      addr_(addr),
      id_(id),
      leaves_(id),
      table_(id) {}

PastryNode::~PastryNode() {
  simulator_.cancel(maintenance_event_);
  simulator_.cancel(join_timeout_event_);
}

void PastryNode::bootstrap_as_first() {
  ready_ = true;
  start_maintenance();
}

void PastryNode::start_maintenance() {
  // Small per-node phase offset so the fleet does not exchange in
  // lock-step bursts. The timer is pinned to this node's LP: maintenance
  // touches only this node's routing state and sends via the network.
  maintenance_event_ = simulator_.call_after_on(
      std::size_t(addr_), kLeafMaintenanceFast + sim::usec(137) * (addr_ % 64),
      [this] { run_maintenance(); });
}

void PastryNode::run_maintenance() {
  const auto leaves = leaves_.all();
  if (!leaves.empty()) {
    auto msg = std::make_shared<LeafSetExchange>();
    msg->sender = self();
    msg->leaves = leaves;
    const auto size = msg->wire_size();
    for (const PeerRef& leaf : leaves) {
      send_direct(leaf.addr, size, msg);
    }
  }
  // Probe aggressively while the ring is converging, then back off: a
  // healthy node's probe is a no-op round trip, so steady state only
  // needs enough probes to catch drift after churn.
  if (maintenance_rounds_ < kFastMaintenanceRounds ||
      maintenance_rounds_ % kSlowProbeEvery == 0) {
    send_neighbor_probe();
  }
  ++maintenance_rounds_;
  const auto interval = maintenance_rounds_ < kFastMaintenanceRounds
                            ? kLeafMaintenanceFast
                            : kLeafMaintenanceSlow;
  maintenance_event_ = simulator_.call_after_on(
      std::size_t(addr_), interval, [this] { run_maintenance(); });
}

void PastryNode::send_direct(sim::NodeIndex to, std::int64_t size,
                             sim::MessagePtr msg) {
  network_.send(addr_, to, size, std::move(msg));
}

void PastryNode::send_neighbor_probe() {
  // Hand a probe keyed by our own id to a rotating known peer; it routes
  // to whichever node currently believes it is root for our id. When our
  // state is consistent that is us (the probe comes straight back); when
  // it is not, the false root learns us and replies with its leaf set,
  // pulling us toward our true ring neighborhood.
  const auto peers = known_peers();
  if (peers.empty()) return;
  const PeerRef& via = peers[maintenance_rounds_ % peers.size()];
  auto m = std::make_shared<RoutedMessage>();
  m->key = id_;
  m->origin = self();
  m->inner = std::make_shared<NeighborProbe>();
  m->inner_size = NeighborProbe::kBytes;
  const auto size = m->wire_size();
  send_direct(via.addr, size, std::move(m));
}

void PastryNode::learn(const PeerRef& peer) {
  if (peer.addr == addr_) return;
  const bool new_leaf = leaves_.insert(peer);
  table_.insert(peer);
  // A newly accepted leaf is a ring neighbor that may not know us (the
  // "I see you, you don't see me" asymmetry that strands joiners seeded
  // with a stale neighborhood). Push our leaf set so discovery is
  // bidirectional; acceptance strictly shrinks a side's span, so the
  // cascade terminates.
  if (new_leaf && ready_) {
    auto msg = std::make_shared<LeafSetExchange>();
    msg->sender = self();
    msg->leaves = leaves_.all();
    const auto size = msg->wire_size();
    send_direct(peer.addr, size, std::move(msg));
  }
}

std::vector<PeerRef> PastryNode::known_peers() const {
  std::vector<PeerRef> out = leaves_.all();
  for (const PeerRef& p : table_.all()) {
    if (!std::any_of(out.begin(), out.end(), [&p](const PeerRef& q) {
          return q.addr == p.addr;
        })) {
      out.push_back(p);
    }
  }
  return out;
}

PeerRef PastryNode::next_hop(const NodeId128& key) const {
  // Case 1: key within leaf-set range -> numerically closest leaf or self.
  if (leaves_.covers(key)) {
    return leaves_.closest(key, addr_);
  }
  // Case 2: routing table entry for the next digit.
  const int row = id_.shared_prefix_len(key);
  const int col = key.digit(row);
  if (const auto e = table_.entry(row, col)) {
    return *e;
  }
  // Case 3 (rare): any known node with at least as long a shared prefix
  // that is numerically closer to the key than self.
  PeerRef best = self();
  for (const PeerRef& p : known_peers()) {
    if (p.id.shared_prefix_len(key) >= row && p.id.closer_to(key, best.id)) {
      best = p;
    }
  }
  return best;
}

void PastryNode::route(const NodeId128& key, sim::MessagePtr inner,
                       std::int64_t inner_size) {
  auto m = std::make_shared<RoutedMessage>();
  m->key = key;
  m->origin = self();
  m->hops = 0;
  m->inner = std::move(inner);
  m->inner_size = inner_size;
  handle_routed(*m);
}

void PastryNode::forward(const RoutedMessage& m) {
  const PeerRef next = next_hop(m.key);
  if (next.addr == addr_) {
    deliver_at_root(m);
    return;
  }
  if (m.hops >= RoutedMessage::kMaxHops) {
    RASC_LOG(kWarn) << "node " << addr_ << ": dropping routed "
                    << (m.inner ? m.inner->kind() : "null") << " for key "
                    << m.key.to_hex() << " after " << m.hops << " hops";
    return;
  }
  auto fwd = std::make_shared<RoutedMessage>(m);
  fwd->hops = m.hops + 1;
  const auto size = fwd->wire_size();
  send_direct(next.addr, size, std::move(fwd));
}

void PastryNode::handle_routed(const RoutedMessage& m) {
  // A routed join triggers state transfer from every node on the path.
  if (const auto* join = dynamic_cast<const JoinRequest*>(m.inner.get())) {
    const PeerRef next = next_hop(m.key);
    const bool is_root = (next.addr == addr_);
    send_join_state(join->joiner, is_root);
    learn(join->joiner);
    if (!is_root) forward(m);
    return;
  }
  forward(m);
}

void PastryNode::deliver_at_root(const RoutedMessage& m) {
  const auto& inner = m.inner;
  if (dynamic_cast<const NeighborProbe*>(inner.get()) != nullptr) {
    if (m.origin.addr != addr_) {
      learn(m.origin);
      auto reply = std::make_shared<LeafSetExchange>();
      reply->sender = self();
      reply->leaves = leaves_.all();
      const auto size = reply->wire_size();
      send_direct(m.origin.addr, size, std::move(reply));
    }
    return;
  }
  if (const auto* put = dynamic_cast<const DhtPut*>(inner.get())) {
    auto& values = store_[put->key];
    if (!put->append) values.clear();
    if (std::find(values.begin(), values.end(), put->value) ==
        values.end()) {
      values.push_back(put->value);
    }
    replicate_to_leaves(put->key);
    auto ack = std::make_shared<DhtAck>();
    ack->request_id = put->request_id;
    send_direct(put->requester.addr, DhtAck::kBytes, std::move(ack));
    return;
  }
  if (const auto* get = dynamic_cast<const DhtGet*>(inner.get())) {
    auto reply = std::make_shared<DhtGetReply>();
    reply->request_id = get->request_id;
    const auto it = store_.find(get->key);
    reply->found = (it != store_.end());
    if (reply->found) reply->values = it->second;
    const auto size = reply->wire_size();
    send_direct(get->requester.addr, size, std::move(reply));
    return;
  }
  if (deliver_handler_) {
    deliver_handler_(m.key, m.inner, m.origin, m.hops);
  } else {
    RASC_LOG(kWarn) << "node " << addr_ << ": routed payload "
                    << (inner ? inner->kind() : "null")
                    << " delivered at root but no handler installed";
  }
}

void PastryNode::send_join_state(const PeerRef& joiner, bool as_root) {
  auto info = std::make_shared<JoinStateInfo>();
  info->sender = self();
  info->routing_entries = table_.all();
  if (as_root) {
    info->leaf_entries = leaves_.all();
    info->from_root = true;
  }
  const auto size = info->wire_size();
  send_direct(joiner.addr, size, std::move(info));
}

void PastryNode::join_via(sim::NodeIndex seed,
                          std::function<void(bool)> done) {
  assert(!ready_);
  join_done_ = std::move(done);
  join_timeout_event_ = simulator_.call_after(kRpcTimeout, [this] {
    if (ready_ || !join_done_) return;
    auto cb = std::move(join_done_);
    join_done_ = nullptr;
    cb(false);
  });

  auto join = std::make_shared<JoinRequest>();
  join->joiner = self();
  auto m = std::make_shared<RoutedMessage>();
  m->key = id_;
  m->origin = self();
  m->inner = std::move(join);
  m->inner_size = JoinRequest::kBytes;
  const auto size = m->wire_size();
  send_direct(seed, size, std::move(m));
}

void PastryNode::replicate_to_leaves(const NodeId128& key) {
  const auto it = store_.find(key);
  if (it == store_.end()) return;
  auto repl = std::make_shared<DhtReplicate>();
  repl->key = key;
  repl->values = it->second;
  const auto size = repl->wire_size();
  for (const PeerRef& leaf : leaves_.all()) {
    send_direct(leaf.addr, size, repl);
  }
}

void PastryNode::dht_put(const NodeId128& key, std::string value,
                         bool append, PutCallback done) {
  const RequestId rid = next_request_id();
  auto put = std::make_shared<DhtPut>();
  put->key = key;
  put->value = std::move(value);
  put->append = append;
  put->request_id = rid;
  put->requester = self();
  const auto inner_size = put->wire_size();

  PendingPut pending;
  pending.done = std::move(done);
  pending.timeout_event = simulator_.call_after(kRpcTimeout, [this, rid] {
    const auto it = pending_puts_.find(rid);
    if (it == pending_puts_.end()) return;
    auto cb = std::move(it->second.done);
    pending_puts_.erase(it);
    if (cb) cb(false);
  });
  pending_puts_.emplace(rid, std::move(pending));

  route(key, std::move(put), inner_size);
}

void PastryNode::dht_get(const NodeId128& key, GetCallback done) {
  const RequestId rid = next_request_id();
  auto get = std::make_shared<DhtGet>();
  get->key = key;
  get->request_id = rid;
  get->requester = self();

  PendingGet pending;
  pending.done = std::move(done);
  pending.timeout_event = simulator_.call_after(kRpcTimeout, [this, rid] {
    const auto it = pending_gets_.find(rid);
    if (it == pending_gets_.end()) return;
    auto cb = std::move(it->second.done);
    pending_gets_.erase(it);
    if (cb) cb(false, {});
  });
  pending_gets_.emplace(rid, std::move(pending));

  route(key, std::move(get), DhtGet::kBytes);
}

bool PastryNode::handle_packet(const sim::Packet& packet) {
  const auto& payload = packet.payload;
  if (const auto* routed = dynamic_cast<const RoutedMessage*>(payload.get())) {
    learn(routed->origin);
    handle_routed(*routed);
    return true;
  }
  if (const auto* info = dynamic_cast<const JoinStateInfo*>(payload.get())) {
    learn(info->sender);
    for (const PeerRef& p : info->routing_entries) learn(p);
    for (const PeerRef& p : info->leaf_entries) learn(p);
    if (info->from_root && !ready_) {
      ready_ = true;
      simulator_.cancel(join_timeout_event_);
      start_maintenance();
      // Announce ourselves to everyone we learned about so their state
      // includes us.
      auto ann = std::make_shared<Announce>();
      ann->who = self();
      for (const PeerRef& p : known_peers()) {
        send_direct(p.addr, Announce::kBytes, ann);
      }
      if (join_done_) {
        auto cb = std::move(join_done_);
        join_done_ = nullptr;
        cb(true);
      }
    }
    return true;
  }
  if (const auto* ann = dynamic_cast<const Announce*>(payload.get())) {
    learn(ann->who);
    return true;
  }
  if (const auto* lx = dynamic_cast<const LeafSetExchange*>(payload.get())) {
    learn(lx->sender);
    for (const PeerRef& p : lx->leaves) learn(p);
    return true;
  }
  if (const auto* ack = dynamic_cast<const DhtAck*>(payload.get())) {
    const auto it = pending_puts_.find(ack->request_id);
    if (it != pending_puts_.end()) {
      simulator_.cancel(it->second.timeout_event);
      auto cb = std::move(it->second.done);
      pending_puts_.erase(it);
      if (cb) cb(true);
    }
    return true;
  }
  if (const auto* reply = dynamic_cast<const DhtGetReply*>(payload.get())) {
    const auto it = pending_gets_.find(reply->request_id);
    if (it != pending_gets_.end()) {
      simulator_.cancel(it->second.timeout_event);
      auto cb = std::move(it->second.done);
      pending_gets_.erase(it);
      if (cb) cb(reply->found, reply->values);
    }
    return true;
  }
  if (const auto* repl = dynamic_cast<const DhtReplicate*>(payload.get())) {
    auto& values = store_[repl->key];
    for (const auto& v : repl->values) {
      if (std::find(values.begin(), values.end(), v) == values.end()) {
        values.push_back(v);
      }
    }
    return true;
  }
  return false;
}

void PastryNode::purge_peer(sim::NodeIndex peer_addr) {
  leaves_.remove(peer_addr);
  table_.remove(peer_addr);
}

}  // namespace rasc::overlay
