// Convenience construction of a whole overlay inside one simulation.
//
// Nodes join sequentially (the experiment scenarios build the overlay
// before any stream traffic starts, as the paper's deployment does); each
// join runs to completion before the next begins, so joins always see a
// consistent ring.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "overlay/pastry_node.hpp"

namespace rasc::overlay {

/// The built overlay: one PastryNode per simulated host, with network
/// handlers installed that feed overlay packets to the PastryNode and
/// anything else to a per-node fallback (installed by upper layers).
class Overlay {
 public:
  using Fallback = std::function<void(const sim::Packet&)>;

  PastryNode& at(std::size_t i) { return *nodes_[i]; }
  const PastryNode& at(std::size_t i) const { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }

  /// Installs the handler for non-overlay packets arriving at node `i`
  /// (stream data units, stats queries, ...).
  void set_fallback(std::size_t i, Fallback fallback);

 private:
  friend Overlay build_overlay(sim::Simulator&, sim::Network&, std::size_t);

  std::vector<std::unique_ptr<PastryNode>> nodes_;
  std::vector<std::shared_ptr<Fallback>> fallbacks_;
};

/// Builds and joins an overlay of `count` nodes over `network` (which must
/// have at least `count` hosts). Runs the simulator until all joins
/// complete; throws std::runtime_error if a join times out.
Overlay build_overlay(sim::Simulator& simulator, sim::Network& network,
                      std::size_t count);

}  // namespace rasc::overlay
