#include "overlay/node_id.hpp"

namespace rasc::overlay {

int NodeId128::digit(int i) const {
  // Digits 0..15 come from hi, 16..31 from lo; digit 0 is the topmost
  // nibble of hi.
  const std::uint64_t word = i < 16 ? hi : lo;
  const int shift = 60 - 4 * (i & 15);
  return int((word >> shift) & 0xF);
}

int NodeId128::shared_prefix_len(const NodeId128& other) const {
  for (int i = 0; i < kNumDigits; ++i) {
    if (digit(i) != other.digit(i)) return i;
  }
  return kNumDigits;
}

NodeId128 NodeId128::ring_sub(const NodeId128& other) const {
  NodeId128 out;
  out.lo = lo - other.lo;
  const std::uint64_t borrow = (lo < other.lo) ? 1 : 0;
  out.hi = hi - other.hi - borrow;
  return out;
}

NodeId128 NodeId128::ring_distance(const NodeId128& other) const {
  const NodeId128 forward = ring_sub(other);
  const NodeId128 backward = other.ring_sub(*this);
  return forward < backward ? forward : backward;
}

bool NodeId128::closer_to(const NodeId128& target,
                          const NodeId128& other) const {
  const NodeId128 da = ring_distance(target);
  const NodeId128 db = other.ring_distance(target);
  if (da != db) return da < db;
  return *this < other;
}

std::string NodeId128::to_hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(kNumDigits);
  for (int i = 0; i < kNumDigits; ++i) out.push_back(kHex[digit(i)]);
  return out;
}

NodeId128 NodeId128::from_digest(const util::Sha1Digest& d) {
  NodeId128 id;
  for (int i = 0; i < 8; ++i) {
    id.hi = (id.hi << 8) | d[std::size_t(i)];
    id.lo = (id.lo << 8) | d[std::size_t(i + 8)];
  }
  return id;
}

NodeId128 NodeId128::hash_of(std::string_view s) {
  return from_digest(util::sha1(s));
}

}  // namespace rasc::overlay
