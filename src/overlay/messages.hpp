// Overlay wire messages.
//
// All overlay control traffic flows through the simulated network as typed
// immutable payloads. Sizes are modelled explicitly (bytes on the wire) so
// control traffic consumes real bandwidth in the simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "overlay/state.hpp"
#include "sim/message.hpp"

namespace rasc::overlay {

using RequestId = std::uint64_t;

/// Envelope for prefix-routed traffic. Forwarded hop by hop toward the
/// node whose id is numerically closest to `key` (the "root").
struct RoutedMessage final : sim::Message {
  const char* kind() const override { return "overlay.routed"; }

  NodeId128 key;
  PeerRef origin;            // initiating node
  int hops = 0;              // incremented per forward
  /// Defense against transient routing loops while state converges: a
  /// message exceeding this hop count is dropped (the requester's RPC
  /// timeout turns it into a retry).
  static constexpr int kMaxHops = 32;
  sim::MessagePtr inner;     // payload delivered at the root
  std::int64_t inner_size = 0;

  static constexpr std::int64_t kEnvelopeBytes = 48;
  std::int64_t wire_size() const { return kEnvelopeBytes + inner_size; }
};

/// Inner payload of a routed join: announces `joiner` and triggers state
/// transfer from every node along the route.
struct JoinRequest final : sim::Message {
  const char* kind() const override { return "overlay.join_request"; }
  PeerRef joiner;
  static constexpr std::int64_t kBytes = 24;
};

/// State transfer to a joining node, sent directly by each node on the
/// join route. The root also includes its leaf set and sets `from_root`.
struct JoinStateInfo final : sim::Message {
  const char* kind() const override { return "overlay.join_state"; }
  PeerRef sender;
  std::vector<PeerRef> routing_entries;
  std::vector<PeerRef> leaf_entries;  // only from the root
  bool from_root = false;

  std::int64_t wire_size() const {
    return 32 + std::int64_t(routing_entries.size() + leaf_entries.size()) *
                    24;
  }
};

/// Periodic leaf-set exchange (Pastry leaf maintenance): each node sends
/// its leaf set to its leaves so ring neighborhoods converge even when a
/// join's state transfer was incomplete, and stale entries get refreshed.
struct LeafSetExchange final : sim::Message {
  const char* kind() const override { return "overlay.leaf_exchange"; }
  PeerRef sender;
  std::vector<PeerRef> leaves;

  std::int64_t wire_size() const {
    return 24 + std::int64_t(leaves.size()) * 24;
  }
};

/// Routed neighborhood repair probe (inner payload; the prober is the
/// envelope's origin). A node periodically routes a probe keyed by its own
/// id via a rotating known peer; whichever node delivers it as root learns
/// the prober and replies with its leaf set. Unlike the push-only leaf
/// exchange this has global reach through prefix routing, so a node whose
/// join seeded the wrong neighborhood still converges to its true ring
/// position instead of staying invisible to its real neighbors.
struct NeighborProbe final : sim::Message {
  const char* kind() const override { return "overlay.neighbor_probe"; }
  static constexpr std::int64_t kBytes = 8;
};

/// A node announcing itself to a peer it learned about while joining.
struct Announce final : sim::Message {
  const char* kind() const override { return "overlay.announce"; }
  PeerRef who;
  static constexpr std::int64_t kBytes = 24;
};

/// DHT write (routed). `append` selects append-to-list vs replace
/// semantics; the service registry appends provider addresses.
struct DhtPut final : sim::Message {
  const char* kind() const override { return "overlay.dht_put"; }
  NodeId128 key;
  std::string value;
  bool append = true;
  RequestId request_id = 0;
  PeerRef requester;

  std::int64_t wire_size() const { return 48 + std::int64_t(value.size()); }
};

/// Replication of stored values to leaf-set neighbours (fire and forget).
struct DhtReplicate final : sim::Message {
  const char* kind() const override { return "overlay.dht_replicate"; }
  NodeId128 key;
  std::vector<std::string> values;

  std::int64_t wire_size() const {
    std::int64_t n = 32;
    for (const auto& v : values) n += std::int64_t(v.size()) + 4;
    return n;
  }
};

/// Acknowledgement of a DhtPut, sent directly to the requester.
struct DhtAck final : sim::Message {
  const char* kind() const override { return "overlay.dht_ack"; }
  RequestId request_id = 0;
  static constexpr std::int64_t kBytes = 16;
};

/// DHT read (routed).
struct DhtGet final : sim::Message {
  const char* kind() const override { return "overlay.dht_get"; }
  NodeId128 key;
  RequestId request_id = 0;
  PeerRef requester;
  static constexpr std::int64_t kBytes = 48;
};

/// Reply to a DhtGet, sent directly to the requester.
struct DhtGetReply final : sim::Message {
  const char* kind() const override { return "overlay.dht_get_reply"; }
  RequestId request_id = 0;
  bool found = false;
  std::vector<std::string> values;

  std::int64_t wire_size() const {
    std::int64_t n = 24;
    for (const auto& v : values) n += std::int64_t(v.size()) + 4;
    return n;
  }
};

}  // namespace rasc::overlay
