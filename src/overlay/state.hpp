// Pastry per-node routing state: routing table + leaf set.
//
// We implement the two structures Pastry routing correctness depends on.
// The proximity-based neighborhood set (an optimization for locality-aware
// table maintenance) is deliberately omitted: RASC only relies on reachable
// O(log N) routing and correct root selection, both of which come from the
// leaf set + routing table. Documented in DESIGN.md.
#pragma once

#include <optional>
#include <vector>

#include "overlay/node_id.hpp"
#include "sim/message.hpp"

namespace rasc::overlay {

/// A known peer: overlay id + underlay address.
struct PeerRef {
  NodeId128 id;
  sim::NodeIndex addr = sim::kInvalidNode;

  friend bool operator==(const PeerRef&, const PeerRef&) = default;
};

/// The leaf set: the L/2 numerically closest peers on each side of the
/// ring. With L=8 and small overlays it may hold every node, which matches
/// Pastry behaviour (routing then resolves in one hop).
class LeafSet {
 public:
  static constexpr std::size_t kHalf = 4;  // L/2 per side (L = 8)

  explicit LeafSet(NodeId128 self) : self_(self) {}

  /// Inserts a peer; keeps only the kHalf closest per side. Returns true
  /// if the peer is now in the set.
  bool insert(const PeerRef& peer);

  /// Removes a peer by address. Returns true if something was removed.
  bool remove(sim::NodeIndex addr);

  bool contains(sim::NodeIndex addr) const;

  /// True if `key` falls within [leftmost leaf, rightmost leaf] on the
  /// ring (the Pastry "leaf set range" test). Always true when the set
  /// spans the whole ring or is empty (then self is the best we know).
  bool covers(const NodeId128& key) const;

  /// The peer (or self, represented by addr == self_addr) numerically
  /// closest to `key` among self and all leaves.
  PeerRef closest(const NodeId128& key, sim::NodeIndex self_addr) const;

  /// All leaves, clockwise side then counterclockwise side.
  std::vector<PeerRef> all() const;

  std::size_t size() const { return cw_.size() + ccw_.size(); }
  const std::vector<PeerRef>& clockwise() const { return cw_; }
  const std::vector<PeerRef>& counterclockwise() const { return ccw_; }

 private:
  NodeId128 self_;
  // Sorted by ring distance from self (ascending), at most kHalf each.
  std::vector<PeerRef> cw_;   // ids clockwise of self (id - self small)
  std::vector<PeerRef> ccw_;  // ids counterclockwise (self - id small)
};

/// The prefix-routing table: kNumDigits rows × kDigitValues columns.
/// Row r holds peers sharing exactly r leading digits with self; the
/// column is the peer's digit at position r.
class RoutingTable {
 public:
  explicit RoutingTable(NodeId128 self) : self_(self) {}

  /// Inserts a peer into its (row, col) slot if the slot is empty or the
  /// new peer wins the deterministic tiebreak (smaller id). Self and
  /// duplicates are ignored. Returns true if the table changed.
  bool insert(const PeerRef& peer);

  bool remove(sim::NodeIndex addr);

  /// Entry for routing a key whose first mismatch with self is at `row`
  /// and whose digit there is `col`.
  std::optional<PeerRef> entry(int row, int col) const;

  /// Every populated entry (for join-state transfer and tests).
  std::vector<PeerRef> all() const;

  std::size_t size() const;

 private:
  static std::size_t slot(int row, int col) {
    return std::size_t(row) * kDigitValues + std::size_t(col);
  }

  NodeId128 self_;
  std::vector<std::optional<PeerRef>> slots_ =
      std::vector<std::optional<PeerRef>>(kNumDigits * kDigitValues);
};

}  // namespace rasc::overlay
