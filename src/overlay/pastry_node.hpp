// A Pastry overlay node: prefix routing, join protocol, and a replicated
// DHT used by RASC for component discovery (paper §3.3).
//
// One PastryNode lives on each simulated host. It consumes overlay packets
// (handle_packet returns true) and leaves everything else to upper layers
// (resource monitor, stream runtime), which share the host's network
// handler via exp::Host.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "overlay/messages.hpp"
#include "overlay/state.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::overlay {

class PastryNode {
 public:
  /// Callback for DHT reads: (found, values).
  using GetCallback = std::function<void(bool, std::vector<std::string>)>;
  /// Callback for DHT writes: success flag.
  using PutCallback = std::function<void(bool)>;
  /// Callback when this node is the root for an application-routed key.
  using DeliverHandler =
      std::function<void(const NodeId128& key, const sim::MessagePtr& inner,
                         const PeerRef& origin, int hops)>;

  /// RPC timeout for DHT operations (generous vs simulated RTTs).
  static constexpr sim::SimDuration kRpcTimeout = sim::msec(2000);

  /// Leaf-set exchange cadence: fast while the ring is converging after
  /// a join, then slow to keep steady-state control overhead negligible.
  static constexpr sim::SimDuration kLeafMaintenanceFast = sim::msec(300);
  static constexpr sim::SimDuration kLeafMaintenanceSlow = sim::msec(2000);
  static constexpr int kFastMaintenanceRounds = 10;
  /// Slow-phase neighbor probes run every Nth maintenance round.
  static constexpr int kSlowProbeEvery = 4;

  PastryNode(sim::Simulator& simulator, sim::Network& network,
             sim::NodeIndex addr, NodeId128 id);
  ~PastryNode();

  PastryNode(const PastryNode&) = delete;
  PastryNode& operator=(const PastryNode&) = delete;

  const NodeId128& id() const { return id_; }
  sim::NodeIndex addr() const { return addr_; }
  PeerRef self() const { return PeerRef{id_, addr_}; }

  /// First node of the overlay: becomes ready immediately.
  void bootstrap_as_first();

  /// Joins via `seed` (an already-joined node). `done(success)` fires when
  /// the root's state transfer has been installed and announcements sent.
  void join_via(sim::NodeIndex seed, std::function<void(bool)> done);

  bool ready() const { return ready_; }

  /// Routes `inner` (of `inner_size` bytes) toward the root of `key`.
  void route(const NodeId128& key, sim::MessagePtr inner,
             std::int64_t inner_size);

  /// Handler invoked when this node is the root for a non-overlay inner
  /// payload (application use of routing).
  void set_deliver_handler(DeliverHandler handler) {
    deliver_handler_ = std::move(handler);
  }

  // --- DHT ---
  void dht_put(const NodeId128& key, std::string value, bool append,
               PutCallback done);
  void dht_get(const NodeId128& key, GetCallback done);

  /// Values this node stores locally as a root or replica (tests).
  const std::map<NodeId128, std::vector<std::string>>& local_store() const {
    return store_;
  }

  /// Processes an incoming packet if it is overlay traffic.
  /// Returns false (untouched) for non-overlay payloads.
  bool handle_packet(const sim::Packet& packet);

  /// Forgets a failed peer everywhere (leaf set + routing table). Invoked
  /// by upper layers when a peer stops responding.
  void purge_peer(sim::NodeIndex peer_addr);

  // --- Introspection for tests and benchmarks ---
  const LeafSet& leaf_set() const { return leaves_; }
  const RoutingTable& routing_table() const { return table_; }
  /// All distinct peers this node knows about.
  std::vector<PeerRef> known_peers() const;
  /// The next hop this node would choose for `key` (no side effects).
  PeerRef next_hop(const NodeId128& key) const;

 private:
  void start_maintenance();
  void run_maintenance();
  void send_neighbor_probe();
  void forward(const RoutedMessage& m);
  void handle_routed(const RoutedMessage& m);
  void deliver_at_root(const RoutedMessage& m);
  void send_join_state(const PeerRef& joiner, bool as_root);
  void learn(const PeerRef& peer);
  void replicate_to_leaves(const NodeId128& key);
  RequestId next_request_id() { return ++request_counter_; }
  void send_direct(sim::NodeIndex to, std::int64_t size,
                   sim::MessagePtr msg);

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex addr_;
  NodeId128 id_;
  LeafSet leaves_;
  RoutingTable table_;
  bool ready_ = false;

  // Join in progress.
  std::function<void(bool)> join_done_;
  sim::EventId join_timeout_event_ = 0;
  sim::EventId maintenance_event_ = 0;
  int maintenance_rounds_ = 0;

  // DHT storage (root + replicas).
  std::map<NodeId128, std::vector<std::string>> store_;

  // Outstanding RPCs.
  struct PendingPut {
    PutCallback done;
    sim::EventId timeout_event;
  };
  struct PendingGet {
    GetCallback done;
    sim::EventId timeout_event;
  };
  std::unordered_map<RequestId, PendingPut> pending_puts_;
  std::unordered_map<RequestId, PendingGet> pending_gets_;
  RequestId request_counter_ = 0;

  DeliverHandler deliver_handler_;
};

}  // namespace rasc::overlay
