#include "overlay/registry.hpp"

#include <charconv>

namespace rasc::overlay {

NodeId128 ServiceRegistry::key_for(const std::string& service_name) {
  return NodeId128::hash_of("service:" + service_name);
}

void ServiceRegistry::register_provider(const std::string& service_name,
                                        sim::NodeIndex provider,
                                        PastryNode::PutCallback done) {
  node_.dht_put(key_for(service_name), std::to_string(provider),
                /*append=*/true, std::move(done));
}

void ServiceRegistry::lookup(const std::string& service_name,
                             LookupCallback done) {
  node_.dht_get(
      key_for(service_name),
      [done = std::move(done)](bool found, std::vector<std::string> values) {
        std::vector<sim::NodeIndex> providers;
        providers.reserve(values.size());
        for (const auto& v : values) {
          sim::NodeIndex idx = sim::kInvalidNode;
          const auto [ptr, ec] =
              std::from_chars(v.data(), v.data() + v.size(), idx);
          if (ec == std::errc() && idx >= 0) providers.push_back(idx);
        }
        done(found, std::move(providers));
      });
}

}  // namespace rasc::overlay
