#include "overlay/state.hpp"

#include <algorithm>

namespace rasc::overlay {

namespace {

/// Ascending ring-offset comparator around `self` in direction dir.
struct ByOffset {
  NodeId128 self;
  bool clockwise;
  bool operator()(const PeerRef& a, const PeerRef& b) const {
    const NodeId128 da =
        clockwise ? a.id.ring_sub(self) : self.ring_sub(a.id);
    const NodeId128 db =
        clockwise ? b.id.ring_sub(self) : self.ring_sub(b.id);
    if (da != db) return da < db;
    return a.id < b.id;
  }
};

}  // namespace

bool LeafSet::insert(const PeerRef& peer) {
  if (peer.id == self_) return false;
  if (contains(peer.addr)) return false;
  // A peer belongs to the side it is nearer on; when exactly antipodal we
  // put it clockwise (deterministic).
  const NodeId128 cw_off = peer.id.ring_sub(self_);
  const NodeId128 ccw_off = self_.ring_sub(peer.id);
  auto& side = (cw_off <= ccw_off) ? cw_ : ccw_;
  const bool clockwise = (cw_off <= ccw_off);
  side.push_back(peer);
  std::sort(side.begin(), side.end(), ByOffset{self_, clockwise});
  if (side.size() > kHalf) {
    const bool evicted_new = (side.back().addr == peer.addr);
    side.pop_back();
    if (evicted_new) return false;
  }
  return true;
}

bool LeafSet::remove(sim::NodeIndex addr) {
  auto drop = [addr](std::vector<PeerRef>& v) {
    const auto it = std::find_if(v.begin(), v.end(), [addr](const PeerRef& p) {
      return p.addr == addr;
    });
    if (it == v.end()) return false;
    v.erase(it);
    return true;
  };
  const bool a = drop(cw_);
  const bool b = drop(ccw_);
  return a || b;
}

bool LeafSet::contains(sim::NodeIndex addr) const {
  auto has = [addr](const std::vector<PeerRef>& v) {
    return std::any_of(v.begin(), v.end(), [addr](const PeerRef& p) {
      return p.addr == addr;
    });
  };
  return has(cw_) || has(ccw_);
}

bool LeafSet::covers(const NodeId128& key) const {
  if (cw_.empty() && ccw_.empty()) return true;
  // Range spans from the farthest ccw leaf to the farthest cw leaf.
  const NodeId128 key_cw = key.ring_sub(self_);
  const NodeId128 key_ccw = self_.ring_sub(key);
  const NodeId128 max_cw =
      cw_.empty() ? NodeId128{} : cw_.back().id.ring_sub(self_);
  const NodeId128 max_ccw =
      ccw_.empty() ? NodeId128{} : self_.ring_sub(ccw_.back().id);
  // Key is in range if its offset on either side is within that side's
  // farthest leaf.
  if (key_cw <= key_ccw) return key_cw <= max_cw;
  return key_ccw <= max_ccw;
}

PeerRef LeafSet::closest(const NodeId128& key,
                         sim::NodeIndex self_addr) const {
  PeerRef best{self_, self_addr};
  for (const auto* side : {&cw_, &ccw_}) {
    for (const PeerRef& p : *side) {
      if (p.id.closer_to(key, best.id)) best = p;
    }
  }
  return best;
}

std::vector<PeerRef> LeafSet::all() const {
  std::vector<PeerRef> out = cw_;
  out.insert(out.end(), ccw_.begin(), ccw_.end());
  return out;
}

bool RoutingTable::insert(const PeerRef& peer) {
  if (peer.id == self_) return false;
  const int row = self_.shared_prefix_len(peer.id);
  if (row >= kNumDigits) return false;  // identical id
  const int col = peer.id.digit(row);
  auto& s = slots_[slot(row, col)];
  if (s && s->addr == peer.addr) return false;
  if (s && !(peer.id < s->id)) return false;  // deterministic keep-smaller
  s = peer;
  return true;
}

bool RoutingTable::remove(sim::NodeIndex addr) {
  bool removed = false;
  for (auto& s : slots_) {
    if (s && s->addr == addr) {
      s.reset();
      removed = true;
    }
  }
  return removed;
}

std::optional<PeerRef> RoutingTable::entry(int row, int col) const {
  if (row < 0 || row >= kNumDigits || col < 0 || col >= kDigitValues) {
    return std::nullopt;
  }
  return slots_[slot(row, col)];
}

std::vector<PeerRef> RoutingTable::all() const {
  std::vector<PeerRef> out;
  for (const auto& s : slots_) {
    if (s) out.push_back(*s);
  }
  return out;
}

std::size_t RoutingTable::size() const {
  std::size_t n = 0;
  for (const auto& s : slots_) {
    if (s) ++n;
  }
  return n;
}

}  // namespace rasc::overlay
