// 128-bit Pastry identifiers.
//
// Pastry (Rowstron & Druschel, Middleware 2001) assigns each node and each
// object a 128-bit id; routing resolves one base-2^b digit per hop (we use
// b = 4, so ids are 32 hex digits and the routing table has 32 rows × 16
// columns). Ids are derived from SHA-1 digests (paper §3.3).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/sha1.hpp"

namespace rasc::overlay {

/// Digits per id and values per digit for b = 4.
constexpr int kIdBits = 128;
constexpr int kDigitBits = 4;
constexpr int kNumDigits = kIdBits / kDigitBits;  // 32
constexpr int kDigitValues = 1 << kDigitBits;     // 16

/// An unsigned 128-bit identifier on the Pastry ring.
struct NodeId128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend auto operator<=>(const NodeId128&, const NodeId128&) = default;

  /// Digit `i` (0 = most significant nibble).
  int digit(int i) const;

  /// Number of leading base-16 digits shared with `other` (0..32).
  int shared_prefix_len(const NodeId128& other) const;

  /// `this - other` mod 2^128 (ring arithmetic).
  NodeId128 ring_sub(const NodeId128& other) const;

  /// Circular distance: min(a-b, b-a) mod 2^128.
  NodeId128 ring_distance(const NodeId128& other) const;

  /// True if `this` is clockwise-closer to `target` than `other` is; ties
  /// broken toward the numerically smaller id (total order for
  /// determinism).
  bool closer_to(const NodeId128& target, const NodeId128& other) const;

  std::string to_hex() const;

  /// Id from a SHA-1 digest (first 16 bytes, big-endian).
  static NodeId128 from_digest(const util::Sha1Digest& d);

  /// Id by hashing an arbitrary string (object keys, service names).
  static NodeId128 hash_of(std::string_view s);
};

}  // namespace rasc::overlay
