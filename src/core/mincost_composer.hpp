// RASC's minimum-cost composition algorithm (paper §3.5, Algorithm 1).
//
// Per substream: build the layered flow network from discovered providers
// and monitored residual capacities, solve min-cost flow for exactly the
// required rate, read component selection AND per-component rate split off
// the flow, then update residual capacities before the next substream.
// A bounded repair loop tightens per-node capacity when one physical node
// serves several stages of the same substream (see DESIGN.md).
#pragma once

#include "core/composer.hpp"
#include "flow/ssp.hpp"

namespace rasc::core {

class LatencyModel;

class MinCostComposer final : public Composer {
 public:
  /// The capacity-repair loop accepts plans that overfill a node by up to
  /// this factor (scaling every violator to exactly its budget would
  /// oscillate). Capacity sources that must never be exceeded — e.g. a
  /// lease remainder backed by a hard node-side debit — should divide
  /// their advertised availability by this factor.
  static constexpr double kRepairTolerance = 1.02;

  struct Options {
    /// Shares below this fraction of the substream demand are folded into
    /// the largest placement of the stage.
    double min_share_fraction = 0.02;
    /// Max iterations of the per-node capacity repair loop.
    int max_repair_iterations = 10;
    /// Headroom factor applied to availabilities (1.0 = use everything).
    double utilization_target = 1.0;
    /// Ablation switch: restrict every stage to a single component
    /// instance (still cost-driven placement, but no rate splitting).
    /// Isolates the contribution of the paper's distinguishing feature.
    bool single_instance_per_stage = false;
    /// Multi-resource composition (the paper's §6 future work): also
    /// constrain candidate rates by the hosting node's CPU availability.
    bool consider_cpu = true;
    /// Drop ratio assumed for candidates whose snapshot carried zero drop
    /// outcomes (drop_samples == 0). An empty outcome window used to read
    /// as 0.0 — "measured drop-free" — which floods traffic onto unproven
    /// nodes; a nonzero prior prices that uncertainty. Default 0 keeps
    /// historical compositions bit-identical.
    double unknown_drop_prior = 0.0;
    /// Latency SLO admission (only consulted when the request carries a
    /// nonzero deadline_ms): CPU-saturated candidates are priced as
    /// unusable and plans whose predicted end-to-end latency exceeds the
    /// deadline are rejected. Null disables both checks.
    const LatencyModel* latency_model = nullptr;
  };

  MinCostComposer() = default;
  explicit MinCostComposer(Options options) : options_(options) {}

  const char* name() const override { return "mincost"; }
  ComposeResult compose(const ComposeInput& input) override;

 private:
  Options options_;
  /// Reusable solver: keeps Dijkstra workspaces and the adjacency snapshot
  /// across repair iterations, substreams, and requests.
  flow::SspSolver ssp_;
};

}  // namespace rasc::core
