#include "core/composition_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rasc::core {

namespace {

flow::FlowUnit to_flow_units(double delivered_ups) {
  if (delivered_ups <= 0) return 0;
  const double scaled = delivered_ups * CompositionGraph::kScale;
  if (scaled >= double(flow::kInfiniteCap)) return flow::kInfiniteCap;
  return flow::FlowUnit(std::floor(scaled));
}

flow::Cost to_cost(double drop_ratio, double utilization) {
  const double drop = std::clamp(drop_ratio, 0.0, 1.0);
  const double util = std::clamp(utilization, 0.0, 1.0);
  return flow::Cost(
      std::llround(drop * CompositionGraph::kCostScale +
                   util * CompositionGraph::kUtilizationCostScale));
}

}  // namespace

CompositionGraph::CompositionGraph(
    const std::vector<std::vector<CandidateCap>>& stages,
    double source_cap_delivered_ups, double dest_cap_delivered_ups,
    double demand_delivered_ups) {
  assert(!stages.empty());
  demand_ = to_flow_units(demand_delivered_ups);

  source_ = graph_.add_node();
  sink_ = graph_.add_node();
  const flow::NodeId source_gate = graph_.add_node();
  const flow::NodeId dest_gate = graph_.add_node();

  source_gate_arc_ = graph_.add_arc(
      source_, source_gate, to_flow_units(source_cap_delivered_ups), 0);
  dest_gate_arc_ = graph_.add_arc(dest_gate, sink_,
                                  to_flow_units(dest_cap_delivered_ups), 0);

  // Create candidate vertex pairs per stage.
  std::vector<std::vector<std::pair<flow::NodeId, flow::NodeId>>> vertices;
  stage_arcs_.resize(stages.size());
  vertices.resize(stages.size());
  for (std::size_t st = 0; st < stages.size(); ++st) {
    for (const CandidateCap& cand : stages[st]) {
      const flow::NodeId cin = graph_.add_node();
      const flow::NodeId cout = graph_.add_node();
      const flow::ArcId through = graph_.add_arc(
          cin, cout, to_flow_units(cand.max_delivered_ups),
          to_cost(cand.drop_ratio, cand.utilization));
      vertices[st].emplace_back(cin, cout);
      stage_arcs_[st].push_back(CandidateArcs{cand.node, through});
    }
  }

  // Wire the layers.
  for (std::size_t st = 0; st < stages.size(); ++st) {
    for (std::size_t j = 0; j < vertices[st].size(); ++j) {
      const auto [cin, cout] = vertices[st][j];
      if (st == 0) {
        graph_.add_arc(source_gate, cin, flow::kInfiniteCap, 0);
      } else {
        for (const auto& [prev_in, prev_out] : vertices[st - 1]) {
          (void)prev_in;
          graph_.add_arc(prev_out, cin, flow::kInfiniteCap, 0);
        }
      }
      if (st + 1 == stages.size()) {
        graph_.add_arc(cout, dest_gate, flow::kInfiniteCap, 0);
      }
    }
  }
}

void CompositionGraph::set_candidate_cap(int stage, int index,
                                         double delivered_ups) {
  const auto& arcs = stage_arcs_[std::size_t(stage)];
  graph_.set_capacity(arcs[std::size_t(index)].through_arc,
                      to_flow_units(delivered_ups));
}

void CompositionGraph::set_candidate_cost(int stage, int index,
                                          double drop_ratio,
                                          double utilization) {
  const auto& arcs = stage_arcs_[std::size_t(stage)];
  graph_.set_cost(arcs[std::size_t(index)].through_arc,
                  to_cost(drop_ratio, utilization));
}

flow::Cost CompositionGraph::unit_cost(double drop_ratio,
                                       double utilization) {
  return to_cost(drop_ratio, utilization);
}

flow::FlowUnit CompositionGraph::flow_units(double delivered_ups) {
  return to_flow_units(delivered_ups);
}

void CompositionGraph::set_source_cap(double delivered_ups) {
  graph_.set_capacity(source_gate_arc_, to_flow_units(delivered_ups));
}

void CompositionGraph::set_dest_cap(double delivered_ups) {
  graph_.set_capacity(dest_gate_arc_, to_flow_units(delivered_ups));
}

double CompositionGraph::candidate_flow_ups(int stage, int index) const {
  const auto& arcs = stage_arcs_[std::size_t(stage)];
  return double(graph_.flow(arcs[std::size_t(index)].through_arc)) / kScale;
}

std::vector<std::vector<runtime::Placement>> CompositionGraph::extract_shares(
    double min_share_fraction) const {
  std::vector<std::vector<runtime::Placement>> out(stage_arcs_.size());
  const double min_share =
      min_share_fraction * double(demand_) / kScale;
  for (std::size_t st = 0; st < stage_arcs_.size(); ++st) {
    auto& placements = out[st];
    for (const auto& cand : stage_arcs_[st]) {
      const double ups = double(graph_.flow(cand.through_arc)) / kScale;
      if (ups <= 0) continue;
      placements.push_back(runtime::Placement{cand.node, ups});
    }
    if (placements.empty()) continue;
    // Fold micro-slivers into the largest share.
    auto largest = std::max_element(
        placements.begin(), placements.end(),
        [](const runtime::Placement& a, const runtime::Placement& b) {
          return a.rate_units_per_sec < b.rate_units_per_sec;
        });
    const std::size_t largest_idx =
        std::size_t(largest - placements.begin());
    std::vector<runtime::Placement> kept;
    double folded = 0;
    for (std::size_t j = 0; j < placements.size(); ++j) {
      if (j != largest_idx &&
          placements[j].rate_units_per_sec < min_share) {
        folded += placements[j].rate_units_per_sec;
      } else {
        kept.push_back(placements[j]);
      }
    }
    for (auto& p : kept) {
      if (p.node == placements[largest_idx].node) {
        p.rate_units_per_sec += folded;
        break;
      }
    }
    out[st] = std::move(kept);
  }
  return out;
}

}  // namespace rasc::core
