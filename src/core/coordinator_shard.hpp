// Coordinator shard: batched admission against a leased capacity view.
//
// The sharded control plane replaces the one-coordinator-per-request
// model with K coordinator shards, each on its own home node. Apps hash
// to exactly one shard; the shard queues incoming requests, and on a
// fixed batch cadence drains the queue, composing every pending request
// against ONE snapshot of its lease view (see core/lease_manager.hpp) —
// no per-request stats round-trips on the admission path. The order the
// batch is admitted in is a pluggable policy: FIFO, smallest demand
// first (maximize admission count), or highest value first (maximize
// admitted rate).
//
// Contention between shards is resolved by the node-side lease granters:
// a deploy spending a stale or overdrawn lease NACKs, the shard
// invalidates its view of the NACKing nodes, refreshes stats with a
// short scoped query, and re-composes the app against what remains of
// its lease (the failed attempt's view debits are NOT re-credited inline
// — landed deploys free node bandwidth only when the rollback teardown
// reaches them, so the funds come back with the next renewal) — the
// epoch/dedup machinery of the deploy protocol guarantees the losing
// attempt's partial state is rolled back exactly once.
//
// Determinism: everything runs on the home node's LP (batch timers
// pinned, packets arrive there); outcome callbacks hop through
// Simulator::exclusive exactly like unsharded submissions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/composer.hpp"
#include "core/coordinator.hpp"
#include "core/lease_manager.hpp"
#include "core/plan_math.hpp"
#include "monitor/stats_protocol.hpp"
#include "obs/metric_registry.hpp"
#include "overlay/pastry_node.hpp"
#include "overlay/registry.hpp"
#include "runtime/rehome_messages.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rasc::runtime {
class LeaseGranter;
}

namespace rasc::core {

/// Routes a request to its owning shard's admission queue. Carries the
/// submitting host's outcome callback as a same-process convenience (the
/// simulation never serializes callbacks; wire size models the request).
struct SubmitShardMsg final : sim::Message {
  const char* kind() const override { return "core.submit_shard"; }
  ServiceRequest request;
  sim::SimTime stream_start = 0;
  sim::SimTime stream_stop = 0;
  Coordinator::Callback done;

  std::int64_t wire_size() const {
    std::int64_t services = 0;
    for (const auto& ss : request.substreams) {
      services += std::int64_t(ss.services.size());
    }
    return 64 + std::int64_t(request.substreams.size()) * 16 +
           services * 16;
  }
};

enum class AdmissionPolicy {
  kFifo,            // arrival order
  kSmallestDemand,  // ascending total requested rate
  kHighestValue,    // descending total requested rate
};

/// Parses "fifo" / "smallest-demand" / "highest-value"; throws
/// std::invalid_argument otherwise.
AdmissionPolicy parse_admission_policy(const std::string& name);

class CoordinatorShard {
 public:
  struct Params {
    std::int32_t shard = 0;
    /// Fleet size (the lease view covers every node).
    std::size_t nodes = 0;
    /// Queue drain cadence; all requests pending at a tick are composed
    /// against one lease-view snapshot.
    sim::SimDuration batch_window = sim::msec(100);
    AdmissionPolicy policy = AdmissionPolicy::kFifo;
    /// Re-compositions attempted after a lease-contention NACK before
    /// the request is rejected.
    int repair_attempts = 2;
    /// Reply deadline of the scoped stats refresh on the repair path.
    sim::SimDuration refresh_timeout = sim::msec(500);
    /// Times a request whose composition fails against the current view
    /// is re-queued (after an off-cycle renewal enlarges the shard's
    /// grants) before the failure is final. Covers cold or recently-idle
    /// shards whose grants shrank to the idle floor.
    int capacity_retries = 3;
    /// Delay before a capacity-retried request rejoins the queue: long
    /// enough for the renewal round-trip its retry depends on.
    sim::SimDuration retry_delay = sim::msec(600);
    LeaseManager::Params lease;

    // --- Standby mode (shard re-homing) ---
    /// This instance shadows `primary_home` from its own node: it stays
    /// dormant (no leases, no batches) until its local granter reports
    /// the primary's lease lapsed, then takes the shard over — fencing
    /// the primary with a takeover epoch, reconstructing the shard's
    /// state from the fleet, and adopting the orphaned apps.
    bool standby = false;
    sim::NodeIndex primary_home = sim::kInvalidNode;
    /// Watchdog poll period of the local holder_suspect signal.
    sim::SimDuration standby_check = sim::msec(500);
    /// Reply-collection window of the reconstruction broadcast; replies
    /// arriving later are ignored (deterministic adoption deadline).
    sim::SimDuration reconstruct_timeout = sim::sec(1);
    /// Deadline stamped on adopted requests: the original SLO is not
    /// recoverable from runtime state, so the plane's configured default
    /// applies.
    double default_deadline_ms = 0;
  };

  /// Adoption callout: the experiment runner re-attaches supervision and
  /// rate adaptation for an app this shard adopted (mirrors what it does
  /// for a freshly admitted submission). `home` is the adopting shard's
  /// home node; `providers` the re-discovered service provider lists.
  using AdoptHandler = std::function<void(
      sim::NodeIndex home, const ServiceRequest& request,
      const runtime::AppPlan& plan,
      const std::map<std::string, std::vector<sim::NodeIndex>>& providers,
      sim::SimTime stream_stop)>;

  /// `coordinator` is the home node's (phase-4 deployment) coordinator,
  /// `composer` this shard's private composition algorithm. `registry`
  /// is the deployment-wide metric registry; shard.* cells are labeled
  /// with the home node.
  CoordinatorShard(sim::Simulator& simulator, sim::Network& network,
                   overlay::PastryNode& pastry, monitor::StatsAgent& stats,
                   Coordinator& coordinator,
                   const runtime::ServiceCatalog& catalog,
                   std::unique_ptr<Composer> composer, Params params,
                   obs::MetricRegistry* registry = nullptr);

  CoordinatorShard(const CoordinatorShard&) = delete;
  CoordinatorShard& operator=(const CoordinatorShard&) = delete;

  /// Starts lease renewals and the batch drain cadence at `at`.
  void start(sim::SimTime at);

  /// Consumes SubmitShardMsg and lease grant/revoke packets.
  bool handle_packet(const sim::Packet& packet);

  /// Which shard of `shards` owns `app` (stable hash, uniform).
  static std::int32_t shard_of(runtime::AppId app, int shards);

  /// Drain order of (seq, total demand kbps) entries under `policy`,
  /// as indices into `jobs` — exposed for unit tests.
  static std::vector<std::size_t> admission_order(
      AdmissionPolicy policy,
      const std::vector<std::pair<std::uint64_t, double>>& jobs);

  sim::NodeIndex home() const { return home_; }
  const LeaseManager& leases() const { return lease_; }
  LeaseManager& leases() { return lease_; }

  /// Wires in the home node's granter — the standby's death detector
  /// (its view of the primary's lease lapsing is the takeover trigger).
  void set_local_granter(const runtime::LeaseGranter* granter) {
    local_granter_ = granter;
  }
  void set_adopt_handler(AdoptHandler handler) {
    adopt_handler_ = std::move(handler);
  }
  /// False only for a dormant standby.
  bool active() const { return active_; }

 private:
  struct Job {
    ServiceRequest request;
    sim::SimTime stream_start = 0;
    sim::SimTime stream_stop = 0;
    sim::SimTime enqueued_at = 0;
    std::uint64_t seq = 0;
    Coordinator::Callback done;

    std::size_t lookups_outstanding = 0;
    std::map<std::string, std::vector<sim::NodeIndex>> provider_addrs;
    std::vector<std::string> failed_services;
    /// View-side debits of the last composed plan (returned on NACK).
    std::map<sim::NodeIndex, LeaseDebit> debits;
    int attempts = 0;
    int capacity_retries = 0;
  };
  using JobPtr = std::shared_ptr<Job>;

  /// Pending adoption: the rebuilt request/plan waiting on provider
  /// re-discovery before the adopt handler fires.
  struct AdoptDiscovery {
    ServiceRequest request;
    runtime::AppPlan plan;
    std::map<std::string, std::vector<sim::NodeIndex>> providers;
    sim::SimTime stream_stop = 0;
    std::size_t outstanding = 0;
  };

  void enqueue(const SubmitShardMsg& msg);
  void lookup_with_retry(const JobPtr& job, const std::string& service,
                         int attempts_left);
  void drain();
  // --- Standby takeover state machine: suspect -> fence -> reconstruct
  // -> adopt (DESIGN.md §17) ---
  void standby_watch();
  void takeover();
  void adopt_collected();
  void adopt_app(runtime::AppId app);
  void adopt_discover(const ServiceRequest& request,
                      const runtime::AppPlan& plan, sim::SimTime stream_stop);
  /// Tears down the surviving fragments of an app whose reconstructed
  /// state cannot be adopted (a component or endpoint died with the
  /// primary): live sources of a broken chain keep emitting units that
  /// can never be delivered, and stranded components hold reservations
  /// nobody will release.
  void reclaim_app(runtime::AppId app, const std::set<sim::NodeIndex>& holders);
  /// Re-queues a job whose composition failed against the current view
  /// (bounded; fires an off-cycle renewal first). False when the retry
  /// budget is exhausted and the failure is final.
  bool retry_capacity(const JobPtr& job);
  void compose_and_dispatch(const JobPtr& job);
  void on_outcome(const JobPtr& job, const SubmitOutcome& outcome);
  void repair(const JobPtr& job, const SubmitOutcome& outcome);
  void reject(const JobPtr& job, ComposeResult result);

  sim::Simulator& simulator_;
  sim::Network& network_;
  overlay::ServiceRegistry registry_;
  monitor::StatsAgent& stats_;
  Coordinator& coordinator_;
  const runtime::ServiceCatalog& catalog_;
  std::unique_ptr<Composer> composer_;
  Params params_;
  sim::NodeIndex home_;
  LeaseManager lease_;

  std::vector<JobPtr> ready_;
  std::set<runtime::AppId> seen_apps_;
  std::uint64_t seq_counter_ = 0;

  /// False while a standby is dormant; flipped by takeover().
  bool active_ = true;
  const runtime::LeaseGranter* local_granter_ = nullptr;
  AdoptHandler adopt_handler_;
  sim::SimTime takeover_at_ = 0;
  std::uint64_t recover_request_id_ = 0;
  std::vector<runtime::ShardRecoverReplyMsg> recover_replies_;
  bool adopted_ = false;
  /// Source-rate demand submitted since the last renewal sweep, and its
  /// max-decayed value actually advertised (see the demand provider).
  double demand_window_kbps_ = 0;
  double demand_ewma_kbps_ = 0;

  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_;
  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* batches_;
  obs::Counter* repairs_;
  obs::Counter* retries_;
  obs::Histogram* batch_size_;
  obs::Histogram* latency_ms_;
  // Lazily-created re-homing cells: runs without standbys export
  // byte-identical snapshots.
  obs::Counter* rehomes_ = nullptr;
  obs::Counter* adopted_apps_ = nullptr;
  obs::Counter* reclaimed_apps_ = nullptr;
  obs::Histogram* rehome_time_ = nullptr;
};

}  // namespace rasc::core
