#include "core/coordinator.hpp"

#include <algorithm>

#include "core/backoff.hpp"
#include "runtime/deploy_messages.hpp"
#include "util/logging.hpp"

namespace rasc::core {

Coordinator::Coordinator(sim::Simulator& simulator, sim::Network& network,
                         overlay::PastryNode& pastry,
                         monitor::StatsAgent& stats,
                         const runtime::ServiceCatalog& catalog,
                         obs::MetricRegistry* registry)
    : Coordinator(simulator, network, pastry, stats, catalog, registry,
                  DeployPolicy()) {}

Coordinator::Coordinator(sim::Simulator& simulator, sim::Network& network,
                         overlay::PastryNode& pastry,
                         monitor::StatsAgent& stats,
                         const runtime::ServiceCatalog& catalog,
                         obs::MetricRegistry* registry, DeployPolicy policy)
    : simulator_(simulator),
      network_(network),
      pastry_(pastry),
      registry_(pastry),
      stats_(stats),
      catalog_(catalog),
      node_(pastry.addr()),
      owned_metrics_(registry ? nullptr
                              : std::make_unique<obs::MetricRegistry>()),
      metrics_(registry ? registry : owned_metrics_.get()),
      policy_(policy) {
  obs::Labels labels;
  labels.node = node_;
  submitted_ = &metrics_->counter("compose.submitted", labels);
  admitted_ = &metrics_->counter("compose.admitted", labels);
  rejected_ = &metrics_->counter("compose.rejected", labels);
  latency_ms_ = &metrics_->histogram("compose.latency_ms", labels);
}

Coordinator::~Coordinator() {
  for (auto& [rid, r] : retx_) {
    (void)rid;
    simulator_.cancel(r.timer);
  }
}

obs::Counter& Coordinator::lazy_counter(const char* name,
                                        obs::Counter*& slot) {
  if (slot == nullptr) {
    obs::Labels labels;
    labels.node = node_;
    slot = &metrics_->counter(name, labels);
  }
  return *slot;
}

void Coordinator::submit(const ServiceRequest& request, Composer& composer,
                         sim::SimTime stream_start, sim::SimTime stream_stop,
                         Callback done) {
  auto pending = std::make_shared<Pending>();
  pending->request = request;
  pending->composer = &composer;
  pending->submitted_at = simulator_.now();
  pending->stream_start = stream_start;
  pending->stream_stop = stream_stop;
  pending->done = std::move(done);
  pending->services = request.distinct_services();
  submitted_->add();

  if (auto err = request.validate(); !err.empty()) {
    pending->compose_result.error = err;
    finish(pending, false);
    return;
  }

  // Phase 1: discovery through the DHT (paper §3.1 step 1). Lookups can
  // time out when control traffic queues behind saturated access links;
  // each is retried a couple of times before the request is failed.
  pending->lookups_outstanding = pending->services.size();
  for (const auto& service : pending->services) {
    lookup_with_retry(pending, service, kDiscoveryAttempts);
  }
}

void Coordinator::submit_prepared(PreparedSubmit prepared) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(prepared.request);
  pending->submitted_at = prepared.submitted_at > 0 ? prepared.submitted_at
                                                    : simulator_.now();
  pending->stream_start = prepared.stream_start;
  pending->stream_stop = prepared.stream_stop;
  pending->done = std::move(prepared.done);
  pending->provider_addrs = std::move(prepared.providers);
  pending->compose_result = std::move(prepared.compose);
  pending->shard = prepared.shard;
  pending->lease_epoch_of = std::move(prepared.lease_epoch_of);
  submitted_->add();
  if (!pending->compose_result.admitted) {
    finish(pending, false);
    return;
  }
  deploy(pending);
}

void Coordinator::lookup_with_retry(const std::shared_ptr<Pending>& pending,
                                    const std::string& service,
                                    int attempts_left) {
  registry_.lookup(
      service, [this, pending, service, attempts_left](
                   bool found, std::vector<sim::NodeIndex> providers) {
        if ((!found || providers.empty()) && attempts_left > 1) {
          // Exponential spacing (300ms, 600ms, ...) instead of a fixed
          // beat: consecutive retries against a flapping overlay root
          // spread out rather than re-arriving in lockstep.
          const int failed_so_far = kDiscoveryAttempts - attempts_left;
          simulator_.call_after(
              capped_backoff(kDiscoveryBackoff, kDiscoveryBackoffMax,
                             failed_so_far),
              [this, pending, service, attempts_left] {
                lookup_with_retry(pending, service, attempts_left - 1);
              });
          return;
        }
        if (!found || providers.empty()) {
          pending->failed_services.push_back(service);
        } else {
          pending->provider_addrs[service] = std::move(providers);
        }
        if (--pending->lookups_outstanding == 0) {
          if (!pending->failed_services.empty()) {
            // Name every service that failed discovery, not just the one
            // whose callback happened to finish last.
            auto& failed = pending->failed_services;
            std::sort(failed.begin(), failed.end());
            std::string names;
            for (const auto& s : failed) {
              if (!names.empty()) names += ", ";
              names += s;
            }
            pending->compose_result.error =
                "service discovery failed for " + names;
            finish(pending, false);
          } else {
            start_stats_phase(pending);
          }
        }
      });
}

void Coordinator::start_stats_phase(const std::shared_ptr<Pending>& pending) {
  // Phase 2: gather utilization from every involved node (§3.1 step 2).
  std::set<sim::NodeIndex> targets;
  for (const auto& [service, addrs] : pending->provider_addrs) {
    (void)service;
    for (auto a : addrs) targets.insert(a);
  }
  targets.insert(pending->request.source);
  targets.insert(pending->request.destination);

  stats_.query_many(
      std::vector<sim::NodeIndex>(targets.begin(), targets.end()),
      [this, pending](std::vector<monitor::NodeStats> stats) {
        run_composition(pending, std::move(stats));
      });
}

void Coordinator::run_composition(const std::shared_ptr<Pending>& pending,
                                  std::vector<monitor::NodeStats> stats) {
  // Composition reads per-node state (provider stats were just gathered,
  // the composer consults catalog and capacity views) and the deploy it
  // triggers fans out messages to many nodes. Under a parallel simulation
  // this must not run interleaved with LP events, so defer it to an
  // exclusive slot (inline in serial mode).
  simulator_.exclusive([this, pending, s = std::move(stats)] {
    compose_and_deploy(pending, s);
  });
}

void Coordinator::compose_and_deploy(
    const std::shared_ptr<Pending>& pending,
    const std::vector<monitor::NodeStats>& stats) {
  // Phase 3: the composition algorithm itself (§3.1 step 3).
  std::map<sim::NodeIndex, monitor::NodeStats> by_node;
  for (const auto& s : stats) by_node[s.node] = s;

  ComposeInput input;
  input.request = pending->request;
  input.catalog = &catalog_;
  for (const auto& [service, addrs] : pending->provider_addrs) {
    auto& list = input.providers[service];
    for (auto a : addrs) {
      const auto it = by_node.find(a);
      if (it != by_node.end()) list.push_back(it->second);
    }
    if (list.empty()) {
      pending->compose_result.error =
          "no stats from any provider of " + service;
      finish(pending, false);
      return;
    }
  }
  const auto src_it = by_node.find(pending->request.source);
  const auto dst_it = by_node.find(pending->request.destination);
  if (src_it == by_node.end() || dst_it == by_node.end()) {
    pending->compose_result.error = "no stats from endpoints";
    finish(pending, false);
    return;
  }
  input.source_stats = src_it->second;
  input.destination_stats = dst_it->second;

  pending->compose_result = pending->composer->compose(input);
  if (!pending->compose_result.admitted) {
    finish(pending, false);
    return;
  }
  deploy(pending);
}

void Coordinator::arm_retransmit(std::uint64_t rid, sim::NodeIndex target,
                                 sim::MessagePtr msg, std::int64_t size) {
  if (policy_.retransmit_budget <= 0) return;
  Retransmit& r = retx_[rid];
  r.target = target;
  r.msg = std::move(msg);
  r.size = size;
  schedule_retransmit(rid);
}

void Coordinator::schedule_retransmit(std::uint64_t rid) {
  Retransmit& r = retx_.at(rid);
  r.timer = simulator_.call_after(
      capped_backoff(policy_.retransmit_base, policy_.retransmit_max,
                     r.attempts),
      [this, rid] {
        const auto it = retx_.find(rid);
        if (it == retx_.end()) return;  // acked meanwhile
        if (it->second.attempts >= policy_.retransmit_budget) {
          // Budget exhausted: stop resending; the deploy deadline (or
          // the receiver-side orphan reaper) decides the fate.
          retx_.erase(it);
          return;
        }
        ++it->second.attempts;
        lazy_counter("deploy.retries", retries_).add();
        network_.send(node_, it->second.target, it->second.size,
                      it->second.msg);
        schedule_retransmit(rid);
      });
}

void Coordinator::clear_retransmit(std::uint64_t rid) {
  const auto it = retx_.find(rid);
  if (it == retx_.end()) return;
  simulator_.cancel(it->second.timer);
  retx_.erase(it);
}

void Coordinator::roll_back(const std::shared_ptr<Pending>& pending) {
  lazy_counter("deploy.rollbacks", rollbacks_).add();
  RASC_LOG(kInfo) << "rolling back deployment of app "
                  << pending->compose_result.plan.app << " (epoch "
                  << pending->epoch << ") on "
                  << pending->deploy_targets.size() << " nodes";
  // Epoch-stamped so a teardown that overtakes (or races) this attempt's
  // retransmitted deploys tombstones them at the receiver. A *lost*
  // teardown leaves an orphan the receiver-side lease reaper collects.
  for (const auto target : pending->deploy_targets) {
    auto td = std::make_shared<runtime::TeardownAppMsg>();
    td->app = pending->compose_result.plan.app;
    td->epoch = pending->epoch;
    network_.send(node_, target, runtime::TeardownAppMsg::kBytes,
                  std::move(td));
  }
}

void Coordinator::deploy(const std::shared_ptr<Pending>& pending) {
  // Phase 4: instantiate components, sinks, then the sources (§3.1 step 4).
  const auto& plan = pending->compose_result.plan;
  pending->epoch = ++epoch_counter_;

  for (std::size_t ss = 0; ss < plan.substreams.size(); ++ss) {
    const auto& sub = plan.substreams[ss];
    double in_bytes = double(sub.unit_bytes);
    for (std::size_t st = 0; st < sub.stages.size(); ++st) {
      const auto& stage = sub.stages[st];
      // Downstream of this stage: next stage's placements or the sink.
      std::vector<runtime::Placement> next;
      if (st + 1 < sub.stages.size()) {
        next = sub.stages[st + 1].placements;
      } else {
        next.push_back(
            runtime::Placement{plan.destination, sub.rate_units_per_sec});
      }
      for (const auto& p : stage.placements) {
        auto msg = std::make_shared<runtime::DeployComponentMsg>();
        msg->key = runtime::ComponentKey{plan.app, std::int32_t(ss),
                                         std::int32_t(st)};
        msg->service = stage.service;
        msg->rate_units_per_sec = p.rate_units_per_sec;
        msg->in_unit_bytes = std::int64_t(in_bytes + 0.5);
        msg->next = next;
        msg->request_id = ++deploy_counter_;
        msg->requester = node_;
        msg->epoch = pending->epoch;
        if (pending->shard >= 0) {
          msg->shard = pending->shard;
          msg->lease_epoch = pending->lease_epoch_of
                                 ? pending->lease_epoch_of(p.node)
                                 : 0;
        }
        pending->awaiting_acks.insert(msg->request_id);
        ack_routing_[msg->request_id] = pending;
        pending->deploy_targets.insert(p.node);
        const auto size = msg->wire_size();
        const auto rid = msg->request_id;
        sim::MessagePtr payload = std::move(msg);
        network_.send(node_, p.node, size, payload);
        arm_retransmit(rid, p.node, std::move(payload), size);
      }
      in_bytes *= catalog_.get(stage.service).output_size_factor;
    }

    // Sink at the destination. `in_bytes` is now the delivered unit size.
    {
      auto msg = std::make_shared<runtime::DeploySinkMsg>();
      msg->app = plan.app;
      msg->substream = std::int32_t(ss);
      msg->rate_units_per_sec = sub.rate_units_per_sec;
      msg->unit_bytes = std::int64_t(in_bytes + 0.5);
      msg->request_id = ++deploy_counter_;
      msg->requester = node_;
      msg->epoch = pending->epoch;
      if (pending->shard >= 0) {
        msg->shard = pending->shard;
        msg->lease_epoch = pending->lease_epoch_of
                               ? pending->lease_epoch_of(plan.destination)
                               : 0;
      }
      pending->awaiting_acks.insert(msg->request_id);
      ack_routing_[msg->request_id] = pending;
      pending->deploy_targets.insert(plan.destination);
      const auto rid = msg->request_id;
      sim::MessagePtr payload = std::move(msg);
      network_.send(node_, plan.destination, runtime::DeploySinkMsg::kBytes,
                    payload);
      arm_retransmit(rid, plan.destination, std::move(payload),
                     runtime::DeploySinkMsg::kBytes);
    }
  }

  pending->deploy_timeout =
      simulator_.call_after(kDeployTimeout, [this, pending] {
        if (pending->awaiting_acks.empty()) return;
        RASC_LOG(kWarn) << "deploy timed out for app "
                        << pending->request.app;
        for (auto rid : pending->awaiting_acks) {
          ack_routing_.erase(rid);
          clear_retransmit(rid);
        }
        pending->awaiting_acks.clear();
        if (policy_.rollback) roll_back(pending);
        pending->compose_result.admitted = false;
        pending->compose_result.error = "deployment timed out";
        finish(pending, false);
      });
}

bool Coordinator::handle_packet(const sim::Packet& packet) {
  const auto* ack =
      dynamic_cast<const runtime::DeployAck*>(packet.payload.get());
  if (ack == nullptr) return false;
  const auto it = ack_routing_.find(ack->request_id);
  if (it == ack_routing_.end()) {
    // Stale: a duplicate ack, or one for a deploy that already timed out.
    // Counted only under an explicit policy so legacy runs (where heavy
    // load can time deploys out too) keep byte-identical snapshots.
    if (policy_.enabled()) lazy_counter("deploy.stale_ack", stale_ack_).add();
    return true;
  }
  auto pending = it->second;
  ack_routing_.erase(it);
  clear_retransmit(ack->request_id);
  // Source acks only confirm delivery of the (fire-and-forget) source
  // start; the outcome was already reported when they went out.
  if (pending->sources_started) return true;
  pending->awaiting_acks.erase(ack->request_id);
  if (!ack->ok) {
    pending->any_nack = true;
    pending->nacked.push_back(packet.src);
  }

  if (pending->awaiting_acks.empty()) {
    simulator_.cancel(pending->deploy_timeout);
    if (pending->any_nack) {
      if (policy_.rollback) roll_back(pending);
      pending->compose_result.admitted = false;
      pending->compose_result.error = "a deployment was rejected";
      finish(pending, false);
      return true;
    }
    // All components and sinks are up: start the sources at the app's
    // source node (fire and forget; the source node is typically us).
    const auto& plan = pending->compose_result.plan;
    for (std::size_t ss = 0; ss < plan.substreams.size(); ++ss) {
      const auto& sub = plan.substreams[ss];
      auto msg = std::make_shared<runtime::DeploySourceMsg>();
      msg->app = plan.app;
      msg->substream = std::int32_t(ss);
      // The source emits stage-0 *input* units.
      msg->rate_units_per_sec = sub.stages.front().total_rate();
      msg->unit_bytes = sub.unit_bytes;
      msg->first_stage = sub.stages.front().placements;
      msg->start_at = pending->stream_start;
      msg->stop_at = pending->stream_stop;
      msg->request_id = ++deploy_counter_;
      msg->requester = node_;
      msg->epoch = pending->epoch;
      pending->deploy_targets.insert(plan.source);
      const auto size = msg->wire_size();
      const auto rid = msg->request_id;
      // Route the source ack so it is absorbed above instead of counting
      // as stale, and so it can stop its own retransmission ladder.
      ack_routing_[rid] = pending;
      sim::MessagePtr payload = std::move(msg);
      network_.send(node_, plan.source, size, payload);
      arm_retransmit(rid, plan.source, std::move(payload), size);
    }
    pending->sources_started = true;
    finish(pending, true);
  }
  return true;
}

void Coordinator::finish(const std::shared_ptr<Pending>& pending,
                         bool deployed) {
  SubmitOutcome outcome;
  outcome.compose = pending->compose_result;
  outcome.composition_latency = simulator_.now() - pending->submitted_at;
  if (deployed) outcome.providers = pending->provider_addrs;
  outcome.nacked = pending->nacked;
  (deployed ? admitted_ : rejected_)->add();
  latency_ms_->observe(double(outcome.composition_latency) / 1000.0);
  if (pending->done) pending->done(outcome);
}

}  // namespace rasc::core
