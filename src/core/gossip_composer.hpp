// Hop-by-hop composer over a gossip partial view (decentralized control
// plane; after Asaduzzaman & Maheswaran's hop-by-hop composition).
//
// Where MinCostComposer solves a global min-cost flow over the full
// discovery snapshot, this composer walks each substream's service chain
// stage by stage: at every stage it scores the capable providers by
// next-hop cost — propagation latency from the previous hop (plus the
// final hop to the destination at the last stage), observed drop ratio,
// and a soft load penalty from the gossip demand hints — and takes the
// cheapest, with bounded backtracking when a greedy prefix strands a
// later stage without capacity. Capacity accounting reuses the shared
// ResidualTracker, so multi-substream requests see their own earlier
// placements exactly as the centralized composers do.
//
// The composer itself is deterministic (ties break by node index); all
// placement variety comes from the view it is given.
#pragma once

#include <functional>
#include <map>

#include "core/composer.hpp"

namespace rasc::core {

class LatencyModel;

class GossipComposer : public Composer {
 public:
  /// One-way propagation latency between two nodes, in milliseconds.
  /// Null = latency-blind (cost degrades to drops + load only).
  using LatencyFn = std::function<double(sim::NodeIndex, sim::NodeIndex)>;

  struct Options {
    LatencyFn latency_ms;
    /// Extra candidate expansions allowed per substream beyond the pure
    /// greedy walk; 0 = plain greedy, fail on the first stranded stage.
    int backtrack_budget = 8;
    /// Cost weights. Latency is in ms; drop ratio and load fraction are
    /// unitless in [0, 1], so their weights also set the exchange rate
    /// into milliseconds.
    double latency_weight = 1.0;
    double drop_weight = 200.0;
    double load_weight = 50.0;
    /// Drop prior for nodes whose snapshot held no drop outcomes.
    double drop_prior = 0.02;
    /// Latency SLO admission (only consulted when the request carries a
    /// nonzero deadline_ms): CPU-saturated candidates are skipped during
    /// the walk and chains whose predicted end-to-end latency exceeds the
    /// deadline are rejected. Null disables both checks.
    const LatencyModel* latency_model = nullptr;
  };

  explicit GossipComposer(Options options) : options_(std::move(options)) {}

  const char* name() const override { return "gossip"; }

  /// Outbound demand already committed per node (from the gossip view's
  /// demand hints); feeds the load penalty. Cleared state persists until
  /// the next call, so the control plane refreshes it before every
  /// compose.
  void set_load_hints(std::map<sim::NodeIndex, double> demand_kbps) {
    hints_ = std::move(demand_kbps);
  }

  ComposeResult compose(const ComposeInput& input) override;

  /// Candidate expansions beyond the greedy walk in the last compose()
  /// (tests: proves backtracking engaged / stayed within budget).
  int last_backtracks() const { return last_backtracks_; }

 private:
  double hop_cost(sim::NodeIndex from, sim::NodeIndex candidate,
                  sim::NodeIndex destination, bool last_stage,
                  const ResidualTracker& tracker) const;

  Options options_;
  std::map<sim::NodeIndex, double> hints_;
  int last_backtracks_ = 0;
};

}  // namespace rasc::core
