#include "core/mincost_composer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/composition_graph.hpp"
#include "core/plan_math.hpp"
#include "flow/ssp.hpp"
#include "util/logging.hpp"

namespace rasc::core {

namespace {

/// Per-node wire-bandwidth usage of a candidate share set within one
/// substream (for the repair pass).
struct NodeUsage {
  double in_kbps = 0;
  double out_kbps = 0;
  double cpu_fraction = 0;
};

std::map<sim::NodeIndex, NodeUsage> usage_of(
    const std::vector<std::vector<runtime::Placement>>& shares,
    const SubstreamMath& math) {
  std::map<sim::NodeIndex, NodeUsage> usage;
  for (std::size_t st = 0; st < shares.size(); ++st) {
    for (const auto& p : shares[st]) {
      auto& u = usage[p.node];
      u.in_kbps += math.wire_in_kbps(int(st), p.rate_units_per_sec);
      u.out_kbps += math.wire_out_kbps(int(st), p.rate_units_per_sec);
      u.cpu_fraction += math.in_ups(int(st), p.rate_units_per_sec) *
                        math.cpu_secs_per_in_unit(int(st));
    }
  }
  return usage;
}

}  // namespace

ComposeResult MinCostComposer::compose(const ComposeInput& input) {
  ComposeResult result;
  if (auto err = input.request.validate(); !err.empty()) {
    result.error = err;
    return result;
  }
  if (input.catalog == nullptr) {
    result.error = "no service catalog";
    return result;
  }

  ResidualTracker tracker(input);
  const auto& req = input.request;
  std::vector<std::vector<std::vector<runtime::Placement>>> all_shares;
  all_shares.reserve(req.substreams.size());

  for (std::size_t ss = 0; ss < req.substreams.size(); ++ss) {
    const auto& sub = req.substreams[ss];
    const SubstreamMath math(sub, *input.catalog, req.unit_bytes);
    const double demand = math.delivered_ups(sub.rate_kbps);
    const int k = math.num_stages();

    // Candidate capacities from residual availability.
    auto stages = std::vector<std::vector<CandidateCap>>(std::size_t(k));
    // Per (stage, candidate) multiplicative tightening factor used by the
    // repair loop.
    auto tighten = std::vector<std::vector<double>>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      const auto it = input.providers.find(sub.services[std::size_t(st)]);
      if (it == input.providers.end() || it->second.empty()) {
        result.error = "no providers for service " +
                       sub.services[std::size_t(st)];
        return result;
      }
      for (const auto& stats : it->second) {
        CandidateCap cand;
        cand.node = stats.node;
        cand.max_delivered_ups = math.max_delivered_ups(
            st,
            tracker.avail_in_kbps(stats.node) * options_.utilization_target,
            tracker.avail_out_kbps(stats.node) * options_.utilization_target,
            options_.consider_cpu
                ? tracker.avail_cpu_fraction(stats.node) *
                      options_.utilization_target
                : -1.0);
        cand.drop_ratio = tracker.drop_ratio(stats.node);
        const double cap_total =
            stats.capacity_in_kbps + stats.capacity_out_kbps;
        if (cap_total > 0) {
          cand.utilization = 1.0 - (tracker.avail_in_kbps(stats.node) +
                                    tracker.avail_out_kbps(stats.node)) /
                                       cap_total;
        }
        stages[std::size_t(st)].push_back(cand);
        tighten[std::size_t(st)].push_back(1.0);
      }
    }

    const double src_cap =
        tracker.avail_out_kbps(req.source) / math.wire_in_kbps(0, 1.0);
    const double dest_cap =
        tracker.avail_in_kbps(req.destination) / math.wire_in_kbps(k, 1.0);

    std::vector<std::vector<runtime::Placement>> shares;
    bool accepted = false;

    if (options_.single_instance_per_stage) {
      // Ablation mode: same cost model, but each stage must fit on one
      // node (cheapest candidate able to carry the full demand).
      if (src_cap < demand || dest_cap < demand) {
        result.error = "endpoint capacity short (no-split mode)";
        return result;
      }
      shares.assign(std::size_t(k), {});
      for (int st = 0; st < k; ++st) {
        const CandidateCap* best = nullptr;
        for (const auto& cand : stages[std::size_t(st)]) {
          if (cand.max_delivered_ups < demand) continue;
          if (best == nullptr ||
              std::make_pair(cand.drop_ratio, cand.utilization) <
                  std::make_pair(best->drop_ratio, best->utilization)) {
            best = &cand;
          }
        }
        if (best == nullptr) {
          result.error = "no single node can carry stage " +
                         std::to_string(st) + " (no-split mode)";
          return result;
        }
        shares[std::size_t(st)].push_back(
            runtime::Placement{best->node, demand});
      }
      accepted = true;
    }

    for (int iter = 0;
         !accepted && iter < options_.max_repair_iterations; ++iter) {
      // Apply tightening factors.
      auto caps = stages;
      for (int st = 0; st < k; ++st) {
        for (std::size_t j = 0; j < caps[std::size_t(st)].size(); ++j) {
          caps[std::size_t(st)][j].max_delivered_ups *=
              tighten[std::size_t(st)][j];
        }
      }
      CompositionGraph cg(caps, src_cap, dest_cap, demand);
      const auto solved = flow::min_cost_flow_ssp(
          cg.graph(), cg.source(), cg.sink(), cg.demand());
      if (!solved.feasible) {
        std::ostringstream os;
        os << "insufficient capacity for substream " << ss << ": routed "
           << solved.flow << "/" << demand * CompositionGraph::kScale
           << " (src_cap=" << src_cap << " dest_cap=" << dest_cap << ")";
        result.error = os.str();
        return result;
      }
      // Repair runs on the raw (unfolded) flow decomposition: folding
      // slivers first would shuffle rate between candidates and keep the
      // loop from converging. Folding is applied once a solution passes.
      const auto raw_shares = cg.extract_shares(0.0);

      // Repair: does any physical node exceed its residual budget because
      // it hosts instances at several stages of this substream?
      const auto usage = usage_of(raw_shares, math);
      bool violated = false;
      for (const auto& [node, u] : usage) {
        const double ai =
            tracker.avail_in_kbps(node) * options_.utilization_target;
        const double ao =
            tracker.avail_out_kbps(node) * options_.utilization_target;
        double factor = 1.0;
        if (u.in_kbps > ai * 1.02) factor = std::min(factor, ai / u.in_kbps);
        if (u.out_kbps > ao * 1.02) {
          factor = std::min(factor, ao / u.out_kbps);
        }
        if (factor < 1.0) {
          violated = true;
          // Tighten each of the node's *used* instances to its current
          // share scaled by the factor — this pins the node's total next
          // round to <= its budget, so the loop converges in O(1)
          // iterations instead of geometrically.
          for (int st = 0; st < k; ++st) {
            // Shares are in delivered ups, same units as candidate caps.
            double share_delivered = 0;
            for (const auto& p : raw_shares[std::size_t(st)]) {
              if (p.node == node) share_delivered = p.rate_units_per_sec;
            }
            if (share_delivered <= 0) continue;
            for (std::size_t j = 0; j < stages[std::size_t(st)].size();
                 ++j) {
              if (stages[std::size_t(st)][j].node != node) continue;
              const double original =
                  stages[std::size_t(st)][j].max_delivered_ups;
              if (original <= 0) continue;
              const double target = share_delivered * factor;
              tighten[std::size_t(st)][j] = std::min(
                  tighten[std::size_t(st)][j], target / original);
            }
          }
        }
      }
      if (!violated) {
        shares = cg.extract_shares(options_.min_share_fraction);
        result.objective += solved.cost;
        accepted = true;
        break;
      }
      RASC_LOG(kDebug) << "mincost repair iteration " << iter
                       << " for substream " << ss;
    }
    if (!accepted) {
      result.error = "capacity repair failed for substream " +
                     std::to_string(ss);
      return result;
    }

    // Algorithm 1: "Update the node capacities" before the next substream.
    for (const auto& [node, u] : usage_of(shares, math)) {
      tracker.consume(node, u.in_kbps, u.out_kbps, u.cpu_fraction);
    }
    tracker.consume(req.source, 0, math.wire_in_kbps(0, demand));
    tracker.consume(req.destination, math.wire_in_kbps(k, demand), 0);

    all_shares.push_back(std::move(shares));
  }

  result.plan = build_app_plan(req, *input.catalog, all_shares);
  result.admitted = true;
  return result;
}

}  // namespace rasc::core
