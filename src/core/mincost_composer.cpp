#include "core/mincost_composer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "core/composition_graph.hpp"
#include "core/latency_model.hpp"
#include "core/plan_math.hpp"
#include "util/logging.hpp"

namespace rasc::core {

namespace {

/// Per-node wire-bandwidth usage of a candidate share set within one
/// substream (for the repair pass).
struct NodeUsage {
  double in_kbps = 0;
  double out_kbps = 0;
  double cpu_fraction = 0;
  bool touched = false;
};

/// Flat-vector usage accumulator keyed by node index. Node indices are
/// dense world slots, so a vector + touched list beats a std::map in the
/// repair loop, which rebuilds usage on every iteration.
class NodeUsageTable {
 public:
  void reset() {
    for (const auto node : touched_) usage_[std::size_t(node)] = {};
    touched_.clear();
  }

  NodeUsage& at(sim::NodeIndex node) {
    const auto i = std::size_t(node);
    if (i >= usage_.size()) usage_.resize(i + 1);
    NodeUsage& u = usage_[i];
    if (!u.touched) {
      u.touched = true;
      touched_.push_back(node);
    }
    return u;
  }

  const NodeUsage& get(sim::NodeIndex node) const {
    return usage_[std::size_t(node)];
  }

  /// Nodes with nonzero usage, in first-touch order (deterministic).
  const std::vector<sim::NodeIndex>& touched() const { return touched_; }

  void accumulate(
      const std::vector<std::vector<runtime::Placement>>& shares,
      const SubstreamMath& math) {
    reset();
    for (std::size_t st = 0; st < shares.size(); ++st) {
      for (const auto& p : shares[st]) {
        NodeUsage& u = at(p.node);
        u.in_kbps += math.wire_in_kbps(int(st), p.rate_units_per_sec);
        u.out_kbps += math.wire_out_kbps(int(st), p.rate_units_per_sec);
        u.cpu_fraction += math.in_ups(int(st), p.rate_units_per_sec) *
                          math.cpu_secs_per_in_unit(int(st));
      }
    }
  }

 private:
  std::vector<NodeUsage> usage_;
  std::vector<sim::NodeIndex> touched_;
};

/// Freshest-known stats per node across the whole compose input (for
/// latency prediction; first snapshot seen per node wins).
std::map<sim::NodeIndex, const monitor::NodeStats*> stats_by_node(
    const ComposeInput& input) {
  std::map<sim::NodeIndex, const monitor::NodeStats*> out;
  for (const auto& [service, stats] : input.providers) {
    for (const auto& s : stats) out.emplace(s.node, &s);
  }
  out.emplace(input.source_stats.node, &input.source_stats);
  out.emplace(input.destination_stats.node, &input.destination_stats);
  return out;
}

}  // namespace

ComposeResult MinCostComposer::compose(const ComposeInput& input) {
  ComposeResult result;
  if (auto err = input.request.validate(); !err.empty()) {
    result.error = err;
    return result;
  }
  if (input.catalog == nullptr) {
    result.error = "no service catalog";
    return result;
  }

  ResidualTracker tracker(input);
  const auto& req = input.request;
  std::vector<std::vector<std::vector<runtime::Placement>>> all_shares;
  all_shares.reserve(req.substreams.size());
  NodeUsageTable usage;

  for (std::size_t ss = 0; ss < req.substreams.size(); ++ss) {
    const auto& sub = req.substreams[ss];
    const SubstreamMath math(sub, *input.catalog, req.unit_bytes);
    const double demand = math.delivered_ups(sub.rate_kbps);
    const int k = math.num_stages();

    // Candidate capacities from residual availability.
    auto stages = std::vector<std::vector<CandidateCap>>(std::size_t(k));
    // Per (stage, candidate) multiplicative tightening factor used by the
    // repair loop.
    auto tighten = std::vector<std::vector<double>>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      const auto it = input.providers.find(sub.services[std::size_t(st)]);
      if (it == input.providers.end() || it->second.empty()) {
        result.error = "no providers for service " +
                       sub.services[std::size_t(st)];
        return result;
      }
      for (const auto& stats : it->second) {
        CandidateCap cand;
        cand.node = stats.node;
        cand.max_delivered_ups = math.max_delivered_ups(
            st,
            tracker.avail_in_kbps(stats.node) * options_.utilization_target,
            tracker.avail_out_kbps(stats.node) * options_.utilization_target,
            options_.consider_cpu
                ? tracker.avail_cpu_fraction(stats.node) *
                      options_.utilization_target
                : -1.0);
        // Latency SLO: a CPU-saturated node has no steady-state queue, so
        // its predicted delay is unbounded — price it as unusable.
        if (req.deadline_ms > 0 && options_.latency_model != nullptr &&
            options_.latency_model->saturated(&stats, 0.0)) {
          cand.max_delivered_ups = 0;
        }
        // An empty drop window means "never measured", not "drop-free":
        // price the unknown with the configured prior instead of 0.
        cand.drop_ratio = tracker.drop_known(stats.node)
                              ? tracker.drop_ratio(stats.node)
                              : options_.unknown_drop_prior;
        const double cap_total =
            stats.capacity_in_kbps + stats.capacity_out_kbps;
        if (cap_total > 0) {
          cand.utilization = 1.0 - (tracker.avail_in_kbps(stats.node) +
                                    tracker.avail_out_kbps(stats.node)) /
                                       cap_total;
        }
        stages[std::size_t(st)].push_back(cand);
        tighten[std::size_t(st)].push_back(1.0);
      }
    }

    const double src_cap =
        tracker.avail_out_kbps(req.source) / math.wire_in_kbps(0, 1.0);
    const double dest_cap =
        tracker.avail_in_kbps(req.destination) / math.wire_in_kbps(k, 1.0);

    std::vector<std::vector<runtime::Placement>> shares;
    bool accepted = false;

    if (options_.single_instance_per_stage) {
      // Ablation mode: same cost model, but each stage must fit on one
      // node (cheapest candidate able to carry the full demand).
      if (src_cap < demand || dest_cap < demand) {
        result.error = "endpoint capacity short (no-split mode)";
        return result;
      }
      shares.assign(std::size_t(k), {});
      for (int st = 0; st < k; ++st) {
        const CandidateCap* best = nullptr;
        for (const auto& cand : stages[std::size_t(st)]) {
          if (cand.max_delivered_ups < demand) continue;
          if (best == nullptr ||
              std::make_pair(cand.drop_ratio, cand.utilization) <
                  std::make_pair(best->drop_ratio, best->utilization)) {
            best = &cand;
          }
        }
        if (best == nullptr) {
          result.error = "no single node can carry stage " +
                         std::to_string(st) + " (no-split mode)";
          return result;
        }
        shares[std::size_t(st)].push_back(
            runtime::Placement{best->node, demand});
      }
      accepted = true;
    }

    // One persistent flow network per substream. Repair iterations tighten
    // splitting-arc capacities in place and re-solve with warm-started
    // potentials; the graph is never rebuilt.
    std::optional<CompositionGraph> cg;
    if (!accepted) cg.emplace(stages, src_cap, dest_cap, demand);
    // Candidates whose tighten factor changed since the last solve.
    std::vector<std::pair<int, int>> dirty;

    for (int iter = 0;
         !accepted && iter < options_.max_repair_iterations; ++iter) {
      if (iter > 0) {
        cg->reset_flow();
        for (const auto& [st, j] : dirty) {
          cg->set_candidate_cap(
              st, j,
              stages[std::size_t(st)][std::size_t(j)].max_delivered_ups *
                  tighten[std::size_t(st)][std::size_t(j)]);
        }
        dirty.clear();
      }
      flow::SolveOptions solve_options;
      solve_options.assume_nonnegative_costs = true;  // costs = drop ratios
      solve_options.warm_start = true;
      const auto solved = ssp_.solve(cg->graph(), cg->source(), cg->sink(),
                                     cg->demand(), solve_options);
      if (!solved.feasible) {
        std::ostringstream os;
        os << "insufficient capacity for substream " << ss << ": routed "
           << solved.flow << "/" << demand * CompositionGraph::kScale
           << " (src_cap=" << src_cap << " dest_cap=" << dest_cap << ")";
        result.error = os.str();
        return result;
      }
      // Repair runs on the raw (unfolded) flow decomposition: folding
      // slivers first would shuffle rate between candidates and keep the
      // loop from converging. Folding is applied once a solution passes.
      const auto raw_shares = cg->extract_shares(0.0);

      // Repair: does any physical node exceed its residual budget because
      // it hosts instances at several stages of this substream?
      usage.accumulate(raw_shares, math);
      bool violated = false;
      for (const auto node : usage.touched()) {
        const NodeUsage& u = usage.get(node);
        const double ai =
            tracker.avail_in_kbps(node) * options_.utilization_target;
        const double ao =
            tracker.avail_out_kbps(node) * options_.utilization_target;
        double factor = 1.0;
        if (u.in_kbps > ai * kRepairTolerance) {
          factor = std::min(factor, ai / u.in_kbps);
        }
        if (u.out_kbps > ao * kRepairTolerance) {
          factor = std::min(factor, ao / u.out_kbps);
        }
        if (factor < 1.0) {
          violated = true;
          // Tighten each of the node's *used* instances to its current
          // share scaled by the factor — this pins the node's total next
          // round to <= its budget, so the loop converges in O(1)
          // iterations instead of geometrically.
          for (int st = 0; st < k; ++st) {
            // Shares are in delivered ups, same units as candidate caps.
            double share_delivered = 0;
            for (const auto& p : raw_shares[std::size_t(st)]) {
              if (p.node == node) share_delivered = p.rate_units_per_sec;
            }
            if (share_delivered <= 0) continue;
            for (std::size_t j = 0; j < stages[std::size_t(st)].size();
                 ++j) {
              if (stages[std::size_t(st)][j].node != node) continue;
              const double original =
                  stages[std::size_t(st)][j].max_delivered_ups;
              if (original <= 0) continue;
              const double target = share_delivered * factor;
              const double tightened =
                  std::min(tighten[std::size_t(st)][j], target / original);
              if (tightened < tighten[std::size_t(st)][j]) {
                tighten[std::size_t(st)][j] = tightened;
                dirty.emplace_back(st, int(j));
              }
            }
          }
        }
      }
      if (!violated) {
        shares = cg->extract_shares(options_.min_share_fraction);
        result.objective += solved.cost;
        accepted = true;
        break;
      }
      RASC_LOG(kDebug) << "mincost repair iteration " << iter
                       << " for substream " << ss;
    }
    if (!accepted) {
      result.error = "capacity repair failed for substream " +
                     std::to_string(ss);
      return result;
    }

    // Algorithm 1: "Update the node capacities" before the next substream.
    usage.accumulate(shares, math);
    for (const auto node : usage.touched()) {
      const NodeUsage& u = usage.get(node);
      tracker.consume(node, u.in_kbps, u.out_kbps, u.cpu_fraction);
    }
    tracker.consume(req.source, 0, math.wire_in_kbps(0, demand));
    tracker.consume(req.destination, math.wire_in_kbps(k, demand), 0);

    all_shares.push_back(std::move(shares));
  }

  result.plan = build_app_plan(req, *input.catalog, all_shares);

  // Latency SLO admission: reject plans whose predicted end-to-end delay
  // violates the request's deadline. Base utilization comes from the
  // snapshots (this candidate plan is not reflected there yet).
  if (req.deadline_ms > 0 && options_.latency_model != nullptr) {
    const auto stats = stats_by_node(input);
    const double predicted = options_.latency_model->predict_ms(
        result.plan, [&stats](sim::NodeIndex n) -> const monitor::NodeStats* {
          const auto it = stats.find(n);
          return it == stats.end() ? nullptr : it->second;
        });
    result.predicted_latency_ms = predicted;
    if (!(predicted <= req.deadline_ms)) {
      std::ostringstream os;
      os << "predicted latency " << predicted << " ms exceeds deadline "
         << req.deadline_ms << " ms";
      result.error = os.str();
      result.plan = {};
      result.objective = 0;
      return result;
    }
  }

  result.admitted = true;
  return result;
}

}  // namespace rasc::core
