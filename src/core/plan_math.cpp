#include "core/plan_math.hpp"

#include <algorithm>
#include <cassert>

#include "core/composer.hpp"

namespace rasc::core {

double wire_kbps(double ups, double unit_bytes) {
  return ups * (unit_bytes + double(sim::Network::kFrameOverheadBytes)) *
         8.0 / 1000.0;
}

double payload_kbps(double ups, double unit_bytes) {
  return ups * unit_bytes * 8.0 / 1000.0;
}

SubstreamMath::SubstreamMath(const Substream& substream,
                             const runtime::ServiceCatalog& catalog,
                             std::int64_t source_unit_bytes) {
  const int k = int(substream.services.size());
  ratio_.reserve(std::size_t(k));
  in_bytes_.resize(std::size_t(k) + 1);
  in_per_delivered_.resize(std::size_t(k) + 1);

  in_bytes_[0] = double(source_unit_bytes);
  for (int i = 0; i < k; ++i) {
    const auto& spec = catalog.get(substream.services[std::size_t(i)]);
    assert(spec.rate_ratio > 0);
    ratio_.push_back(spec.rate_ratio);
    cpu_secs_.push_back(sim::to_seconds(spec.cpu_time_per_unit));
    in_bytes_[std::size_t(i) + 1] =
        in_bytes_[std::size_t(i)] * spec.output_size_factor;
  }
  // Walk backwards: one delivered unit requires 1/prod_{j>=i} R_j units
  // entering stage i.
  in_per_delivered_[std::size_t(k)] = 1.0;
  for (int i = k - 1; i >= 0; --i) {
    in_per_delivered_[std::size_t(i)] =
        in_per_delivered_[std::size_t(i) + 1] / ratio_[std::size_t(i)];
  }
}

double SubstreamMath::delivered_ups(double rate_kbps) const {
  const double dest_bytes = in_bytes_.back();
  assert(dest_bytes > 0);
  return rate_kbps * 1000.0 / (8.0 * dest_bytes);
}

double SubstreamMath::wire_in_kbps(int stage, double delivered) const {
  return wire_kbps(in_ups(stage, delivered), in_unit_bytes(stage));
}

double SubstreamMath::wire_out_kbps(int stage, double delivered) const {
  // Output of stage i is the input of stage i+1.
  return wire_kbps(in_ups(stage + 1, delivered), in_unit_bytes(stage + 1));
}

double SubstreamMath::max_delivered_ups(int stage, double avail_in_kbps,
                                        double avail_out_kbps,
                                        double avail_cpu_fraction) const {
  // Solve wire_in_kbps(stage, d) <= avail_in, wire_out <= avail_out and
  // (optionally) cpu_secs * in_ups <= avail_cpu.
  const double per_in =
      wire_in_kbps(stage, 1.0);  // wire Kbps per delivered ups (linear)
  const double per_out = wire_out_kbps(stage, 1.0);
  double d = 1e18;
  if (per_in > 0) d = std::min(d, avail_in_kbps / per_in);
  if (per_out > 0) d = std::min(d, avail_out_kbps / per_out);
  if (avail_cpu_fraction >= 0) {
    const double per_cpu =
        cpu_secs_per_in_unit(stage) * in_units_per_delivered(stage);
    if (per_cpu > 0) d = std::min(d, avail_cpu_fraction / per_cpu);
  }
  return std::max(d, 0.0);
}

runtime::AppPlan build_app_plan(
    const ServiceRequest& request, const runtime::ServiceCatalog& catalog,
    const std::vector<std::vector<std::vector<runtime::Placement>>>&
        delivered_shares) {
  assert(delivered_shares.size() == request.substreams.size());
  runtime::AppPlan plan;
  plan.app = request.app;
  plan.source = request.source;
  plan.destination = request.destination;

  for (std::size_t ss = 0; ss < request.substreams.size(); ++ss) {
    const auto& sub = request.substreams[ss];
    const SubstreamMath math(sub, catalog, request.unit_bytes);

    runtime::SubstreamPlan sp;
    sp.unit_bytes = request.unit_bytes;
    sp.rate_units_per_sec = math.delivered_ups(sub.rate_kbps);

    const auto& stage_shares = delivered_shares[ss];
    assert(stage_shares.size() == sub.services.size());
    for (std::size_t st = 0; st < stage_shares.size(); ++st) {
      runtime::StagePlan stage;
      stage.service = sub.services[st];
      for (const auto& share : stage_shares[st]) {
        runtime::Placement p;
        p.node = share.node;
        // Convert the delivered-ups share to this instance's input rate.
        p.rate_units_per_sec =
            math.in_ups(int(st), share.rate_units_per_sec);
        stage.placements.push_back(p);
      }
      sp.stages.push_back(std::move(stage));
    }
    plan.substreams.push_back(std::move(sp));
  }
  return plan;
}

std::map<sim::NodeIndex, LeaseDebit> leased_plan_bandwidth(
    const runtime::AppPlan& plan, const runtime::ServiceCatalog& catalog) {
  std::map<sim::NodeIndex, LeaseDebit> debits;
  for (const auto& sub : plan.substreams) {
    double in_bytes = double(sub.unit_bytes);
    for (const auto& stage : sub.stages) {
      const auto& spec = catalog.get(stage.service);
      // The exact unit sizes the deploy messages will carry.
      const std::int64_t in_unit = std::int64_t(in_bytes + 0.5);
      const std::int64_t out_unit =
          std::int64_t(double(in_unit) * spec.output_size_factor + 0.5);
      for (const auto& p : stage.placements) {
        LeaseDebit& d = debits[p.node];
        d.in_kbps += wire_kbps(p.rate_units_per_sec, double(in_unit));
        d.out_kbps += wire_kbps(p.rate_units_per_sec * spec.rate_ratio,
                                double(out_unit));
      }
      in_bytes *= spec.output_size_factor;
    }
    const std::int64_t sink_unit = std::int64_t(in_bytes + 0.5);
    debits[plan.destination].in_kbps +=
        wire_kbps(sub.rate_units_per_sec, double(sink_unit));
  }
  return debits;
}

ResidualTracker::ResidualTracker(const ComposeInput& input,
                                 double headroom) {
  auto note = [this, headroom](const monitor::NodeStats& s) {
    if (s.node < 0) return;
    auto& e = entries_[s.node];  // last writer wins; snapshots agree
    e.avail_in = s.available_in_kbps() * headroom;
    e.avail_out = s.available_out_kbps() * headroom;
    e.avail_cpu = s.available_cpu_fraction() * headroom;
    e.drop_ratio = s.drop_ratio;
    e.drop_known = s.drop_samples > 0;
  };
  for (const auto& [service, stats] : input.providers) {
    (void)service;
    for (const auto& s : stats) note(s);
  }
  note(input.source_stats);
  note(input.destination_stats);
}

double ResidualTracker::avail_in_kbps(sim::NodeIndex node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0.0 : it->second.avail_in;
}

double ResidualTracker::avail_out_kbps(sim::NodeIndex node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0.0 : it->second.avail_out;
}

double ResidualTracker::drop_ratio(sim::NodeIndex node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 1.0 : it->second.drop_ratio;
}

bool ResidualTracker::drop_known(sim::NodeIndex node) const {
  const auto it = entries_.find(node);
  return it != entries_.end() && it->second.drop_known;
}

double ResidualTracker::avail_cpu_fraction(sim::NodeIndex node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? 0.0 : it->second.avail_cpu;
}

void ResidualTracker::consume(sim::NodeIndex node, double in_kbps,
                              double out_kbps, double cpu_fraction) {
  auto& e = entries_[node];
  e.avail_in = std::max(0.0, e.avail_in - in_kbps);
  e.avail_out = std::max(0.0, e.avail_out - out_kbps);
  e.avail_cpu = std::max(0.0, e.avail_cpu - cpu_fraction);
}

}  // namespace rasc::core
