// Construction of the per-substream min-cost flow network (paper §3.5).
//
// Layered graph, all quantities normalized to destination-delivered units
// per second (see plan_math.hpp) and scaled to integral milli-ups:
//
//   S --cap: source out-bw--> SO --∞--> [stage 0 candidates] --∞--> ...
//     ... --∞--> [stage k-1 candidates] --∞--> TI --cap: dest in-bw--> T
//
// Each candidate (service instance on a provider node) is split into an
// in/out vertex pair; the splitting arc carries the node's capacity
// min(avail_in, avail_out) translated to delivered ups (the paper's
// r_max(c_i, n)) and costs the node's observed drop ratio scaled by 1e6
// (the paper's cost_e). Inter-layer arcs are free and uncapacitated: node
// budgets live on the splitting arcs. The flow solution simultaneously
// selects components and assigns their rates — the paper's key reduction.
#pragma once

#include <vector>

#include "flow/graph.hpp"
#include "runtime/plan.hpp"
#include "sim/message.hpp"

namespace rasc::core {

/// One provider option for one stage.
struct CandidateCap {
  sim::NodeIndex node = sim::kInvalidNode;
  /// Max delivered ups this instance could carry given the node's
  /// residual bandwidth (0 => effectively unusable but still modelled).
  double max_delivered_ups = 0;
  double drop_ratio = 0;
  /// Node utilization in [0,1]; used only as an epsilon tie-break (three
  /// orders of magnitude below the drop-ratio cost) so that among
  /// equally drop-free candidates the solver prefers less-loaded nodes
  /// instead of an arbitrary deterministic pile-up.
  double utilization = 0;
};

class CompositionGraph {
 public:
  /// Flow units are milli-delivered-ups: 1 flow unit = 0.001 units/sec
  /// delivered, giving 0.1% splitting granularity at paper-scale rates.
  static constexpr double kScale = 1000.0;
  /// Drop ratios in [0,1] are scaled to integer costs.
  static constexpr double kCostScale = 1e6;
  /// Utilization tie-break scale (kCostScale / 1000).
  static constexpr double kUtilizationCostScale = 1e3;

  CompositionGraph(const std::vector<std::vector<CandidateCap>>& stages,
                   double source_cap_delivered_ups,
                   double dest_cap_delivered_ups,
                   double demand_delivered_ups);

  flow::Graph& graph() { return graph_; }
  const flow::Graph& graph() const { return graph_; }
  flow::NodeId source() const { return source_; }
  flow::NodeId sink() const { return sink_; }
  flow::FlowUnit demand() const { return demand_; }

  /// Removes any flow left by a previous solve so the graph can be
  /// re-solved. Cheap (one pass over the arcs); the graph topology — and
  /// therefore a solver's adjacency snapshot — is untouched.
  void reset_flow() { graph_.clear_flow(); }

  /// Rewrites the capacity of the splitting arc of candidate (stage,
  /// index) to `delivered_ups`. Used by the composer's repair loop to
  /// tighten one persistent graph in place instead of rebuilding it.
  /// Call reset_flow() before a batch of edits: any flow on the arc is
  /// discarded.
  void set_candidate_cap(int stage, int index, double delivered_ups);

  /// Rewrites the cost of candidate (stage, index)'s splitting arc from
  /// fresh drop/utilization measurements. Used by the rate adapter when
  /// re-solving a persistent graph against drifted statistics. Cost edits
  /// invalidate solver snapshots (see flow::Graph::set_cost).
  void set_candidate_cost(int stage, int index, double drop_ratio,
                          double utilization);

  /// Rewrites the endpoint gate capacities (delivered ups).
  void set_source_cap(double delivered_ups);
  void set_dest_cap(double delivered_ups);

  /// Integer cost per flow unit for the given measurements — the exact
  /// pricing the splitting arcs use. Exposed so the rate adapter can cost
  /// the currently-deployed plan with the same model when applying its
  /// hysteresis threshold.
  static flow::Cost unit_cost(double drop_ratio, double utilization);
  /// Delivered ups -> integer flow units (same floor the graph applies).
  static flow::FlowUnit flow_units(double delivered_ups);

  /// After solving: per-stage (node, delivered ups) shares. Shares smaller
  /// than `min_share_fraction` of the demand are folded into the stage's
  /// largest share — micro-slivers would cost a component deployment for
  /// no benefit.
  std::vector<std::vector<runtime::Placement>> extract_shares(
      double min_share_fraction = 0.01) const;

  /// Delivered ups actually carried by candidate (stage, index) in the
  /// current flow (tests).
  double candidate_flow_ups(int stage, int index) const;

 private:
  struct CandidateArcs {
    sim::NodeIndex node;
    flow::ArcId through_arc;
  };

  flow::Graph graph_;
  flow::NodeId source_ = 0;
  flow::NodeId sink_ = 0;
  flow::FlowUnit demand_ = 0;
  flow::ArcId source_gate_arc_ = 0;
  flow::ArcId dest_gate_arc_ = 0;
  std::vector<std::vector<CandidateArcs>> stage_arcs_;
};

}  // namespace rasc::core
