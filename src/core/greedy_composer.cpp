#include "core/greedy_composer.hpp"

#include <limits>

#include "core/plan_math.hpp"

namespace rasc::core {

ComposeResult GreedyComposer::compose(const ComposeInput& input) {
  ComposeResult result;
  if (auto err = input.request.validate(); !err.empty()) {
    result.error = err;
    return result;
  }
  if (input.catalog == nullptr) {
    result.error = "no service catalog";
    return result;
  }

  ResidualTracker tracker(input);
  const auto& req = input.request;
  std::vector<std::vector<std::vector<runtime::Placement>>> all_shares;

  for (std::size_t ss = 0; ss < req.substreams.size(); ++ss) {
    const auto& sub = req.substreams[ss];
    const SubstreamMath math(sub, *input.catalog, req.unit_bytes);
    const double demand = math.delivered_ups(sub.rate_kbps);
    const int k = math.num_stages();

    // Endpoint capacity checks.
    if (tracker.avail_out_kbps(req.source) < math.wire_in_kbps(0, demand)) {
      result.error = "source lacks output bandwidth";
      return result;
    }
    if (tracker.avail_in_kbps(req.destination) <
        math.wire_in_kbps(k, demand)) {
      result.error = "destination lacks input bandwidth";
      return result;
    }

    auto shares =
        std::vector<std::vector<runtime::Placement>>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      const auto it = input.providers.find(sub.services[std::size_t(st)]);
      if (it == input.providers.end() || it->second.empty()) {
        result.error = "no providers for service " +
                       sub.services[std::size_t(st)];
        return result;
      }
      const double need_in = math.wire_in_kbps(st, demand);
      const double need_out = math.wire_out_kbps(st, demand);
      const double need_cpu =
          math.in_ups(st, demand) * math.cpu_secs_per_in_unit(st);

      // Smallest observed drop ratio among providers with capacity; ties
      // broken uniformly at random.
      double best_drop = std::numeric_limits<double>::infinity();
      std::vector<sim::NodeIndex> tied;
      for (const auto& stats : it->second) {
        if (tracker.avail_in_kbps(stats.node) < need_in) continue;
        if (tracker.avail_out_kbps(stats.node) < need_out) continue;
        if (tracker.avail_cpu_fraction(stats.node) < need_cpu) continue;
        const double drop = tracker.drop_ratio(stats.node);
        if (drop < best_drop) {
          best_drop = drop;
          tied.assign(1, stats.node);
        } else if (drop == best_drop) {
          tied.push_back(stats.node);
        }
      }
      const sim::NodeIndex best =
          tied.empty() ? sim::kInvalidNode
                       : tied[std::size_t(rng_.uniform_int(
                             0, std::int64_t(tied.size()) - 1))];
      if (best == sim::kInvalidNode) {
        result.error = "no provider with capacity for service " +
                       sub.services[std::size_t(st)];
        return result;
      }
      shares[std::size_t(st)].push_back(runtime::Placement{best, demand});
      tracker.consume(best, need_in, need_out, need_cpu);
    }
    tracker.consume(req.source, 0, math.wire_in_kbps(0, demand));
    tracker.consume(req.destination, math.wire_in_kbps(k, demand), 0);
    all_shares.push_back(std::move(shares));
  }

  result.plan = build_app_plan(req, *input.catalog, all_shares);
  result.admitted = true;
  return result;
}

}  // namespace rasc::core
