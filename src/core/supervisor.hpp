// Application supervisor: the "dynamic" in dynamic rate allocation.
//
// The paper's system "allocates and adjusts the rates of the streams based
// on the available processing capacity of the nodes" (§1). Composition
// reacts to current conditions; the supervisor closes the loop *after*
// admission: it periodically probes the destination's delivery progress
// and, when a stream starves (component host failed, or placements became
// hopelessly congested), tears the application down everywhere and
// re-composes it from fresh statistics — typically landing on different,
// healthier nodes.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "core/coordinator.hpp"
#include "util/rng.hpp"

namespace rasc::core {

class RateAdapter;

class AppSupervisor {
 public:
  struct Params {
    /// Health-probe period.
    sim::SimDuration check_interval = sim::sec(2);
    /// A check is a strike when delivery progress since the previous
    /// check is below this fraction of the expected unit count.
    double min_progress_fraction = 0.3;
    /// Consecutive strikes (or probe timeouts) before recovery.
    int strikes_to_recover = 2;
    /// Probe timeout.
    sim::SimDuration probe_timeout = sim::msec(1500);
    /// Maximum recovery attempts per application (0 = unlimited). Failed
    /// re-compositions count against the budget too.
    int max_recoveries = 3;
    /// Settle delay before the first re-composition (teardowns must land
    /// before fresh stats are gathered); also the base of the exponential
    /// backoff applied to retries after a failed re-composition.
    sim::SimDuration recovery_backoff = sim::msec(300);
    /// Cap on the backed-off retry delay.
    sim::SimDuration recovery_backoff_max = sim::sec(15);
    /// Retry delays are scaled by uniform(1 +/- jitter) so supervisors on
    /// different nodes do not re-probe a congested deployment in
    /// lockstep. Drawn from a private seeded RNG — deterministic per
    /// (jitter_seed, node), and never touching the simulation's root
    /// stream. 0 disables jitter.
    double recovery_jitter = 0.2;
    std::uint64_t jitter_seed = 0x524153435F535550ull;  // "RASC_SUP"
  };

  /// Events reported to the owner.
  struct Event {
    enum class Kind { kRecovering, kRecovered, kRecoveryFailed, kGaveUp };
    Kind kind;
    runtime::AppId old_app = 0;
    runtime::AppId new_app = 0;
  };
  using EventCallback = std::function<void(const Event&)>;

  /// `registry` is the deployment-wide metric registry (null: a private
  /// one is owned). Probe, strike and recovery outcomes are published
  /// under supervisor.* with this node's label.
  AppSupervisor(sim::Simulator& simulator, sim::Network& network,
                Coordinator& coordinator, Composer& composer, Params params,
                obs::MetricRegistry* registry = nullptr);
  AppSupervisor(sim::Simulator& simulator, sim::Network& network,
                Coordinator& coordinator, Composer& composer);
  ~AppSupervisor();

  AppSupervisor(const AppSupervisor&) = delete;
  AppSupervisor& operator=(const AppSupervisor&) = delete;

  /// Starts supervising an admitted application. `request` is the original
  /// request (re-submitted under a fresh app id on recovery); `plan` the
  /// deployed execution graph (its nodes receive the teardown);
  /// `stream_stop` the time the stream is expected to end (supervision
  /// stops then).
  void watch(const ServiceRequest& request, const runtime::AppPlan& plan,
             sim::SimTime stream_stop, EventCallback events);

  /// Stops supervising (e.g., the owner tore the app down itself).
  void forget(runtime::AppId app);

  /// Wires in the node's rate adapter (may be null to unwire). With an
  /// adapter present, a starving app first gets one in-place delta
  /// re-allocation attempt; teardown-and-recompose only runs when that
  /// attempt cannot improve the plan. Recovered apps are re-tracked with
  /// the adapter under their fresh id.
  void set_adapter(RateAdapter* adapter) { adapter_ = adapter; }

  /// Consumes SinkHealthReply packets; false for anything else.
  bool handle_packet(const sim::Packet& packet);

  std::size_t watched_count() const { return watched_.size(); }

 private:
  struct Watched {
    ServiceRequest request;
    runtime::AppPlan plan;
    sim::SimTime stream_stop = 0;
    EventCallback events;
    double expected_ups = 0;  // total delivered units/sec across substreams
    std::int64_t last_delivered = 0;
    int strikes = 0;
    int recoveries = 0;
    /// Whether the rate adapter already got its first-line shot at the
    /// current starvation episode (reset when a probe looks healthy).
    bool adapt_tried = false;
    sim::EventId timer = 0;
    std::uint64_t pending_probe = 0;  // request id awaiting reply
    sim::EventId probe_timeout_event = 0;
  };

  /// One in-flight recovery episode: the original request being retried
  /// under fresh app ids until composition succeeds or the attempt
  /// budget runs out.
  struct RecoveryState {
    ServiceRequest request;
    sim::SimTime stream_stop = 0;
    EventCallback events;
    runtime::AppId original_app = 0;
    int attempts_done = 0;  // prior recoveries + failed retries so far
  };

  void schedule_check(runtime::AppId app);
  void run_check(runtime::AppId app);
  void on_probe_result(runtime::AppId app, std::int64_t delivered);
  void strike(runtime::AppId app);
  void recover(runtime::AppId app);
  void schedule_recompose(std::shared_ptr<RecoveryState> state,
                          sim::SimDuration delay);
  sim::SimDuration backoff_delay(int failed_attempts);
  void teardown_everywhere(const Watched& w, runtime::AppId app);

  sim::Simulator& simulator_;
  sim::Network& network_;
  Coordinator& coordinator_;
  Composer& composer_;
  Params params_;
  sim::NodeIndex node_;
  RateAdapter* adapter_ = nullptr;

  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_;
  obs::Counter* probes_sent_;
  obs::Counter* probe_timeouts_;
  obs::Counter* strikes_;
  obs::Counter* recoveries_started_;
  obs::Counter* recoveries_succeeded_;
  obs::Counter* recoveries_failed_;
  obs::Counter* gave_up_;

  std::map<runtime::AppId, std::unique_ptr<Watched>> watched_;
  std::map<std::uint64_t, runtime::AppId> probe_routing_;
  /// Pending re-composition timers, keyed by the original app id.
  std::map<runtime::AppId, sim::EventId> pending_retries_;
  std::uint64_t probe_counter_ = 0;
  runtime::AppId next_recovered_app_ = 1'000'000;  // fresh id space
  util::Xoshiro256 backoff_rng_;
};

}  // namespace rasc::core
