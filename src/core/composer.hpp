// Composer interface shared by RASC's min-cost composition and the two
// baselines the paper evaluates against (random and greedy, §4.1).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "monitor/node_stats.hpp"
#include "runtime/plan.hpp"
#include "runtime/service.hpp"

namespace rasc::core {

/// Everything a composer sees: the request, the discovered providers per
/// service with their latest stats snapshots, the endpoints' stats, and
/// the service catalog (for rate ratios / unit-size factors).
struct ComposeInput {
  ServiceRequest request;
  /// service name -> stats of each provider node (discovery + monitoring
  /// output; paper §3.1 steps 1-2).
  std::map<std::string, std::vector<monitor::NodeStats>> providers;
  monitor::NodeStats source_stats;
  monitor::NodeStats destination_stats;
  const runtime::ServiceCatalog* catalog = nullptr;
};

struct ComposeResult {
  bool admitted = false;
  runtime::AppPlan plan;
  std::string error;  // why the request was rejected
  /// Objective value (scaled expected drops) for admitted min-cost plans;
  /// 0 for the baselines.
  std::int64_t objective = 0;
  /// Predicted end-to-end latency of the plan (ms) when the composer ran
  /// with a LatencyModel and the request carried a deadline; -1 when no
  /// prediction was made.
  double predicted_latency_ms = -1;
};

class Composer {
 public:
  virtual ~Composer() = default;
  virtual const char* name() const = 0;
  virtual ComposeResult compose(const ComposeInput& input) = 0;
};

/// Residual bandwidth ledger used by every composer to account for the
/// capacity its own earlier decisions (previous substreams of the same
/// request) already consumed — Algorithm 1's "Update the node capacities".
class ResidualTracker {
 public:
  /// `headroom` scales every node's reported availability: admitting up
  /// to only ~90% of capacity leaves room for control traffic and for
  /// the admission races between concurrent coordinators working from
  /// slightly stale statistics.
  static constexpr double kDefaultHeadroom = 0.90;

  explicit ResidualTracker(const ComposeInput& input,
                           double headroom = kDefaultHeadroom);

  double avail_in_kbps(sim::NodeIndex node) const;
  double avail_out_kbps(sim::NodeIndex node) const;
  double avail_cpu_fraction(sim::NodeIndex node) const;
  double drop_ratio(sim::NodeIndex node) const;
  /// False when the node's snapshot held no drop outcomes — its
  /// drop_ratio is a placeholder zero, not a measurement. Cost models
  /// should substitute a prior rather than treat the node as drop-free.
  bool drop_known(sim::NodeIndex node) const;

  void consume(sim::NodeIndex node, double in_kbps, double out_kbps,
               double cpu_fraction = 0.0);

 private:
  struct Entry {
    double avail_in = 0;
    double avail_out = 0;
    double avail_cpu = 0;
    double drop_ratio = 0;
    bool drop_known = false;
  };
  std::map<sim::NodeIndex, Entry> entries_;
};

}  // namespace rasc::core
