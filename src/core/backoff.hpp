// Capped exponential backoff shared by the control-plane retry paths
// (supervisor recovery episodes, coordinator discovery retries). Jitter is
// layered on top by callers that need it — the bare ladder is deterministic
// so retry schedules stay event-for-event reproducible.
#pragma once

#include "sim/time.hpp"

namespace rasc::core {

/// base * 2^failed_attempts, saturating at `max`. `failed_attempts` counts
/// failures so far: 0 failures -> base, 1 -> 2*base, ...
inline sim::SimDuration capped_backoff(sim::SimDuration base,
                                       sim::SimDuration max,
                                       int failed_attempts) {
  double delay = sim::to_seconds(base);
  const double cap = sim::to_seconds(max);
  for (int i = 0; i < failed_attempts; ++i) {
    delay *= 2.0;
    if (delay >= cap) {
      delay = cap;
      break;
    }
  }
  return sim::from_seconds(delay);
}

}  // namespace rasc::core
