#include "core/gossip_composer.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/latency_model.hpp"
#include "core/plan_math.hpp"

namespace rasc::core {

double GossipComposer::hop_cost(sim::NodeIndex from, sim::NodeIndex candidate,
                                sim::NodeIndex destination, bool last_stage,
                                const ResidualTracker& tracker) const {
  double cost = 0;
  if (options_.latency_ms) {
    cost += options_.latency_weight * options_.latency_ms(from, candidate);
    if (last_stage) {
      cost +=
          options_.latency_weight * options_.latency_ms(candidate, destination);
    }
  }
  const double drop = tracker.drop_known(candidate)
                          ? tracker.drop_ratio(candidate)
                          : options_.drop_prior;
  cost += options_.drop_weight * drop;
  const auto hint = hints_.find(candidate);
  if (hint != hints_.end() && hint->second > 0) {
    const double avail = std::max(0.0, tracker.avail_out_kbps(candidate));
    cost += options_.load_weight * hint->second / (hint->second + avail + 1.0);
  }
  return cost;
}

ComposeResult GossipComposer::compose(const ComposeInput& input) {
  ComposeResult result;
  last_backtracks_ = 0;
  if (auto err = input.request.validate(); !err.empty()) {
    result.error = err;
    return result;
  }
  if (input.catalog == nullptr) {
    result.error = "no service catalog";
    return result;
  }

  ResidualTracker tracker(input);
  const auto& req = input.request;
  std::vector<std::vector<std::vector<runtime::Placement>>> all_shares;

  for (std::size_t ss = 0; ss < req.substreams.size(); ++ss) {
    const auto& sub = req.substreams[ss];
    const SubstreamMath math(sub, *input.catalog, req.unit_bytes);
    const double demand = math.delivered_ups(sub.rate_kbps);
    const int k = math.num_stages();

    if (tracker.avail_out_kbps(req.source) < math.wire_in_kbps(0, demand)) {
      result.error = "source lacks output bandwidth";
      return result;
    }
    if (tracker.avail_in_kbps(req.destination) <
        math.wire_in_kbps(k, demand)) {
      result.error = "destination lacks input bandwidth";
      return result;
    }

    // Depth-first walk over the stages. Each frame holds the candidates
    // for its stage, cost-sorted against the hop actually chosen at the
    // previous frame, and the index of the next one to try; stepping a
    // frame past its first candidate spends backtrack budget.
    struct Frame {
      std::vector<sim::NodeIndex> candidates;  // cost-sorted
      std::size_t next = 0;                    // next candidate to try
      // Tracker state *before* this stage consumed anything, so
      // re-trying the stage starts from a clean ledger.
      ResidualTracker before;
    };

    auto sorted_candidates = [&](int st, sim::NodeIndex prev,
                                 const ResidualTracker& t) {
      std::vector<sim::NodeIndex> out;
      const auto it = input.providers.find(sub.services[std::size_t(st)]);
      if (it == input.providers.end()) return out;
      const double need_in = math.wire_in_kbps(st, demand);
      const double need_out = math.wire_out_kbps(st, demand);
      const double need_cpu =
          math.in_ups(st, demand) * math.cpu_secs_per_in_unit(st);
      std::vector<std::pair<double, sim::NodeIndex>> scored;
      for (const auto& stats : it->second) {
        if (t.avail_in_kbps(stats.node) < need_in) continue;
        if (t.avail_out_kbps(stats.node) < need_out) continue;
        if (t.avail_cpu_fraction(stats.node) < need_cpu) continue;
        // Latency SLO: a saturated node predicts unbounded delay — skip.
        if (req.deadline_ms > 0 && options_.latency_model != nullptr &&
            options_.latency_model->saturated(&stats, need_cpu)) {
          continue;
        }
        scored.emplace_back(hop_cost(prev, stats.node, req.destination,
                                     st == k - 1, t),
                            stats.node);
      }
      std::sort(scored.begin(), scored.end());
      out.reserve(scored.size());
      for (const auto& [cost, node] : scored) out.push_back(node);
      return out;
    };

    std::vector<Frame> stack;
    std::vector<sim::NodeIndex> chosen(std::size_t(k), sim::kInvalidNode);
    int backtracks_left = options_.backtrack_budget;
    stack.push_back(Frame{sorted_candidates(0, req.source, tracker), 0,
                          tracker});
    bool composed = false;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const int st = int(stack.size()) - 1;
      if (frame.next >= frame.candidates.size()) {
        // Stage exhausted: unwind and re-try the previous stage with its
        // next candidate (that step is the backtrack).
        stack.pop_back();
        if (stack.empty()) break;
        if (backtracks_left-- <= 0) {
          stack.clear();
          break;
        }
        ++last_backtracks_;
        continue;
      }
      // Trying any candidate other than a frame's cheapest is also a
      // deviation from the greedy walk; the unwind above already charged
      // it, so nothing extra here.
      const sim::NodeIndex pick = frame.candidates[frame.next++];
      chosen[std::size_t(st)] = pick;
      tracker = frame.before;
      tracker.consume(pick, math.wire_in_kbps(st, demand),
                      math.wire_out_kbps(st, demand),
                      math.in_ups(st, demand) *
                          math.cpu_secs_per_in_unit(st));
      if (st == k - 1) {
        composed = true;
        break;
      }
      stack.push_back(
          Frame{sorted_candidates(st + 1, pick, tracker), 0, tracker});
    }
    if (!composed) {
      result.error =
          "no capable provider chain in partial view for substream " +
          std::to_string(ss);
      return result;
    }

    auto shares = std::vector<std::vector<runtime::Placement>>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      shares[std::size_t(st)].push_back(
          runtime::Placement{chosen[std::size_t(st)], demand});
    }
    tracker.consume(req.source, 0, math.wire_in_kbps(0, demand));
    tracker.consume(req.destination, math.wire_in_kbps(k, demand), 0);
    all_shares.push_back(std::move(shares));
  }

  result.plan = build_app_plan(req, *input.catalog, all_shares);

  // Latency SLO admission over the finished chain (same semantics as
  // MinCostComposer: the candidate plan is not in the snapshots yet).
  if (req.deadline_ms > 0 && options_.latency_model != nullptr) {
    std::map<sim::NodeIndex, const monitor::NodeStats*> by_node;
    for (const auto& [service, stats] : input.providers) {
      for (const auto& s : stats) by_node.emplace(s.node, &s);
    }
    by_node.emplace(input.source_stats.node, &input.source_stats);
    by_node.emplace(input.destination_stats.node, &input.destination_stats);
    const double predicted = options_.latency_model->predict_ms(
        result.plan,
        [&by_node](sim::NodeIndex n) -> const monitor::NodeStats* {
          const auto it = by_node.find(n);
          return it == by_node.end() ? nullptr : it->second;
        });
    result.predicted_latency_ms = predicted;
    if (!(predicted <= req.deadline_ms)) {
      std::ostringstream os;
      os << "predicted latency " << predicted << " ms exceeds deadline "
         << req.deadline_ms << " ms";
      result.error = os.str();
      result.plan = {};
      return result;
    }
  }

  result.admitted = true;
  return result;
}

}  // namespace rasc::core
