// Queueing-theoretic end-to-end latency prediction (DRS-style).
//
// Models every component instance as an M/G/1 queue: units arrive at the
// planned input rate, service times come from ServiceSpec
// (cpu_time_per_unit with uniform +-jitter), and the server is the hosting
// node's single CPU — so the utilization that drives queueing delay is the
// node's *aggregate* utilization across all co-located components, not
// just this component's own load. An app's predicted end-to-end latency is
// then, per substream, the sum along the component chain of link latency
// plus per-stage queueing wait plus mean service time; the app's latency
// is the max over its substreams (they ship in parallel).
//
// With uniform service jitter j the second moment is
//   E[S^2] = m^2 (1 + j^2/3),
// so the Pollaczek-Khinchine mean wait
//   W = lambda E[S^2] / (2 (1 - rho)) = rho m (1 + j^2/3) / (2 (1 - rho)),
// which reduces exactly to the M/D/1 closed form W = rho m / (2 (1 - rho))
// when j = 0 — the anchor for the property test. Utilization at or above
// `utilization_cap` predicts infinity: the queue has no steady state, so
// admission must price the node as unusable.
//
// Hops are modeled too, when the endpoint's stats carry link capacities:
// each hop pays the sender's egress port and the receiver's ingress port —
// deterministic serialization (unit bits / effective capacity) plus an
// M/D/1 port wait at the link's utilization, with the plan's own planned
// wire rates layered on the measured base exactly like the CPU pass. A
// bandwidth fault that sags an access link therefore shows up as a
// predicted latency spike *before* the port backlog starts dropping
// units. Stats with zero capacities (synthetic fixtures) contribute no
// wire terms — the prediction degenerates to the pure CPU chain.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "monitor/node_stats.hpp"
#include "runtime/plan.hpp"
#include "runtime/service.hpp"
#include "sim/message.hpp"

namespace rasc::core {

class LatencyModel {
 public:
  struct Options {
    /// Mean one-way latency of the overlay link a -> b in milliseconds
    /// (0 for a == b). Required.
    std::function<double(sim::NodeIndex, sim::NodeIndex)> link_latency_ms;
    /// Utilization at or above this predicts an unbounded queue.
    double utilization_cap = 0.98;
  };

  /// Looks up the freshest known stats for a node; nullptr when the node
  /// is unknown (treated as idle).
  using StatsFn = std::function<const monitor::NodeStats*(sim::NodeIndex)>;

  LatencyModel(const runtime::ServiceCatalog& catalog, Options options);

  /// Pollaczek-Khinchine mean queueing wait (ms) for a service with mean
  /// service time `mean_service_ms` and uniform jitter fraction `jitter`,
  /// on a server running at aggregate utilization `rho`. Returns +inf at
  /// rho >= cap.
  static double mg1_wait_ms(double mean_service_ms, double jitter,
                            double rho, double cap);

  /// Predicted end-to-end latency (ms) of `plan`, taking the base
  /// utilization of each node from `stats_of` and layering the plan's own
  /// planned rates on top. The caller chooses the base: for admission the
  /// candidate plan is not yet reflected in stats; for adaptation the
  /// deployed plan's contribution must first be credited back (see
  /// RateAdapter). Returns +inf when any node the plan touches would run
  /// at or past the utilization cap. `per_substream`, when non-null,
  /// receives one prediction per substream in plan order.
  double predict_ms(const runtime::AppPlan& plan, const StatsFn& stats_of,
                    std::vector<double>* per_substream = nullptr) const;

  /// Aggregate CPU utilization of `node` after adding `added_rho` to its
  /// measured/reserved base. Saturation test for candidate pruning.
  bool saturated(const monitor::NodeStats* stats, double added_rho) const;

  double utilization_cap() const { return options_.utilization_cap; }

  static constexpr double kInfinity =
      std::numeric_limits<double>::infinity();

 private:
  const runtime::ServiceCatalog& catalog_;
  Options options_;
};

}  // namespace rasc::core
