#include "core/rate_adapter.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/composer.hpp"
#include "core/latency_model.hpp"
#include "core/plan_math.hpp"
#include "runtime/deploy_messages.hpp"
#include "util/logging.hpp"

namespace rasc::core {

namespace {

void finish(const RateAdapter::AttemptCallback& done, bool shipped) {
  if (done) done(shipped);
}

/// Rate-equality tolerance when diffing plans: anything below one flow
/// unit (milli-ups) cannot change a solved allocation.
constexpr double kRateEps = 1.0 / CompositionGraph::kScale;

bool same_placements(const std::vector<runtime::Placement>& a,
                     const std::vector<runtime::Placement>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& pa : a) {
    bool matched = false;
    for (const auto& pb : b) {
      if (pb.node != pa.node) continue;
      matched =
          std::abs(pb.rate_units_per_sec - pa.rate_units_per_sec) < kRateEps;
      break;
    }
    if (!matched) return false;
  }
  return true;
}

/// Per-node wire/CPU usage of one substream's candidate shares (same
/// accumulator shape the composer's repair pass uses).
struct NodeUsage {
  double in_kbps = 0;
  double out_kbps = 0;
  double cpu_fraction = 0;
};

std::map<sim::NodeIndex, NodeUsage> accumulate_usage(
    const std::vector<std::vector<runtime::Placement>>& shares,
    const SubstreamMath& math) {
  std::map<sim::NodeIndex, NodeUsage> usage;
  for (std::size_t st = 0; st < shares.size(); ++st) {
    for (const auto& p : shares[st]) {
      NodeUsage& u = usage[p.node];
      u.in_kbps += math.wire_in_kbps(int(st), p.rate_units_per_sec);
      u.out_kbps += math.wire_out_kbps(int(st), p.rate_units_per_sec);
      u.cpu_fraction += math.in_ups(int(st), p.rate_units_per_sec) *
                        math.cpu_secs_per_in_unit(int(st));
    }
  }
  return usage;
}

}  // namespace

RateAdapter::RateAdapter(sim::Simulator& simulator, sim::Network& network,
                         monitor::StatsAgent& stats,
                         const runtime::ServiceCatalog& catalog,
                         sim::NodeIndex node, Params params,
                         obs::MetricRegistry* registry)
    : simulator_(simulator),
      network_(network),
      stats_(stats),
      catalog_(catalog),
      node_(node),
      params_(params),
      owned_metrics_(registry == nullptr
                         ? std::make_unique<obs::MetricRegistry>()
                         : nullptr),
      metrics_(registry != nullptr ? registry : owned_metrics_.get()) {
  obs::Labels labels;
  labels.node = node_;
  attempts_ = &metrics_->counter("adapt.attempts", labels);
  deltas_shipped_ = &metrics_->counter("adapt.deltas_shipped", labels);
  skipped_ = &metrics_->counter("adapt.skipped", labels);
  infeasible_ = &metrics_->counter("adapt.infeasible", labels);
  teardowns_ = &metrics_->counter("adapt.teardowns", labels);
  solve_us_ = &metrics_->histogram("adapt.solve_us", labels);
}

RateAdapter::~RateAdapter() {
  for (auto& [app, t] : tracked_) {
    if (t->timer != 0) simulator_.cancel(t->timer);
  }
}

void RateAdapter::track(
    const ServiceRequest& request, const runtime::AppPlan& plan,
    std::map<std::string, std::vector<sim::NodeIndex>> providers,
    sim::SimTime stream_stop) {
  auto t = std::make_unique<Tracked>();
  t->request = request;
  t->plan = plan;
  t->providers = std::move(providers);
  t->stream_stop = stream_stop;

  // Pin the candidate universe and build one persistent flow network per
  // substream. Capacities and costs are placeholders — every attempt
  // rewrites them from fresh statistics before solving.
  for (const auto& sub : request.substreams) {
    SubstreamState state;
    const int k = int(sub.services.size());
    state.candidates.resize(std::size_t(k));
    auto stages = std::vector<std::vector<CandidateCap>>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      const auto it = t->providers.find(sub.services[std::size_t(st)]);
      if (it == t->providers.end() || it->second.empty()) {
        RASC_LOG(kWarn) << "adapter: no providers recorded for service "
                        << sub.services[std::size_t(st)] << "; app "
                        << plan.app << " not tracked";
        return;
      }
      for (const sim::NodeIndex node : it->second) {
        state.candidates[std::size_t(st)].push_back(node);
        stages[std::size_t(st)].push_back(CandidateCap{node, 0, 0, 0});
      }
    }
    const SubstreamMath math(sub, catalog_, request.unit_bytes);
    state.graph = std::make_unique<CompositionGraph>(
        stages, 0, 0, math.delivered_ups(sub.rate_kbps));
    t->substreams.push_back(std::move(state));
  }

  const runtime::AppId app = plan.app;
  tracked_[app] = std::move(t);
  schedule_tick(app);
}

void RateAdapter::forget(runtime::AppId app) {
  const auto it = tracked_.find(app);
  if (it == tracked_.end()) return;
  if (it->second->timer != 0) simulator_.cancel(it->second->timer);
  tracked_.erase(it);
}

void RateAdapter::note_teardown() { teardowns_->add(); }

const runtime::AppPlan* RateAdapter::current_plan(runtime::AppId app) const {
  const auto it = tracked_.find(app);
  return it == tracked_.end() ? nullptr : &it->second->plan;
}

void RateAdapter::attempt_now(runtime::AppId app, AttemptCallback done) {
  attempt(app, /*bypass_cooldown=*/true, std::move(done));
}

void RateAdapter::schedule_tick(runtime::AppId app) {
  const auto it = tracked_.find(app);
  if (it == tracked_.end()) return;
  Tracked& t = *it->second;
  t.timer = 0;
  // Stop adapting when the next tick would land at or past the stream's
  // end: a delta shipped then could never take effect.
  if (simulator_.now() + params_.interval >= t.stream_stop) {
    tracked_.erase(it);
    return;
  }
  std::weak_ptr<bool> alive = alive_;
  t.timer = simulator_.call_after(params_.interval, [this, app, alive] {
    if (alive.expired()) return;
    attempt(app, /*bypass_cooldown=*/false, [this, app, alive](bool) {
      if (alive.expired()) return;
      schedule_tick(app);
    });
  });
}

void RateAdapter::attempt(runtime::AppId app, bool bypass_cooldown,
                          AttemptCallback done) {
  const auto it = tracked_.find(app);
  if (it == tracked_.end()) {
    finish(done, false);
    return;
  }
  Tracked& t = *it->second;
  if (t.busy || (!bypass_cooldown && simulator_.now() < t.cooldown_until)) {
    skipped_->add();
    finish(done, false);
    return;
  }
  attempts_->add();
  t.busy = true;

  std::vector<sim::NodeIndex> targets;
  for (const auto& [service, nodes] : t.providers) {
    (void)service;
    targets.insert(targets.end(), nodes.begin(), nodes.end());
  }
  targets.push_back(t.request.source);
  targets.push_back(t.request.destination);
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  std::weak_ptr<bool> alive = alive_;
  auto deliver = [this, app, alive, done = std::move(done)](
                     std::vector<monitor::NodeStats> stats) mutable {
    if (alive.expired()) return;
    on_stats(app, std::move(stats), std::move(done));
  };
  if (stats_provider_) {
    stats_provider_(targets, std::move(deliver));
  } else {
    stats_.query_many(targets, std::move(deliver));
  }
}

void RateAdapter::on_stats(runtime::AppId app,
                           std::vector<monitor::NodeStats> stats,
                           AttemptCallback done) {
  const auto it = tracked_.find(app);
  if (it == tracked_.end()) {  // forgotten while the query was in flight
    finish(done, false);
    return;
  }
  Tracked& t = *it->second;
  t.busy = false;

  std::map<sim::NodeIndex, monitor::NodeStats> by_node;
  for (auto& s : stats) by_node[s.node] = s;
  if (by_node.find(t.request.source) == by_node.end() ||
      by_node.find(t.request.destination) == by_node.end()) {
    // Without endpoint snapshots the gate capacities are unknowable.
    infeasible_->add();
    finish(done, false);
    return;
  }

  // Credit the app's own deployed usage back to the snapshots: the rates
  // it currently holds are capacity the re-plan may freely re-assign.
  // Both the measured and the reserved figure are credited — availability
  // accounting takes max(measured, reserved) of what remains.
  const auto credit = [&by_node](sim::NodeIndex node, double in_kbps,
                                 double out_kbps, double cpu_fraction) {
    const auto bit = by_node.find(node);
    if (bit == by_node.end()) return;
    monitor::NodeStats& s = bit->second;
    s.used_in_kbps = std::max(0.0, s.used_in_kbps - in_kbps);
    s.reserved_in_kbps = std::max(0.0, s.reserved_in_kbps - in_kbps);
    s.used_out_kbps = std::max(0.0, s.used_out_kbps - out_kbps);
    s.reserved_out_kbps = std::max(0.0, s.reserved_out_kbps - out_kbps);
    s.cpu_used_fraction = std::max(0.0, s.cpu_used_fraction - cpu_fraction);
    s.cpu_reserved_fraction =
        std::max(0.0, s.cpu_reserved_fraction - cpu_fraction);
  };
  for (std::size_t ss = 0; ss < t.plan.substreams.size(); ++ss) {
    const auto& plan_sub = t.plan.substreams[ss];
    const SubstreamMath math(t.request.substreams[ss], catalog_,
                             t.request.unit_bytes);
    const int k = int(plan_sub.stages.size());
    for (int st = 0; st < k; ++st) {
      for (const auto& p : plan_sub.stages[std::size_t(st)].placements) {
        // Placements carry per-instance *input* ups; the math speaks
        // delivered ups.
        const double delivered =
            p.rate_units_per_sec / math.in_units_per_delivered(st);
        credit(p.node, math.wire_in_kbps(st, delivered),
               math.wire_out_kbps(st, delivered),
               math.in_ups(st, delivered) * math.cpu_secs_per_in_unit(st));
      }
    }
    const double delivered_total = plan_sub.rate_units_per_sec;
    credit(t.plan.source, 0, math.wire_in_kbps(0, delivered_total), 0);
    credit(t.plan.destination, math.wire_in_kbps(k, delivered_total), 0, 0);
  }

  // Predictive trigger: model the deployed plan's end-to-end latency on
  // the credited snapshots (base load of everyone else + this plan's own
  // planned rates — the same accounting admission used). A predicted
  // deadline violation is acted on below even when the cost hysteresis
  // would wait, catching load drift before drops materialize.
  const bool predictive = params_.predictive &&
                          params_.latency_model != nullptr &&
                          t.request.deadline_ms > 0;
  const auto stats_of =
      [&by_node](sim::NodeIndex n) -> const monitor::NodeStats* {
    const auto sit = by_node.find(n);
    return sit == by_node.end() ? nullptr : &sit->second;
  };
  bool predicted_violation = false;
  double predicted_ms = 0;
  if (predictive) {
    predicted_ms = params_.latency_model->predict_ms(t.plan, stats_of);
    if (t.predict_gauge == nullptr) {
      obs::Labels labels;
      labels.node = node_;
      labels.app = app;
      t.predict_gauge = &metrics_->gauge("predict.latency_ms", labels);
    }
    t.predict_gauge->set(std::isfinite(predicted_ms) ? predicted_ms
                                                     : -1.0);
    predicted_violation = !(predicted_ms <= t.request.deadline_ms);
    if (predicted_violation) {
      if (predict_triggers_ == nullptr) {
        obs::Labels labels;
        labels.node = node_;
        predict_triggers_ = &metrics_->counter("adapt.predict_triggers",
                                               labels);
      }
      predict_triggers_->add();
    }
  }

  std::vector<std::vector<std::vector<runtime::Placement>>> shares;
  std::int64_t new_cost = 0;
  std::int64_t current_cost = 0;
  bool latency_aware = predicted_violation;
  bool solved = resolve(t, by_node, &shares, &new_cost, &current_cost,
                        latency_aware);
  if (!solved && latency_aware) {
    // Latency-aware pricing zeroes every saturated candidate, which can
    // leave a stage with no capacity at all exactly when the fleet is
    // hottest. Freezing there would be strictly worse than reactive
    // behavior — fall back to plain pricing and let the normal cost
    // hysteresis decide.
    latency_aware = false;
    shares.clear();
    solved = resolve(t, by_node, &shares, &new_cost, &current_cost, false);
  }
  if (!solved) {
    infeasible_->add();
    finish(done, false);
    return;
  }

  // Hysteresis: only act on a clear improvement — chasing sub-threshold
  // cost wiggles would thrash placements for nothing.
  bool improves =
      current_cost > new_cost &&
      double(current_cost - new_cost) >=
          params_.hysteresis * double(current_cost);
  runtime::AppPlan new_plan;
  bool plan_built = false;
  if (!improves && predicted_violation) {
    // An SLO violation is already predicted: waiting for the cost
    // hysteresis means paying it first. But the bypass is earned only by
    // a candidate the model predicts *meets* the deadline. SLO windows
    // are binary — a plan that merely shaves latency (or cost) while
    // staying above the deadline fixes nothing, and the migration's
    // transient disruption can itself starve a window. If no candidate
    // crosses below, holding still is strictly better than churning.
    new_plan = build_app_plan(t.request, catalog_, shares);
    plan_built = true;
    const double candidate_ms =
        params_.latency_model->predict_ms(new_plan, stats_of);
    improves = candidate_ms <= t.request.deadline_ms;
  }
  if (!improves) {
    skipped_->add();
    finish(done, false);
    return;
  }

  if (!plan_built) new_plan = build_app_plan(t.request, catalog_, shares);
  const int sent = ship_deltas(t, new_plan);
  if (sent == 0) {
    skipped_->add();
    finish(done, false);
    return;
  }
  deltas_shipped_->add(sent);
  t.plan = std::move(new_plan);
  t.cooldown_until = simulator_.now() + params_.cooldown;
  RASC_LOG(kDebug) << "adapter: app " << app << " shipped " << sent
                   << " deltas (cost " << current_cost << " -> " << new_cost
                   << ")";
  finish(done, true);
}

bool RateAdapter::resolve(
    Tracked& t, const std::map<sim::NodeIndex, monitor::NodeStats>& by_node,
    std::vector<std::vector<std::vector<runtime::Placement>>>* shares,
    std::int64_t* new_cost, std::int64_t* current_cost,
    bool latency_aware) {
  // A local ComposeInput feeds the shared ResidualTracker so availability
  // semantics (headroom, max(measured, reserved)) match composition.
  ComposeInput input;
  input.request = t.request;
  input.catalog = &catalog_;
  input.source_stats = by_node.at(t.request.source);
  input.destination_stats = by_node.at(t.request.destination);
  for (const auto& [service, nodes] : t.providers) {
    auto& list = input.providers[service];
    for (const sim::NodeIndex node : nodes) {
      const auto bit = by_node.find(node);
      if (bit != by_node.end()) list.push_back(bit->second);
    }
  }
  ResidualTracker tracker(input);
  const MinCostComposer::Options& opt = params_.cost;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t ss = 0; ss < t.request.substreams.size(); ++ss) {
    const auto& sub = t.request.substreams[ss];
    SubstreamState& state = t.substreams[ss];
    CompositionGraph& cg = *state.graph;
    const SubstreamMath math(sub, catalog_, t.request.unit_bytes);
    const double demand = math.delivered_ups(sub.rate_kbps);
    const int k = math.num_stages();

    // Fresh capacities and costs on the persistent graph. A candidate
    // whose stats query failed is priced as unusable, not unknown.
    cg.reset_flow();
    auto caps = std::vector<std::vector<double>>(std::size_t(k));
    auto tighten = std::vector<std::vector<double>>(std::size_t(k));
    // Per-stage unit costs, reused to price the deployed plan below.
    auto costs =
        std::vector<std::map<sim::NodeIndex, flow::Cost>>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      const auto& cand_nodes = state.candidates[std::size_t(st)];
      caps[std::size_t(st)].resize(cand_nodes.size(), 0.0);
      tighten[std::size_t(st)].assign(cand_nodes.size(), 1.0);
      for (std::size_t j = 0; j < cand_nodes.size(); ++j) {
        const sim::NodeIndex node = cand_nodes[j];
        const auto bit = by_node.find(node);
        double cap = 0, drop = 1.0, util = 1.0;
        if (bit != by_node.end()) {
          cap = math.max_delivered_ups(
              st, tracker.avail_in_kbps(node) * opt.utilization_target,
              tracker.avail_out_kbps(node) * opt.utilization_target,
              opt.consider_cpu ? tracker.avail_cpu_fraction(node) *
                                     opt.utilization_target
                               : -1.0);
          drop = tracker.drop_known(node) ? tracker.drop_ratio(node)
                                          : opt.unknown_drop_prior;
          const double cap_total = bit->second.capacity_in_kbps +
                                   bit->second.capacity_out_kbps;
          util = cap_total > 0
                     ? 1.0 - (tracker.avail_in_kbps(node) +
                              tracker.avail_out_kbps(node)) /
                                 cap_total
                     : 1.0;
          if (latency_aware) {
            // A deadline violation is predicted: queueing delay, not wire
            // utilization, is what the re-solve must flee. Fold the
            // node's base CPU utilization (other tenants, after this
            // app's credit-back) into the cost's utilization term and
            // price saturated nodes unusable — the solver then spreads
            // rate onto cool CPUs instead of regenerating the hot plan.
            const monitor::NodeStats& s = bit->second;
            util = std::max(util, std::max(s.cpu_used_fraction,
                                           s.cpu_reserved_fraction));
            if (params_.latency_model != nullptr &&
                params_.latency_model->saturated(&s, 0.0)) {
              cap = 0;
            }
          }
        }
        caps[std::size_t(st)][j] = cap;
        cg.set_candidate_cap(st, int(j), cap);
        cg.set_candidate_cost(st, int(j), drop, util);
        costs[std::size_t(st)].emplace(
            node, CompositionGraph::unit_cost(drop, util));
      }
    }
    cg.set_source_cap(tracker.avail_out_kbps(t.request.source) /
                      math.wire_in_kbps(0, 1.0));
    cg.set_dest_cap(tracker.avail_in_kbps(t.request.destination) /
                    math.wire_in_kbps(k, 1.0));

    // Solve + the composer's capacity-repair loop: tighten the splitting
    // arcs of any physical node that several stages overload together.
    std::vector<std::vector<runtime::Placement>> accepted_shares;
    bool accepted = false;
    std::vector<std::pair<int, int>> dirty;
    for (int iter = 0; !accepted && iter < opt.max_repair_iterations;
         ++iter) {
      if (iter > 0) {
        cg.reset_flow();
        for (const auto& [st, j] : dirty) {
          cg.set_candidate_cap(st, j,
                               caps[std::size_t(st)][std::size_t(j)] *
                                   tighten[std::size_t(st)][std::size_t(j)]);
        }
        dirty.clear();
      }
      flow::SolveOptions solve_options;
      solve_options.assume_nonnegative_costs = true;
      solve_options.warm_start = true;
      const auto solved =
          ssp_.solve(cg.graph(), cg.source(), cg.sink(), cg.demand(),
                     solve_options);
      if (!solved.feasible) return false;
      const auto raw_shares = cg.extract_shares(0.0);
      const auto usage = accumulate_usage(raw_shares, math);
      bool violated = false;
      for (const auto& [node, u] : usage) {
        const double ai =
            tracker.avail_in_kbps(node) * opt.utilization_target;
        const double ao =
            tracker.avail_out_kbps(node) * opt.utilization_target;
        double factor = 1.0;
        if (u.in_kbps > ai * 1.02) factor = std::min(factor, ai / u.in_kbps);
        if (u.out_kbps > ao * 1.02) {
          factor = std::min(factor, ao / u.out_kbps);
        }
        if (latency_aware && u.cpu_fraction > 0) {
          // The bandwidth-only repair happily stacks several stages of
          // this very app on one node — per-stage costs cannot see the
          // aggregate, and an M/G/1 wait at the stacked rho is exactly
          // the predicted violation that triggered this round. Repair
          // aggregate CPU (base load plus the candidate's own planned
          // CPU) against the rho budget so the flow spreads instead.
          const auto bit = by_node.find(node);
          const double base_rho =
              bit == by_node.end()
                  ? 0.0
                  : std::max(bit->second.cpu_used_fraction,
                             bit->second.cpu_reserved_fraction);
          const double allowed =
              std::max(0.0, params_.predictive_rho_target - base_rho);
          if (u.cpu_fraction > allowed * 1.02) {
            factor = std::min(factor, allowed / u.cpu_fraction);
          }
        }
        if (factor >= 1.0) continue;
        violated = true;
        for (int st = 0; st < k; ++st) {
          double share_delivered = 0;
          for (const auto& p : raw_shares[std::size_t(st)]) {
            if (p.node == node) share_delivered = p.rate_units_per_sec;
          }
          if (share_delivered <= 0) continue;
          const auto& cand_nodes = state.candidates[std::size_t(st)];
          for (std::size_t j = 0; j < cand_nodes.size(); ++j) {
            if (cand_nodes[j] != node) continue;
            const double original = caps[std::size_t(st)][j];
            if (original <= 0) continue;
            const double target = share_delivered * factor;
            const double tightened =
                std::min(tighten[std::size_t(st)][j], target / original);
            if (tightened < tighten[std::size_t(st)][j]) {
              tighten[std::size_t(st)][j] = tightened;
              dirty.emplace_back(st, int(j));
            }
          }
        }
      }
      if (!violated) {
        accepted_shares = cg.extract_shares(opt.min_share_fraction);
        *new_cost += solved.cost;
        accepted = true;
      }
    }
    if (!accepted) return false;

    // Price the deployed plan's placements with this round's unit costs:
    // the hysteresis comparison must use one consistent cost model.
    const auto& plan_sub = t.plan.substreams[ss];
    for (std::size_t st = 0; st < plan_sub.stages.size(); ++st) {
      for (const auto& p : plan_sub.stages[st].placements) {
        const double delivered =
            p.rate_units_per_sec / math.in_units_per_delivered(int(st));
        const auto cit = costs[st].find(p.node);
        // A deployed node outside the candidate set (cannot normally
        // happen) is priced as fully dropping.
        const flow::Cost unit =
            cit != costs[st].end()
                ? cit->second
                : CompositionGraph::unit_cost(1.0, 1.0);
        *current_cost += unit * CompositionGraph::flow_units(delivered);
      }
    }

    // Algorithm 1's capacity update before the next substream.
    const auto usage = accumulate_usage(accepted_shares, math);
    for (const auto& [node, u] : usage) {
      tracker.consume(node, u.in_kbps, u.out_kbps, u.cpu_fraction);
    }
    tracker.consume(t.request.source, 0, math.wire_in_kbps(0, demand));
    tracker.consume(t.request.destination, math.wire_in_kbps(k, demand), 0);
    shares->push_back(std::move(accepted_shares));
  }
  solve_us_->observe(double(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return true;
}

int RateAdapter::ship_deltas(Tracked& t, const runtime::AppPlan& new_plan) {
  int sent = 0;
  for (std::size_t ss = 0; ss < new_plan.substreams.size(); ++ss) {
    const auto& old_sub = t.plan.substreams[ss];
    const auto& new_sub = new_plan.substreams[ss];
    const SubstreamMath math(t.request.substreams[ss], catalog_,
                             t.request.unit_bytes);
    const int k = int(new_sub.stages.size());

    // A stage's components must be updated when their own allocation
    // changed OR the downstream split they feed changed.
    auto changed = std::vector<bool>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      changed[std::size_t(st)] =
          !same_placements(old_sub.stages[std::size_t(st)].placements,
                           new_sub.stages[std::size_t(st)].placements);
    }

    for (int st = 0; st < k; ++st) {
      const bool next_changed = st + 1 < k && changed[std::size_t(st + 1)];
      if (!changed[std::size_t(st)] && !next_changed) continue;
      const auto& old_pl = old_sub.stages[std::size_t(st)].placements;
      const auto& new_pl = new_sub.stages[std::size_t(st)].placements;
      const std::string& service = new_sub.stages[std::size_t(st)].service;
      const std::int64_t in_bytes = std::llround(math.in_unit_bytes(st));
      std::vector<runtime::Placement> next;
      if (st + 1 < k) {
        next = new_sub.stages[std::size_t(st + 1)].placements;
      } else {
        next.push_back(runtime::Placement{new_plan.destination,
                                          new_sub.rate_units_per_sec});
      }
      const runtime::ComponentKey key{new_plan.app, std::int32_t(ss),
                                      std::int32_t(st)};

      for (const auto& p : new_pl) {
        const bool survivor =
            std::any_of(old_pl.begin(), old_pl.end(),
                        [&](const runtime::Placement& o) {
                          return o.node == p.node;
                        });
        if (survivor) {
          auto msg = std::make_shared<runtime::UpdateComponentMsg>();
          msg->key = key;
          msg->rate_units_per_sec = p.rate_units_per_sec;
          msg->in_unit_bytes = in_bytes;
          msg->next = next;
          const auto size = msg->wire_size();
          network_.send(node_, p.node, size, std::move(msg));
        } else {
          auto msg = std::make_shared<runtime::AddPlacementMsg>();
          msg->key = key;
          msg->service = service;
          msg->rate_units_per_sec = p.rate_units_per_sec;
          msg->in_unit_bytes = in_bytes;
          msg->next = next;
          const auto size = msg->wire_size();
          network_.send(node_, p.node, size, std::move(msg));
        }
        ++sent;
      }

      for (const auto& o : old_pl) {
        const bool retired =
            std::none_of(new_pl.begin(), new_pl.end(),
                         [&](const runtime::Placement& p) {
                           return p.node == o.node;
                         });
        if (!retired) continue;
        // Retire after a grace period so in-flight units addressed to the
        // old instance drain instead of counting unroutable.
        std::weak_ptr<bool> alive = alive_;
        const sim::NodeIndex target = o.node;
        simulator_.call_after(params_.remove_grace,
                              [this, alive, target, key] {
                                if (alive.expired()) return;
                                auto msg = std::make_shared<
                                    runtime::RemovePlacementMsg>();
                                msg->key = key;
                                network_.send(
                                    node_, target,
                                    runtime::RemovePlacementMsg::kBytes,
                                    std::move(msg));
                              });
        ++sent;
      }
    }

    // The source's stage-0 split follows any first-stage change.
    if (changed[0]) {
      auto msg = std::make_shared<runtime::UpdateSourceSplitMsg>();
      msg->app = new_plan.app;
      msg->substream = std::int32_t(ss);
      msg->rate_units_per_sec = new_sub.stages[0].total_rate();
      msg->first_stage = new_sub.stages[0].placements;
      const auto size = msg->wire_size();
      network_.send(node_, new_plan.source, size, std::move(msg));
      ++sent;
    }
  }
  return sent;
}

}  // namespace rasc::core
