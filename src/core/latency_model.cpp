#include "core/latency_model.hpp"

#include <map>
#include <stdexcept>

#include "sim/time.hpp"

namespace rasc::core {
namespace {

double base_cpu(const monitor::NodeStats* stats) {
  if (stats == nullptr) return 0;
  return stats->cpu_used_fraction > stats->cpu_reserved_fraction
             ? stats->cpu_used_fraction
             : stats->cpu_reserved_fraction;
}

/// Wire load one plan adds to a node's access ports, in kbps.
struct WireLoad {
  double in_kbps = 0;
  double out_kbps = 0;
};

double to_kbps(double units_per_sec, double unit_bytes) {
  return units_per_sec * unit_bytes * 8.0 / 1000.0;
}

/// One side of a hop: deterministic serialization at the port's effective
/// capacity plus the M/D/1 port wait at its utilization (base usage plus
/// the plan's own planned rate). Zero when stats are missing or carry no
/// capacity — synthetic fixtures degenerate to the pure CPU chain.
double port_ms(const monitor::NodeStats* stats, bool egress,
               double unit_bytes, double added_kbps, double cap) {
  if (stats == nullptr) return 0;
  const double capacity =
      egress ? stats->capacity_out_kbps : stats->capacity_in_kbps;
  if (capacity <= 0) return 0;
  const double used =
      egress ? (stats->used_out_kbps > stats->reserved_out_kbps
                    ? stats->used_out_kbps
                    : stats->reserved_out_kbps)
             : (stats->used_in_kbps > stats->reserved_in_kbps
                    ? stats->used_in_kbps
                    : stats->reserved_in_kbps);
  const double rho = (used + added_kbps) / capacity;
  // bits / (kbit/s) = ms.
  const double tx_ms = unit_bytes * 8.0 / capacity;
  return tx_ms + LatencyModel::mg1_wait_ms(tx_ms, 0.0, rho, cap);
}

}  // namespace

LatencyModel::LatencyModel(const runtime::ServiceCatalog& catalog,
                           Options options)
    : catalog_(catalog), options_(std::move(options)) {
  if (!options_.link_latency_ms) {
    throw std::invalid_argument("LatencyModel requires link_latency_ms");
  }
}

double LatencyModel::mg1_wait_ms(double mean_service_ms, double jitter,
                                 double rho, double cap) {
  if (rho <= 0) return 0;
  if (rho >= cap) return kInfinity;
  // E[S^2]/E[S] = m (1 + j^2/3) for uniform service in m * [1-j, 1+j].
  return rho * mean_service_ms * (1.0 + jitter * jitter / 3.0) /
         (2.0 * (1.0 - rho));
}

bool LatencyModel::saturated(const monitor::NodeStats* stats,
                             double added_rho) const {
  return base_cpu(stats) + added_rho >= options_.utilization_cap;
}

double LatencyModel::predict_ms(const runtime::AppPlan& plan,
                                const StatsFn& stats_of,
                                std::vector<double>* per_substream) const {
  if (per_substream != nullptr) per_substream->clear();

  // Pass 1: CPU utilization and access-port wire load the plan itself
  // adds to each node. Placement rates are per-instance *input* units/sec,
  // so rho_added = lambda * E[S]; wire rates follow the chain's per-stage
  // unit sizes (output_size_factor) and rate ratios.
  std::map<sim::NodeIndex, double> added;
  std::map<sim::NodeIndex, WireLoad> wire;
  for (const auto& ss : plan.substreams) {
    double bytes = double(ss.unit_bytes);
    if (!ss.stages.empty()) {
      wire[plan.source].out_kbps +=
          to_kbps(ss.stages.front().total_rate(), bytes);
    }
    for (const auto& st : ss.stages) {
      const auto& spec = catalog_.get(st.service);
      const double secs_per_unit = sim::to_seconds(spec.cpu_time_per_unit);
      const double out_bytes = bytes * spec.output_size_factor;
      for (const auto& p : st.placements) {
        added[p.node] += p.rate_units_per_sec * secs_per_unit;
        WireLoad& w = wire[p.node];
        w.in_kbps += to_kbps(p.rate_units_per_sec, bytes);
        w.out_kbps +=
            to_kbps(p.rate_units_per_sec * spec.rate_ratio, out_bytes);
      }
      bytes = out_bytes;
    }
    wire[plan.destination].in_kbps += to_kbps(ss.rate_units_per_sec, bytes);
  }
  const auto wire_of = [&wire](sim::NodeIndex n) -> const WireLoad& {
    static const WireLoad kNone;
    const auto it = wire.find(n);
    return it == wire.end() ? kNone : it->second;
  };

  // Pass 2: walk each substream chain. Across a split stage the expected
  // hop latency is the rate-weighted mean over placement pairs (units are
  // routed to instances in proportion to their rate shares, independently
  // per hop).
  double worst = 0;
  for (const auto& ss : plan.substreams) {
    double total_ms = 0;
    double bytes = double(ss.unit_bytes);  // unit size entering each stage
    // (node, rate weight) of the previous hop; starts at the source.
    std::vector<std::pair<sim::NodeIndex, double>> prev{{plan.source, 1.0}};
    for (const auto& st : ss.stages) {
      const auto& spec = catalog_.get(st.service);
      const double mean_ms = sim::to_ms(spec.cpu_time_per_unit);
      const double total_rate = st.total_rate();
      double hop_ms = 0;    // expected link + port latency into this stage
      double stage_ms = 0;  // expected wait + service at this stage
      std::vector<std::pair<sim::NodeIndex, double>> cur;
      cur.reserve(st.placements.size());
      for (const auto& p : st.placements) {
        const double w =
            total_rate > 0
                ? p.rate_units_per_sec / total_rate
                : 1.0 / double(st.placements.size() ? st.placements.size()
                                                    : 1);
        cur.emplace_back(p.node, w);
        const double rx_ms =
            port_ms(stats_of(p.node), /*egress=*/false, bytes,
                    wire_of(p.node).in_kbps, options_.utilization_cap);
        for (const auto& [from, fw] : prev) {
          const double tx_ms =
              from == p.node
                  ? 0.0
                  : port_ms(stats_of(from), /*egress=*/true, bytes,
                            wire_of(from).out_kbps, options_.utilization_cap);
          hop_ms += fw * w *
                    (options_.link_latency_ms(from, p.node) +
                     (from == p.node ? 0.0 : tx_ms + rx_ms));
        }
        const auto it = added.find(p.node);
        const double rho =
            base_cpu(stats_of(p.node)) + (it != added.end() ? it->second : 0);
        const double wait = mg1_wait_ms(mean_ms, spec.cpu_time_jitter, rho,
                                        options_.utilization_cap);
        stage_ms += w * (wait + mean_ms);
      }
      total_ms += hop_ms + stage_ms;
      prev = std::move(cur);
      bytes *= spec.output_size_factor;
    }
    // Final hop into the destination sink.
    for (const auto& [from, fw] : prev) {
      const double wire_ms =
          from == plan.destination
              ? 0.0
              : port_ms(stats_of(from), /*egress=*/true, bytes,
                        wire_of(from).out_kbps, options_.utilization_cap) +
                    port_ms(stats_of(plan.destination), /*egress=*/false,
                            bytes, wire_of(plan.destination).in_kbps,
                            options_.utilization_cap);
      total_ms +=
          fw * (options_.link_latency_ms(from, plan.destination) + wire_ms);
    }
    if (per_substream != nullptr) per_substream->push_back(total_ms);
    if (total_ms > worst) worst = total_ms;
  }
  return worst;
}

}  // namespace rasc::core
