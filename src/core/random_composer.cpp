#include "core/random_composer.hpp"

#include "core/plan_math.hpp"

namespace rasc::core {

ComposeResult RandomComposer::compose(const ComposeInput& input) {
  ComposeResult result;
  if (auto err = input.request.validate(); !err.empty()) {
    result.error = err;
    return result;
  }
  if (input.catalog == nullptr) {
    result.error = "no service catalog";
    return result;
  }

  ResidualTracker tracker(input);
  const auto& req = input.request;
  std::vector<std::vector<std::vector<runtime::Placement>>> all_shares;

  for (std::size_t ss = 0; ss < req.substreams.size(); ++ss) {
    const auto& sub = req.substreams[ss];
    const SubstreamMath math(sub, *input.catalog, req.unit_bytes);
    const double demand = math.delivered_ups(sub.rate_kbps);
    const int k = math.num_stages();

    if (tracker.avail_out_kbps(req.source) < math.wire_in_kbps(0, demand)) {
      result.error = "source lacks output bandwidth";
      return result;
    }
    if (tracker.avail_in_kbps(req.destination) <
        math.wire_in_kbps(k, demand)) {
      result.error = "destination lacks input bandwidth";
      return result;
    }

    auto shares =
        std::vector<std::vector<runtime::Placement>>(std::size_t(k));
    for (int st = 0; st < k; ++st) {
      const auto it = input.providers.find(sub.services[std::size_t(st)]);
      if (it == input.providers.end() || it->second.empty()) {
        result.error = "no providers for service " +
                       sub.services[std::size_t(st)];
        return result;
      }
      const double need_in = math.wire_in_kbps(st, demand);
      const double need_out = math.wire_out_kbps(st, demand);

      // Placement is blind (the paper's random baseline "does not take
      // into account the capacity of the nodes when composing"); only a
      // coarse sanity check rejects picks with essentially no capacity
      // left at all, after a few retries.
      sim::NodeIndex chosen = sim::kInvalidNode;
      for (int attempt = 0; attempt < attempts_; ++attempt) {
        const auto& pick = it->second[std::size_t(rng_.uniform_int(
            0, std::int64_t(it->second.size()) - 1))];
        if (tracker.avail_in_kbps(pick.node) > 0.1 * need_in &&
            tracker.avail_out_kbps(pick.node) > 0.1 * need_out) {
          chosen = pick.node;
          break;
        }
      }
      if (chosen == sim::kInvalidNode) {
        result.error = "random picks lacked capacity for service " +
                       sub.services[std::size_t(st)];
        return result;
      }
      shares[std::size_t(st)].push_back(runtime::Placement{chosen, demand});
      tracker.consume(chosen, need_in, need_out);
    }
    tracker.consume(req.source, 0, math.wire_in_kbps(0, demand));
    tracker.consume(req.destination, math.wire_in_kbps(k, demand), 0);
    all_shares.push_back(std::move(shares));
  }

  result.plan = build_app_plan(req, *input.catalog, all_shares);
  result.admitted = true;
  return result;
}

}  // namespace rasc::core
