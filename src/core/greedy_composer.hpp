// Greedy baseline (paper §4.1): one component per service, placed on the
// provider with the smallest observed drop ratio that still has the
// bandwidth capacity for the full substream rate. The paper's critique:
// "in a single composition, it only calculates the miss ratio once", so it
// keeps piling components onto low-drop nodes until they saturate.
#pragma once

#include "core/composer.hpp"
#include "util/rng.hpp"

namespace rasc::core {

class GreedyComposer final : public Composer {
 public:
  /// Ties on the smallest drop ratio are broken uniformly at random among
  /// the tied feasible providers (the paper leaves ties unspecified; a
  /// fixed-index tie-break would deterministically pile every early
  /// request onto one node, which no real deployment does).
  explicit GreedyComposer(util::Xoshiro256 rng = util::Xoshiro256(0x97eed))
      : rng_(rng) {}

  const char* name() const override { return "greedy"; }
  ComposeResult compose(const ComposeInput& input) override;

 private:
  util::Xoshiro256 rng_;
};

}  // namespace rasc::core
