// Node-side composition coordinator.
//
// Runs the full RASC pipeline for a request submitted at this node
// (paper §3.1): (1) discover providers of each requested service through
// the Pastry DHT, (2) gather utilization statistics from those nodes over
// the network, (3) run the composition algorithm, (4) instantiate the
// components and start the stream. Every step exchanges real messages in
// the simulation, so composition itself costs time and bandwidth.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/composer.hpp"
#include "monitor/stats_protocol.hpp"
#include "obs/metric_registry.hpp"
#include "overlay/pastry_node.hpp"
#include "overlay/registry.hpp"
#include "runtime/node_runtime.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::core {

struct SubmitOutcome {
  ComposeResult compose;
  /// Time from submission until the stream was fully deployed (or the
  /// request failed).
  sim::SimDuration composition_latency = 0;
  /// Providers discovered for each requested service (addresses only;
  /// stats are re-queried when needed). Lets the caller hand an admitted
  /// app to the rate adapter without a second discovery round.
  std::map<std::string, std::vector<sim::NodeIndex>> providers;
  /// Nodes that NACKed a deploy message of this attempt (lease contention
  /// or local failure). A sharded caller repairs its plan against these
  /// instead of treating the rejection as final.
  std::vector<sim::NodeIndex> nacked;
  /// Home of the coordinator shard that admitted the app (kInvalidNode on
  /// the unsharded path). After a standby takeover this is the standby's
  /// node, not the hash home — the caller must attach the app's adapter
  /// and supervisor here.
  sim::NodeIndex admitted_by = sim::kInvalidNode;
};

class Coordinator {
 public:
  using Callback = std::function<void(const SubmitOutcome&)>;

  /// Reliability knobs of the deployment phase. Defaults reproduce the
  /// legacy single-shot protocol exactly — a run with the default policy
  /// is event-for-event identical to older builds. With retransmission
  /// and rollback on, deployment is exactly-once-effective under control
  /// packet loss, duplication and reordering (receiver-side dedup and
  /// epoch checks live in runtime::NodeRuntime).
  struct DeployPolicy {
    /// Retransmissions allowed per deploy message after the original
    /// send (0 = single-shot). Spacing follows the capped_backoff ladder
    /// below; the overall kDeployTimeout deadline is unchanged.
    int retransmit_budget = 0;
    sim::SimDuration retransmit_base = sim::msec(400);
    sim::SimDuration retransmit_max = sim::msec(3200);
    /// On NACK or deadline, send epoch-stamped teardowns to every node
    /// this deployment targeted, releasing partial reservations.
    bool rollback = false;

    bool enabled() const { return retransmit_budget > 0 || rollback; }
  };

  static constexpr sim::SimDuration kDeployTimeout = sim::msec(5000);
  /// DHT lookup attempts per service before the request is rejected.
  static constexpr int kDiscoveryAttempts = 3;
  /// Backoff ladder between retries of a failed lookup: 300ms, 600ms, ...
  /// capped so a flapping overlay root is not hammered in lockstep.
  static constexpr sim::SimDuration kDiscoveryBackoff = sim::msec(300);
  static constexpr sim::SimDuration kDiscoveryBackoffMax = sim::msec(5000);

  /// `registry` is the deployment-wide metric registry; the coordinator
  /// owns a private one when null. Submission outcomes and composition
  /// latency are published under compose.* with this node's label.
  Coordinator(sim::Simulator& simulator, sim::Network& network,
              overlay::PastryNode& pastry, monitor::StatsAgent& stats,
              const runtime::ServiceCatalog& catalog,
              obs::MetricRegistry* registry = nullptr);
  Coordinator(sim::Simulator& simulator, sim::Network& network,
              overlay::PastryNode& pastry, monitor::StatsAgent& stats,
              const runtime::ServiceCatalog& catalog,
              obs::MetricRegistry* registry, DeployPolicy policy);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Composes and deploys `request` using `composer`. The stream runs
  /// [stream_start, stream_stop). `done` fires once deployment completes
  /// or the request is rejected.
  void submit(const ServiceRequest& request, Composer& composer,
              sim::SimTime stream_start, sim::SimTime stream_stop,
              Callback done);

  /// A deployment whose discovery and composition already happened
  /// elsewhere (a coordinator shard composing a whole batch against its
  /// lease view). Runs phase 4 only.
  struct PreparedSubmit {
    ServiceRequest request;
    ComposeResult compose;
    std::map<std::string, std::vector<sim::NodeIndex>> providers;
    sim::SimTime stream_start = 0;
    sim::SimTime stream_stop = 0;
    /// Latency baseline (0: deployment starts the clock now).
    sim::SimTime submitted_at = 0;
    /// Lease stamp for every component/sink deploy of this attempt
    /// (-1: unstamped legacy deploy).
    std::int32_t shard = -1;
    std::function<std::uint64_t(sim::NodeIndex)> lease_epoch_of;
    Callback done;
  };
  /// Deploys an already-composed plan, stamping each component/sink
  /// message with (shard, lease_epoch_of(target)). NACKed nodes are
  /// reported through SubmitOutcome::nacked for plan repair.
  void submit_prepared(PreparedSubmit prepared);

  /// Consumes DeployAck packets addressed to this coordinator.
  bool handle_packet(const sim::Packet& packet);

  /// Fast-forwards the deploy-epoch counter to at least `floor`. A
  /// standby adopting a dead coordinator's apps calls this with the
  /// highest epoch the fleet recorded for them, so this coordinator's
  /// subsequent attempts supersede (rather than lose to) the dead
  /// primary's stamps at the epoch gate.
  void advance_epochs(std::uint64_t floor) {
    epoch_counter_ = std::max(epoch_counter_, floor);
  }

  /// The node this coordinator lives on.
  sim::NodeIndex node() const { return node_; }

 private:
  struct Pending {
    ServiceRequest request;
    Composer* composer = nullptr;
    sim::SimTime submitted_at = 0;
    sim::SimTime stream_start = 0;
    sim::SimTime stream_stop = 0;
    Callback done;

    std::vector<std::string> services;
    std::size_t lookups_outstanding = 0;
    std::map<std::string, std::vector<sim::NodeIndex>> provider_addrs;
    std::vector<std::string> failed_services;

    ComposeResult compose_result;
    std::set<std::uint64_t> awaiting_acks;
    bool any_nack = false;
    /// Senders of failed acks (lease contention repair input).
    std::vector<sim::NodeIndex> nacked;
    /// Lease stamp of this attempt (-1 = legacy unstamped deploy).
    std::int32_t shard = -1;
    std::function<std::uint64_t(sim::NodeIndex)> lease_epoch_of;
    sim::EventId deploy_timeout = 0;
    /// Epoch stamped on every message of this deployment attempt.
    std::uint64_t epoch = 0;
    /// Every node that received a deploy message (rollback recipients).
    std::set<sim::NodeIndex> deploy_targets;
    /// All component/sink acks arrived and the DeploySourceMsgs went out;
    /// acks routed here from now on are source acks (absorbed only).
    bool sources_started = false;
  };

  /// Retransmission state of one in-flight deploy message.
  struct Retransmit {
    sim::NodeIndex target = sim::kInvalidNode;
    sim::MessagePtr msg;
    std::int64_t size = 0;
    int attempts = 0;  // retransmissions performed so far
    sim::EventId timer = 0;
  };

  void lookup_with_retry(const std::shared_ptr<Pending>& pending,
                         const std::string& service, int attempts_left);
  void start_stats_phase(const std::shared_ptr<Pending>& pending);
  void run_composition(const std::shared_ptr<Pending>& pending,
                       std::vector<monitor::NodeStats> stats);
  void compose_and_deploy(const std::shared_ptr<Pending>& pending,
                          const std::vector<monitor::NodeStats>& stats);
  void deploy(const std::shared_ptr<Pending>& pending);
  void finish(const std::shared_ptr<Pending>& pending, bool deployed);
  /// Arms the retransmission ladder for `rid` (policy budget > 0 only).
  void arm_retransmit(std::uint64_t rid, sim::NodeIndex target,
                      sim::MessagePtr msg, std::int64_t size);
  void schedule_retransmit(std::uint64_t rid);
  void clear_retransmit(std::uint64_t rid);
  /// Epoch-stamped teardown to every node this attempt targeted.
  void roll_back(const std::shared_ptr<Pending>& pending);
  /// Lazily-created deploy.* cells: runs that never retransmit, roll
  /// back or see stale acks keep their snapshots byte-identical.
  obs::Counter& lazy_counter(const char* name, obs::Counter*& slot);

  sim::Simulator& simulator_;
  sim::Network& network_;
  overlay::PastryNode& pastry_;
  overlay::ServiceRegistry registry_;
  monitor::StatsAgent& stats_;
  const runtime::ServiceCatalog& catalog_;
  sim::NodeIndex node_;

  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_;
  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Histogram* latency_ms_;

  DeployPolicy policy_;
  std::uint64_t deploy_counter_ = 0;
  /// Deployment attempts stamped by this coordinator. App ids are unique
  /// per request (recoveries get fresh ids), so a per-coordinator counter
  /// is monotonic per app.
  std::uint64_t epoch_counter_ = 0;
  // ack request id -> owning pending request
  std::map<std::uint64_t, std::shared_ptr<Pending>> ack_routing_;
  // in-flight retransmission state, by request id
  std::map<std::uint64_t, Retransmit> retx_;
  // Lazy cells (see lazy_counter).
  obs::Counter* retries_ = nullptr;
  obs::Counter* rollbacks_ = nullptr;
  obs::Counter* stale_ack_ = nullptr;
};

}  // namespace rasc::core
