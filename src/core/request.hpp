// Service request model (paper §2.2).
//
// A request carries a service request graph G_req — here a set of linear
// substreams, each a chain of services between the common source and
// destination — and the rate requirement vector r_req (one delivery rate
// per substream, in Kbps at the destination).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/data_unit.hpp"
#include "sim/message.hpp"

namespace rasc::core {

struct Substream {
  /// Services applied in order between source and destination.
  std::vector<std::string> services;
  /// Required delivery rate at the destination, Kbps.
  double rate_kbps = 0;
};

struct ServiceRequest {
  runtime::AppId app = 0;
  sim::NodeIndex source = sim::kInvalidNode;
  sim::NodeIndex destination = sim::kInvalidNode;
  /// Size of one data unit at the source (application-defined, §2.1).
  std::int64_t unit_bytes = 1250;
  std::vector<Substream> substreams;
  /// Optional end-to-end latency SLO (ms). 0 means no deadline: admission
  /// and adaptation ignore predicted latency entirely.
  double deadline_ms = 0;

  /// All distinct service names across substreams, in first-seen order.
  std::vector<std::string> distinct_services() const;

  /// Total requested delivery rate (sum over substreams), Kbps.
  double total_rate_kbps() const;

  /// Validation: non-empty substreams, positive rates, valid endpoints.
  /// Returns an error description or empty string when valid.
  std::string validate() const;
};

}  // namespace rasc::core
