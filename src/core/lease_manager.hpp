// Shard-side view of the fleet's capacity leases.
//
// One LeaseManager lives on each coordinator shard's home node. It renews
// the shard's lease on every node with a staggered periodic sweep, keeps
// the granted (and not yet spent) in/out bandwidth per node, and
// synthesizes NodeStats for the composer so the whole composition stack
// runs unchanged against the leased partial view instead of fresh
// per-request stats queries.
//
// View lifecycle per node: a LeaseGrantMsg with a newer lease epoch
// replaces the view (remaining = granted); LeaseRevokeMsg or deadline
// passage invalidates it until the next renewal lands. Batch composition
// spends the view down with consume() as it admits requests; debits of
// attempts that NACK or time out come back via the next renewal grant.
//
// Determinism: the sweep timers are pinned to the home node's LP and all
// other mutations happen on packet arrival, so sharded runs replay
// byte-identically at any worker-thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "monitor/node_stats.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::core {

class LeaseManager {
 public:
  struct Params {
    /// Renewal sweep period. Must stay comfortably below the granter's
    /// lease_duration or views expire between renewals.
    sim::SimDuration renew_period = sim::sec(5);
    /// Spacing between consecutive per-node requests inside one sweep, so
    /// a large fleet's renewals do not land as one burst.
    sim::SimDuration stagger = sim::msec(1);
    /// Minimum spacing of off-cycle renew_now() sweeps. Under overload
    /// every failed composition asks for one; without this cap the
    /// resulting renewal storm churns lease epochs faster than deploys
    /// can settle against them.
    sim::SimDuration offcycle_min_gap = sim::msec(1500);
  };

  LeaseManager(sim::Simulator& simulator, sim::Network& network,
               sim::NodeIndex home, std::int32_t shard, std::size_t nodes,
               Params params);

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Schedules the first renewal sweep at `at` (subsequent sweeps follow
  /// every renew_period). Pinned to the home node's LP.
  void start(sim::SimTime at);

  /// Source of the demand hint (kbps) piggybacked on every renewal
  /// request, polled once per sweep; the granters rebalance shard shares
  /// around it. Without a provider the requests carry "no hint" and the
  /// nodes fall back to the static equal split.
  void set_demand_provider(std::function<double()> provider) {
    demand_provider_ = std::move(provider);
  }

  /// Fires one off-cycle renewal sweep immediately (the periodic cadence
  /// is unchanged). Used when a composition failed against the current
  /// view: the refreshed demand hint lets the granters enlarge this
  /// shard's shares before the request retries. Must run on the home LP.
  void renew_now();

  /// Takeover epoch stamped on every renewal request from now on. A
  /// standby that takes over a dead primary sets a higher epoch before
  /// its first sweep; the granters then fence off the old holder. The
  /// default 0 keeps requests byte-identical to pre-rehoming runs.
  void set_takeover_epoch(std::uint64_t epoch) { takeover_epoch_ = epoch; }

  /// Consumes LeaseGrantMsg / LeaseRevokeMsg packets; false otherwise.
  bool handle_packet(const sim::Packet& packet);

  /// A grant for `node` is held and has not passed its deadline.
  bool valid(sim::NodeIndex node) const;

  /// Stats snapshot the composer sees for `node`: bandwidth capacity is
  /// the lease remainder scaled so the composer's own headroom cancels
  /// out (available * kDefaultHeadroom == lease remainder), usage and
  /// reservations zero (the lease already nets them), CPU and drop state
  /// from the snapshot piggybacked on the last grant.
  monitor::NodeStats leased_stats(sim::NodeIndex node) const;

  /// Spends view-side bandwidth during batch composition. Debits of a
  /// failed attempt are *not* returned inline: nodes whose deploys landed
  /// only free the bandwidth when the rollback teardown reaches them, so
  /// an inline credit would let the next composition double-spend it. The
  /// funds re-enter through the next renewal grant, which observes the
  /// freed reservations.
  void consume(sim::NodeIndex node, double in_kbps, double out_kbps);

  /// Marks a consumed debit as resolved (deploy acked or rolled back):
  /// it no longer races a renewal in flight to/from the node. Every
  /// consume() must eventually be settled exactly once.
  void settle(sim::NodeIndex node, double in_kbps, double out_kbps);

  /// Drops the view of a node whose granter NACKed us — the next sweep
  /// (or an explicit stats refresh) rebuilds it.
  void invalidate(sim::NodeIndex node);

  /// Refreshes only the piggybacked stats half of the view (scoped
  /// re-query on the repair path; the lease balance is untouched).
  void refresh_stats(const monitor::NodeStats& stats);

  /// Lease epoch deploy messages for `node` must be stamped with.
  std::uint64_t epoch_of(sim::NodeIndex node) const;

  double remaining_in_kbps(sim::NodeIndex node) const;
  double remaining_out_kbps(sim::NodeIndex node) const;

 private:
  struct View {
    double in_kbps = 0;   // granted minus view-side spends
    double out_kbps = 0;
    std::uint64_t epoch = 0;
    sim::SimTime expires_at = 0;
    bool has_grant = false;
    /// Debits consumed whose deploy outcome has not resolved yet. The
    /// node honors in-flight deploys against its *renewed* remainder
    /// (previous-epoch debits), so a share computed before they landed
    /// cannot cover them: an arriving grant is reduced by this pending
    /// exposure, and settle() retires it once the outcome is known.
    double pending_in = 0;
    double pending_out = 0;
    monitor::NodeStats stats;
  };

  void sweep();
  /// Sends one renewal request to every node (shared by the periodic
  /// sweep and rate-limited off-cycle renewals).
  void request_all();

  sim::Simulator& simulator_;
  sim::Network& network_;
  sim::NodeIndex home_;
  std::int32_t shard_;
  Params params_;
  std::vector<View> views_;
  std::uint64_t request_counter_ = 0;
  std::uint64_t takeover_epoch_ = 0;
  std::function<double()> demand_provider_;
  sim::SimTime last_renew_ = -1;
};

}  // namespace rasc::core
