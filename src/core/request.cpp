#include "core/request.hpp"

#include <algorithm>

namespace rasc::core {

std::vector<std::string> ServiceRequest::distinct_services() const {
  std::vector<std::string> out;
  for (const auto& ss : substreams) {
    for (const auto& s : ss.services) {
      if (std::find(out.begin(), out.end(), s) == out.end()) {
        out.push_back(s);
      }
    }
  }
  return out;
}

double ServiceRequest::total_rate_kbps() const {
  double total = 0;
  for (const auto& ss : substreams) total += ss.rate_kbps;
  return total;
}

std::string ServiceRequest::validate() const {
  if (source < 0) return "invalid source node";
  if (destination < 0) return "invalid destination node";
  if (unit_bytes <= 0) return "unit_bytes must be positive";
  if (substreams.empty()) return "request has no substreams";
  if (deadline_ms < 0) return "deadline_ms must be non-negative";
  for (std::size_t i = 0; i < substreams.size(); ++i) {
    if (substreams[i].rate_kbps <= 0) {
      return "substream " + std::to_string(i) + " has non-positive rate";
    }
    if (substreams[i].services.empty()) {
      return "substream " + std::to_string(i) + " has no services";
    }
  }
  return {};
}

}  // namespace rasc::core
