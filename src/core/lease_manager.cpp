#include "core/lease_manager.hpp"

#include <algorithm>

#include "core/composer.hpp"
#include "core/mincost_composer.hpp"
#include "runtime/lease_messages.hpp"

namespace rasc::core {

LeaseManager::LeaseManager(sim::Simulator& simulator, sim::Network& network,
                           sim::NodeIndex home, std::int32_t shard,
                           std::size_t nodes, Params params)
    : simulator_(simulator),
      network_(network),
      home_(home),
      shard_(shard),
      params_(params),
      views_(nodes) {}

void LeaseManager::start(sim::SimTime at) {
  simulator_.call_at_on(std::size_t(home_), at, [this] { sweep(); });
}

void LeaseManager::sweep() {
  request_all();
  simulator_.call_after_on(std::size_t(home_), params_.renew_period,
                           [this] { sweep(); });
}

void LeaseManager::renew_now() {
  if (last_renew_ >= 0 &&
      simulator_.now() < last_renew_ + params_.offcycle_min_gap) {
    return;
  }
  request_all();
}

void LeaseManager::request_all() {
  last_renew_ = simulator_.now();
  // One demand reading serves the whole sweep so every node rebalances
  // against the same number.
  const double demand =
      demand_provider_ ? demand_provider_() : -1.0;
  // Staggered so a large fleet's renewals do not hit the home node's
  // access link as one burst. Each send runs on the home LP.
  for (std::size_t i = 0; i < views_.size(); ++i) {
    const auto target = sim::NodeIndex(i);
    simulator_.call_after_on(
        std::size_t(home_), params_.stagger * std::int64_t(i),
        [this, target, demand] {
          auto req = std::make_shared<runtime::LeaseRequestMsg>();
          req->shard = shard_;
          req->requester = home_;
          req->request_id = ++request_counter_;
          req->demand_kbps = demand;
          req->takeover_epoch = takeover_epoch_;
          network_.send(home_, target, runtime::LeaseRequestMsg::kBytes,
                        std::move(req));
        });
  }
}

bool LeaseManager::handle_packet(const sim::Packet& packet) {
  const auto* payload = packet.payload.get();
  if (const auto* grant =
          dynamic_cast<const runtime::LeaseGrantMsg*>(payload)) {
    if (grant->shard != shard_) return true;
    if (grant->node < 0 || std::size_t(grant->node) >= views_.size()) {
      return true;
    }
    View& v = views_[std::size_t(grant->node)];
    // A reordered stale grant (older epoch) must not roll the view back.
    if (grant->lease_epoch <= v.epoch) return true;
    // Unresolved deploys spend the node's *new* remainder when they land
    // (previous-term debits are honored there), and the share it just
    // computed could not have counted them — so the fresh grant must
    // carry that pending exposure before the view plans against it.
    v.in_kbps = std::max(0.0, grant->in_kbps - v.pending_in);
    v.out_kbps = std::max(0.0, grant->out_kbps - v.pending_out);
    v.epoch = grant->lease_epoch;
    v.expires_at = grant->expires_at;
    v.has_grant = true;
    v.stats = grant->stats;
    return true;
  }
  if (const auto* revoke =
          dynamic_cast<const runtime::LeaseRevokeMsg*>(payload)) {
    if (revoke->shard != shard_) return true;
    if (revoke->node < 0 || std::size_t(revoke->node) >= views_.size()) {
      return true;
    }
    View& v = views_[std::size_t(revoke->node)];
    if (revoke->lease_epoch >= v.epoch) {
      v.in_kbps = 0;
      v.out_kbps = 0;
      v.has_grant = false;
    }
    return true;
  }
  return false;
}

bool LeaseManager::valid(sim::NodeIndex node) const {
  if (node < 0 || std::size_t(node) >= views_.size()) return false;
  const View& v = views_[std::size_t(node)];
  return v.has_grant && simulator_.now() < v.expires_at;
}

monitor::NodeStats LeaseManager::leased_stats(sim::NodeIndex node) const {
  const View& v = views_[std::size_t(node)];
  monitor::NodeStats s;
  s.node = node;
  // available() * composer-headroom must equal the lease remainder, so
  // the composition stack's own safety margin does not shrink the grant
  // a second time (the granter already applied its margin). The repair
  // tolerance is divided out because the node-side debit is a hard limit:
  // a plan that overfills by the tolerated 2% would compose fine and then
  // NACK at the granter.
  const double slack =
      ResidualTracker::kDefaultHeadroom * MinCostComposer::kRepairTolerance;
  s.capacity_in_kbps = v.in_kbps / slack;
  s.capacity_out_kbps = v.out_kbps / slack;
  s.used_in_kbps = 0;
  s.used_out_kbps = 0;
  s.reserved_in_kbps = 0;
  s.reserved_out_kbps = 0;
  s.cpu_used_fraction = v.stats.cpu_used_fraction;
  s.cpu_reserved_fraction = v.stats.cpu_reserved_fraction;
  s.drop_ratio = v.stats.drop_ratio;
  s.drop_samples = v.stats.drop_samples;
  s.ready_queue_length = v.stats.ready_queue_length;
  s.taken_at = v.stats.taken_at;
  return s;
}

void LeaseManager::consume(sim::NodeIndex node, double in_kbps,
                           double out_kbps) {
  View& v = views_[std::size_t(node)];
  v.in_kbps = std::max(0.0, v.in_kbps - in_kbps);
  v.out_kbps = std::max(0.0, v.out_kbps - out_kbps);
  v.pending_in += in_kbps;
  v.pending_out += out_kbps;
}

void LeaseManager::settle(sim::NodeIndex node, double in_kbps,
                          double out_kbps) {
  if (node < 0 || std::size_t(node) >= views_.size()) return;
  View& v = views_[std::size_t(node)];
  v.pending_in = std::max(0.0, v.pending_in - in_kbps);
  v.pending_out = std::max(0.0, v.pending_out - out_kbps);
}

void LeaseManager::invalidate(sim::NodeIndex node) {
  if (node < 0 || std::size_t(node) >= views_.size()) return;
  views_[std::size_t(node)].has_grant = false;
}

void LeaseManager::refresh_stats(const monitor::NodeStats& stats) {
  if (stats.node < 0 || std::size_t(stats.node) >= views_.size()) return;
  views_[std::size_t(stats.node)].stats = stats;
}

std::uint64_t LeaseManager::epoch_of(sim::NodeIndex node) const {
  if (node < 0 || std::size_t(node) >= views_.size()) return 0;
  return views_[std::size_t(node)].epoch;
}

double LeaseManager::remaining_in_kbps(sim::NodeIndex node) const {
  if (node < 0 || std::size_t(node) >= views_.size()) return 0;
  return views_[std::size_t(node)].in_kbps;
}

double LeaseManager::remaining_out_kbps(sim::NodeIndex node) const {
  if (node < 0 || std::size_t(node) >= views_.size()) return 0;
  return views_[std::size_t(node)].out_kbps;
}

}  // namespace rasc::core
