// Rate arithmetic shared by all composers.
//
// The paper formulates composition in data-unit rates with per-component
// rate ratios R (§2.2) and reduces to min-cost flow when R = 1, noting LP
// for the general case. Because substreams are linear chains and R depends
// only on the service, the cumulative downstream gain of each stage is a
// per-layer constant — so we normalize every quantity to
// *destination-delivered units per second* and the R ≠ 1 case becomes a
// standard min-cost flow too (see DESIGN.md). This header centralizes that
// normalization.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/request.hpp"
#include "runtime/plan.hpp"
#include "runtime/service.hpp"
#include "sim/network.hpp"

namespace rasc::core {

/// Wire rate (Kbps, including per-packet framing) of `ups` units/sec of
/// `unit_bytes` each.
double wire_kbps(double ups, double unit_bytes);

/// Payload rate (Kbps, no framing).
double payload_kbps(double ups, double unit_bytes);

/// Per-substream derived quantities.
class SubstreamMath {
 public:
  SubstreamMath(const Substream& substream,
                const runtime::ServiceCatalog& catalog,
                std::int64_t source_unit_bytes);

  int num_stages() const { return int(ratio_.size()); }

  /// Size of units entering stage i (bytes); i == num_stages() gives the
  /// delivered unit size at the destination.
  double in_unit_bytes(int stage) const { return in_bytes_[std::size_t(stage)]; }

  /// Units entering stage i per unit delivered at the destination
  /// (= 1 / prod_{j >= i} R_j).
  double in_units_per_delivered(int stage) const {
    return in_per_delivered_[std::size_t(stage)];
  }

  /// Delivered units/sec required for a delivery rate of `rate_kbps`
  /// payload at the destination.
  double delivered_ups(double rate_kbps) const;

  /// Input units/sec at stage i when carrying `delivered` delivered
  /// units/sec.
  double in_ups(int stage, double delivered) const {
    return delivered * in_units_per_delivered(stage);
  }

  /// Input / output wire Kbps of stage i at `delivered` delivered ups.
  double wire_in_kbps(int stage, double delivered) const;
  double wire_out_kbps(int stage, double delivered) const;

  /// CPU seconds consumed per *input* unit at stage i.
  double cpu_secs_per_in_unit(int stage) const {
    return cpu_secs_[std::size_t(stage)];
  }

  /// Maximum delivered ups a component instance of stage i can carry on a
  /// node with the given available bandwidth and CPU (the paper's
  /// r_max(c_i, n) = min_j A_j / u_j in normalized units). Pass
  /// avail_cpu_fraction < 0 to ignore the CPU constraint.
  double max_delivered_ups(int stage, double avail_in_kbps,
                           double avail_out_kbps,
                           double avail_cpu_fraction = -1.0) const;

 private:
  std::vector<double> ratio_;             // R per stage
  std::vector<double> cpu_secs_;          // CPU secs per input unit
  std::vector<double> in_bytes_;          // size(num_stages + 1)
  std::vector<double> in_per_delivered_;  // size(num_stages + 1)
};

/// Builds the runtime execution plan from per-substream, per-stage shares
/// expressed in delivered ups. `shares[ss][stage]` lists (node, delivered
/// ups) pairs; placements are converted to per-instance *input* ups.
runtime::AppPlan build_app_plan(
    const ServiceRequest& request, const runtime::ServiceCatalog& catalog,
    const std::vector<std::vector<std::vector<runtime::Placement>>>&
        delivered_shares);

/// Bandwidth one node will debit from a capacity lease for a plan.
struct LeaseDebit {
  double in_kbps = 0;
  double out_kbps = 0;
};

/// Per-node lease debits deploying `plan` will charge: component input and
/// output reservations plus the sink's input at the destination (sources
/// are not lease-debited). Mirrors the coordinator's message construction
/// bit-for-bit — unit sizes round to whole bytes per stage exactly as
/// DeployComponentMsg/DeploySinkMsg carry them, so a shard pre-checking
/// its lease view arrives at the same numbers the granters will.
std::map<sim::NodeIndex, LeaseDebit> leased_plan_bandwidth(
    const runtime::AppPlan& plan, const runtime::ServiceCatalog& catalog);

}  // namespace rasc::core
