// Online rate re-allocation (the "dynamic" in Dynamic Rate Allocation).
//
// The paper adjusts rates "based on the available processing capacity of
// the nodes" (§1, §3.4); until this subsystem the repo's only runtime
// response was the supervisor's all-or-nothing teardown-and-recompose. The
// RateAdapter instead runs a periodic per-application loop:
//
//   1. pull fresh windowed NodeStats from every provider + both endpoints,
//   2. credit the app's own current usage back to those statistics (its
//      deployed rates occupy capacity the re-plan is free to re-assign),
//   3. re-solve each substream's min-cost flow on a *persistent*
//      CompositionGraph — capacities and costs rewritten in place via
//      set_candidate_cap / set_candidate_cost, warm-started SspSolver,
//      the composer's capacity-repair loop — and
//   4. diff the solved plan against the deployed one, shipping *delta*
//      deploy messages (rate-update / add-placement / remove-placement /
//      source-split) so components change rate in place; no teardown.
//
// Hysteresis (minimum relative improvement in expected drop cost, plus a
// per-app cooldown after shipping) keeps the loop from oscillating between
// near-equal plans. The supervisor uses attempt_now() as its first-line
// response to a starving app and escalates to teardown only when the delta
// repair cannot help (note_teardown() keeps score).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/composition_graph.hpp"
#include "core/mincost_composer.hpp"
#include "core/request.hpp"
#include "flow/ssp.hpp"
#include "monitor/stats_protocol.hpp"
#include "obs/metric_registry.hpp"
#include "runtime/plan.hpp"
#include "runtime/service.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace rasc::core {

class RateAdapter {
 public:
  struct Params {
    /// Period of the per-app adaptation loop.
    sim::SimDuration interval = sim::sec(2);
    /// Minimum relative improvement in expected drop cost required before
    /// deltas are shipped (0.05 = new plan must be >= 5% cheaper).
    double hysteresis = 0.05;
    /// Per-app quiet period after a shipped delta round.
    sim::SimDuration cooldown = sim::sec(4);
    /// Delay before retired placements are removed: in-flight units drain
    /// while the (idle) component still exists.
    sim::SimDuration remove_grace = sim::msec(500);
    /// Cost-model knobs shared with composition (utilization target,
    /// CPU constraint, unknown-drop prior, share folding).
    MinCostComposer::Options cost;
    /// Predictive trigger: when true (and latency_model is set), every
    /// attempt also predicts the deployed plan's end-to-end latency from
    /// the round's credited statistics. A prediction past the request's
    /// deadline_ms bypasses the cost-improvement hysteresis — the adapter
    /// acts on the drift *before* drops appear — while the cooldown still
    /// bounds the ship rate. Off by default: no prediction, no predict.*
    /// registry cells, byte-identical runs.
    bool predictive = false;
    const LatencyModel* latency_model = nullptr;
    /// Per-node aggregate CPU utilization budget for latency-aware
    /// re-solves (base load plus the candidate plan's own planned CPU).
    /// The M/G/1 wait explodes as rho -> 1, so a triggered round's repair
    /// loop tightens any node the candidate would push past this — the
    /// flow spreads across providers instead of stacking stages on the
    /// bandwidth-cheapest node (which is how a purely reactive round can
    /// cook its own CPU hotspot).
    double predictive_rho_target = 0.7;
  };

  /// Pluggable statistics source: invoked with the deduplicated target
  /// node set and a completion callback. Unset, the adapter round-trips
  /// to the central StatsAgent; the gossip control plane substitutes a
  /// synchronous read of the node-local partial view so adaptation stops
  /// defeating the decentralized plane.
  using StatsProvider = std::function<void(
      const std::vector<sim::NodeIndex>&,
      std::function<void(std::vector<monitor::NodeStats>)>)>;

  /// `done(shipped)` — whether the attempt shipped any delta.
  using AttemptCallback = std::function<void(bool shipped)>;

  RateAdapter(sim::Simulator& simulator, sim::Network& network,
              monitor::StatsAgent& stats,
              const runtime::ServiceCatalog& catalog, sim::NodeIndex node,
              Params params, obs::MetricRegistry* registry = nullptr);
  ~RateAdapter();

  RateAdapter(const RateAdapter&) = delete;
  RateAdapter& operator=(const RateAdapter&) = delete;

  /// Starts the periodic loop for an admitted application. `providers`
  /// holds the discovery result (service -> provider addresses) — the
  /// candidate set is pinned here; adaptation re-rates over it and never
  /// re-runs discovery.
  void track(const ServiceRequest& request, const runtime::AppPlan& plan,
             std::map<std::string, std::vector<sim::NodeIndex>> providers,
             sim::SimTime stream_stop);

  /// Stops adapting `app` (teardown / recovery under a new id).
  void forget(runtime::AppId app);

  /// One immediate attempt outside the periodic grid, bypassing the
  /// cooldown (supervisor first-line response to starvation).
  void attempt_now(runtime::AppId app, AttemptCallback done);

  /// Supervisor escalation bookkeeping: a tracked app was torn down
  /// because delta repair could not help.
  void note_teardown();

  /// Replaces the central stats round-trip (empty resets to the default).
  void set_stats_provider(StatsProvider provider) {
    stats_provider_ = std::move(provider);
  }

  std::size_t tracked_count() const { return tracked_.size(); }
  /// The plan the adapter believes is deployed (tests).
  const runtime::AppPlan* current_plan(runtime::AppId app) const;

  const Params& params() const { return params_; }

 private:
  /// Fixed candidate universe of one substream, pinned at track() time,
  /// plus its persistent flow network.
  struct SubstreamState {
    /// Candidate node per (stage, index); index order matches the graph.
    std::vector<std::vector<sim::NodeIndex>> candidates;
    std::unique_ptr<CompositionGraph> graph;
  };

  struct Tracked {
    ServiceRequest request;
    runtime::AppPlan plan;
    std::map<std::string, std::vector<sim::NodeIndex>> providers;
    sim::SimTime stream_stop = 0;
    sim::SimTime cooldown_until = 0;
    sim::EventId timer = 0;
    bool busy = false;  // a stats round-trip is in flight
    std::vector<SubstreamState> substreams;
    /// Last predicted latency of the deployed plan (predictive mode only;
    /// cell created lazily on the first predictive round).
    obs::Gauge* predict_gauge = nullptr;
  };

  void schedule_tick(runtime::AppId app);
  void attempt(runtime::AppId app, bool bypass_cooldown,
               AttemptCallback done);
  void on_stats(runtime::AppId app, std::vector<monitor::NodeStats> stats,
                AttemptCallback done);
  /// Re-solve every substream against credited-back fresh stats. Returns
  /// false (infeasible) when any substream cannot route its demand; on
  /// success fills `shares` (delivered ups per substream/stage/node) and
  /// the integer costs of the new and currently-deployed plans. With
  /// `latency_aware` set (a predicted deadline violation this round) the
  /// cost model folds each candidate's base CPU utilization into the
  /// utilization term and prices saturated nodes unusable, so the solver
  /// spreads rate onto cool CPUs instead of regenerating the hot plan;
  /// both plans are priced with the same modified costs.
  bool resolve(Tracked& t,
               const std::map<sim::NodeIndex, monitor::NodeStats>& by_node,
               std::vector<std::vector<std::vector<runtime::Placement>>>*
                   shares,
               std::int64_t* new_cost, std::int64_t* current_cost,
               bool latency_aware = false);
  /// Diff old vs new plan and ship delta messages; returns how many were
  /// sent (0 = plans identical).
  int ship_deltas(Tracked& t, const runtime::AppPlan& new_plan);

  sim::Simulator& simulator_;
  sim::Network& network_;
  monitor::StatsAgent& stats_;
  const runtime::ServiceCatalog& catalog_;
  sim::NodeIndex node_;
  Params params_;

  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_;
  obs::Counter* attempts_;
  obs::Counter* deltas_shipped_;
  obs::Counter* skipped_;
  obs::Counter* infeasible_;
  obs::Counter* teardowns_;
  obs::Histogram* solve_us_;
  /// Attempts where the predictive trigger fired (lazily created — the
  /// cell exists only in predictive runs).
  obs::Counter* predict_triggers_ = nullptr;

  StatsProvider stats_provider_;

  std::map<runtime::AppId, std::unique_ptr<Tracked>> tracked_;
  /// Reusable warm-started solver (workspaces survive across apps,
  /// substreams and repair iterations).
  flow::SspSolver ssp_;
  /// Outstanding-callback guard: stats replies may arrive after *this is
  /// gone; callbacks hold a weak_ptr to this token.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace rasc::core
