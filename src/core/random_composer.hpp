// Random baseline (paper §4.1): one component per service, provider chosen
// uniformly at random — placement ignores load and drop feedback entirely;
// only a bandwidth admission check is applied to the picked node (both
// baselines "considered the bandwidth capacity of the nodes").
#pragma once

#include "core/composer.hpp"
#include "util/rng.hpp"

namespace rasc::core {

class RandomComposer final : public Composer {
 public:
  /// `attempts`: how many random picks per stage before giving up.
  explicit RandomComposer(util::Xoshiro256 rng, int attempts = 3)
      : rng_(rng), attempts_(attempts) {}

  const char* name() const override { return "random"; }
  ComposeResult compose(const ComposeInput& input) override;

 private:
  util::Xoshiro256 rng_;
  int attempts_;
};

}  // namespace rasc::core
