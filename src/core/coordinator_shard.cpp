#include "core/coordinator_shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/backoff.hpp"
#include "core/plan_math.hpp"
#include "runtime/lease_granter.hpp"
#include "util/logging.hpp"

namespace rasc::core {

namespace {
/// Takeover epoch a standby fences its shard with. One takeover per
/// shard per run (standbys have no standbys), so a single term suffices;
/// the field is an epoch so deeper failover chains stay expressible.
constexpr std::uint64_t kTakeoverEpoch = 1;
}  // namespace

AdmissionPolicy parse_admission_policy(const std::string& name) {
  if (name == "fifo") return AdmissionPolicy::kFifo;
  if (name == "smallest-demand") return AdmissionPolicy::kSmallestDemand;
  if (name == "highest-value") return AdmissionPolicy::kHighestValue;
  throw std::invalid_argument("unknown admission policy: " + name);
}

CoordinatorShard::CoordinatorShard(
    sim::Simulator& simulator, sim::Network& network,
    overlay::PastryNode& pastry, monitor::StatsAgent& stats,
    Coordinator& coordinator, const runtime::ServiceCatalog& catalog,
    std::unique_ptr<Composer> composer, Params params,
    obs::MetricRegistry* registry)
    : simulator_(simulator),
      network_(network),
      registry_(pastry),
      stats_(stats),
      coordinator_(coordinator),
      catalog_(catalog),
      composer_(std::move(composer)),
      params_(params),
      home_(pastry.addr()),
      lease_(simulator, network, pastry.addr(), params.shard, params.nodes,
             params.lease),
      owned_metrics_(registry ? nullptr
                              : std::make_unique<obs::MetricRegistry>()),
      metrics_(registry ? registry : owned_metrics_.get()) {
  // Renewal requests advertise the demand this shard has seen recently;
  // the max-decay keeps the hint alive for a few renewal periods after a
  // burst so the freed shares are not yanked back mid-repair.
  active_ = !params_.standby;
  lease_.set_demand_provider([this] {
    demand_ewma_kbps_ =
        std::max(demand_window_kbps_, 0.5 * demand_ewma_kbps_);
    demand_window_kbps_ = 0;
    return demand_ewma_kbps_;
  });

  obs::Labels labels;
  labels.node = home_;
  submitted_ = &metrics_->counter("shard.submitted", labels);
  admitted_ = &metrics_->counter("shard.admitted", labels);
  rejected_ = &metrics_->counter("shard.rejected", labels);
  batches_ = &metrics_->counter("shard.batches", labels);
  repairs_ = &metrics_->counter("shard.repairs", labels);
  retries_ = &metrics_->counter("shard.retries", labels);
  batch_size_ = &metrics_->histogram("shard.batch_size", labels);
  latency_ms_ = &metrics_->histogram("shard.latency_ms", labels);
}

std::int32_t CoordinatorShard::shard_of(runtime::AppId app, int shards) {
  if (shards <= 1) return 0;
  // SplitMix64 scrambles the (sequential) app ids so consecutive apps
  // spread across shards instead of striping.
  util::SplitMix64 mix(std::uint64_t(app) ^ 0x5eaded5eaded5eadULL);
  return std::int32_t(mix.next() % std::uint64_t(shards));
}

std::vector<std::size_t> CoordinatorShard::admission_order(
    AdmissionPolicy policy,
    const std::vector<std::pair<std::uint64_t, double>>& jobs) {
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Seq is unique, so every comparator below is a strict total order and
  // the drain sequence is deterministic for any stable batch content.
  switch (policy) {
    case AdmissionPolicy::kFifo:
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return jobs[a].first < jobs[b].first;
                });
      break;
    case AdmissionPolicy::kSmallestDemand:
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  if (jobs[a].second != jobs[b].second) {
                    return jobs[a].second < jobs[b].second;
                  }
                  return jobs[a].first < jobs[b].first;
                });
      break;
    case AdmissionPolicy::kHighestValue:
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  if (jobs[a].second != jobs[b].second) {
                    return jobs[a].second > jobs[b].second;
                  }
                  return jobs[a].first < jobs[b].first;
                });
      break;
  }
  return order;
}

void CoordinatorShard::start(sim::SimTime at) {
  if (params_.standby) {
    // Dormant: no leases, no batches — just the death watchdog. Every
    // renewal the primary lands on this node resets the suspicion clock,
    // so a healthy primary keeps the standby asleep forever.
    simulator_.call_at_on(std::size_t(home_), at + params_.standby_check,
                          [this] { standby_watch(); });
    return;
  }
  lease_.start(at);
  simulator_.call_at_on(std::size_t(home_), at + params_.batch_window,
                        [this] { drain(); });
}

bool CoordinatorShard::handle_packet(const sim::Packet& packet) {
  if (lease_.handle_packet(packet)) return true;
  if (const auto* reply = dynamic_cast<const runtime::ShardRecoverReplyMsg*>(
          packet.payload.get())) {
    if (reply->shard == params_.shard &&
        reply->request_id == recover_request_id_ && !adopted_) {
      recover_replies_.push_back(*reply);
    }
    return true;
  }
  const auto* submit =
      dynamic_cast<const SubmitShardMsg*>(packet.payload.get());
  if (submit == nullptr) return false;
  if (!active_ && !(local_granter_ != nullptr &&
                    local_granter_->holder_suspect(params_.shard))) {
    // A dormant standby only owns the shard once the primary looks dead
    // from here too; a submission routed in on transient suspicion is
    // forwarded to the live primary instead of being held hostage.
    auto fwd = std::make_shared<SubmitShardMsg>(*submit);
    const std::int64_t size = fwd->wire_size();
    network_.send(home_, params_.primary_home, size, std::move(fwd));
    return true;
  }
  // A dormant-but-suspecting standby queues the submission: discovery
  // runs now, composition starts with the first post-takeover drain.
  enqueue(*submit);
  return true;
}

void CoordinatorShard::enqueue(const SubmitShardMsg& msg) {
  // App ids are unique per request; a duplicate is a routing retry.
  if (!seen_apps_.insert(msg.request.app).second) return;
  submitted_->add();
  demand_window_kbps_ += msg.request.total_rate_kbps();

  auto job = std::make_shared<Job>();
  job->request = msg.request;
  job->stream_start = msg.stream_start;
  job->stream_stop = msg.stream_stop;
  job->enqueued_at = simulator_.now();
  job->seq = ++seq_counter_;
  job->done = msg.done;

  if (auto err = job->request.validate(); !err.empty()) {
    ComposeResult result;
    result.error = std::move(err);
    reject(job, std::move(result));
    return;
  }

  // Discovery through the DHT, exactly like an unsharded submission; the
  // job joins the admission queue once every provider list resolves.
  const auto services = job->request.distinct_services();
  job->lookups_outstanding = services.size();
  for (const auto& service : services) {
    lookup_with_retry(job, service, Coordinator::kDiscoveryAttempts);
  }
}

void CoordinatorShard::lookup_with_retry(const JobPtr& job,
                                         const std::string& service,
                                         int attempts_left) {
  registry_.lookup(
      service, [this, job, service, attempts_left](
                   bool found, std::vector<sim::NodeIndex> providers) {
        if ((!found || providers.empty()) && attempts_left > 1) {
          const int failed_so_far =
              Coordinator::kDiscoveryAttempts - attempts_left;
          simulator_.call_after_on(
              std::size_t(home_),
              capped_backoff(Coordinator::kDiscoveryBackoff,
                             Coordinator::kDiscoveryBackoffMax,
                             failed_so_far),
              [this, job, service, attempts_left] {
                lookup_with_retry(job, service, attempts_left - 1);
              });
          return;
        }
        if (!found || providers.empty()) {
          job->failed_services.push_back(service);
        } else {
          job->provider_addrs[service] = std::move(providers);
        }
        if (--job->lookups_outstanding == 0) {
          if (!job->failed_services.empty()) {
            auto& failed = job->failed_services;
            std::sort(failed.begin(), failed.end());
            std::string names;
            for (const auto& s : failed) {
              if (!names.empty()) names += ", ";
              names += s;
            }
            ComposeResult result;
            result.error = "service discovery failed for " + names;
            reject(job, std::move(result));
          } else {
            ready_.push_back(job);
          }
        }
      });
}

void CoordinatorShard::drain() {
  simulator_.call_after_on(std::size_t(home_), params_.batch_window,
                           [this] { drain(); });
  if (ready_.empty()) return;
  batches_->add();
  batch_size_->observe(double(ready_.size()));

  std::vector<std::pair<std::uint64_t, double>> demands;
  demands.reserve(ready_.size());
  for (const auto& job : ready_) {
    demands.push_back({job->seq, job->request.total_rate_kbps()});
  }
  const auto order = admission_order(params_.policy, demands);

  std::vector<JobPtr> batch;
  batch.reserve(order.size());
  for (const std::size_t i : order) batch.push_back(ready_[i]);
  ready_.clear();

  // One lease-view snapshot serves the whole batch: each admission spends
  // the view down before the next request composes.
  for (const auto& job : batch) compose_and_dispatch(job);
}

bool CoordinatorShard::retry_capacity(const JobPtr& job) {
  // Failures against the leased view are often transient: a cold or
  // recently-idle shard holds floor-sized (or invalidated) grants, and
  // the demand this request represents only reaches the granters with
  // the next renewal. Renew off-cycle and re-queue a bounded number of
  // times before the failure becomes final.
  if (job->capacity_retries >= params_.capacity_retries) return false;
  ++job->capacity_retries;
  retries_->add();
  demand_window_kbps_ += job->request.total_rate_kbps();
  lease_.renew_now();
  simulator_.call_after_on(std::size_t(home_), params_.retry_delay,
                           [this, job] { ready_.push_back(job); });
  return true;
}

void CoordinatorShard::compose_and_dispatch(const JobPtr& job) {
  ComposeInput input;
  input.request = job->request;
  input.catalog = &catalog_;
  for (const auto& [service, addrs] : job->provider_addrs) {
    auto& list = input.providers[service];
    for (const auto addr : addrs) {
      if (lease_.valid(addr)) list.push_back(lease_.leased_stats(addr));
    }
    if (list.empty()) {
      if (retry_capacity(job)) return;
      ComposeResult result;
      result.error = "no leased view of any provider of " + service;
      reject(job, std::move(result));
      return;
    }
  }
  if (!lease_.valid(job->request.source) ||
      !lease_.valid(job->request.destination)) {
    if (retry_capacity(job)) return;
    ComposeResult result;
    result.error = "no leased view of endpoints";
    reject(job, std::move(result));
    return;
  }
  input.source_stats = lease_.leased_stats(job->request.source);
  input.destination_stats = lease_.leased_stats(job->request.destination);

  ComposeResult result = composer_->compose(input);
  if (!result.admitted) {
    if (retry_capacity(job)) return;
    reject(job, std::move(result));
    return;
  }

  // Spend the view so the rest of the batch composes against what is
  // left; the node-side granters re-check (authoritatively) on deploy.
  job->debits = leased_plan_bandwidth(result.plan, catalog_);
  for (const auto& [node, d] : job->debits) {
    lease_.consume(node, d.in_kbps, d.out_kbps);
  }

  Coordinator::PreparedSubmit prepared;
  prepared.request = job->request;
  prepared.compose = std::move(result);
  prepared.providers = job->provider_addrs;
  prepared.stream_start = job->stream_start;
  prepared.stream_stop = job->stream_stop;
  prepared.submitted_at = job->enqueued_at;
  prepared.shard = params_.shard;
  prepared.lease_epoch_of = [this](sim::NodeIndex node) {
    return lease_.epoch_of(node);
  };
  prepared.done = [this, job](const SubmitOutcome& outcome) {
    on_outcome(job, outcome);
  };
  coordinator_.submit_prepared(std::move(prepared));
}

void CoordinatorShard::on_outcome(const JobPtr& job,
                                  const SubmitOutcome& outcome) {
  // Whatever happened, this attempt's debits are resolved: landed as
  // node reservations (visible to the next renewal) or rolled back.
  for (const auto& [node, d] : job->debits) {
    lease_.settle(node, d.in_kbps, d.out_kbps);
  }

  if (outcome.compose.admitted) {
    admitted_->add();
    latency_ms_->observe(double(simulator_.now() - job->enqueued_at) /
                         1000.0);
    if (job->done) {
      SubmitOutcome tagged = outcome;
      tagged.admitted_by = home_;
      job->done(tagged);
    }
    return;
  }

  // The attempt rolled back (or never fully deployed). Its view-side
  // debits are deliberately NOT returned here: nodes whose deploys landed
  // free the bandwidth only when the rollback teardown reaches them, so
  // an inline credit would have the repair composition double-spend it
  // and NACK again. The next renewal grant reflects the freed funds.
  job->debits.clear();

  if (!outcome.nacked.empty() && job->attempts < params_.repair_attempts) {
    repair(job, outcome);
    return;
  }
  reject(job, outcome.compose);
}

void CoordinatorShard::repair(const JobPtr& job,
                              const SubmitOutcome& outcome) {
  ++job->attempts;
  repairs_->add();
  RASC_LOG(kInfo) << "shard " << params_.shard << ": repairing app "
                  << job->request.app << " after " << outcome.nacked.size()
                  << " lease NACK(s), attempt " << job->attempts;
  // The NACKing granters hold different (newer or emptier) grants than
  // our view claims; drop those views so the re-composition routes around
  // them rather than re-spending a stale number.
  for (const auto node : outcome.nacked) lease_.invalidate(node);

  // Scoped stats refresh: CPU/drop state of the surviving candidates may
  // have moved since the last renewal piggyback. Short deadline — this
  // sits on the admission latency path.
  std::set<sim::NodeIndex> targets;
  for (const auto& [service, addrs] : job->provider_addrs) {
    (void)service;
    for (const auto a : addrs) {
      if (lease_.valid(a)) targets.insert(a);
    }
  }
  targets.insert(job->request.source);
  targets.insert(job->request.destination);
  stats_.query_many(
      std::vector<sim::NodeIndex>(targets.begin(), targets.end()),
      params_.refresh_timeout,
      [this, job](std::vector<monitor::NodeStats> stats) {
        for (const auto& s : stats) lease_.refresh_stats(s);
        compose_and_dispatch(job);
      });
}

void CoordinatorShard::reject(const JobPtr& job, ComposeResult result) {
  rejected_->add();
  SubmitOutcome outcome;
  outcome.compose = std::move(result);
  outcome.compose.admitted = false;
  outcome.composition_latency = simulator_.now() - job->enqueued_at;
  if (job->done) job->done(outcome);
}

// --- Standby takeover: suspect -> fence -> reconstruct -> adopt ---

void CoordinatorShard::standby_watch() {
  if (active_) return;
  if (local_granter_ != nullptr &&
      local_granter_->holder_suspect(params_.shard)) {
    takeover();
    return;
  }
  simulator_.call_after_on(std::size_t(home_), params_.standby_check,
                           [this] { standby_watch(); });
}

void CoordinatorShard::takeover() {
  active_ = true;
  takeover_at_ = simulator_.now();
  obs::Labels labels;
  labels.node = home_;
  if (rehomes_ == nullptr) {
    rehomes_ = &metrics_->counter("shard.rehomes", labels);
  }
  rehomes_->add();
  RASC_LOG(kInfo) << "shard " << params_.shard << ": standby on node "
                  << home_ << " taking over from dead primary "
                  << params_.primary_home;

  // Fence, then lease: every renewal from this shard now carries the
  // takeover epoch. The first grant a node issues under it drops the
  // zombie's prev-epoch honor window and refuses its future renewals, so
  // the primary's control plane goes dark node by node as the sweep
  // lands.
  lease_.set_takeover_epoch(kTakeoverEpoch);
  lease_.start(simulator_.now());
  simulator_.call_after_on(std::size_t(home_), params_.batch_window,
                           [this] { drain(); });

  // Reconstruction: ask every node for its slice of the shard's state.
  // Replies are collected until a fixed deadline — a deterministic cut,
  // not a quorum, so replays are byte-identical at any thread count.
  ++recover_request_id_;
  for (std::size_t n = 0; n < params_.nodes; ++n) {
    auto req = std::make_shared<runtime::ShardRecoverRequestMsg>();
    req->shard = params_.shard;
    req->requester = home_;
    req->request_id = recover_request_id_;
    network_.send(home_, sim::NodeIndex(n),
                  runtime::ShardRecoverRequestMsg::kBytes, std::move(req));
  }
  simulator_.call_after_on(std::size_t(home_), params_.reconstruct_timeout,
                           [this] { adopt_collected(); });
}

void CoordinatorShard::adopt_collected() {
  if (adopted_) return;
  adopted_ = true;

  // Adoption set: the union of the fleet's ledger slices for this shard.
  // Ledger debits record which shard *actually deployed* an app (new
  // submissions fail over off dead shards, so the hash home is not
  // authoritative); the runtime dumps alone cover every app in the
  // fleet and cannot be used for membership.
  std::set<runtime::AppId> members;
  std::uint64_t max_epoch = 0;
  for (const auto& reply : recover_replies_) {
    for (const auto& d : reply.debits) members.insert(d.app);
    for (const auto& c : reply.components) {
      max_epoch = std::max(max_epoch, c.app_epoch);
    }
  }
  // The dead primary stamped deploys from its own epoch counter, which
  // was ahead of this node's. Fast-forward so this shard's future
  // attempts supersede its leftovers instead of losing the epoch gate.
  coordinator_.advance_epochs(max_epoch);

  RASC_LOG(kInfo) << "shard " << params_.shard << ": reconstruction found "
                  << members.size() << " app(s) across "
                  << recover_replies_.size() << " replies";
  for (const runtime::AppId app : members) adopt_app(app);
  recover_replies_.clear();
}

void CoordinatorShard::adopt_app(runtime::AppId app) {
  // An app already (re)submitted to this standby is being composed from
  // scratch — adopting the dead primary's copy too would double-track.
  if (seen_apps_.count(app) != 0) return;

  // Assemble the fleet-wide picture from the dumps.
  struct StageState {
    std::string service;
    std::vector<runtime::Placement> placements;
  };
  std::map<std::int32_t, std::map<std::int32_t, StageState>> stages;
  std::map<std::int32_t, runtime::ShardRecoverReplyMsg::SinkState> sinks;
  std::map<std::int32_t, runtime::ShardRecoverReplyMsg::SourceState> sources;
  sim::NodeIndex source_node = sim::kInvalidNode;
  sim::NodeIndex sink_node = sim::kInvalidNode;
  // Every node holding any fragment of the app (state dump or a live
  // lease debit): the teardown recipients if adoption falls through.
  std::set<sim::NodeIndex> holders;
  for (const auto& reply : recover_replies_) {
    for (const auto& c : reply.components) {
      if (c.key.app != app) continue;
      StageState& st = stages[c.key.substream][c.key.stage];
      st.service = c.service;
      st.placements.push_back({reply.node, c.rate_ups});
      holders.insert(reply.node);
    }
    for (const auto& s : reply.sinks) {
      if (s.app != app) continue;
      sinks[s.substream] = s;
      sink_node = reply.node;
      holders.insert(reply.node);
    }
    for (const auto& s : reply.sources) {
      if (s.app != app) continue;
      sources[s.substream] = s;
      source_node = reply.node;
      holders.insert(reply.node);
    }
    for (const auto& d : reply.debits) {
      if (d.app == app) holders.insert(reply.node);
    }
  }

  // Both stream endpoints must have survived; an app that lost one with
  // the primary can only be reclaimed — its surviving fragments (live
  // sources emitting undeliverable units, components holding
  // reservations) are torn down instead.
  if (sinks.empty() || sources.empty()) {
    reclaim_app(app, holders);
    return;
  }

  sim::SimTime stop_at = 0;
  for (const auto& [ss, src] : sources) {
    (void)ss;
    stop_at = std::max(stop_at, src.stop_at);
  }
  if (stop_at <= simulator_.now()) return;  // stream already over

  ServiceRequest request;
  request.app = app;
  request.source = source_node;
  request.destination = sink_node;
  request.deadline_ms = params_.default_deadline_ms;
  runtime::AppPlan plan;
  plan.app = app;
  plan.source = source_node;
  plan.destination = sink_node;
  const std::int32_t num_ss = sinks.rbegin()->first + 1;
  for (std::int32_t ss = 0; ss < num_ss; ++ss) {
    const auto sk = sinks.find(ss);
    const auto sc = sources.find(ss);
    if (sk == sinks.end() || sc == sources.end()) {  // hole: partial
      reclaim_app(app, holders);
      return;
    }
    if (ss == 0) request.unit_bytes = sc->second.unit_bytes;
    Substream sub;
    runtime::SubstreamPlan splan;
    splan.rate_units_per_sec = sk->second.rate_ups;
    splan.unit_bytes = sc->second.unit_bytes;
    if (const auto stg = stages.find(ss); stg != stages.end()) {
      std::int32_t expect = 0;
      for (auto& [stage_idx, st] : stg->second) {
        if (stage_idx != expect++) {  // chain hole: incomplete dump
          reclaim_app(app, holders);
          return;
        }
        std::sort(st.placements.begin(), st.placements.end(),
                  [](const runtime::Placement& a,
                     const runtime::Placement& b) { return a.node < b.node; });
        sub.services.push_back(st.service);
        runtime::StagePlan sp;
        sp.service = st.service;
        sp.placements = std::move(st.placements);
        splan.stages.push_back(std::move(sp));
      }
    }
    sub.rate_kbps =
        payload_kbps(sk->second.rate_ups, double(sk->second.unit_bytes));
    request.substreams.push_back(std::move(sub));
    plan.substreams.push_back(std::move(splan));
  }
  if (auto err = request.validate(); !err.empty()) {
    RASC_LOG(kWarn) << "shard " << params_.shard << ": adopted state of app "
                    << app << " does not validate: " << err;
    reclaim_app(app, holders);
    return;
  }

  // The app is this shard's now: a late resubmission of it dedups.
  seen_apps_.insert(app);
  obs::Labels labels;
  labels.node = home_;
  if (adopted_apps_ == nullptr) {
    adopted_apps_ = &metrics_->counter("shard.adopted_apps", labels);
  }
  adopted_apps_->add();
  if (rehome_time_ == nullptr) {
    rehome_time_ = &metrics_->histogram("rehome.time_ms", labels);
  }
  rehome_time_->observe(double(simulator_.now() - takeover_at_) / 1000.0);
  demand_window_kbps_ += request.total_rate_kbps();
  RASC_LOG(kInfo) << "shard " << params_.shard << ": adopting app " << app
                  << " (" << plan.component_count() << " components, stops at "
                  << stop_at << ")";
  adopt_discover(request, plan, stop_at);
}

void CoordinatorShard::adopt_discover(const ServiceRequest& request,
                                      const runtime::AppPlan& plan,
                                      sim::SimTime stream_stop) {
  // Re-discover the providers so the re-attached adapter has candidate
  // lists to re-solve against. Single attempt per service: a missing
  // list only narrows adaptation, it does not block adoption.
  auto state = std::make_shared<AdoptDiscovery>();
  state->request = request;
  state->plan = plan;
  state->stream_stop = stream_stop;
  const auto services = request.distinct_services();
  state->outstanding = services.size();
  for (const auto& service : services) {
    registry_.lookup(service, [this, state, service](
                                  bool found,
                                  std::vector<sim::NodeIndex> providers) {
      if (found && !providers.empty()) {
        state->providers[service] = std::move(providers);
      }
      if (--state->outstanding == 0 && adopt_handler_) {
        adopt_handler_(home_, state->request, state->plan, state->providers,
                       state->stream_stop);
      }
    });
  }
}

void CoordinatorShard::reclaim_app(runtime::AppId app,
                                   const std::set<sim::NodeIndex>& holders) {
  if (holders.empty()) return;
  RASC_LOG(kInfo) << "shard " << params_.shard << ": reclaiming app " << app
                  << " on " << holders.size()
                  << " node(s) (state too partial to adopt)";
  // Unconditional teardown (epoch 0), like a supervisor recovery: the
  // app is unrecoverable, so racing a stale deploy of it is moot.
  for (const auto target : holders) {
    auto td = std::make_shared<runtime::TeardownAppMsg>();
    td->app = app;
    network_.send(home_, target, runtime::TeardownAppMsg::kBytes,
                  std::move(td));
  }
  obs::Labels labels;
  labels.node = home_;
  if (reclaimed_apps_ == nullptr) {
    reclaimed_apps_ = &metrics_->counter("shard.reclaimed_apps", labels);
  }
  reclaimed_apps_->add();
}

}  // namespace rasc::core
