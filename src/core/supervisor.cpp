#include "core/supervisor.hpp"

#include <algorithm>
#include <set>

#include "core/backoff.hpp"
#include "core/rate_adapter.hpp"
#include "runtime/deploy_messages.hpp"
#include "util/logging.hpp"

namespace rasc::core {

AppSupervisor::AppSupervisor(sim::Simulator& simulator,
                             sim::Network& network, Coordinator& coordinator,
                             Composer& composer, Params params,
                             obs::MetricRegistry* registry)
    : simulator_(simulator),
      network_(network),
      coordinator_(coordinator),
      composer_(composer),
      params_(params),
      node_(coordinator.node()),
      owned_metrics_(registry ? nullptr
                              : std::make_unique<obs::MetricRegistry>()),
      metrics_(registry ? registry : owned_metrics_.get()),
      // Deterministic per (jitter_seed, node); independent of the
      // simulation's root RNG so supervised and unsupervised runs stay
      // event-for-event comparable.
      backoff_rng_(params.jitter_seed ^
                   (std::uint64_t(coordinator.node()) *
                    0xD1B54A32D192ED03ull)) {
  obs::Labels labels;
  labels.node = node_;
  probes_sent_ = &metrics_->counter("supervisor.probes_sent", labels);
  probe_timeouts_ = &metrics_->counter("supervisor.probe_timeouts", labels);
  strikes_ = &metrics_->counter("supervisor.strikes", labels);
  recoveries_started_ =
      &metrics_->counter("supervisor.recoveries_started", labels);
  recoveries_succeeded_ =
      &metrics_->counter("supervisor.recoveries_succeeded", labels);
  recoveries_failed_ =
      &metrics_->counter("supervisor.recoveries_failed", labels);
  gave_up_ = &metrics_->counter("supervisor.gave_up", labels);
}

AppSupervisor::AppSupervisor(sim::Simulator& simulator,
                             sim::Network& network, Coordinator& coordinator,
                             Composer& composer)
    : AppSupervisor(simulator, network, coordinator, composer, Params()) {}

AppSupervisor::~AppSupervisor() {
  for (auto& [app, w] : watched_) {
    (void)app;
    simulator_.cancel(w->timer);
    simulator_.cancel(w->probe_timeout_event);
  }
  for (auto& [app, event] : pending_retries_) {
    (void)app;
    simulator_.cancel(event);
  }
}

void AppSupervisor::watch(const ServiceRequest& request,
                          const runtime::AppPlan& plan,
                          sim::SimTime stream_stop, EventCallback events) {
  auto w = std::make_unique<Watched>();
  w->request = request;
  w->plan = plan;
  w->stream_stop = stream_stop;
  w->events = std::move(events);
  for (const auto& sub : plan.substreams) {
    w->expected_ups += sub.rate_units_per_sec;
  }
  const auto app = plan.app;
  watched_[app] = std::move(w);
  schedule_check(app);
}

void AppSupervisor::forget(runtime::AppId app) {
  if (const auto retry = pending_retries_.find(app);
      retry != pending_retries_.end()) {
    simulator_.cancel(retry->second);
    pending_retries_.erase(retry);
  }
  const auto it = watched_.find(app);
  if (it == watched_.end()) return;
  simulator_.cancel(it->second->timer);
  simulator_.cancel(it->second->probe_timeout_event);
  watched_.erase(it);
}

void AppSupervisor::schedule_check(runtime::AppId app) {
  const auto it = watched_.find(app);
  if (it == watched_.end()) return;
  if (simulator_.now() + params_.check_interval >= it->second->stream_stop) {
    // The stream is about to end naturally; stop supervising.
    watched_.erase(it);
    return;
  }
  it->second->timer = simulator_.call_after(params_.check_interval,
                                            [this, app] { run_check(app); });
}

void AppSupervisor::run_check(runtime::AppId app) {
  const auto it = watched_.find(app);
  if (it == watched_.end()) return;
  Watched& w = *it->second;

  const std::uint64_t rid = ++probe_counter_;
  probes_sent_->add();
  w.pending_probe = rid;
  probe_routing_[rid] = app;
  auto probe = std::make_shared<runtime::SinkHealthRequest>();
  probe->app = app;
  probe->request_id = rid;
  probe->requester = node_;
  network_.send(node_, w.plan.destination,
                runtime::SinkHealthRequest::kBytes, std::move(probe));

  w.probe_timeout_event =
      simulator_.call_after(params_.probe_timeout, [this, app, rid] {
        const auto wit = watched_.find(app);
        if (wit == watched_.end() || wit->second->pending_probe != rid) {
          return;
        }
        probe_routing_.erase(rid);
        wit->second->pending_probe = 0;
        probe_timeouts_->add();
        // An unreachable destination is at least as bad as starvation.
        strike(app);
      });
}

bool AppSupervisor::handle_packet(const sim::Packet& packet) {
  const auto* reply =
      dynamic_cast<const runtime::SinkHealthReply*>(packet.payload.get());
  if (reply == nullptr) return false;
  const auto route = probe_routing_.find(reply->request_id);
  if (route == probe_routing_.end()) return true;  // stale
  const auto app = route->second;
  probe_routing_.erase(route);
  const auto it = watched_.find(app);
  if (it == watched_.end()) return true;
  Watched& w = *it->second;
  if (w.pending_probe != reply->request_id) return true;
  simulator_.cancel(w.probe_timeout_event);
  w.pending_probe = 0;
  on_probe_result(app, reply->delivered);
  return true;
}

void AppSupervisor::on_probe_result(runtime::AppId app,
                                    std::int64_t delivered) {
  const auto it = watched_.find(app);
  if (it == watched_.end()) return;
  Watched& w = *it->second;
  if (delivered < 0) {
    // No sink at the destination (teardown raced us): treat as starved.
    strike(app);
    return;
  }
  const double expected_units =
      w.expected_ups * sim::to_seconds(params_.check_interval);
  const auto progress = double(delivered - w.last_delivered);
  w.last_delivered = delivered;
  if (progress < params_.min_progress_fraction * expected_units) {
    strike(app);
    return;
  }
  w.strikes = 0;
  w.adapt_tried = false;
  schedule_check(app);
}

void AppSupervisor::strike(runtime::AppId app) {
  const auto it = watched_.find(app);
  if (it == watched_.end()) return;
  Watched& w = *it->second;
  strikes_->add();
  if (++w.strikes < params_.strikes_to_recover) {
    schedule_check(app);
    return;
  }
  // First-line response: one in-place rate re-allocation attempt before
  // the teardown hammer. A shipped delta earns the app a fresh round of
  // probes; anything else escalates immediately.
  if (adapter_ != nullptr && !w.adapt_tried) {
    w.adapt_tried = true;
    RASC_LOG(kInfo) << "supervisor: app " << app
                    << " starving; trying delta re-allocation";
    adapter_->attempt_now(app, [this, app](bool shipped) {
      const auto wit = watched_.find(app);
      if (wit == watched_.end()) return;
      if (shipped) {
        wit->second->strikes = 0;
        schedule_check(app);
        return;
      }
      recover(app);
    });
    return;
  }
  recover(app);
}

void AppSupervisor::teardown_everywhere(const Watched& w,
                                        runtime::AppId app) {
  std::set<sim::NodeIndex> nodes{w.plan.source, w.plan.destination};
  for (const auto& sub : w.plan.substreams) {
    for (const auto& stage : sub.stages) {
      for (const auto& p : stage.placements) nodes.insert(p.node);
    }
  }
  for (const auto n : nodes) {
    auto td = std::make_shared<runtime::TeardownAppMsg>();
    td->app = app;
    // epoch stays 0: recovery teardown applies unconditionally — it must
    // clear the app regardless of which deployment attempt placed it.
    network_.send(node_, n, runtime::TeardownAppMsg::kBytes, std::move(td));
  }
}

sim::SimDuration AppSupervisor::backoff_delay(int failed_attempts) {
  // Capped exponential: base * 2^k for the k-th retry after a failure.
  double delay = sim::to_seconds(capped_backoff(params_.recovery_backoff,
                                                params_.recovery_backoff_max,
                                                failed_attempts));
  if (params_.recovery_jitter > 0) {
    delay *= 1.0 - params_.recovery_jitter +
             2.0 * params_.recovery_jitter * backoff_rng_.uniform01();
  }
  return sim::from_seconds(delay);
}

void AppSupervisor::recover(runtime::AppId app) {
  const auto it = watched_.find(app);
  if (it == watched_.end()) return;
  // Move the record out: the watch for the old id ends here.
  auto w = std::move(it->second);
  watched_.erase(it);

  if (params_.max_recoveries > 0 &&
      w->recoveries >= params_.max_recoveries) {
    gave_up_->add();
    if (w->events) {
      w->events(Event{Event::Kind::kGaveUp, app, 0});
    }
    return;
  }

  RASC_LOG(kInfo) << "supervisor: app " << app
                  << " starving; tearing down and re-composing";
  if (adapter_ != nullptr) {
    if (adapter_->current_plan(app) != nullptr) adapter_->note_teardown();
    adapter_->forget(app);
  }
  teardown_everywhere(*w, app);
  if (w->events) {
    w->events(Event{Event::Kind::kRecovering, app, 0});
  }

  auto state = std::make_shared<RecoveryState>();
  state->request = w->request;
  state->stream_stop = w->stream_stop;
  state->events = w->events;
  state->original_app = app;
  state->attempts_done = w->recoveries;

  // Un-jittered settle delay so teardowns land before fresh stats are
  // gathered; jitter only kicks in for retries after a failure.
  schedule_recompose(std::move(state), params_.recovery_backoff);
}

void AppSupervisor::schedule_recompose(std::shared_ptr<RecoveryState> state,
                                       sim::SimDuration delay) {
  const auto original = state->original_app;
  pending_retries_[original] =
      simulator_.call_after(delay, [this, state = std::move(state)] {
        pending_retries_.erase(state->original_app);
        if (simulator_.now() >= state->stream_stop) {
          // The stream would already be over; nothing left to recover.
          return;
        }
        ServiceRequest retry = state->request;
        retry.app = next_recovered_app_++;
        recoveries_started_->add();
        coordinator_.submit(
            retry, composer_, /*stream_start=*/0, state->stream_stop,
            [this, state, retry](const SubmitOutcome& outcome) {
              if (!outcome.compose.admitted) {
                recoveries_failed_->add();
                ++state->attempts_done;
                if (state->events) {
                  state->events(Event{Event::Kind::kRecoveryFailed,
                                      state->original_app, retry.app});
                }
                if (params_.max_recoveries > 0 &&
                    state->attempts_done >= params_.max_recoveries) {
                  gave_up_->add();
                  if (state->events) {
                    state->events(
                        Event{Event::Kind::kGaveUp, state->original_app, 0});
                  }
                  return;
                }
                schedule_recompose(state,
                                   backoff_delay(state->attempts_done));
                return;
              }
              recoveries_succeeded_->add();
              if (state->events) {
                state->events(Event{Event::Kind::kRecovered,
                                    state->original_app, retry.app});
              }
              // Keep watching under the new identity; the whole episode
              // counts as one more recovery against the budget. watch()
              // may decline (stream about to end), so look the entry up
              // rather than assuming it stuck.
              watch(retry, outcome.compose.plan, state->stream_stop,
                    state->events);
              if (const auto w = watched_.find(retry.app);
                  w != watched_.end()) {
                w->second->recoveries = state->attempts_done + 1;
              }
              if (adapter_ != nullptr) {
                adapter_->track(retry, outcome.compose.plan,
                                outcome.providers, state->stream_stop);
              }
            });
      });
}

}  // namespace rasc::core
