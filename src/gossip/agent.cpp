#include "gossip/agent.hpp"

#include <algorithm>
#include <cassert>

namespace rasc::gossip {

namespace {

obs::Labels node_labels(sim::NodeIndex node) {
  obs::Labels labels;
  labels.node = node;
  return labels;
}

}  // namespace

Agent::Agent(sim::Simulator& simulator, sim::Network& network,
             sim::NodeIndex node, std::size_t fleet_size, Params params,
             SummaryFn summary_fn, obs::MetricRegistry& registry)
    : simulator_(simulator),
      network_(network),
      node_(node),
      params_(params),
      summary_fn_(std::move(summary_fn)),
      rng_(params.seed),
      sends_(&registry.counter("gossip.sends", node_labels(node))),
      sent_bytes_(&registry.counter("gossip.sent_bytes", node_labels(node))),
      merges_fresh_(
          &registry.counter("gossip.merges_fresh", node_labels(node))),
      merges_stale_(
          &registry.counter("gossip.merges_stale", node_labels(node))),
      prunes_(&registry.counter("gossip.prunes", node_labels(node))),
      suspects_(&registry.counter("gossip.suspects", node_labels(node))),
      round_bytes_(&registry.gauge("gossip.round_bytes", node_labels(node))),
      view_size_(&registry.gauge("gossip.view_size", node_labels(node))) {
  assert(params_.fanout > 0);
  assert(params_.interval > 0);
  rotation_.reserve(fleet_size > 0 ? fleet_size - 1 : 0);
  for (std::size_t i = 0; i < fleet_size; ++i) {
    if (sim::NodeIndex(i) != node_) rotation_.push_back(sim::NodeIndex(i));
  }
  rng_.shuffle(rotation_);
}

Agent::~Agent() {
  if (round_event_ != 0) simulator_.cancel(round_event_);
}

void Agent::start(sim::SimTime at) {
  // Deterministic per-node phase offset keeps agents from ticking at one
  // instant (which would serialize an unrealistic control-traffic burst
  // through every out port simultaneously).
  const sim::SimDuration phase =
      (params_.interval * (std::uint64_t(node_) % 97)) / 97;
  const sim::SimTime first = at + phase;
  round_event_ = simulator_.call_at_on(std::size_t(node_), first,
                                       [this] { run_round(); });
}

void Agent::refresh_self() {
  LoadSummary s = summary_fn_ ? summary_fn_() : LoadSummary{};
  s.origin = node_;
  s.version = ++self_version_;
  view_[node_] = Entry{s, round_};
}

std::vector<LoadSummary> Agent::build_digest() const {
  const std::int64_t per_peer =
      params_.budget_bytes / std::max(1, params_.fanout);
  const std::int64_t capacity =
      (per_peer - GossipDigestMsg::kHeaderBytes) / LoadSummary::kWireBytes;
  std::vector<LoadSummary> entries;
  if (capacity <= 0) return entries;
  entries.reserve(std::size_t(capacity));

  // Self first: the agent is the sole authority for its own summary, so
  // it must be on the wire every round.
  const auto self_it = view_.find(node_);
  if (self_it != view_.end()) entries.push_back(self_it->second.summary);

  // Remaining slots walk the view in ring order from a rotating start, so
  // a view larger than one digest is fully covered every
  // ceil(view / slots) rounds instead of starving its tail.
  std::vector<const Entry*> others;
  others.reserve(view_.size());
  for (const auto& [origin, entry] : view_) {
    if (origin != node_) others.push_back(&entry);
  }
  if (others.empty()) return entries;
  const std::size_t slots =
      std::size_t(capacity) - std::min<std::size_t>(entries.size(), 1);
  const std::size_t start = std::size_t(round_ * slots) % others.size();
  for (std::size_t i = 0; i < others.size() && entries.size() - 1 < slots;
       ++i) {
    entries.push_back(others[(start + i) % others.size()]->summary);
  }
  return entries;
}

void Agent::run_round() {
  round_event_ = 0;
  refresh_self();

  // Deterministic staleness aging: anything not refreshed within the
  // window is dropped before it can be re-advertised.
  for (auto it = view_.begin(); it != view_.end();) {
    if (it->first != node_ &&
        round_ >= it->second.heard_round + std::uint64_t(params_.stale_rounds)) {
      tombstones_[it->first] = it->second.summary.version;
      it = view_.erase(it);
      prunes_->add();
    } else {
      ++it;
    }
  }
  view_size_->set(double(view_.size()));

  const auto entries = build_digest();
  std::int64_t round_bytes = 0;
  if (!entries.empty() && !rotation_.empty()) {
    const int fanout =
        int(std::min<std::size_t>(std::size_t(params_.fanout),
                                  rotation_.size()));
    for (int i = 0; i < fanout; ++i) {
      if (cursor_ >= rotation_.size()) {
        cursor_ = 0;
        rng_.shuffle(rotation_);
      }
      const sim::NodeIndex peer = rotation_[cursor_++];
      auto msg = std::make_shared<GossipDigestMsg>();
      msg->sender = node_;
      msg->entries = entries;
      const std::int64_t size = msg->wire_size();
      round_bytes += size;
      network_.send(node_, peer, size, std::move(msg));
      sends_->add();
    }
  }
  assert(round_bytes <= params_.budget_bytes);
  sent_bytes_->add(round_bytes);
  round_bytes_->set(double(round_bytes));

  ++round_;
  round_event_ = simulator_.call_after_on(std::size_t(node_),
                                          params_.interval,
                                          [this] { run_round(); });
}

bool Agent::handle_packet(const sim::Packet& packet) {
  const auto* digest =
      dynamic_cast<const GossipDigestMsg*>(packet.payload.get());
  if (digest == nullptr) return false;
  for (const LoadSummary& incoming : digest->entries) {
    if (incoming.origin == node_) continue;  // sole authority for self
    const auto it = view_.find(incoming.origin);
    std::uint64_t floor = 0;
    if (it != view_.end()) {
      floor = it->second.summary.version;
    } else if (const auto ts = tombstones_.find(incoming.origin);
               ts != tombstones_.end()) {
      floor = ts->second;
    }
    if (incoming.version > floor) {
      view_[incoming.origin] = Entry{incoming, round_};
      tombstones_.erase(incoming.origin);
      merges_fresh_->add();
    } else {
      merges_stale_->add();
    }
  }
  return true;
}

void Agent::mark_suspect(sim::NodeIndex origin) {
  if (origin == node_) return;
  const auto it = view_.find(origin);
  if (it == view_.end()) return;
  tombstones_[origin] = it->second.summary.version;
  view_.erase(it);
  suspects_->add();
}

}  // namespace rasc::gossip
