// Versioned per-node load summary disseminated by the gossip subsystem.
//
// Each node periodically snapshots what a remote composer would need to
// place work on it — free bandwidth per direction, the lease pool still
// grantable by its LeaseGranter, CPU headroom, congestion feedback and a
// demand hint — and stamps it with a monotonically increasing version.
// Merge semantics are strictly version-ordered per origin (see
// gossip/agent.hpp), so replicas converge to the newest summary no matter
// the dissemination order.
#pragma once

#include <cstdint>

#include "sim/message.hpp"

namespace rasc::gossip {

struct LoadSummary {
  sim::NodeIndex origin = sim::kInvalidNode;
  /// Bumped once per local refresh round at the origin; receivers accept
  /// an entry only when its version is strictly newer than what they
  /// hold for that origin.
  std::uint64_t version = 0;

  // Static access-link capacity (lets receivers reconstruct utilization).
  double capacity_in_kbps = 0;
  double capacity_out_kbps = 0;

  // Monitor availability: capacity minus max(measured, reserved).
  double free_in_kbps = 0;
  double free_out_kbps = 0;

  // What the node's lease authority would still grant (its headroomed
  // pool minus live promises) — the authoritative bound a remote
  // composer must stay under for its deploy to debit successfully.
  double lease_headroom_in_kbps = 0;
  double lease_headroom_out_kbps = 0;

  double cpu_free_fraction = 0;

  // Congestion feedback (min-cost edge input).
  double drop_ratio = 0;
  std::int64_t drop_samples = 0;

  /// Outbound bandwidth already committed at the origin: a load hint the
  /// hop-by-hop composer uses as a soft penalty to spread placements.
  double demand_hint_kbps = 0;

  /// Modelled wire footprint of one digest entry.
  static constexpr std::int64_t kWireBytes = 64;
};

}  // namespace rasc::gossip
