// Wire message for the gossip subsystem: a bounded digest of load
// summaries. One kind only — "gossip.digest" — so the per-(node, kind)
// network counters give the exact control-bandwidth footprint of the
// subsystem for free (bench/gossip_quality reads them).
#pragma once

#include <cstdint>
#include <vector>

#include "gossip/load_summary.hpp"
#include "sim/message.hpp"

namespace rasc::gossip {

struct GossipDigestMsg final : sim::Message {
  const char* kind() const override { return "gossip.digest"; }

  sim::NodeIndex sender = sim::kInvalidNode;
  std::vector<LoadSummary> entries;

  /// Fixed header: sender + round stamp + entry count.
  static constexpr std::int64_t kHeaderBytes = 16;

  std::int64_t wire_size() const {
    return kHeaderBytes +
           std::int64_t(entries.size()) * LoadSummary::kWireBytes;
  }
};

}  // namespace rasc::gossip
