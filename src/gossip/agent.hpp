// Epidemic load-summary disseminator with a hard per-round byte budget.
//
// Every `interval` the agent (one per node, pinned to its node's logical
// process) refreshes its own LoadSummary via the provider callback, ages
// out entries it has not heard fresh news about for `stale_rounds` local
// rounds, and pushes one digest to `fanout` rotating peers. The digest is
// filled under the hard budget: self first, then view entries in rotating
// ring order, so consecutive rounds cover consecutive chunks of the view
// and every entry is on the wire once per coverage cycle regardless of
// fleet size. Per-node control bandwidth is therefore O(budget / interval)
// — independent of N — which bench/gossip_quality demonstrates.
//
// Merge is freshness-versioned: an incoming entry replaces the held one
// only when its origin version is strictly newer, so replicas converge to
// the newest summary under any delivery order. Pruning (and NACK-driven
// suspicion) leaves a version tombstone behind: re-admission requires a
// version strictly newer than the one the entry died with, so stale
// copies still circulating among peers cannot resurrect a dead node's
// entry forever — once the origin stops refreshing, its frozen version
// ages out of every view within stale_rounds of each holder's last
// acceptance, while a live origin (which bumps its version every round)
// sails past its own tombstone on the next digest.
//
// Determinism: the peer rotation is a seeded permutation private to this
// agent, rounds are LP-pinned timers with a node-indexed phase offset (so
// no two agents tick at the same instant in serial mode), and both the
// view and the digest fill iterate ordered containers. Same (seed, fleet)
// => byte-identical gossip traffic at any worker-thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "gossip/load_summary.hpp"
#include "gossip/messages.hpp"
#include "obs/metric_registry.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rasc::gossip {

class Agent {
 public:
  struct Params {
    /// Peers contacted per round (--gossip-fanout).
    int fanout = 3;
    /// Round cadence (--gossip-interval-ms).
    sim::SimDuration interval = sim::msec(500);
    /// Hard cap on digest wire bytes sent per round, across all fanout
    /// targets (--gossip-budget-bytes). Frame overhead not included: the
    /// budget bounds what the protocol chooses to say, the network adds
    /// its framing on top as for any other traffic.
    std::int64_t budget_bytes = 3200;
    /// Entries not refreshed for this many local rounds age out
    /// (--gossip-stale-rounds).
    int stale_rounds = 30;
    /// Seed for this agent's private rotation stream; the plane derives
    /// it per node from the world RNG.
    std::uint64_t seed = 1;
  };

  /// Provider callback: snapshots the local node's current load. The
  /// agent stamps origin and version itself.
  using SummaryFn = std::function<LoadSummary()>;

  /// A held view entry: the summary plus the local round at which it was
  /// last accepted (refreshed), which drives staleness aging.
  struct Entry {
    LoadSummary summary;
    std::uint64_t heard_round = 0;
  };

  Agent(sim::Simulator& simulator, sim::Network& network, sim::NodeIndex node,
        std::size_t fleet_size, Params params, SummaryFn summary_fn,
        obs::MetricRegistry& registry);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Starts the round timer. The first round fires at `at` plus a small
  /// deterministic node-indexed phase offset.
  void start(sim::SimTime at);

  /// Consumes gossip digests; returns false (untouched) otherwise.
  bool handle_packet(const sim::Packet& packet);

  /// Drops `origin` from the view (deploy NACK feedback: its advertised
  /// headroom was wrong, stop composing onto it until fresh news).
  void mark_suspect(sim::NodeIndex origin);

  /// The partial view, self included, keyed by origin.
  const std::map<sim::NodeIndex, Entry>& view() const { return view_; }
  std::uint64_t round() const { return round_; }
  sim::NodeIndex node() const { return node_; }
  const Params& params() const { return params_; }

  /// Digest entries the next round would send (exposed for budget tests).
  std::vector<LoadSummary> build_digest() const;

 private:
  void run_round();
  void refresh_self();

  sim::Simulator& simulator_;
  sim::Network& network_;
  const sim::NodeIndex node_;
  const Params params_;
  const SummaryFn summary_fn_;

  std::map<sim::NodeIndex, Entry> view_;
  /// Last version an entry was pruned or suspected at; merges re-admit
  /// the origin only with something strictly newer. Bounded by fleet
  /// size; cleared per origin on re-admission.
  std::map<sim::NodeIndex, std::uint64_t> tombstones_;
  std::uint64_t round_ = 0;
  std::uint64_t self_version_ = 0;

  /// Rotating peer permutation; reshuffled (privately seeded) at each
  /// wrap so long runs do not lock into one dissemination pattern.
  std::vector<sim::NodeIndex> rotation_;
  std::size_t cursor_ = 0;
  util::Xoshiro256 rng_;

  sim::EventId round_event_ = 0;

  // Telemetry (lazily created per node; absent runs stay byte-neutral).
  obs::Counter* sends_;
  obs::Counter* sent_bytes_;
  obs::Counter* merges_fresh_;
  obs::Counter* merges_stale_;
  obs::Counter* prunes_;
  obs::Counter* suspects_;
  obs::Gauge* round_bytes_;
  obs::Gauge* view_size_;
};

}  // namespace rasc::gossip
