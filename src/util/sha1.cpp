#include "util/sha1.hpp"

#include <cstring>

namespace rasc::util {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t(block[4 * i]) << 24) |
           (std::uint32_t(block[4 * i + 1]) << 16) |
           (std::uint32_t(block[4 * i + 2]) << 8) |
           std::uint32_t(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_len_ += len;
  // Fill a partially-filled buffer first.
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  // Whole blocks straight from the input.
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffer_len_ = len;
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian bit length.
  const std::uint8_t pad80 = 0x80;
  update(&pad80, 1);
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) {
    update(&zero, 1);
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = std::uint8_t(bit_len >> (56 - 8 * i));
  }
  // Bypass total_len_ accounting for the length suffix by calling
  // process_block via update (total_len_ is no longer consulted).
  update(len_bytes, 8);

  Sha1Digest out{};
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = std::uint8_t(state_[i] >> 24);
    out[4 * i + 1] = std::uint8_t(state_[i] >> 16);
    out[4 * i + 2] = std::uint8_t(state_[i] >> 8);
    out[4 * i + 3] = std::uint8_t(state_[i]);
  }
  return out;
}

Sha1Digest sha1(std::string_view s) {
  Sha1 h;
  h.update(s);
  return h.finish();
}

std::string to_hex(const Sha1Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace rasc::util
