#include "util/flags.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rasc::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      record(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    // --no-name  -> name=false
    if (arg.rfind("no-", 0) == 0) {
      record(arg.substr(3), "false");
      continue;
    }
    // --name value (if the next token is not itself a flag), else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      record(std::move(arg), argv[++i]);
    } else {
      record(std::move(arg), "true");
    }
  }
}

void Flags::record(std::string name, std::string value) {
  ++occurrences_[name];
  values_[std::move(name)] = std::move(value);
}

std::optional<std::string> Flags::raw(const std::string& name) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) {
  const auto v = raw(name);
  if (!v) return def;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": not an integer: " + *v);
  }
}

double Flags::get_double(const std::string& name, double def) {
  const auto v = raw(name);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": not a number: " + *v);
  }
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) {
  const auto v = raw(name);
  return v ? *v : def;
}

bool Flags::get_bool(const std::string& name, bool def) {
  const auto v = raw(name);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + *v);
}

std::vector<double> Flags::get_double_list(const std::string& name,
                                           std::vector<double> def) {
  const auto v = raw(name);
  if (!v) return def;
  std::vector<double> out;
  std::stringstream ss(*v);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    try {
      out.push_back(std::stod(tok));
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + name +
                                  ": bad list element: " + tok);
    }
  }
  if (out.empty()) {
    throw std::invalid_argument("flag --" + name + ": empty list");
  }
  return out;
}

void Flags::finish() const {
  std::string duplicate;
  for (const auto& [name, count] : occurrences_) {
    if (count > 1) {
      if (!duplicate.empty()) duplicate += ", ";
      duplicate += "--" + name;
    }
  }
  if (!duplicate.empty()) {
    // A silently-ignored first value is a debugging trap: refuse.
    throw std::invalid_argument("duplicate flags: " + duplicate);
  }
  std::string unknown;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!consumed_.count(name)) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("unknown flags: " + unknown);
  }
}

}  // namespace rasc::util
