// Fixed-size thread pool for running independent experiment cells
// (algorithm × rate × repetition) in parallel.
//
// Follows the C++ Core Guidelines concurrency rules: tasks not threads
// (CP.4), RAII joining (CP.25-style jthreads), condition variables always
// waited on with a predicate (CP.42), data shared between threads passed by
// value or owned by the future (CP.31).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rasc::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (defaults to hardware concurrency,
  /// minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a task; the returned future carries its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// complete. Exceptions are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace rasc::util
