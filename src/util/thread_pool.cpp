#include "util/thread_pool.hpp"

#include <algorithm>

namespace rasc::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // jthread joins on destruction.
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rasc::util
