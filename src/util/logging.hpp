// Minimal leveled, thread-safe logger.
//
// Experiments run many simulator instances on a thread pool, so log lines
// from different cells may interleave; each line is emitted atomically.
// Logging is off by default above WARN to keep bench output clean.
#pragma once

#include <sstream>
#include <string>

namespace rasc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line (used by the RASC_LOG macro; callable directly in tests).
void log_line(LogLevel level, std::string_view file, int line,
              const std::string& msg);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { log_line(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace rasc::util

// Streams are only evaluated when the level is enabled.
#define RASC_LOG(level)                                              \
  if (::rasc::util::LogLevel::level < ::rasc::util::log_level()) {   \
  } else                                                             \
    ::rasc::util::detail::LogMessage(::rasc::util::LogLevel::level,  \
                                     __FILE__, __LINE__)             \
        .stream()
