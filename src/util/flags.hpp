// Tiny command-line flag parser for bench binaries and examples.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown and repeated flags are errors (catches typos and
// copy-paste-doubled overrides in sweep scripts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rasc::util {

class Flags {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed or unknown
  /// flags once `finish()` is called (parsing itself records everything).
  Flags(int argc, const char* const* argv);

  /// Typed getters; each marks the flag as known. `def` is returned when
  /// the flag is absent.
  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  std::string get_string(const std::string& name, const std::string& def);
  bool get_bool(const std::string& name, bool def);

  /// Comma-separated list of doubles, e.g. --rates=50,100,150,200.
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> def);

  /// Call after all getters: throws std::invalid_argument listing any flag
  /// the program never asked about, and any flag given more than once.
  void finish() const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::optional<std::string> raw(const std::string& name);

  void record(std::string name, std::string value);

  std::map<std::string, std::string> values_;
  std::map<std::string, int> occurrences_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace rasc::util
