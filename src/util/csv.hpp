// CSV writer used by the bench harness to dump raw series alongside the
// printed tables (so figures can be re-plotted without re-running).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace rasc::util {

/// RFC-4180-ish CSV writer: fields containing comma, quote or newline are
/// quoted, embedded quotes doubled.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row. Values are escaped as needed.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields) {
    row(std::vector<std::string>(fields));
  }

  /// Convenience: numeric row with a leading label.
  void numeric_row(const std::string& label, const std::vector<double>& vals);

  void flush() { out_.flush(); }

  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

}  // namespace rasc::util
