#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace rasc::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split(std::uint64_t tag) {
  // Mix the tag into a fresh seed drawn from this stream; splitmix64's
  // avalanche makes distinct tags yield unrelated children.
  SplitMix64 sm(next() ^ (tag * 0xD1B54A32D192ED03ull));
  return Xoshiro256(sm.next());
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = std::uint64_t(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return std::int64_t(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + std::int64_t(r % span);
}

double Xoshiro256::uniform01() {
  // 53 high bits -> double in [0,1).
  return double(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Xoshiro256::bernoulli(double p) { return uniform01() < p; }

double Xoshiro256::exponential(double lambda) {
  assert(lambda > 0);
  // 1 - u in (0,1] avoids log(0).
  return -std::log(1.0 - uniform01()) / lambda;
}

double Xoshiro256::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  return xm / std::pow(1.0 - uniform01(), 1.0 / alpha);
}

std::size_t Xoshiro256::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // numerical edge: x underflowed to ~0
}

}  // namespace rasc::util
