#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string_view>

namespace rasc::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::string_view basename_of(std::string_view path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view file, int line,
              const std::string& msg) {
  if (level < log_level()) return;
  const auto base = basename_of(file);
  std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %.*s:%d] %s\n", level_name(level),
               int(base.size()), base.data(), line, msg.c_str());
}

}  // namespace rasc::util
