#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace rasc::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::numeric_row(const std::string& label,
                            const std::vector<double>& vals) {
  std::vector<std::string> fields;
  fields.reserve(vals.size() + 1);
  fields.push_back(label);
  for (double v : vals) {
    std::ostringstream os;
    os << v;
    fields.push_back(os.str());
  }
  row(fields);
}

}  // namespace rasc::util
