// Deterministic pseudo-random number generation.
//
// Every experiment run must be a pure function of (scenario, seed): the
// simulator never touches wall-clock entropy. We implement splitmix64 (for
// seeding) and xoshiro256** (the workhorse generator), plus the handful of
// distributions the workload generator needs. The generators are
// UniformRandomBitGenerator-compatible so they also work with <random>.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace rasc::util {

/// splitmix64 — used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Derives an independent child generator; children with different tags
  /// (and children of different parents) produce unrelated streams. Use this
  /// to give each subsystem (topology, workload, services, ...) its own
  /// stream so adding draws in one place does not perturb the others.
  Xoshiro256 split(std::uint64_t tag);

  // --- Distribution helpers (all inclusive-exclusive unless noted) ---

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Canonical uniform in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability `p` of true.
  bool bernoulli(double p);

  /// Exponential with rate `lambda` (mean 1/lambda).
  double exponential(double lambda);

  /// Standard normal via Box–Muller (no cached spare; deterministic draw
  /// count of 2 per call keeps streams reproducible under refactoring).
  double normal(double mean, double stddev);

  /// Pareto-distributed double with scale `xm` > 0 and shape `alpha` > 0.
  /// Heavy-tailed; used to model PlanetLab-like latency/bandwidth skew.
  double pareto(double xm, double alpha);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, std::int64_t(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace rasc::util
