// Streaming summary statistics (Welford) and percentile snapshots.
//
// The destination sink accumulates hundreds of thousands of per-unit
// measurements per run; Welford's algorithm keeps mean/variance numerically
// stable without storing samples. Percentiles (used for delay tails) keep a
// bounded reservoir.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rasc::util {

/// Mean / variance / min / max accumulator (Welford's online algorithm).
class SummaryStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const SummaryStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * double(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Uniform reservoir sampler for percentile estimates over large streams.
/// Deterministic given the insertion order (uses an internal LCG, no global
/// entropy).
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 4096) : capacity_(capacity) {}

  void add(double x);

  /// q in [0,1]; returns 0 when empty. Linear interpolation between ranks.
  double percentile(double q) const;

  /// Ascending copy of the retained samples (for deterministic merges:
  /// sorted order is independent of insertion/query history).
  std::vector<double> sorted_samples() const;

  std::size_t seen() const { return seen_; }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::uint64_t lcg_ = 0x2545F4914F6CDD1Dull;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace rasc::util
