#include "util/summary_stats.hpp"

#include <algorithm>
#include <cmath>

namespace rasc::util {

void SummaryStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::merge(const SummaryStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t total = n_ + other.n_;
  m2_ += other.m2_ +
         delta * delta * double(n_) * double(other.n_) / double(total);
  mean_ += delta * double(other.n_) / double(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double SummaryStats::variance() const {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void Reservoir::add(double x) {
  ++seen_;
  sorted_ = false;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Vitter's algorithm R with a private LCG (deterministic).
  lcg_ = lcg_ * 6364136223846793005ull + 1442695040888963407ull;
  const std::size_t j = std::size_t(lcg_ >> 16) % seen_;
  if (j < capacity_) samples_[j] = x;
}

std::vector<double> Reservoir::sorted_samples() const {
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

double Reservoir::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * double(samples_.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - double(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace rasc::util
