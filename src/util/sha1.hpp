// SHA-1 message digest (FIPS 180-1), implemented from scratch.
//
// RASC derives component and service identifiers by hashing service names
// (paper §3.3: "Each component in the overlay has a unique ID, generated
// using a hash function (i.e., SHA-1)"). Cryptographic strength is not
// required here — only a stable, well-distributed 160-bit digest.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace rasc::util {

/// A 160-bit SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.update("hello");
///   Sha1Digest d = h.finish();
class Sha1 {
 public:
  Sha1() { reset(); }

  /// Resets the hasher to its initial state.
  void reset();

  /// Absorbs `data` into the hash state.
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The hasher must be reset() before
  /// further use.
  Sha1Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;  // bytes absorbed so far
  std::size_t buffer_len_ = 0;   // bytes pending in buffer_
};

/// One-shot convenience: SHA-1 of `s`.
Sha1Digest sha1(std::string_view s);

/// Lowercase hex rendering of a digest.
std::string to_hex(const Sha1Digest& d);

}  // namespace rasc::util
