// Workload generation (paper §4.1): each request asks for 2-5 services
// chosen at random, at a rate near the sweep's average, between random
// source/destination endpoints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "util/rng.hpp"

namespace rasc::exp {

struct WorkloadConfig {
  int num_requests = 60;
  double avg_rate_kbps = 100;
  /// Rates are drawn uniformly in avg * [1-jitter, 1+jitter].
  double rate_jitter = 0.2;
  int min_services = 2;
  int max_services = 5;
  /// Probability a request's services are split across two substreams
  /// (the paper's example request graph has two).
  double two_substream_prob = 0.25;
  std::int64_t unit_bytes = 1250;
};

/// Generates the request sequence deterministically from `rng`.
/// Service names are drawn (without replacement within a request) from
/// `services`; endpoints from [0, nodes).
std::vector<core::ServiceRequest> generate_workload(
    const WorkloadConfig& config, const std::vector<std::string>& services,
    std::size_t nodes, util::Xoshiro256& rng);

}  // namespace rasc::exp
