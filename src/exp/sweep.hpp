// Parallel parameter sweeps: (algorithm × rate × repetition) cells run as
// independent Simulator instances on a thread pool. Repetition k of every
// (algorithm, rate) cell shares the same world seed so all algorithms face
// identical topologies and workloads, mirroring the paper's 5-run
// averaging on the same PlanetLab slice.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/table.hpp"

namespace rasc::util {
class ThreadPool;
}

namespace rasc::exp {

struct SweepConfig {
  RunConfig base;
  std::vector<std::string> algorithms{"mincost", "greedy", "random"};
  std::vector<double> rates_kbps{50, 100, 150, 200};
  int repetitions = 5;
  std::uint64_t base_seed = 42;
  /// 0 = all hardware threads.
  std::size_t threads = 0;
  /// When non-empty: every cell writes its registry snapshot to
  /// `<metrics_dir>/<algorithm>_r<rate>_rep<k>.csv` (directory is
  /// created; filenames are deterministic in the cell coordinates).
  std::string metrics_dir;
};

struct SweepResult {
  /// results[(algorithm, rate)] = metrics per repetition.
  std::map<std::pair<std::string, double>, std::vector<RunMetrics>> cells;

  /// Mean of `extract` over repetitions of one cell.
  double mean(const std::string& algorithm, double rate,
              const std::function<double(const RunMetrics&)>& extract) const;
};

/// Runs every (algorithm × rate × repetition) cell on its own Simulator
/// instance. The first form spins up a pool sized per config.threads; the
/// second reuses a caller-owned pool so several sweeps (e.g. the figure
/// drivers' deployment sizes) share workers without re-spawning threads.
SweepResult run_sweep(const SweepConfig& config);
SweepResult run_sweep(const SweepConfig& config, util::ThreadPool& pool);

/// Convenience: build a SeriesTable (rows = algorithms, cols = rates) for
/// one extracted metric.
SeriesTable make_table(const SweepConfig& config, const SweepResult& result,
                       const std::string& title,
                       const std::function<double(const RunMetrics&)>& extract,
                       int precision = 3);

}  // namespace rasc::exp
