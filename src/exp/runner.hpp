// Single-run experiment driver: build a world, submit a workload through
// the distributed pipeline (discovery -> stats -> composition ->
// deployment -> streaming), and collect the paper's §4.2 metrics.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/slo.hpp"
#include "exp/workload.hpp"
#include "exp/world.hpp"
#include "obs/metric_registry.hpp"
#include "util/summary_stats.hpp"

namespace rasc::exp {

struct RunConfig {
  WorldConfig world;
  WorkloadConfig workload;
  /// "mincost" (RASC), "greedy" or "random".
  std::string algorithm = "mincost";
  /// Gap between consecutive request submissions.
  sim::SimDuration submit_gap = sim::msec(800);
  /// How long streams keep running after the last submission.
  sim::SimDuration steady_duration = sim::sec(20);
  /// Drain margin: sources stop this long before measurement ends so
  /// in-flight units can land.
  sim::SimDuration drain = sim::sec(3);
  /// When non-empty: write the world's full registry snapshot here after
  /// the run (deterministic key order; see obs::MetricRegistry).
  std::string metrics_csv;
  std::string metrics_json;

  // --- Chaos / resilience (all off by default; a run with no scenario
  // and no SLO is event-for-event identical to pre-chaos builds) ---

  /// chaos::parse_scenario spec, e.g. "single-crash" or
  /// "churn:period=4s,repeats=8". Empty or "none" disables injection.
  std::string chaos_scenario;
  /// Overrides the scenario's own fault seed when nonzero.
  std::uint64_t chaos_seed = 0;
  /// SLO checks evaluated over the run; see chaos::parse_slo. An empty
  /// spec (no checks enabled) skips the checker entirely.
  chaos::SloSpec slo;
  /// When non-empty: the SLO pass/fail report CSV is written here.
  std::string slo_report;
  /// When non-empty: the expanded fault timeline CSV is written here.
  std::string chaos_timeline_csv;
  /// Watch every admitted app with its source node's AppSupervisor.
  /// Implied by a chaos scenario.
  bool supervise = false;

  // --- Online rate re-allocation (off by default: with interval 0 no
  // adapter is constructed, no adapt.* registry cell exists, and the run
  // is event-for-event identical to an adaptation-free build) ---

  /// Period of the per-app delta re-allocation loop; 0 disables it.
  sim::SimDuration adapt_interval = 0;
  /// Minimum relative cost improvement before deltas are shipped.
  double adapt_hysteresis = 0.05;

  // --- Predictive latency SLO (off by default: with deadline_ms 0 no
  // LatencyModel is constructed, requests carry no deadline, no
  // predict.*/slo.* registry cell exists, and the run is event-for-event
  // identical to a build without the subsystem) ---

  /// End-to-end latency deadline stamped on every generated request (ms);
  /// composers then reject placements whose predicted queueing latency
  /// violates it. 0 = no deadline.
  double deadline_ms = 0;
  /// Let the RateAdapter re-solve when the *predicted* latency of the
  /// deployed plan crosses the deadline, instead of waiting for observed
  /// drops. Needs deadline_ms > 0 and adapt_interval > 0.
  bool adapt_predictive = false;
  /// Violation accounting window (per app, from sink delay deltas).
  sim::SimDuration slo_window = sim::sec(1);

  // --- Sharded control plane (1 coordinator by default: requests submit
  // through their source node's coordinator exactly as before, no lease
  // subsystem is constructed, and the run is event-for-event identical
  // to pre-shard builds) ---

  /// Number of coordinator shards; > 1 switches admission to hash-routed
  /// batched composition against leased capacity views. Clamped to the
  /// node count. Forces deploy rollback (lease accounting relies on it).
  int coordinators = 1;
  /// Batch admission order: "fifo", "smallest-demand" or "highest-value".
  std::string admission_policy = "fifo";
  /// Shard queue drain cadence.
  sim::SimDuration batch_window = sim::msec(100);
  /// Node-side lease lifetime and shard-side renewal cadence.
  sim::SimDuration lease_duration = sim::sec(12);
  sim::SimDuration lease_renew = sim::sec(5);

  // --- Shard re-homing (off by default: no standby object exists and
  // sharded runs stay event-for-event identical to pre-rehome builds) ---

  /// Give every shard a dormant standby coordinator that takes the shard
  /// over (fence, reconstruct, adopt) when the primary dies. Needs
  /// coordinators > 1 and nodes >= 2 * coordinators.
  bool shard_standby = false;
  /// Standby watchdog poll period of the primary-death signal.
  sim::SimDuration standby_check = sim::msec(500);
  /// Source-side submission journal deadline: > 0 re-submits requests
  /// whose outcome never arrived (lost in a dead primary's batch
  /// window), up to the plane's retry budget. 0 = journal off.
  sim::SimDuration submit_retry = 0;

  // --- Control-plane selection (empty by default: the legacy behavior —
  // centralized per-source coordinators, or the sharded plane when
  // coordinators > 1 — is untouched, and no gossip object is ever
  // constructed, keeping default runs byte-identical) ---

  /// "" (auto: sharded iff coordinators > 1), "centralized", "sharded",
  /// or "gossip" (decentralized: per-node partial views + hop-by-hop
  /// composition + leaseless pool debits; forces deploy rollback).
  std::string control_plane;
  /// Gossip knobs (--control-plane=gossip only; ignored otherwise).
  int gossip_fanout = 3;
  sim::SimDuration gossip_interval = sim::msec(500);
  std::int64_t gossip_budget_bytes = 3200;
  int gossip_stale_rounds = 30;
};

struct RunMetrics {
  int requests = 0;
  int composed = 0;

  std::int64_t emitted = 0;
  std::int64_t delivered = 0;
  std::int64_t timely = 0;
  std::int64_t out_of_order = 0;

  util::SummaryStats delay_ms;
  util::SummaryStats jitter_ms;

  /// Components instantiated across all admitted requests and the number
  /// of service stages they implement; components/stages > 1 means rate
  /// splitting happened (greedy and random are exactly 1).
  std::int64_t components = 0;
  std::int64_t stages = 0;
  std::int64_t drops_queue_full = 0;
  std::int64_t drops_deadline = 0;
  std::int64_t unroutable = 0;
  /// Packets tail-dropped at access-link port queues (all kinds).
  std::int64_t drops_network = 0;

  /// Chaos/resilience outcomes (all zero / -1 on plain runs).
  std::int64_t faults_injected = 0;
  std::int64_t recoveries = 0;  // supervisor recoveries that succeeded
  std::int64_t gave_up = 0;     // apps the supervisor abandoned

  /// Rate-adapter outcomes (all zero when adaptation is off).
  std::int64_t adapt_attempts = 0;
  std::int64_t adapt_deltas = 0;     // delta messages shipped
  std::int64_t adapt_teardowns = 0;  // tracked apps still torn down

  /// Deploy-reliability outcomes (all zero under the default single-shot
  /// deploy policy with the reaper off).
  std::int64_t deploy_retries = 0;    // deploy messages retransmitted
  std::int64_t deploy_rollbacks = 0;  // failed deployments rolled back
  std::int64_t orphans_reaped = 0;    // apps lease-reaped by runtimes

  /// Predictive-SLO outcomes (all zero when deadline_ms is 0).
  std::int64_t slo_windows = 0;           // (app, window) pairs scored
  std::int64_t slo_windows_violated = 0;  // mean delay past the deadline
  std::int64_t predict_triggers = 0;      // adapter predictive firings

  /// Sharded-control-plane outcomes (all zero with one coordinator).
  std::int64_t shard_failovers = 0;  // submissions rerouted off dead shards
  /// Shard re-homing outcomes (all zero with standbys off).
  std::int64_t shard_rehomes = 0;       // standby takeovers
  std::int64_t shard_fenced = 0;        // zombie messages NACKed at granters
  std::int64_t shard_adopted = 0;       // orphaned apps adopted
  std::int64_t shard_reclaimed = 0;     // unadoptable apps torn down
  std::int64_t shard_resubmits = 0;     // journal re-submissions
  std::int64_t shard_submitted = 0;
  std::int64_t shard_admitted = 0;
  std::int64_t shard_rejected = 0;
  std::int64_t shard_batches = 0;
  std::int64_t shard_repairs = 0;  // NACK-repair re-compositions
  std::int64_t lease_grants = 0;
  std::int64_t lease_nacks = 0;    // lease debits refused by granters
  std::int64_t lease_expired = 0;  // grants that lapsed unrenewed
  /// Max over nodes of the overgrant high-water mark: > 0 would mean
  /// some node promised more bandwidth than it had (double reservation).
  double lease_overgrant_kbps = 0;

  /// Gossip-control-plane outcomes (all zero unless control_plane is
  /// "gossip").
  std::int64_t gossip_submitted = 0;
  std::int64_t gossip_admitted = 0;
  std::int64_t gossip_rejected = 0;
  std::int64_t gossip_repairs = 0;   // NACK-repair re-compositions
  std::int64_t gossip_sends = 0;     // digests pushed
  std::int64_t gossip_sent_bytes = 0;  // digest payload bytes (no framing)
  std::int64_t gossip_merges = 0;    // fresh entries accepted
  std::int64_t gossip_prunes = 0;    // entries aged out as stale
  double recovery_ms = -1;      // SLO recovery time; -1 = n/a or never
  int slo_pass = -1;            // -1 = no SLO evaluated, else 0/1

  double composed_fraction() const {
    return requests ? double(composed) / requests : 0;
  }
  double delivered_fraction() const {
    return emitted ? double(delivered) / double(emitted) : 0;
  }
  double timely_fraction() const {
    return delivered ? double(timely) / double(delivered) : 0;
  }
  double out_of_order_fraction() const {
    return delivered ? double(out_of_order) / double(delivered) : 0;
  }
  double mean_delay_ms() const { return delay_ms.mean(); }
  double mean_jitter_ms() const { return jitter_ms.mean(); }
  /// Average component instances per service stage (1.0 = no splitting).
  double splitting_degree() const {
    return stages ? double(components) / double(stages) : 0;
  }
};

/// Runs one full experiment. Deterministic in `config` (including seeds).
/// `snapshot_out` (optional) receives the world's registry snapshot taken
/// at the end of the run, after the RunMetrics were collected.
RunMetrics run_experiment(const RunConfig& config,
                          std::vector<obs::MetricRow>* snapshot_out);
RunMetrics run_experiment(const RunConfig& config);

}  // namespace rasc::exp
